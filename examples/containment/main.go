// Containment walks through Section 5 of the paper: the two containment
// notions ⊆p and ⊆m, the Example 5.3 pairs where they disagree, the
// constraint condition of Theorem 5.7, and premise elimination
// (Example 5.10).
//
// Run with: go run ./examples/containment
package main

import (
	"fmt"
	"log"

	"semwebdb/internal/containment"
	"semwebdb/internal/graph"
	"semwebdb/internal/query"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func must(d containment.Decision, err error) bool {
	if err != nil {
		log.Fatal(err)
	}
	return d.Holds
}

func main() {
	X, Y, Z := term.NewVar("X"), term.NewVar("Y"), term.NewVar("Z")
	p, q := term.NewIRI("urn:ex:p"), term.NewIRI("urn:ex:q")

	// Basic: restricting a body gives containment.
	fmt.Println("== basic containment ==")
	small := query.New(
		[]graph.Triple{{S: X, P: q, O: term.NewIRI("urn:ex:b")}},
		[]graph.Triple{{S: X, P: p, O: term.NewIRI("urn:ex:b")}},
	)
	big := query.New(
		[]graph.Triple{{S: X, P: q, O: Y}},
		[]graph.Triple{{S: X, P: p, O: Y}},
	)
	fmt.Printf("selective ⊆p general: %v\n", must(containment.Standard(small, big)))
	fmt.Printf("general ⊆p selective: %v\n\n", must(containment.Standard(big, small)))

	// Example 5.3, pair 1: rdfs chains.
	fmt.Println("== Example 5.3 (1): rdfs vocabulary ==")
	b1 := []graph.Triple{
		{S: X, P: rdfs.SubClassOf, O: Y},
		{S: Y, P: rdfs.SubClassOf, O: Z},
	}
	b1p := append(append([]graph.Triple{}, b1...), graph.Triple{S: X, P: rdfs.SubClassOf, O: Z})
	q1, q1p := query.New(b1, b1), query.New(b1p, b1p)
	fmt.Printf("q ⊆m q': %v   q' ⊆m q: %v   (mutual, thanks to sc-transitivity)\n",
		must(containment.Entailment(q1, q1p)), must(containment.Entailment(q1p, q1)))
	fmt.Printf("q ⊆p q': %v   q' ⊆p q: %v   (single answers have different shapes)\n\n",
		must(containment.Standard(q1, q1p)), must(containment.Standard(q1p, q1)))

	// Example 5.3, pair 2: blank node in the head.
	fmt.Println("== Example 5.3 (2): blank head ==")
	cst := term.NewIRI("urn:ex:c")
	body2 := []graph.Triple{{S: cst, P: q, O: X}}
	qc := query.New([]graph.Triple{{S: cst, P: q, O: X}}, body2)
	qb := query.New([]graph.Triple{{S: term.NewBlank("N"), P: q, O: X}}, body2)
	fmt.Printf("blank-head ⊆m constant-head: %v (the constant answer entails the blank one)\n",
		must(containment.Entailment(qb, qc)))
	fmt.Printf("blank-head ⊆p constant-head: %v (no isomorphism between the heads)\n\n",
		must(containment.Standard(qb, qc)))

	// Theorem 5.7: constraints.
	fmt.Println("== Theorem 5.7: constraints ==")
	bodyc := []graph.Triple{{S: X, P: p, O: Y}}
	free := query.New(bodyc, bodyc)
	constrained := query.New(bodyc, bodyc).WithConstraints(X)
	fmt.Printf("constrained ⊆p unconstrained: %v\n", must(containment.Standard(constrained, free)))
	fmt.Printf("unconstrained ⊆p constrained: %v (a blank binding would violate C')\n\n",
		must(containment.Standard(free, constrained)))

	// Example 5.10: premise elimination.
	fmt.Println("== Example 5.10: Ω_q premise elimination ==")
	t, s := term.NewIRI("urn:ex:t"), term.NewIRI("urn:ex:s")
	qprem := query.New(
		[]graph.Triple{{S: X, P: p, O: Y}},
		[]graph.Triple{{S: X, P: q, O: Y}, {S: Y, P: t, O: s}},
	).WithPremise(graph.New(
		graph.T(term.NewIRI("urn:ex:a"), t, s),
		graph.T(term.NewIRI("urn:ex:b"), t, s),
	))
	omega := containment.PremiseExpansion(qprem)
	fmt.Printf("the premise query decomposes into %d premise-free queries:\n", len(omega))
	for _, m := range omega {
		fmt.Printf("  %v\n", m)
	}

	// Containment with premises (Theorem 5.8 / Proposition 5.11): the
	// premised query is contained in itself and contains its
	// premise-free member.
	noPrem := query.New(qprem.Head, qprem.Body)
	fmt.Printf("\npremise-free member ⊆p premised query: %v\n", must(containment.Standard(noPrem, qprem)))
	fmt.Printf("premised query ⊆p premise-free member: %v\n", must(containment.Standard(qprem, noPrem)))
}
