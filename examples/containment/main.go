// Containment walks through Section 5 of the paper: the two containment
// notions ⊆p and ⊆m, the Example 5.3 pairs where they disagree, the
// constraint condition of Theorem 5.7, and premise elimination
// (Example 5.10).
//
// Run with: go run ./examples/containment
package main

import (
	"fmt"
	"log"

	"semwebdb/semweb"
)

func must(d semweb.Decision, err error) bool {
	if err != nil {
		log.Fatal(err)
	}
	return d.Holds
}

func main() {
	X, Y, Z := semweb.Var("X"), semweb.Var("Y"), semweb.Var("Z")
	p, q := semweb.IRI("urn:ex:p"), semweb.IRI("urn:ex:q")

	// Basic: restricting a body gives containment.
	fmt.Println("== basic containment ==")
	small := semweb.NewQuery().
		Head(semweb.T(X, q, semweb.IRI("urn:ex:b"))).
		Body(semweb.T(X, p, semweb.IRI("urn:ex:b")))
	big := semweb.NewQuery().
		Head(semweb.T(X, q, Y)).
		Body(semweb.T(X, p, Y))
	fmt.Printf("selective ⊆p general: %v\n", must(semweb.Contained(small, big)))
	fmt.Printf("general ⊆p selective: %v\n\n", must(semweb.Contained(big, small)))

	// Example 5.3, pair 1: rdfs chains.
	fmt.Println("== Example 5.3 (1): rdfs vocabulary ==")
	b1 := []semweb.Triple{
		semweb.T(X, semweb.SubClassOf, Y),
		semweb.T(Y, semweb.SubClassOf, Z),
	}
	b1p := append(append([]semweb.Triple{}, b1...), semweb.T(X, semweb.SubClassOf, Z))
	q1 := semweb.NewQuery().Head(b1...).Body(b1...)
	q1p := semweb.NewQuery().Head(b1p...).Body(b1p...)
	fmt.Printf("q ⊆m q': %v   q' ⊆m q: %v   (mutual, thanks to sc-transitivity)\n",
		must(semweb.ContainedUnderEntailment(q1, q1p)), must(semweb.ContainedUnderEntailment(q1p, q1)))
	fmt.Printf("q ⊆p q': %v   q' ⊆p q: %v   (single answers have different shapes)\n\n",
		must(semweb.Contained(q1, q1p)), must(semweb.Contained(q1p, q1)))

	// Example 5.3, pair 2: blank node in the head.
	fmt.Println("== Example 5.3 (2): blank head ==")
	cst := semweb.IRI("urn:ex:c")
	body2 := semweb.T(cst, q, X)
	qc := semweb.NewQuery().Head(semweb.T(cst, q, X)).Body(body2)
	qb := semweb.NewQuery().Head(semweb.T(semweb.Blank("N"), q, X)).Body(body2)
	fmt.Printf("blank-head ⊆m constant-head: %v (the constant answer entails the blank one)\n",
		must(semweb.ContainedUnderEntailment(qb, qc)))
	fmt.Printf("blank-head ⊆p constant-head: %v (no isomorphism between the heads)\n\n",
		must(semweb.Contained(qb, qc)))

	// Theorem 5.7: constraints.
	fmt.Println("== Theorem 5.7: constraints ==")
	bodyc := semweb.T(X, p, Y)
	free := semweb.NewQuery().Head(bodyc).Body(bodyc)
	constrained := semweb.NewQuery().Head(bodyc).Body(bodyc).WithConstraints(X)
	fmt.Printf("constrained ⊆p unconstrained: %v\n", must(semweb.Contained(constrained, free)))
	fmt.Printf("unconstrained ⊆p constrained: %v (a blank binding would violate C')\n\n",
		must(semweb.Contained(free, constrained)))

	// Example 5.10: premise elimination.
	fmt.Println("== Example 5.10: Ω_q premise elimination ==")
	t, s := semweb.IRI("urn:ex:t"), semweb.IRI("urn:ex:s")
	qprem := semweb.NewQuery().
		Head(semweb.T(X, p, Y)).
		Body(semweb.T(X, q, Y), semweb.T(Y, t, s)).
		WithPremiseTriples(
			semweb.T(semweb.IRI("urn:ex:a"), t, s),
			semweb.T(semweb.IRI("urn:ex:b"), t, s),
		)
	omega, err := semweb.PremiseExpansion(qprem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the premise query decomposes into %d premise-free queries:\n", len(omega))
	for _, m := range omega {
		fmt.Printf("  %v\n", m)
	}

	// Containment with premises (Theorem 5.8 / Proposition 5.11): the
	// premised query is contained in itself and contains its
	// premise-free member.
	noPrem := semweb.NewQuery().Head(qprem.HeadPatterns()...).Body(qprem.BodyPatterns()...)
	fmt.Printf("\npremise-free member ⊆p premised query: %v\n", must(semweb.Contained(noPrem, qprem)))
	fmt.Printf("premised query ⊆p premise-free member: %v\n", must(semweb.Contained(qprem, noPrem)))
}
