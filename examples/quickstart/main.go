// Quickstart: open a database, load N-Triples, decide entailment,
// compute closures/cores/normal forms, and run a first tableau query —
// all through the public semweb facade.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"semwebdb/semweb"
)

func main() {
	ctx := context.Background()

	// 1. Build a graph programmatically: a tiny genealogy schema.
	son := semweb.IRI("urn:ex:son")
	child := semweb.IRI("urn:ex:child")
	tom := semweb.IRI("urn:ex:tom")
	mary := semweb.IRI("urn:ex:mary")

	db, err := semweb.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Add(
		semweb.T(son, semweb.SubPropertyOf, child),
		semweb.T(tom, son, mary),
	); err != nil {
		log.Fatal(err)
	}
	fmt.Println("G:")
	fmt.Print(db.Graph())

	// 2. Parse more data from N-Triples and union it in.
	err = db.LoadNTriples(strings.NewReader(
		`<urn:ex:ann> <urn:ex:son> <urn:ex:mary> .` + "\n" +
			`_:someone <urn:ex:child> <urn:ex:mary> .` + "\n"))
	if err != nil {
		log.Fatal(err)
	}
	stats := db.Stats()
	fmt.Printf("\ndatabase has %d triples, %d blank nodes\n", stats.Triples, stats.BlankNodes)

	// 3. Entailment (Theorem 2.8): does the database entail that tom is
	// a child of mary? The sp triple makes it so.
	consequence := semweb.NewGraph(semweb.T(tom, child, mary))
	entails, err := db.Entails(ctx, consequence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nD ⊨ {(tom, child, mary)}: %v\n", entails)

	// A proof in the deductive system (Theorem 2.6).
	proof, ok := db.Prove(consequence)
	if !ok {
		log.Fatal("no proof found")
	}
	fmt.Printf("checked proof with %d steps\n", proof.Len())

	// 4. Closure, core, normal form (Section 3).
	cl, err := db.Closure(ctx)
	if err != nil {
		log.Fatal(err)
	}
	c, err := db.Core(ctx)
	if err != nil {
		log.Fatal(err)
	}
	nf, err := db.NormalForm(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n|G| = %d   |cl(G)| = %d   |core(G)| = %d   |nf(G)| = %d\n",
		db.Len(), cl.Len(), c.Len(), nf.Len())
	// In the raw graph the blank "someone" is NOT redundant (no explicit
	// child triple exists), so core(G) keeps it; in the closure, (tom,
	// child, mary) appears, so the normal form folds the blank away.
	fmt.Printf("core(G) still has blanks: %v;  nf(G) is ground: %v\n",
		!c.IsGround(), nf.IsGround())

	// 5. A tableau query with a constraint (Definition 4.1): children of
	// mary, bound to named individuals only.
	X := semweb.Var("X")
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:ex:childOf"), mary)).
		Body(semweb.T(X, child, mary)).
		WithConstraints(X)
	ans, err := db.Eval(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswer (union semantics):")
	fmt.Print(ans.Graph())
	fmt.Printf("answer is lean: %v\n", ans.Lean())
}
