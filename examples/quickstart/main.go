// Quickstart: build RDF graphs, parse N-Triples, decide entailment,
// compute closures/cores/normal forms, and run a first tableau query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semwebdb/internal/closure"
	"semwebdb/internal/core"
	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/ntriples"
	"semwebdb/internal/query"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func main() {
	// 1. Build a graph programmatically: a tiny genealogy schema.
	son := term.NewIRI("urn:ex:son")
	child := term.NewIRI("urn:ex:child")
	tom := term.NewIRI("urn:ex:tom")
	mary := term.NewIRI("urn:ex:mary")

	g := graph.New(
		graph.T(son, rdfs.SubPropertyOf, child),
		graph.T(tom, son, mary),
	)
	fmt.Println("G:")
	fmt.Print(g)

	// 2. Parse more data from N-Triples and union it in.
	extra, err := ntriples.ParseString(
		`<urn:ex:ann> <urn:ex:son> <urn:ex:mary> .` + "\n" +
			`_:someone <urn:ex:child> <urn:ex:mary> .` + "\n")
	if err != nil {
		log.Fatal(err)
	}
	db := graph.Union(g, extra)
	fmt.Printf("\ndatabase has %d triples, %d blank nodes\n", db.Len(), len(db.BlankNodes()))

	// 3. Entailment (Theorem 2.8): does the database entail that tom is
	// a child of mary? The sp triple makes it so.
	consequence := graph.New(graph.T(tom, child, mary))
	fmt.Printf("\nD ⊨ {(tom, child, mary)}: %v\n", entail.Entails(db, consequence))

	// A proof in the deductive system (Theorem 2.6).
	proof, ok := entail.EntailsWithProof(db, consequence)
	if !ok {
		log.Fatal("no proof found")
	}
	fmt.Printf("checked proof with %d steps\n", proof.Len())

	// 4. Closure, core, normal form (Section 3).
	cl := closure.Cl(db)
	c, _ := core.Core(db)
	nf := core.NormalForm(db)
	fmt.Printf("\n|G| = %d   |cl(G)| = %d   |core(G)| = %d   |nf(G)| = %d\n",
		db.Len(), cl.Len(), c.Len(), nf.Len())
	// In the raw graph the blank "someone" is NOT redundant (no explicit
	// child triple exists), so core(G) keeps it; in the closure, (tom,
	// child, mary) appears, so the normal form folds the blank away.
	fmt.Printf("core(G) still has blanks: %v;  nf(G) is ground: %v\n",
		!c.IsGround(), nf.IsGround())

	// 5. A tableau query with a constraint (Definition 4.1): children of
	// mary, bound to named individuals only.
	X := term.NewVar("X")
	q := query.New(
		[]graph.Triple{{S: X, P: term.NewIRI("urn:ex:childOf"), O: mary}},
		[]graph.Triple{{S: X, P: child, O: mary}},
	).WithConstraints(X)
	ans, err := query.Evaluate(q, db, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswer (union semantics):")
	fmt.Print(ans.Graph)
	fmt.Printf("answer is lean: %v\n", query.IsLeanAnswer(ans))
}
