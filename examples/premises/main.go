// Premises demonstrates Section 4.2 of the paper: queries with premises
// for hypothetical, if-then reasoning over incomplete data, and the Ω_q
// premise-elimination rewrite of Proposition 5.9.
//
// Run with: go run ./examples/premises
package main

import (
	"context"
	"fmt"
	"log"

	"semwebdb/semweb"
)

func main() {
	ctx := context.Background()
	ex := func(s string) semweb.Term { return semweb.IRI("urn:ex:" + s) }

	// A database that knows sons and daughters, but has no notion of
	// "relative".
	db, err := semweb.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Add(
		semweb.T(ex("john"), ex("son"), ex("peter")),
		semweb.T(ex("ana"), ex("daughter"), ex("peter")),
		semweb.T(ex("luis"), ex("son"), ex("john")),
	); err != nil {
		log.Fatal(err)
	}
	fmt.Println("database:")
	fmt.Print(db.Graph())

	X := semweb.Var("X")

	// The paper's example: ask for relatives of Peter, *supplying* the
	// knowledge that son is a subproperty of relative. The premise joins
	// the database for this query only.
	q := semweb.NewQuery().
		Head(semweb.T(X, ex("relative"), ex("peter"))).
		Body(semweb.T(X, ex("relative"), ex("peter"))).
		WithPremiseTriples(semweb.T(ex("son"), semweb.SubPropertyOf, ex("relative")))

	ans, err := db.Eval(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrelatives of peter, given 'son sp relative':")
	fmt.Print(ans.Graph())

	// Hypothetical variant: also declare daughters as relatives.
	q2 := semweb.NewQuery().
		Head(q.HeadPatterns()...).
		Body(q.BodyPatterns()...).
		WithPremiseTriples(
			semweb.T(ex("son"), semweb.SubPropertyOf, ex("relative")),
			semweb.T(ex("daughter"), semweb.SubPropertyOf, ex("relative")),
		)
	ans2, err := db.Eval(ctx, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n…and additionally 'daughter sp relative':")
	fmt.Print(ans2.Graph())

	// The paper notes premises cannot be simulated by Datalog-like
	// data-independent queries: the premise interacts with the
	// *transitive* sp semantics. Demonstrate: add a database triple
	// linking relative upward; the same premise now yields more.
	if err := db.Add(semweb.T(ex("relative"), semweb.SubPropertyOf, ex("contact"))); err != nil {
		log.Fatal(err)
	}
	q3 := semweb.NewQuery().
		Head(semweb.T(X, ex("contact"), ex("peter"))).
		Body(semweb.T(X, ex("contact"), ex("peter"))).
		WithPremiseTriples(semweb.T(ex("son"), semweb.SubPropertyOf, ex("relative")))
	ans3, err := db.Eval(ctx, q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontacts of peter (premise chains through the database's own sp triple):")
	fmt.Print(ans3.Graph())

	// Ω_q: a premise query over *uninterpreted* vocabulary decomposes
	// into premise-free queries (Proposition 5.9). Note this rewrite is
	// for simple queries; the rdfs-premise queries above are evaluated
	// directly.
	Y := semweb.Var("Y")
	simpleQ := semweb.NewQuery().
		Head(semweb.T(X, ex("knows"), Y)).
		Body(
			semweb.T(X, ex("met"), Y),
			semweb.T(Y, ex("status"), ex("public")),
		).
		WithPremiseTriples(
			semweb.T(ex("alice"), ex("status"), ex("public")),
			semweb.T(ex("bob"), ex("status"), ex("public")),
		)
	omega, err := semweb.PremiseExpansion(simpleQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nΩ_q of the 'met someone public' query has %d premise-free members:\n", len(omega))
	for _, m := range omega {
		fmt.Printf("  %v\n", m)
	}
}
