// Premises demonstrates Section 4.2 of the paper: queries with premises
// for hypothetical, if-then reasoning over incomplete data, and the Ω_q
// premise-elimination rewrite of Proposition 5.9.
//
// Run with: go run ./examples/premises
package main

import (
	"fmt"
	"log"

	"semwebdb/internal/containment"
	"semwebdb/internal/graph"
	"semwebdb/internal/query"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func main() {
	ex := func(s string) term.Term { return term.NewIRI("urn:ex:" + s) }

	// A database that knows sons and daughters, but has no notion of
	// "relative".
	db := graph.New(
		graph.T(ex("john"), ex("son"), ex("peter")),
		graph.T(ex("ana"), ex("daughter"), ex("peter")),
		graph.T(ex("luis"), ex("son"), ex("john")),
	)
	fmt.Println("database:")
	fmt.Print(db)

	X := term.NewVar("X")

	// The paper's example: ask for relatives of Peter, *supplying* the
	// knowledge that son is a subproperty of relative. The premise joins
	// the database for this query only.
	q := query.New(
		[]graph.Triple{{S: X, P: ex("relative"), O: ex("peter")}},
		[]graph.Triple{{S: X, P: ex("relative"), O: ex("peter")}},
	).WithPremise(graph.New(
		graph.T(ex("son"), rdfs.SubPropertyOf, ex("relative")),
	))

	ans, err := query.Evaluate(q, db, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrelatives of peter, given 'son sp relative':")
	fmt.Print(ans.Graph)

	// Hypothetical variant: also declare daughters as relatives.
	q2 := query.New(q.Head, q.Body).WithPremise(graph.New(
		graph.T(ex("son"), rdfs.SubPropertyOf, ex("relative")),
		graph.T(ex("daughter"), rdfs.SubPropertyOf, ex("relative")),
	))
	ans2, err := query.Evaluate(q2, db, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n…and additionally 'daughter sp relative':")
	fmt.Print(ans2.Graph)

	// The paper notes premises cannot be simulated by Datalog-like
	// data-independent queries: the premise interacts with the
	// *transitive* sp semantics. Demonstrate: add a database triple
	// linking relative upward; the same premise now yields more.
	db2 := graph.Union(db, graph.New(
		graph.T(ex("relative"), rdfs.SubPropertyOf, ex("contact")),
	))
	q3 := query.New(
		[]graph.Triple{{S: X, P: ex("contact"), O: ex("peter")}},
		[]graph.Triple{{S: X, P: ex("contact"), O: ex("peter")}},
	).WithPremise(graph.New(
		graph.T(ex("son"), rdfs.SubPropertyOf, ex("relative")),
	))
	ans3, err := query.Evaluate(q3, db2, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontacts of peter (premise chains through the database's own sp triple):")
	fmt.Print(ans3.Graph)

	// Ω_q: a premise query over *uninterpreted* vocabulary decomposes
	// into premise-free queries (Proposition 5.9). Note this rewrite is
	// for simple queries; the rdfs-premise queries above are evaluated
	// directly.
	Y := term.NewVar("Y")
	simpleQ := query.New(
		[]graph.Triple{{S: X, P: ex("knows"), O: Y}},
		[]graph.Triple{
			{S: X, P: ex("met"), O: Y},
			{S: Y, P: ex("status"), O: ex("public")},
		},
	).WithPremise(graph.New(
		graph.T(ex("alice"), ex("status"), ex("public")),
		graph.T(ex("bob"), ex("status"), ex("public")),
	))
	omega := containment.PremiseExpansion(simpleQ)
	fmt.Printf("\nΩ_q of the 'met someone public' query has %d premise-free members:\n", len(omega))
	for _, m := range omega {
		fmt.Printf("  %v\n", m)
	}
}
