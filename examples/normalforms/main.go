// Normalforms re-enacts the worked examples of Section 3 of the paper:
// non-unique naive closures (Example 3.2), lean and non-lean graphs
// (Example 3.8), non-unique minimal representations (Examples 3.14 and
// 3.15), and the unique syntax-independent normal form (Example 3.17,
// Theorem 3.19).
//
// Run with: go run ./examples/normalforms
package main

import (
	"fmt"

	"semwebdb/internal/closure"
	"semwebdb/internal/core"
	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI("urn:ex:" + s) }

func main() {
	// ---- Example 3.2: the naive closure is not unique. ----
	fmt.Println("== Example 3.2: naive closures are not unique ==")
	p, q, r := iri("p"), iri("q"), iri("r")
	a, b, c, d := iri("a"), iri("b"), iri("c"), iri("d")
	X := term.NewBlank("X")
	g := graph.New(
		graph.T(a, p, c), graph.T(a, p, X), graph.T(a, p, b),
		graph.T(c, r, d), graph.T(b, q, d),
	)
	ext1 := graph.Union(g, graph.New(graph.T(X, r, d)))
	ext2 := graph.Union(g, graph.New(graph.T(X, q, d)))
	both := graph.Union(ext1, ext2)
	fmt.Printf("G + (X,r,d) ≡ G: %v\n", entail.Equivalent(g, ext1))
	fmt.Printf("G + (X,q,d) ≡ G: %v\n", entail.Equivalent(g, ext2))
	fmt.Printf("G + both    ≡ G: %v   (two incomparable maximal extensions)\n\n",
		entail.Equivalent(g, both))

	// ---- Example 3.8: leanness. ----
	fmt.Println("== Example 3.8: lean and non-lean graphs ==")
	Y := term.NewBlank("Y")
	g1 := graph.New(graph.T(a, p, X), graph.T(a, p, Y))
	g2 := graph.New(
		graph.T(a, p, X), graph.T(a, p, Y),
		graph.T(X, q, Y), graph.T(Y, r, b),
	)
	fmt.Printf("G1 = {a p X, a p Y} lean: %v\n", core.IsLean(g1))
	fmt.Printf("G2 = {a p X, a p Y, X q Y, Y r b} lean: %v\n", core.IsLean(g2))
	c1, mu := core.Core(g1)
	fmt.Printf("core(G1) has %d triple(s); retraction folds %d blank(s)\n\n", c1.Len(), len(mu))

	// ---- Example 3.14: minimal representations, cyclic case. ----
	fmt.Println("== Example 3.14: minimal representations need acyclicity ==")
	sp := rdfs.SubPropertyOf
	ex314 := graph.New(
		graph.T(b, sp, c), graph.T(c, sp, b),
		graph.T(b, sp, a), graph.T(c, sp, a),
	)
	if _, err := core.MinimalRepresentation(ex314); err != nil {
		fmt.Printf("MinimalRepresentation correctly refuses: %v\n", err)
	}
	m1 := ex314.Without(graph.T(b, sp, a))
	m2 := ex314.Without(graph.T(c, sp, a))
	fmt.Printf("dropping (b,sp,a): ≡ G? %v;  dropping (c,sp,a): ≡ G? %v;  isomorphic? %v\n\n",
		entail.Equivalent(ex314, m1), entail.Equivalent(ex314, m2), hom.Isomorphic(m1, m2))

	// ---- Example 3.15: reserved vocabulary as data. ----
	fmt.Println("== Example 3.15: vocabulary in subject position ==")
	x := iri("x")
	ex315 := graph.New(
		graph.T(a, rdfs.SubClassOf, b),
		graph.T(rdfs.Type, rdfs.Domain, a),
		graph.T(x, rdfs.Type, a),
		graph.T(x, rdfs.Type, b),
	)
	if _, err := core.MinimalRepresentation(ex315); err != nil {
		fmt.Printf("MinimalRepresentation correctly refuses: %v\n", err)
	}
	g315a := ex315.Without(graph.T(x, rdfs.Type, b))
	g315b := ex315.Without(graph.T(x, rdfs.Type, a))
	fmt.Printf("both one-triple reductions equivalent: %v and %v (two distinct minima)\n\n",
		entail.Equivalent(ex315, g315a), entail.Equivalent(ex315, g315b))

	// ---- Example 3.17 / Theorem 3.19: the normal form. ----
	fmt.Println("== Example 3.17: nf(G) = core(cl(G)) is syntax independent ==")
	N := term.NewBlank("N")
	G := graph.New(
		graph.T(a, rdfs.SubClassOf, b), graph.T(b, rdfs.SubClassOf, c),
		graph.T(a, rdfs.SubClassOf, N), graph.T(N, rdfs.SubClassOf, c),
	)
	H := graph.New(
		graph.T(a, rdfs.SubClassOf, b), graph.T(b, rdfs.SubClassOf, c),
		graph.T(a, rdfs.SubClassOf, c),
	)
	fmt.Printf("G ≡ H: %v\n", entail.Equivalent(G, H))
	fmt.Printf("cl(G) ≅ cl(H): %v   (closure is syntax dependent)\n",
		hom.Isomorphic(closure.Cl(G), closure.Cl(H)))
	fmt.Printf("nf(G) ≅ nf(H): %v   (the normal form is not)\n", core.SameNormalForm(G, H))
	fmt.Println("\nnf(G):")
	fmt.Print(core.NormalForm(G))
}
