// Normalforms re-enacts the worked examples of Section 3 of the paper:
// non-unique naive closures (Example 3.2), lean and non-lean graphs
// (Example 3.8), non-unique minimal representations (Examples 3.14 and
// 3.15), and the unique syntax-independent normal form (Example 3.17,
// Theorem 3.19).
//
// Run with: go run ./examples/normalforms
package main

import (
	"context"
	"fmt"
	"log"

	"semwebdb/semweb"
)

func iri(s string) semweb.Term { return semweb.IRI("urn:ex:" + s) }

var ctx = context.Background()

// must collapses the (value, error) pair of the ctx-aware facade calls;
// these tiny graphs never hit a cancellation.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	// ---- Example 3.2: the naive closure is not unique. ----
	fmt.Println("== Example 3.2: naive closures are not unique ==")
	p, q, r := iri("p"), iri("q"), iri("r")
	a, b, c, d := iri("a"), iri("b"), iri("c"), iri("d")
	X := semweb.Blank("X")
	g := semweb.NewGraph(
		semweb.T(a, p, c), semweb.T(a, p, X), semweb.T(a, p, b),
		semweb.T(c, r, d), semweb.T(b, q, d),
	)
	ext1 := semweb.GraphUnion(g, semweb.NewGraph(semweb.T(X, r, d)))
	ext2 := semweb.GraphUnion(g, semweb.NewGraph(semweb.T(X, q, d)))
	both := semweb.GraphUnion(ext1, ext2)
	fmt.Printf("G + (X,r,d) ≡ G: %v\n", must(semweb.Equivalent(ctx, g, ext1)))
	fmt.Printf("G + (X,q,d) ≡ G: %v\n", must(semweb.Equivalent(ctx, g, ext2)))
	fmt.Printf("G + both    ≡ G: %v   (two incomparable maximal extensions)\n\n",
		must(semweb.Equivalent(ctx, g, both)))

	// ---- Example 3.8: leanness. ----
	fmt.Println("== Example 3.8: lean and non-lean graphs ==")
	Y := semweb.Blank("Y")
	g1 := semweb.NewGraph(semweb.T(a, p, X), semweb.T(a, p, Y))
	g2 := semweb.NewGraph(
		semweb.T(a, p, X), semweb.T(a, p, Y),
		semweb.T(X, q, Y), semweb.T(Y, r, b),
	)
	fmt.Printf("G1 = {a p X, a p Y} lean: %v\n", must(semweb.IsLean(ctx, g1)))
	fmt.Printf("G2 = {a p X, a p Y, X q Y, Y r b} lean: %v\n", must(semweb.IsLean(ctx, g2)))
	c1 := must(semweb.CoreOf(ctx, g1))
	fmt.Printf("core(G1) has %d triple(s); the retraction folds the blanks together\n\n", c1.Len())

	// ---- Example 3.14: minimal representations, cyclic case. ----
	fmt.Println("== Example 3.14: minimal representations need acyclicity ==")
	sp := semweb.SubPropertyOf
	ex314 := semweb.NewGraph(
		semweb.T(b, sp, c), semweb.T(c, sp, b),
		semweb.T(b, sp, a), semweb.T(c, sp, a),
	)
	if _, err := semweb.MinimalRepresentation(ex314); err != nil {
		fmt.Printf("MinimalRepresentation correctly refuses: %v\n", err)
	}
	m1 := ex314.Without(semweb.T(b, sp, a))
	m2 := ex314.Without(semweb.T(c, sp, a))
	fmt.Printf("dropping (b,sp,a): ≡ G? %v;  dropping (c,sp,a): ≡ G? %v;  isomorphic? %v\n\n",
		must(semweb.Equivalent(ctx, ex314, m1)), must(semweb.Equivalent(ctx, ex314, m2)),
		semweb.Isomorphic(m1, m2))

	// ---- Example 3.15: reserved vocabulary as data. ----
	fmt.Println("== Example 3.15: vocabulary in subject position ==")
	x := iri("x")
	ex315 := semweb.NewGraph(
		semweb.T(a, semweb.SubClassOf, b),
		semweb.T(semweb.Type, semweb.Domain, a),
		semweb.T(x, semweb.Type, a),
		semweb.T(x, semweb.Type, b),
	)
	if _, err := semweb.MinimalRepresentation(ex315); err != nil {
		fmt.Printf("MinimalRepresentation correctly refuses: %v\n", err)
	}
	g315a := ex315.Without(semweb.T(x, semweb.Type, b))
	g315b := ex315.Without(semweb.T(x, semweb.Type, a))
	fmt.Printf("both one-triple reductions equivalent: %v and %v (two distinct minima)\n\n",
		must(semweb.Equivalent(ctx, ex315, g315a)), must(semweb.Equivalent(ctx, ex315, g315b)))

	// ---- Example 3.17 / Theorem 3.19: the normal form. ----
	fmt.Println("== Example 3.17: nf(G) = core(cl(G)) is syntax independent ==")
	N := semweb.Blank("N")
	G := semweb.NewGraph(
		semweb.T(a, semweb.SubClassOf, b), semweb.T(b, semweb.SubClassOf, c),
		semweb.T(a, semweb.SubClassOf, N), semweb.T(N, semweb.SubClassOf, c),
	)
	H := semweb.NewGraph(
		semweb.T(a, semweb.SubClassOf, b), semweb.T(b, semweb.SubClassOf, c),
		semweb.T(a, semweb.SubClassOf, c),
	)
	fmt.Printf("G ≡ H: %v\n", must(semweb.Equivalent(ctx, G, H)))
	fmt.Printf("cl(G) ≅ cl(H): %v   (closure is syntax dependent)\n",
		semweb.Isomorphic(must(semweb.Closure(ctx, G)), must(semweb.Closure(ctx, H))))
	fmt.Printf("nf(G) ≅ nf(H): %v   (the normal form is not)\n", must(semweb.SameNormalForm(ctx, G, H)))
	fmt.Println("\nnf(G):")
	fmt.Print(must(semweb.NormalForm(ctx, G)))
}
