// Artgallery reproduces the paper's Fig. 1 scenario: an RDFS schema for
// art resources where schema and data live at the same level, queried
// through the RDFS semantics (subclass, subproperty, domain, range).
//
// Run with: go run ./examples/artgallery
package main

import (
	"fmt"
	"log"

	"semwebdb/internal/closure"
	"semwebdb/internal/graph"
	"semwebdb/internal/query"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
	"semwebdb/internal/turtle"
)

const figure1 = `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix art: <urn:art:> .

# Schema (Fig. 1): classes and properties with RDFS semantics.
art:sculptor rdfs:subClassOf art:artist .
art:painter  rdfs:subClassOf art:artist .
art:sculpts  rdfs:subPropertyOf art:creates .
art:paints   rdfs:subPropertyOf art:creates .
art:creates  rdfs:domain art:artist ;
             rdfs:range  art:artifact .
art:exhibited rdfs:domain art:artifact ;
              rdfs:range  art:museum .

# Data, at the same level as the schema.
art:picasso  art:paints  art:guernica .
art:rodin    art:sculpts art:thethinker .
art:guernica art:exhibited art:reinasofia .
art:picasso  a art:painter .
`

func main() {
	db, err := turtle.Parse(figure1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 1 graph: %d triples\n", db.Len())

	art := func(s string) term.Term { return term.NewIRI("urn:art:" + s) }

	// The RDFS closure derives: picasso and rodin are artists (via
	// dom+sp), guernica and thethinker are artifacts (via range+sp),
	// picasso creates guernica (via sp), reinasofia is a museum (range).
	cl := closure.Cl(db)
	fmt.Printf("closure: %d triples\n\n", cl.Len())
	checks := []graph.Triple{
		graph.T(art("picasso"), rdfs.Type, art("artist")),
		graph.T(art("rodin"), rdfs.Type, art("artist")),
		graph.T(art("guernica"), rdfs.Type, art("artifact")),
		graph.T(art("picasso"), art("creates"), art("guernica")),
		graph.T(art("reinasofia"), rdfs.Type, art("museum")),
	}
	mem := closure.NewMembership(db)
	for _, c := range checks {
		fmt.Printf("  %v ∈ cl(G): %v\n", c, mem.Contains(c))
	}

	// Query 1 (the paper's intro example): artifacts created by artists,
	// exhibited at a given museum.
	A, Y := term.NewVar("A"), term.NewVar("Y")
	q1 := query.New(
		[]graph.Triple{{S: A, P: art("createdWork"), O: Y}},
		[]graph.Triple{
			{S: A, P: rdfs.Type, O: art("artist")},
			{S: A, P: art("creates"), O: Y},
			{S: Y, P: art("exhibited"), O: art("reinasofia")},
		},
	)
	ans1, err := query.Evaluate(q1, db, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nartists with works exhibited at the Reina Sofía:")
	fmt.Print(ans1.Graph)

	// Query 2: everything that is an artist — requires type inference
	// through dom, range and sc.
	q2 := query.New(
		[]graph.Triple{{S: A, P: term.NewIRI("urn:art:isArtist"), O: term.NewLiteral("true")}},
		[]graph.Triple{{S: A, P: rdfs.Type, O: art("artist")}},
	)
	ans2, err := query.Evaluate(q2, db, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall inferred artists:")
	fmt.Print(ans2.Graph)

	// Query 3: a head with a blank node — report each creator paired
	// with an anonymous "creation event" (Skolemized per binding).
	E := term.NewBlank("Event")
	q3 := query.New(
		[]graph.Triple{
			{S: E, P: art("by"), O: A},
			{S: E, P: art("produced"), O: Y},
		},
		[]graph.Triple{{S: A, P: art("creates"), O: Y}},
	)
	ans3, err := query.Evaluate(q3, db, query.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncreation events (one skolem blank per creation):")
	fmt.Print(ans3.Graph)
}
