// Artgallery reproduces the paper's Fig. 1 scenario: an RDFS schema for
// art resources where schema and data live at the same level, queried
// through the RDFS semantics (subclass, subproperty, domain, range).
//
// Run with: go run ./examples/artgallery
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"semwebdb/semweb"
)

const figure1 = `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix art: <urn:art:> .

# Schema (Fig. 1): classes and properties with RDFS semantics.
art:sculptor rdfs:subClassOf art:artist .
art:painter  rdfs:subClassOf art:artist .
art:sculpts  rdfs:subPropertyOf art:creates .
art:paints   rdfs:subPropertyOf art:creates .
art:creates  rdfs:domain art:artist ;
             rdfs:range  art:artifact .
art:exhibited rdfs:domain art:artifact ;
              rdfs:range  art:museum .

# Data, at the same level as the schema.
art:picasso  art:paints  art:guernica .
art:rodin    art:sculpts art:thethinker .
art:guernica art:exhibited art:reinasofia .
art:picasso  a art:painter .
`

func main() {
	ctx := context.Background()

	db, err := semweb.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTurtle(strings.NewReader(figure1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 1 graph: %d triples\n", db.Len())

	art := func(s string) semweb.Term { return semweb.IRI("urn:art:" + s) }

	// The RDFS closure derives: picasso and rodin are artists (via
	// dom+sp), guernica and thethinker are artifacts (via range+sp),
	// picasso creates guernica (via sp), reinasofia is a museum (range).
	cl, err := db.Closure(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closure: %d triples\n\n", cl.Len())
	checks := []semweb.Triple{
		semweb.T(art("picasso"), semweb.Type, art("artist")),
		semweb.T(art("rodin"), semweb.Type, art("artist")),
		semweb.T(art("guernica"), semweb.Type, art("artifact")),
		semweb.T(art("picasso"), art("creates"), art("guernica")),
		semweb.T(art("reinasofia"), semweb.Type, art("museum")),
	}
	for _, c := range checks {
		fmt.Printf("  %v ∈ cl(G): %v\n", c, db.Infers(c))
	}

	// Query 1 (the paper's intro example): artifacts created by artists,
	// exhibited at a given museum.
	A, Y := semweb.Var("A"), semweb.Var("Y")
	q1 := semweb.NewQuery().
		Head(semweb.T(A, art("createdWork"), Y)).
		Body(
			semweb.T(A, semweb.Type, art("artist")),
			semweb.T(A, art("creates"), Y),
			semweb.T(Y, art("exhibited"), art("reinasofia")),
		)
	ans1, err := db.Eval(ctx, q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nartists with works exhibited at the Reina Sofía:")
	fmt.Print(ans1.Graph())

	// Query 2: everything that is an artist — requires type inference
	// through dom, range and sc.
	q2 := semweb.NewQuery().
		Head(semweb.T(A, semweb.IRI("urn:art:isArtist"), semweb.Literal("true"))).
		Body(semweb.T(A, semweb.Type, art("artist")))
	ans2, err := db.Eval(ctx, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall inferred artists:")
	fmt.Print(ans2.Graph())

	// Query 3: a head with a blank node — report each creator paired
	// with an anonymous "creation event" (Skolemized per binding).
	E := semweb.Blank("Event")
	q3 := semweb.NewQuery().
		Head(
			semweb.T(E, art("by"), A),
			semweb.T(E, art("produced"), Y),
		).
		Body(semweb.T(A, art("creates"), Y))
	ans3, err := db.Eval(ctx, q3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncreation events (one skolem blank per creation):")
	fmt.Print(ans3.Graph())
}
