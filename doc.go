// Package semwebdb is a from-scratch Go reproduction of "Foundations of
// Semantic Web databases" (Gutierrez, Hurtado, Mendelzon; PODS 2004 /
// JCSS 2011): the abstract RDF data model with RDFS semantics, its
// deductive system and model theory, closures, cores and normal forms,
// tableau queries with premises and constraints under union and merge
// semantics, and the two query-containment notions, together with the
// substrates (parsers, an indexed triple store, homomorphism search,
// conjunctive-query machinery) and an experiment harness reproducing
// every theorem and worked example of the paper.
//
// The public API is the semwebdb/semweb package: a DB opened with
// semweb.Open (in memory) or semweb.OpenAt (durable: binary snapshot +
// write-ahead log in a directory, crash recovery on reopen), loaded
// through LoadNTriples/LoadTurtle/LoadFile/LoadFiles, and queried with
// the fluent Query builder via DB.Eval — which returns a typed Answer
// and honors context cancellation throughout the engine's hot loops.
// Graph-level operations (entailment, closure, normal form,
// containment, fingerprints) are package-level functions there. The
// command line tools under cmd/ and the walkthroughs under examples/
// are written exclusively against that facade.
//
// Everything under internal/ is implementation detail; see README.md
// for the package map and DESIGN.md for the per-experiment index.
package semwebdb
