// Package semwebdb is a from-scratch Go reproduction of "Foundations of
// Semantic Web databases" (Gutierrez, Hurtado, Mendelzon, Pérez; PODS
// 2004 / JCSS 2011): the abstract RDF data model with RDFS semantics, its
// deductive system and model theory, closures, cores and normal forms,
// tableau queries with premises and constraints under union and merge
// semantics, and the two query-containment notions, together with the
// substrates (parsers, an indexed triple store, homomorphism search,
// conjunctive-query machinery) and an experiment harness reproducing
// every theorem and worked example of the paper.
//
// The implementation lives under internal/; see README.md for the map
// and DESIGN.md for the per-experiment index.
package semwebdb
