package main_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end smoke test the `make serve-smoke`
// target runs: build the real binary, start it on an ephemeral port
// over a fresh database directory, drive the full lifecycle over HTTP
// (load the repository's test data, stream a query, hit the admin
// endpoints), then shut it down with SIGINT and require a clean exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "semwebd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building semwebd: %v\n%s", err, out)
	}

	root := t.TempDir()
	if err := os.Mkdir(filepath.Join(root, "art"), 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-root", root, "-drain", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the resolved listen address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// Load the repository's Turtle test data.
	ttl, err := os.ReadFile(filepath.Join("..", "..", "testdata", "art.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/art/load", "text/turtle", strings.NewReader(string(ttl)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %s", resp.StatusCode, body)
	}

	// Stream the bundled query and check the NDJSON framing.
	rq, err := os.ReadFile(filepath.Join("..", "..", "testdata", "artists.rq"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/art/query", "text/plain", strings.NewReader(string(rq)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}
	rows, sawTrailer := 0, false
	qsc := bufio.NewScanner(resp.Body)
	for qsc.Scan() {
		var probe struct {
			Done    bool     `json:"done"`
			Error   string   `json:"error"`
			Triples []string `json:"triples"`
		}
		if err := json.Unmarshal(qsc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", qsc.Text(), err)
		}
		if probe.Done {
			sawTrailer = true
			if probe.Error != "" {
				t.Fatalf("stream error: %s", probe.Error)
			}
			break
		}
		if len(probe.Triples) == 0 {
			t.Fatalf("row without triples: %q", qsc.Text())
		}
		rows++
	}
	resp.Body.Close()
	if !sawTrailer || rows == 0 {
		t.Fatalf("stream delivered %d rows, trailer=%v", rows, sawTrailer)
	}

	// Admin endpoints: stats, snapshot, compact.
	for _, probe := range []struct{ method, path, want string }{
		{"GET", "/v1/art/stats", `"triples"`},
		{"POST", "/v1/art/snapshot", `"snapshot_bytes"`},
		{"POST", "/v1/art/compact", `"after"`},
		{"GET", "/v1/dbs", `"art"`},
	} {
		req, err := http.NewRequest(probe.method, base+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), probe.want) {
			t.Fatalf("%s %s: %d %s", probe.method, probe.path, resp.StatusCode, body)
		}
	}

	// SIGINT must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("semwebd exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("semwebd did not exit after SIGINT")
	}

	// The directory must reopen cleanly after shutdown (the flock was
	// released, the WAL/snapshot pair is consistent).
	restart := exec.Command(bin, "-addr", "127.0.0.1:0", "-root", root, "-quiet")
	out2, err := restart.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := restart.Start(); err != nil {
		t.Fatal(err)
	}
	defer restart.Process.Kill()
	sc2 := bufio.NewScanner(out2)
	if !sc2.Scan() || !strings.Contains(sc2.Text(), marker) {
		t.Fatalf("restart failed: %q %v", sc2.Text(), sc2.Err())
	}
	base2 := "http://" + strings.TrimSpace(sc2.Text()[strings.Index(sc2.Text(), marker)+len(marker):])
	resp, err = http.Get(base2 + "/v1/art/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.Contains(string(body), `"triples":0`) {
		t.Fatalf("restarted stats: %d %s", resp.StatusCode, body)
	}
	restart.Process.Signal(syscall.SIGINT)
	restart.Wait()
}
