// Command semwebd serves semweb databases over HTTP: tableau-query
// evaluation with memory-bounded NDJSON answer streaming, bulk loads,
// and snapshot/compact administration (package semweb/serve documents
// the endpoints and wire format).
//
// Usage:
//
//	semwebd [-addr host:port] [-root DIR] [-db name=dir ...]
//	        [-timeout D] [-max-timeout D] [-drain D] [-quiet]
//
// Databases come from two sources: every "-db name=dir" flag mounts one
// directory under the given name (created on first use if missing), and
// "-root DIR" serves every existing subdirectory of DIR under its own
// name. At least one of the two is required.
//
// semwebd owns its database directories exclusively while running (the
// write-ahead log takes an advisory lock); point other tools at them
// only after shutdown. On SIGINT or SIGTERM the server stops accepting
// connections, drains in-flight request streams for up to the -drain
// window, then closes every database and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semwebdb/semweb/serve"
)

// mountFlags collects repeated -db name=dir flags.
type mountFlags map[string]string

func (m mountFlags) String() string { return fmt.Sprintf("%v", map[string]string(m)) }

func (m mountFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("duplicate database name %q", name)
	}
	m[name] = dir
	return nil
}

func main() {
	mounts := mountFlags{}
	addr := flag.String("addr", "localhost:8585", "listen address (host:port; port 0 picks a free port)")
	root := flag.String("root", "", "serve every subdirectory of this directory as a database")
	timeout := flag.Duration("timeout", 0, "default per-query deadline when the request sets none (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0, "hard cap on the per-query timeout parameter (0 = uncapped)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight streams")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Var(mounts, "db", "mount a database directory as name=dir (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "semwebd: ", log.LstdFlags)
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: semwebd [-addr host:port] [-root DIR] [-db name=dir ...]")
		os.Exit(2)
	}

	cfg := serve.Config{
		Mounts:         mounts,
		Root:           *root,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv, err := serve.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	// Listen before announcing, so "listening on" carries the resolved
	// address (meaningful with port 0) and startup errors exit non-zero
	// before any client can connect.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The smoke test and operators' scripts key on this exact line.
	fmt.Printf("semwebd: listening on %s\n", ln.Addr())
	logger.Printf("serving databases: %v", srv.Names())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Printf("received %v, draining for up to %s", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(ctx); err != nil {
			// The drain window expired with streams still running; cut
			// them — closing their connections cancels the request
			// contexts, which aborts the solvers behind the streams.
			logger.Printf("drain window expired (%v), aborting in-flight streams", err)
			_ = httpSrv.Close()
		}
		cancel()
	case err := <-errc:
		// Serve never returns nil; anything but the Shutdown sentinel is
		// a listener failure.
		if !errors.Is(err, http.ErrServerClosed) {
			_ = srv.Close()
			logger.Fatal(err)
		}
	}

	if err := srv.Close(); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("shut down cleanly")
}
