// Command semwebd serves semweb databases over HTTP: tableau-query
// evaluation with memory-bounded NDJSON answer streaming, bulk loads,
// snapshot/compact administration, and a Prometheus /metrics endpoint
// (package semweb/serve documents the endpoints and wire format).
//
// Usage:
//
//	semwebd [-addr host:port] [-root DIR] [-db name=dir ...]
//	        [-follow leader-addr]
//	        [-timeout D] [-max-timeout D] [-drain D]
//	        [-log text|json] [-log-level LEVEL] [-quiet]
//	        [-slow-query D] [-pprof]
//
// Databases come from two sources: every "-db name=dir" flag mounts one
// directory under the given name (created on first use if missing), and
// "-root DIR" serves every existing subdirectory of DIR under its own
// name. At least one of the two is required.
//
// With "-follow leader-addr" the process runs as a read replica:
// every database opens as a mirror of the same-named database on the
// leader semwebd at that address (host:port or a full URL),
// bootstrapping from its snapshot and tailing its write-ahead log.
// Queries and reads serve locally; writes answer 503. Replication
// progress is visible in /v1/{db}/stats, GET /v1/{db}/repl/state, and
// the semwebd_repl_* metrics; a replica can itself be followed.
//
// Logs are structured (log/slog) on stderr: "-log" selects the text or
// JSON rendering, "-log-level" the threshold, and "-quiet" suppresses
// the per-request lines while keeping lifecycle messages. Every request
// carries a request id (echoed in the X-Request-Id response header);
// "-slow-query D" adds a warning line with per-phase timings for query
// requests slower than D, and "-pprof" exposes the Go profiler under
// /debug/pprof/.
//
// semwebd owns its database directories exclusively while running (the
// write-ahead log takes an advisory lock); point other tools at them
// only after shutdown. On SIGINT or SIGTERM the server stops accepting
// connections, drains in-flight request streams for up to the -drain
// window, then closes every database and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semwebdb/semweb/serve"
)

// mountFlags collects repeated -db name=dir flags.
type mountFlags map[string]string

func (m mountFlags) String() string { return fmt.Sprintf("%v", map[string]string(m)) }

func (m mountFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("duplicate database name %q", name)
	}
	m[name] = dir
	return nil
}

// newLogger builds the process logger from the -log and -log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log %q (want text or json)", format)
	}
}

func main() {
	mounts := mountFlags{}
	addr := flag.String("addr", "localhost:8585", "listen address (host:port; port 0 picks a free port)")
	root := flag.String("root", "", "serve every subdirectory of this directory as a database")
	follow := flag.String("follow", "", "run as a read replica of the semwebd at this address (host:port or URL); writes answer 503")
	timeout := flag.Duration("timeout", 0, "default per-query deadline when the request sets none (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0, "hard cap on the per-query timeout parameter (0 = uncapped)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight streams")
	logFormat := flag.String("log", "text", "log rendering: text or json")
	logLevel := flag.String("log-level", "info", "log threshold: debug, info, warn or error")
	quiet := flag.Bool("quiet", false, "suppress per-request logging (lifecycle messages remain)")
	slowQuery := flag.Duration("slow-query", 0, "log a warning with per-phase timings for query requests slower than this (0 = off)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Var(mounts, "db", "mount a database directory as name=dir (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semwebd:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		os.Exit(1)
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: semwebd [-addr host:port] [-root DIR] [-db name=dir ...]")
		os.Exit(2)
	}

	cfg := serve.Config{
		Mounts:         mounts,
		Root:           *root,
		Follow:         *follow,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SlowQuery:      *slowQuery,
		EnablePprof:    *pprofFlag,
	}
	if !*quiet {
		cfg.Logger = logger
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal("startup failed", err)
	}

	// Listen before announcing, so "listening on" carries the resolved
	// address (meaningful with port 0) and startup errors exit non-zero
	// before any client can connect.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The smoke test and operators' scripts key on this exact line.
	fmt.Printf("semwebd: listening on %s\n", ln.Addr())
	logger.Info("serving", slog.Any("dbs", srv.Names()), slog.String("addr", ln.Addr().String()))

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Info("draining", slog.String("signal", sig.String()), slog.Duration("window", *drain))
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(ctx); err != nil {
			// The drain window expired with streams still running; cut
			// them — closing their connections cancels the request
			// contexts, which aborts the solvers behind the streams.
			logger.Warn("drain window expired, aborting in-flight streams", slog.String("err", err.Error()))
			_ = httpSrv.Close()
		}
		cancel()
	case err := <-errc:
		// Serve never returns nil; anything but the Shutdown sentinel is
		// a listener failure.
		if !errors.Is(err, http.ErrServerClosed) {
			_ = srv.Close()
			fatal("serve failed", err)
		}
	}

	if err := srv.Close(); err != nil {
		fatal("close failed", err)
	}
	logger.Info("shut down cleanly")
}
