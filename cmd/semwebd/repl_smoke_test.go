package main_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startSemwebd launches the built binary with args, parses the
// "listening on" announcement, and returns the base URL plus a stopper
// that SIGINTs the process and requires a clean exit.
func startSemwebd(t *testing.T, bin string, args ...string) (base string, stop func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line from %v: %v", args, sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout)

	stopped := false
	return "http://" + strings.TrimSpace(line[i+len(marker):]), func() {
		if stopped {
			return
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("semwebd %v exited uncleanly: %v", args, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("semwebd %v did not exit after SIGINT", args)
		}
	}
}

// TestReplSmoke is the end-to-end replication smoke test the
// `make repl-smoke` target runs: build the real binary, start a leader
// and a -follow replica as separate processes, load through the leader,
// watch the data arrive and answer queries on the replica, check the
// replica refuses writes, then SIGINT both and require clean exits.
func TestReplSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "semwebd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building semwebd: %v\n%s", err, out)
	}

	leaderRoot, replicaRoot := t.TempDir(), t.TempDir()
	for _, root := range []string{leaderRoot, replicaRoot} {
		if err := os.Mkdir(filepath.Join(root, "art"), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	leaderBase, stopLeader := startSemwebd(t, bin, "-addr", "127.0.0.1:0", "-root", leaderRoot, "-drain", "5s")
	replicaBase, stopReplica := startSemwebd(t, bin, "-addr", "127.0.0.1:0", "-root", replicaRoot,
		"-follow", leaderBase, "-drain", "5s")

	// Load the repository's Turtle test data through the leader.
	ttl, err := os.ReadFile(filepath.Join("..", "..", "testdata", "art.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(leaderBase+"/v1/art/load", "text/turtle", strings.NewReader(string(ttl)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader load: %d %s", resp.StatusCode, body)
	}

	// Wait for the replica to mirror the leader's full log.
	type replState struct {
		Replica          bool   `json:"replica"`
		Generation       uint64 `json:"generation"`
		LeaderGeneration uint64 `json:"leader_generation"`
		WALSize          int64  `json:"wal_size"`
		AppliedBytes     int64  `json:"applied_bytes"`
		LagBytes         int64  `json:"lag_bytes"`
	}
	fetchState := func(base string) replState {
		t.Helper()
		resp, err := http.Get(base + "/v1/art/repl/state")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st replState
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ls, rs := fetchState(leaderBase), fetchState(replicaBase)
		if rs.Replica && rs.LeaderGeneration == ls.Generation && rs.AppliedBytes == ls.WALSize {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: leader %+v, replica %+v", ls, rs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The bundled query answers identically on both sides.
	rq, err := os.ReadFile(filepath.Join("..", "..", "testdata", "artists.rq"))
	if err != nil {
		t.Fatal(err)
	}
	countRows := func(base string) int {
		t.Helper()
		resp, err := http.Post(base+"/v1/art/query", "text/plain", strings.NewReader(string(rq)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query on %s: %d", base, resp.StatusCode)
		}
		rows := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe struct {
				Done  bool   `json:"done"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			if probe.Done {
				if probe.Error != "" {
					t.Fatalf("stream error on %s: %s", base, probe.Error)
				}
				return rows
			}
			rows++
		}
		t.Fatalf("stream on %s ended without a trailer", base)
		return 0
	}
	leaderRows, replicaRows := countRows(leaderBase), countRows(replicaBase)
	if leaderRows == 0 || leaderRows != replicaRows {
		t.Fatalf("leader answered %d rows, replica %d", leaderRows, replicaRows)
	}

	// The replica's write surface answers 503.
	resp, err = http.Post(replicaBase+"/v1/art/load", "application/n-triples",
		strings.NewReader("<urn:s> <urn:p> <urn:o> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replica load: %d, want 503", resp.StatusCode)
	}

	// Replication lag is visible on the metrics endpoint.
	resp, err = http.Get(replicaBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `semwebd_repl_lag_bytes{db="art"}`) {
		t.Fatalf("metrics lack the replication lag gauge:\n%s", firstLines(string(metrics), 20))
	}

	// Both sides shut down cleanly: replica first (so its tail loop
	// dies against a live leader), then the leader.
	stopReplica()
	stopLeader()
}

// firstLines truncates s for a readable failure message.
func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return fmt.Sprint(strings.Join(lines, "\n"))
}
