package main_test

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"semwebdb/internal/obs"
)

// TestMetricsSmoke is the end-to-end observability smoke test the
// `make metrics-smoke` target runs: build the real binary, start it
// with JSON logs, the pprof endpoints and a slow-query threshold
// enabled, drive load + query traffic, scrape /metrics, and validate
// the exposition and the engine families end to end.
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "semwebd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building semwebd: %v\n%s", err, out)
	}

	root := t.TempDir()
	if err := os.Mkdir(filepath.Join(root, "art"), 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-root", root,
		"-log", "json", "-log-level", "info", "-pprof", "-slow-query", "1ns", "-drain", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var logBuf strings.Builder
	logDone := make(chan struct{})
	go func() {
		defer close(logDone)
		b, _ := io.ReadAll(stderr)
		logBuf.Write(b)
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])
	go io.Copy(io.Discard, stdout)

	// Drive traffic: a load and a query, so the engine families tick.
	ttl, err := os.ReadFile(filepath.Join("..", "..", "testdata", "art.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/art/load", "text/turtle", strings.NewReader(string(ttl)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d", resp.StatusCode)
	}
	rq, err := os.ReadFile(filepath.Join("..", "..", "testdata", "artists.rq"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/art/query", "text/plain", strings.NewReader(string(rq)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("query response has no X-Request-Id")
	}
	resp.Body.Close()

	// Scrape and validate /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, family := range []string{
		"semweb_query_seconds",
		"semweb_closure_saturations_total",
		"semweb_wal_appends_total",
		"semweb_dict_interns_total",
		"semwebd_http_requests_total",
		"go_goroutines",
	} {
		if !strings.Contains(string(body), "# TYPE "+family+" ") {
			t.Errorf("/metrics is missing family %s", family)
		}
	}

	// pprof was enabled by flag.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: %d, want 200", resp.StatusCode)
	}

	// Clean shutdown, then check the captured JSON log: one structured
	// request line per request and the slow-query warning with phases.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("semwebd exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("semwebd did not exit after SIGINT")
	}
	<-logDone
	log := logBuf.String()
	for _, want := range []string{
		`"msg":"request"`, `"handler":"query"`, `"db":"art"`, `"req":`,
		`"msg":"slow query"`, `"phases":`,
	} {
		if !strings.Contains(log, want) {
			t.Errorf("structured log is missing %s; captured:\n%s", want, log)
		}
	}
}
