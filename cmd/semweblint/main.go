// Command semweblint runs semwebdb's project-invariant analyzers
// (internal/lint: mutexguard, scratchsafe, obsflush, fsyncrename,
// senterr) over the packages matching its arguments, plus the
// high-value stock vet passes. It is the mechanized form of the
// disciplines the engine's past PRs established — see the package
// documentation of internal/lint and the "Linting" section of the
// README.
//
// Usage:
//
//	semweblint [-stock=false] [packages]
//
// With no package arguments it checks ./.... Test files are included:
// the invariants bind tests too (a test comparing a sentinel with ==
// rots exactly like production code). Exit status is 0 when clean, 1
// when any analyzer reported a diagnostic, 2 on operational errors.
//
// The stock passes run through `go vet` (copylocks, lostcancel,
// unusedresult — the passes the go distribution itself ships).
// nilness needs golang.org/x/tools and is gated on that module being
// in the build: when `go list -m golang.org/x/tools` resolves, its
// nilness command is run as well; otherwise it is skipped with a
// note. No dependency is required to run everything else.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"semwebdb/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	stock := flag.Bool("stock", true, "also run the stock vet passes (copylocks, lostcancel, unusedresult; nilness when golang.org/x/tools is available)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: semweblint [flags] [packages]\n\nProject analyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "\n  %s\n    %s\n", a.Name, wrapDoc(a.Doc))
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "semweblint:", err)
		return 2
	}

	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semweblint:", err)
		return 2
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.Analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semweblint:", err)
			return 2
		}
		for _, d := range diags {
			bad = true
			fmt.Printf("%s\n", d)
		}
	}

	if *stock {
		switch runStock(patterns) {
		case 1:
			bad = true
		case 2:
			return 2
		}
	}

	if bad {
		return 1
	}
	return 0
}

// runStock runs the distribution's own high-value vet passes, and
// nilness when golang.org/x/tools happens to be in the module graph.
// Returns 0 (clean), 1 (findings), 2 (operational error).
func runStock(patterns []string) int {
	ret := 0
	vet := exec.Command("go", append([]string{"vet", "-copylocks", "-lostcancel", "-unusedresult"}, patterns...)...)
	vet.Stdout = os.Stdout
	vet.Stderr = os.Stderr
	if err := vet.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			fmt.Fprintln(os.Stderr, "semweblint: go vet:", err)
			return 2
		}
		ret = 1
	}

	if _, err := exec.Command("go", "list", "-m", "golang.org/x/tools").Output(); err != nil {
		fmt.Fprintln(os.Stderr, "semweblint: note: nilness skipped (golang.org/x/tools is not in the module graph; add it to enable the SSA-based stock pass)")
		return ret
	}
	nilness := exec.Command("go", append([]string{"run", "golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness"}, patterns...)...)
	nilness.Stdout = os.Stdout
	nilness.Stderr = os.Stderr
	if err := nilness.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			fmt.Fprintln(os.Stderr, "semweblint: nilness:", err)
			return 2
		}
		ret = 1
	}
	return ret
}

// wrapDoc reflows an analyzer doc string for the usage message.
func wrapDoc(doc string) string {
	return strings.Join(strings.Fields(doc), " ")
}
