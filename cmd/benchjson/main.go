// Command benchjson converts `go test -bench -benchmem` output read
// from stdin into a JSON document mapping benchmark name to its
// measured metrics (ns/op, B/op, allocs/op, and MB/s where reported).
// It backs the `make bench-json` target, which tracks the performance
// trajectory of the engine across PRs (BENCH_pr<N>.json files).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's measurements.
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_s,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Context    map[string]string  `json:"context"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	rep := Report{
		Context:    map[string]string{},
		Benchmarks: map[string]Metrics{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := trimProcsSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Metrics{Iterations: iters}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = ptr(v)
			case "allocs/op":
				m.AllocsPerOp = ptr(v)
			case "MB/s":
				m.MBPerSec = ptr(v)
			}
		}
		rep.Benchmarks[name] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// trimProcsSuffix strips the -N GOMAXPROCS suffix go test appends to
// benchmark names (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar).
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func ptr(v float64) *float64 { return &v }
