// Command benchjson converts `go test -bench -benchmem` output read
// from stdin into a JSON document mapping benchmark name to its
// measured metrics (ns/op, B/op, allocs/op, and MB/s where reported).
// It backs the `make bench-json` target, which tracks the performance
// trajectory of the engine across PRs (BENCH_pr<N>.json files).
//
// With -compare it instead reads two such documents and acts as the
// CI regression gate: it exits 1 when any benchmark present in both
// regresses by more than the threshold in ns/op (for benchmarks above
// the -min-ns noise floor) or in allocs/op (above the -min-allocs
// floor; allocation counts are machine-independent, so they gate
// reliably even when the baseline was recorded on different hardware).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH.json
//	benchjson -compare old.json new.json [-threshold 0.30] [-min-ns 10000] [-min-allocs 10]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's measurements.
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_s,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Context    map[string]string  `json:"context"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.30, "with -compare: fail on relative regressions above this fraction")
	minNs := flag.Float64("min-ns", 10000, "with -compare: ignore ns/op regressions of benchmarks whose baseline is below this (noise floor)")
	minAllocs := flag.Float64("min-allocs", 10, "with -compare: ignore allocs/op regressions of benchmarks whose baseline is below this")
	minIters := flag.Int64("min-iters", 2, "with -compare: ignore ns/op regressions unless both runs measured at least this many iterations (a single sample proves nothing)")
	allocsOnly := flag.Bool("allocs-only", false, "with -compare: gate only on allocs/op, which is machine-independent — use when baseline and fresh run come from different hardware (CI)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		if *allocsOnly {
			*minNs = math.Inf(1)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *minNs, *minAllocs, *minIters))
	}
	rep := Report{
		Context:    map[string]string{},
		Benchmarks: map[string]Metrics{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := trimProcsSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Metrics{Iterations: iters}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = ptr(v)
			case "allocs/op":
				m.AllocsPerOp = ptr(v)
			case "MB/s":
				m.MBPerSec = ptr(v)
			}
		}
		rep.Benchmarks[name] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// trimProcsSuffix strips the -N GOMAXPROCS suffix go test appends to
// benchmark names (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar).
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func ptr(v float64) *float64 { return &v }

// runCompare loads two reports and prints a regression table; it
// returns the process exit code (0 clean, 1 regressions found, 2 bad
// input).
func runCompare(oldPath, newPath string, threshold, minNs, minAllocs float64, minIters int64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	names := make([]string, 0, len(oldRep.Benchmarks))
	for name := range oldRep.Benchmarks {
		if _, ok := newRep.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks in common")
		return 2
	}

	regressions := 0
	for _, name := range names {
		o, n := oldRep.Benchmarks[name], newRep.Benchmarks[name]
		var notes []string
		if o.NsPerOp >= minNs && o.NsPerOp > 0 &&
			o.Iterations >= minIters && n.Iterations >= minIters {
			if r := n.NsPerOp / o.NsPerOp; r > 1+threshold {
				notes = append(notes, fmt.Sprintf("ns/op %.0f -> %.0f (x%.2f)", o.NsPerOp, n.NsPerOp, r))
			}
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil && *o.AllocsPerOp >= minAllocs {
			if r := *n.AllocsPerOp / *o.AllocsPerOp; r > 1+threshold {
				notes = append(notes, fmt.Sprintf("allocs/op %.0f -> %.0f (x%.2f)", *o.AllocsPerOp, *n.AllocsPerOp, r))
			}
		}
		if len(notes) > 0 {
			regressions++
			fmt.Printf("REGRESSION %s: %s\n", name, strings.Join(notes, ", "))
		}
	}
	dropped := len(oldRep.Benchmarks) - len(names)
	fmt.Printf("compared %d benchmarks (%s vs %s): %d regression(s) above %.0f%%",
		len(names), oldPath, newPath, regressions, threshold*100)
	if dropped > 0 {
		fmt.Printf("; %d baseline benchmark(s) missing from the new run", dropped)
	}
	fmt.Println()
	if regressions > 0 {
		return 1
	}
	return 0
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}
