// Command experiments runs the reproduction experiments of DESIGN.md
// (one per theorem/example of the paper) and prints their tables.
//
// Usage:
//
//	experiments               # run everything, full scale
//	experiments -quick        # reduced parameter sweeps
//	experiments -run E5,E8    # selected experiments
//	experiments -list         # list the registry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semwebdb/semweb"
	"semwebdb/semweb/cliutil"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list registered experiments")
	flag.Parse()

	tool := cliutil.New("experiments", "experiments [-quick] [-run E5,E8] [-list]")

	if *list {
		for _, e := range semweb.Experiments() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := semweb.ExperimentConfig{Quick: *quick}
	if *run == "" {
		if err := semweb.RunExperiments(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		e, ok := semweb.ExperimentByID(id)
		if !ok {
			tool.Failf("unknown id %q (use -list)", id)
		}
		if err := semweb.RunExperiment(os.Stdout, e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
