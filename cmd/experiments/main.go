// Command experiments runs the reproduction experiments of
// EXPERIMENTS.md (one per theorem/example of the paper) and prints their
// tables.
//
// Usage:
//
//	experiments               # run everything, full scale
//	experiments -quick        # reduced parameter sweeps
//	experiments -run E5,E8    # selected experiments
//	experiments -list         # list the registry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semwebdb/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list registered experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick}
	if *run == "" {
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
			os.Exit(2)
		}
		if err := experiments.RunOne(os.Stdout, e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
