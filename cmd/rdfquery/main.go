// Command rdfquery evaluates a tableau query (Section 4 of the paper)
// against an RDF database file and prints the answer graph as canonical
// N-Triples.
//
// Usage:
//
//	rdfquery [-sem union|merge] [-stats] query.rq data.nt
//
// The query file format is documented on semweb.ParseQuery: HEAD:/BODY:
// sections of triple patterns with ?variables, plus optional PREMISE:
// and CONSTRAINTS: sections (Definition 4.1).
package main

import (
	"flag"
	"fmt"

	"semwebdb/semweb"
	"semwebdb/semweb/cliutil"
)

func main() {
	sem := flag.String("sem", "union", "answer semantics: union (ans∪) or merge (ans+)")
	stats := flag.Bool("stats", false, "print counts instead of the answer graph")
	skipNF := flag.Bool("skip-nf", false, "match against cl(D+P) instead of nf(D+P) (faster, loses Theorem 4.6 invariance)")
	flag.Parse()

	tool := cliutil.New("rdfquery", "rdfquery [-sem union|merge] [-stats] query.rq data.nt")
	if flag.NArg() != 2 {
		tool.UsageExit()
	}

	q, err := semweb.ParseQuery(string(tool.ReadFile(flag.Arg(0))))
	if err != nil {
		tool.Fail(err)
	}
	switch *sem {
	case "union":
		q.Under(semweb.Union)
	case "merge":
		q.Under(semweb.Merge)
	default:
		tool.Failf("unknown semantics %q", *sem)
	}
	if *skipNF {
		q.WithoutNormalForm()
	}

	db, err := semweb.Open(semweb.WithGraph(tool.LoadGraph(flag.Arg(1))))
	if err != nil {
		tool.Fail(err)
	}
	ans, err := db.Eval(tool.Context(), q)
	if err != nil {
		tool.Fail(err)
	}

	if *stats {
		fmt.Printf("query: %s\n", q)
		fmt.Printf("matchings: %d\nsingle answers: %d\nanswer triples: %d\n",
			ans.Matchings(), len(ans.Singles()), ans.Len())
		fmt.Printf("answer lean: %v\n", ans.Lean())
		return
	}
	tool.WriteGraph(ans.Graph())
}
