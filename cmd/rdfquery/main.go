// Command rdfquery evaluates a tableau query (Section 4 of the paper)
// against an RDF database file and prints the answer graph as canonical
// N-Triples.
//
// Usage:
//
//	rdfquery [-sem union|merge] [-stats] query.rq data.nt
//
// The query file format is documented on query.ParseQuery: HEAD:/BODY:
// sections of triple patterns with ?variables, plus optional PREMISE:
// and CONSTRAINTS: sections (Definition 4.1).
package main

import (
	"flag"
	"fmt"
	"os"

	"semwebdb/internal/query"
	"semwebdb/internal/rdfio"
)

func main() {
	sem := flag.String("sem", "union", "answer semantics: union (ans∪) or merge (ans+)")
	stats := flag.Bool("stats", false, "print counts instead of the answer graph")
	skipNF := flag.Bool("skip-nf", false, "match against cl(D+P) instead of nf(D+P) (faster, loses Theorem 4.6 invariance)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: rdfquery [-sem union|merge] [-stats] query.rq data.nt")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rdfquery:", err)
		os.Exit(2)
	}

	qsrc, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	q, err := query.ParseQuery(string(qsrc))
	if err != nil {
		fail(err)
	}
	d, err := rdfio.Load(flag.Arg(1))
	if err != nil {
		fail(err)
	}

	opts := query.Options{SkipNormalForm: *skipNF}
	switch *sem {
	case "union":
		opts.Semantics = query.UnionSemantics
	case "merge":
		opts.Semantics = query.MergeSemantics
	default:
		fail(fmt.Errorf("unknown semantics %q", *sem))
	}

	ans, err := query.Evaluate(q, d, opts)
	if err != nil {
		fail(err)
	}
	if *stats {
		fmt.Printf("query: %s\n", q)
		fmt.Printf("matchings: %d\nsingle answers: %d\nanswer triples: %d\n",
			ans.Matchings, len(ans.Singles), ans.Graph.Len())
		fmt.Printf("answer lean: %v\n", query.IsLeanAnswer(ans))
		return
	}
	if err := rdfio.Dump(os.Stdout, ans.Graph); err != nil {
		fail(err)
	}
}
