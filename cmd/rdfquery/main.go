// Command rdfquery evaluates a tableau query (Section 4 of the paper)
// against an RDF database file and prints the answer graph as canonical
// N-Triples.
//
// Usage:
//
//	rdfquery [-sem union|merge] [-stats] query.rq data.nt
//	rdfquery -addr host:port -db name [-sem ...] [-limit N] [-timeout D] query.rq
//
// The query file format is documented on semweb.ParseQuery: HEAD:/BODY:
// sections of triple patterns with ?variables, plus optional PREMISE:
// and CONSTRAINTS: sections (Definition 4.1).
//
// With -addr the query runs remotely against a semwebd server instead
// of a local file: the single answers stream to stdout as NDJSON rows
// — one JSON object per line, as the solver finds them, in bounded
// memory on both ends — followed by nothing (the end-of-stream trailer
// is consumed and reported on stderr, or as the -stats summary).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"semwebdb/semweb"
	"semwebdb/semweb/cliutil"
)

func main() {
	sem := flag.String("sem", "union", "answer semantics: union (ans∪) or merge (ans+)")
	stats := flag.Bool("stats", false, "print counts instead of the answer graph")
	skipNF := flag.Bool("skip-nf", false, "match against cl(D+P) instead of nf(D+P) (faster, loses Theorem 4.6 invariance)")
	limit := flag.Int("limit", 0, "cap the matchings enumerated (0 = unlimited)")
	addr := flag.String("addr", "", "query a semwebd server at this host:port instead of a local file")
	dbName := flag.String("db", "", "with -addr: the database name to query")
	timeout := flag.Duration("timeout", 0, "with -addr: server-side deadline for the query (0 = server default)")
	flag.Parse()

	tool := cliutil.New("rdfquery", "rdfquery [-sem union|merge] [-stats] query.rq data.nt | rdfquery -addr host:port -db name query.rq")
	switch *sem {
	case "union", "merge":
	default:
		tool.Failf("unknown semantics %q", *sem)
	}

	if *addr != "" {
		runRemote(tool, *addr, *dbName, *sem, *skipNF, *limit, *timeout, *stats)
		return
	}

	if flag.NArg() != 2 {
		tool.UsageExit()
	}
	q, err := semweb.ParseQuery(string(tool.ReadFile(flag.Arg(0))))
	if err != nil {
		tool.Fail(err)
	}
	switch *sem {
	case "union":
		q.Under(semweb.Union)
	case "merge":
		q.Under(semweb.Merge)
	}
	if *skipNF {
		q.WithoutNormalForm()
	}
	if *limit > 0 {
		q.LimitMatchings(*limit)
	}

	db, err := semweb.Open(semweb.WithGraph(tool.LoadGraph(flag.Arg(1))))
	if err != nil {
		tool.Fail(err)
	}
	ans, err := db.Eval(tool.Context(), q)
	if err != nil {
		tool.Fail(err)
	}

	if *stats {
		fmt.Printf("query: %s\n", q)
		fmt.Printf("matchings: %d\nsingle answers: %d\nanswer triples: %d\n",
			ans.Matchings(), len(ans.Singles()), ans.Len())
		fmt.Printf("answer lean: %v\n", ans.Lean())
		return
	}
	tool.WriteGraph(ans.Graph())
}

// runRemote streams the query against a semwebd server (client mode).
func runRemote(tool *cliutil.Tool, addr, dbName, sem string, skipNF bool, limit int, timeout time.Duration, stats bool) {
	if dbName == "" {
		tool.Failf("-addr needs -db NAME")
	}
	if flag.NArg() != 1 {
		tool.UsageExit()
	}
	req := &cliutil.QueryRequest{
		Addr:           addr,
		DB:             dbName,
		Query:          string(tool.ReadFile(flag.Arg(0))),
		Semantics:      sem,
		SkipNormalForm: skipNF,
		Limit:          limit,
		Timeout:        timeout,
	}
	var sink io.Writer = os.Stdout
	if stats {
		sink = io.Discard
	}
	trailer, err := cliutil.StreamQuery(tool.Context(), req, sink)
	if err != nil {
		tool.Fail(err)
	}
	if stats {
		fmt.Printf("rows: %d\nmatchings: %d\ntruncated: %v\nelapsed_ms: %.3f\n",
			trailer.Rows, trailer.Matchings, trailer.Truncated, trailer.ElapsedMS)
	} else if trailer.Truncated {
		fmt.Fprintf(os.Stderr, "rdfquery: answer truncated at %d matchings (raise -limit)\n", trailer.Matchings)
	}
}
