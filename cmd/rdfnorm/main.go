// Command rdfnorm computes the representations of Section 3 of the paper
// for an RDF file and prints the result as canonical N-Triples:
//
//	rdfnorm -to closure  g.nt   # cl(G) = RDFS-cl(G)      (Definition 3.5)
//	rdfnorm -to core     g.nt   # core(G)                 (Theorem 3.10)
//	rdfnorm -to nf       g.nt   # nf(G) = core(cl(G))     (Definition 3.18)
//	rdfnorm -to minimal  g.nt   # unique minimal repr.    (Theorem 3.16)
//	rdfnorm -to canon    g.nt   # canonical blank labels  (isomorphism certificate)
//
// With -stats, only sizes are reported. With -fingerprint, a total
// equivalence certificate (the canonical serialization of the normal
// form) is printed: two files are semantically equivalent iff their
// fingerprints coincide.
package main

import (
	"flag"
	"fmt"

	"semwebdb/semweb"
	"semwebdb/semweb/cliutil"
)

func main() {
	to := flag.String("to", "nf", "target representation: closure | core | nf | minimal | canon")
	stats := flag.Bool("stats", false, "print sizes instead of the graph")
	fingerprint := flag.Bool("fingerprint", false, "print the equivalence fingerprint (canonical nf serialization)")
	flag.Parse()

	tool := cliutil.New("rdfnorm", "rdfnorm [-to closure|core|nf|minimal|canon] [-stats|-fingerprint] file")
	if flag.NArg() != 1 {
		tool.UsageExit()
	}
	ctx := tool.Context()

	db, err := semweb.Open(semweb.WithGraph(tool.LoadGraph(flag.Arg(0))))
	if err != nil {
		tool.Fail(err)
	}

	if *fingerprint {
		fp, err := db.Fingerprint(ctx)
		if err != nil {
			tool.Fail(err)
		}
		fmt.Print(fp)
		return
	}

	var out *semweb.Graph
	switch *to {
	case "closure":
		out, err = db.Closure(ctx)
	case "core":
		out, err = db.Core(ctx)
	case "nf":
		out, err = db.NormalForm(ctx)
	case "minimal":
		out, err = db.MinimalRepresentation()
	case "canon":
		out = db.Canonical()
	default:
		tool.Failf("unknown target %q", *to)
	}
	if err != nil {
		tool.Fail(err)
	}

	if *stats {
		in := db.Stats()
		fmt.Printf("input: %d triples, %d blanks\n", in.Triples, in.BlankNodes)
		fmt.Printf("%s: %d triples, %d blanks\n", *to, out.Len(), len(out.BlankNodes()))
		return
	}
	tool.WriteGraph(out)
}
