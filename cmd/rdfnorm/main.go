// Command rdfnorm computes the representations of Section 3 of the paper
// for an RDF file and prints the result as canonical N-Triples:
//
//	rdfnorm -to closure  g.nt   # cl(G) = RDFS-cl(G)      (Definition 3.5)
//	rdfnorm -to core     g.nt   # core(G)                 (Theorem 3.10)
//	rdfnorm -to nf       g.nt   # nf(G) = core(cl(G))     (Definition 3.18)
//	rdfnorm -to minimal  g.nt   # unique minimal repr.    (Theorem 3.16)
//	rdfnorm -to canon    g.nt   # canonical blank labels  (isomorphism certificate)
//
// With -stats, only sizes are reported. With -fingerprint, a total
// equivalence certificate (the canonical serialization of the normal
// form) is printed: two files are semantically equivalent iff their
// fingerprints coincide.
package main

import (
	"flag"
	"fmt"
	"os"

	"semwebdb/internal/canon"
	"semwebdb/internal/closure"
	"semwebdb/internal/core"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfio"
)

func main() {
	to := flag.String("to", "nf", "target representation: closure | core | nf | minimal | canon")
	stats := flag.Bool("stats", false, "print sizes instead of the graph")
	fingerprint := flag.Bool("fingerprint", false, "print the equivalence fingerprint (canonical nf serialization)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rdfnorm [-to closure|core|nf|minimal|canon] [-stats|-fingerprint] file")
		os.Exit(2)
	}
	g, err := rdfio.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfnorm:", err)
		os.Exit(2)
	}

	if *fingerprint {
		fmt.Print(core.Fingerprint(g))
		return
	}

	var out *graph.Graph
	switch *to {
	case "closure":
		out = closure.Cl(g)
	case "core":
		out, _ = core.Core(g)
	case "nf":
		out = core.NormalForm(g)
	case "minimal":
		m, err := core.MinimalRepresentation(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfnorm:", err)
			os.Exit(2)
		}
		out = m
	case "canon":
		out = canon.Canonicalize(g)
	default:
		fmt.Fprintf(os.Stderr, "rdfnorm: unknown target %q\n", *to)
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("input: %d triples, %d blanks\n", g.Len(), len(g.BlankNodes()))
		fmt.Printf("%s: %d triples, %d blanks\n", *to, out.Len(), len(out.BlankNodes()))
		return
	}
	if err := rdfio.Dump(os.Stdout, out); err != nil {
		fmt.Fprintln(os.Stderr, "rdfnorm:", err)
		os.Exit(2)
	}
}
