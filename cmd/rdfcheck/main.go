// Command rdfcheck decides the semantic relations of the paper between
// two RDF files: entailment (Theorem 2.8), equivalence, isomorphism, and
// single-graph properties (leanness, simplicity).
//
// Usage:
//
//	rdfcheck -op entails  g1.nt g2.nt   # G1 ⊨ G2 ?
//	rdfcheck -op equiv    g1.nt g2.ttl  # G1 ≡ G2 ?
//	rdfcheck -op iso      g1.nt g2.nt   # G1 ≅ G2 ?
//	rdfcheck -op lean     g.nt          # is G lean?
//	rdfcheck -op simple   g.nt          # is G a simple graph?
//	rdfcheck -op stats    g.nt|dbdir    # size, index and on-disk statistics (-json for machine output)
//	rdfcheck -op snapshot g.nt dbdir    # load G and checkpoint it into a database directory
//	rdfcheck -op restore  dbdir         # dump a database directory as canonical N-Triples
//	rdfcheck -op compact  dbdir         # rebuild the dictionary from the live triples
//	rdfcheck -op repl-status [-addr host:port] [-db name]  # replication state of a running semwebd
//
// snapshot, restore and compact work on the durable database
// directories of semweb.OpenAt (binary snapshot + write-ahead log);
// stats accepts a directory too and then reports the on-disk
// footprint. compact drops dictionary entries no stored triple uses,
// renumbers the rest densely and rewrites the snapshot, printing the
// before/after term and byte counts — the maintenance command for
// long-lived databases whose dictionaries outgrew their data. With
// -proof, entailment also prints a checked derivation in the deductive
// system of Section 2.3.2.
//
// repl-status is the one network operation: it asks the semwebd at
// -addr for GET /v1/{db}/repl/state and reports WAL generation,
// applied offset and replication lag — on a leader, the log position
// followers replicate from; on a replica (semwebd -follow), how far
// behind its leader it is. -json prints the response verbatim.
//
// Exit status: 0 when the relation holds, 1 when it does not, 2 on
// errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"semwebdb/semweb"
	"semwebdb/semweb/cliutil"
)

func main() {
	op := flag.String("op", "entails", "operation: entails | equiv | iso | lean | simple | stats | snapshot | restore | compact | repl-status")
	proof := flag.Bool("proof", false, "with -op entails: print a checked proof (Definition 2.5)")
	asJSON := flag.Bool("json", false, "with -op stats or repl-status: print the JSON encoding (the semwebd wire format)")
	addr := flag.String("addr", "localhost:8585", "with -op repl-status: address of the semwebd to query (host:port or URL)")
	dbName := flag.String("db", "default", "with -op repl-status: database name on that semwebd")
	quiet := flag.Bool("q", false, "suppress output; use the exit status only")
	flag.Parse()

	tool := cliutil.New("rdfcheck", "rdfcheck -op entails|equiv|iso|lean|simple|stats|snapshot|restore|compact|repl-status [-proof] [-json] [-addr host:port] [-db name] [-q] [file|dir ...]")
	ctx := tool.Context()

	say := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	needArgs := func(n int) []string {
		if flag.NArg() != n {
			tool.Failf("operation %q needs %d file argument(s)", *op, n)
		}
		return flag.Args()
	}
	check := func(holds bool, err error) bool {
		if err != nil {
			tool.Fail(err)
		}
		return holds
	}

	var holds bool
	switch *op {
	case "entails", "equiv", "iso":
		args := needArgs(2)
		g1 := tool.LoadGraph(args[0])
		g2 := tool.LoadGraph(args[1])
		switch *op {
		case "entails":
			if *proof {
				p, ok := semweb.Prove(g1, g2)
				holds = ok
				if ok {
					if err := p.Verify(g1, g2); err != nil {
						tool.Failf("internal: produced proof fails verification: %v", err)
					}
					say("G1 ⊨ G2 with a %d-step proof:", p.Len())
					for i, st := range p.Steps {
						if st.Rule == semweb.RuleExistential {
							say("  %2d. %s with map over %d blanks", i+1, st.Rule, len(st.Mu))
						} else {
							say("  %2d. %s", i+1, st.Inst)
						}
					}
				} else {
					say("G1 ⊭ G2")
				}
			} else {
				holds = check(semweb.Entails(ctx, g1, g2))
				say("G1 ⊨ G2: %v", holds)
			}
		case "equiv":
			holds = check(semweb.Equivalent(ctx, g1, g2))
			say("G1 ≡ G2: %v", holds)
		case "iso":
			holds = semweb.Isomorphic(g1, g2)
			say("G1 ≅ G2: %v", holds)
		}
	case "lean":
		args := needArgs(1)
		holds = check(semweb.IsLean(ctx, tool.LoadGraph(args[0])))
		say("lean: %v", holds)
	case "simple":
		args := needArgs(1)
		holds = semweb.IsSimple(tool.LoadGraph(args[0]))
		say("simple: %v", holds)
	case "stats":
		args := needArgs(1)
		var db *semweb.DB
		var err error
		if fi, serr := os.Stat(args[0]); serr == nil && fi.IsDir() {
			db, err = openExistingDB(tool, args[0])
		} else {
			db, err = semweb.Open(semweb.WithGraph(tool.LoadGraph(args[0])))
		}
		if err != nil {
			tool.Fail(err)
		}
		st := db.Stats()
		if *asJSON {
			// The same encoding semwebd's GET /v1/{db}/stats serves, for
			// scripts that consume either source.
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(st); err != nil {
				tool.Fail(err)
			}
			if st.Persistent {
				if err := db.Close(); err != nil {
					tool.Fail(err)
				}
			}
			holds = true
			break
		}
		say("triples:    %d", st.Triples)
		say("blanks:     %d", st.BlankNodes)
		say("terms:      %d distinct (%d interned)", st.Terms, st.DictTerms)
		say("indexes:    SPO=%d POS=%d OSP=%d entries", st.IndexSizes[0], st.IndexSizes[1], st.IndexSizes[2])
		if st.Persistent {
			say("snapshot:   %d bytes on disk", st.SnapshotBytes)
			say("wal:        %d bytes in %d records", st.WALBytes, st.WALRecords)
			if err := db.Close(); err != nil {
				tool.Fail(err)
			}
		}
		holds = true
	case "snapshot":
		args := needArgs(2)
		g := tool.LoadGraph(args[0])
		db, err := semweb.OpenAt(args[1])
		if err != nil {
			tool.Fail(err)
		}
		if err := db.AddGraph(g); err != nil {
			tool.Fail(err)
		}
		if err := db.Snapshot(); err != nil {
			tool.Fail(err)
		}
		st := db.Stats()
		if err := db.Close(); err != nil {
			tool.Fail(err)
		}
		say("snapshotted %d triples (%d terms) into %s: %d bytes", st.Triples, st.DictTerms, args[1], st.SnapshotBytes)
		holds = true
	case "compact":
		args := needArgs(1)
		requireDBDir(tool, args[0])
		db, err := semweb.OpenAt(args[0])
		if err != nil {
			tool.Fail(err)
		}
		before := db.Stats()
		if err := db.Compact(); err != nil {
			tool.Fail(err)
		}
		after := db.Stats()
		if err := db.Close(); err != nil {
			tool.Fail(err)
		}
		say("dict terms: %d -> %d (%d live)", before.DictTerms, after.DictTerms, after.Terms)
		say("snapshot:   %d -> %d bytes on disk", before.SnapshotBytes, after.SnapshotBytes)
		say("wal:        %d -> %d bytes", before.WALBytes, after.WALBytes)
		holds = true
	case "repl-status":
		needArgs(0)
		st, err := fetchReplState(ctx, *addr, *dbName)
		if err != nil {
			tool.Fail(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(st); err != nil {
				tool.Fail(err)
			}
			holds = true
			break
		}
		say("replica:    %v", st.Replica)
		say("generation: %d", st.Generation)
		say("wal:        %d bytes in %d records", st.WALSize, st.WALRecords)
		say("snapshot:   %d bytes", st.SnapshotBytes)
		if st.Replica {
			say("leader gen: %d", st.LeaderGeneration)
			say("applied:    %d bytes, %d records", st.AppliedBytes, st.AppliedRecords)
			say("leader wal: %d bytes in %d records", st.LeaderWALSize, st.LeaderWALRecords)
			say("lag:        %d bytes, %d records", st.LagBytes, st.LagRecords)
			say("bootstraps: %d (reconnects %d)", st.Bootstraps, st.Reconnects)
		}
		holds = true
	case "restore":
		args := needArgs(1)
		db, err := openExistingDB(tool, args[0])
		if err != nil {
			tool.Fail(err)
		}
		tool.WriteGraph(db.Graph())
		if err := db.Close(); err != nil {
			tool.Fail(err)
		}
		holds = true
	default:
		tool.Failf("unknown operation %q", *op)
	}
	if !holds {
		os.Exit(1)
	}
}

// fetchReplState asks the semwebd at addr for the replication state of
// the named database.
func fetchReplState(ctx context.Context, addr, db string) (semweb.ReplState, error) {
	var st semweb.ReplState
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u := strings.TrimRight(base, "/") + "/v1/" + url.PathEscape(db) + "/repl/state"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return st, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return st, fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return st, fmt.Errorf("%s: decoding response: %w", u, err)
	}
	return st, nil
}

// requireDBDir fails unless dir already holds a database — a writable
// OpenAt would silently create one, fatal for a typoed restore or
// compact.
func requireDBDir(tool *cliutil.Tool, dir string) {
	for _, name := range []string{semweb.SnapshotFileName, semweb.WALFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return
		}
	}
	tool.Failf("%s is not a database directory (no %s or %s)", dir, semweb.SnapshotFileName, semweb.WALFileName)
}

// openExistingDB opens a database directory for inspection, read-only:
// it refuses paths that do not already hold a database and never
// creates, locks, truncates or compacts anything, so it is safe
// against a directory a live service is writing.
func openExistingDB(tool *cliutil.Tool, dir string) (*semweb.DB, error) {
	requireDBDir(tool, dir)
	return semweb.OpenAtReadOnly(dir)
}
