// Command rdfcheck decides the semantic relations of the paper between
// two RDF files: entailment (Theorem 2.8), equivalence, isomorphism, and
// single-graph properties (leanness, simplicity).
//
// Usage:
//
//	rdfcheck -op entails  g1.nt g2.nt   # G1 ⊨ G2 ?
//	rdfcheck -op equiv    g1.nt g2.ttl  # G1 ≡ G2 ?
//	rdfcheck -op iso      g1.nt g2.nt   # G1 ≅ G2 ?
//	rdfcheck -op lean     g.nt          # is G lean?
//	rdfcheck -op simple   g.nt          # is G a simple graph?
//
// With -proof, entailment also prints a checked derivation in the
// deductive system of Section 2.3.2. Exit status: 0 when the relation
// holds, 1 when it does not, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"semwebdb/internal/core"
	"semwebdb/internal/entail"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfio"
	"semwebdb/internal/rdfs"
)

func main() {
	op := flag.String("op", "entails", "operation: entails | equiv | iso | lean | simple")
	proof := flag.Bool("proof", false, "with -op entails: print a checked proof (Definition 2.5)")
	quiet := flag.Bool("q", false, "suppress output; use the exit status only")
	flag.Parse()

	say := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rdfcheck:", err)
		os.Exit(2)
	}
	needArgs := func(n int) []string {
		if flag.NArg() != n {
			fail(fmt.Errorf("operation %q needs %d file argument(s)", *op, n))
		}
		return flag.Args()
	}

	var holds bool
	switch *op {
	case "entails", "equiv", "iso":
		args := needArgs(2)
		g1, err := rdfio.Load(args[0])
		if err != nil {
			fail(err)
		}
		g2, err := rdfio.Load(args[1])
		if err != nil {
			fail(err)
		}
		switch *op {
		case "entails":
			if *proof {
				p, ok := entail.EntailsWithProof(g1, g2)
				holds = ok
				if ok {
					if err := p.Verify(g1, g2); err != nil {
						fail(fmt.Errorf("internal: produced proof fails verification: %w", err))
					}
					say("G1 ⊨ G2 with a %d-step proof:", p.Len())
					for i, st := range p.Steps {
						if st.Rule == rdfs.RuleExistential {
							say("  %2d. %s with map over %d blanks", i+1, st.Rule, len(st.Mu))
						} else {
							say("  %2d. %s", i+1, st.Inst)
						}
					}
				} else {
					say("G1 ⊭ G2")
				}
			} else {
				holds = entail.Entails(g1, g2)
				say("G1 ⊨ G2: %v", holds)
			}
		case "equiv":
			holds = entail.Equivalent(g1, g2)
			say("G1 ≡ G2: %v", holds)
		case "iso":
			holds = hom.Isomorphic(g1, g2)
			say("G1 ≅ G2: %v", holds)
		}
	case "lean":
		args := needArgs(1)
		g, err := rdfio.Load(args[0])
		if err != nil {
			fail(err)
		}
		holds = core.IsLean(g)
		say("lean: %v", holds)
	case "simple":
		args := needArgs(1)
		g, err := rdfio.Load(args[0])
		if err != nil {
			fail(err)
		}
		holds = rdfs.IsSimple(g)
		say("simple: %v", holds)
	default:
		fail(fmt.Errorf("unknown operation %q", *op))
	}
	if !holds {
		os.Exit(1)
	}
}
