# Tier-1 verification and development targets for semwebdb.

GO ?= go

.PHONY: verify check fmt vet test bench build examples

# Tier-1: must stay green (ROADMAP.md).
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify + static hygiene.
check: verify vet fmt

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Benchmark guard: compile and smoke-run every benchmark once so
# bench_test.go can never rot silently.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Run every example program (living API documentation).
examples:
	@for e in quickstart artgallery premises normalforms containment; do \
		echo "== examples/$$e =="; \
		$(GO) run ./examples/$$e || exit 1; \
	done
