# Tier-1 verification and development targets for semwebdb.

GO ?= go

# Benchmark settings for the JSON perf snapshot. 0.2s per benchmark
# keeps a full run around a minute while staying reasonably stable.
BENCHTIME ?= 0.2s
BENCH_JSON ?= BENCH_pr10.json
# The newest committed per-PR snapshot is the regression baseline.
BENCH_BASELINE ?= $(shell ls BENCH_pr*.json 2>/dev/null | sort -V | tail -1)

.PHONY: verify check fmt vet lint test test-race race-closure race-serve race-delta race-obs race-repl serve-smoke metrics-smoke repl-smoke bench bench-json bench-gate fuzz build examples

# Tier-1: must stay green (ROADMAP.md).
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-detector pass (slow; CI runs the closure-focused subset).
test-race:
	$(GO) test -race ./...

# The race leg CI runs per GOMAXPROCS matrix entry: vet plus the
# closure engine (the only layer with intra-request parallelism) under
# the race detector.
race-closure: vet
	$(GO) test -race -count=1 ./internal/closure/...

# The service tier's concurrency surface under the race detector: the
# streaming cursor (producer goroutine per query) and the HTTP layer's
# concurrent query/load/snapshot/compact interleavings.
race-serve:
	$(GO) test -race -count=1 ./semweb ./semweb/serve/...

# Incremental closure maintenance under the race detector: the delta
# engine's property tests, the prepared-cache maintenance paths
# (concurrent Add/Eval/Stream against one DB), and the HTTP
# load-vs-stream interleavings that ride the delta path.
race-delta:
	$(GO) test -race -count=1 ./internal/closure/... -run 'Delta|Maintainer'
	$(GO) test -race -count=1 ./semweb -run TestDelta
	$(GO) test -race -count=1 ./semweb/serve/... -run 'TestLoadQueryTakesDeltaPath|TestConcurrentLoadAndStream'

# The observability surface under the race detector: registry scrapes
# racing updates, and the engine-seam instrumentation under concurrent
# load/stream/snapshot traffic.
race-obs:
	$(GO) test -race -count=1 ./internal/obs/...
	$(GO) test -race -count=1 ./semweb -run TestMetrics
	$(GO) test -race -count=1 ./semweb/serve/... -run 'TestMetrics|TestRequestLog'

# The replication stack under the race detector: the follower's
# bootstrap/tail/apply loop against a live leader (kills, generation
# switches, local restarts), the crash/failover matrix in package
# semweb, and the HTTP follower serving queries while batches stream
# through the long-poll tail.
race-repl:
	$(GO) test -race -count=1 ./internal/repl/...
	$(GO) test -race -count=1 ./semweb -run TestRepl
	$(GO) test -race -count=1 ./semweb/serve/... -run 'TestServeFollower|TestReplEndpoints'

# End-to-end smoke of the semwebd binary: build it, serve a temp dbdir,
# load the test data over HTTP, stream a query, hit the admin
# endpoints, SIGINT, and require a clean drain + exit 0.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/semwebd

# End-to-end smoke of the observability surface: build semwebd with
# JSON logs, pprof and a slow-query threshold, drive traffic, scrape
# /metrics, and validate the Prometheus exposition and structured logs.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke -count=1 -v ./cmd/semwebd

# End-to-end smoke of WAL-shipping replication: build semwebd, run a
# leader and a -follow replica as separate processes, load through the
# leader, watch convergence on /repl/state, query both sides, and
# require clean SIGINT exits.
repl-smoke:
	$(GO) test -run TestReplSmoke -count=1 -v ./cmd/semwebd

# verify + static hygiene.
check: verify vet fmt lint

vet:
	$(GO) vet ./...

# Project-invariant analyzers (internal/lint via cmd/semweblint):
# mutexguard, scratchsafe, obsflush, fsyncrename, senterr, plus the
# stock vet passes (copylocks, lostcancel, unusedresult; nilness when
# golang.org/x/tools is in the module graph). See the README's
# "Linting" section for the annotation and suppression conventions.
lint:
	$(GO) run ./cmd/semweblint ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Benchmark guard: compile and smoke-run every benchmark once so
# bench_test.go can never rot silently.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Perf trajectory snapshot: run the benchmark families and record
# name -> ns/op, B/op, allocs/op as JSON (see cmd/benchjson).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Benchmark regression gate: run the tracked benchmark families fresh
# and compare against the newest committed BENCH_pr*.json, failing on
# >30% regressions (see cmd/benchjson -compare for the noise floors).
# On hardware other than the baseline's, ns/op comparisons are
# meaningless — set BENCH_GATE_FLAGS=-allocs-only to gate solely on
# the machine-independent allocation counts (CI does).
BENCH_GATE_FLAGS ?=
bench-gate:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_pr*.json baseline found"; exit 2; }
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson > bench_fresh.json
	$(GO) run ./cmd/benchjson -compare $(BENCH_GATE_FLAGS) $(BENCH_BASELINE) bench_fresh.json

# Short fuzz pass over the parsers and the storage codecs (native Go
# fuzzing; seeds under internal/*/testdata/fuzz are always exercised by
# plain `make test`).
fuzz:
	$(GO) test -fuzz 'FuzzParse$$' -fuzztime 30s ./internal/ntriples/
	$(GO) test -fuzz FuzzParseLine -fuzztime 15s ./internal/ntriples/
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/turtle/
	$(GO) test -fuzz FuzzDecodeSnapshot -fuzztime 30s ./internal/persist/
	$(GO) test -fuzz FuzzReplayWAL -fuzztime 30s ./internal/persist/
	$(GO) test -fuzz FuzzReplStream -fuzztime 30s ./internal/repl/

# Run every example program (living API documentation).
examples:
	@for e in quickstart artgallery premises normalforms containment; do \
		echo "== examples/$$e =="; \
		$(GO) run ./examples/$$e || exit 1; \
	done
