// Package ntriples implements a parser and canonical serializer for the
// N-Triples concrete syntax (the line-based RDF interchange format). It
// is the on-disk format used by the command-line tools and examples.
//
// Supported grammar (per the W3C N-Triples recommendation):
//
//	triple     := subject predicate object '.'
//	subject    := IRIREF | BLANK_NODE_LABEL
//	predicate  := IRIREF
//	object     := IRIREF | BLANK_NODE_LABEL | literal
//	literal    := STRING_LITERAL_QUOTE ('^^' IRIREF | LANGTAG)?
//
// with '#' comments, blank lines, and \uXXXX / \UXXXXXXXX escapes in both
// IRIs and literals.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// ParseError reports a syntax error with line/column position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse reads an N-Triples document and returns the graph it describes.
func Parse(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		t, ok, err := ParseLine(sc.Text(), lineNo)
		if err != nil {
			return nil, err
		}
		if ok {
			g.Add(t)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: read: %w", err)
	}
	return g, nil
}

// ParseString parses an N-Triples document from a string.
func ParseString(s string) (*graph.Graph, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses a document and panics on error; for tests and fixtures.
func MustParse(s string) *graph.Graph {
	g, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return g
}

// ParseLine parses a single line. ok is false for blank/comment lines.
func ParseLine(line string, lineNo int) (t graph.Triple, ok bool, err error) {
	p := &lineParser{src: line, line: lineNo}
	if !utf8.ValidString(line) {
		// The N-Triples grammar is defined over UTF-8 documents; raw
		// invalid bytes would silently decay to U+FFFD on
		// serialization, breaking round trips.
		return graph.Triple{}, false, p.errf("invalid UTF-8")
	}
	p.skipWS()
	if p.eof() || p.peek() == '#' {
		return graph.Triple{}, false, nil
	}
	s, err := p.subject()
	if err != nil {
		return graph.Triple{}, false, err
	}
	p.skipWS()
	pred, err := p.predicate()
	if err != nil {
		return graph.Triple{}, false, err
	}
	p.skipWS()
	o, err := p.object()
	if err != nil {
		return graph.Triple{}, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return graph.Triple{}, false, p.errf("expected '.' terminator")
	}
	p.pos++
	p.skipWS()
	if !p.eof() && p.peek() != '#' {
		return graph.Triple{}, false, p.errf("trailing content after '.'")
	}
	tr := graph.T(s, pred, o)
	if !tr.WellFormed() {
		return graph.Triple{}, false, p.errf("ill-formed triple")
	}
	return tr, true, nil
}

type lineParser struct {
	src  string
	pos  int
	line int
}

func (p *lineParser) eof() bool  { return p.pos >= len(p.src) }
func (p *lineParser) peek() byte { return p.src[p.pos] }

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t' || p.peek() == '\r') {
		p.pos++
	}
}

func (p *lineParser) subject() (term.Term, error) {
	if p.eof() {
		return term.Term{}, p.errf("expected subject")
	}
	switch p.peek() {
	case '<':
		return p.iriRef()
	case '_':
		return p.blankNode()
	default:
		return term.Term{}, p.errf("subject must be an IRI or blank node")
	}
}

func (p *lineParser) predicate() (term.Term, error) {
	if p.eof() || p.peek() != '<' {
		return term.Term{}, p.errf("predicate must be an IRI")
	}
	return p.iriRef()
}

func (p *lineParser) object() (term.Term, error) {
	if p.eof() {
		return term.Term{}, p.errf("expected object")
	}
	switch p.peek() {
	case '<':
		return p.iriRef()
	case '_':
		return p.blankNode()
	case '"':
		return p.literal()
	default:
		return term.Term{}, p.errf("object must be an IRI, blank node or literal")
	}
}

func (p *lineParser) iriRef() (term.Term, error) {
	if p.eof() || p.peek() != '<' {
		// The eof guard matters: a literal ending in a bare "^^" reaches
		// here with the cursor past the end of the line.
		return term.Term{}, p.errf("expected '<'")
	}
	p.pos++
	var b strings.Builder
	for {
		if p.eof() {
			return term.Term{}, p.errf("unterminated IRI")
		}
		c := p.peek()
		switch {
		case c == '>':
			p.pos++
			iri := b.String()
			if iri == "" {
				return term.Term{}, p.errf("empty IRI")
			}
			return term.NewIRI(iri), nil
		case c == '\\':
			r, err := p.ucharEscape()
			if err != nil {
				return term.Term{}, err
			}
			b.WriteRune(r)
		case c <= 0x20, c == '"', c == '{', c == '}', c == '|', c == '^', c == '`':
			return term.Term{}, p.errf("character %q not allowed in IRI", c)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
}

// ucharEscape parses \uXXXX or \UXXXXXXXX at the current position.
func (p *lineParser) ucharEscape() (rune, error) {
	p.pos++ // consume '\'
	if p.eof() {
		return 0, p.errf("dangling escape")
	}
	var n int
	switch p.peek() {
	case 'u':
		n = 4
	case 'U':
		n = 8
	default:
		return 0, p.errf("invalid IRI escape \\%c", p.peek())
	}
	p.pos++
	if p.pos+n > len(p.src) {
		return 0, p.errf("truncated unicode escape")
	}
	var v rune
	for i := 0; i < n; i++ {
		c := p.src[p.pos]
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			v |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v |= rune(c-'A') + 10
		default:
			return 0, p.errf("invalid hex digit %q in escape", c)
		}
		p.pos++
	}
	return v, nil
}

func (p *lineParser) blankNode() (term.Term, error) {
	if !strings.HasPrefix(p.src[p.pos:], "_:") {
		return term.Term{}, p.errf("expected '_:'")
	}
	p.pos += 2
	start := p.pos
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '.' && p.pos > start {
			break
		}
		if isLabelChar(c) {
			p.pos++
			continue
		}
		break
	}
	label := p.src[start:p.pos]
	if label == "" {
		return term.Term{}, p.errf("empty blank node label")
	}
	return term.NewBlank(label), nil
}

func isLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '~' || c == '!'
}

func (p *lineParser) literal() (term.Term, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for {
		if p.eof() {
			return term.Term{}, p.errf("unterminated literal")
		}
		c := p.peek()
		switch c {
		case '"':
			p.pos++
			goto suffix
		case '\\':
			if p.pos+1 >= len(p.src) {
				return term.Term{}, p.errf("dangling escape")
			}
			switch p.src[p.pos+1] {
			case 't':
				b.WriteByte('\t')
				p.pos += 2
			case 'b':
				b.WriteByte('\b')
				p.pos += 2
			case 'n':
				b.WriteByte('\n')
				p.pos += 2
			case 'r':
				b.WriteByte('\r')
				p.pos += 2
			case 'f':
				b.WriteByte('\f')
				p.pos += 2
			case '"':
				b.WriteByte('"')
				p.pos += 2
			case '\'':
				b.WriteByte('\'')
				p.pos += 2
			case '\\':
				b.WriteByte('\\')
				p.pos += 2
			case 'u', 'U':
				r, err := p.ucharEscape()
				if err != nil {
					return term.Term{}, err
				}
				b.WriteRune(r)
			default:
				return term.Term{}, p.errf("invalid escape \\%c", p.src[p.pos+1])
			}
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
suffix:
	lex := b.String()
	if !p.eof() && p.peek() == '@' {
		p.pos++
		start := p.pos
		for !p.eof() && (isAlpha(p.peek()) || p.peek() == '-' || isDigit(p.peek()) && p.pos > start) {
			p.pos++
		}
		tag := p.src[start:p.pos]
		if tag == "" || tag[0] == '-' {
			return term.Term{}, p.errf("invalid language tag")
		}
		return term.NewLangLiteral(lex, tag), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.iriRef()
		if err != nil {
			return term.Term{}, err
		}
		return term.NewTypedLiteral(lex, dt.Value), nil
	}
	return term.NewLiteral(lex), nil
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Serialize writes the graph in canonical N-Triples: triples sorted,
// one per line, with full escaping. The output round-trips through Parse.
func Serialize(w io.Writer, g *graph.Graph) error {
	ts := g.Triples() // already in canonical sorted order
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if err := writeTerm(bw, t.S); err != nil {
			return err
		}
		bw.WriteByte(' ')
		if err := writeTerm(bw, t.P); err != nil {
			return err
		}
		bw.WriteByte(' ')
		if err := writeTerm(bw, t.O); err != nil {
			return err
		}
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SerializeString renders the graph as a canonical N-Triples string.
func SerializeString(g *graph.Graph) string {
	var b strings.Builder
	_ = Serialize(&b, g)
	return b.String()
}

func writeTerm(w *bufio.Writer, t term.Term) error {
	switch t.Kind() {
	case term.KindIRI:
		w.WriteByte('<')
		writeIRIEscaped(w, t.Value)
		w.WriteByte('>')
	case term.KindBlank:
		w.WriteString("_:")
		w.WriteString(t.Value)
	case term.KindLiteral:
		w.WriteByte('"')
		writeLiteralEscaped(w, t.Value)
		w.WriteByte('"')
		if t.Lang != "" {
			w.WriteByte('@')
			w.WriteString(t.Lang)
		} else if t.Datatype != "" {
			w.WriteString("^^<")
			writeIRIEscaped(w, t.Datatype)
			w.WriteByte('>')
		}
	default:
		return fmt.Errorf("ntriples: cannot serialize %v", t)
	}
	return nil
}

func writeIRIEscaped(w *bufio.Writer, s string) {
	for _, r := range s {
		if r <= 0x20 || r == '<' || r == '>' || r == '"' || r == '{' || r == '}' ||
			r == '|' || r == '^' || r == '`' || r == '\\' {
			fmt.Fprintf(w, "\\u%04X", r)
		} else {
			w.WriteRune(r)
		}
	}
}

func writeLiteralEscaped(w *bufio.Writer, s string) {
	for _, r := range s {
		switch r {
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		case '\n':
			w.WriteString(`\n`)
		case '\r':
			w.WriteString(`\r`)
		case '\t':
			w.WriteString(`\t`)
		case '\b':
			w.WriteString(`\b`)
		case '\f':
			w.WriteString(`\f`)
		default:
			w.WriteRune(r)
		}
	}
}
