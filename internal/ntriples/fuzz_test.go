package ntriples

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary documents to the N-Triples parser. The
// invariants: the parser never panics, and every successfully parsed
// document round-trips through Serialize/Parse to an equal graph.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"<urn:a> <urn:p> <urn:b> .",
		"<urn:a> <urn:p> \"lit\" .\n<urn:a> <urn:p> \"l\"@en .",
		"_:b1 <urn:p> _:b2 .",
		"<urn:a> <urn:p> \"x\"^^<urn:dt> .",
		"<urn:u\\u0041> <urn:p> \"esc\\n\\t\\\"q\\\"\" .",
		"<urn:a> <urn:p> <urn:b>", // missing dot
		"<urn:a> <urn:p> .",       // missing object
		"\"s\" <urn:p> <urn:o> .", // literal subject
		"<urn:a> _:b <urn:o> .",   // blank predicate
		"_: <urn:p> <urn:o> .",    // empty blank label
		"<urn:a> <urn:p> \"unterminated .",
		"<urn:a> <urn:p> \"bad\\uZZZZ\" .",
		"<urn:a> <urn:p> \"\\u00e9\\U0001F600\" .",
		"<unclosed <urn:p> <urn:o> .",
		"<urn:a><urn:p><urn:o>.",
		"<urn:a>\t<urn:p>\t<urn:o>\t.  # trailing comment",
		"\x00\x01\xff",
		strings.Repeat("<urn:a> <urn:p> <urn:b> .\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Serialize(&sb, g); err != nil {
			t.Fatalf("serialize of parsed graph failed: %v", err)
		}
		back, err := ParseString(sb.String())
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v\nserialized:\n%s", err, sb.String())
		}
		if !back.Equal(g) {
			t.Fatalf("round trip changed the graph:\nin:\n%s\nout:\n%s", g, back)
		}
	})
}

// FuzzParseLine exercises the single-line entry point used by the
// store's streaming bulk loader.
func FuzzParseLine(f *testing.F) {
	f.Add("<urn:a> <urn:p> <urn:b> .")
	f.Add("   # comment")
	f.Add("_:x <urn:p> \"v\"@en-US .")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, line string) {
		tr, ok, err := ParseLine(line, 1)
		if err != nil || !ok {
			return
		}
		if !tr.WellFormed() {
			t.Fatalf("ParseLine accepted ill-formed triple %s", tr)
		}
	})
}
