package ntriples

import (
	"strings"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func TestParseBasic(t *testing.T) {
	g, err := ParseString(`
# a comment
<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .
_:x <http://ex.org/p> "hello" .

<http://ex.org/a> <http://ex.org/q> "hi"@en . # trailing comment
<http://ex.org/a> <http://ex.org/r> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("parsed %d triples, want 4", g.Len())
	}
	if !g.Has(graph.T(term.NewIRI("http://ex.org/a"), term.NewIRI("http://ex.org/p"), term.NewIRI("http://ex.org/b"))) {
		t.Error("IRI triple missing")
	}
	if !g.Has(graph.T(term.NewBlank("x"), term.NewIRI("http://ex.org/p"), term.NewLiteral("hello"))) {
		t.Error("blank+literal triple missing")
	}
	if !g.Has(graph.T(term.NewIRI("http://ex.org/a"), term.NewIRI("http://ex.org/q"), term.NewLangLiteral("hi", "en"))) {
		t.Error("lang literal missing")
	}
	if !g.Has(graph.T(term.NewIRI("http://ex.org/a"), term.NewIRI("http://ex.org/r"),
		term.NewTypedLiteral("1", "http://www.w3.org/2001/XMLSchema#integer"))) {
		t.Error("typed literal missing")
	}
}

func TestParseEscapes(t *testing.T) {
	g, err := ParseString(`<http://ex.org/a> <http://ex.org/p> "tab\there \"quoted\" \\ \n" .
<http://ex.org/a> <http://ex.org/p> "A\U00000042" .
<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(graph.T(term.NewIRI("http://ex.org/a"), term.NewIRI("http://ex.org/p"),
		term.NewLiteral("tab\there \"quoted\" \\ \n"))) {
		t.Error("escaped literal wrong")
	}
	if !g.Has(graph.T(term.NewIRI("http://ex.org/a"), term.NewIRI("http://ex.org/p"), term.NewLiteral("AB"))) {
		t.Error("unicode escapes in literal wrong")
	}
	if !g.Has(graph.T(term.NewIRI("http://ex.org/a"), term.NewIRI("http://ex.org/p"), term.NewIRI("http://ex.org/b"))) {
		t.Error("unicode escape in IRI wrong")
	}
}

func TestParseErrors(t *testing.T) {
	corpus := []string{
		`<http://a> <http://p> .`,                  // missing object
		`<http://a> <http://p> <http://b>`,         // missing dot
		`<http://a> <http://p> <http://b> . extra`, // trailing garbage
		`"lit" <http://p> <http://b> .`,            // literal subject
		`<http://a> _:b <http://b> .`,              // blank predicate
		`<http://a> "p" <http://b> .`,              // literal predicate
		`<http://a> <http://p> "unterminated .`,    // unterminated literal
		`<http://a> <http://p "bad iri" .`,         // unterminated IRI
		`<http://a> <http://p> "x"^^<dt .`,         // unterminated datatype
		`<http://a> <http://p> "x"@ .`,             // empty language tag
		`_: <http://p> <http://b> .`,               // empty blank label
		`<http://a> <http://p> "bad\escape" .`,     // invalid escape
		`<http://a> <http://p> "trunc\u00G0" .`,    // bad hex
		`<> <http://p> <http://b> .`,               // empty IRI
		`<http://a b> <http://p> <http://o> .`,     // space in IRI
	}
	for i, src := range corpus {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: malformed input accepted: %q", i, src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("case %d: error is not a *ParseError: %v", i, err)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseString("<http://a> <http://p> <http://b> .\n<http://a> <http://p> oops .")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("rendered error lacks position: %v", pe)
	}
}

func TestRoundTrip(t *testing.T) {
	src := `<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .
<http://ex.org/a> <http://ex.org/p> _:n1 .
_:n1 <http://ex.org/q> "a literal with \"quotes\" and\nnewline" .
_:n1 <http://ex.org/q> "hola"@es .
_:n1 <http://ex.org/q> "3.14"^^<http://www.w3.org/2001/XMLSchema#decimal> .
<http://ex.org/weird> <http://ex.org/p> "tab\tchar" .
`
	g1, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := SerializeString(g1)
	g2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse of serialized output failed: %v\n%s", err, out)
	}
	if !g1.Equal(g2) {
		t.Fatalf("round trip changed the graph:\n%s\nvs\n%s", SerializeString(g1), SerializeString(g2))
	}
}

func TestSerializeCanonicalOrder(t *testing.T) {
	g := graph.New(
		graph.T(term.NewIRI("z"), term.NewIRI("p"), term.NewIRI("o")),
		graph.T(term.NewIRI("a"), term.NewIRI("p"), term.NewIRI("o")),
	)
	out := SerializeString(g)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "<a>") {
		t.Fatalf("not canonical:\n%s", out)
	}
	// Serialization is deterministic.
	if out != SerializeString(g) {
		t.Fatal("non-deterministic serialization")
	}
}

func TestSerializeEscapesIRIs(t *testing.T) {
	g := graph.New(graph.T(term.NewIRI("http://ex.org/a b"), term.NewIRI("p"), term.NewIRI("o")))
	out := SerializeString(g)
	if !strings.Contains(out, ` `) {
		t.Fatalf("space in IRI not escaped: %s", out)
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("escaped IRI does not round trip")
	}
}

func TestParseLineBlankAndComment(t *testing.T) {
	for _, line := range []string{"", "   ", "# only a comment", "\t# c"} {
		if _, ok, err := ParseLine(line, 1); err != nil || ok {
			t.Errorf("line %q: ok=%v err=%v, want skipped", line, ok, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("not ntriples")
}

func TestDuplicateTriplesCollapse(t *testing.T) {
	g, err := ParseString(`<http://a> <http://p> <http://b> .
<http://a> <http://p> <http://b> .`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("duplicates not collapsed: %d", g.Len())
	}
}

func TestBlankNodeLabels(t *testing.T) {
	g, err := ParseString(`_:a-b_c~1 <http://p> _:x!2 .`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("parsed %d, want 1", g.Len())
	}
	if len(g.BlankNodes()) != 2 {
		t.Fatalf("blanks = %v", g.BlankNodeList())
	}
}
