package cq

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

func TestFromGraphCorrespondence(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), iri("p"), blk("x")),
		graph.T(blk("x"), iri("q"), iri("b")),
	)
	q := FromGraphQuery(g)
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d, want 2", len(q.Atoms))
	}
	d := FromGraphDatabase(g)
	if len(d.Relations) != 2 {
		t.Fatalf("relations = %d, want 2", len(d.Relations))
	}
	if len(d.Relations["R_p"]) != 1 {
		t.Fatalf("R_p = %v", d.Relations["R_p"])
	}
}

func TestEntailsViaCQMatchesHomomorphism(t *testing.T) {
	// Section 2.4: D_{G1} ⊨ Q_{G2} iff G1 ⊨ G2 for simple graphs.
	rng := rand.New(rand.NewSource(3))
	names := []term.Term{iri("a"), iri("b"), blk("x"), blk("y"), blk("z")}
	preds := []term.Term{iri("p"), iri("q")}
	for round := 0; round < 60; round++ {
		g1, g2 := graph.New(), graph.New()
		for k := 0; k < 6; k++ {
			g1.Add(graph.T(
				names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		for k := 0; k < 3; k++ {
			g2.Add(graph.T(
				names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		want := hom.ExistsMap(g2, g1)
		got := EntailsViaCQ(g1, g2)
		if got != want {
			t.Fatalf("round %d: CQ path (%v) disagrees with hom path (%v)\nG1:\n%v\nG2:\n%v",
				round, got, want, g1, g2)
		}
	}
}

func TestBlankCycleFree(t *testing.T) {
	chain := graph.New(
		graph.T(blk("a"), iri("p"), blk("b")),
		graph.T(blk("b"), iri("p"), blk("c")),
	)
	if !BlankCycleFree(chain) {
		t.Error("chain misclassified as cyclic")
	}
	triangle := graph.New(
		graph.T(blk("a"), iri("p"), blk("b")),
		graph.T(blk("b"), iri("p"), blk("c")),
		graph.T(blk("c"), iri("p"), blk("a")),
	)
	if BlankCycleFree(triangle) {
		t.Error("triangle not detected")
	}
	// Parallel edges between two blanks are NOT a cycle (the CQ is
	// acyclic: one atom's variables contain the other's).
	parallel := graph.New(
		graph.T(blk("a"), iri("p"), blk("b")),
		graph.T(blk("a"), iri("q"), blk("b")),
		graph.T(blk("b"), iri("r"), blk("a")),
	)
	if !BlankCycleFree(parallel) {
		t.Error("parallel edges misclassified as a cycle")
	}
	// Ground cycles don't matter.
	groundCycle := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("b"), iri("p"), iri("a")),
	)
	if !BlankCycleFree(groundCycle) {
		t.Error("ground cycle misclassified")
	}
	// Blank-URI-blank paths are fine (the URI breaks the blank chain).
	viaURI := graph.New(
		graph.T(blk("a"), iri("p"), iri("mid")),
		graph.T(iri("mid"), iri("p"), blk("b")),
		graph.T(blk("b"), iri("p"), blk("a")),
	)
	if !BlankCycleFree(viaURI) {
		t.Error("URI-broken cycle misclassified")
	}
}

func TestGYOAcyclicity(t *testing.T) {
	// Path query: acyclic.
	path := BCQ{Atoms: []Atom{
		{Rel: "R", Args: []Arg{V("x"), V("y")}},
		{Rel: "R", Args: []Arg{V("y"), V("z")}},
	}}
	if !IsAcyclic(path) {
		t.Error("path misclassified as cyclic")
	}
	// Triangle: cyclic.
	tri := BCQ{Atoms: []Atom{
		{Rel: "R", Args: []Arg{V("x"), V("y")}},
		{Rel: "R", Args: []Arg{V("y"), V("z")}},
		{Rel: "R", Args: []Arg{V("z"), V("x")}},
	}}
	if IsAcyclic(tri) {
		t.Error("triangle misclassified as acyclic")
	}
	// Two parallel atoms: acyclic (ear containment).
	par := BCQ{Atoms: []Atom{
		{Rel: "R", Args: []Arg{V("x"), V("y")}},
		{Rel: "S", Args: []Arg{V("x"), V("y")}},
	}}
	if !IsAcyclic(par) {
		t.Error("parallel atoms misclassified")
	}
	// A ternary atom covering a binary one: acyclic.
	tern := BCQ{Atoms: []Atom{
		{Rel: "T", Args: []Arg{V("x"), V("y"), V("z")}},
		{Rel: "R", Args: []Arg{V("x"), V("z")}},
	}}
	if !IsAcyclic(tern) {
		t.Error("covered binary atom misclassified")
	}
	// Empty query: acyclic.
	if !IsAcyclic(BCQ{}) {
		t.Error("empty query misclassified")
	}
}

func TestYannakakisAgreesWithBacktracking(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 80; round++ {
		// Random acyclic query: a random tree over variables.
		nVars := 2 + rng.Intn(4)
		var q BCQ
		for i := 1; i < nVars; i++ {
			parent := rng.Intn(i)
			q.Atoms = append(q.Atoms, Atom{
				Rel:  fmt.Sprintf("R%d", rng.Intn(2)),
				Args: []Arg{V(fmt.Sprintf("v%d", parent)), V(fmt.Sprintf("v%d", i))},
			})
		}
		// Random database.
		d := NewDatabase()
		for r := 0; r < 2; r++ {
			for k := 0; k < 3+rng.Intn(5); k++ {
				d.Add(fmt.Sprintf("R%d", r),
					fmt.Sprintf("n%d", rng.Intn(4)),
					fmt.Sprintf("n%d", rng.Intn(4)))
			}
		}
		want := EvaluateBacktrack(q, d)
		got, err := EvaluateYannakakis(q, d)
		if err != nil {
			t.Fatalf("round %d: acyclic query rejected: %v\n%v", round, err, q)
		}
		if got != want {
			t.Fatalf("round %d: Yannakakis (%v) vs backtracking (%v)\nQ: %v\nD: %v",
				round, got, want, q, d.Relations)
		}
	}
}

func TestYannakakisRejectsCyclic(t *testing.T) {
	tri := BCQ{Atoms: []Atom{
		{Rel: "R", Args: []Arg{V("x"), V("y")}},
		{Rel: "R", Args: []Arg{V("y"), V("z")}},
		{Rel: "R", Args: []Arg{V("z"), V("x")}},
	}}
	if _, err := EvaluateYannakakis(tri, NewDatabase()); err == nil {
		t.Fatal("cyclic query accepted")
	}
}

func TestYannakakisWithConstantsAndRepeats(t *testing.T) {
	q := BCQ{Atoms: []Atom{
		{Rel: "R", Args: []Arg{C("a"), V("x")}},
		{Rel: "S", Args: []Arg{V("x"), V("x")}},
	}}
	d := NewDatabase()
	d.Add("R", "a", "1")
	d.Add("R", "b", "2")
	d.Add("S", "1", "1")
	d.Add("S", "2", "3")
	got, err := EvaluateYannakakis(q, d)
	if err != nil || !got {
		t.Fatalf("got=%v err=%v, want true", got, err)
	}
	// Remove the matching S loop: now false.
	d2 := NewDatabase()
	d2.Add("R", "a", "1")
	d2.Add("S", "2", "2")
	got2, err := EvaluateYannakakis(q, d2)
	if err != nil || got2 {
		t.Fatalf("got=%v err=%v, want false", got2, err)
	}
}

func TestThreeSATEncoding(t *testing.T) {
	cases := []struct {
		f    ThreeSATInstance
		want bool
	}{
		// (x1 ∨ x2 ∨ x3): satisfiable.
		{ThreeSATInstance{3, [][3]int{{1, 2, 3}}}, true},
		// (x1)(¬x1): unsatisfiable via padded clauses.
		{ThreeSATInstance{1, [][3]int{{1, 1, 1}, {-1, -1, -1}}}, false},
		// (x1∨x2∨x3)(¬x1∨¬x2∨¬x3): satisfiable.
		{ThreeSATInstance{3, [][3]int{{1, 2, 3}, {-1, -2, -3}}}, true},
		// Pigeonhole-ish contradiction.
		{ThreeSATInstance{2, [][3]int{
			{1, 1, 2}, {1, 1, -2}, {-1, -1, 2}, {-1, -1, -2},
		}}, false},
	}
	for i, c := range cases {
		if got := c.f.Satisfiable(); got != c.want {
			t.Errorf("case %d: CQ-encoding says %v, want %v", i, got, c.want)
		}
		if got := c.f.SatisfiableBruteForce(); got != c.want {
			t.Errorf("case %d: brute force says %v, want %v", i, got, c.want)
		}
	}
}

func TestThreeSATRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 60; round++ {
		n := 3 + rng.Intn(5)
		m := 2 + rng.Intn(3*n)
		f := ThreeSATInstance{NumVars: n}
		for k := 0; k < m; k++ {
			var cl [3]int
			for i := 0; i < 3; i++ {
				cl[i] = 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					cl[i] = -cl[i]
				}
			}
			f.Clauses = append(f.Clauses, cl)
		}
		if f.Satisfiable() != f.SatisfiableBruteForce() {
			t.Fatalf("round %d: encodings disagree on %v", round, f)
		}
	}
}

func TestArgAndAtomString(t *testing.T) {
	a := Atom{Rel: "R", Args: []Arg{V("x"), C("c")}}
	if a.String() != "R(?x, c)" {
		t.Fatalf("atom string = %q", a.String())
	}
	q := BCQ{Atoms: []Atom{a, a}}
	if q.String() != "R(?x, c) ∧ R(?x, c)" {
		t.Fatalf("query string = %q", q.String())
	}
}
