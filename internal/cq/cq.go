// Package cq implements the conjunctive-query side of the paper: the
// correspondence between simple RDF graphs and Boolean conjunctive
// queries / relational databases of Section 2.4 (Q_G and D_G), the
// blank-node-induced-cycle test, GYO hypergraph acyclicity, join-tree
// construction and Yannakakis semijoin evaluation of acyclic Boolean
// queries (the polynomial entailment path), and the 3SAT encoding behind
// Theorem 6.1.
package cq

import (
	"fmt"
	"sort"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// Arg is an argument of an atom: either a constant or a variable.
type Arg struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful when Var is "".
	Const string
}

// V returns a variable argument.
func V(name string) Arg { return Arg{Var: name} }

// C returns a constant argument.
func C(val string) Arg { return Arg{Const: val} }

// IsVar reports whether the argument is a variable.
func (a Arg) IsVar() bool { return a.Var != "" }

func (a Arg) String() string {
	if a.IsVar() {
		return "?" + a.Var
	}
	return a.Const
}

// Atom is a relational atom R(a1, …, an).
type Atom struct {
	Rel  string
	Args []Arg
}

func (a Atom) String() string {
	s := a.Rel + "("
	for i, g := range a.Args {
		if i > 0 {
			s += ", "
		}
		s += g.String()
	}
	return s + ")"
}

// vars returns the variable set of the atom.
func (a Atom) vars() map[string]struct{} {
	out := map[string]struct{}{}
	for _, g := range a.Args {
		if g.IsVar() {
			out[g.Var] = struct{}{}
		}
	}
	return out
}

// BCQ is a Boolean conjunctive query: an existentially closed conjunction
// of atoms.
type BCQ struct {
	Atoms []Atom
}

func (q BCQ) String() string {
	s := ""
	for i, a := range q.Atoms {
		if i > 0 {
			s += " ∧ "
		}
		s += a.String()
	}
	return s
}

// Database maps relation names to sets of tuples.
type Database struct {
	Relations map[string][][]string

	// index caches tuples by (relation, position, value); built lazily
	// by candidates and invalidated by Add.
	index map[idxKey][][]string
}

type idxKey struct {
	rel   string
	pos   int
	value string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Relations: map[string][][]string{}}
}

// Add inserts a tuple into a relation.
func (d *Database) Add(rel string, tuple ...string) {
	d.Relations[rel] = append(d.Relations[rel], tuple)
	d.index = nil
}

// candidates returns the tuples of rel compatible with the atom under the
// current binding, narrowing by the first bound position via the lazy
// index (full scan only for fully-unbound atoms).
func (d *Database) candidates(a Atom, binding map[string]string) [][]string {
	for i, arg := range a.Args {
		val, bound := "", false
		if arg.IsVar() {
			if v, ok := binding[arg.Var]; ok {
				val, bound = v, true
			}
		} else {
			val, bound = arg.Const, true
		}
		if !bound {
			continue
		}
		if d.index == nil {
			d.index = map[idxKey][][]string{}
		}
		key := idxKey{a.Rel, i, val}
		if _, built := d.index[idxKey{a.Rel, i, "\x00built"}]; !built {
			for _, tup := range d.Relations[a.Rel] {
				if i < len(tup) {
					k := idxKey{a.Rel, i, tup[i]}
					d.index[k] = append(d.index[k], tup)
				}
			}
			d.index[idxKey{a.Rel, i, "\x00built"}] = nil
		}
		return d.index[key]
	}
	return d.Relations[a.Rel]
}

// FromGraphQuery builds Q_G from a simple RDF graph: one binary atom
// R_p(s, o) per triple (s, p, o), with blank nodes as variables and URIs
// (and literals) as constants (Section 2.4).
func FromGraphQuery(g *graph.Graph) BCQ {
	var q BCQ
	for _, t := range g.Triples() {
		q.Atoms = append(q.Atoms, Atom{
			Rel:  relName(t.P),
			Args: []Arg{argOf(t.S), argOf(t.O)},
		})
	}
	return q
}

// FromGraphDatabase builds D_G: for every predicate p of G, a binary
// relation R_p holding {(s, o) : (s, p, o) ∈ G}. Blank nodes are allowed
// in the tuples (they are plain domain elements of the active domain).
func FromGraphDatabase(g *graph.Graph) *Database {
	d := NewDatabase()
	for _, t := range g.Triples() {
		d.Add(relName(t.P), constOf(t.S), constOf(t.O))
	}
	return d
}

func relName(p term.Term) string { return "R_" + p.Value }

func argOf(x term.Term) Arg {
	if x.IsBlank() {
		return V("b_" + x.Value)
	}
	return C(constOf(x))
}

func constOf(x term.Term) string {
	if x.IsBlank() {
		return "_:" + x.Value
	}
	return x.String()
}

// EvaluateBacktrack decides D ⊨ Q by backtracking join, the generic
// (exponential-worst-case) baseline.
func EvaluateBacktrack(q BCQ, d *Database) bool {
	binding := map[string]string{}
	atoms := append([]Atom(nil), q.Atoms...)
	// Most-constrained-first: sort by relation size.
	sort.SliceStable(atoms, func(i, j int) bool {
		return len(d.Relations[atoms[i].Rel]) < len(d.Relations[atoms[j].Rel])
	})
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(atoms) {
			return true
		}
		a := atoms[k]
	tuple:
		for _, tup := range d.candidates(a, binding) {
			if len(tup) != len(a.Args) {
				continue
			}
			var bound []string
			for i, arg := range a.Args {
				if !arg.IsVar() {
					if tup[i] != arg.Const {
						for _, v := range bound {
							delete(binding, v)
						}
						continue tuple
					}
					continue
				}
				if val, ok := binding[arg.Var]; ok {
					if val != tup[i] {
						for _, v := range bound {
							delete(binding, v)
						}
						continue tuple
					}
					continue
				}
				binding[arg.Var] = tup[i]
				bound = append(bound, arg.Var)
			}
			if rec(k + 1) {
				return true
			}
			for _, v := range bound {
				delete(binding, v)
			}
		}
		return false
	}
	return rec(0)
}

// BlankCycleFree reports whether the simple graph G has no cycles induced
// by blank nodes (Section 2.4): it checks that the undirected simple
// graph on the blank nodes of G — with an edge between two distinct
// blanks whenever some triple connects them — is a forest. If it is, Q_G
// is an acyclic conjunctive query and entailment into G is decidable in
// polynomial time.
func BlankCycleFree(g *graph.Graph) bool {
	adj := map[term.Term]map[term.Term]struct{}{}
	addEdge := func(a, b term.Term) {
		if adj[a] == nil {
			adj[a] = map[term.Term]struct{}{}
		}
		adj[a][b] = struct{}{}
	}
	g.Each(func(t graph.Triple) bool {
		if t.S.IsBlank() && t.O.IsBlank() && t.S != t.O {
			addEdge(t.S, t.O)
			addEdge(t.O, t.S)
		}
		return true
	})
	// Forest check: DFS counting edges vs vertices per component.
	seen := map[term.Term]bool{}
	for start := range adj {
		if seen[start] {
			continue
		}
		verts, edges := 0, 0
		stack := []term.Term{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			verts++
			for m := range adj[n] {
				edges++ // counts each undirected edge twice
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		if edges/2 >= verts {
			return false
		}
	}
	return true
}

// JoinTree is a join tree over the atoms of an acyclic query: Parent[i]
// is the index of atom i's parent (-1 for roots), in some GYO elimination
// order Order (leaves first).
type JoinTree struct {
	Atoms  []Atom
	Parent []int
	Order  []int
}

// GYO runs the Graham–Yu–Özsoyoğlu ear-removal algorithm on the query's
// hypergraph. It returns a join tree and true iff the query is acyclic.
//
// An atom E is an ear if every variable of E is either exclusive to E or
// contained in some other atom W (the witness, which becomes E's parent).
func GYO(q BCQ) (*JoinTree, bool) {
	n := len(q.Atoms)
	jt := &JoinTree{Atoms: q.Atoms, Parent: make([]int, n)}
	for i := range jt.Parent {
		jt.Parent[i] = -1
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n

	// varCount[v] = number of alive atoms containing v.
	varCount := map[string]int{}
	atomVars := make([]map[string]struct{}, n)
	for i, a := range q.Atoms {
		atomVars[i] = a.vars()
		for v := range atomVars[i] {
			varCount[v]++
		}
	}

	for remaining > 1 {
		removed := false
		for i := 0; i < n && !removed; i++ {
			if !alive[i] {
				continue
			}
			// Shared variables of atom i (appearing in other alive atoms).
			shared := map[string]struct{}{}
			for v := range atomVars[i] {
				if varCount[v] > 1 {
					shared[v] = struct{}{}
				}
			}
			// Find a witness containing all shared variables.
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				contained := true
				for v := range shared {
					if _, ok := atomVars[j][v]; !ok {
						contained = false
						break
					}
				}
				if contained {
					jt.Parent[i] = j
					jt.Order = append(jt.Order, i)
					alive[i] = false
					remaining--
					for v := range atomVars[i] {
						varCount[v]--
					}
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, false // no ear: cyclic
		}
	}
	// Last alive atom is the root.
	for i := 0; i < n; i++ {
		if alive[i] {
			jt.Order = append(jt.Order, i)
		}
	}
	return jt, true
}

// IsAcyclic reports hypergraph (α-)acyclicity of the query via GYO.
func IsAcyclic(q BCQ) bool {
	if len(q.Atoms) == 0 {
		return true
	}
	_, ok := GYO(q)
	return ok
}

// EvaluateYannakakis decides D ⊨ Q for an acyclic Q in polynomial time by
// bottom-up semijoin reduction along a GYO join tree (Yannakakis 1981).
// It returns an error when the query is not acyclic.
func EvaluateYannakakis(q BCQ, d *Database) (bool, error) {
	if len(q.Atoms) == 0 {
		return true, nil
	}
	jt, ok := GYO(q)
	if !ok {
		return false, fmt.Errorf("cq: query is not acyclic")
	}

	// Materialize candidate tuple sets per atom, pre-filtered by the
	// constants and repeated variables of the atom.
	sets := make([][]map[string]string, len(q.Atoms))
	for i, a := range q.Atoms {
		for _, tup := range d.Relations[a.Rel] {
			if b, ok := bindTuple(a, tup); ok {
				sets[i] = append(sets[i], b)
			}
		}
		if len(sets[i]) == 0 {
			return false, nil
		}
	}

	// Bottom-up pass in GYO order: semijoin each parent with its child,
	// hashing the child's projection onto the shared variables so each
	// semijoin is linear in the two sides.
	for _, child := range jt.Order {
		parent := jt.Parent[child]
		if parent == -1 {
			continue
		}
		shared := sharedVars(q.Atoms[parent], q.Atoms[child])
		childKeys := make(map[string]struct{}, len(sets[child]))
		for _, cb := range sets[child] {
			childKeys[projectKey(cb, shared)] = struct{}{}
		}
		var kept []map[string]string
		for _, pb := range sets[parent] {
			if _, ok := childKeys[projectKey(pb, shared)]; ok {
				kept = append(kept, pb)
			}
		}
		sets[parent] = kept
		if len(kept) == 0 {
			return false, nil
		}
	}
	return true, nil
}

// sharedVars returns the sorted variable names common to two atoms.
func sharedVars(a, b Atom) []string {
	av := a.vars()
	var out []string
	for v := range b.vars() {
		if _, ok := av[v]; ok {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// projectKey serializes a binding's values on the given variables.
func projectKey(b map[string]string, vars []string) string {
	key := ""
	for _, v := range vars {
		key += b[v] + "\x00"
	}
	return key
}

// bindTuple matches a tuple against an atom's constants and repeated
// variables, returning the variable binding.
func bindTuple(a Atom, tup []string) (map[string]string, bool) {
	if len(tup) != len(a.Args) {
		return nil, false
	}
	b := map[string]string{}
	for i, arg := range a.Args {
		if !arg.IsVar() {
			if tup[i] != arg.Const {
				return nil, false
			}
			continue
		}
		if v, ok := b[arg.Var]; ok {
			if v != tup[i] {
				return nil, false
			}
			continue
		}
		b[arg.Var] = tup[i]
	}
	return b, true
}

// EntailsViaCQ decides G1 ⊨ G2 for simple graphs through the relational
// correspondence: D_{G1} ⊨ Q_{G2} (Section 2.4). When G2 is free of
// blank-induced cycles the acyclic (Yannakakis) path is used; otherwise
// the backtracking baseline.
func EntailsViaCQ(g1, g2 *graph.Graph) bool {
	q := FromGraphQuery(g2)
	d := FromGraphDatabase(g1)
	if BlankCycleFree(g2) {
		ok, err := EvaluateYannakakis(q, d)
		if err == nil {
			return ok
		}
	}
	return EvaluateBacktrack(q, d)
}

// ThreeSATInstance is a 3-CNF formula over variables 1..NumVars; each
// clause has three literals, negative numbers denoting negations.
type ThreeSATInstance struct {
	NumVars int
	Clauses [][3]int
}

// ToCQ encodes the 3SAT instance as Boolean-CQ evaluation (the reduction
// behind Theorem 6.1): the database holds, for each clause shape, the
// relation of its satisfying assignments over {0,1}³, and the query joins
// one atom per clause over the variables it mentions.
func (f ThreeSATInstance) ToCQ() (BCQ, *Database) {
	d := NewDatabase()
	var q BCQ
	for _, cl := range f.Clauses {
		// Relation keyed by the clause polarity signature.
		sig := fmt.Sprintf("C%v%v%v", cl[0] > 0, cl[1] > 0, cl[2] > 0)
		if _, done := d.Relations[sig]; !done {
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					for c := 0; c < 2; c++ {
						vals := [3]int{a, b, c}
						sat := false
						for i, lit := range cl {
							if (lit > 0 && vals[i] == 1) || (lit < 0 && vals[i] == 0) {
								sat = true
								break
							}
						}
						if sat {
							d.Add(sig, fmt.Sprint(a), fmt.Sprint(b), fmt.Sprint(c))
						}
					}
				}
			}
		}
		q.Atoms = append(q.Atoms, Atom{
			Rel: sig,
			Args: []Arg{
				V(fmt.Sprintf("x%d", abs(cl[0]))),
				V(fmt.Sprintf("x%d", abs(cl[1]))),
				V(fmt.Sprintf("x%d", abs(cl[2]))),
			},
		})
	}
	return q, d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Satisfiable decides the 3SAT instance through the CQ encoding.
func (f ThreeSATInstance) Satisfiable() bool {
	q, d := f.ToCQ()
	return EvaluateBacktrack(q, d)
}

// SatisfiableBruteForce decides the instance by enumerating assignments
// (test oracle).
func (f ThreeSATInstance) SatisfiableBruteForce() bool {
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		ok := true
		for _, cl := range f.Clauses {
			sat := false
			for _, lit := range cl {
				v := (mask >> (abs(lit) - 1)) & 1
				if (lit > 0 && v == 1) || (lit < 0 && v == 0) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
