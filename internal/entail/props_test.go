package entail

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/closure"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func randMixedGraph(rng *rand.Rand, n int) *graph.Graph {
	names := []term.Term{
		term.NewIRI("urn:t:a"), term.NewIRI("urn:t:b"), term.NewIRI("urn:t:c"),
		term.NewBlank("x"), term.NewBlank("y"),
	}
	preds := []term.Term{
		term.NewIRI("urn:t:p"), term.NewIRI("urn:t:q"),
		rdfs.SubClassOf, rdfs.SubPropertyOf, rdfs.Type,
	}
	g := graph.New()
	for k := 0; k < n; k++ {
		g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
	}
	return g
}

func TestEntailmentTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for round := 0; round < 200 && checked < 25; round++ {
		g1 := randMixedGraph(rng, 6)
		g2 := randMixedGraph(rng, 3)
		g3 := randMixedGraph(rng, 2)
		if Entails(g1, g2) && Entails(g2, g3) {
			checked++
			if !Entails(g1, g3) {
				t.Fatalf("transitivity violated:\nG1:\n%v\nG2:\n%v\nG3:\n%v", g1, g2, g3)
			}
		}
	}
	if checked == 0 {
		t.Skip("no chained entailments generated")
	}
}

func TestEntailmentReflexiveOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for round := 0; round < 25; round++ {
		g := randMixedGraph(rng, 6)
		if !Entails(g, g) {
			t.Fatalf("G ⊭ G for\n%v", g)
		}
	}
}

func TestClosureIsMaximalEntailedSet(t *testing.T) {
	// Every triple of cl(G) over universe(G) is entailed by G, and G
	// entails cl(G) as a whole.
	rng := rand.New(rand.NewSource(35))
	for round := 0; round < 10; round++ {
		g := randMixedGraph(rng, 5)
		cl := closure.RDFSCl(g)
		if !Entails(g, cl) {
			t.Fatalf("G ⊭ cl(G):\n%v", g)
		}
		c := NewChecker(g)
		cl.Each(func(tr graph.Triple) bool {
			if !c.Entails(graph.New(tr)) {
				t.Fatalf("closure triple not entailed: %v of\n%v", tr, g)
			}
			return true
		})
	}
}

func TestEntailmentInvariantUnderBlankRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for round := 0; round < 25; round++ {
		g1 := randMixedGraph(rng, 6)
		g2 := randMixedGraph(rng, 3)
		ren := make(graph.Map)
		for i, b := range g2.BlankNodeList() {
			ren[b] = term.NewBlank(fmt.Sprintf("renamed%d", i))
		}
		g2r := ren.Apply(g2)
		if Entails(g1, g2) != Entails(g1, g2r) {
			t.Fatalf("entailment sensitive to blank renaming:\nG1:\n%v\nG2:\n%v", g1, g2)
		}
	}
}

func TestUnionEntailsBothOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	for round := 0; round < 25; round++ {
		g1 := randMixedGraph(rng, 4)
		g2 := randMixedGraph(rng, 4)
		u := graph.Union(g1, g2)
		if !Entails(u, g1) || !Entails(u, g2) {
			t.Fatal("union does not entail its operands")
		}
		// Merge also entails both (the copy is isomorphic).
		m := graph.Merge(g1, g2)
		if !Entails(m, g1) || !Entails(m, g2) {
			t.Fatal("merge does not entail its operands")
		}
	}
}

func TestGroundEntailmentIsSubset(t *testing.T) {
	// For ground graphs, simple entailment degenerates to ⊇.
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 30; round++ {
		g1, g2 := graph.New(), graph.New()
		for k := 0; k < 5; k++ {
			tr := graph.T(
				term.NewIRI(fmt.Sprintf("urn:g:%d", rng.Intn(3))),
				term.NewIRI("urn:g:p"),
				term.NewIRI(fmt.Sprintf("urn:g:%d", rng.Intn(3))))
			g1.Add(tr)
			if rng.Intn(2) == 0 {
				g2.Add(tr)
			}
		}
		if got, want := SimpleEntails(g1, g2), g2.SubgraphOf(g1); got != want {
			t.Fatalf("ground entailment ≠ containment: %v vs %v", got, want)
		}
	}
}

func TestEntailsAutoAgreesWithEntails(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 60; round++ {
		g1 := randMixedGraph(rng, 6)
		g2 := randMixedGraph(rng, 3)
		if got, want := EntailsAuto(g1, g2), Entails(g1, g2); got != want {
			t.Fatalf("round %d: EntailsAuto (%v) vs Entails (%v)\nG1:\n%v\nG2:\n%v",
				round, got, want, g1, g2)
		}
	}
}
