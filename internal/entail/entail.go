// Package entail implements RDFS entailment between RDF graphs through
// the map characterization of Theorem 2.8:
//
//	G1 ⊨ G2  iff  there is a map μ : G2 → RDFS-cl(G1), and
//	G1 ⊨ G2  iff  there is a map μ : G2 → G1       (both graphs simple).
//
// The deductive system of Section 2.3.2 (package rdfs) and the model
// theory (package mt) provide two independent decision paths that the
// test suite cross-validates against this one (Theorem 2.6).
package entail

import (
	"context"

	"semwebdb/internal/closure"
	"semwebdb/internal/cq"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
)

// Checker decides entailments from a fixed left-hand graph, computing
// its closure once. Use it when testing many candidate consequences of
// the same graph (the data-complexity regime of Section 2.4).
type Checker struct {
	g       *graph.Graph
	cl      *graph.Graph
	finder  *hom.Finder
	simple  bool
	workers int // closure saturation parallelism (≤1 sequential)

	// full closure and finder, lazily built when a simple left-hand side
	// meets a non-simple right-hand side.
	fullFinder *hom.Finder
}

// NewChecker prepares entailment checking from g.
func NewChecker(g *graph.Graph) *Checker {
	c, _ := NewCheckerCtx(context.Background(), g)
	return c
}

// NewCheckerCtx is NewChecker under a context: the closure computation
// polls ctx and aborts with its error when cancelled.
func NewCheckerCtx(ctx context.Context, g *graph.Graph) (*Checker, error) {
	return NewCheckerWorkers(ctx, g, 1)
}

// NewCheckerWorkers is NewCheckerCtx with an explicit parallelism
// degree for the closure saturation (see closure.RDFSClWorkers); the
// entailment decision itself is unchanged, as is its result.
func NewCheckerWorkers(ctx context.Context, g *graph.Graph, workers int) (*Checker, error) {
	c := &Checker{g: g, simple: rdfs.IsSimple(g), workers: workers}
	if c.simple {
		// For simple G1, a simple G2 maps into cl(G1) iff it maps into
		// G1 itself: the closure only adds reserved-vocabulary triples,
		// which patterns without reserved predicates cannot match.
		c.cl = g
	} else {
		cl, err := closure.RDFSClWorkers(ctx, g, workers)
		if err != nil {
			return nil, err
		}
		c.cl = cl
	}
	c.finder = hom.NewFinder(c.cl)
	return c, nil
}

// Closure returns the materialized closure used by the checker (G itself
// when G is simple).
func (c *Checker) Closure() *graph.Graph { return c.cl }

// Entails reports G ⊨ h.
func (c *Checker) Entails(h *graph.Graph) bool {
	_, ok := c.Witness(h)
	return ok
}

// Witness returns a map μ : h → cl(G) witnessing G ⊨ h, if any.
func (c *Checker) Witness(h *graph.Graph) (graph.Map, bool) {
	if c.simple && !rdfs.IsSimple(h) {
		// A simple left-hand side still entails reserved-vocabulary
		// reflexivity triples; use the real closure for such h.
		if c.fullFinder == nil {
			c.fullFinder = hom.NewFinder(closure.RDFSCl(c.g))
		}
		return c.fullFinder.Find(h)
	}
	return c.finder.Find(h)
}

// WitnessCtx is Witness under a context: the map search polls ctx and
// aborts with its error when it is cancelled.
func (c *Checker) WitnessCtx(ctx context.Context, h *graph.Graph) (graph.Map, bool, error) {
	if c.simple && !rdfs.IsSimple(h) {
		if c.fullFinder == nil {
			full, err := closure.RDFSClWorkers(ctx, c.g, c.workers)
			if err != nil {
				return nil, false, err
			}
			c.fullFinder = hom.NewFinder(full)
		}
		return c.fullFinder.FindCtx(ctx, h)
	}
	return c.finder.FindCtx(ctx, h)
}

// Entails reports G1 ⊨ G2 under the full RDFS semantics.
func Entails(g1, g2 *graph.Graph) bool {
	return NewChecker(g1).Entails(g2)
}

// EntailsCtx is Entails under a context: both the closure of g1 and the
// map search poll ctx and abort with its error when it is cancelled.
func EntailsCtx(ctx context.Context, g1, g2 *graph.Graph) (bool, error) {
	return EntailsWorkers(ctx, g1, g2, 1)
}

// EntailsWorkers is EntailsCtx with an explicit parallelism degree for
// the closure saturation of g1 (see closure.RDFSClWorkers).
func EntailsWorkers(ctx context.Context, g1, g2 *graph.Graph, workers int) (bool, error) {
	c, err := NewCheckerWorkers(ctx, g1, workers)
	if err != nil {
		return false, err
	}
	_, ok, err := c.WitnessCtx(ctx, g2)
	return ok, err
}

// SimpleEntails reports G1 ⊨ G2 for simple graphs, via the map
// characterization of Theorem 2.8(2). It must only be used when both
// graphs are simple; Entails dispatches automatically.
func SimpleEntails(g1, g2 *graph.Graph) bool {
	return hom.ExistsMap(g2, g1)
}

// Equivalent reports G1 ≡ G2, i.e. G1 ⊨ G2 and G2 ⊨ G1.
func Equivalent(g1, g2 *graph.Graph) bool {
	return Entails(g1, g2) && Entails(g2, g1)
}

// EquivalentCtx is Equivalent under a context (see EntailsCtx).
func EquivalentCtx(ctx context.Context, g1, g2 *graph.Graph) (bool, error) {
	return EquivalentWorkers(ctx, g1, g2, 1)
}

// EquivalentWorkers is EquivalentCtx with an explicit parallelism
// degree for the two closure saturations (see closure.RDFSClWorkers).
func EquivalentWorkers(ctx context.Context, g1, g2 *graph.Graph, workers int) (bool, error) {
	ok, err := EntailsWorkers(ctx, g1, g2, workers)
	if err != nil || !ok {
		return false, err
	}
	return EntailsWorkers(ctx, g2, g1, workers)
}

// EntailsAuto decides G1 ⊨ G2 routing through the guaranteed-polynomial
// evaluation paths of Section 2.4 when they apply: if G2 has no cycles
// induced by blank nodes, its associated conjunctive query is acyclic and
// is evaluated by Yannakakis semijoins over D_{cl(G1)}; otherwise the
// backtracking map search is used. Both paths implement Theorem 2.8.
func EntailsAuto(g1, g2 *graph.Graph) bool {
	target := g1
	if !rdfs.IsSimple(g1) || !rdfs.IsSimple(g2) {
		target = closure.RDFSCl(g1)
	}
	if cq.BlankCycleFree(g2) {
		q := cq.FromGraphQuery(g2)
		d := cq.FromGraphDatabase(target)
		if ok, err := cq.EvaluateYannakakis(q, d); err == nil {
			return ok
		}
	}
	return hom.ExistsMap(g2, target)
}

// EntailsWithProof decides G1 ⊨ G2 and, when it holds, returns a checked
// proof in the deductive system (Definition 2.5, Theorem 2.6).
func EntailsWithProof(g1, g2 *graph.Graph) (*rdfs.Proof, bool) {
	return rdfs.Prove(g1, g2)
}
