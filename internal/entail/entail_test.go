package entail

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

func TestSimpleEntailmentIsMapExistence(t *testing.T) {
	g1 := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("b"), iri("p"), iri("c")),
	)
	// G2 asks: is there something p-related to b? Yes (X→a).
	g2 := graph.New(graph.T(blk("X"), iri("p"), iri("b")))
	if !Entails(g1, g2) {
		t.Fatal("expected entailment")
	}
	// And something p-related FROM c? No.
	g3 := graph.New(graph.T(iri("c"), iri("p"), blk("X")))
	if Entails(g1, g3) {
		t.Fatal("unexpected entailment")
	}
	if !SimpleEntails(g1, g2) || SimpleEntails(g1, g3) {
		t.Fatal("SimpleEntails disagrees")
	}
}

func TestEntailmentReflexive(t *testing.T) {
	g := graph.New(graph.T(blk("x"), iri("p"), blk("y")))
	if !Entails(g, g) {
		t.Fatal("G ⊨ G must hold")
	}
	if !Equivalent(g, g) {
		t.Fatal("G ≡ G must hold")
	}
}

func TestSubgraphEntailed(t *testing.T) {
	g1 := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("c"), iri("q"), iri("d")),
	)
	g2 := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	if !Entails(g1, g2) {
		t.Fatal("supergraph must entail subgraph")
	}
	if Entails(g2, g1) {
		t.Fatal("subgraph must not entail strict supergraph with new content")
	}
}

func TestRDFSEntailmentThroughClosure(t *testing.T) {
	g1 := graph.New(
		graph.T(iri("son"), rdfs.SubPropertyOf, iri("child")),
		graph.T(iri("child"), rdfs.SubPropertyOf, iri("relative")),
		graph.T(iri("tom"), iri("son"), iri("mary")),
	)
	cases := []struct {
		h    *graph.Graph
		want bool
	}{
		{graph.New(graph.T(iri("tom"), iri("relative"), iri("mary"))), true},
		{graph.New(graph.T(iri("son"), rdfs.SubPropertyOf, iri("relative"))), true},
		{graph.New(graph.T(blk("X"), iri("child"), iri("mary"))), true},
		{graph.New(graph.T(iri("mary"), iri("relative"), iri("tom"))), false},
		{graph.New(graph.T(iri("relative"), rdfs.SubPropertyOf, iri("son"))), false},
	}
	for i, c := range cases {
		if got := Entails(g1, c.h); got != c.want {
			t.Errorf("case %d: Entails = %v, want %v", i, got, c.want)
		}
	}
}

func TestSimpleLHSNonSimpleRHS(t *testing.T) {
	// A simple graph still entails reflexivity triples of its own
	// predicates (rule 8) and of the vocabulary (rule 9).
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	h1 := graph.New(graph.T(iri("p"), rdfs.SubPropertyOf, iri("p")))
	if !Entails(g, h1) {
		t.Fatal("rule (8) consequence not entailed by simple graph")
	}
	h2 := graph.New(graph.T(rdfs.Type, rdfs.SubPropertyOf, rdfs.Type))
	if !Entails(g, h2) {
		t.Fatal("rule (9) consequence not entailed")
	}
	h3 := graph.New(graph.T(iri("q"), rdfs.SubPropertyOf, iri("q")))
	if Entails(g, h3) {
		t.Fatal("unused predicate must not be sp-reflexive")
	}
}

func TestCheckerReuse(t *testing.T) {
	g := graph.New(
		graph.T(iri("A"), rdfs.SubClassOf, iri("B")),
		graph.T(iri("x"), rdfs.Type, iri("A")),
	)
	c := NewChecker(g)
	if !c.Entails(graph.New(graph.T(iri("x"), rdfs.Type, iri("B")))) {
		t.Fatal("lifting not entailed")
	}
	if c.Entails(graph.New(graph.T(iri("x"), rdfs.Type, iri("C")))) {
		t.Fatal("wrong entailment")
	}
	mu, ok := c.Witness(graph.New(graph.T(blk("W"), rdfs.Type, iri("B"))))
	if !ok {
		t.Fatal("witness missing")
	}
	if mu.Of(blk("W")) != iri("x") {
		t.Fatalf("witness maps W to %v", mu.Of(blk("W")))
	}
	if c.Closure().Len() == 0 {
		t.Fatal("closure accessor broken")
	}
}

func TestEquivalenceOfBlankVariants(t *testing.T) {
	// {(a,p,b)} ≡ {(a,p,b), (X,p,b)}: the extra blank triple is
	// redundant (maps onto the ground one).
	g1 := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	g2 := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(blk("X"), iri("p"), iri("b")),
	)
	if !Equivalent(g1, g2) {
		t.Fatal("blank-redundant variant not equivalent")
	}
}

func TestHomEquivalenceNPEncoding(t *testing.T) {
	// Theorem 2.9 flavor: the 3-colorability of a graph H is
	// G_{K3} ⊨ enc(H) with blank nodes. An odd cycle C5 is 3-colorable,
	// so K3 ⊨ enc(C5); C5 is not 2-colorable, so K2 ⊭ enc(C5).
	clique := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					g.Add(graph.T(iri(fmt.Sprintf("k%d", i)), iri("e"), iri(fmt.Sprintf("k%d", j))))
				}
			}
		}
		return g
	}
	cycle := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			g.Add(graph.T(blk(fmt.Sprintf("v%d", i)), iri("e"), blk(fmt.Sprintf("v%d", (i+1)%n))))
			g.Add(graph.T(blk(fmt.Sprintf("v%d", (i+1)%n)), iri("e"), blk(fmt.Sprintf("v%d", i))))
		}
		return g
	}
	if !Entails(clique(3), cycle(5)) {
		t.Fatal("K3 must entail enc(C5): C5 is 3-colorable")
	}
	if Entails(clique(2), cycle(5)) {
		t.Fatal("K2 must not entail enc(C5): C5 is not bipartite")
	}
	if !Entails(clique(2), cycle(4)) {
		t.Fatal("K2 must entail enc(C4): C4 is bipartite")
	}
}

func TestEntailmentMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := []term.Term{iri("a"), iri("b"), iri("c"), blk("x"), blk("y")}
	preds := []term.Term{iri("p"), iri("q"), rdfs.SubClassOf, rdfs.Type}
	for round := 0; round < 30; round++ {
		g := graph.New()
		for k := 0; k < 6; k++ {
			g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		h := graph.New()
		for k := 0; k < 3; k++ {
			h.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		bigger := graph.Union(g, graph.New(graph.T(iri("extra"), iri("r"), iri("extra2"))))
		if Entails(g, h) && !Entails(bigger, h) {
			t.Fatalf("monotonicity violated on round %d", round)
		}
	}
}

func TestEntailsWithProofAgreesWithEntails(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	names := []term.Term{iri("a"), iri("b"), blk("x")}
	preds := []term.Term{iri("p"), rdfs.SubPropertyOf, rdfs.SubClassOf, rdfs.Type, rdfs.Domain}
	for round := 0; round < 25; round++ {
		g := graph.New()
		for k := 0; k < 5; k++ {
			g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		h := graph.New()
		for k := 0; k < 2; k++ {
			h.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		semantic := Entails(g, h)
		proof, syntactic := EntailsWithProof(g, h)
		if semantic != syntactic {
			t.Fatalf("round %d: ⊨ (%v) and ⊢ (%v) disagree — Theorem 2.6 violated\nG:\n%v\nH:\n%v",
				round, semantic, syntactic, g, h)
		}
		if syntactic {
			if err := proof.Verify(g, h); err != nil {
				t.Fatalf("round %d: proof fails verification: %v", round, err)
			}
		}
	}
}
