package turtle

import (
	"testing"
)

// FuzzParse feeds arbitrary documents to the Turtle parser. The
// invariant: the parser never panics, and every accepted document
// yields a graph of well-formed triples.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# empty\n",
		"@prefix ex: <urn:ex:> .\nex:a ex:p ex:b .",
		"@prefix : <urn:d:> .\n:a :p :b , :c ; :q :d .",
		"<urn:a> a <urn:C> .",
		"_:x <urn:p> \"lit\"@en .",
		"<urn:a> <urn:p> \"x\"^^<urn:dt> .",
		"@prefix ex: <urn:ex:> .\nex:a ex:p [ ex:q ex:b ] .",
		"@prefix ex: <urn:ex:> .", // prefix only
		"@prefix ex <urn:ex:> .",  // missing colon
		"ex:a ex:p ex:b .",        // undeclared prefix
		"<urn:a> <urn:p> .",       // missing object
		"<urn:a> <urn:p> <urn:b>", // missing dot
		"@base <urn:base:> .\n<a> <p> <b> .",
		"<urn:a> <urn:p> \"unterminated ;",
		"\"s\" <urn:p> <urn:o> .",
		"@prefix ex: <urn:ex:> .\nex:a ex:p ex:b ; ; .",
		"\x00\xfe\xff",
		"<urn:a> <urn:p> 42 .",
		"<urn:a> <urn:p> \"\"\"long\nliteral\"\"\" .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		for _, tr := range g.Triples() {
			if !tr.WellFormed() {
				t.Fatalf("parser accepted ill-formed triple %s", tr)
			}
		}
	})
}
