// Package turtle implements a parser for a practical subset of the
// Turtle RDF syntax, sufficient for authoring the examples and test
// fixtures of this repository by hand:
//
//   - @prefix / PREFIX directives and prefixed names (pfx:local)
//   - @base / BASE directives (prefix concatenation only, no RFC 3986
//     resolution)
//   - the 'a' keyword for rdf:type
//   - predicate-object lists (';') and object lists (',')
//   - blank node labels (_:x) and anonymous blank node property lists
//     ([ p o ; … ])
//   - string literals with language tags and datatypes, and the integer,
//     decimal and boolean shorthands
//
// RDF collections "( … )" and multi-line strings are not supported and
// produce parse errors.
package turtle

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

const xsd = "http://www.w3.org/2001/XMLSchema#"

// ParseError reports a Turtle syntax error.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("turtle: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a Turtle document into a graph.
func Parse(src string) (*graph.Graph, error) {
	if !utf8.ValidString(src) {
		// Turtle documents are UTF-8 by definition; raw invalid bytes
		// would decay to U+FFFD on serialization, breaking round trips.
		return nil, &ParseError{Line: 1, Col: 1, Msg: "invalid UTF-8"}
	}
	p := &parser{
		src:      src,
		line:     1,
		col:      1,
		g:        graph.New(),
		prefixes: map[string]string{},
	}
	if err := p.document(); err != nil {
		return nil, err
	}
	return p.g, nil
}

// MustParse parses and panics on error; for fixtures.
func MustParse(src string) *graph.Graph {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	src       string
	pos       int
	line, col int
	g         *graph.Graph
	prefixes  map[string]string
	base      string
	anonCount int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *parser) skipWS() {
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.advance()
			continue
		}
		if c == '#' {
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
			continue
		}
		return
	}
}

func (p *parser) document() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
}

func (p *parser) statement() error {
	if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
		return p.prefixDirective()
	}
	if p.hasKeyword("@base") || p.hasKeyword("BASE") {
		return p.baseDirective()
	}
	return p.triples()
}

// hasKeyword reports whether the input at the cursor starts with the
// keyword followed by whitespace (case-sensitive for '@' forms,
// case-insensitive for SPARQL-style forms).
func (p *parser) hasKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	chunk := p.src[p.pos : p.pos+len(kw)]
	if kw[0] == '@' {
		if chunk != kw {
			return false
		}
	} else if !strings.EqualFold(chunk, kw) {
		return false
	}
	if p.pos+len(kw) == len(p.src) {
		return true
	}
	c := p.src[p.pos+len(kw)]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<'
}

func (p *parser) consumeKeyword(kw string) {
	for i := 0; i < len(kw); i++ {
		p.advance()
	}
}

func (p *parser) prefixDirective() error {
	sparqlForm := p.peek() != '@'
	if sparqlForm {
		p.consumeKeyword("PREFIX")
	} else {
		p.consumeKeyword("@prefix")
	}
	p.skipWS()
	// prefix name, possibly empty, up to ':'.
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		if c := p.peek(); c == ' ' || c == '\t' || c == '\n' {
			return p.errf("whitespace in prefix name")
		}
		p.advance()
	}
	if p.eof() {
		return p.errf("expected ':' in prefix directive")
	}
	name := p.src[start:p.pos]
	p.advance() // ':'
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	p.skipWS()
	if !sparqlForm {
		if p.eof() || p.peek() != '.' {
			return p.errf("@prefix directive must end with '.'")
		}
		p.advance()
	}
	return nil
}

func (p *parser) baseDirective() error {
	sparqlForm := p.peek() != '@'
	if sparqlForm {
		p.consumeKeyword("BASE")
	} else {
		p.consumeKeyword("@base")
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipWS()
	if !sparqlForm {
		if p.eof() || p.peek() != '.' {
			return p.errf("@base directive must end with '.'")
		}
		p.advance()
	}
	return nil
}

func (p *parser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	p.skipWS()
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return p.errf("expected '.' after triples")
	}
	p.advance()
	return nil
}

func (p *parser) predicateObjectList(subj term.Term) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			t := graph.T(subj, pred, obj)
			if !t.WellFormed() {
				return p.errf("ill-formed triple %s", t)
			}
			p.g.MustAdd(t)
			p.skipWS()
			if !p.eof() && p.peek() == ',' {
				p.advance()
				continue
			}
			break
		}
		if !p.eof() && p.peek() == ';' {
			p.advance()
			p.skipWS()
			// Allow trailing ';' before '.' or ']'.
			if !p.eof() && (p.peek() == '.' || p.peek() == ']') {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *parser) subject() (term.Term, error) {
	p.skipWS()
	if p.eof() {
		return term.Term{}, p.errf("expected subject")
	}
	switch {
	case p.peek() == '<':
		iri, err := p.iriRef()
		if err != nil {
			return term.Term{}, err
		}
		return term.NewIRI(iri), nil
	case strings.HasPrefix(p.src[p.pos:], "_:"):
		return p.blankLabel()
	case p.peek() == '[':
		return p.blankNodePropertyList()
	case p.peek() == '(':
		return term.Term{}, p.errf("RDF collections are not supported by this subset")
	default:
		return p.prefixedName()
	}
}

func (p *parser) predicate() (term.Term, error) {
	if p.eof() {
		return term.Term{}, p.errf("expected predicate")
	}
	// The 'a' keyword.
	if p.peek() == 'a' {
		if p.pos+1 == len(p.src) || isWS(p.src[p.pos+1]) {
			p.advance()
			return rdfs.Type, nil
		}
	}
	if p.peek() == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return term.Term{}, err
		}
		return term.NewIRI(iri), nil
	}
	return p.prefixedName()
}

func (p *parser) object() (term.Term, error) {
	if p.eof() {
		return term.Term{}, p.errf("expected object")
	}
	switch {
	case p.peek() == '<':
		iri, err := p.iriRef()
		if err != nil {
			return term.Term{}, err
		}
		return term.NewIRI(iri), nil
	case strings.HasPrefix(p.src[p.pos:], "_:"):
		return p.blankLabel()
	case p.peek() == '[':
		return p.blankNodePropertyList()
	case p.peek() == '(':
		return term.Term{}, p.errf("RDF collections are not supported by this subset")
	case p.peek() == '"':
		return p.stringLiteral()
	case p.peek() == '+' || p.peek() == '-' || isDigitB(p.peek()):
		return p.numericLiteral()
	case p.hasKeyword("true"):
		p.consumeKeyword("true")
		return term.NewTypedLiteral("true", xsd+"boolean"), nil
	case p.hasKeyword("false"):
		p.consumeKeyword("false")
		return term.NewTypedLiteral("false", xsd+"boolean"), nil
	default:
		return p.prefixedName()
	}
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigitB(c byte) bool { return c >= '0' && c <= '9' }

func (p *parser) iriRef() (string, error) {
	if p.eof() || p.peek() != '<' {
		return "", p.errf("expected '<'")
	}
	p.advance()
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated IRI")
		}
		c := p.advance()
		if c == '>' {
			iri := b.String()
			if p.base != "" && !strings.Contains(iri, ":") {
				iri = p.base + iri
			}
			return iri, nil
		}
		if c <= 0x20 {
			return "", p.errf("whitespace in IRI")
		}
		b.WriteByte(c)
	}
}

func (p *parser) blankLabel() (term.Term, error) {
	p.advance() // '_'
	p.advance() // ':'
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	label := p.src[start:p.pos]
	if label == "" {
		return term.Term{}, p.errf("empty blank node label")
	}
	return term.NewBlank(label), nil
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-'
}

// blankNodePropertyList parses "[ p o ; … ]" and returns the fresh blank.
func (p *parser) blankNodePropertyList() (term.Term, error) {
	p.advance() // '['
	p.anonCount++
	node := term.NewBlank(fmt.Sprintf("anon%d", p.anonCount))
	p.skipWS()
	if !p.eof() && p.peek() == ']' { // empty: just a fresh node
		p.advance()
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return term.Term{}, err
	}
	p.skipWS()
	if p.eof() || p.peek() != ']' {
		return term.Term{}, p.errf("expected ']'")
	}
	p.advance()
	return node, nil
}

func (p *parser) prefixedName() (term.Term, error) {
	start := p.pos
	for !p.eof() && p.peek() != ':' && isNameChar(p.peek()) {
		p.advance()
	}
	if p.eof() || p.peek() != ':' {
		return term.Term{}, p.errf("expected prefixed name")
	}
	prefix := p.src[start:p.pos]
	p.advance() // ':'
	ns, ok := p.prefixes[prefix]
	if !ok {
		return term.Term{}, p.errf("undeclared prefix %q", prefix)
	}
	lstart := p.pos
	for !p.eof() && (isNameChar(p.peek()) || p.peek() == '.') {
		// A '.' ends the local name if followed by whitespace/EOF (it is
		// then the statement terminator).
		if p.peek() == '.' {
			if p.pos+1 >= len(p.src) || !isNameChar(p.src[p.pos+1]) {
				break
			}
		}
		p.advance()
	}
	local := p.src[lstart:p.pos]
	return term.NewIRI(ns + local), nil
}

func (p *parser) stringLiteral() (term.Term, error) {
	p.advance() // '"'
	var b strings.Builder
	for {
		if p.eof() {
			return term.Term{}, p.errf("unterminated string")
		}
		c := p.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if p.eof() {
				return term.Term{}, p.errf("dangling escape")
			}
			e := p.advance()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return term.Term{}, p.errf("unsupported escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	lex := b.String()
	if !p.eof() && p.peek() == '@' {
		p.advance()
		start := p.pos
		for !p.eof() && (isNameChar(p.peek())) {
			p.advance()
		}
		tag := p.src[start:p.pos]
		if tag == "" {
			return term.Term{}, p.errf("empty language tag")
		}
		return term.NewLangLiteral(lex, tag), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.advance()
		p.advance()
		var dt term.Term
		var err error
		if !p.eof() && p.peek() == '<' {
			iri, e := p.iriRef()
			if e != nil {
				return term.Term{}, e
			}
			dt = term.NewIRI(iri)
		} else {
			dt, err = p.prefixedName()
			if err != nil {
				return term.Term{}, err
			}
		}
		return term.NewTypedLiteral(lex, dt.Value), nil
	}
	return term.NewLiteral(lex), nil
}

func (p *parser) numericLiteral() (term.Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.advance()
	}
	digits := 0
	for !p.eof() && isDigitB(p.peek()) {
		p.advance()
		digits++
	}
	isDecimal := false
	if !p.eof() && p.peek() == '.' {
		// Only a decimal if digits follow; otherwise it is the statement
		// terminator.
		if p.pos+1 < len(p.src) && isDigitB(p.src[p.pos+1]) {
			isDecimal = true
			p.advance()
			for !p.eof() && isDigitB(p.peek()) {
				p.advance()
			}
		}
	}
	if digits == 0 {
		return term.Term{}, p.errf("malformed number")
	}
	lex := p.src[start:p.pos]
	if isDecimal {
		return term.NewTypedLiteral(lex, xsd+"decimal"), nil
	}
	return term.NewTypedLiteral(lex, xsd+"integer"), nil
}
