package turtle

import (
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }

func TestPrefixAndBasicTriples(t *testing.T) {
	g, err := Parse(`
@prefix ex: <http://ex.org/> .
ex:a ex:p ex:b .
ex:a ex:q "lit" .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("parsed %d triples, want 2", g.Len())
	}
	if !g.Has(graph.T(iri("http://ex.org/a"), iri("http://ex.org/p"), iri("http://ex.org/b"))) {
		t.Error("prefixed triple missing")
	}
}

func TestSPARQLStylePrefix(t *testing.T) {
	g, err := Parse(`
PREFIX ex: <http://ex.org/>
ex:a ex:p ex:b .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("parsed %d, want 1", g.Len())
	}
}

func TestAKeywordAndLists(t *testing.T) {
	g, err := Parse(`
@prefix ex: <http://ex.org/> .
ex:picasso a ex:Painter ;
    ex:paints ex:guernica , ex:demoiselles ;
    ex:name "Pablo" .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("parsed %d triples, want 4:\n%v", g.Len(), g)
	}
	if !g.Has(graph.T(iri("http://ex.org/picasso"), rdfs.Type, iri("http://ex.org/Painter"))) {
		t.Error("'a' keyword not mapped to rdf:type")
	}
	if !g.Has(graph.T(iri("http://ex.org/picasso"), iri("http://ex.org/paints"), iri("http://ex.org/demoiselles"))) {
		t.Error("object list member missing")
	}
}

func TestBlankNodes(t *testing.T) {
	g, err := Parse(`
@prefix ex: <http://ex.org/> .
_:x ex:p ex:b .
ex:a ex:q _:x .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.BlankNodes()) != 1 {
		t.Fatalf("blank node labels must unify: %v", g.BlankNodeList())
	}
}

func TestBlankNodePropertyList(t *testing.T) {
	g, err := Parse(`
@prefix ex: <http://ex.org/> .
ex:a ex:knows [ ex:name "Bob" ; ex:age 42 ] .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("parsed %d, want 3:\n%v", g.Len(), g)
	}
	if len(g.BlankNodes()) != 1 {
		t.Fatalf("anonymous node count = %d", len(g.BlankNodes()))
	}
}

func TestLiteralForms(t *testing.T) {
	g, err := Parse(`
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:p "plain" .
ex:a ex:p "tagged"@en .
ex:a ex:p "typed"^^xsd:token .
ex:a ex:p "typed2"^^<http://dt> .
ex:a ex:p 42 .
ex:a ex:p -7 .
ex:a ex:p 3.14 .
ex:a ex:p true .
ex:a ex:p false .
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []term.Term{
		term.NewLiteral("plain"),
		term.NewLangLiteral("tagged", "en"),
		term.NewTypedLiteral("typed", xsd+"token"),
		term.NewTypedLiteral("typed2", "http://dt"),
		term.NewTypedLiteral("42", xsd+"integer"),
		term.NewTypedLiteral("-7", xsd+"integer"),
		term.NewTypedLiteral("3.14", xsd+"decimal"),
		term.NewTypedLiteral("true", xsd+"boolean"),
		term.NewTypedLiteral("false", xsd+"boolean"),
	}
	for _, w := range want {
		if !g.Has(graph.T(iri("http://ex.org/a"), iri("http://ex.org/p"), w)) {
			t.Errorf("missing literal %v", w)
		}
	}
}

func TestBaseDirective(t *testing.T) {
	g, err := Parse(`
@base <http://ex.org/> .
@prefix ex: <http://ex.org/> .
<a> ex:p <b> .
`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(graph.T(iri("http://ex.org/a"), iri("http://ex.org/p"), iri("http://ex.org/b"))) {
		t.Fatalf("base not applied:\n%v", g)
	}
}

func TestDotInsideLocalName(t *testing.T) {
	g, err := Parse(`
@prefix ex: <http://ex.org/> .
ex:v1.2 ex:p ex:b .
`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(graph.T(iri("http://ex.org/v1.2"), iri("http://ex.org/p"), iri("http://ex.org/b"))) {
		t.Fatalf("dotted local name wrong:\n%v", g)
	}
}

func TestParseErrors(t *testing.T) {
	corpus := []string{
		`ex:a ex:p ex:b .`,                                      // undeclared prefix
		`@prefix ex: <http://e> ex:a ex:p ex:b .`,               // missing dot after prefix
		`@prefix ex: <http://e> .` + "\n" + `ex:a ex:p .`,       // missing object
		`@prefix ex: <http://e> .` + "\n" + `ex:a ex:p ex:b`,    // missing final dot
		`@prefix ex: <http://e> .` + "\n" + `ex:a ex:p (1 2) .`, // collections unsupported
		`@prefix ex: <http://e> .` + "\n" + `ex:a ex:p "unterminated .`,
		`@prefix ex: <http://e> .` + "\n" + `ex:a ex:p [ ex:q ex:r .`, // unterminated bnode list
		`@prefix ex: <http://e> .` + "\n" + `"lit" ex:p ex:b .`,       // literal subject
		`@prefix ex: <http://e> .` + "\n" + `ex:a ex:p "x"@ .`,        // empty lang
	}
	for i, src := range corpus {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: malformed turtle accepted:\n%s", i, src)
		}
	}
}

func TestFigure1ArtExample(t *testing.T) {
	// The paper's Fig. 1 schema in Turtle.
	g, err := Parse(`
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix art: <http://ex.org/art/> .

art:sculptor rdfs:subClassOf art:artist .
art:painter rdfs:subClassOf art:artist .
art:paints rdfs:subPropertyOf art:creates .
art:sculpts rdfs:subPropertyOf art:creates .
art:creates rdfs:domain art:artist ;
            rdfs:range art:artifact .
art:exhibited rdfs:domain art:artifact ;
              rdfs:range art:museum .
art:picasso art:paints art:guernica .
art:guernica art:exhibited art:reinasofia .
art:reinasofia a art:museum .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 11 {
		t.Fatalf("Fig. 1 graph has %d triples, want 11", g.Len())
	}
	if !g.Has(graph.T(iri("http://ex.org/art/creates"), rdfs.Domain, iri("http://ex.org/art/artist"))) {
		t.Error("domain triple via ';' missing")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic")
		}
	}()
	MustParse("garbage !!!")
}
