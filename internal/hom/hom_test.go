package hom

import (
	"fmt"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

// encCycle returns enc(C_n): the RDF encoding of the directed cycle with n
// nodes, all blanks (Section 2.4 encoding).
func encCycle(n int, label string) *graph.Graph {
	g := graph.New()
	e := iri("e")
	for i := 0; i < n; i++ {
		g.Add(graph.T(blk(fmt.Sprintf("%s%d", label, i)), e, blk(fmt.Sprintf("%s%d", label, (i+1)%n))))
	}
	return g
}

// encClique returns enc(K_n) with URI nodes (so it is rigid).
func encClique(n int) *graph.Graph {
	g := graph.New()
	e := iri("e")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.Add(graph.T(iri(fmt.Sprintf("k%d", i)), e, iri(fmt.Sprintf("k%d", j))))
			}
		}
	}
	return g
}

// encCliqueBlank returns enc(K_n) with blank nodes.
func encCliqueBlank(n int, label string) *graph.Graph {
	g := graph.New()
	e := iri("e")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.Add(graph.T(blk(fmt.Sprintf("%s%d", label, i)), e, blk(fmt.Sprintf("%s%d", label, j))))
			}
		}
	}
	return g
}

func TestFindMapIdentityAlwaysExists(t *testing.T) {
	g := graph.New(
		graph.T(blk("x"), iri("p"), blk("y")),
		graph.T(blk("y"), iri("p"), iri("a")),
	)
	if !ExistsMap(g, g) {
		t.Fatal("identity map not found")
	}
}

func TestFindMapSimple(t *testing.T) {
	// G2 = {(X,p,b)}, G1 = {(a,p,b)}: map X→a exists.
	g1 := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	g2 := graph.New(graph.T(blk("X"), iri("p"), iri("b")))
	mu, ok := FindMap(g2, g1)
	if !ok {
		t.Fatal("expected a map")
	}
	if mu.Of(blk("X")) != iri("a") {
		t.Fatalf("X ↦ %v, want a", mu.Of(blk("X")))
	}
	if !mu.Apply(g2).SubgraphOf(g1) {
		t.Fatal("map image not a subgraph")
	}
	// No map the other way: a is a URI and must be preserved.
	if ExistsMap(g1, g2) {
		t.Fatal("map from ground graph into non-matching graph")
	}
}

func TestOddCycleToTriangle(t *testing.T) {
	// Graph-coloring folklore via the paper's enc(·): C_n maps into K_3
	// iff n is even or n ≥ 3 is odd... precisely: an odd cycle is
	// 3-colorable, an even cycle 2-colorable; both map into K3 for n ≥ 3.
	// C_5 → C_3? No: a homomorphism of an odd cycle into a shorter odd
	// cycle does not exist.
	k3 := encClique(3)
	for _, n := range []int{3, 4, 5, 6, 7} {
		if !ExistsMap(encCycle(n, "c"), k3) {
			t.Errorf("C_%d must map into K_3", n)
		}
	}
	// C_5 into C_3 must fail (odd girth obstruction).
	if ExistsMap(encCycle(5, "a"), encCycle(3, "b")) {
		t.Error("C_5 → C_3 must not exist")
	}
	// C_4 into C_2 (a double edge) exists: alternate the two nodes.
	if !ExistsMap(encCycle(4, "a"), encCycle(2, "b")) {
		t.Error("C_4 → C_2 must exist")
	}
}

func TestHomomorphismComposition(t *testing.T) {
	// C_6 → C_3 → K_3: composition through maps.
	c6, c3 := encCycle(6, "a"), encCycle(3, "b")
	m1, ok1 := FindMap(c6, c3)
	m2, ok2 := FindMap(c3, encClique(3))
	if !ok1 || !ok2 {
		t.Fatal("expected maps")
	}
	comp := m1.Compose(m2)
	if !comp.Apply(c6).SubgraphOf(encClique(3)) {
		t.Fatal("composition is not a map")
	}
}

func TestAllMapsCount(t *testing.T) {
	// {(X,p,Y)} into a graph with 3 p-triples: 3 maps.
	dst := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("c"), iri("p"), iri("d")),
		graph.T(iri("e"), iri("p"), iri("f")),
	)
	src := graph.New(graph.T(blk("X"), iri("p"), blk("Y")))
	if n := CountMaps(src, dst, 0); n != 3 {
		t.Fatalf("CountMaps = %d, want 3", n)
	}
	if got := AllMaps(src, dst, 2); len(got) != 2 {
		t.Fatalf("AllMaps with limit: %d, want 2", len(got))
	}
}

func TestIsProperInstanceMap(t *testing.T) {
	g := graph.New(graph.T(blk("X"), iri("p"), blk("Y")))
	if IsProperInstanceMap(g, graph.Map{}) {
		t.Fatal("identity is not proper")
	}
	if !IsProperInstanceMap(g, graph.Map{blk("X"): iri("a")}) {
		t.Fatal("blank→URI is proper")
	}
	if !IsProperInstanceMap(g, graph.Map{blk("X"): blk("Y")}) {
		t.Fatal("blank identification is proper")
	}
	if IsProperInstanceMap(g, graph.Map{blk("X"): blk("Z"), blk("Y"): blk("X")}) {
		t.Fatal("blank renaming is not proper")
	}
}

func TestIsomorphicBasic(t *testing.T) {
	g1 := graph.New(graph.T(blk("x"), iri("p"), blk("y")))
	g2 := graph.New(graph.T(blk("u"), iri("p"), blk("v")))
	if !Isomorphic(g1, g2) {
		t.Fatal("renaming-isomorphic graphs rejected")
	}
	g3 := graph.New(graph.T(blk("u"), iri("p"), blk("u")))
	if Isomorphic(g1, g3) {
		t.Fatal("loop vs edge accepted")
	}
	// Although hom-equivalent, C_3 and C_6 are not isomorphic.
	if Isomorphic(encCycle(3, "a"), encCycle(6, "b")) {
		t.Fatal("C_3 ≅ C_6 accepted")
	}
	if !Isomorphic(encCycle(4, "a"), encCycle(4, "b")) {
		t.Fatal("C_4 ≅ C_4 rejected")
	}
}

func TestIsomorphicGroundMismatch(t *testing.T) {
	g1 := graph.New(graph.T(iri("a"), iri("p"), iri("b")), graph.T(blk("x"), iri("p"), iri("b")))
	g2 := graph.New(graph.T(iri("a"), iri("p"), iri("c")), graph.T(blk("x"), iri("p"), iri("c")))
	if Isomorphic(g1, g2) {
		t.Fatal("isomorphism cannot change ground triples")
	}
}

func TestFindIsomorphismWitness(t *testing.T) {
	g1 := encCycle(5, "a")
	g2 := encCycle(5, "b")
	iso, ok := FindIsomorphism(g1, g2)
	if !ok {
		t.Fatal("expected isomorphism")
	}
	if !iso.Apply(g1).Equal(g2) {
		t.Fatal("witness does not carry g1 onto g2")
	}
	if _, ok := FindIsomorphism(encCycle(5, "a"), encCycle(4, "b")); ok {
		t.Fatal("C_5 ≅ C_4 accepted")
	}
}

func TestKliqueIntoKClique(t *testing.T) {
	// K_n (blank) maps into K_m (URI) iff n ≤ m (needs injectivity on a
	// clique, enforced by the edge structure: no loops in K_m).
	k3 := encClique(3)
	if !ExistsMap(encCliqueBlank(3, "x"), k3) {
		t.Fatal("K_3 → K_3 must exist")
	}
	if ExistsMap(encCliqueBlank(4, "x"), k3) {
		t.Fatal("K_4 → K_3 must not exist")
	}
}

func TestAutomorphisms(t *testing.T) {
	// C_4 with blank nodes has 4 rotations + 4 reflections = 8
	// automorphisms as a directed cycle... directed: only 4 rotations.
	autos := Automorphisms(encCycle(4, "a"), 0)
	if len(autos) != 4 {
		t.Fatalf("automorphisms of directed C_4 = %d, want 4", len(autos))
	}
	for _, m := range autos {
		if !m.Apply(encCycle(4, "a")).Equal(encCycle(4, "a")) {
			t.Fatal("non-automorphism returned")
		}
	}
}

func TestFinderReuse(t *testing.T) {
	dst := encClique(3)
	f := NewFinder(dst)
	for n := 3; n <= 6; n++ {
		if _, ok := f.Find(encCycle(n, "c")); !ok {
			t.Errorf("C_%d → K_3 via reused finder failed", n)
		}
	}
}

func TestFindBudget(t *testing.T) {
	// Exhaust the budget on a hard unsatisfiable instance: K_5 → K_4.
	_, found, complete := NewFinder(encClique(4)).FindBudget(encCliqueBlank(5, "x"), 10)
	if found {
		t.Fatal("impossible map found")
	}
	if complete {
		t.Fatal("tiny budget cannot complete K_5 → K_4 search")
	}
	_, found2, complete2 := NewFinder(encClique(4)).FindBudget(encCliqueBlank(4, "x"), 1_000_000)
	if !found2 || !complete2 {
		t.Fatalf("K_4 → K_4: found=%v complete=%v", found2, complete2)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	dst := encClique(3)
	src := graph.New(graph.T(blk("X"), iri("e"), blk("Y")))
	n := 0
	NewFinder(dst).Enumerate(src, func(graph.Map) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop failed: %d", n)
	}
}
