// Package hom implements maps between RDF graphs — the homomorphisms
// μ : UB → UB preserving URIs of Section 2.1 — and the derived notions
// the paper's characterizations are built on: existence and enumeration
// of maps G' → G, instances, and isomorphism of RDF graphs.
//
// By Theorem 2.8, simple-graph entailment G1 ⊨ G2 is exactly the
// existence of a map G2 → G1, and general RDFS entailment is the
// existence of a map G2 → cl(G1); this package supplies that primitive.
package hom

import (
	"context"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/match"
	"semwebdb/internal/term"
)

// blankUnknown treats blank nodes as the unknowns of the search: a map
// fixes URIs (and literals) and moves only blanks.
func blankUnknown(t term.Term) bool { return t.IsBlank() }

// Finder performs repeated map searches into a fixed destination graph,
// reusing one index.
type Finder struct {
	ix *match.Index
	d  *dict.Dict
}

// NewFinder builds a Finder for maps into dst.
func NewFinder(dst *graph.Graph) *Finder {
	return &Finder{ix: match.NewIndex(dst), d: dst.Dict()}
}

// Find returns a map μ with μ(src) ⊆ dst, if one exists.
func (f *Finder) Find(src *graph.Graph) (graph.Map, bool) {
	solver := match.NewSolver(f.ix, match.Options{IsUnknown: blankUnknown})
	b, ok, _ := solver.First(src.Triples())
	if !ok {
		return nil, false
	}
	return bindingToMap(b, f.d), true
}

// FindCtx is Find under a context: the backtracking search polls ctx
// periodically and aborts with its error when it is cancelled.
func (f *Finder) FindCtx(ctx context.Context, src *graph.Graph) (graph.Map, bool, error) {
	solver := match.NewSolver(f.ix, match.Options{IsUnknown: blankUnknown, Ctx: ctx})
	b, ok, _ := solver.First(src.Triples())
	if err := solver.Err(); err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return bindingToMap(b, f.d), true, nil
}

// FindBudget is Find with a bounded search budget. The third result is
// false when the budget was exhausted before the search space was covered
// (the answer is then inconclusive if no map was found).
func (f *Finder) FindBudget(src *graph.Graph, maxSteps int) (graph.Map, bool, bool) {
	solver := match.NewSolver(f.ix, match.Options{IsUnknown: blankUnknown, MaxSteps: maxSteps})
	b, ok, complete := solver.First(src.Triples())
	if !ok {
		return nil, false, complete
	}
	return bindingToMap(b, f.d), true, true
}

// Enumerate yields every map μ with μ(src) ⊆ dst until yield returns
// false. It reports whether the enumeration covered the full space.
func (f *Finder) Enumerate(src *graph.Graph, yield func(graph.Map) bool) bool {
	solver := match.NewSolver(f.ix, match.Options{IsUnknown: blankUnknown})
	return solver.Solve(src.Triples(), func(b match.Binding) bool {
		return yield(bindingToMap(b, f.d))
	})
}

// bindingToMap decodes an ID-level binding into a term-level map μ.
func bindingToMap(b match.Binding, d *dict.Dict) graph.Map {
	return graph.Map(b.Terms(d))
}

// FindMap returns a map μ : src → dst (i.e. μ(src) ⊆ dst), if one exists.
// This is the paper's overloaded "map μ : G1 → G2" (Section 2.1).
func FindMap(src, dst *graph.Graph) (graph.Map, bool) {
	return NewFinder(dst).Find(src)
}

// FindMapCtx is FindMap under a context (see Finder.FindCtx).
func FindMapCtx(ctx context.Context, src, dst *graph.Graph) (graph.Map, bool, error) {
	return NewFinder(dst).FindCtx(ctx, src)
}

// ExistsMap reports whether there is a map src → dst.
func ExistsMap(src, dst *graph.Graph) bool {
	_, ok := FindMap(src, dst)
	return ok
}

// AllMaps returns every map src → dst, up to limit (0 = no limit).
func AllMaps(src, dst *graph.Graph, limit int) []graph.Map {
	var out []graph.Map
	NewFinder(dst).Enumerate(src, func(m graph.Map) bool {
		out = append(out, m)
		return limit == 0 || len(out) < limit
	})
	return out
}

// CountMaps returns the number of maps src → dst, stopping at limit
// (0 = no limit).
func CountMaps(src, dst *graph.Graph, limit int) int {
	n := 0
	NewFinder(dst).Enumerate(src, func(graph.Map) bool {
		n++
		return limit == 0 || n < limit
	})
	return n
}

// IsProperInstanceMap reports whether μ(g) is a proper instance of g:
// μ sends some blank to a URI/literal or identifies two blanks of g,
// i.e. μ(g) has fewer blank nodes than g (Section 2.1).
func IsProperInstanceMap(g *graph.Graph, m graph.Map) bool {
	return len(m.Apply(g).BlankNodes()) < len(g.BlankNodes())
}

// Isomorphic reports G1 ≅ G2: existence of maps μ1, μ2 with μ1(G1) = G2
// and μ2(G2) = G1 (Section 2.1). For finite graphs this is equivalent to
// the existence of a blank-renaming bijection carrying G1 exactly onto
// G2, which is what is searched for here.
func Isomorphic(g1, g2 *graph.Graph) bool {
	if g1.Len() != g2.Len() {
		return false
	}
	b1 := g1.BlankNodeList()
	b2 := g2.BlankNodeList()
	if len(b1) != len(b2) {
		return false
	}
	if len(b1) == 0 {
		return g1.Equal(g2)
	}
	// Ground triples must coincide exactly: a blank-to-blank bijection
	// cannot move them.
	if !g1.GroundPart().Equal(g2.GroundPart()) {
		return false
	}
	blankSet2 := g2.BlankIDs()
	opts := match.Options{
		IsUnknown: blankUnknown,
		Injective: true,
		Admissible: func(_, value dict.ID) bool {
			_, ok := blankSet2[value]
			return ok
		},
	}
	found := false
	match.Solve(g1.Triples(), g2, opts, func(b match.Binding) bool {
		// The binding is an injective blank(G1) → blank(G2) assignment
		// with μ(G1) ⊆ G2; equal sizes and injectivity force μ(G1) = G2.
		m := bindingToMap(b, g2.Dict())
		if m.Apply(g1).Equal(g2) {
			found = true
			return false
		}
		return true
	})
	return found
}

// FindIsomorphism returns a blank-bijection witnessing G1 ≅ G2, if any.
func FindIsomorphism(g1, g2 *graph.Graph) (graph.Map, bool) {
	if g1.Len() != g2.Len() || len(g1.BlankNodes()) != len(g2.BlankNodes()) {
		return nil, false
	}
	if !g1.GroundPart().Equal(g2.GroundPart()) {
		return nil, false
	}
	blankSet2 := g2.BlankIDs()
	opts := match.Options{
		IsUnknown: blankUnknown,
		Injective: true,
		Admissible: func(_, value dict.ID) bool {
			_, ok := blankSet2[value]
			return ok
		},
	}
	var iso graph.Map
	match.Solve(g1.Triples(), g2, opts, func(b match.Binding) bool {
		m := bindingToMap(b, g2.Dict())
		if m.Apply(g1).Equal(g2) {
			iso = m
			return false
		}
		return true
	})
	return iso, iso != nil
}

// Automorphisms returns the blank-renaming bijections g → g (limit 0 = no
// limit). The identity is always included.
func Automorphisms(g *graph.Graph, limit int) []graph.Map {
	blanks := g.BlankIDs()
	opts := match.Options{
		IsUnknown: blankUnknown,
		Injective: true,
		Admissible: func(_, value dict.ID) bool {
			_, ok := blanks[value]
			return ok
		},
	}
	var out []graph.Map
	match.Solve(g.Triples(), g, opts, func(b match.Binding) bool {
		m := bindingToMap(b, g.Dict())
		if m.Apply(g).Equal(g) {
			out = append(out, m)
			if limit != 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out
}
