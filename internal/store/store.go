// Package store implements a dictionary-encoded, triply-indexed triple
// store — the database substrate behind the command-line tools and the
// workload benchmarks. Terms are interned to dense integer IDs and
// triples are kept in three sorted permutations (SPO, POS, OSP), so that
// every triple pattern with at least one bound position resolves to a
// binary-search range scan.
package store

import (
	"sort"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// ID is a dictionary-encoded term identifier. The zero ID is reserved.
type ID uint32

// Wildcard marks an unbound position in a pattern.
const Wildcard ID = 0

// Triple3 is a dictionary-encoded triple.
type Triple3 [3]ID

// Order names one of the maintained index permutations.
type Order int

const (
	// SPO orders triples by subject, predicate, object.
	SPO Order = iota
	// POS orders triples by predicate, object, subject.
	POS
	// OSP orders triples by object, subject, predicate.
	OSP
)

// permute maps a triple into the key layout of the given order.
func permute(t Triple3, o Order) Triple3 {
	switch o {
	case POS:
		return Triple3{t[1], t[2], t[0]}
	case OSP:
		return Triple3{t[2], t[0], t[1]}
	default:
		return t
	}
}

// unpermute inverts permute.
func unpermute(k Triple3, o Order) Triple3 {
	switch o {
	case POS:
		return Triple3{k[2], k[0], k[1]}
	case OSP:
		return Triple3{k[1], k[2], k[0]}
	default:
		return k
	}
}

// Store is an in-memory indexed triple store. The zero value is not ready
// to use; construct with New.
type Store struct {
	dict    map[term.Term]ID
	reverse []term.Term // reverse[id-1] = term

	present map[Triple3]struct{}
	indexes [3][]Triple3 // permuted keys, sorted
	dirty   [3]bool

	orders []Order // maintained permutations (ablation A1 varies this)
}

// New returns an empty store maintaining all three index orders.
func New() *Store { return NewWithOrders(SPO, POS, OSP) }

// NewWithOrders returns an empty store maintaining only the given orders.
// SPO is always maintained (it is the primary).
func NewWithOrders(orders ...Order) *Store {
	s := &Store{
		dict:    make(map[term.Term]ID),
		present: make(map[Triple3]struct{}),
	}
	seen := map[Order]bool{SPO: true}
	s.orders = []Order{SPO}
	for _, o := range orders {
		if !seen[o] {
			seen[o] = true
			s.orders = append(s.orders, o)
		}
	}
	return s
}

// Intern returns the ID for a term, allocating one if needed.
func (s *Store) Intern(t term.Term) ID {
	if id, ok := s.dict[t]; ok {
		return id
	}
	s.reverse = append(s.reverse, t)
	id := ID(len(s.reverse))
	s.dict[t] = id
	return id
}

// Lookup returns the ID of a term if it is interned.
func (s *Store) Lookup(t term.Term) (ID, bool) {
	id, ok := s.dict[t]
	return id, ok
}

// TermOf returns the term for an ID. It panics on the zero or an unknown
// ID.
func (s *Store) TermOf(id ID) term.Term {
	return s.reverse[id-1]
}

// Len returns the number of stored triples.
func (s *Store) Len() int { return len(s.present) }

// DictSize returns the number of interned terms.
func (s *Store) DictSize() int { return len(s.reverse) }

// Add inserts a triple, interning its terms. It reports whether the
// triple was new. Ill-formed triples are rejected.
func (s *Store) Add(t graph.Triple) bool {
	if !t.WellFormed() {
		return false
	}
	enc := Triple3{s.Intern(t.S), s.Intern(t.P), s.Intern(t.O)}
	return s.addEncoded(enc)
}

func (s *Store) addEncoded(enc Triple3) bool {
	if _, ok := s.present[enc]; ok {
		return false
	}
	s.present[enc] = struct{}{}
	for _, o := range s.orders {
		s.indexes[o] = append(s.indexes[o], permute(enc, o))
		s.dirty[o] = true
	}
	return true
}

// Remove deletes a triple, reporting whether it was present. Removal
// rebuilds the affected index ranges lazily.
func (s *Store) Remove(t graph.Triple) bool {
	enc, ok := s.encodeExisting(t)
	if !ok {
		return false
	}
	if _, ok := s.present[enc]; !ok {
		return false
	}
	delete(s.present, enc)
	for _, o := range s.orders {
		key := permute(enc, o)
		idx := s.indexes[o]
		// Tombstone by swap-with-last; resort lazily.
		for i, k := range idx {
			if k == key {
				idx[i] = idx[len(idx)-1]
				s.indexes[o] = idx[:len(idx)-1]
				s.dirty[o] = true
				break
			}
		}
	}
	return true
}

// Has reports membership.
func (s *Store) Has(t graph.Triple) bool {
	enc, ok := s.encodeExisting(t)
	if !ok {
		return false
	}
	_, present := s.present[enc]
	return present
}

func (s *Store) encodeExisting(t graph.Triple) (Triple3, bool) {
	sID, ok := s.dict[t.S]
	if !ok {
		return Triple3{}, false
	}
	pID, ok := s.dict[t.P]
	if !ok {
		return Triple3{}, false
	}
	oID, ok := s.dict[t.O]
	if !ok {
		return Triple3{}, false
	}
	return Triple3{sID, pID, oID}, true
}

func (s *Store) ensureSorted(o Order) {
	if !s.dirty[o] {
		return
	}
	idx := s.indexes[o]
	sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
	s.dirty[o] = false
}

func less(a, b Triple3) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// hasOrder reports whether the store maintains the given order.
func (s *Store) hasOrder(o Order) bool {
	for _, x := range s.orders {
		if x == o {
			return true
		}
	}
	return false
}

// chooseOrder selects the best maintained index for a pattern: the one
// whose leading positions are bound.
func (s *Store) chooseOrder(sb, pb, ob bool) (Order, int) {
	type cand struct {
		o      Order
		prefix int
	}
	prefixLen := func(a, b, c bool) int {
		switch {
		case a && b && c:
			return 3
		case a && b:
			return 2
		case a:
			return 1
		default:
			return 0
		}
	}
	cands := []cand{{SPO, prefixLen(sb, pb, ob)}}
	if s.hasOrder(POS) {
		cands = append(cands, cand{POS, prefixLen(pb, ob, sb)})
	}
	if s.hasOrder(OSP) {
		cands = append(cands, cand{OSP, prefixLen(ob, sb, pb)})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.prefix > best.prefix {
			best = c
		}
	}
	return best.o, best.prefix
}

// Match streams every stored triple matching the pattern (Wildcard = any
// position) to fn; iteration stops early when fn returns false. The scan
// uses the maintained index with the longest bound prefix; positions not
// covered by the prefix are post-filtered.
func (s *Store) Match(sp, pp, op ID, fn func(Triple3) bool) {
	o, prefix := s.chooseOrder(sp != Wildcard, pp != Wildcard, op != Wildcard)
	s.ensureSorted(o)
	idx := s.indexes[o]
	key := permute(Triple3{sp, pp, op}, o)

	lo, hi := 0, len(idx)
	if prefix > 0 {
		lo = sort.Search(len(idx), func(i int) bool {
			return !prefixLess(idx[i], key, prefix)
		})
		hi = sort.Search(len(idx), func(i int) bool {
			return prefixGreater(idx[i], key, prefix)
		})
	}
	for i := lo; i < hi; i++ {
		t := unpermute(idx[i], o)
		if sp != Wildcard && t[0] != sp {
			continue
		}
		if pp != Wildcard && t[1] != pp {
			continue
		}
		if op != Wildcard && t[2] != op {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

func prefixLess(a, key Triple3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != key[i] {
			return a[i] < key[i]
		}
	}
	return false
}

func prefixGreater(a, key Triple3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != key[i] {
			return a[i] > key[i]
		}
	}
	return false
}

// MatchTerms is Match with term-level pattern positions; a zero Term is a
// wildcard. Unknown (never-interned) bound terms yield no matches.
func (s *Store) MatchTerms(sub, pred, obj term.Term, fn func(graph.Triple) bool) {
	enc := func(t term.Term) (ID, bool) {
		if t.IsZero() {
			return Wildcard, true
		}
		id, ok := s.dict[t]
		return id, ok
	}
	sp, ok1 := enc(sub)
	pp, ok2 := enc(pred)
	op, ok3 := enc(obj)
	if !ok1 || !ok2 || !ok3 {
		return
	}
	s.Match(sp, pp, op, func(t Triple3) bool {
		return fn(graph.T(s.TermOf(t[0]), s.TermOf(t[1]), s.TermOf(t[2])))
	})
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sp, pp, op ID) int {
	n := 0
	s.Match(sp, pp, op, func(Triple3) bool { n++; return true })
	return n
}

// FromGraph loads every triple of g.
func FromGraph(g *graph.Graph) *Store {
	s := New()
	g.Each(func(t graph.Triple) bool {
		s.Add(t)
		return true
	})
	return s
}

// ToGraph materializes the store contents as a graph.
func (s *Store) ToGraph() *graph.Graph {
	g := graph.New()
	for enc := range s.present {
		g.Add(graph.T(s.TermOf(enc[0]), s.TermOf(enc[1]), s.TermOf(enc[2])))
	}
	return g
}

// PredicateStats returns the triple count per predicate ID; the matcher
// uses it for selectivity estimates.
func (s *Store) PredicateStats() map[ID]int {
	stats := make(map[ID]int)
	for enc := range s.present {
		stats[enc[1]]++
	}
	return stats
}
