// Package store implements a dictionary-encoded, triply-indexed triple
// store — the bulk-loading database substrate behind the command-line
// tools and the workload benchmarks. It builds on the shared
// internal/dict encoding layer (the same one graph.Graph uses): terms
// are interned to dense integer IDs and triples are kept in sorted
// permutations (SPO, POS, OSP), so that every triple pattern with at
// least one bound position resolves to a binary-search range scan.
//
// Unlike graph.Graph — whose permutations are rebuilt from scratch when
// a snapshot changes — the store maintains its indexes incrementally
// (append + lazy resort, tombstone-free removal), and the set of
// maintained orders is configurable (ablation A1).
package store

import (
	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// ID is a dictionary-encoded term identifier. The zero ID is reserved.
type ID = dict.ID

// Wildcard marks an unbound position in a pattern.
const Wildcard = dict.Wildcard

// Triple3 is a dictionary-encoded triple.
type Triple3 = dict.Triple3

// Order names one of the maintained index permutations.
type Order = dict.Order

const (
	// SPO orders triples by subject, predicate, object.
	SPO = dict.SPO
	// POS orders triples by predicate, object, subject.
	POS = dict.POS
	// OSP orders triples by object, subject, predicate.
	OSP = dict.OSP
)

// Store is an in-memory indexed triple store. The zero value is not ready
// to use; construct with New.
type Store struct {
	dict *dict.Dict

	present map[Triple3]struct{}
	indexes [3][]Triple3 // permuted keys, sorted
	dirty   [3]bool

	orders []Order // maintained permutations (ablation A1 varies this)
}

// New returns an empty store maintaining all three index orders.
func New() *Store { return NewWithOrders(SPO, POS, OSP) }

// NewWithOrders returns an empty store maintaining only the given orders.
// SPO is always maintained (it is the primary).
func NewWithOrders(orders ...Order) *Store {
	return NewSharedWithOrders(dict.New(), orders...)
}

// NewShared returns an empty store interning into the given shared
// dictionary, maintaining all three index orders.
func NewShared(d *dict.Dict) *Store { return NewSharedWithOrders(d, SPO, POS, OSP) }

// NewSharedWithOrders returns an empty store over a shared dictionary
// maintaining only the given orders (SPO is always maintained).
func NewSharedWithOrders(d *dict.Dict, orders ...Order) *Store {
	s := &Store{
		dict:    d,
		present: make(map[Triple3]struct{}),
	}
	seen := map[Order]bool{SPO: true}
	s.orders = []Order{SPO}
	for _, o := range orders {
		if !seen[o] {
			seen[o] = true
			s.orders = append(s.orders, o)
		}
	}
	return s
}

// Dict returns the store's dictionary.
func (s *Store) Dict() *dict.Dict { return s.dict }

// Intern returns the ID for a term, allocating one if needed.
func (s *Store) Intern(t term.Term) ID { return s.dict.Intern(t) }

// Lookup returns the ID of a term if it is interned.
func (s *Store) Lookup(t term.Term) (ID, bool) { return s.dict.Lookup(t) }

// TermOf returns the term for an ID. It panics on the zero or an unknown
// ID.
func (s *Store) TermOf(id ID) term.Term { return s.dict.TermOf(id) }

// Len returns the number of stored triples.
func (s *Store) Len() int { return len(s.present) }

// DictSize returns the number of interned terms.
func (s *Store) DictSize() int { return s.dict.Len() }

// Add inserts a triple, interning its terms. It reports whether the
// triple was new. Ill-formed triples are rejected.
func (s *Store) Add(t graph.Triple) bool {
	if !t.WellFormed() {
		return false
	}
	enc := Triple3{s.Intern(t.S), s.Intern(t.P), s.Intern(t.O)}
	return s.addEncoded(enc)
}

func (s *Store) addEncoded(enc Triple3) bool {
	if _, ok := s.present[enc]; ok {
		return false
	}
	s.present[enc] = struct{}{}
	for _, o := range s.orders {
		s.indexes[o] = append(s.indexes[o], dict.Permute(enc, o))
		s.dirty[o] = true
	}
	return true
}

// Remove deletes a triple, reporting whether it was present. Removal
// rebuilds the affected index ranges lazily.
func (s *Store) Remove(t graph.Triple) bool {
	enc, ok := s.encodeExisting(t)
	if !ok {
		return false
	}
	if _, ok := s.present[enc]; !ok {
		return false
	}
	delete(s.present, enc)
	for _, o := range s.orders {
		key := dict.Permute(enc, o)
		idx := s.indexes[o]
		// Tombstone by swap-with-last; resort lazily.
		for i, k := range idx {
			if k == key {
				idx[i] = idx[len(idx)-1]
				s.indexes[o] = idx[:len(idx)-1]
				s.dirty[o] = true
				break
			}
		}
	}
	return true
}

// Has reports membership.
func (s *Store) Has(t graph.Triple) bool {
	enc, ok := s.encodeExisting(t)
	if !ok {
		return false
	}
	_, present := s.present[enc]
	return present
}

func (s *Store) encodeExisting(t graph.Triple) (Triple3, bool) {
	sID, ok := s.dict.Lookup(t.S)
	if !ok {
		return Triple3{}, false
	}
	pID, ok := s.dict.Lookup(t.P)
	if !ok {
		return Triple3{}, false
	}
	oID, ok := s.dict.Lookup(t.O)
	if !ok {
		return Triple3{}, false
	}
	return Triple3{sID, pID, oID}, true
}

func (s *Store) ensureSorted(o Order) {
	if !s.dirty[o] {
		return
	}
	dict.SortIndex(s.indexes[o])
	s.dirty[o] = false
}

// hasOrder reports whether the store maintains the given order.
func (s *Store) hasOrder(o Order) bool {
	for _, x := range s.orders {
		if x == o {
			return true
		}
	}
	return false
}

// chooseOrder selects the best maintained index for a pattern: the one
// whose leading positions are bound.
func (s *Store) chooseOrder(sb, pb, ob bool) (Order, int) {
	prefixLen := func(a, b, c bool) int {
		switch {
		case a && b && c:
			return 3
		case a && b:
			return 2
		case a:
			return 1
		default:
			return 0
		}
	}
	best, bestLen := SPO, prefixLen(sb, pb, ob)
	if s.hasOrder(POS) {
		if n := prefixLen(pb, ob, sb); n > bestLen {
			best, bestLen = POS, n
		}
	}
	if s.hasOrder(OSP) {
		if n := prefixLen(ob, sb, pb); n > bestLen {
			best, bestLen = OSP, n
		}
	}
	return best, bestLen
}

// Match streams every stored triple matching the pattern (Wildcard = any
// position) to fn; iteration stops early when fn returns false. The scan
// uses the maintained index with the longest bound prefix; positions not
// covered by the prefix are post-filtered.
func (s *Store) Match(sp, pp, op ID, fn func(Triple3) bool) {
	o, prefix := s.chooseOrder(sp != Wildcard, pp != Wildcard, op != Wildcard)
	s.ensureSorted(o)
	idx := s.indexes[o]
	key := dict.Permute(Triple3{sp, pp, op}, o)

	lo, hi := dict.SearchRange(idx, key, prefix)
	for i := lo; i < hi; i++ {
		t := dict.Unpermute(idx[i], o)
		if sp != Wildcard && t[0] != sp {
			continue
		}
		if pp != Wildcard && t[1] != pp {
			continue
		}
		if op != Wildcard && t[2] != op {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// MatchTerms is Match with term-level pattern positions; a zero Term is a
// wildcard. Unknown (never-interned) bound terms yield no matches.
func (s *Store) MatchTerms(sub, pred, obj term.Term, fn func(graph.Triple) bool) {
	enc := func(t term.Term) (ID, bool) {
		if t.IsZero() {
			return Wildcard, true
		}
		return s.dict.Lookup(t)
	}
	sp, ok1 := enc(sub)
	pp, ok2 := enc(pred)
	op, ok3 := enc(obj)
	if !ok1 || !ok2 || !ok3 {
		return
	}
	terms := s.dict.Terms()
	s.Match(sp, pp, op, func(t Triple3) bool {
		return fn(graph.T(terms[t[0]-1], terms[t[1]-1], terms[t[2]-1]))
	})
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sp, pp, op ID) int {
	n := 0
	s.Match(sp, pp, op, func(Triple3) bool { n++; return true })
	return n
}

// FromGraph loads every triple of g, sharing g's dictionary so that no
// term is re-interned.
func FromGraph(g *graph.Graph) *Store {
	s := NewShared(g.Dict())
	g.EachID(func(t Triple3) bool {
		s.addEncoded(t)
		return true
	})
	return s
}

// ToGraph materializes the store contents as a graph sharing the
// store's dictionary.
func (s *Store) ToGraph() *graph.Graph {
	g := graph.NewWithDict(s.dict)
	for enc := range s.present {
		g.AddID(enc)
	}
	return g
}

// PredicateStats returns the triple count per predicate ID; the matcher
// uses it for selectivity estimates.
func (s *Store) PredicateStats() map[ID]int {
	stats := make(map[ID]int)
	for enc := range s.present {
		stats[enc[1]]++
	}
	return stats
}
