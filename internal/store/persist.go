package store

import (
	"bufio"
	"fmt"
	"io"

	"semwebdb/internal/ntriples"
)

// WriteTo serializes the store contents as canonical N-Triples. It
// implements a store-level dump without materializing an intermediate
// graph beyond the canonical sort.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := ntriples.Serialize(cw, s.ToGraph()); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// LoadNTriples bulk-loads N-Triples into the store, streaming line by line
// (the document never needs to fit in memory as a graph). It returns the
// number of triples added (duplicates and comment lines excluded).
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	added, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		t, ok, err := ntriples.ParseLine(sc.Text(), lineNo)
		if err != nil {
			return added, err
		}
		if ok && s.Add(t) {
			added++
		}
	}
	if err := sc.Err(); err != nil {
		return added, fmt.Errorf("store: read: %w", err)
	}
	return added, nil
}
