package store

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }

func tr(s, p, o string) graph.Triple {
	return graph.T(iri(s), iri(p), iri(o))
}

func TestInternStableIDs(t *testing.T) {
	s := New()
	a := s.Intern(iri("a"))
	b := s.Intern(iri("b"))
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if s.Intern(iri("a")) != a {
		t.Fatal("re-interning changed the ID")
	}
	if s.TermOf(a) != iri("a") {
		t.Fatal("TermOf broken")
	}
	if _, ok := s.Lookup(iri("zzz")); ok {
		t.Fatal("lookup of unknown term succeeded")
	}
	if s.DictSize() != 2 {
		t.Fatalf("dict size = %d, want 2", s.DictSize())
	}
}

func TestAddHasRemove(t *testing.T) {
	s := New()
	if !s.Add(tr("a", "p", "b")) {
		t.Fatal("first add")
	}
	if s.Add(tr("a", "p", "b")) {
		t.Fatal("duplicate add")
	}
	if !s.Has(tr("a", "p", "b")) || s.Len() != 1 {
		t.Fatal("membership")
	}
	if s.Has(tr("a", "p", "zzz")) {
		t.Fatal("phantom membership")
	}
	if !s.Remove(tr("a", "p", "b")) || s.Remove(tr("a", "p", "b")) {
		t.Fatal("remove semantics")
	}
	if s.Len() != 0 {
		t.Fatal("not empty after remove")
	}
}

func TestAddRejectsIllFormed(t *testing.T) {
	s := New()
	if s.Add(graph.Triple{S: term.NewLiteral("l"), P: iri("p"), O: iri("b")}) {
		t.Fatal("literal subject accepted")
	}
	if s.Len() != 0 {
		t.Fatal("stored ill-formed triple")
	}
}

func TestMatchPatterns(t *testing.T) {
	s := New()
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			s.Add(tr(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", j), fmt.Sprintf("o%d", (i+j)%2)))
		}
	}
	countT := func(sub, pred, obj term.Term) int {
		n := 0
		s.MatchTerms(sub, pred, obj, func(graph.Triple) bool { n++; return true })
		return n
	}
	if got := countT(term.Term{}, term.Term{}, term.Term{}); got != 12 {
		t.Fatalf("full scan = %d, want 12", got)
	}
	if got := countT(iri("s0"), term.Term{}, term.Term{}); got != 3 {
		t.Fatalf("S-bound = %d, want 3", got)
	}
	if got := countT(term.Term{}, iri("p1"), term.Term{}); got != 4 {
		t.Fatalf("P-bound = %d, want 4", got)
	}
	if got := countT(term.Term{}, term.Term{}, iri("o0")); got != 6 {
		t.Fatalf("O-bound = %d, want 6", got)
	}
	if got := countT(iri("s0"), iri("p0"), term.Term{}); got != 1 {
		t.Fatalf("SP-bound = %d, want 1", got)
	}
	if got := countT(iri("s0"), iri("p0"), iri("o0")); got != 1 {
		t.Fatalf("SPO-bound = %d, want 1", got)
	}
	if got := countT(iri("nope"), term.Term{}, term.Term{}); got != 0 {
		t.Fatalf("unknown term = %d, want 0", got)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	n := 0
	s.MatchTerms(term.Term{}, iri("p"), term.Term{}, func(graph.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestOrdersAgree(t *testing.T) {
	// All index configurations must produce identical match results.
	rng := rand.New(rand.NewSource(9))
	full := New()
	spoOnly := NewWithOrders(SPO)
	spoPos := NewWithOrders(SPO, POS)
	var triples []graph.Triple
	for k := 0; k < 200; k++ {
		t3 := tr(
			fmt.Sprintf("s%d", rng.Intn(20)),
			fmt.Sprintf("p%d", rng.Intn(5)),
			fmt.Sprintf("o%d", rng.Intn(10)),
		)
		triples = append(triples, t3)
		full.Add(t3)
		spoOnly.Add(t3)
		spoPos.Add(t3)
	}
	patterns := [][3]term.Term{
		{{}, {}, {}},
		{iri("s3"), {}, {}},
		{{}, iri("p2"), {}},
		{{}, {}, iri("o7")},
		{iri("s3"), iri("p2"), {}},
		{{}, iri("p2"), iri("o7")},
		{iri("s3"), {}, iri("o7")},
		{iri("s3"), iri("p2"), iri("o7")},
	}
	count := func(s *Store, p [3]term.Term) int {
		n := 0
		s.MatchTerms(p[0], p[1], p[2], func(graph.Triple) bool { n++; return true })
		return n
	}
	for _, p := range patterns {
		a, b, c := count(full, p), count(spoOnly, p), count(spoPos, p)
		if a != b || b != c {
			t.Fatalf("pattern %v: counts differ full=%d spo=%d spo+pos=%d", p, a, b, c)
		}
	}
}

func TestRemoveThenMatch(t *testing.T) {
	s := New()
	s.Add(tr("a", "p", "b"))
	s.Add(tr("a", "p", "c"))
	s.Remove(tr("a", "p", "b"))
	n := 0
	s.MatchTerms(iri("a"), iri("p"), term.Term{}, func(tt graph.Triple) bool {
		n++
		if tt.O != iri("c") {
			t.Errorf("stale triple matched: %v", tt)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("matched %d, want 1", n)
	}
}

func TestGraphRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		for k := 0; k < rng.Intn(50); k++ {
			g.Add(tr(
				fmt.Sprintf("s%d", rng.Intn(10)),
				fmt.Sprintf("p%d", rng.Intn(4)),
				fmt.Sprintf("o%d", rng.Intn(10)),
			))
		}
		s := FromGraph(g)
		return s.ToGraph().Equal(g) && s.Len() == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateStats(t *testing.T) {
	s := New()
	s.Add(tr("a", "p", "b"))
	s.Add(tr("c", "p", "d"))
	s.Add(tr("a", "q", "b"))
	stats := s.PredicateStats()
	p, _ := s.Lookup(iri("p"))
	q, _ := s.Lookup(iri("q"))
	if stats[p] != 2 || stats[q] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestCount(t *testing.T) {
	s := New()
	s.Add(tr("a", "p", "b"))
	s.Add(tr("a", "p", "c"))
	a, _ := s.Lookup(iri("a"))
	p, _ := s.Lookup(iri("p"))
	if got := s.Count(a, p, Wildcard); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestBlanksAndLiteralsInStore(t *testing.T) {
	s := New()
	lit := term.NewLangLiteral("hello", "en")
	s.Add(graph.T(term.NewBlank("x"), iri("p"), lit))
	if !s.Has(graph.T(term.NewBlank("x"), iri("p"), lit)) {
		t.Fatal("blank/literal triple lost")
	}
	g := s.ToGraph()
	if g.Len() != 1 || len(g.BlankNodes()) != 1 {
		t.Fatal("round trip lost structure")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	s := New()
	s.Add(tr("a", "p", "b"))
	s.Add(graph.T(term.NewBlank("x"), iri("p"), term.NewLangLiteral("hi", "en")))
	var buf strings.Builder
	n, err := s.WriteTo(&buf)
	if err != nil || n == 0 {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
	s2 := New()
	added, err := s2.LoadNTriples(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || !s2.ToGraph().Equal(s.ToGraph()) {
		t.Fatalf("round trip lost data: added=%d", added)
	}
	// Re-loading is idempotent: duplicates are not re-added.
	again, err := s2.LoadNTriples(strings.NewReader(buf.String()))
	if err != nil || again != 0 {
		t.Fatalf("duplicate load: added=%d err=%v", again, err)
	}
}

func TestReadFromRejectsMalformed(t *testing.T) {
	s := New()
	if _, err := s.LoadNTriples(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("malformed input accepted")
	}
	// Comments and blank lines are skipped silently.
	added, err := s.LoadNTriples(strings.NewReader("# comment\n\n<urn:a> <urn:p> <urn:b> .\n"))
	if err != nil || added != 1 {
		t.Fatalf("added=%d err=%v", added, err)
	}
}
