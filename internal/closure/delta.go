// This file implements incremental (delta) maintenance of the RDFS
// closure: given an already-saturated base and a batch of inserted
// triples, compute RDFS-cl(base ∪ batch) by semi-naive rounds in which
// at least one premise of every rule firing comes from the delta —
// never by re-saturating the base. The public entry points are the
// one-shot DeltaRDFSCl / DeltaCl families and the reusable Maintainer.
//
// Correctness rests on the base being a fixpoint of rules (2)–(13):
// rule instantiations whose premises all lie in the base conclude only
// triples the base already has, so seeding the base into the engine's
// indexes and dedup set *without queueing it* loses nothing — every
// instantiation with a delta premise still fires when that premise is
// processed against the (always up-to-date) indexes, which is the same
// exactly-once coverage argument as full saturation. The rule (9)
// vocabulary loops (p, sp, p) for p ∈ rdfsV are in every saturated
// base already, so they need no re-bootstrapping.
//
// For cl (Definition 3.5) the fallback identity is that cl is a
// closure operator — monotone and idempotent — hence
// cl(cl(D) ∪ A) = cl(D ∪ A): whenever delta maintenance is unsound
// (blank nodes make skolemization interact with the base), a full
// saturation of the union gives the same answer.

package closure

import (
	"context"
	"fmt"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
)

// Maintainer incrementally maintains the RDFS closure of a growing
// triple set. It is built once from a saturated base — one O(|base|)
// indexing pass, with no rule firings — and then folds successive
// insertion batches in via Apply, each costing work proportional to
// the batch and its consequences rather than to the whole closure.
//
// The maintainer owns private engine state (its own dedup graph and
// rule indexes over the base's dictionary); it never mutates the base
// graph it was seeded from. It is not safe for concurrent use —
// callers serialize Apply — and after an Apply aborts mid-batch
// (context cancellation) the maintainer is poisoned: its internal
// state holds a half-applied batch, so every later Apply fails and the
// caller must fall back to a full saturation.
type Maintainer struct {
	e   *engine
	err error // poisoned: an Apply aborted with this error
}

// NewMaintainer builds a maintainer over base, which must be
// RDFS-closed (a fixpoint of rules (2)–(13), e.g. any RDFSCl /
// RDFSClWorkers result). Feeding a non-closed base yields the closure
// of nothing in particular; it is the caller's contract, not checked.
func NewMaintainer(base *graph.Graph) *Maintainer {
	e := newEngine(base.Dict())
	base.EachID(func(t dict.Triple3) bool {
		e.seed(t)
		return true
	})
	e.journaling = true
	return &Maintainer{e: e}
}

// Len returns the current closure size |cl| the maintainer tracks.
func (m *Maintainer) Len() int { return m.e.out.Len() }

// Apply folds a batch of inserted triples (encoded against the base's
// dictionary) into the maintained closure and returns the triples that
// are genuinely new — the batch members not already present plus
// everything the rules derive from them. The returned slice is owned
// by the caller and is disjoint from the pre-Apply closure, which
// makes it directly usable with graph.ExtendedByIDs.
func (m *Maintainer) Apply(ctx context.Context, batch []dict.Triple3) ([]dict.Triple3, error) {
	if m.err != nil {
		return nil, m.err
	}
	t0 := time.Now()
	e := m.e
	e.journal = e.journal[:0]
	for _, t := range batch {
		e.add(t)
	}
	if err := e.run(ctx); err != nil {
		m.err = fmt.Errorf("closure: delta maintenance aborted, maintainer unusable: %w", err)
		return nil, err
	}
	satDeltaSeq.Inc()
	satSecondsDelta.ObserveSince(t0)
	out := make([]dict.Triple3, len(e.journal))
	copy(out, e.journal)
	return out, nil
}

// DeltaRDFSCl returns RDFS-cl(base ∪ batch) for an already
// RDFS-closed base, doing delta work only: the base is indexed but
// never re-fired. Neither input graph is modified; the result shares
// base's dictionary, and sorted permutations already built on base are
// extended by merging the delta run rather than re-sorting
// (graph.ExtendedByIDs).
func DeltaRDFSCl(base, batch *graph.Graph) *graph.Graph {
	out, _ := DeltaRDFSClCtx(context.Background(), base, batch)
	return out
}

// DeltaRDFSClCtx is DeltaRDFSCl under a context (see RDFSClCtx).
func DeltaRDFSClCtx(ctx context.Context, base, batch *graph.Graph) (*graph.Graph, error) {
	m := NewMaintainer(base)
	added, err := m.Apply(ctx, batchIDs(base, batch))
	if err != nil {
		return nil, err
	}
	return base.ExtendedByIDs(added), nil
}

// DeltaRDFSClWorkers is DeltaRDFSClCtx with an explicit parallelism
// degree: workers ≤ 1 (or a small base) runs the sequential delta
// engine, larger values seed the sharded parallel engine from the base
// and run fire→merge→index rounds over the batch only. Both paths
// compute the same closure.
func DeltaRDFSClWorkers(ctx context.Context, base, batch *graph.Graph, workers int) (*graph.Graph, error) {
	nw := normWorkers(workers)
	if nw == 1 || base.Len()+batch.Len() < minParallelTriples {
		return DeltaRDFSClCtx(ctx, base, batch)
	}
	return parDeltaRDFSCl(ctx, base, batch, nw)
}

// DeltaCl returns cl(base ∪ batch) for base = cl(D) of some graph D.
// When both base and batch are ground — the common shape of loaded
// databases — this is pure delta work; with blank nodes in play the
// skolemization step of Definition 3.5 makes in-place maintenance
// unsound, and the computation falls back to a full saturation of the
// union, which is equal by the closure-operator identity
// cl(cl(D) ∪ A) = cl(D ∪ A).
func DeltaCl(base, batch *graph.Graph) *graph.Graph {
	out, _ := DeltaClCtx(context.Background(), base, batch)
	return out
}

// DeltaClCtx is DeltaCl under a context.
func DeltaClCtx(ctx context.Context, base, batch *graph.Graph) (*graph.Graph, error) {
	return DeltaClWorkers(ctx, base, batch, 1)
}

// DeltaClWorkers is DeltaClCtx with an explicit parallelism degree
// (see RDFSClWorkers).
func DeltaClWorkers(ctx context.Context, base, batch *graph.Graph, workers int) (*graph.Graph, error) {
	if base.IsGround() && batch.IsGround() {
		return DeltaRDFSClWorkers(ctx, base, batch, workers)
	}
	return ClWorkers(ctx, graph.Union(base, batch), workers)
}

// parDeltaRDFSCl runs the sharded engine seeded from a saturated base:
// every base triple is admitted into the dedup and rule-index shards
// without being queued, then the batch bootstraps round zero and the
// usual fire→merge→index rounds run to the fixpoint — each round's
// delta journaled. Tests call this directly to cover bases below the
// parallel cutoff.
func parDeltaRDFSCl(ctx context.Context, base, batch *graph.Graph, nw int) (*graph.Graph, error) {
	t0 := time.Now()
	pe := newParEngineShell(base.Dict(), nw)
	// Each shard owner scans the base once and keeps what it owns:
	// concurrent read-only iteration of the base set is safe, and no
	// cross-shard writes occur.
	parallelDo(nw, func(i int) {
		base.EachID(func(t dict.Triple3) bool {
			if pe.dedupShardOf(t) == i {
				pe.seen[i][t] = struct{}{}
			}
			if pe.predShardOf(t[1]) == i {
				pe.indexInto(&pe.shards[i], t)
			}
			return true
		})
	})
	pe.journaling = true
	for _, t := range batchIDs(base, batch) {
		pe.bootstrap(t)
	}
	if err := pe.run(ctx); err != nil {
		return nil, err
	}
	satDeltaPar.Inc()
	satSecondsDelta.ObserveSince(t0)
	return base.ExtendedByIDs(pe.journal), nil
}

// batchIDs encodes the batch against base's dictionary. A batch
// already sharing it is collected as-is; otherwise every term is
// re-interned once.
func batchIDs(base, batch *graph.Graph) []dict.Triple3 {
	out := make([]dict.Triple3, 0, batch.Len())
	if batch.Dict() == base.Dict() {
		batch.EachID(func(t dict.Triple3) bool {
			out = append(out, t)
			return true
		})
		return out
	}
	d := base.Dict()
	batch.Each(func(t graph.Triple) bool {
		out = append(out, dict.Triple3{d.Intern(t.S), d.Intern(t.P), d.Intern(t.O)})
		return true
	})
	return out
}
