package closure

import (
	"math/rand"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func randClosureGraph(rng *rand.Rand, n int) *graph.Graph {
	names := []term.Term{iri("a"), iri("b"), iri("c"), blk("x"), blk("y")}
	preds := []term.Term{
		iri("p"), iri("q"), rdfs.SubClassOf, rdfs.SubPropertyOf,
		rdfs.Type, rdfs.Domain, rdfs.Range,
	}
	g := graph.New()
	for k := 0; k < n; k++ {
		g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
	}
	return g
}

func TestClosureMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		h := g.Clone()
		h.Add(graph.T(iri("extra"), iri("p"), iri("extra2")))
		clG, clH := RDFSCl(g), RDFSCl(h)
		if !clG.SubgraphOf(clH) {
			t.Fatalf("round %d: closure not monotone:\nG:\n%v\nonly in cl(G): %v",
				round, g, clG.Minus(clH))
		}
	}
}

func TestClosureUnionSuperset(t *testing.T) {
	// cl(G1 ∪ G2) ⊇ cl(G1) ∪ cl(G2); equality can fail (cross rules).
	rng := rand.New(rand.NewSource(53))
	for round := 0; round < 30; round++ {
		g1 := randClosureGraph(rng, 4)
		g2 := randClosureGraph(rng, 4)
		u := RDFSCl(graph.Union(g1, g2))
		if !RDFSCl(g1).SubgraphOf(u) || !RDFSCl(g2).SubgraphOf(u) {
			t.Fatalf("round %d: closure of union misses operand closure", round)
		}
	}
}

func TestClosureInflationary(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		if !g.SubgraphOf(RDFSCl(g)) {
			t.Fatalf("round %d: closure dropped input triples", round)
		}
	}
}

func TestClosureIdempotentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for round := 0; round < 25; round++ {
		g := randClosureGraph(rng, 6)
		c1 := RDFSCl(g)
		if !RDFSCl(c1).Equal(c1) {
			t.Fatalf("round %d: closure not idempotent on\n%v", round, g)
		}
	}
}

func TestClosureCommutesWithSkolemization(t *testing.T) {
	// Lemma 3.4 in property form: RDFS-cl(G) = (RDFS-cl(G*))⋆.
	rng := rand.New(rand.NewSource(59))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		direct := RDFSCl(g)
		viaSkolem := graph.Unskolemize(RDFSCl(graph.Skolemize(g)))
		if !direct.Equal(viaSkolem) {
			t.Fatalf("round %d: Lemma 3.4 violated on\n%v\nonly-direct: %v\nonly-skolem: %v",
				round, g, direct.Minus(viaSkolem), viaSkolem.Minus(direct))
		}
	}
}

func TestMembershipNeverFalseNegativeOnInput(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		mem := NewMembership(g)
		g.Each(func(tr graph.Triple) bool {
			if !mem.Contains(tr) {
				t.Fatalf("round %d: input triple %v not in its own closure", round, tr)
			}
			return true
		})
	}
}

func TestClosureWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 7)
		RDFSCl(g).Each(func(tr graph.Triple) bool {
			if !tr.WellFormed() {
				t.Fatalf("round %d: ill-formed closure triple %v", round, tr)
			}
			return true
		})
	}
}
