package closure

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func randClosureGraph(rng *rand.Rand, n int) *graph.Graph {
	names := []term.Term{iri("a"), iri("b"), iri("c"), blk("x"), blk("y")}
	preds := []term.Term{
		iri("p"), iri("q"), rdfs.SubClassOf, rdfs.SubPropertyOf,
		rdfs.Type, rdfs.Domain, rdfs.Range,
	}
	g := graph.New()
	for k := 0; k < n; k++ {
		g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
	}
	return g
}

func TestClosureMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		h := g.Clone()
		h.Add(graph.T(iri("extra"), iri("p"), iri("extra2")))
		clG, clH := RDFSCl(g), RDFSCl(h)
		if !clG.SubgraphOf(clH) {
			t.Fatalf("round %d: closure not monotone:\nG:\n%v\nonly in cl(G): %v",
				round, g, clG.Minus(clH))
		}
	}
}

func TestClosureUnionSuperset(t *testing.T) {
	// cl(G1 ∪ G2) ⊇ cl(G1) ∪ cl(G2); equality can fail (cross rules).
	rng := rand.New(rand.NewSource(53))
	for round := 0; round < 30; round++ {
		g1 := randClosureGraph(rng, 4)
		g2 := randClosureGraph(rng, 4)
		u := RDFSCl(graph.Union(g1, g2))
		if !RDFSCl(g1).SubgraphOf(u) || !RDFSCl(g2).SubgraphOf(u) {
			t.Fatalf("round %d: closure of union misses operand closure", round)
		}
	}
}

func TestClosureInflationary(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		if !g.SubgraphOf(RDFSCl(g)) {
			t.Fatalf("round %d: closure dropped input triples", round)
		}
	}
}

func TestClosureIdempotentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for round := 0; round < 25; round++ {
		g := randClosureGraph(rng, 6)
		c1 := RDFSCl(g)
		if !RDFSCl(c1).Equal(c1) {
			t.Fatalf("round %d: closure not idempotent on\n%v", round, g)
		}
	}
}

func TestClosureCommutesWithSkolemization(t *testing.T) {
	// Lemma 3.4 in property form: RDFS-cl(G) = (RDFS-cl(G*))⋆.
	rng := rand.New(rand.NewSource(59))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		direct := RDFSCl(g)
		viaSkolem := graph.Unskolemize(RDFSCl(graph.Skolemize(g)))
		if !direct.Equal(viaSkolem) {
			t.Fatalf("round %d: Lemma 3.4 violated on\n%v\nonly-direct: %v\nonly-skolem: %v",
				round, g, direct.Minus(viaSkolem), viaSkolem.Minus(direct))
		}
	}
}

func TestMembershipNeverFalseNegativeOnInput(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 6)
		mem := NewMembership(g)
		g.Each(func(tr graph.Triple) bool {
			if !mem.Contains(tr) {
				t.Fatalf("round %d: input triple %v not in its own closure", round, tr)
			}
			return true
		})
	}
}

func TestClosureWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 7)
		RDFSCl(g).Each(func(tr graph.Triple) bool {
			if !tr.WellFormed() {
				t.Fatalf("round %d: ill-formed closure triple %v", round, tr)
			}
			return true
		})
	}
}

// TestParallelClosureEquivalence is the core acceptance property: the
// sharded engine computes bit-identical triple sets to the sequential
// engine (and to the naive baseline's fixpoint, transitively via
// TestSemiNaiveEqualsNaiveRandom) for worker counts 1, 2 and 8, on
// random graphs both inside and outside the well-behaved class.
func TestParallelClosureEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for round := 0; round < 60; round++ {
		var g *graph.Graph
		if round%2 == 0 {
			g = randClosureGraph(rng, 3+rng.Intn(10))
		} else {
			g = randVocabAsDataGraph(rng, 3+rng.Intn(10))
		}
		want := RDFSCl(g)
		for _, nw := range workerCounts {
			got, err := parRDFSCl(context.Background(), g, nw)
			if err != nil {
				t.Fatalf("round %d w%d: %v", round, nw, err)
			}
			if !got.Equal(want) {
				t.Fatalf("round %d w%d: parallel closure differs on\n%v\nonly-seq: %v\nonly-par: %v",
					round, nw, g, want.Minus(got), got.Minus(want))
			}
		}
	}
}

// TestParallelMembershipAnswers asserts Membership gives identical
// answers for every worker count, on both the reachability fast path
// and the materialized fallback.
func TestParallelMembershipAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	probes := func(g *graph.Graph) []graph.Triple {
		// Probe everything in the closure plus some misses.
		out := RDFSCl(g).Triples()
		out = append(out,
			graph.T(iri("zz"), iri("p"), iri("zz")),
			graph.T(iri("a"), rdfs.SubClassOf, iri("zz")),
			graph.T(iri("a"), rdfs.Type, iri("zz")))
		return out
	}
	for round := 0; round < 20; round++ {
		fastG := randClosureGraph(rng, 6)
		slowG := randVocabAsDataGraph(rng, 6)
		for _, g := range []*graph.Graph{fastG, slowG} {
			base := NewMembership(g)
			ms := []*Membership{base}
			for _, nw := range []int{2, 8} {
				ms = append(ms, NewMembershipWorkers(g, nw))
			}
			for _, tr := range probes(g) {
				want := base.Contains(tr)
				for i, m := range ms[1:] {
					if got := m.Contains(tr); got != want {
						t.Fatalf("round %d: Membership(w=%d).Contains(%v) = %v, want %v (fast=%v)",
							round, []int{2, 8}[i], tr, got, want, m.Fast())
					}
				}
			}
		}
	}
}

// TestParallelClosureCancellation: a dead context fails immediately for
// every worker count; a context cancelled mid-saturation aborts the
// parallel engine with its error (never a partial graph).
func TestParallelClosureCancellation(t *testing.T) {
	g := scChain(220)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for _, nw := range workerCounts {
		if out, err := RDFSClWorkers(dead, g, nw); err == nil || out != nil {
			t.Fatalf("w%d: want error on dead context, got graph=%v err=%v", nw, out != nil, err)
		}
		if out, err := parRDFSCl(dead, g, max(nw, 2)); err == nil || out != nil {
			t.Fatalf("parRDFSCl w%d: want error on dead context, got graph=%v err=%v", nw, out != nil, err)
		}
	}

	// Mid-run cancellation: either the engine finished first (and must
	// be exactly right) or it must surface ctx's error with no graph.
	want := RDFSCl(g)
	for trial := 0; trial < 6; trial++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(trial)*200*time.Microsecond)
		out, err := parRDFSCl(ctx, g, 8)
		cancel()
		switch {
		case err != nil:
			if out != nil {
				t.Fatalf("trial %d: error %v returned together with a graph", trial, err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
		case !out.Equal(want):
			t.Fatalf("trial %d: uncancelled run produced a wrong closure", trial)
		}
	}
}
