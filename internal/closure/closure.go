// Package closure implements the maximal representations of Section 3.1
// of the paper: the closure RDFS-cl(G) of Definition 2.7 (the saturation
// of G under rules (2)–(13)), the semantic closure cl(G) of Definition
// 3.5 computed through skolemization (Lemma 3.4), and the
// membership-without-materialization test of Theorem 3.6(4).
package closure

import (
	"context"
	"math/rand"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// RDFSCl returns RDFS-cl(G): the set of triples deducible from G using
// rules (2)–(13) (Definition 2.7). The input graph is not modified; the
// result shares its dictionary.
//
// The computation is a semi-naive (delta-driven) fixpoint over interned
// term IDs: every triple is processed exactly once, joining against
// incrementally maintained ID-keyed indexes, so no rule instantiation is
// re-derived from scratch per round and no string is compared anywhere.
// NaiveRDFSCl is the round-based baseline (ablation A2).
func RDFSCl(g *graph.Graph) *graph.Graph {
	out, _ := RDFSClCtx(context.Background(), g)
	return out
}

// RDFSClCtx is RDFSCl under a context: the saturation loop polls ctx
// periodically and aborts with its error when it is cancelled, so
// closures of large graphs are interruptible.
func RDFSClCtx(ctx context.Context, g *graph.Graph) (*graph.Graph, error) {
	return rdfsClSequential(ctx, g, lifoOrder, nil)
}

// rdfsClSequential runs the single-threaded semi-naive engine with an
// explicit queue drain order (tests use FIFO/shuffled to assert the
// result is order-independent).
func rdfsClSequential(ctx context.Context, g *graph.Graph, order queueOrder, rng *rand.Rand) (*graph.Graph, error) {
	t0 := time.Now()
	e := newEngine(g.Dict())
	e.order, e.shuffleRng = order, rng
	g.EachID(func(t dict.Triple3) bool {
		e.add(t)
		return true
	})
	// Rule (9): (p, sp, p) for every p ∈ rdfsV, unconditionally.
	for _, p := range rdfs.Vocabulary() {
		pid := e.d.Intern(p)
		e.add(dict.Triple3{pid, e.sp, pid})
	}
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	satFullSeq.Inc()
	satSecondsFull.ObserveSince(t0)
	return e.out, nil
}

// Cl returns cl(G) following Definition 3.5 literally: skolemize G to the
// ground graph G*, close it, and unskolemize the result (dropping triples
// that become ill-formed). By Lemma 3.4 and Theorem 3.6(2) this coincides
// with RDFSCl; the two code paths are property-tested against each other.
func Cl(g *graph.Graph) *graph.Graph {
	out, _ := ClCtx(context.Background(), g)
	return out
}

// ClCtx is Cl under a context (see RDFSClCtx).
func ClCtx(ctx context.Context, g *graph.Graph) (*graph.Graph, error) {
	closed, err := RDFSClCtx(ctx, graph.Skolemize(g))
	if err != nil {
		return nil, err
	}
	return graph.Unskolemize(closed), nil
}

// NaiveRDFSCl computes the closure by repeatedly enumerating every rule
// instantiation until no new triple appears. It is the ablation baseline
// (A2) and the executable transcription of Definition 2.7.
func NaiveRDFSCl(g *graph.Graph) *graph.Graph {
	out := g.Clone()
	for _, p := range rdfs.Vocabulary() {
		out.Add(graph.T(p, rdfs.SubPropertyOf, p))
	}
	for {
		added := false
		for _, inst := range rdfs.AllInstantiations(out) {
			for _, c := range inst.Conclusions {
				if out.Add(c) {
					added = true
				}
			}
		}
		if !added {
			return out
		}
	}
}

// queueOrder selects the order in which the engine drains its work
// queue. The order is an implementation detail: the closure is the
// unique fixpoint of a monotone rule set, so every drain order produces
// the same triple set (TestClosureOrderIndependent asserts this). LIFO
// is the default purely for locality — freshly derived triples tend to
// join against indexes still hot in cache.
type queueOrder int

const (
	lifoOrder queueOrder = iota
	fifoOrder
	shuffledOrder
)

// engine is the semi-naive saturation state, entirely ID-encoded.
type engine struct {
	d   *dict.Dict
	out *graph.Graph

	queue      []dict.Triple3
	order      queueOrder
	shuffleRng *rand.Rand // drives shuffledOrder pops (tests only)

	// Interned rdfsV constants.
	sp, sc, typ, dom, rng dict.ID

	spOut map[dict.ID]map[dict.ID]struct{} // a -> {b : (a,sp,b)}
	spIn  map[dict.ID]map[dict.ID]struct{}
	scOut map[dict.ID]map[dict.ID]struct{}
	scIn  map[dict.ID]map[dict.ID]struct{}

	domOf   map[dict.ID][]dict.ID // A -> {B : (A,dom,B)}
	rangeOf map[dict.ID][]dict.ID

	byPred    map[dict.ID][]dict.Triple3 // predicate -> triples
	typeByObj map[dict.ID][]dict.ID      // class -> {x : (x,type,class)}

	// journaling makes add record every admitted triple in journal —
	// the delta engine's channel for reporting exactly which triples a
	// maintenance round added on top of the seeded base (delta.go).
	journaling bool
	journal    []dict.Triple3

	// Local metric tallies: plain fields, flushed to the process-global
	// counters once per run (metrics.go), never atomics per firing.
	fired   uint64 // add calls — conclusions emitted, duplicates included
	derived uint64 // add admissions — novel triples entering the closure
}

func newEngine(d *dict.Dict) *engine {
	e := &engine{
		d:         d,
		out:       graph.NewWithDict(d),
		sp:        d.Intern(rdfs.SubPropertyOf),
		sc:        d.Intern(rdfs.SubClassOf),
		typ:       d.Intern(rdfs.Type),
		dom:       d.Intern(rdfs.Domain),
		rng:       d.Intern(rdfs.Range),
		spOut:     make(map[dict.ID]map[dict.ID]struct{}),
		spIn:      make(map[dict.ID]map[dict.ID]struct{}),
		scOut:     make(map[dict.ID]map[dict.ID]struct{}),
		scIn:      make(map[dict.ID]map[dict.ID]struct{}),
		domOf:     make(map[dict.ID][]dict.ID),
		rangeOf:   make(map[dict.ID][]dict.ID),
		byPred:    make(map[dict.ID][]dict.Triple3),
		typeByObj: make(map[dict.ID][]dict.ID),
	}
	return e
}

// canPredicate reports whether the term may occupy predicate position.
// Kinds are resolved through the dictionary directly (one lock-free
// load), which keeps saturation over scratch-overlay dictionaries —
// the premise-evaluation and prepared-universe paths — from ever
// flattening the overlay into a kinds snapshot.
func (e *engine) canPredicate(id dict.ID) bool { return e.d.KindOf(id) == term.KindIRI }

func addEdge(m map[dict.ID]map[dict.ID]struct{}, a, b dict.ID) {
	s, ok := m[a]
	if !ok {
		s = make(map[dict.ID]struct{})
		m[a] = s
	}
	s[b] = struct{}{}
}

// add inserts a triple (if well-formed and new — AddID checks both),
// updates the indexes and enqueues it for processing.
func (e *engine) add(t dict.Triple3) {
	e.fired++
	if !e.out.AddID(t) {
		return
	}
	e.derived++
	if e.journaling {
		e.journal = append(e.journal, t)
	}
	e.indexTriple(t)
	e.queue = append(e.queue, t)
}

// seed admits a triple of an already-saturated base: it is deduped,
// validated and indexed like any other, but not queued — firings among
// base triples alone derive nothing new (the base is a fixpoint), so
// only delta triples need processing. Every rule instantiation with at
// least one delta premise still fires, because indexes are consulted
// when the delta premise is processed.
func (e *engine) seed(t dict.Triple3) {
	if !e.out.AddID(t) {
		return
	}
	e.indexTriple(t)
}

// indexTriple folds a triple into the rule-firing indexes.
func (e *engine) indexTriple(t dict.Triple3) {
	e.byPred[t[1]] = append(e.byPred[t[1]], t)
	switch t[1] {
	case e.sp:
		addEdge(e.spOut, t[0], t[2])
		addEdge(e.spIn, t[2], t[0])
	case e.sc:
		addEdge(e.scOut, t[0], t[2])
		addEdge(e.scIn, t[2], t[0])
	case e.dom:
		e.domOf[t[0]] = append(e.domOf[t[0]], t[2])
	case e.rng:
		e.rangeOf[t[0]] = append(e.rangeOf[t[0]], t[2])
	case e.typ:
		e.typeByObj[t[2]] = append(e.typeByObj[t[2]], t[0])
	}
}

func (e *engine) run(ctx context.Context) error {
	defer e.flushMetrics()
	done := ctx.Done()
	for n := 0; len(e.queue) > 0; n++ {
		if done != nil && n&0x3ff == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		e.process(e.pop())
	}
	return nil
}

// flushMetrics publishes the tallies accumulated since the previous
// flush and zeroes them; a Maintainer-held engine runs many times, so
// each run contributes exactly its own delta.
func (e *engine) flushMetrics() {
	ruleFirings.Add(e.fired)
	triplesDerived.Add(e.derived)
	e.fired, e.derived = 0, 0
}

// pop removes and returns the next queued triple according to the
// engine's queue order (LIFO unless a test selected another order).
func (e *engine) pop() dict.Triple3 {
	switch e.order {
	case fifoOrder:
		t := e.queue[0]
		e.queue = e.queue[1:]
		return t
	case shuffledOrder:
		i := e.shuffleRng.Intn(len(e.queue))
		last := len(e.queue) - 1
		e.queue[i], e.queue[last] = e.queue[last], e.queue[i]
		t := e.queue[last]
		e.queue = e.queue[:last]
		return t
	default:
		t := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		return t
	}
}

// process fires every rule that has t as one of its antecedents, joining
// against the current indexes. Because indexes are updated at add time,
// each antecedent pair/triple is joined when its last member is
// processed, which covers all instantiations exactly once.
func (e *engine) process(t dict.Triple3) {
	s, p, o := t[0], t[1], t[2]
	// Rules that see t as a generic triple (X, A, Y).
	// Rule (8): (X,A,Y) ⊢ (A,sp,A).
	e.add(dict.Triple3{p, e.sp, p})
	// Rule (3): (A,sp,B), (X,A,Y) ⊢ (X,B,Y), for the new (X,A,Y) = t.
	for b := range e.spOut[p] {
		if e.canPredicate(b) {
			e.add(dict.Triple3{s, b, o})
		}
	}
	// Rules (6)/(7) with t as the body triple (X,C,Y): C sp A (or C = A,
	// whose reflexive sp loop is handled when (C,sp,C) is processed).
	for a := range e.spOut[p] {
		for _, b := range e.domOf[a] {
			e.add(dict.Triple3{s, e.typ, b})
		}
		for _, b := range e.rangeOf[a] {
			e.add(dict.Triple3{o, e.typ, b})
		}
	}

	switch p {
	case e.sp:
		a, b := s, o
		// Rule (2): transitivity, joining on both sides.
		for c := range e.spOut[b] {
			e.add(dict.Triple3{a, e.sp, c})
		}
		for z := range e.spIn[a] {
			e.add(dict.Triple3{z, e.sp, b})
		}
		// Rule (11): reflexivity of both endpoints.
		e.add(dict.Triple3{a, e.sp, a})
		e.add(dict.Triple3{b, e.sp, b})
		// Rule (3) with t as the (A,sp,B) antecedent.
		if e.canPredicate(b) {
			for _, body := range e.byPred[a] {
				e.add(dict.Triple3{body[0], b, body[2]})
			}
		}
		// Rules (6)/(7) with t as the (C,sp,A) antecedent: C = a, A = b.
		for _, cls := range e.domOf[b] {
			for _, body := range e.byPred[a] {
				e.add(dict.Triple3{body[0], e.typ, cls})
			}
		}
		for _, cls := range e.rangeOf[b] {
			for _, body := range e.byPred[a] {
				e.add(dict.Triple3{body[2], e.typ, cls})
			}
		}
	case e.sc:
		a, b := s, o
		// Rule (4): transitivity.
		for c := range e.scOut[b] {
			e.add(dict.Triple3{a, e.sc, c})
		}
		for z := range e.scIn[a] {
			e.add(dict.Triple3{z, e.sc, b})
		}
		// Rule (13): reflexivity of both endpoints.
		e.add(dict.Triple3{a, e.sc, a})
		e.add(dict.Triple3{b, e.sc, b})
		// Rule (5) with t as the (A,sc,B) antecedent.
		for _, x := range e.typeByObj[a] {
			e.add(dict.Triple3{x, e.typ, b})
		}
	case e.dom:
		// Rule (10) and rule (12).
		e.add(dict.Triple3{s, e.sp, s})
		e.add(dict.Triple3{o, e.sc, o})
		// Rule (6) with t as the (A,dom,B) antecedent: join (C,sp,A) and
		// bodies (X,C,Y).
		e.fireDomRange(s, o, true)
	case e.rng:
		e.add(dict.Triple3{s, e.sp, s})
		e.add(dict.Triple3{o, e.sc, o})
		e.fireDomRange(s, o, false)
	case e.typ:
		x, a := s, o
		// Rule (5) with t as the (X,type,A) antecedent.
		for b := range e.scOut[a] {
			e.add(dict.Triple3{x, e.typ, b})
		}
		// Rule (12).
		e.add(dict.Triple3{a, e.sc, a})
	}
}

// fireDomRange fires rule (6) (dom) or (7) (range) for a newly added
// (A, dom/range, B) triple: for every C with (C,sp,A) already present and
// every body (X,C,Y), emit the typing conclusion. The reflexive C = A
// case is carried by the (A,sp,A) loop added by rule (10), which joins
// back through the sp branch of process.
func (e *engine) fireDomRange(a, b dict.ID, isDom bool) {
	for c := range e.spIn[a] {
		for _, body := range e.byPred[c] {
			if isDom {
				e.add(dict.Triple3{body[0], e.typ, b})
			} else {
				e.add(dict.Triple3{body[2], e.typ, b})
			}
		}
	}
}
