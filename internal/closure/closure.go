// Package closure implements the maximal representations of Section 3.1
// of the paper: the closure RDFS-cl(G) of Definition 2.7 (the saturation
// of G under rules (2)–(13)), the semantic closure cl(G) of Definition
// 3.5 computed through skolemization (Lemma 3.4), and the
// membership-without-materialization test of Theorem 3.6(4).
package closure

import (
	"context"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// RDFSCl returns RDFS-cl(G): the set of triples deducible from G using
// rules (2)–(13) (Definition 2.7). The input graph is not modified.
//
// The computation is a semi-naive (delta-driven) fixpoint: every triple
// is processed exactly once, joining against incrementally maintained
// indexes, so no rule instantiation is re-derived from scratch per round.
// NaiveRDFSCl is the round-based baseline (ablation A2).
func RDFSCl(g *graph.Graph) *graph.Graph {
	out, _ := RDFSClCtx(context.Background(), g)
	return out
}

// RDFSClCtx is RDFSCl under a context: the saturation loop polls ctx
// periodically and aborts with its error when it is cancelled, so
// closures of large graphs are interruptible.
func RDFSClCtx(ctx context.Context, g *graph.Graph) (*graph.Graph, error) {
	e := newEngine()
	g.Each(func(t graph.Triple) bool {
		e.add(t)
		return true
	})
	// Rule (9): (p, sp, p) for every p ∈ rdfsV, unconditionally.
	for _, p := range rdfs.Vocabulary() {
		e.add(graph.T(p, rdfs.SubPropertyOf, p))
	}
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	return e.out, nil
}

// Cl returns cl(G) following Definition 3.5 literally: skolemize G to the
// ground graph G*, close it, and unskolemize the result (dropping triples
// that become ill-formed). By Lemma 3.4 and Theorem 3.6(2) this coincides
// with RDFSCl; the two code paths are property-tested against each other.
func Cl(g *graph.Graph) *graph.Graph {
	out, _ := ClCtx(context.Background(), g)
	return out
}

// ClCtx is Cl under a context (see RDFSClCtx).
func ClCtx(ctx context.Context, g *graph.Graph) (*graph.Graph, error) {
	closed, err := RDFSClCtx(ctx, graph.Skolemize(g))
	if err != nil {
		return nil, err
	}
	return graph.Unskolemize(closed), nil
}

// NaiveRDFSCl computes the closure by repeatedly enumerating every rule
// instantiation until no new triple appears. It is the ablation baseline
// (A2) and the executable transcription of Definition 2.7.
func NaiveRDFSCl(g *graph.Graph) *graph.Graph {
	out := g.Clone()
	for _, p := range rdfs.Vocabulary() {
		out.Add(graph.T(p, rdfs.SubPropertyOf, p))
	}
	for {
		added := false
		for _, inst := range rdfs.AllInstantiations(out) {
			for _, c := range inst.Conclusions {
				if out.Add(c) {
					added = true
				}
			}
		}
		if !added {
			return out
		}
	}
}

// engine is the semi-naive saturation state.
type engine struct {
	out   *graph.Graph
	queue []graph.Triple

	spOut map[term.Term]map[term.Term]struct{} // a -> {b : (a,sp,b)}
	spIn  map[term.Term]map[term.Term]struct{}
	scOut map[term.Term]map[term.Term]struct{}
	scIn  map[term.Term]map[term.Term]struct{}

	domOf   map[term.Term][]term.Term // A -> {B : (A,dom,B)}
	rangeOf map[term.Term][]term.Term

	byPred    map[term.Term][]graph.Triple // predicate -> triples
	typeByObj map[term.Term][]term.Term    // class -> {x : (x,type,class)}
}

func newEngine() *engine {
	return &engine{
		out:       graph.New(),
		spOut:     make(map[term.Term]map[term.Term]struct{}),
		spIn:      make(map[term.Term]map[term.Term]struct{}),
		scOut:     make(map[term.Term]map[term.Term]struct{}),
		scIn:      make(map[term.Term]map[term.Term]struct{}),
		domOf:     make(map[term.Term][]term.Term),
		rangeOf:   make(map[term.Term][]term.Term),
		byPred:    make(map[term.Term][]graph.Triple),
		typeByObj: make(map[term.Term][]term.Term),
	}
}

func addEdge(m map[term.Term]map[term.Term]struct{}, a, b term.Term) {
	s, ok := m[a]
	if !ok {
		s = make(map[term.Term]struct{})
		m[a] = s
	}
	s[b] = struct{}{}
}

// add inserts a triple (if well-formed and new), updates the indexes and
// enqueues it for processing.
func (e *engine) add(t graph.Triple) {
	if !e.out.Add(t) {
		return
	}
	e.byPred[t.P] = append(e.byPred[t.P], t)
	switch t.P {
	case rdfs.SubPropertyOf:
		addEdge(e.spOut, t.S, t.O)
		addEdge(e.spIn, t.O, t.S)
	case rdfs.SubClassOf:
		addEdge(e.scOut, t.S, t.O)
		addEdge(e.scIn, t.O, t.S)
	case rdfs.Domain:
		e.domOf[t.S] = append(e.domOf[t.S], t.O)
	case rdfs.Range:
		e.rangeOf[t.S] = append(e.rangeOf[t.S], t.O)
	case rdfs.Type:
		e.typeByObj[t.O] = append(e.typeByObj[t.O], t.S)
	}
	e.queue = append(e.queue, t)
}

func (e *engine) run(ctx context.Context) error {
	done := ctx.Done()
	for n := 0; len(e.queue) > 0; n++ {
		if done != nil && n&0x3ff == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		t := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.process(t)
	}
	return nil
}

// process fires every rule that has t as one of its antecedents, joining
// against the current indexes. Because indexes are updated at add time,
// each antecedent pair/triple is joined when its last member is
// processed, which covers all instantiations exactly once.
func (e *engine) process(t graph.Triple) {
	// Rules that see t as a generic triple (X, A, Y).
	// Rule (8): (X,A,Y) ⊢ (A,sp,A).
	e.add(graph.T(t.P, rdfs.SubPropertyOf, t.P))
	// Rule (3): (A,sp,B), (X,A,Y) ⊢ (X,B,Y), for the new (X,A,Y) = t.
	for b := range e.spOut[t.P] {
		if b.CanPredicate() {
			e.add(graph.T(t.S, b, t.O))
		}
	}
	// Rules (6)/(7) with t as the body triple (X,C,Y): C sp A (or C = A,
	// whose reflexive sp loop is handled when (C,sp,C) is processed).
	for a := range e.spOut[t.P] {
		for _, b := range e.domOf[a] {
			e.add(graph.T(t.S, rdfs.Type, b))
		}
		for _, b := range e.rangeOf[a] {
			e.add(graph.T(t.O, rdfs.Type, b))
		}
	}

	switch t.P {
	case rdfs.SubPropertyOf:
		a, b := t.S, t.O
		// Rule (2): transitivity, joining on both sides.
		for c := range e.spOut[b] {
			e.add(graph.T(a, rdfs.SubPropertyOf, c))
		}
		for z := range e.spIn[a] {
			e.add(graph.T(z, rdfs.SubPropertyOf, b))
		}
		// Rule (11): reflexivity of both endpoints.
		e.add(graph.T(a, rdfs.SubPropertyOf, a))
		e.add(graph.T(b, rdfs.SubPropertyOf, b))
		// Rule (3) with t as the (A,sp,B) antecedent.
		if b.CanPredicate() {
			for _, body := range e.byPred[a] {
				e.add(graph.T(body.S, b, body.O))
			}
		}
		// Rules (6)/(7) with t as the (C,sp,A) antecedent: C = a, A = b.
		for _, cls := range e.domOf[b] {
			for _, body := range e.byPred[a] {
				e.add(graph.T(body.S, rdfs.Type, cls))
			}
		}
		for _, cls := range e.rangeOf[b] {
			for _, body := range e.byPred[a] {
				e.add(graph.T(body.O, rdfs.Type, cls))
			}
		}
	case rdfs.SubClassOf:
		a, b := t.S, t.O
		// Rule (4): transitivity.
		for c := range e.scOut[b] {
			e.add(graph.T(a, rdfs.SubClassOf, c))
		}
		for z := range e.scIn[a] {
			e.add(graph.T(z, rdfs.SubClassOf, b))
		}
		// Rule (13): reflexivity of both endpoints.
		e.add(graph.T(a, rdfs.SubClassOf, a))
		e.add(graph.T(b, rdfs.SubClassOf, b))
		// Rule (5) with t as the (A,sc,B) antecedent.
		for _, x := range e.typeByObj[a] {
			e.add(graph.T(x, rdfs.Type, b))
		}
	case rdfs.Domain:
		// Rule (10) and rule (12).
		e.add(graph.T(t.S, rdfs.SubPropertyOf, t.S))
		e.add(graph.T(t.O, rdfs.SubClassOf, t.O))
		// Rule (6) with t as the (A,dom,B) antecedent: join (C,sp,A) and
		// bodies (X,C,Y).
		e.fireDomRange(t.S, t.O, true)
	case rdfs.Range:
		e.add(graph.T(t.S, rdfs.SubPropertyOf, t.S))
		e.add(graph.T(t.O, rdfs.SubClassOf, t.O))
		e.fireDomRange(t.S, t.O, false)
	case rdfs.Type:
		x, a := t.S, t.O
		// Rule (5) with t as the (X,type,A) antecedent.
		for b := range e.scOut[a] {
			e.add(graph.T(x, rdfs.Type, b))
		}
		// Rule (12).
		e.add(graph.T(a, rdfs.SubClassOf, a))
	}
}

// fireDomRange fires rule (6) (dom) or (7) (range) for a newly added
// (A, dom/range, B) triple: for every C with (C,sp,A) already present and
// every body (X,C,Y), emit the typing conclusion. The reflexive C = A
// case is carried by the (A,sp,A) loop added by rule (10), which joins
// back through the sp branch of process.
func (e *engine) fireDomRange(a, b term.Term, isDom bool) {
	for c := range e.spIn[a] {
		for _, body := range e.byPred[c] {
			if isDom {
				e.add(graph.T(body.S, rdfs.Type, b))
			} else {
				e.add(graph.T(body.O, rdfs.Type, b))
			}
		}
	}
}
