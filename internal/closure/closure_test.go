package closure

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

// scChain returns a1 sc a2 sc … sc an.
func scChain(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i < n; i++ {
		g.Add(graph.T(iri(fmt.Sprintf("c%03d", i)), rdfs.SubClassOf, iri(fmt.Sprintf("c%03d", i+1))))
	}
	return g
}

func TestRDFSClContainsInput(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), rdfs.SubClassOf, iri("b")),
		graph.T(iri("x"), iri("p"), iri("y")),
	)
	cl := RDFSCl(g)
	g.Each(func(tr graph.Triple) bool {
		if !cl.Has(tr) {
			t.Errorf("closure misses input triple %v", tr)
		}
		return true
	})
}

func TestRDFSClTransitivity(t *testing.T) {
	cl := RDFSCl(scChain(5))
	for i := 1; i <= 5; i++ {
		for j := i; j <= 5; j++ {
			want := graph.T(iri(fmt.Sprintf("c%03d", i)), rdfs.SubClassOf, iri(fmt.Sprintf("c%03d", j)))
			if i < j && !cl.Has(want) {
				t.Errorf("missing transitive edge %v", want)
			}
		}
	}
	// Reflexive loops on every chain node (rule 13).
	for i := 1; i <= 5; i++ {
		loop := graph.T(iri(fmt.Sprintf("c%03d", i)), rdfs.SubClassOf, iri(fmt.Sprintf("c%03d", i)))
		if !cl.Has(loop) {
			t.Errorf("missing reflexive loop %v", loop)
		}
	}
}

func TestRDFSClVocabularyReflexivity(t *testing.T) {
	cl := RDFSCl(graph.New())
	for _, p := range rdfs.Vocabulary() {
		if !cl.Has(graph.T(p, rdfs.SubPropertyOf, p)) {
			t.Errorf("rule (9) triple missing for %v", p)
		}
	}
}

func TestRDFSClInheritance(t *testing.T) {
	g := graph.New(
		graph.T(iri("son"), rdfs.SubPropertyOf, iri("child")),
		graph.T(iri("child"), rdfs.SubPropertyOf, iri("descendant")),
		graph.T(iri("tom"), iri("son"), iri("mary")),
	)
	cl := RDFSCl(g)
	for _, p := range []string{"child", "descendant"} {
		if !cl.Has(graph.T(iri("tom"), iri(p), iri("mary"))) {
			t.Errorf("missing inherited triple with %s", p)
		}
	}
	// Rule (8): every predicate in use is sp-reflexive.
	if !cl.Has(graph.T(iri("son"), rdfs.SubPropertyOf, iri("son"))) {
		t.Error("rule (8) reflexivity missing")
	}
}

func TestRDFSClDomainRange(t *testing.T) {
	g := graph.New(
		graph.T(iri("paints"), rdfs.SubPropertyOf, iri("creates")),
		graph.T(iri("creates"), rdfs.Domain, iri("Artist")),
		graph.T(iri("creates"), rdfs.Range, iri("Artifact")),
		graph.T(iri("Picasso"), iri("paints"), iri("Guernica")),
	)
	cl := RDFSCl(g)
	if !cl.Has(graph.T(iri("Picasso"), rdfs.Type, iri("Artist"))) {
		t.Error("domain typing missing (via subproperty)")
	}
	if !cl.Has(graph.T(iri("Guernica"), rdfs.Type, iri("Artifact"))) {
		t.Error("range typing missing (via subproperty)")
	}
}

func TestRDFSClDomainDirect(t *testing.T) {
	// Rule 6 with the reflexive (p,sp,p): no explicit subproperty.
	g := graph.New(
		graph.T(iri("p"), rdfs.Domain, iri("C")),
		graph.T(iri("x"), iri("p"), iri("y")),
	)
	cl := RDFSCl(g)
	if !cl.Has(graph.T(iri("x"), rdfs.Type, iri("C"))) {
		t.Error("direct domain typing missing")
	}
}

func TestRDFSClTypeLifting(t *testing.T) {
	g := graph.New(
		graph.T(iri("A"), rdfs.SubClassOf, iri("B")),
		graph.T(iri("B"), rdfs.SubClassOf, iri("C")),
		graph.T(iri("x"), rdfs.Type, iri("A")),
	)
	cl := RDFSCl(g)
	for _, c := range []string{"B", "C"} {
		if !cl.Has(graph.T(iri("x"), rdfs.Type, iri(c))) {
			t.Errorf("type not lifted to %s", c)
		}
	}
}

func TestRDFSClBlankSuperproperty(t *testing.T) {
	// (p, sp, _:B): the blank cannot become a predicate (no ill-formed
	// triples), but transitivity through the blank must still work.
	g := graph.New(
		graph.T(iri("p"), rdfs.SubPropertyOf, blk("B")),
		graph.T(blk("B"), rdfs.SubPropertyOf, iri("q")),
		graph.T(iri("x"), iri("p"), iri("y")),
	)
	cl := RDFSCl(g)
	if !cl.Has(graph.T(iri("p"), rdfs.SubPropertyOf, iri("q"))) {
		t.Error("transitivity through blank missing")
	}
	if !cl.Has(graph.T(iri("x"), iri("q"), iri("y"))) {
		t.Error("inheritance through blank chain missing")
	}
	cl.Each(func(tr graph.Triple) bool {
		if !tr.WellFormed() {
			t.Errorf("ill-formed triple in closure: %v", tr)
		}
		return true
	})
}

func TestMarinIncompletenessFix(t *testing.T) {
	// Note 2.4: blanks standing for properties in (a,sp,X), (X,dom,b).
	// Rules (6)/(7) (added following Marin) must fire through the blank.
	g := graph.New(
		graph.T(iri("a"), rdfs.SubPropertyOf, blk("X")),
		graph.T(blk("X"), rdfs.Domain, iri("C")),
		graph.T(iri("u"), iri("a"), iri("v")),
	)
	cl := RDFSCl(g)
	if !cl.Has(graph.T(iri("u"), rdfs.Type, iri("C"))) {
		t.Error("rule (6) through blank property missing — Marin fix broken")
	}
	g2 := graph.New(
		graph.T(iri("a"), rdfs.SubPropertyOf, blk("X")),
		graph.T(blk("X"), rdfs.Range, iri("C")),
		graph.T(iri("u"), iri("a"), iri("v")),
	)
	if !RDFSCl(g2).Has(graph.T(iri("v"), rdfs.Type, iri("C"))) {
		t.Error("rule (7) through blank property missing")
	}
}

func TestSemiNaiveEqualsNaive(t *testing.T) {
	graphs := []*graph.Graph{
		graph.New(),
		scChain(6),
		graph.New(
			graph.T(iri("p"), rdfs.SubPropertyOf, iri("q")),
			graph.T(iri("q"), rdfs.Domain, iri("C")),
			graph.T(iri("C"), rdfs.SubClassOf, iri("D")),
			graph.T(iri("x"), iri("p"), iri("y")),
			graph.T(iri("y"), rdfs.Type, iri("C")),
		),
		graph.New(
			graph.T(iri("a"), rdfs.SubPropertyOf, blk("X")),
			graph.T(blk("X"), rdfs.Domain, iri("C")),
			graph.T(iri("u"), iri("a"), iri("v")),
		),
	}
	for i, g := range graphs {
		fast := RDFSCl(g)
		slow := NaiveRDFSCl(g)
		if !fast.Equal(slow) {
			t.Errorf("case %d: semi-naive and naive closures differ:\nfast %d triples\nslow %d triples\nonly-fast: %v\nonly-slow: %v",
				i, fast.Len(), slow.Len(), fast.Minus(slow), slow.Minus(fast))
		}
	}
}

func TestSemiNaiveEqualsNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preds := []term.Term{rdfs.SubClassOf, rdfs.SubPropertyOf, rdfs.Type, rdfs.Domain, rdfs.Range,
		iri("p"), iri("q"), iri("r")}
	names := []term.Term{iri("a"), iri("b"), iri("c"), iri("d"), blk("x"), blk("y")}
	for round := 0; round < 60; round++ {
		g := graph.New()
		for k := 0; k < 8; k++ {
			g.Add(graph.T(
				names[rng.Intn(len(names))],
				preds[rng.Intn(len(preds))],
				names[rng.Intn(len(names))],
			))
		}
		fast := RDFSCl(g)
		slow := NaiveRDFSCl(g)
		if !fast.Equal(slow) {
			t.Fatalf("round %d: closures differ on\n%v\nonly-fast: %v\nonly-slow: %v",
				round, g, fast.Minus(slow), slow.Minus(fast))
		}
	}
}

func TestClEqualsRDFSCl(t *testing.T) {
	// Lemma 3.4 / Theorem 3.6(2): the skolemization route and the direct
	// route coincide.
	rng := rand.New(rand.NewSource(11))
	preds := []term.Term{rdfs.SubClassOf, rdfs.SubPropertyOf, rdfs.Type, rdfs.Domain, rdfs.Range, iri("p")}
	names := []term.Term{iri("a"), iri("b"), blk("x"), blk("y"), blk("z")}
	for round := 0; round < 60; round++ {
		g := graph.New()
		for k := 0; k < 7; k++ {
			g.Add(graph.T(
				names[rng.Intn(len(names))],
				preds[rng.Intn(len(preds))],
				names[rng.Intn(len(names))],
			))
		}
		if !Cl(g).Equal(RDFSCl(g)) {
			t.Fatalf("round %d: cl(G) ≠ RDFS-cl(G) on\n%v", round, g)
		}
	}
}

func TestClosureIdempotent(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), rdfs.SubClassOf, iri("b")),
		graph.T(iri("b"), rdfs.SubClassOf, iri("c")),
		graph.T(iri("x"), rdfs.Type, iri("a")),
		graph.T(iri("p"), rdfs.Domain, iri("a")),
		graph.T(iri("u"), iri("p"), iri("w")),
	)
	c1 := RDFSCl(g)
	c2 := RDFSCl(c1)
	if !c1.Equal(c2) {
		t.Fatalf("closure not idempotent: %v vs %v extra", c1.Len(), c2.Len())
	}
}

func TestClosureQuadraticGrowth(t *testing.T) {
	// Theorem 3.6(3): |cl(G)| = Θ(|G|²); an sc-chain exhibits the
	// quadratic lower bound: n(n+1)/2 sc pairs + n loops + constants.
	prev := 0.0
	for _, n := range []int{8, 16, 32} {
		g := scChain(n + 1) // n edges
		cl := RDFSCl(g)
		ratio := float64(cl.Len()) / float64(n*n)
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("n=%d: |cl| = %d, ratio %0.2f not Θ(n²)-ish", n, cl.Len(), ratio)
		}
		prev = ratio
	}
	_ = prev
}

func TestMembershipFastPathAgainstMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Restricted class: vocabulary only in predicate position.
	preds := []term.Term{rdfs.SubClassOf, rdfs.SubPropertyOf, rdfs.Type, rdfs.Domain, rdfs.Range,
		iri("p"), iri("q")}
	names := []term.Term{iri("a"), iri("b"), iri("c"), blk("x"), blk("y")}
	for round := 0; round < 40; round++ {
		g := graph.New()
		for k := 0; k < 8; k++ {
			g.Add(graph.T(
				names[rng.Intn(len(names))],
				preds[rng.Intn(len(preds))],
				names[rng.Intn(len(names))],
			))
		}
		mem := NewMembership(g)
		if !mem.Fast() {
			t.Fatalf("round %d: expected fast path for %v", round, g)
		}
		full := RDFSCl(g)
		// Check every triple over the universe plus vocabulary.
		terms := append(g.UniverseList(), rdfs.Vocabulary()...)
		for _, s := range terms {
			if !s.CanSubject() {
				continue
			}
			for _, p := range preds {
				for _, o := range terms {
					tr := graph.T(s, p, o)
					got := mem.Contains(tr)
					want := full.Has(tr)
					if got != want {
						t.Fatalf("round %d: membership(%v) = %v, closure says %v\nG:\n%v", round, tr, got, want, g)
					}
				}
			}
		}
	}
}

func TestMembershipFallback(t *testing.T) {
	// Vocabulary in object position: fast path must be refused and the
	// fallback must agree with the materialized closure.
	g := graph.New(
		graph.T(iri("q"), rdfs.SubPropertyOf, rdfs.Type), // type in object position
		graph.T(iri("x"), iri("q"), iri("C")),
	)
	mem := NewMembership(g)
	if mem.Fast() {
		t.Fatal("fast path on a graph outside the restricted class")
	}
	// Rule (3) turns (x,q,C) into (x,type,C); then rule (12) fires.
	if !mem.Contains(graph.T(iri("x"), rdfs.Type, iri("C"))) {
		t.Error("derived type triple missing")
	}
	if !mem.Contains(graph.T(iri("C"), rdfs.SubClassOf, iri("C"))) {
		t.Error("derived sc loop missing")
	}
}

func TestMembershipRejectsIllFormed(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	mem := NewMembership(g)
	if mem.Contains(graph.Triple{S: term.NewLiteral("l"), P: iri("p"), O: iri("b")}) {
		t.Fatal("ill-formed triple reported in closure")
	}
}

func TestMembershipOnChains(t *testing.T) {
	g := scChain(30)
	mem := NewMembership(g)
	full := RDFSCl(g)
	if !mem.Fast() {
		t.Fatal("chain should use the fast path")
	}
	for i := 1; i <= 30; i++ {
		for j := 1; j <= 30; j++ {
			tr := graph.T(iri(fmt.Sprintf("c%03d", i)), rdfs.SubClassOf, iri(fmt.Sprintf("c%03d", j)))
			if mem.Contains(tr) != full.Has(tr) {
				t.Fatalf("disagreement at (%d,%d)", i, j)
			}
		}
	}
}

func TestClosurePreservesBlanks(t *testing.T) {
	g := graph.New(
		graph.T(blk("x"), rdfs.Type, iri("A")),
		graph.T(iri("A"), rdfs.SubClassOf, iri("B")),
	)
	cl := RDFSCl(g)
	if !cl.Has(graph.T(blk("x"), rdfs.Type, iri("B"))) {
		t.Fatal("lifting lost the blank subject")
	}
}
