package closure

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
)

// splitRandom partitions the triples of g into a base graph and a batch
// graph (sharing g's dictionary), putting each triple in the batch with
// the given probability.
func splitRandom(rng *rand.Rand, g *graph.Graph, pBatch float64) (*graph.Graph, *graph.Graph) {
	base := graph.NewWithDict(g.Dict())
	batch := graph.NewWithDict(g.Dict())
	g.EachID(func(t dict.Triple3) bool {
		if rng.Float64() < pBatch {
			batch.AddID(t)
		} else {
			base.AddID(t)
		}
		return true
	})
	return base, batch
}

// TestDeltaClosureEqualsFromScratch is the core acceptance property of
// incremental maintenance: for random graphs split into a base and an
// insert batch, saturating the base and folding the batch in by delta
// rounds yields exactly RDFS-cl(base ∪ batch) — for the sequential
// one-shot, the parallel one-shot at workers {1, 2, 8}, and regardless
// of which triples land in the batch.
func TestDeltaClosureEqualsFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for round := 0; round < 60; round++ {
		var g *graph.Graph
		if round%2 == 0 {
			g = randClosureGraph(rng, 4+rng.Intn(10))
		} else {
			g = randVocabAsDataGraph(rng, 4+rng.Intn(10))
		}
		base, batch := splitRandom(rng, g, 0.3)
		want := RDFSCl(g)
		baseCl := RDFSCl(base)

		got := DeltaRDFSCl(baseCl, batch)
		if !got.Equal(want) {
			t.Fatalf("round %d: sequential delta closure differs on\n%v\nbatch:\n%v\nonly-want: %v\nonly-got: %v",
				round, base, batch, want.Minus(got), got.Minus(want))
		}
		for _, nw := range workerCounts {
			got, err := parDeltaRDFSCl(context.Background(), baseCl, batch, max(nw, 2))
			if err != nil {
				t.Fatalf("round %d w%d: %v", round, nw, err)
			}
			if !got.Equal(want) {
				t.Fatalf("round %d w%d: parallel delta closure differs\nonly-want: %v\nonly-got: %v",
					round, nw, want.Minus(got), got.Minus(want))
			}
			got2, err := DeltaRDFSClWorkers(context.Background(), baseCl, batch, nw)
			if err != nil {
				t.Fatalf("round %d w%d: %v", round, nw, err)
			}
			if !got2.Equal(want) {
				t.Fatalf("round %d w%d: DeltaRDFSClWorkers differs", round, nw)
			}
		}
	}
}

// TestDeltaClosureInsertionOrders: applying the same batch in different
// insertion orders and sub-batch splits through one Maintainer reaches
// the same fixpoint, and each Apply's journal is exactly the set
// difference it created (disjoint from the pre-Apply closure).
func TestDeltaClosureInsertionOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 5+rng.Intn(8))
		base, batch := splitRandom(rng, g, 0.4)
		want := RDFSCl(g)
		baseCl := RDFSCl(base)

		ids := batchIDs(baseCl, batch)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

		// Split the shuffled batch into 1..4 sub-batches applied in
		// sequence; the closure after the last must equal the closure of
		// the union, whatever the split points.
		m := NewMaintainer(baseCl)
		acc := baseCl
		for len(ids) > 0 {
			k := 1 + rng.Intn(len(ids))
			sub := ids[:k]
			ids = ids[k:]
			added, err := m.Apply(context.Background(), sub)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			for _, a := range added {
				if acc.HasID(a) {
					t.Fatalf("round %d: journal reports %v already present", round, a)
				}
			}
			acc = acc.ExtendedByIDs(added)
			if acc.Len() != m.Len() {
				t.Fatalf("round %d: extended graph (%d) and maintainer (%d) disagree on size",
					round, acc.Len(), m.Len())
			}
		}
		if !acc.Equal(want) {
			t.Fatalf("round %d: incremental batches reached wrong fixpoint\nonly-want: %v\nonly-got: %v",
				round, want.Minus(acc), acc.Minus(want))
		}
	}
}

// TestDeltaClosureEmptyBatch: folding in nothing adds nothing.
func TestDeltaClosureEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	g := randClosureGraph(rng, 8)
	baseCl := RDFSCl(g)
	m := NewMaintainer(baseCl)
	added, err := m.Apply(context.Background(), nil)
	if err != nil || len(added) != 0 {
		t.Fatalf("empty batch: added=%v err=%v", added, err)
	}
	// Re-inserting triples the closure already holds is also a no-op.
	added, err = m.Apply(context.Background(), batchIDs(baseCl, g))
	if err != nil || len(added) != 0 {
		t.Fatalf("duplicate batch: added=%v err=%v", added, err)
	}
	if got := DeltaRDFSCl(baseCl, graph.NewWithDict(baseCl.Dict())); !got.Equal(baseCl) {
		t.Fatal("one-shot empty delta changed the closure")
	}
}

// TestDeltaClEqualsClOfUnion covers the cl-level (Definition 3.5)
// entry points, including the non-ground fallback path.
func TestDeltaClEqualsClOfUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for round := 0; round < 40; round++ {
		g := randClosureGraph(rng, 4+rng.Intn(8)) // mixes blanks in
		base, batch := splitRandom(rng, g, 0.35)
		want := Cl(g)
		baseCl := Cl(base)
		for _, nw := range workerCounts {
			got, err := DeltaClWorkers(context.Background(), baseCl, batch, nw)
			if err != nil {
				t.Fatalf("round %d w%d: %v", round, nw, err)
			}
			if !got.Equal(want) {
				t.Fatalf("round %d w%d: DeltaCl differs from Cl of union\nonly-want: %v\nonly-got: %v",
					round, nw, want.Minus(got), got.Minus(want))
			}
		}
	}
}

// TestMaintainerPoisonedAfterCancel: an Apply aborted by its context
// reports the cancellation and poisons the maintainer for good.
func TestMaintainerPoisonedAfterCancel(t *testing.T) {
	baseCl := RDFSCl(scChain(40))
	m := NewMaintainer(baseCl)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	batch := graph.NewWithDict(baseCl.Dict())
	batch.Add(graph.T(iri("n1"), rdfs.SubClassOf, iri("fresh")))
	if _, err := m.Apply(dead, batchIDs(baseCl, batch)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Apply: err=%v, want context.Canceled", err)
	}
	if _, err := m.Apply(context.Background(), nil); err == nil {
		t.Fatal("poisoned maintainer accepted a later Apply")
	}
	// The one-shot variants surface the same error.
	if out, err := DeltaRDFSClCtx(dead, baseCl, batch); err == nil || out != nil {
		t.Fatalf("DeltaRDFSClCtx on dead context: out=%v err=%v", out != nil, err)
	}
	if out, err := parDeltaRDFSCl(dead, baseCl, batch, 4); err == nil || out != nil {
		t.Fatalf("parDeltaRDFSCl on dead context: out=%v err=%v", out != nil, err)
	}
}

// TestDeltaClosureForeignDictBatch: a batch graph with its own private
// dictionary is re-interned against the base's.
func TestDeltaClosureForeignDictBatch(t *testing.T) {
	base := graph.New(
		graph.T(iri("c1"), rdfs.SubClassOf, iri("c2")),
		graph.T(iri("x"), rdfs.Type, iri("c1")),
	)
	baseCl := RDFSCl(base)
	batch := graph.New(graph.T(iri("c2"), rdfs.SubClassOf, iri("c3")))
	want := RDFSCl(graph.Union(base, batch))
	got := DeltaRDFSCl(baseCl, batch)
	if !got.Equal(want) {
		t.Fatalf("foreign-dict batch: wrong closure\nonly-want: %v\nonly-got: %v",
			want.Minus(got), got.Minus(want))
	}
	if !got.Has(graph.T(iri("x"), rdfs.Type, iri("c3"))) {
		t.Fatal("expected derived typing through the freshly inserted subclass edge")
	}
}

// TestDeltaClosureExtendedIndexesConsistent: the merged permutations of
// the extended result answer pattern scans exactly like a freshly
// sorted graph over the same set.
func TestDeltaClosureExtendedIndexesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for round := 0; round < 20; round++ {
		g := randClosureGraph(rng, 6+rng.Intn(6))
		base, batch := splitRandom(rng, g, 0.3)
		baseCl := RDFSCl(base)
		// Force all three permutations on the base so ExtendedByIDs
		// takes the merge path for each.
		for o := 0; o < 3; o++ {
			baseCl.Index(dict.Order(o))
		}
		got := DeltaRDFSCl(baseCl, batch)
		for o := 0; o < 3; o++ {
			fo := dict.Order(o)
			merged := got.Index(fo)
			rebuilt := graph.NewWithDict(got.Dict()).AddAll(got).Index(fo)
			if len(merged) != len(rebuilt) {
				t.Fatalf("round %d order %v: index sizes %d vs %d", round, fo, len(merged), len(rebuilt))
			}
			for i := range merged {
				if merged[i] != rebuilt[i] {
					t.Fatalf("round %d order %v: merged index diverges at %d: %v vs %v",
						round, fo, i, merged[i], rebuilt[i])
				}
			}
		}
	}
}
