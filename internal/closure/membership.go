package closure

import (
	"context"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// Membership answers "t ∈ cl(G)?" queries. For graphs in which no
// reserved vocabulary occurs in subject or object position — the
// well-behaved class also used by Theorem 3.16 — the answer is computed
// by reachability over the sp/sc digraphs without materializing the
// closure, mirroring the O(|G| log |G|) procedure behind Theorem 3.6(4).
// For graphs outside that class (reserved words as data, e.g.
// (q, sp, dom)), it transparently falls back to the materialized closure.
type Membership struct {
	g    *graph.Graph
	fast bool

	// fast-path state
	spOut map[term.Term][]term.Term // base sp edges
	scOut map[term.Term][]term.Term // base sc edges

	preds            map[term.Term]struct{} // predicates of base triples
	spEndpoints      map[term.Term]struct{} // endpoints of base sp triples
	scEndpoints      map[term.Term]struct{} // endpoints of base sc triples
	domRangeSubjects map[term.Term]struct{}
	domRangeObjects  map[term.Term]struct{}
	doms             []graph.Triple // (A,dom,B) triples
	ranges           []graph.Triple // (A,range,B) triples

	bySubject map[term.Term][]graph.Triple
	byObject  map[term.Term][]graph.Triple
	byPred    map[term.Term][]graph.Triple

	// fallback state
	materialized *graph.Graph
}

// NewMembership preprocesses g for repeated membership queries.
func NewMembership(g *graph.Graph) *Membership {
	return NewMembershipWorkers(g, 1)
}

// NewMembershipWorkers is NewMembership with an explicit parallelism
// degree for the fallback path: when g is outside the well-behaved
// class and the closure must be materialized, the saturation runs on
// that many workers (see RDFSClWorkers). The fast reachability path is
// unaffected — it never materializes anything. Answers are identical
// for every worker count.
func NewMembershipWorkers(g *graph.Graph, workers int) *Membership {
	m := &Membership{g: g}
	if rdfs.MentionsVocabularyOutsidePredicate(g) {
		m.fast = false
		m.materialized, _ = RDFSClWorkers(context.Background(), g, workers)
		return m
	}
	m.fast = true
	m.spOut = make(map[term.Term][]term.Term)
	m.scOut = make(map[term.Term][]term.Term)
	m.preds = make(map[term.Term]struct{})
	m.spEndpoints = make(map[term.Term]struct{})
	m.scEndpoints = make(map[term.Term]struct{})
	m.domRangeSubjects = make(map[term.Term]struct{})
	m.domRangeObjects = make(map[term.Term]struct{})
	m.bySubject = make(map[term.Term][]graph.Triple)
	m.byObject = make(map[term.Term][]graph.Triple)
	m.byPred = make(map[term.Term][]graph.Triple)
	g.Each(func(t graph.Triple) bool {
		m.preds[t.P] = struct{}{}
		m.bySubject[t.S] = append(m.bySubject[t.S], t)
		m.byObject[t.O] = append(m.byObject[t.O], t)
		m.byPred[t.P] = append(m.byPred[t.P], t)
		switch t.P {
		case rdfs.SubPropertyOf:
			m.spOut[t.S] = append(m.spOut[t.S], t.O)
			m.spEndpoints[t.S] = struct{}{}
			m.spEndpoints[t.O] = struct{}{}
		case rdfs.SubClassOf:
			m.scOut[t.S] = append(m.scOut[t.S], t.O)
			m.scEndpoints[t.S] = struct{}{}
			m.scEndpoints[t.O] = struct{}{}
		case rdfs.Domain:
			m.domRangeSubjects[t.S] = struct{}{}
			m.domRangeObjects[t.O] = struct{}{}
			m.doms = append(m.doms, t)
		case rdfs.Range:
			m.domRangeSubjects[t.S] = struct{}{}
			m.domRangeObjects[t.O] = struct{}{}
			m.ranges = append(m.ranges, t)
		}
		return true
	})
	return m
}

// Fast reports whether the reachability-based path is in use.
func (m *Membership) Fast() bool { return m.fast }

// Contains reports whether t ∈ cl(G) = RDFS-cl(G).
func (m *Membership) Contains(t graph.Triple) bool {
	if !t.WellFormed() {
		return false
	}
	if m.g.Has(t) {
		return true
	}
	if !m.fast {
		return m.materialized.Has(t)
	}
	switch t.P {
	case rdfs.SubPropertyOf:
		if t.S == t.O {
			return m.spReflexive(t.S)
		}
		return reach(m.spOut, t.S, t.O)
	case rdfs.SubClassOf:
		if t.S == t.O {
			return m.scReflexive(t.S)
		}
		return reach(m.scOut, t.S, t.O)
	case rdfs.Type:
		return m.hasType(t.S, t.O)
	case rdfs.Domain, rdfs.Range:
		// In the restricted class, dom/range triples are never derived
		// (rule (3) would need the reserved word in object position).
		return false
	default:
		// Plain triple (x,p,y): derivable exactly via rule (3) from some
		// base triple (x,c,y) with c sp-reaching p.
		for _, base := range m.bySubject[t.S] {
			if base.O != t.O {
				continue
			}
			if base.P == t.P || reach(m.spOut, base.P, t.P) {
				return true
			}
		}
		return false
	}
}

// spReflexive decides (a, sp, a) ∈ cl(G) via rules (8)–(11): a is a
// reserved word, a predicate of some triple of the closure (i.e. an
// sp-ancestor-closed predicate of the base), an endpoint of an sp edge,
// or the subject of a dom/range triple.
func (m *Membership) spReflexive(a term.Term) bool {
	if rdfs.IsVocabulary(a) {
		return true
	}
	if _, ok := m.spEndpoints[a]; ok {
		return true
	}
	if _, ok := m.domRangeSubjects[a]; ok {
		return true
	}
	// Rule (8) over the closure: a is a predicate of a derived triple iff
	// some base predicate sp-reaches a (rule (3)), or a is itself used.
	if _, ok := m.preds[a]; ok {
		return true
	}
	if !a.CanPredicate() {
		return false
	}
	for c := range m.preds {
		if reach(m.spOut, c, a) {
			return true
		}
	}
	return false
}

// scReflexive decides (a, sc, a) ∈ cl(G) via rules (12)–(13): a is an
// endpoint of an sc edge, an object of a dom/range triple, or the object
// of some type triple of the closure.
func (m *Membership) scReflexive(a term.Term) bool {
	if _, ok := m.scEndpoints[a]; ok {
		return true
	}
	if _, ok := m.domRangeObjects[a]; ok {
		return true
	}
	// (x, type, a) ∈ cl(G) for some x?
	// Sources of type objects: base type triples, dom/range conclusions;
	// all then lifted along sc (rule (5)). a is such an object iff some
	// source class sc-reaches a (or equals a).
	for _, src := range m.typeObjectSources() {
		if src == a || reach(m.scOut, src, a) {
			return true
		}
	}
	return false
}

// typeObjectSources returns the classes that appear as objects of type
// triples before sc-lifting: objects of base type triples, plus B for
// every applicable (A,dom,B) / (A,range,B).
func (m *Membership) typeObjectSources() []term.Term {
	var out []term.Term
	for _, t := range m.byPred[rdfs.Type] {
		out = append(out, t.O)
	}
	for _, dm := range m.doms {
		if m.propertyApplicable(dm.S) {
			out = append(out, dm.O)
		}
	}
	for _, rg := range m.ranges {
		if m.propertyApplicable(rg.S) {
			out = append(out, rg.O)
		}
	}
	return out
}

// propertyApplicable reports whether some base triple's predicate c
// sp-reaches A (including c = A): the (C,sp,A),(X,C,Y) part of rules
// (6)/(7).
func (m *Membership) propertyApplicable(a term.Term) bool {
	if _, ok := m.preds[a]; ok {
		return true
	}
	for c := range m.preds {
		if reach(m.spOut, c, a) {
			return true
		}
	}
	return false
}

// hasType decides (x, type, b) ∈ cl(G): some class B with B sc-reaching b
// (or B = b) is directly asserted for x, or follows from rule (6)/(7)
// applied to a triple with subject/object x.
func (m *Membership) hasType(x, b term.Term) bool {
	hits := func(B term.Term) bool {
		return B == b || reach(m.scOut, B, b)
	}
	for _, t := range m.bySubject[x] {
		if t.P == rdfs.Type && hits(t.O) {
			return true
		}
		// Rule (6): t = (x, c, y), c sp* A, (A, dom, B).
		for _, dm := range m.doms {
			if hits(dm.O) && (t.P == dm.S || reach(m.spOut, t.P, dm.S)) {
				return true
			}
		}
	}
	for _, t := range m.byObject[x] {
		// Rule (7): t = (y, c, x), c sp* A, (A, range, B).
		for _, rg := range m.ranges {
			if hits(rg.O) && (t.P == rg.S || reach(m.spOut, t.P, rg.S)) {
				return true
			}
		}
	}
	return false
}

// reach reports a path of length ≥ 1 from src to dst in the digraph adj.
func reach(adj map[term.Term][]term.Term, src, dst term.Term) bool {
	seen := map[term.Term]struct{}{}
	stack := append([]term.Term(nil), adj[src]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		stack = append(stack, adj[n]...)
	}
	return false
}
