package closure

import "semwebdb/internal/obs"

// Saturation metric families (process-global; see internal/obs). The
// engines never touch an atomic per rule firing: both keep plain local
// counters — fields on the sequential engine, per-worker tallies on the
// sharded one — and flush them once per run, so instrumentation cost is
// a handful of adds per saturation, not per instantiation.
var (
	saturationsVec = obs.Default.CounterVec("semweb_closure_saturations_total",
		"Saturation runs, by mode (full = from scratch, delta = incremental over a closed base) and engine (seq = semi-naive queue, par = sharded BSP).",
		"mode", "engine")
	satFullSeq  = saturationsVec.With("full", "seq")
	satDeltaSeq = saturationsVec.With("delta", "seq")
	satFullPar  = saturationsVec.With("full", "par")
	satDeltaPar = saturationsVec.With("delta", "par")

	saturationSecondsVec = obs.Default.HistogramVec("semweb_closure_seconds",
		"Wall-clock saturation latency, by mode.", nil, "mode")
	satSecondsFull  = saturationSecondsVec.With("full")
	satSecondsDelta = saturationSecondsVec.With("delta")

	ruleFirings = obs.Default.Counter("semweb_closure_rule_firings_total",
		"Rule-instantiation conclusions emitted by the engines, duplicates included (the semi-naive work measure).")
	triplesDerived = obs.Default.Counter("semweb_closure_triples_derived_total",
		"Triples admitted into a closure under construction (novel conclusions plus seeded input).")
	bspRounds = obs.Default.Counter("semweb_closure_rounds_total",
		"Fire/merge/index rounds executed by the parallel (BSP) engine.")
)
