// This file implements the parallel saturation engine; see parEngine
// for the design. The public entry points are RDFSClWorkers and
// ClWorkers.

package closure

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// minParallelTriples is the input size below which RDFSClWorkers routes
// to the sequential engine: a handful of barrier crossings costs more
// than saturating a small graph outright. Tests exercise the parallel
// engine below the cutoff through parRDFSCl directly.
const minParallelTriples = 192

// maxWorkers bounds the shard fan-out; beyond this, more workers only
// add barrier traffic.
const maxWorkers = 128

// normWorkers clamps a requested parallelism degree: values ≤ 1 mean
// sequential (callers resolve "auto" before reaching this layer).
func normWorkers(n int) int {
	if n <= 1 {
		return 1
	}
	if n > maxWorkers {
		return maxWorkers
	}
	return n
}

// RDFSClWorkers is RDFSClCtx with an explicit parallelism degree:
// workers ≤ 1 runs the sequential semi-naive engine, larger values run
// the sharded saturation on that many goroutines. Both engines compute
// the same closure (the fixpoint is unique); inputs smaller than an
// internal cutoff always take the sequential path, where per-round
// barriers would dominate. The result shares g's dictionary and, on
// the parallel path, arrives with its three sorted permutations
// already installed.
func RDFSClWorkers(ctx context.Context, g *graph.Graph, workers int) (*graph.Graph, error) {
	nw := normWorkers(workers)
	if nw == 1 || g.Len() < minParallelTriples {
		return RDFSClCtx(ctx, g)
	}
	return parRDFSCl(ctx, g, nw)
}

// ClWorkers is ClCtx with an explicit parallelism degree (see
// RDFSClWorkers): skolemize, saturate on the worker pool, unskolemize.
//
// Ground graphs (no blank nodes — the common shape of loaded
// databases) take a direct path: skolemization is the identity on
// them and the rules introduce no skolem constants, so cl(G) is
// RDFS-cl(G) verbatim. Skipping the two copies also preserves the
// permutations the parallel engine installed on its result, which the
// unskolemize rewrite would otherwise discard; with blank nodes
// present the rewrite changes IDs and the scan indexes of the result
// are rebuilt lazily as usual.
func ClWorkers(ctx context.Context, g *graph.Graph, workers int) (*graph.Graph, error) {
	if g.IsGround() {
		return RDFSClWorkers(ctx, g, workers)
	}
	closed, err := RDFSClWorkers(ctx, graph.Skolemize(g), workers)
	if err != nil {
		return nil, err
	}
	return graph.Unskolemize(closed), nil
}

// parRDFSCl runs the sharded engine unconditionally on nw workers
// (nw ≥ 2); RDFSClWorkers applies the small-input cutoff, tests call
// this directly to cover tiny graphs too.
func parRDFSCl(ctx context.Context, g *graph.Graph, nw int) (*graph.Graph, error) {
	t0 := time.Now()
	pe := newParEngine(g, nw)
	if err := pe.run(ctx); err != nil {
		return nil, err
	}
	satFullPar.Inc()
	satSecondsFull.ObserveSince(t0)
	return pe.finish(), nil
}

// parShard holds the rule-firing indexes for the predicates it owns.
// Only the owning goroutine writes a shard (during the index phase);
// every worker reads any shard during a firing phase, when all shards
// are frozen.
type parShard struct {
	byPred map[dict.ID][]dict.Triple3 // predicate -> triples

	spOut map[dict.ID]map[dict.ID]struct{} // a -> {b : (a,sp,b)}
	spIn  map[dict.ID]map[dict.ID]struct{}
	scOut map[dict.ID]map[dict.ID]struct{}
	scIn  map[dict.ID]map[dict.ID]struct{}

	domOf     map[dict.ID][]dict.ID // A -> {B : (A,dom,B)}
	rangeOf   map[dict.ID][]dict.ID
	typeByObj map[dict.ID][]dict.ID // class -> {x : (x,type,class)}
}

func newParShard() parShard {
	return parShard{
		byPred:    make(map[dict.ID][]dict.Triple3),
		spOut:     make(map[dict.ID]map[dict.ID]struct{}),
		spIn:      make(map[dict.ID]map[dict.ID]struct{}),
		scOut:     make(map[dict.ID]map[dict.ID]struct{}),
		scIn:      make(map[dict.ID]map[dict.ID]struct{}),
		domOf:     make(map[dict.ID][]dict.ID),
		rangeOf:   make(map[dict.ID][]dict.ID),
		typeByObj: make(map[dict.ID][]dict.ID),
	}
}

// parWorker is the per-goroutine firing state, reused across rounds.
type parWorker struct {
	// local memoizes every distinct conclusion this worker emitted in
	// the current round (known or novel): re-derivations cost one
	// private map probe, and each novel conclusion enters its out
	// buffer exactly once.
	local map[dict.Triple3]struct{}
	// out buffers novel conclusions routed per dedup shard.
	out [][]dict.Triple3
	// fired tallies emitted conclusions across rounds; run flushes it
	// to the process-global counter once per saturation (metrics.go).
	fired uint64
}

// parEngine is the sharded, bulk-synchronous variant of the semi-naive
// engine in closure.go. The closure is the unique fixpoint of the
// monotone rule set (2)–(13), so any schedule that fires every rule
// instantiation at least once computes exactly the same triple set as
// the sequential engine; parallelism changes wall-clock time, never
// the result (props_test.go asserts bit-identical closures for worker
// counts 1, 2 and 8).
//
// Work proceeds in rounds over frozen state:
//
//   - The rule-firing indexes (byPred, the sp/sc adjacency maps,
//     domOf/rangeOf, typeByObj) are sharded by predicate ID: each
//     shard owns the index entries for the predicates that hash to
//     it, and only the owner ever writes them. During a firing phase
//     every worker reads any shard freely — the maps are frozen
//     between barriers.
//   - The dedup "seen" sets are sharded separately, by a hash of the
//     whole triple. RDFS closures are heavily skewed toward a handful
//     of predicates (type, sc, sp), so predicate-sharded dedup would
//     serialize on the hot predicate; triple-hash sharding keeps the
//     merge phase balanced regardless of skew.
//   - A round has three barrier-separated phases. Fire: the round's
//     delta is strided across the worker pool; each worker joins its
//     triples against the frozen indexes exactly as engine.process
//     does, dropping conclusions already in a seen shard and routing
//     the survivors to per-(worker, dedup-shard) buffers. Merge: each
//     dedup shard's owner drains the buffers routed to it, discarding
//     duplicates and ill-formed conclusions, and admits the rest into
//     its seen set — these are the next delta. Index: each predicate
//     shard's owner folds the new delta into its rule indexes.
//   - The fixpoint is reached when a merge admits nothing. Because a
//     delta triple is fired only after the whole delta is indexed, a
//     rule instantiation whose antecedents land in the same round is
//     discovered from either antecedent, and one whose antecedents
//     land in different rounds is discovered when the later one
//     fires — the same exactly-once coverage argument as the
//     sequential engine's add-then-process discipline.
//
// The output graph is assembled by finish without a global re-sort:
// each seen shard sorts its own keys for the three permutations in
// parallel, the sorted runs are k-way merged (dict.MergeSortedKeys),
// and the merged permutations are installed directly
// (graph.NewFromIndexes), so the closure arrives with its scan
// indexes already built.
type parEngine struct {
	d  *dict.Dict
	nw int

	// Interned rdfsV constants.
	sp, sc, typ, dom, rng dict.ID

	shards []parShard                  // predicate-sharded rule indexes
	seen   []map[dict.Triple3]struct{} // triple-hash dedup shards

	// Cached owner shards of the five reserved predicates, resolved
	// once so the firing loop does not re-hash them per join.
	spSh, scSh, typSh, domSh, rngSh *parShard

	workers []parWorker
	delta   []dict.Triple3
	aborted atomic.Bool // set by any worker observing ctx cancellation

	// journaling makes run record every delta generation in journal —
	// the admitted triples beyond whatever the engine was seeded with.
	// The delta entry points use it to report exactly the triples a
	// batch added on top of an already-saturated base (delta.go).
	journaling bool
	journal    []dict.Triple3
}

func newParEngine(g *graph.Graph, nw int) *parEngine {
	pe := newParEngineShell(g.Dict(), nw)
	// Round zero's delta: the (well-formed, deduplicated) input plus
	// the unconditional rule (9) loops (p, sp, p) for p ∈ rdfsV.
	g.EachID(func(t dict.Triple3) bool {
		pe.bootstrap(t)
		return true
	})
	for _, p := range [...]dict.ID{pe.sp, pe.sc, pe.typ, pe.dom, pe.rng} {
		pe.bootstrap(dict.Triple3{p, pe.sp, p})
	}
	return pe
}

// newParEngineShell builds the sharded engine state — interned
// vocabulary, empty shards, worker pool — without bootstrapping any
// input. newParEngine seeds the full input as round zero;
// parDeltaRDFSCl instead seeds a saturated base unqueued and
// bootstraps only the inserted batch.
func newParEngineShell(d *dict.Dict, nw int) *parEngine {
	pe := &parEngine{d: d, nw: nw}
	// Rule-produced vocabulary is interned up front in one batch; the
	// rounds themselves never intern, so every ID the saturation can
	// touch is resolvable through d from here on (kind lookups go
	// through d.KindOf — lock-free, and on a scratch overlay they read
	// the frozen base layers without flattening them).
	ids := d.InternMany(rdfs.Vocabulary())
	pe.sp, pe.sc, pe.typ, pe.dom, pe.rng = ids[0], ids[1], ids[2], ids[3], ids[4]

	pe.shards = make([]parShard, nw)
	pe.seen = make([]map[dict.Triple3]struct{}, nw)
	for i := 0; i < nw; i++ {
		pe.shards[i] = newParShard()
		pe.seen[i] = make(map[dict.Triple3]struct{})
	}
	pe.spSh = &pe.shards[pe.predShardOf(pe.sp)]
	pe.scSh = &pe.shards[pe.predShardOf(pe.sc)]
	pe.typSh = &pe.shards[pe.predShardOf(pe.typ)]
	pe.domSh = &pe.shards[pe.predShardOf(pe.dom)]
	pe.rngSh = &pe.shards[pe.predShardOf(pe.rng)]

	pe.workers = make([]parWorker, nw)
	for i := range pe.workers {
		pe.workers[i] = parWorker{
			local: make(map[dict.Triple3]struct{}),
			out:   make([][]dict.Triple3, nw),
		}
	}
	return pe
}

// bootstrap admits an initial triple: validate, dedup, index, queue.
func (pe *parEngine) bootstrap(t dict.Triple3) {
	if !pe.wellFormed(t) {
		return
	}
	s := pe.dedupShardOf(t)
	if _, ok := pe.seen[s][t]; ok {
		return
	}
	pe.seen[s][t] = struct{}{}
	pe.indexInto(&pe.shards[pe.predShardOf(t[1])], t)
	pe.delta = append(pe.delta, t)
}

// wellFormed checks the RDF positional restrictions through the
// dictionary (the sharded counterpart of graph.WellFormedID).
func (pe *parEngine) wellFormed(t dict.Triple3) bool {
	s, p, o := pe.d.KindOf(t[0]), pe.d.KindOf(t[1]), pe.d.KindOf(t[2])
	return (s == term.KindIRI || s == term.KindBlank) &&
		p == term.KindIRI &&
		(o == term.KindIRI || o == term.KindBlank || o == term.KindLiteral)
}

// mix64 is the splitmix64 finalizer; IDs are dense, so shard routing
// needs a real mix to decorrelate from allocation order.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (pe *parEngine) predShardOf(p dict.ID) int {
	return int(mix64(uint64(p)) % uint64(pe.nw))
}

func (pe *parEngine) dedupShardOf(t dict.Triple3) int {
	h := mix64(uint64(t[0])*0x9e3779b97f4a7c15 ^
		uint64(t[1])*0xc2b2ae3d27d4eb4f ^
		uint64(t[2])*0x165667b19e3779f9)
	return int(h % uint64(pe.nw))
}

// byPredOf resolves the byPred entry for an arbitrary predicate
// through its owning shard.
func (pe *parEngine) byPredOf(p dict.ID) []dict.Triple3 {
	return pe.shards[pe.predShardOf(p)].byPred[p]
}

// indexInto folds a triple into a shard's rule indexes (the sharded
// counterpart of engine.add's index maintenance).
func (pe *parEngine) indexInto(sh *parShard, t dict.Triple3) {
	sh.byPred[t[1]] = append(sh.byPred[t[1]], t)
	switch t[1] {
	case pe.sp:
		addEdge(sh.spOut, t[0], t[2])
		addEdge(sh.spIn, t[2], t[0])
	case pe.sc:
		addEdge(sh.scOut, t[0], t[2])
		addEdge(sh.scIn, t[2], t[0])
	case pe.dom:
		sh.domOf[t[0]] = append(sh.domOf[t[0]], t[2])
	case pe.rng:
		sh.rangeOf[t[0]] = append(sh.rangeOf[t[0]], t[2])
	case pe.typ:
		sh.typeByObj[t[2]] = append(sh.typeByObj[t[2]], t[0])
	}
}

// run drives rounds to the fixpoint.
func (pe *parEngine) run(ctx context.Context) error {
	var rounds, admitted uint64
	defer func() {
		bspRounds.Add(rounds)
		triplesDerived.Add(admitted)
		var fired uint64
		for i := range pe.workers {
			fired += pe.workers[i].fired
			pe.workers[i].fired = 0
		}
		ruleFirings.Add(fired)
	}()
	done := ctx.Done()
	for len(pe.delta) > 0 {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		rounds++
		admitted += uint64(len(pe.delta))
		if pe.journaling {
			// Each generation passes through pe.delta exactly once, so
			// journaling here records every admitted triple exactly once
			// (the bootstrap batch included).
			pe.journal = append(pe.journal, pe.delta...)
		}
		pe.fireRound(done)
		if pe.aborted.Load() {
			return ctx.Err()
		}
		pe.delta = pe.mergeRound()
	}
	return nil
}

// parallelDo runs f(0..n-1) on n goroutines and waits for all of them.
func parallelDo(n int, f func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// fireRound strides the current delta across the worker pool and fires
// every rule with each delta triple as an antecedent against the
// frozen indexes. Workers poll ctx periodically (both per triple and
// inside heavy join fan-outs, via the emit counter) and raise the
// shared abort flag on cancellation.
func (pe *parEngine) fireRound(done <-chan struct{}) {
	delta := pe.delta
	parallelDo(pe.nw, func(w int) {
		wk := &pe.workers[w]
		clear(wk.local)
		for s := range wk.out {
			wk.out[s] = wk.out[s][:0]
		}
		emits := 0
		emit := func(c dict.Triple3) {
			if emits++; emits&0x1fff == 0 {
				if done != nil && pollDone(done) {
					pe.aborted.Store(true)
				}
				if pe.aborted.Load() {
					return
				}
			}
			// Probe the worker-private memo first: re-derivations of
			// the same conclusion (the overwhelmingly common case in
			// transitive workloads) cost one probe of a local map,
			// mirroring the sequential engine's single AddID presence
			// check, and skip both the shard hash and the shared seen
			// probe entirely.
			if _, ok := wk.local[c]; ok {
				return
			}
			wk.local[c] = struct{}{}
			s := pe.dedupShardOf(c)
			if _, ok := pe.seen[s][c]; ok {
				return
			}
			wk.out[s] = append(wk.out[s], c)
		}
		for n, i := 0, w; i < len(delta); n, i = n+1, i+pe.nw {
			if done != nil && n&0xff == 0 && pollDone(done) {
				pe.aborted.Store(true)
			}
			if pe.aborted.Load() {
				return
			}
			pe.fire(delta[i], emit)
		}
		wk.fired += uint64(emits)
	})
}

func pollDone(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// mergeRound dedups the round's conclusions into the seen shards
// (phase owned by dedup-shard hash) and folds the admitted triples
// into the rule indexes (phase owned by predicate hash), returning the
// next delta. The merge phase buckets each admitted triple by its
// predicate shard as it admits it, so the index phase is O(|delta|)
// total rather than every owner rescanning the whole delta.
func (pe *parEngine) mergeRound() []dict.Triple3 {
	novel := make([][]dict.Triple3, pe.nw)    // per dedup shard
	routed := make([][][]dict.Triple3, pe.nw) // [dedup shard][pred shard]
	parallelDo(pe.nw, func(s int) {
		seen := pe.seen[s]
		byPs := make([][]dict.Triple3, pe.nw)
		var out []dict.Triple3
		for w := range pe.workers {
			for _, c := range pe.workers[w].out[s] {
				if _, ok := seen[c]; ok {
					continue // duplicate across workers
				}
				if !pe.wellFormed(c) {
					continue
				}
				seen[c] = struct{}{}
				out = append(out, c)
				ps := pe.predShardOf(c[1])
				byPs[ps] = append(byPs[ps], c)
			}
		}
		novel[s] = out
		routed[s] = byPs
	})
	parallelDo(pe.nw, func(ps int) {
		sh := &pe.shards[ps]
		for s := range routed {
			for _, c := range routed[s][ps] {
				pe.indexInto(sh, c)
			}
		}
	})
	total := 0
	for _, lst := range novel {
		total += len(lst)
	}
	out := make([]dict.Triple3, 0, total)
	for _, lst := range novel {
		out = append(out, lst...)
	}
	return out
}

// fire is engine.process against the sharded indexes: it fires every
// rule that has t as one of its antecedents. Comments reference the
// paper's rule numbers; see engine.process for the coverage argument.
func (pe *parEngine) fire(t dict.Triple3, emit func(dict.Triple3)) {
	s, p, o := t[0], t[1], t[2]
	// Rule (8): (X,A,Y) ⊢ (A,sp,A).
	emit(dict.Triple3{p, pe.sp, p})
	// Rule (3): (A,sp,B), (X,A,Y) ⊢ (X,B,Y), for the new (X,A,Y) = t.
	for b := range pe.spSh.spOut[p] {
		if pe.d.KindOf(b) == term.KindIRI {
			emit(dict.Triple3{s, b, o})
		}
	}
	// Rules (6)/(7) with t as the body triple (X,C,Y).
	for a := range pe.spSh.spOut[p] {
		for _, b := range pe.domSh.domOf[a] {
			emit(dict.Triple3{s, pe.typ, b})
		}
		for _, b := range pe.rngSh.rangeOf[a] {
			emit(dict.Triple3{o, pe.typ, b})
		}
	}

	switch p {
	case pe.sp:
		a, b := s, o
		// Rule (2): transitivity, joining on both sides.
		for c := range pe.spSh.spOut[b] {
			emit(dict.Triple3{a, pe.sp, c})
		}
		for z := range pe.spSh.spIn[a] {
			emit(dict.Triple3{z, pe.sp, b})
		}
		// Rule (11): reflexivity of both endpoints.
		emit(dict.Triple3{a, pe.sp, a})
		emit(dict.Triple3{b, pe.sp, b})
		// Rule (3) with t as the (A,sp,B) antecedent.
		if pe.d.KindOf(b) == term.KindIRI {
			for _, body := range pe.byPredOf(a) {
				emit(dict.Triple3{body[0], b, body[2]})
			}
		}
		// Rules (6)/(7) with t as the (C,sp,A) antecedent.
		for _, cls := range pe.domSh.domOf[b] {
			for _, body := range pe.byPredOf(a) {
				emit(dict.Triple3{body[0], pe.typ, cls})
			}
		}
		for _, cls := range pe.rngSh.rangeOf[b] {
			for _, body := range pe.byPredOf(a) {
				emit(dict.Triple3{body[2], pe.typ, cls})
			}
		}
	case pe.sc:
		a, b := s, o
		// Rule (4): transitivity.
		for c := range pe.scSh.scOut[b] {
			emit(dict.Triple3{a, pe.sc, c})
		}
		for z := range pe.scSh.scIn[a] {
			emit(dict.Triple3{z, pe.sc, b})
		}
		// Rule (13): reflexivity of both endpoints.
		emit(dict.Triple3{a, pe.sc, a})
		emit(dict.Triple3{b, pe.sc, b})
		// Rule (5) with t as the (A,sc,B) antecedent.
		for _, x := range pe.typSh.typeByObj[a] {
			emit(dict.Triple3{x, pe.typ, b})
		}
	case pe.dom:
		// Rule (10) and rule (12).
		emit(dict.Triple3{s, pe.sp, s})
		emit(dict.Triple3{o, pe.sc, o})
		pe.fireDomRange(s, o, true, emit)
	case pe.rng:
		emit(dict.Triple3{s, pe.sp, s})
		emit(dict.Triple3{o, pe.sc, o})
		pe.fireDomRange(s, o, false, emit)
	case pe.typ:
		x, a := s, o
		// Rule (5) with t as the (X,type,A) antecedent.
		for b := range pe.scSh.scOut[a] {
			emit(dict.Triple3{x, pe.typ, b})
		}
		// Rule (12).
		emit(dict.Triple3{a, pe.sc, a})
	}
}

// fireDomRange fires rule (6) (dom) or (7) (range) for a newly added
// (A, dom/range, B): for every C with (C,sp,A) and every body (X,C,Y),
// emit the typing conclusion (see engine.fireDomRange).
func (pe *parEngine) fireDomRange(a, b dict.ID, isDom bool, emit func(dict.Triple3)) {
	for c := range pe.spSh.spIn[a] {
		for _, body := range pe.byPredOf(c) {
			if isDom {
				emit(dict.Triple3{body[0], pe.typ, b})
			} else {
				emit(dict.Triple3{body[2], pe.typ, b})
			}
		}
	}
}

// finish assembles the output graph from the seen shards: every shard
// sorts its keys for the three permutations in parallel, the sorted
// runs are merged per order, and the merged permutations are installed
// directly — no global re-sort, and the closure is returned with its
// scan indexes already built.
func (pe *parEngine) finish() *graph.Graph {
	var runs [3][][]dict.Triple3
	for o := range runs {
		runs[o] = make([][]dict.Triple3, pe.nw)
	}
	parallelDo(pe.nw, func(s int) {
		set := pe.seen[s]
		for o := 0; o < 3; o++ {
			ord := dict.Order(o)
			keys := make([]dict.Triple3, 0, len(set))
			for t := range set {
				keys = append(keys, dict.Permute(t, ord))
			}
			dict.SortIndex(keys)
			runs[o][s] = keys
		}
	})
	var idx [3][]dict.Triple3
	parallelDo(3, func(o int) {
		idx[o] = dict.MergeSortedKeys(runs[o])
	})
	return graph.NewFromIndexes(pe.d, idx[dict.SPO], idx[dict.POS], idx[dict.OSP])
}
