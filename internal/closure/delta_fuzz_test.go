package closure

import (
	"context"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// FuzzDeltaClosure is the differential fuzz target for incremental
// maintenance: arbitrary bytes decode into a random graph split into a
// base and an insert batch, and the delta-maintained closure of the
// saturated base must equal the from-scratch closure of the union —
// for the sequential engine, the parallel engine, and the cl-level
// entry points (which also exercise the non-ground fallback whenever
// the decoded terms include blanks).
//
// Input layout: data[0] picks the base/batch split point, data[1] the
// worker count, and every following 3-byte group is one triple whose
// positions index a small term vocabulary (ill-formed combinations are
// rejected by graph.Add, exactly as in production ingestion).
func FuzzDeltaClosure(f *testing.F) {
	f.Add([]byte("\x05\x03abcdefghijklmnopqr"))
	f.Add([]byte("\x00\x07ADGJMPSVY\x01\x02\x03"))
	f.Add([]byte("\xff\x01aaabbbcccdddeeefff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		terms := []term.Term{
			term.NewIRI("urn:a"), term.NewIRI("urn:b"), term.NewIRI("urn:c"),
			term.NewIRI("urn:p"), term.NewIRI("urn:q"),
			rdfs.SubClassOf, rdfs.SubPropertyOf, rdfs.Type, rdfs.Domain, rdfs.Range,
			term.NewBlank("x"), term.NewBlank("y"),
			term.NewLiteral("lit"),
		}
		var ts []graph.Triple
		for i := 2; i+2 < len(data) && len(ts) < 40; i += 3 {
			ts = append(ts, graph.T(
				terms[int(data[i])%len(terms)],
				terms[int(data[i+1])%len(terms)],
				terms[int(data[i+2])%len(terms)],
			))
		}
		k := int(data[0]) % (len(ts) + 1)
		workers := 1 + int(data[1])%8

		baseG := graph.New()
		for _, tr := range ts[:k] {
			baseG.Add(tr)
		}
		batchG := graph.NewWithDict(baseG.Dict())
		for _, tr := range ts[k:] {
			batchG.Add(tr)
		}
		union := graph.Union(baseG, batchG)
		ctx := context.Background()

		want := RDFSCl(union)
		baseCl := RDFSCl(baseG)
		if got := DeltaRDFSCl(baseCl, batchG); !got.Equal(want) {
			t.Fatalf("sequential delta != from-scratch closure\nbase:\n%v\nbatch:\n%v\nonly-want: %v\nonly-got: %v",
				baseG, batchG, want.Minus(got), got.Minus(want))
		}
		if got, err := parDeltaRDFSCl(ctx, baseCl, batchG, max(workers, 2)); err != nil {
			t.Fatalf("parDeltaRDFSCl: %v", err)
		} else if !got.Equal(want) {
			t.Fatalf("parallel delta (w=%d) != from-scratch closure\nonly-want: %v\nonly-got: %v",
				workers, want.Minus(got), got.Minus(want))
		}

		wantCl := Cl(union)
		if got, err := DeltaClWorkers(ctx, Cl(baseG), batchG, workers); err != nil {
			t.Fatalf("DeltaClWorkers: %v", err)
		} else if !got.Equal(wantCl) {
			t.Fatalf("DeltaCl (w=%d) != Cl of union\nonly-want: %v\nonly-got: %v",
				workers, wantCl.Minus(got), got.Minus(wantCl))
		}
	})
}
