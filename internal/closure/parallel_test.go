package closure

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// workerCounts are the parallelism degrees the equivalence suite runs
// at (the acceptance matrix of the parallel engine).
var workerCounts = []int{1, 2, 8}

// randVocabAsDataGraph is randClosureGraph with reserved vocabulary
// also appearing in subject/object position, which pushes Membership
// onto its materialized-closure fallback and exercises the saturation
// corner cases (sp edges into dom/range, reflexive reserved loops).
func randVocabAsDataGraph(rng *rand.Rand, n int) *graph.Graph {
	names := []term.Term{
		iri("a"), iri("b"), iri("c"), blk("x"), blk("y"),
		rdfs.Domain, rdfs.Range, rdfs.Type,
	}
	preds := []term.Term{
		iri("p"), iri("q"), rdfs.SubClassOf, rdfs.SubPropertyOf,
		rdfs.Type, rdfs.Domain, rdfs.Range,
	}
	g := graph.New()
	for k := 0; k < n; k++ {
		g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
	}
	return g
}

// TestParallelClosurePublicAPI drives RDFSClWorkers above the
// small-input cutoff, so the real dispatch path (including the
// finish-time permutation install) is covered, and cross-checks the
// installed indexes against fresh range scans.
func TestParallelClosurePublicAPI(t *testing.T) {
	g := scChain(96) // 95 triples… too small; widen below
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 300; i++ {
		g.Add(graph.T(
			iri(fmt.Sprintf("s%d", rng.Intn(60))),
			iri(fmt.Sprintf("p%d", rng.Intn(7))),
			iri(fmt.Sprintf("o%d", rng.Intn(60)))))
	}
	g.Add(graph.T(iri("p0"), rdfs.Domain, iri("D")))
	g.Add(graph.T(iri("p1"), rdfs.Range, iri("R")))
	if g.Len() < minParallelTriples {
		t.Fatalf("test graph too small (%d) to cross the parallel cutoff", g.Len())
	}
	want := RDFSCl(g)
	for _, nw := range []int{2, 8} {
		got, err := RDFSClWorkers(context.Background(), g, nw)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("w%d: parallel closure differs: only-seq %v, only-par %v",
				nw, want.Minus(got).Len(), got.Minus(want).Len())
		}
		// The installed permutations must agree with scans over the
		// sequential result: same counts for every pattern shape.
		checkScans(t, want, got)
	}
}

// checkScans compares CountID over all bound/wildcard pattern shapes
// between two graphs expected to be equal, validating installed
// permutations against lazily built ones.
func checkScans(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	probe := func(s, p, o dict.ID) {
		if w, g := want.CountID(s, p, o), got.CountID(s, p, o); w != g {
			t.Fatalf("CountID(%d,%d,%d): sequential %d, parallel %d", s, p, o, w, g)
		}
	}
	n := 0
	want.EachID(func(tr dict.Triple3) bool {
		probe(tr[0], dict.Wildcard, dict.Wildcard)
		probe(dict.Wildcard, tr[1], dict.Wildcard)
		probe(dict.Wildcard, dict.Wildcard, tr[2])
		probe(tr[0], tr[1], dict.Wildcard)
		probe(dict.Wildcard, tr[1], tr[2])
		probe(tr[0], dict.Wildcard, tr[2])
		n++
		return n < 200
	})
}

// TestClosureOrderIndependent asserts the sequential engine's queue
// order is an implementation detail: LIFO (the default), FIFO and a
// seeded shuffle all reach the same fixpoint.
func TestClosureOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for round := 0; round < 40; round++ {
		g := randVocabAsDataGraph(rng, 3+rng.Intn(9))
		want, err := rdfsClSequential(context.Background(), g, lifoOrder, nil)
		if err != nil {
			t.Fatal(err)
		}
		fifo, err := rdfsClSequential(context.Background(), g, fifoOrder, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !fifo.Equal(want) {
			t.Fatalf("round %d: FIFO drain produced a different closure", round)
		}
		for seed := int64(0); seed < 3; seed++ {
			shuf, err := rdfsClSequential(context.Background(), g, shuffledOrder, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if !shuf.Equal(want) {
				t.Fatalf("round %d seed %d: shuffled drain produced a different closure", round, seed)
			}
		}
	}
}

// TestParallelClWorkers covers the skolemize/saturate/unskolemize path
// under parallelism: ClWorkers must equal Cl for every worker count,
// on graphs with blanks (full round trip) and on ground graphs (the
// direct path that skips skolemization and keeps installed indexes).
func TestParallelClWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for round := 0; round < 25; round++ {
		g := randClosureGraph(rng, 4+rng.Intn(8))
		for _, in := range []*graph.Graph{g, g.GroundPart()} {
			want := Cl(in)
			for _, nw := range workerCounts {
				got, err := ClWorkers(context.Background(), in, nw)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("round %d w%d (ground=%v): ClWorkers differs from Cl",
						round, nw, in.IsGround())
				}
			}
		}
	}
}
