// Package core implements the minimal representations of Section 3.2 and
// the normal forms of Section 3.3 of the paper: leanness (Definition
// 3.7), the core of an RDF graph (Theorem 3.10), the normal form
// nf(G) = core(cl(G)) (Definition 3.18), and the unique minimal
// representation for the restricted graph class of Theorem 3.16.
package core

import (
	"context"
	"fmt"

	"semwebdb/internal/canon"
	"semwebdb/internal/closure"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/reduction"
	"semwebdb/internal/term"
)

// IsLean reports whether G is lean (Definition 3.7): no map μ sends G to
// a proper subgraph of itself.
//
// The implementation uses the single-triple-deletion characterization:
// G is non-lean iff for some non-ground triple t ∈ G there is a map
// G → G∖{t}. (If μ(G) ⊊ G then some t ∈ G∖μ(G), and μ is a map into
// G∖{t}; conversely any such map has a proper image. Ground triples are
// fixed points of every map, so only non-ground t need be tried.) The
// problem is coNP-complete (Theorem 3.12), so exponential behaviour on
// adversarial inputs is expected.
func IsLean(g *graph.Graph) bool {
	lean, _ := IsLeanCtx(context.Background(), g)
	return lean
}

// IsLeanCtx is IsLean under a context: the underlying map searches poll
// ctx and abort with its error when it is cancelled.
func IsLeanCtx(ctx context.Context, g *graph.Graph) (bool, error) {
	_, proper, err := findProperRetraction(ctx, g)
	if err != nil {
		return false, err
	}
	return !proper, nil
}

// findProperRetraction returns a map μ with μ(G) ⊊ G, if one exists.
func findProperRetraction(ctx context.Context, g *graph.Graph) (graph.Map, bool, error) {
	for _, t := range g.NonGroundTriples() {
		mu, ok, err := hom.FindMapCtx(ctx, g, g.Without(t))
		if err != nil {
			return nil, false, err
		}
		if ok {
			return mu, true, nil
		}
	}
	return nil, false, nil
}

// Core returns core(G): the unique (up to isomorphism) lean subgraph of G
// that is an instance of G (Theorem 3.10). The second return value is the
// composed retraction map μ with μ(G) = core(G).
//
// The algorithm iteratively retracts: while a map μ with μ(G) ⊊ G exists,
// replace G by μ(G). Each step removes at least one triple, so at most
// |G| homomorphism searches of searches happen; each search is
// NP-complete in general (Theorem 3.12 makes this unavoidable).
func Core(g *graph.Graph) (*graph.Graph, graph.Map) {
	c, mu, _ := CoreCtx(context.Background(), g)
	return c, mu
}

// CoreCtx is Core under a context: each retraction's map search polls
// ctx and the computation aborts with its error when it is cancelled.
func CoreCtx(ctx context.Context, g *graph.Graph) (*graph.Graph, graph.Map, error) {
	cur := g.Clone()
	total := make(graph.Map)
	for {
		mu, proper, err := findProperRetraction(ctx, cur)
		if err != nil {
			return nil, nil, err
		}
		if !proper {
			return cur, total, nil
		}
		cur = mu.Apply(cur)
		total = total.Compose(mu)
	}
}

// CoreGraph is Core without the witness map.
func CoreGraph(g *graph.Graph) *graph.Graph {
	c, _ := Core(g)
	return c
}

// IsCoreOf reports whether h ≅ core(g). Deciding this is DP-complete
// (Theorem 3.12(2)).
func IsCoreOf(h, g *graph.Graph) bool {
	return hom.Isomorphic(h, CoreGraph(g))
}

// NormalForm returns nf(G) = core(cl(G)) (Definition 3.18). By Theorem
// 3.19 it is unique up to isomorphism and syntax independent:
// G ≡ H iff nf(G) ≅ nf(H).
func NormalForm(g *graph.Graph) *graph.Graph {
	nf, _ := NormalFormCtx(context.Background(), g)
	return nf
}

// NormalFormCtx is NormalForm under a context: both the closure
// saturation and the core retraction searches poll ctx and abort with
// its error when it is cancelled.
func NormalFormCtx(ctx context.Context, g *graph.Graph) (*graph.Graph, error) {
	return NormalFormWorkers(ctx, g, 1)
}

// NormalFormWorkers is NormalFormCtx with an explicit parallelism
// degree for the closure saturation (see closure.ClWorkers). The core
// retraction is unchanged — its map searches are inherently sequential
// backtracking — and so is the result.
func NormalFormWorkers(ctx context.Context, g *graph.Graph, workers int) (*graph.Graph, error) {
	cl, err := closure.ClWorkers(ctx, g, workers)
	if err != nil {
		return nil, err
	}
	nf, _, err := CoreCtx(ctx, cl)
	return nf, err
}

// SameNormalForm reports nf(G) ≅ nf(H), which by Theorem 3.19 decides
// G ≡ H. (Deciding whether a given graph is the normal form of another is
// DP-complete, Theorem 3.20.)
func SameNormalForm(g, h *graph.Graph) bool {
	return hom.Isomorphic(NormalForm(g), NormalForm(h))
}

// Fingerprint returns a total equivalence certificate for G: the
// canonical serialization of nf(G). By Theorem 3.19 and the correctness
// of canonical labeling, G ≡ H iff Fingerprint(G) == Fingerprint(H), so
// semantic equivalence of RDF databases reduces to string comparison.
func Fingerprint(g *graph.Graph) string {
	fp, _ := FingerprintCtx(context.Background(), g)
	return fp
}

// FingerprintCtx is Fingerprint under a context (see NormalFormCtx).
func FingerprintCtx(ctx context.Context, g *graph.Graph) (string, error) {
	return FingerprintWorkers(ctx, g, 1)
}

// FingerprintWorkers is FingerprintCtx with an explicit parallelism
// degree for the closure saturation (see NormalFormWorkers).
func FingerprintWorkers(ctx context.Context, g *graph.Graph, workers int) (string, error) {
	nf, err := NormalFormWorkers(ctx, g, workers)
	if err != nil {
		return "", err
	}
	return canon.String(nf), nil
}

// ErrNotInRestrictedClass is returned by MinimalRepresentation when the
// graph falls outside the class of Theorem 3.16.
type ErrNotInRestrictedClass struct{ Reason string }

func (e *ErrNotInRestrictedClass) Error() string {
	return fmt.Sprintf("core: graph outside the Theorem 3.16 class: %s", e.Reason)
}

// CheckRestrictedClass verifies the preconditions of Theorem 3.16: no
// reserved vocabulary in subject or object position, and acyclicity of
// the sp and sc subgraphs (ignoring reflexive loops, which the theorem's
// proof treats separately).
func CheckRestrictedClass(g *graph.Graph) error {
	if rdfs.MentionsVocabularyOutsidePredicate(g) {
		return &ErrNotInRestrictedClass{Reason: "reserved vocabulary occurs in subject or object position"}
	}
	sc := subgraphDigraph(g, rdfs.SubClassOf).WithoutSelfLoops()
	if !sc.IsAcyclic() {
		return &ErrNotInRestrictedClass{Reason: "subclass subgraph has a cycle"}
	}
	sp := subgraphDigraph(g, rdfs.SubPropertyOf).WithoutSelfLoops()
	if !sp.IsAcyclic() {
		return &ErrNotInRestrictedClass{Reason: "subproperty subgraph has a cycle"}
	}
	return nil
}

// subgraphDigraph extracts the digraph of p-labelled triples of g.
func subgraphDigraph(g *graph.Graph, p term.Term) *reduction.Digraph {
	d := reduction.NewDigraph()
	for _, t := range g.WithPredicate(p) {
		d.AddEdge(t.S, t.O)
	}
	return d
}

// MinimalRepresentation computes the unique minimal representation of G
// (Definition 3.13, Theorem 3.16): the minimal (w.r.t. number of triples)
// graph equivalent to G and contained in G. The graph must belong to the
// restricted class; otherwise an error is returned (Examples 3.14 and
// 3.15 show uniqueness fails outside it).
//
// The construction follows the five-case analysis of the theorem's proof:
//
//  1. sc triples: keep exactly the transitive reduction of the sc DAG;
//  2. sp triples: likewise;
//  3. dom/range triples: always kept (nothing derives them here);
//  4. plain triples (a,b,c): dropped iff G holds a witness (a,d,c) with
//     d a strict sp-descendant of b (rule (3) re-derives the triple);
//  5. type triples (x,type,c): dropped iff re-derivable by rule (5) from
//     a retained lower type assertion or by rules (6)/(7) from dom/range;
//     reflexive (a,sc,a)/(a,sp,a) loops are dropped iff rules (8)–(13)
//     re-derive them.
func MinimalRepresentation(g *graph.Graph) (*graph.Graph, error) {
	if err := CheckRestrictedClass(g); err != nil {
		return nil, err
	}

	spDag := subgraphDigraph(g, rdfs.SubPropertyOf).WithoutSelfLoops()
	scDag := subgraphDigraph(g, rdfs.SubClassOf).WithoutSelfLoops()
	spRed := spDag.TransitiveReduction()
	scRed := scDag.TransitiveReduction()

	out := graph.New()
	m := &minimizer{g: g, spDag: spDag, scDag: scDag}

	// spReach reports d sp-reaches b through a path of length ≥ 1.
	spReach := func(d, b term.Term) bool { return spDag.Reaches(d, b) }
	scReach := func(d, b term.Term) bool { return scDag.Reaches(d, b) }

	// typeDerivableFromDomRange reports whether (x, type, c) follows from
	// rules (6)/(7) together with sc-lifting (rule (5)) from the dom and
	// range triples of G (which are all retained) and the plain triples
	// (whose sp-minimal witnesses are all retained).
	doms := g.WithPredicate(rdfs.Domain)
	ranges := g.WithPredicate(rdfs.Range)
	typeDerivableFromDomRange := func(x, c term.Term) bool {
		ok := false
		g.Each(func(t graph.Triple) bool {
			if rdfs.IsVocabulary(t.P) {
				return true
			}
			if t.S == x {
				for _, dm := range doms {
					if (t.P == dm.S || spReach(t.P, dm.S)) &&
						(dm.O == c || scReach(dm.O, c)) {
						ok = true
						return false
					}
				}
			}
			if t.O == x {
				for _, rg := range ranges {
					if (t.P == rg.S || spReach(t.P, rg.S)) &&
						(rg.O == c || scReach(rg.O, c)) {
						ok = true
						return false
					}
				}
			}
			return true
		})
		return ok
	}

	for _, t := range g.Triples() {
		switch t.P {
		case rdfs.SubClassOf:
			if t.S == t.O {
				// Reflexive loop: drop iff rules (12)/(13) re-derive it
				// from the rest of G.
				if !m.reflexiveScDerivable(t.S) {
					out.MustAdd(t)
				}
				continue
			}
			if scRed.HasEdge(t.S, t.O) {
				out.MustAdd(t)
			}
		case rdfs.SubPropertyOf:
			if t.S == t.O {
				if !m.reflexiveSpDerivable(t.S) {
					out.MustAdd(t)
				}
				continue
			}
			if spRed.HasEdge(t.S, t.O) {
				out.MustAdd(t)
			}
		case rdfs.Domain, rdfs.Range:
			out.MustAdd(t)
		case rdfs.Type:
			x, c := t.S, t.O
			// Derivable by rule (5) from a strictly lower asserted type?
			lower := false
			for _, u := range g.WithPredicate(rdfs.Type) {
				if u.S == x && u.O != c && scReach(u.O, c) {
					lower = true
					break
				}
			}
			if lower || typeDerivableFromDomRange(x, c) {
				continue
			}
			out.MustAdd(t)
		default:
			// Plain triple: redundant iff a strict sp-descendant witness
			// exists (rule (3)).
			redundant := false
			for _, u := range g.Triples() {
				if u.S == t.S && u.O == t.O && u.P != t.P &&
					!rdfs.IsVocabulary(u.P) && spReach(u.P, t.P) {
					redundant = true
					break
				}
			}
			if !redundant {
				out.MustAdd(t)
			}
		}
	}
	return out, nil
}

// minimizer holds the shared reachability state for the reflexive-loop
// case analysis of Theorem 3.16's proof.
type minimizer struct {
	g     *graph.Graph
	spDag *reduction.Digraph
	scDag *reduction.Digraph
}

// reflexiveSpDerivable reports whether (a, sp, a) follows by rules
// (8)–(11) from the triples of g other than the loop itself. Rule (8)
// applies to derived triples as well, so a is also "used as a predicate"
// when some base predicate sp-reaches a (rule (3) lifts the base triple
// to predicate a first).
func (m *minimizer) reflexiveSpDerivable(a term.Term) bool {
	if rdfs.IsVocabulary(a) { // rule (9)
		return true
	}
	found := false
	loop := graph.T(a, rdfs.SubPropertyOf, a)
	m.g.Each(func(t graph.Triple) bool {
		if t == loop {
			return true
		}
		if t.P == a { // rule (8)
			found = true
			return false
		}
		if !rdfs.IsVocabulary(t.P) && a.CanPredicate() && m.spDag.Reaches(t.P, a) {
			// rule (3) then rule (8) on the derived triple
			found = true
			return false
		}
		if (t.P == rdfs.Domain || t.P == rdfs.Range) && t.S == a { // rule (10)
			found = true
			return false
		}
		if t.P == rdfs.SubPropertyOf && t.S != t.O && (t.S == a || t.O == a) { // rule (11)
			found = true
			return false
		}
		return true
	})
	return found
}

// reflexiveScDerivable reports whether (a, sc, a) follows by rules
// (12)/(13) from g without the loop itself. Rule (12) also applies to
// *derived* type triples (rules (5)/(6)/(7)), none of which depend on the
// loop being removed, so derived type objects are checked too.
func (m *minimizer) reflexiveScDerivable(a term.Term) bool {
	found := false
	loop := graph.T(a, rdfs.SubClassOf, a)
	doms := m.g.WithPredicate(rdfs.Domain)
	ranges := m.g.WithPredicate(rdfs.Range)
	m.g.Each(func(t graph.Triple) bool {
		if t == loop {
			return true
		}
		if (t.P == rdfs.Domain || t.P == rdfs.Range || t.P == rdfs.Type) && t.O == a { // rule (12)
			found = true
			return false
		}
		if t.P == rdfs.SubClassOf && t.S != t.O && (t.S == a || t.O == a) { // rule (13)
			found = true
			return false
		}
		// Derived (x, type, a) via rule (5): an asserted type object
		// sc-reaching a.
		if t.P == rdfs.Type && m.scDag.Reaches(t.O, a) {
			found = true
			return false
		}
		// Derived (x, type, a) via rules (6)/(7): a dom/range triple
		// whose class sc-reaches a (or is a), applied to the plain
		// triple t.
		if !rdfs.IsVocabulary(t.P) {
			for _, dm := range doms {
				if (dm.O == a || m.scDag.Reaches(dm.O, a)) &&
					(t.P == dm.S || m.spDag.Reaches(t.P, dm.S)) {
					found = true
					return false
				}
			}
			for _, rg := range ranges {
				if (rg.O == a || m.scDag.Reaches(rg.O, a)) &&
					(t.P == rg.S || m.spDag.Reaches(t.P, rg.S)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
