package core

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/closure"
	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

// example38G1 is G1 of Example 3.8: a --p--> X, a --p--> Y (not lean).
func example38G1() *graph.Graph {
	return graph.New(
		graph.T(iri("a"), iri("p"), blk("X")),
		graph.T(iri("a"), iri("p"), blk("Y")),
	)
}

// example38G2 is G2 of Example 3.8: a --p--> X --q--> Y --r--> b plus
// a --p--> Y? No: G2 is a --p--> X, a --p--> Y, X --q--> Y? The paper
// draws: a -p-> X, a -p-> Y, X -q-> (something), Y -r-> b; the essential
// point is that no proper self-map exists. We use the faithful reading:
// a -p-> X, X -q-> Y, Y -r-> b... kept lean by distinct predicates.
func example38G2() *graph.Graph {
	return graph.New(
		graph.T(iri("a"), iri("p"), blk("X")),
		graph.T(iri("a"), iri("p"), blk("Y")),
		graph.T(blk("X"), iri("q"), blk("Y")),
		graph.T(blk("Y"), iri("r"), iri("b")),
	)
}

func TestExample38Leanness(t *testing.T) {
	if IsLean(example38G1()) {
		t.Fatal("Example 3.8: G1 must not be lean")
	}
	if !IsLean(example38G2()) {
		t.Fatal("Example 3.8: G2 must be lean")
	}
}

func TestCoreOfExample38G1(t *testing.T) {
	c, mu := Core(example38G1())
	if c.Len() != 1 {
		t.Fatalf("core size = %d, want 1", c.Len())
	}
	if !IsLean(c) {
		t.Fatal("core not lean")
	}
	// The witness retraction must carry G onto the core.
	if !mu.Apply(example38G1()).Equal(c) {
		t.Fatal("retraction witness wrong")
	}
}

func TestGroundGraphsAreLean(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("b"), iri("p"), iri("c")),
	)
	if !IsLean(g) {
		t.Fatal("ground graphs are always lean")
	}
	c, _ := Core(g)
	if !c.Equal(g) {
		t.Fatal("core of ground graph must be itself")
	}
}

func TestCoreEquivalentToOriginal(t *testing.T) {
	g := example38G1()
	c, _ := Core(g)
	if !entail.Equivalent(g, c) {
		t.Fatal("G ≢ core(G)")
	}
}

func TestCoreIdempotent(t *testing.T) {
	g := example38G1()
	c1, _ := Core(g)
	c2, _ := Core(c1)
	if !c1.Equal(c2) {
		t.Fatal("core not idempotent")
	}
}

func TestCoreUniqueUpToIso(t *testing.T) {
	// Build graphs with layered redundancy; cores computed from shuffled
	// triple orders must be isomorphic (Theorem 3.10).
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 20; round++ {
		g := graph.New(
			graph.T(iri("a"), iri("p"), iri("b")),
			graph.T(iri("a"), iri("p"), blk("X")),
			graph.T(blk("X"), iri("q"), blk("Y")),
			graph.T(iri("a"), iri("q"), blk("Z")),
		)
		// Add random redundant blank copies of ground triples.
		for k := 0; k < rng.Intn(4); k++ {
			g.Add(graph.T(blk(fmt.Sprintf("R%d", k)), iri("p"), iri("b")))
		}
		c1, _ := Core(g)
		c2, _ := Core(g.Clone())
		if !hom.Isomorphic(c1, c2) {
			t.Fatalf("round %d: cores differ:\n%v\nvs\n%v", round, c1, c2)
		}
		if !IsLean(c1) {
			t.Fatalf("round %d: core not lean", round)
		}
	}
}

func TestIsCoreOf(t *testing.T) {
	g := example38G1()
	single := graph.New(graph.T(iri("a"), iri("p"), blk("W")))
	if !IsCoreOf(single, g) {
		t.Fatal("isomorphic core rejected")
	}
	if IsCoreOf(g, g) {
		t.Fatal("non-lean graph accepted as its own core")
	}
}

func TestTheorem311EquivalenceIffCoreIso(t *testing.T) {
	// Simple graphs: G1 ≡ G2 iff core(G1) ≅ core(G2).
	g1 := graph.New(
		graph.T(iri("a"), iri("p"), blk("X")),
		graph.T(iri("a"), iri("p"), iri("b")),
	)
	g2 := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	if !entail.Equivalent(g1, g2) {
		t.Fatal("setup: g1 ≡ g2 expected")
	}
	c1, _ := Core(g1)
	c2, _ := Core(g2)
	if !hom.Isomorphic(c1, c2) {
		t.Fatal("equivalent graphs with non-isomorphic cores")
	}
	g3 := graph.New(graph.T(iri("a"), iri("q"), iri("b")))
	c3, _ := Core(g3)
	if hom.Isomorphic(c1, c3) {
		t.Fatal("inequivalent graphs with isomorphic cores")
	}
}

func TestExample317NormalForms(t *testing.T) {
	// G: a sc b, b sc c, a sc N, N sc c (N blank). H: a sc b, b sc c,
	// a sc c. G ≡ H; their closures differ, but nf(G) ≅ nf(H).
	a, b, c, n := iri("a"), iri("b"), iri("c"), blk("N")
	G := graph.New(
		graph.T(a, rdfs.SubClassOf, b),
		graph.T(b, rdfs.SubClassOf, c),
		graph.T(a, rdfs.SubClassOf, n),
		graph.T(n, rdfs.SubClassOf, c),
	)
	H := graph.New(
		graph.T(a, rdfs.SubClassOf, b),
		graph.T(b, rdfs.SubClassOf, c),
		graph.T(a, rdfs.SubClassOf, c),
	)
	if !entail.Equivalent(G, H) {
		t.Fatal("Example 3.17: G ≡ H expected")
	}
	clG, clH := closure.Cl(G), closure.Cl(H)
	if hom.Isomorphic(clG, clH) {
		t.Fatal("Example 3.17: closures should NOT be isomorphic")
	}
	if !hom.Isomorphic(NormalForm(G), NormalForm(H)) {
		t.Fatal("Theorem 3.19: nf(G) ≅ nf(H) expected")
	}
	if !SameNormalForm(G, H) {
		t.Fatal("SameNormalForm must agree")
	}
	// The paper notes nf(G) is H's closure-core; specifically nf contains
	// no blank: N is redundant.
	if len(NormalForm(G).BlankNodes()) != 0 {
		t.Fatal("normal form still mentions the redundant blank")
	}
}

func TestNormalFormSyntaxIndependenceNegative(t *testing.T) {
	g := graph.New(graph.T(iri("a"), rdfs.SubClassOf, iri("b")))
	h := graph.New(graph.T(iri("a"), rdfs.SubClassOf, iri("c")))
	if SameNormalForm(g, h) {
		t.Fatal("different graphs with same normal form")
	}
}

func TestMinimalRepresentationTransitiveChain(t *testing.T) {
	// a sc b sc c plus the redundant a sc c: minimal representation drops
	// the transitive edge.
	g := graph.New(
		graph.T(iri("a"), rdfs.SubClassOf, iri("b")),
		graph.T(iri("b"), rdfs.SubClassOf, iri("c")),
		graph.T(iri("a"), rdfs.SubClassOf, iri("c")),
	)
	m, err := MinimalRepresentation(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("minimal representation size = %d, want 2:\n%v", m.Len(), m)
	}
	if m.Has(graph.T(iri("a"), rdfs.SubClassOf, iri("c"))) {
		t.Fatal("transitive edge kept")
	}
	if !entail.Equivalent(g, m) {
		t.Fatal("minimal representation not equivalent")
	}
}

func TestMinimalRepresentationPlainTriples(t *testing.T) {
	// (x,son,y) makes (x,child,y) redundant when son sp child.
	g := graph.New(
		graph.T(iri("son"), rdfs.SubPropertyOf, iri("child")),
		graph.T(iri("x"), iri("son"), iri("y")),
		graph.T(iri("x"), iri("child"), iri("y")),
	)
	m, err := MinimalRepresentation(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Has(graph.T(iri("x"), iri("child"), iri("y"))) {
		t.Fatal("redundant inherited triple kept")
	}
	if !entail.Equivalent(g, m) {
		t.Fatal("not equivalent")
	}
}

func TestMinimalRepresentationTypeTriples(t *testing.T) {
	g := graph.New(
		graph.T(iri("A"), rdfs.SubClassOf, iri("B")),
		graph.T(iri("x"), rdfs.Type, iri("A")),
		graph.T(iri("x"), rdfs.Type, iri("B")), // redundant via rule (5)
		graph.T(iri("p"), rdfs.Domain, iri("C")),
		graph.T(iri("u"), iri("p"), iri("v")),
		graph.T(iri("u"), rdfs.Type, iri("C")), // redundant via rule (6)
	)
	m, err := MinimalRepresentation(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Has(graph.T(iri("x"), rdfs.Type, iri("B"))) {
		t.Fatal("sc-liftable type kept")
	}
	if m.Has(graph.T(iri("u"), rdfs.Type, iri("C"))) {
		t.Fatal("dom-derivable type kept")
	}
	if !entail.Equivalent(g, m) {
		t.Fatal("not equivalent")
	}
}

func TestMinimalRepresentationReflexiveLoops(t *testing.T) {
	g := graph.New(
		graph.T(iri("p"), rdfs.SubPropertyOf, iri("p")), // derivable: p used below
		graph.T(iri("x"), iri("p"), iri("y")),
		graph.T(iri("solo"), rdfs.SubClassOf, iri("solo")), // NOT derivable
	)
	m, err := MinimalRepresentation(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Has(graph.T(iri("p"), rdfs.SubPropertyOf, iri("p"))) {
		t.Fatal("derivable reflexive sp loop kept")
	}
	if !m.Has(graph.T(iri("solo"), rdfs.SubClassOf, iri("solo"))) {
		t.Fatal("non-derivable reflexive sc loop dropped")
	}
	if !entail.Equivalent(g, m) {
		t.Fatal("not equivalent")
	}
}

func TestExample314OutsideRestrictedClassIsCyclic(t *testing.T) {
	// Example 3.14: b and c form an sp 2-cycle, both subproperties of a.
	// Deleting either (b,sp,a) or (c,sp,a) yields two non-isomorphic
	// minimal reductions, so MinimalRepresentation must refuse the
	// (cyclic) graph.
	g := graph.New(
		graph.T(iri("b"), rdfs.SubPropertyOf, iri("c")),
		graph.T(iri("c"), rdfs.SubPropertyOf, iri("b")),
		graph.T(iri("b"), rdfs.SubPropertyOf, iri("a")),
		graph.T(iri("c"), rdfs.SubPropertyOf, iri("a")),
	)
	if _, err := MinimalRepresentation(g); err == nil {
		t.Fatal("cyclic sp graph accepted")
	}
	// And indeed two non-isomorphic minimal representations exist:
	// dropping (b,sp,a) or dropping (c,sp,a) — verify both equivalent.
	m1 := g.Without(graph.T(iri("b"), rdfs.SubPropertyOf, iri("a")))
	m2 := g.Without(graph.T(iri("c"), rdfs.SubPropertyOf, iri("a")))
	if !entail.Equivalent(g, m1) || !entail.Equivalent(g, m2) {
		t.Fatal("Example 3.14 reductions not equivalent")
	}
	if hom.Isomorphic(m1, m2) {
		t.Fatal("Example 3.14: the two reductions must be non-isomorphic")
	}
}

func TestExample315OutsideRestrictedClass(t *testing.T) {
	// G = {(a,sc,b), (type,dom,a), (x,type,a), (x,type,b)} — reserved
	// vocabulary (type) in subject position.
	g := graph.New(
		graph.T(iri("a"), rdfs.SubClassOf, iri("b")),
		graph.T(rdfs.Type, rdfs.Domain, iri("a")),
		graph.T(iri("x"), rdfs.Type, iri("a")),
		graph.T(iri("x"), rdfs.Type, iri("b")),
	)
	if _, err := MinimalRepresentation(g); err == nil {
		t.Fatal("graph with reserved vocabulary in subject position accepted")
	}
	// The paper's two non-isomorphic minimal representations:
	g1 := g.Without(graph.T(iri("x"), rdfs.Type, iri("b")))
	g2 := g.Without(graph.T(iri("x"), rdfs.Type, iri("a")))
	if !entail.Equivalent(g, g1) {
		t.Fatal("G1 of Example 3.15 not equivalent to G")
	}
	if !entail.Equivalent(g, g2) {
		t.Fatal("G2 of Example 3.15 not equivalent to G")
	}
}

func TestMinimalRepresentationAgainstBruteForce(t *testing.T) {
	// On small random graphs in the restricted class, the minimal
	// representation must be a minimum-size equivalent subgraph, and
	// unique at that size.
	rng := rand.New(rand.NewSource(41))
	classes := []term.Term{iri("A"), iri("B"), iri("C")}
	props := []term.Term{iri("p"), iri("q")}
	inds := []term.Term{iri("x"), iri("y")}
	for round := 0; round < 25; round++ {
		g := graph.New()
		for k := 0; k < 6; k++ {
			switch rng.Intn(5) {
			case 0:
				g.Add(graph.T(classes[rng.Intn(3)], rdfs.SubClassOf, classes[rng.Intn(3)]))
			case 1:
				g.Add(graph.T(props[rng.Intn(2)], rdfs.SubPropertyOf, props[rng.Intn(2)]))
			case 2:
				g.Add(graph.T(props[rng.Intn(2)], rdfs.Domain, classes[rng.Intn(3)]))
			case 3:
				g.Add(graph.T(inds[rng.Intn(2)], rdfs.Type, classes[rng.Intn(3)]))
			default:
				g.Add(graph.T(inds[rng.Intn(2)], props[rng.Intn(2)], inds[rng.Intn(2)]))
			}
		}
		m, err := MinimalRepresentation(g)
		if err != nil {
			continue // cyclic rounds are out of scope
		}
		if !entail.Equivalent(g, m) {
			t.Fatalf("round %d: minimal representation not equivalent\nG:\n%v\nM:\n%v", round, g, m)
		}
		// Brute force: find the true minimum size of an equivalent
		// subgraph.
		ts := g.Triples()
		n := len(ts)
		best := n + 1
		for mask := 0; mask < 1<<n; mask++ {
			sub := graph.New()
			bits := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sub.Add(ts[i])
					bits++
				}
			}
			if bits >= best {
				continue
			}
			if entail.Entails(sub, g) { // sub ⊆ g gives the converse
				best = bits
			}
		}
		if m.Len() != best {
			t.Fatalf("round %d: minimal representation has %d triples, brute force found %d\nG:\n%v\nM:\n%v",
				round, m.Len(), best, g, m)
		}
	}
}

func TestCheckRestrictedClass(t *testing.T) {
	ok := graph.New(
		graph.T(iri("a"), rdfs.SubClassOf, iri("b")),
		graph.T(iri("x"), rdfs.Type, iri("a")),
	)
	if err := CheckRestrictedClass(ok); err != nil {
		t.Fatalf("well-behaved graph rejected: %v", err)
	}
	cyc := graph.New(
		graph.T(iri("a"), rdfs.SubClassOf, iri("b")),
		graph.T(iri("b"), rdfs.SubClassOf, iri("a")),
	)
	if err := CheckRestrictedClass(cyc); err == nil {
		t.Fatal("sc cycle accepted")
	}
	vocab := graph.New(graph.T(iri("q"), rdfs.SubPropertyOf, rdfs.Domain))
	if err := CheckRestrictedClass(vocab); err == nil {
		t.Fatal("vocabulary in object position accepted")
	}
	// Reflexive loops do not count as cycles.
	refl := graph.New(graph.T(iri("a"), rdfs.SubClassOf, iri("a")))
	if err := CheckRestrictedClass(refl); err != nil {
		t.Fatalf("reflexive loop rejected: %v", err)
	}
}

func TestNormalFormOfSimpleGraphIsCore(t *testing.T) {
	g := example38G1()
	nf := NormalForm(g)
	c, _ := Core(g)
	// For simple graphs the closure only adds vocabulary triples; after
	// coring, the data part must match the core of G.
	if !entail.Equivalent(nf, g) {
		t.Fatal("nf(G) ≢ G")
	}
	dataPart := graph.New()
	nf.Each(func(tr graph.Triple) bool {
		if !rdfs.IsVocabulary(tr.P) {
			dataPart.Add(tr)
		}
		return true
	})
	if !hom.Isomorphic(dataPart, c) {
		t.Fatalf("data part of nf(G) is not core(G):\n%v\nvs\n%v", dataPart, c)
	}
}

func TestFingerprintDecidesEquivalence(t *testing.T) {
	// Example 3.17: equivalent graphs share a fingerprint even though
	// their closures and cores differ.
	a, b, c, n := iri("a"), iri("b"), iri("c"), blk("N")
	G := graph.New(
		graph.T(a, rdfs.SubClassOf, b), graph.T(b, rdfs.SubClassOf, c),
		graph.T(a, rdfs.SubClassOf, n), graph.T(n, rdfs.SubClassOf, c),
	)
	H := graph.New(
		graph.T(a, rdfs.SubClassOf, b), graph.T(b, rdfs.SubClassOf, c),
		graph.T(a, rdfs.SubClassOf, c),
	)
	if Fingerprint(G) != Fingerprint(H) {
		t.Fatal("equivalent graphs have different fingerprints")
	}
	K := graph.New(graph.T(a, rdfs.SubClassOf, b))
	if Fingerprint(G) == Fingerprint(K) {
		t.Fatal("inequivalent graphs share a fingerprint")
	}
	// Randomized: fingerprint equality must coincide with ≡.
	rng := rand.New(rand.NewSource(83))
	names := []term.Term{iri("a"), iri("b"), blk("x"), blk("y")}
	preds := []term.Term{iri("p"), rdfs.SubClassOf, rdfs.Type}
	mk := func() *graph.Graph {
		g := graph.New()
		for k := 0; k < 4; k++ {
			g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		return g
	}
	for round := 0; round < 25; round++ {
		g1, g2 := mk(), mk()
		same := Fingerprint(g1) == Fingerprint(g2)
		equiv := entail.Equivalent(g1, g2)
		if same != equiv {
			t.Fatalf("round %d: fingerprint equality (%v) vs ≡ (%v)\nG1:\n%v\nG2:\n%v",
				round, same, equiv, g1, g2)
		}
	}
}
