package experiments

import (
	"fmt"
	"io"
	"time"

	"semwebdb/internal/closure"
	"semwebdb/internal/core"
	"semwebdb/internal/entail"
	"semwebdb/internal/gen"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Closure size and membership (Theorem 3.6)",
		Claim: "|cl(G)| = Θ(|G|²) on sc-chains; membership decidable without materialization, and faster",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "n (sc edges)", "|cl(G)|", "|cl|/n²", "materialize", "member (fast)", "member agree")
			for _, n := range pick(cfg, []int{16, 32, 64}, []int{32, 64, 128, 256}) {
				g := gen.ScChain(n + 1)
				var cl *graph.Graph
				dMat := timeIt(func() { cl = closure.RDFSCl(g) })
				mem := closure.NewMembership(g)
				probe := graph.T(
					term.NewIRI("urn:semwebdb:c:1"), rdfs.SubClassOf,
					term.NewIRI(fmt.Sprintf("urn:semwebdb:c:%d", n+1)))
				var ok bool
				dMem := timeIt(func() {
					for i := 0; i < 100; i++ {
						ok = mem.Contains(probe)
					}
				}) / 100
				agree := ok == cl.Has(probe)
				ratio := float64(cl.Len()) / float64(n*n)
				tbl.row(n, cl.Len(), fmt.Sprintf("%.3f", ratio), dMat, dMem, checkmark(agree))
			}
			tbl.flush()
			fmt.Fprintln(w, "shape: |cl|/n² converges to a constant (≈0.5 from the n(n+1)/2 sc pairs).")
			return nil
		},
	})

	register(Experiment{
		ID:    "E6",
		Title: "Naive closures are not unique (Example 3.2, Lemma 3.3)",
		Claim: "the example graph admits two incomparable maximal equivalent extensions, both containing RDFS-cl(G)",
		Run: func(w io.Writer, cfg Config) error {
			// Example 3.2: c --p--> X --p--> d? The paper's graph: a, X
			// with p-edges and q/r edges to d such that (X,r,d) and
			// (X,q,d) are separately addable but not together.
			p, q, r := term.NewIRI("urn:e:p"), term.NewIRI("urn:e:q"), term.NewIRI("urn:e:r")
			a, c, b, d := term.NewIRI("urn:e:a"), term.NewIRI("urn:e:c"), term.NewIRI("urn:e:b"), term.NewIRI("urn:e:d")
			x := term.NewBlank("X")
			g := graph.New(
				graph.T(a, p, c),
				graph.T(a, p, x),
				graph.T(a, p, b),
				graph.T(c, r, d),
				graph.T(b, q, d),
			)
			ext1 := graph.Union(g, graph.New(graph.T(x, r, d)))
			ext2 := graph.Union(g, graph.New(graph.T(x, q, d)))
			both := graph.Union(ext1, ext2)
			tbl := newTable(w, "candidate", "≡ G", "remark")
			tbl.row("G + (X,r,d)", checkmark(entail.Equivalent(g, ext1)), "X collapses onto c")
			tbl.row("G + (X,q,d)", checkmark(entail.Equivalent(g, ext2)), "X collapses onto b")
			tbl.row("G + both", checkmark(entail.Equivalent(g, both)), "must be NO: X would need both edges")
			tbl.flush()
			if !entail.Equivalent(g, ext1) || !entail.Equivalent(g, ext2) || entail.Equivalent(g, both) {
				return fmt.Errorf("Example 3.2 behaves unexpectedly")
			}
			// Lemma 3.3: RDFS-cl(G) is contained in any such extension.
			cl := closure.RDFSCl(g)
			fmt.Fprintf(w, "RDFS-cl(G) ⊆ both extensions' closures: %s\n",
				checkmark(cl.SubgraphOf(closure.RDFSCl(ext1)) && cl.SubgraphOf(closure.RDFSCl(ext2))))
			return nil
		},
	})

	register(Experiment{
		ID:    "E7",
		Title: "Cores are unique up to isomorphism (Theorems 3.10/3.11)",
		Claim: "independent core computations on redundancy-injected graphs agree; equivalence iff isomorphic cores",
		Run: func(w io.Writer, cfg Config) error {
			rounds := pick(cfg, 10, 40)
			tbl := newTable(w, "rounds", "kernel", "redundant", "unique cores", "≡ iff ≅ cores", "avg time")
			nk, nr := pick(cfg, 5, 10), pick(cfg, 8, 25)
			unique, equivIff := 0, 0
			var total time.Duration
			for i := 0; i < rounds; i++ {
				g := gen.RedundantGraph(nk, nr, int64(i))
				var c1, c2 *graph.Graph
				total += timeIt(func() { c1, _ = core.Core(g) })
				c2, _ = core.Core(g.Clone())
				if hom.Isomorphic(c1, c2) {
					unique++
				}
				// A second, differently-seeded graph over the same kernel
				// is equivalent; one with a different kernel is not.
				same := gen.RedundantGraph(nk, nr, int64(i+1000))
				diff := gen.RedundantGraph(nk+1, nr, int64(i))
				cSame, _ := core.Core(same)
				cDiff, _ := core.Core(diff)
				if hom.Isomorphic(c1, cSame) == entail.Equivalent(g, same) &&
					hom.Isomorphic(c1, cDiff) == entail.Equivalent(g, diff) {
					equivIff++
				}
			}
			tbl.row(rounds, nk, nr, fmt.Sprintf("%d/%d", unique, rounds),
				fmt.Sprintf("%d/%d", equivIff, rounds), (total / time.Duration(rounds)).Round(time.Microsecond))
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "E8",
		Title: "Leanness is coNP-complete (Theorem 3.12)",
		Claim: "lean checking on enc(H) instances scales with the homomorphism search; even cycles fold, odd cycles are lean",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "instance", "triples", "lean", "time")
			for _, n := range pick(cfg, []int{5, 6, 9, 10}, []int{7, 8, 11, 12, 15, 16}) {
				g := gen.Enc(gen.Cycle(n), "v")
				var isLean bool
				d := timeIt(func() { isLean = core.IsLean(g) })
				wantLean := n%2 == 1 // odd symmetric cycles are cores
				status := checkmark(isLean)
				if isLean != wantLean {
					status += " (UNEXPECTED)"
				}
				tbl.row(fmt.Sprintf("enc(C%d)", n), g.Len(), status, d)
			}
			tbl.flush()
			fmt.Fprintln(w, "shape: even cycles retract onto an edge (not lean); odd cycles are their own cores.")
			return nil
		},
	})

	register(Experiment{
		ID:    "E9",
		Title: "Minimal representations (Examples 3.14/3.15, Theorem 3.16)",
		Claim: "non-unique outside the restricted class; inside it the algorithm matches brute-force minimum subsets",
		Run: func(w io.Writer, cfg Config) error {
			// Example 3.14.
			spv := rdfs.SubPropertyOf
			a, b, c := term.NewIRI("urn:e:a"), term.NewIRI("urn:e:b"), term.NewIRI("urn:e:c")
			ex314 := graph.New(
				graph.T(b, spv, c), graph.T(c, spv, b),
				graph.T(b, spv, a), graph.T(c, spv, a),
			)
			_, err314 := core.MinimalRepresentation(ex314)
			m1 := ex314.Without(graph.T(b, spv, a))
			m2 := ex314.Without(graph.T(c, spv, a))
			tbl := newTable(w, "case", "result")
			tbl.row("Ex 3.14 rejected (cyclic sp)", checkmark(err314 != nil))
			tbl.row("Ex 3.14 both reductions ≡ G", checkmark(entail.Equivalent(ex314, m1) && entail.Equivalent(ex314, m2)))
			tbl.row("Ex 3.14 reductions non-isomorphic", checkmark(!hom.Isomorphic(m1, m2)))

			// Example 3.15.
			x := term.NewIRI("urn:e:x")
			ex315 := graph.New(
				graph.T(a, rdfs.SubClassOf, b),
				graph.T(rdfs.Type, rdfs.Domain, a),
				graph.T(x, rdfs.Type, a),
				graph.T(x, rdfs.Type, b),
			)
			_, err315 := core.MinimalRepresentation(ex315)
			g1 := ex315.Without(graph.T(x, rdfs.Type, b))
			g2 := ex315.Without(graph.T(x, rdfs.Type, a))
			tbl.row("Ex 3.15 rejected (vocab in subject)", checkmark(err315 != nil))
			tbl.row("Ex 3.15 both reductions ≡ G", checkmark(entail.Equivalent(ex315, g1) && entail.Equivalent(ex315, g2)))

			// Restricted class: algorithm vs brute force.
			rounds := pick(cfg, 8, 20)
			okCount, applicable := 0, 0
			for i := 0; i < rounds; i++ {
				g := gen.ArtSchema(3, 2, 3, int64(i))
				m, err := core.MinimalRepresentation(g)
				if err != nil {
					continue
				}
				applicable++
				if bruteForceMinimalSize(g) == m.Len() && entail.Equivalent(g, m) {
					okCount++
				}
			}
			tbl.row(fmt.Sprintf("Thm 3.16 algorithm = brute force (%d graphs)", applicable),
				fmt.Sprintf("%d/%d", okCount, applicable))
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "E10",
		Title: "Normal forms are syntax independent (Example 3.17, Theorem 3.19)",
		Claim: "nf(G) ≅ nf(H) for every equivalent rewrite H of G, while closures and cores differ",
		Run: func(w io.Writer, cfg Config) error {
			// Example 3.17 first.
			a, b, c := term.NewIRI("urn:e:a"), term.NewIRI("urn:e:b"), term.NewIRI("urn:e:c")
			n := term.NewBlank("N")
			G := graph.New(
				graph.T(a, rdfs.SubClassOf, b), graph.T(b, rdfs.SubClassOf, c),
				graph.T(a, rdfs.SubClassOf, n), graph.T(n, rdfs.SubClassOf, c),
			)
			H := graph.New(
				graph.T(a, rdfs.SubClassOf, b), graph.T(b, rdfs.SubClassOf, c),
				graph.T(a, rdfs.SubClassOf, c),
			)
			tbl := newTable(w, "check", "result")
			tbl.row("Ex 3.17: G ≡ H", checkmark(entail.Equivalent(G, H)))
			tbl.row("Ex 3.17: cl(G) ≇ cl(H)", checkmark(!hom.Isomorphic(closure.Cl(G), closure.Cl(H))))
			tbl.row("Ex 3.17: nf(G) ≅ nf(H)", checkmark(hom.Isomorphic(core.NormalForm(G), core.NormalForm(H))))

			// Randomized rewrites.
			rounds := pick(cfg, 8, 30)
			ok := 0
			var total time.Duration
			for i := 0; i < rounds; i++ {
				g := gen.ArtSchema(5, 3, 6, int64(i))
				rw := gen.EquivalentRewrite(g, int64(i*7+1))
				var same bool
				total += timeIt(func() { same = core.SameNormalForm(g, rw) })
				if same {
					ok++
				}
			}
			tbl.row(fmt.Sprintf("random rewrites nf-invariant (%d rounds, avg %v)",
				rounds, (total/time.Duration(rounds)).Round(time.Microsecond)),
				fmt.Sprintf("%d/%d", ok, rounds))
			tbl.flush()
			return nil
		},
	})
}

// bruteForceMinimalSize finds the minimum size of an equivalent subgraph.
func bruteForceMinimalSize(g *graph.Graph) int {
	ts := g.Triples()
	n := len(ts)
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				bits++
			}
		}
		if bits >= best {
			continue
		}
		sub := graph.New()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub.Add(ts[i])
			}
		}
		if entail.Entails(sub, g) {
			best = bits
		}
	}
	return best
}
