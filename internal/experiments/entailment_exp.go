package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"semwebdb/internal/closure"
	"semwebdb/internal/cq"
	"semwebdb/internal/entail"
	"semwebdb/internal/gen"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/match"
	"semwebdb/internal/mt"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func randomSimplePair(rng *rand.Rand, n1, n2 int) (*graph.Graph, *graph.Graph) {
	names := []term.Term{
		term.NewIRI("urn:x:a"), term.NewIRI("urn:x:b"), term.NewIRI("urn:x:c"),
		term.NewBlank("x"), term.NewBlank("y"), term.NewBlank("z"),
	}
	preds := []term.Term{term.NewIRI("urn:x:p"), term.NewIRI("urn:x:q")}
	mk := func(n int) *graph.Graph {
		g := graph.New()
		for k := 0; k < n; k++ {
			g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		return g
	}
	return mk(n1), mk(n2)
}

func randomRDFSPair(rng *rand.Rand, n1, n2 int) (*graph.Graph, *graph.Graph) {
	names := []term.Term{
		term.NewIRI("urn:x:a"), term.NewIRI("urn:x:b"), term.NewBlank("x"), term.NewBlank("y"),
	}
	preds := []term.Term{
		term.NewIRI("urn:x:p"), rdfs.SubClassOf, rdfs.SubPropertyOf, rdfs.Type, rdfs.Domain, rdfs.Range,
	}
	mk := func(n int) *graph.Graph {
		g := graph.New()
		for k := 0; k < n; k++ {
			g.Add(graph.T(names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))]))
		}
		return g
	}
	return mk(n1), mk(n2)
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Entailment characterizations agree (Theorem 2.8)",
		Claim: "G1 ⊨ G2 iff a map G2 → RDFS-cl(G1) exists; three decision paths (map, proof, canonical model) coincide",
		Run: func(w io.Writer, cfg Config) error {
			rng := rand.New(rand.NewSource(101))
			rounds := pick(cfg, 40, 300)
			tbl := newTable(w, "family", "rounds", "entailed", "refuted", "map=proof", "map=model")
			for _, fam := range []string{"simple", "rdfs"} {
				entailed, refuted, agreeProof, agreeModel := 0, 0, 0, 0
				for i := 0; i < rounds; i++ {
					var g1, g2 *graph.Graph
					if fam == "simple" {
						g1, g2 = randomSimplePair(rng, 6, 3)
					} else {
						g1, g2 = randomRDFSPair(rng, 6, 2)
					}
					viaMap := entail.Entails(g1, g2)
					_, viaProof := rdfs.Prove(g1, g2)
					viaModel := mt.CanonicalEntails(g1, g2)
					if viaMap {
						entailed++
					} else {
						refuted++
					}
					if viaMap == viaProof {
						agreeProof++
					}
					if viaMap == viaModel {
						agreeModel++
					}
				}
				tbl.row(fam, rounds, entailed, refuted,
					fmt.Sprintf("%d/%d", agreeProof, rounds),
					fmt.Sprintf("%d/%d", agreeModel, rounds))
			}
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "E2",
		Title: "Simple entailment is graph homomorphism (Theorem 2.9)",
		Claim: "NP-complete via 3-colorability: easy yes-instances stay fast, unsatisfiable clique instances blow up exponentially",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "instance", "|G2| triples", "entails", "time")
			// Easy: cycles into K3.
			for _, n := range pick(cfg, []int{8, 16}, []int{16, 64, 256}) {
				src, dst := gen.ThreeColorabilityInstance(gen.Cycle(n))
				var got bool
				d := timeIt(func() { got = entail.SimpleEntails(dst, src) })
				tbl.row(fmt.Sprintf("enc(C%d) → K3", n), src.Len(), checkmark(got), d)
			}
			// Hard: K_{n} (blank) into K_{n-1}: unsatisfiable, forces
			// exhaustive search.
			for _, n := range pick(cfg, []int{4, 5}, []int{5, 6, 7}) {
				src := gen.Enc(gen.Clique(n), "v")
				dst := gen.EncGround(gen.Clique(n-1), "k")
				var got bool
				d := timeIt(func() { got = entail.SimpleEntails(dst, src) })
				tbl.row(fmt.Sprintf("enc(K%d) → K%d", n, n-1), src.Len(), checkmark(got), d)
			}
			tbl.flush()
			fmt.Fprintln(w, "shape: yes-instances polynomial; unsatisfiable clique family grows super-polynomially (NP-hardness).")
			return nil
		},
	})

	register(Experiment{
		ID:    "E3",
		Title: "RDFS entailment has polynomial witnesses (Theorem 2.10)",
		Claim: "closure + map yields an NP witness; closure computation scales polynomially in |G|",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "|G|", "|cl(G)|", "closure time", "check time", "entails")
			for _, n := range pick(cfg, []int{20, 40}, []int{50, 100, 200, 400}) {
				g := gen.ArtSchema(n/4, n/8+1, n, 42)
				var cl *graph.Graph
				dCl := timeIt(func() { cl = closure.RDFSCl(g) })
				// Consequence: the deepest individual typed at the root
				// class.
				h := graph.New(graph.T(
					term.NewIRI("urn:semwebdb:ind:1"), rdfs.Type, term.NewIRI("urn:semwebdb:Class:0")))
				var ok bool
				dCheck := timeIt(func() { ok = hom.ExistsMap(h, cl) })
				tbl.row(g.Len(), cl.Len(), dCl, dCheck, checkmark(ok))
			}
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "E4",
		Title: "Acyclic bodies evaluate in polynomial time (Section 2.4)",
		Claim: "blank-cycle-free G2 → acyclic CQ → Yannakakis polynomial; cyclic bodies fall back to exponential-worst-case search",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "body", "cycle-free", "Yannakakis", "backtracking", "agree")
			// Bipartite data (the double cover of a random graph): it has
			// NO odd cycles, so odd-length cyclic bodies are
			// unsatisfiable and force the backtracking search to exhaust,
			// while chains of any length stay easy for Yannakakis.
			base := gen.RandomGraph(pick(cfg, 20, 60), pick(cfg, 40, 120), 7)
			bip := gen.StdGraph{N: 2 * base.N}
			for _, e := range base.Edges {
				bip.Edges = append(bip.Edges,
					[2]int{e[0], base.N + e[1]}, [2]int{base.N + e[1], e[0]},
					[2]int{e[1], base.N + e[0]}, [2]int{base.N + e[0], e[1]})
			}
			data := gen.EncGround(bip, "d")
			d := cq.FromGraphDatabase(data)
			for _, n := range pick(cfg, []int{5, 7}, []int{5, 7, 9}) {
				for _, cyclic := range []bool{false, true} {
					var body *graph.Graph
					name := ""
					if cyclic {
						body = gen.BlankCycleBody(n)
						name = fmt.Sprintf("odd cycle(%d)", n)
					} else {
						body = gen.BlankChainBody(n)
						name = fmt.Sprintf("chain(%d)", n)
					}
					q := cq.FromGraphQuery(body)
					var yTime, bTime string
					var yOK, bOK bool
					free := cq.BlankCycleFree(body)
					if free {
						yTime = timeIt(func() { yOK, _ = cq.EvaluateYannakakis(q, d) }).String()
					} else {
						yTime = "n/a"
					}
					bTime = timeIt(func() { bOK = cq.EvaluateBacktrack(q, d) }).String()
					agree := !free || yOK == bOK
					tbl.row(name, checkmark(free), yTime, bTime, checkmark(agree))
				}
			}
			tbl.flush()
			fmt.Fprintln(w, "shape: chains stay polynomial via Yannakakis; unsatisfiable odd cycles make backtracking exhaust.")
			return nil
		},
	})

	register(Experiment{
		ID:    "E11",
		Title: "Soundness and completeness of the deductive system (Theorem 2.6)",
		Claim: "G ⊢ H iff G ⊨ H; every produced proof verifies; foreign models never refute a proved entailment",
		Run: func(w io.Writer, cfg Config) error {
			rng := rand.New(rand.NewSource(113))
			rounds := pick(cfg, 30, 200)
			proved, verified, agree, foreignOK, foreignChecked := 0, 0, 0, 0, 0
			for i := 0; i < rounds; i++ {
				g1, g2 := randomRDFSPair(rng, 6, 2)
				proof, syntactic := rdfs.Prove(g1, g2)
				semantic := mt.CanonicalEntails(g1, g2)
				if syntactic == semantic {
					agree++
				}
				if syntactic {
					proved++
					if proof.Verify(g1, g2) == nil {
						verified++
					}
					// Foreign-model soundness probe: the canonical model
					// of K ∪ G1 satisfies G1 by construction and must
					// also satisfy the proved consequence G2.
					k, _ := randomRDFSPair(rng, 8, 0)
					m := mt.CanonicalModel(graph.Union(k, g1))
					if m.SatisfiesSimple(g1) {
						foreignChecked++
						if m.SatisfiesSimple(g2) {
							foreignOK++
						}
					}
				}
			}
			tbl := newTable(w, "rounds", "⊢=⊨", "proved", "proofs verified", "foreign-model soundness")
			tbl.row(rounds, fmt.Sprintf("%d/%d", agree, rounds), proved,
				fmt.Sprintf("%d/%d", verified, proved),
				fmt.Sprintf("%d/%d", foreignOK, foreignChecked))
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "A3",
		Title: "Ablation: variable-ordering heuristic in the matcher",
		Claim: "most-constrained-first ordering prunes hard homomorphism searches",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "instance", "with heuristic", "without (given order)")
			for _, n := range pick(cfg, []int{4, 5}, []int{5, 6}) {
				src := gen.Enc(gen.Clique(n), "v")
				dst := gen.EncGround(gen.Clique(n-1), "k")
				// Append an unsatisfiable pattern at the end of the given
				// order so NoReorder pays the full price.
				pats := append(src.Triples(), graph.T(
					term.NewBlank("v0"), term.NewIRI("urn:none"), term.NewBlank("v1")))
				isUnknown := func(x term.Term) bool { return x.IsBlank() }
				run := func(noReorder bool) string {
					opts := match.Options{IsUnknown: isUnknown, NoReorder: noReorder}
					return timeIt(func() {
						match.Solve(pats, dst, opts, func(match.Binding) bool { return false })
					}).String()
				}
				tbl.row(fmt.Sprintf("K%d→K%d + dead pattern", n, n-1), run(false), run(true))
			}
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "A2",
		Title: "Ablation: semi-naive vs naive closure computation",
		Claim: "delta-driven saturation beats round-based re-derivation",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "chain n", "|cl|", "semi-naive", "naive", "equal")
			for _, n := range pick(cfg, []int{16, 32}, []int{32, 64, 128}) {
				g := gen.ScChain(n)
				var fast, slow *graph.Graph
				dFast := timeIt(func() { fast = closure.RDFSCl(g) })
				dSlow := timeIt(func() { slow = closure.NaiveRDFSCl(g) })
				tbl.row(n, fast.Len(), dFast, dSlow, checkmark(fast.Equal(slow)))
			}
			tbl.flush()
			return nil
		},
	})
}
