package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17",
		"A1", "A2", "A3",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllOrdered(t *testing.T) {
	all := All()
	if all[0].ID != "E1" {
		t.Fatalf("first = %s", all[0].ID)
	}
	if all[len(all)-1].ID[0] != 'A' {
		t.Fatalf("ablations must sort last, got %s", all[len(all)-1].ID)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("E999"); ok {
		t.Fatal("unknown ID found")
	}
}

// TestEveryExperimentRunsQuick smoke-runs each experiment in quick mode
// and asserts non-empty tabular output with no internal failure marks.
func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(&buf, e, Config{Quick: true}); err != nil {
				t.Fatalf("%s failed: %v\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s produced suspiciously little output:\n%s", e.ID, out)
			}
			if strings.Contains(out, "UNEXPECTED") {
				t.Fatalf("%s reported an unexpected result:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := RunAll(io.Discard, Config{Quick: true}); err != nil {
		t.Fatal(err)
	}
}
