// Package experiments implements the experiment harness of
// DESIGN.md: one registered experiment per theorem/example of the
// paper, each printing a self-contained table. The harness is driven by
// cmd/experiments; every experiment is deterministic given its built-in
// seeds.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks parameter sweeps for use in tests and smoke runs.
	Quick bool
}

// Experiment is one reproducible unit tied to a claim of the paper.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(w io.Writer, cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID (E* before A*).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if a[0] != b[0] {
			return a[0] == 'E' // experiments before ablations
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		if err := RunOne(w, e, cfg); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes one experiment with its header.
func RunOne(w io.Writer, e Experiment, cfg Config) error {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(w, "claim: %s\n", e.Claim)
	start := time.Now()
	if err := e.Run(w, cfg); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// table is a small tabwriter helper.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, headers ...any) *table {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	t := &table{tw: tw}
	t.row(headers...)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// timeIt measures one execution of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// pick returns q when cfg.Quick, else full.
func pick[T any](cfg Config, q, full T) T {
	if cfg.Quick {
		return q
	}
	return full
}

// checkmark renders booleans compactly.
func checkmark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
