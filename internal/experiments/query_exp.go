package experiments

import (
	"fmt"
	"io"

	"semwebdb/internal/containment"
	"semwebdb/internal/cq"
	"semwebdb/internal/entail"
	"semwebdb/internal/gen"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/match"
	"semwebdb/internal/query"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/store"
	"semwebdb/internal/term"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Query vs data complexity (Theorem 6.1)",
		Claim: "emptiness is NP-complete in the query (3SAT) and polynomial in the data (fixed query)",
		Run: func(w io.Writer, cfg Config) error {
			fmt.Fprintln(w, "-- query complexity: random 3SAT at clause ratio 4.3 --")
			tbl := newTable(w, "vars", "clauses", "sat", "CQ eval time")
			for _, n := range pick(cfg, []int{6, 10}, []int{8, 12, 16, 20}) {
				m := int(4.3 * float64(n))
				f := cq.ThreeSATInstance{NumVars: n, Clauses: gen.Random3SAT(n, m, int64(n))}
				var sat bool
				d := timeIt(func() { sat = f.Satisfiable() })
				tbl.row(n, m, checkmark(sat), d)
			}
			tbl.flush()

			fmt.Fprintln(w, "-- data complexity: fixed 2-pattern query, growing database --")
			tbl2 := newTable(w, "|D|", "matchings", "time")
			x, y, z := term.NewVar("X"), term.NewVar("Y"), term.NewVar("Z")
			p := term.NewIRI("urn:semwebdb:enc:e")
			q := query.New(
				[]graph.Triple{{S: x, P: p, O: z}},
				[]graph.Triple{{S: x, P: p, O: y}, {S: y, P: p, O: z}},
			)
			for _, n := range pick(cfg, []int{50, 100}, []int{100, 400, 1600}) {
				d := gen.EncGround(gen.RandomGraph(n, 3*n, int64(n)), "d")
				var a *query.Answer
				dur := timeIt(func() { a, _ = query.Evaluate(q, d, query.Options{}) })
				tbl2.row(d.Len(), a.Matchings, dur)
			}
			tbl2.flush()
			fmt.Fprintln(w, "shape: 3SAT time grows super-polynomially in query size; data sweep grows polynomially.")
			return nil
		},
	})

	register(Experiment{
		ID:    "E13",
		Title: "Redundancy elimination (Theorems 6.2/6.3)",
		Claim: "answer-leanness is coNP-ish under union semantics but polynomial under merge semantics",
		Run: func(w io.Writer, cfg Config) error {
			tbl := newTable(w, "n branches", "singles", "union lean (coNP path)", "merge lean (poly path)", "agree")
			// Section 6.2 workload: D is lean (each blank X_i carries a
			// distinguishing q-edge), but the projection (?Z,p,?U) ←
			// (?Z,p,?U) forgets the q-edges, so all blank answers
			// collapse onto each other: the answer is maximally
			// redundant even though D and the query are lean.
			a, p, q2 := term.NewIRI("urn:r:a"), term.NewIRI("urn:r:p"), term.NewIRI("urn:r:q")
			z, u := term.NewVar("Z"), term.NewVar("U")
			q := query.New(
				[]graph.Triple{{S: z, P: p, O: u}},
				[]graph.Triple{{S: z, P: p, O: u}},
			)
			for _, n := range pick(cfg, []int{4, 8}, []int{8, 16, 32}) {
				d := graph.New()
				for i := 0; i < n; i++ {
					x := term.NewBlank(fmt.Sprintf("X%d", i))
					d.Add(graph.T(a, p, x))
					d.Add(graph.T(x, q2, term.NewIRI(fmt.Sprintf("urn:r:c%d", i))))
				}
				au, err := query.Evaluate(q, d, query.Options{Semantics: query.UnionSemantics})
				if err != nil {
					return err
				}
				am, err := query.Evaluate(q, d, query.Options{Semantics: query.MergeSemantics})
				if err != nil {
					return err
				}
				var leanU, leanM bool
				dU := timeIt(func() { leanU = query.IsLeanAnswer(au) })
				dM := timeIt(func() { leanM = query.IsLeanAnswer(am) })
				// Each procedure must match the generic core-based check
				// on its own graph.
				agree := leanM == (query.EliminateRedundancy(am).Len() == am.Graph.Len()) &&
					leanU == (query.EliminateRedundancy(au).Len() == au.Graph.Len())
				tbl.row(n, len(au.Singles),
					fmt.Sprintf("%v (%v)", checkmark(leanU), dU),
					fmt.Sprintf("%v (%v)", checkmark(leanM), dM),
					checkmark(agree))
			}
			tbl.flush()
			fmt.Fprintln(w, "shape: projected answers are non-lean; both procedures detect it, the merge path in polynomial time.")
			return nil
		},
	})

	register(Experiment{
		ID:    "E14",
		Title: "Containment characterizations (Theorems 5.5/5.6)",
		Claim: "θ-substitution deciders are sound against evaluation; hard instances embed graph entailment",
		Run: func(w io.Writer, cfg Config) error {
			// Theorem 5.6 encoding: q: (a,b,c) ← B with B from enc(C_n);
			// containment ⇔ homomorphism between the cycles.
			a, b, c := term.NewIRI("urn:q:a"), term.NewIRI("urn:q:b"), term.NewIRI("urn:q:c")
			head := []graph.Triple{{S: a, P: b, O: c}}
			toBody := func(g *graph.Graph) []graph.Triple {
				var out []graph.Triple
				for _, t := range g.Triples() {
					s, o := t.S, t.O
					if s.IsBlank() {
						s = term.NewVar("v" + s.Value)
					}
					if o.IsBlank() {
						o = term.NewVar("v" + o.Value)
					}
					out = append(out, graph.Triple{S: s, P: t.P, O: o})
				}
				return out
			}
			tbl := newTable(w, "pair", "⊆p", "expect", "time")
			for _, n := range pick(cfg, []int{3, 4, 5}, []int{3, 5, 7, 9}) {
				// q over C_n, q' over C_{2n}: C_2n → C_n exists (wrap), so
				// q ⊆p q'... containment follows hom direction: q ⊆p q'
				// iff θ(B') ⊆ nf(B) i.e. B' maps into B.
				qn := query.New(head, toBody(gen.Enc(gen.Cycle(n), "x")))
				q2n := query.New(head, toBody(gen.Enc(gen.Cycle(2*n), "y")))
				var d1 containment.Decision
				dur := timeIt(func() { d1, _ = containment.Standard(qn, q2n) })
				// enc(C_2n) maps into enc(C_n) (even wrap), so expected yes.
				tbl.row(fmt.Sprintf("C%d ⊆p C%d-body", n, 2*n), checkmark(d1.Holds), "yes", dur)
				var d2 containment.Decision
				dur2 := timeIt(func() { d2, _ = containment.Standard(q2n, qn) })
				// enc(C_n) odd → no map into enc(C_2n): expected no for odd n.
				expect := "no"
				if n%2 == 0 {
					expect = "yes"
				}
				tbl.row(fmt.Sprintf("C%d ⊆p C%d-body", 2*n, n), checkmark(d2.Holds), expect, dur2)
			}
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "E15",
		Title: "⊆m and ⊆p disagree (Example 5.3)",
		Claim: "the paper's three counterexample pairs behave exactly as stated",
		Run: func(w io.Writer, cfg Config) error {
			vX, vY, vZ := term.NewVar("X"), term.NewVar("Y"), term.NewVar("Z")
			qIRI, p := term.NewIRI("urn:q:q"), term.NewIRI("urn:q:p")
			tbl := newTable(w, "pair", "q⊆m q'", "q'⊆m q", "q⊆p q'", "q'⊆p q")

			// Pair 1: sc-chains with/without the transitive edge.
			b1 := []graph.Triple{{S: vX, P: rdfs.SubClassOf, O: vY}, {S: vY, P: rdfs.SubClassOf, O: vZ}}
			b1p := append(append([]graph.Triple{}, b1...), graph.Triple{S: vX, P: rdfs.SubClassOf, O: vZ})
			q1, q1p := query.New(b1, b1), query.New(b1p, b1p)
			r := func(q, qp *query.Query) (m1, m2, p1, p2 bool) {
				d, _ := containment.Entailment(q, qp)
				m1 = d.Holds
				d, _ = containment.Entailment(qp, q)
				m2 = d.Holds
				d, _ = containment.Standard(q, qp)
				p1 = d.Holds
				d, _ = containment.Standard(qp, q)
				p2 = d.Holds
				return
			}
			m1, m2, p1, p2 := r(q1, q1p)
			tbl.row("rdfs chains", checkmark(m1), checkmark(m2), checkmark(p1), checkmark(p2))

			// Pair 2: q has the constant head, q' the blank head. The
			// paper states q' ⊆m q but q' ⊄p q.
			cst := term.NewIRI("urn:q:c")
			body2 := []graph.Triple{{S: cst, P: qIRI, O: vX}}
			q2 := query.New([]graph.Triple{{S: cst, P: qIRI, O: vX}}, body2)
			q2p := query.New([]graph.Triple{{S: term.NewBlank("Y"), P: qIRI, O: vX}}, body2)
			m1, m2, p1, p2 = r(q2, q2p)
			tbl.row("blank head (q'=blank)", checkmark(m1), checkmark(m2), checkmark(p1), checkmark(p2))

			// Pair 3: q' projects the head; the paper states q' ⊆m q but
			// q' ⊄p q.
			body3 := []graph.Triple{{S: vX, P: qIRI, O: vY}, {S: vZ, P: p, O: vY}}
			q3 := query.New(body3, body3)
			q3p := query.New([]graph.Triple{{S: vZ, P: p, O: vY}}, body3)
			m1, m2, p1, p2 = r(q3, q3p)
			tbl.row("projection (q'=small head)", checkmark(m1), checkmark(m2), checkmark(p1), checkmark(p2))
			tbl.flush()
			fmt.Fprintln(w, "expected per the paper: the q'⊆m q column holds in every row while q'⊆p q fails; pair 1 is ⊆m-mutual.")
			return nil
		},
	})

	register(Experiment{
		ID:    "E16",
		Title: "Premises and the Ω_q rewrite (Theorem 5.8, Propositions 5.9/5.11)",
		Claim: "premise queries decompose into unions of premise-free queries; Ω_q size grows with |B| and |P|",
		Run: func(w io.Writer, cfg Config) error {
			vX, vY := term.NewVar("X"), term.NewVar("Y")
			p, qv, tt, s := term.NewIRI("urn:q:p"), term.NewIRI("urn:q:q"), term.NewIRI("urn:q:t"), term.NewIRI("urn:q:s")
			tbl := newTable(w, "|B|", "|P|", "|Ω_q|", "expansion time", "answers agree")
			for _, nb := range pick(cfg, []int{2, 3}, []int{2, 3, 4}) {
				for _, np := range pick(cfg, []int{2, 4}, []int{2, 4, 8}) {
					body := []graph.Triple{{S: vX, P: qv, O: vY}}
					for i := 1; i < nb; i++ {
						body = append(body, graph.Triple{S: vY, P: tt, O: s})
					}
					prem := graph.New()
					for i := 0; i < np; i++ {
						prem.Add(graph.T(term.NewIRI(fmt.Sprintf("urn:q:a%d", i)), tt, s))
					}
					qq := query.New([]graph.Triple{{S: vX, P: p, O: vY}}, body).WithPremise(prem)
					var omega []*query.Query
					dur := timeIt(func() { omega = containment.PremiseExpansion(qq) })
					// Verify answer agreement on a probe database.
					d := graph.New(
						graph.T(term.NewIRI("urn:q:u"), qv, term.NewIRI("urn:q:a0")),
						graph.T(term.NewIRI("urn:q:u"), qv, term.NewIRI("urn:q:z")),
						graph.T(term.NewIRI("urn:q:z"), tt, s),
					)
					direct, err := query.Evaluate(qq, d, query.Options{})
					if err != nil {
						return err
					}
					union := graph.New()
					for _, qm := range omega {
						a, err := query.Evaluate(qm, d, query.Options{})
						if err != nil {
							return err
						}
						union.AddAll(a.Graph)
					}
					tbl.row(len(body), np, len(omega), dur, checkmark(direct.Graph.Equal(union)))
				}
			}
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "E17",
		Title: "Answer invariance (Proposition 4.5, Theorem 4.6)",
		Claim: "D ≡ D' gives isomorphic answers; D' ⊨ D gives entailed answers; ans∪ ⊨ ans+",
		Run: func(w io.Writer, cfg Config) error {
			rounds := pick(cfg, 8, 25)
			iso, mono, unionMerge := 0, 0, 0
			x, y := term.NewVar("X"), term.NewVar("Y")
			p := term.NewIRI("urn:semwebdb:prop:0")
			q := query.New(
				[]graph.Triple{{S: x, P: term.NewIRI("urn:q:r"), O: y}},
				[]graph.Triple{{S: x, P: p, O: y}},
			)
			for i := 0; i < rounds; i++ {
				d := gen.ArtSchema(4, 3, 6, int64(i))
				dEq := gen.EquivalentRewrite(d, int64(i+51))
				a1, err := query.Evaluate(q, d, query.Options{})
				if err != nil {
					return err
				}
				a2, err := query.Evaluate(q, dEq, query.Options{})
				if err != nil {
					return err
				}
				if hom.Isomorphic(a1.Graph, a2.Graph) {
					iso++
				}
				// Monotonicity: D ∪ extra ⊨ D.
				bigger := graph.Union(d, gen.ArtSchema(3, 2, 3, int64(i+999)))
				a3, err := query.Evaluate(q, bigger, query.Options{})
				if err != nil {
					return err
				}
				if entail.Entails(a3.Graph, a1.Graph) {
					mono++
				}
				// Union entails merge.
				am, err := query.Evaluate(q, d, query.Options{Semantics: query.MergeSemantics})
				if err != nil {
					return err
				}
				if entail.Entails(a1.Graph, am.Graph) {
					unionMerge++
				}
			}
			tbl := newTable(w, "rounds", "nf-invariance (Thm 4.6)", "monotonicity (Prop 4.5.1)", "ans∪ ⊨ ans+ (Prop 4.5.2)")
			tbl.row(rounds, fmt.Sprintf("%d/%d", iso, rounds), fmt.Sprintf("%d/%d", mono, rounds),
				fmt.Sprintf("%d/%d", unionMerge, rounds))
			tbl.flush()
			return nil
		},
	})

	register(Experiment{
		ID:    "A1",
		Title: "Ablation: index configurations",
		Claim: "double-position indexes beat predicate-only beat full scans on selective patterns",
		Run: func(w io.Writer, cfg Config) error {
			n := pick(cfg, 2000, 20000)
			g := gen.EncGround(gen.RandomGraph(n/10, n, 17), "d")
			patterns := []graph.Triple{
				{S: term.NewVar("X"), P: gen.EdgePredicate, O: term.NewVar("Y")},
				{S: term.NewVar("Y"), P: gen.EdgePredicate, O: term.NewVar("Z")},
				{S: term.NewVar("Z"), P: gen.EdgePredicate, O: term.NewVar("W")},
			}
			tbl := newTable(w, "index mode", "solutions", "time")
			for _, mode := range []struct {
				name string
				m    match.IndexMode
			}{
				{"full (S,P,O,SP,PO,SO)", match.FullIndexes},
				{"predicate-only", match.PredicateOnly},
				{"scan-only", match.ScanOnly},
			} {
				ix := match.NewIndexMode(g, mode.m)
				count := 0
				dur := timeIt(func() {
					match.NewSolver(ix, match.Options{}).Solve(patterns, func(match.Binding) bool {
						count++
						return count < 5000
					})
				})
				tbl.row(mode.name, count, dur)
			}
			tbl.flush()

			// Store-level comparison: object-bound point lookups, after a
			// warm-up call so the one-time lazy index sort is excluded.
			tbl2 := newTable(w, "store orders", "µs per object-bound lookup")
			for _, cfg2 := range []struct {
				name   string
				orders []store.Order
			}{
				{"SPO+POS+OSP", []store.Order{store.SPO, store.POS, store.OSP}},
				{"SPO only (full scan)", []store.Order{store.SPO}},
			} {
				st := store.NewWithOrders(cfg2.orders...)
				g.Each(func(t graph.Triple) bool { st.Add(t); return true })
				st.MatchTerms(term.Term{}, term.Term{}, term.NewIRI("urn:semwebdb:d:0"),
					func(graph.Triple) bool { return true })
				const lookups = 200
				dur := timeIt(func() {
					for i := 0; i < lookups; i++ {
						st.MatchTerms(term.Term{}, term.Term{}, term.NewIRI(fmt.Sprintf("urn:semwebdb:d:%d", i%50)),
							func(graph.Triple) bool { return true })
					}
				})
				tbl2.row(cfg2.name, fmt.Sprintf("%.1f", float64(dur.Microseconds())/lookups))
			}
			tbl2.flush()
			return nil
		},
	})
}
