package repl

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/persist"
	"semwebdb/internal/term"
)

// testLeader is a live storage engine plus the state it persists,
// served to followers through the in-process Leader source.
type testLeader struct {
	eng *persist.Engine
	d   *dict.Dict
	g   *graph.Graph
	dir string
}

func newTestLeader(t *testing.T) *testLeader {
	t.Helper()
	dir := t.TempDir()
	eng, d, g, err := persist.Open(dir, persist.Options{NoSync: true, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return &testLeader{eng: eng, d: d, g: g, dir: dir}
}

// add appends n fresh triples to the leader's durable log.
func (l *testLeader) add(t *testing.T, n, base int) {
	t.Helper()
	p := l.d.Intern(term.NewIRI("urn:p"))
	var batch []dict.Triple3
	for i := 0; i < n; i++ {
		enc := dict.Triple3{
			l.d.Intern(term.NewIRI(fmt.Sprintf("urn:s:%d", base+i))),
			p,
			l.d.Intern(term.NewLiteral(fmt.Sprintf("v%d", base+i))),
		}
		l.g.AddID(enc)
		batch = append(batch, enc)
	}
	if err := l.eng.Append(l.d, batch); err != nil {
		t.Fatal(err)
	}
}

// memSink records what the follower publishes.
type memSink struct {
	mu        sync.Mutex
	g         *graph.Graph
	resets    int
	publishes int
	fresh     int
}

func (s *memSink) Reset(d *dict.Dict, g *graph.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g = g
	s.resets++
}

func (s *memSink) Publish(g *graph.Graph, fresh []dict.Triple3) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g = g
	s.publishes++
	s.fresh += len(fresh)
}

func (s *memSink) snapshot() (resets, publishes, fresh int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resets, s.publishes, s.fresh
}

// fastCfg returns a follower config with test-speed polling.
func fastCfg(dir string, src Source) Config {
	return Config{
		Dir:     dir,
		Source:  src,
		NoSync:  true,
		Wait:    50 * time.Millisecond,
		Backoff: 5 * time.Millisecond,
	}
}

// startRun launches f.Run and returns a stop function that cancels it
// and waits for it to return.
func startRun(f *Follower, sink Sink) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx, sink)
	}()
	return func() {
		cancel()
		<-done
	}
}

// waitConverged polls until the follower's durable mirror matches the
// leader's durable log exactly.
func waitConverged(t *testing.T, f *Follower, l *testLeader) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ts := l.eng.TailState()
		st := f.Status()
		if st.Generation == ts.Gen && st.AppliedBytes == ts.WALSize && st.AppliedRecords == ts.WALRecords {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: follower %+v, leader %+v", st, ts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertSameGraph checks the follower holds exactly the leader's
// triples. Both sides replay the same WAL byte stream through fresh
// dictionaries, so IDs agree and the graphs must be identical.
func assertSameGraph(t *testing.T, f *Follower, lg *graph.Graph) {
	t.Helper()
	_, fg := f.Current()
	if fg.Len() != lg.Len() {
		t.Fatalf("follower holds %d triples, leader %d", fg.Len(), lg.Len())
	}
	lg.EachID(func(enc dict.Triple3) bool {
		if !fg.HasID(enc) {
			t.Fatalf("follower missing triple %v", enc)
		}
		return true
	})
}

// assertByteMirror checks the invariant everything else rides on: the
// follower's local WAL file is byte-identical to the leader's.
func assertByteMirror(t *testing.T, followerDir, leaderDir string) {
	t.Helper()
	fb, err := os.ReadFile(filepath.Join(followerDir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	lb, err := os.ReadFile(filepath.Join(leaderDir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, lb) {
		t.Fatalf("mirror diverged: follower WAL %d bytes, leader %d", len(fb), len(lb))
	}
}

// TestFollowerBootstrapAndTail: a fresh follower bootstraps the
// leader's existing log, then applies live appends as they happen, and
// its mirror stays a byte-exact copy throughout.
func TestFollowerBootstrapAndTail(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 10, 0)

	dir := t.TempDir()
	f, err := Open(context.Background(), fastCfg(dir, NewLeader(l.eng)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Status().Bootstraps; got != 1 {
		t.Fatalf("Bootstraps = %d after initial sync, want 1", got)
	}
	assertSameGraph(t, f, l.g)

	sink := &memSink{}
	stop := startRun(f, sink)
	defer stop()

	for b := 0; b < 3; b++ {
		l.add(t, 5, 100+10*b)
	}
	waitConverged(t, f, l)
	assertSameGraph(t, f, l.g)
	stop()
	assertByteMirror(t, dir, l.dir)

	_, publishes, fresh := sink.snapshot()
	if publishes == 0 || fresh != 15 {
		t.Fatalf("sink saw %d publishes with %d fresh triples, want 15 fresh", publishes, fresh)
	}
	st := f.Status()
	if st.LagBytes != 0 || st.LagRecords != 0 {
		t.Fatalf("lag nonzero at quiescence: %+v", st)
	}
}

// TestFollowerSnapshotBootstrap: a leader that has compacted serves its
// state as snapshot + WAL suffix; the follower must reassemble both.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 20, 0)
	if err := l.eng.Compact(l.g); err != nil {
		t.Fatal(err)
	}
	l.add(t, 7, 100)

	f, err := Open(context.Background(), fastCfg(t.TempDir(), NewLeader(l.eng)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	assertSameGraph(t, f, l.g)
	st := f.Status()
	ts := l.eng.TailState()
	if st.Generation != ts.Gen || st.AppliedBytes != ts.WALSize {
		t.Fatalf("follower at %+v, leader at %+v", st, ts)
	}
}

// TestFollowerRefusesForeignDir: bootstrapping must never wipe a
// directory that holds a database but no replica marker — that is
// somebody's primary.
func TestFollowerRefusesForeignDir(t *testing.T) {
	dir := t.TempDir()
	eng, d, g, err := persist.Open(dir, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Intern(term.NewIRI("urn:p"))
	enc := dict.Triple3{d.Intern(term.NewIRI("urn:s")), p, d.Intern(term.NewLiteral("v"))}
	g.AddID(enc)
	if err := eng.Append(d, []dict.Triple3{enc}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	l := newTestLeader(t)
	if _, err := Open(context.Background(), fastCfg(dir, NewLeader(l.eng))); err == nil {
		t.Fatal("follower bootstrapped into a foreign database directory")
	}
	// The database must be untouched and reopenable.
	eng2, _, g2, err := persist.Open(dir, persist.Options{NoSync: true})
	if err != nil {
		t.Fatalf("foreign directory damaged: %v", err)
	}
	defer eng2.Close()
	if g2.Len() != 1 {
		t.Fatalf("foreign directory lost data: %d triples", g2.Len())
	}
}

// TestFollowerLocalRestart: a follower with an intact mirror reopens
// from local disk without contacting the leader, then catches up on
// what it missed while down.
func TestFollowerLocalRestart(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 8, 0)

	dir := t.TempDir()
	cfg := fastCfg(dir, NewLeader(l.eng))
	f, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitLocal := f.Status()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l.add(t, 8, 50) // written while the follower was down

	f2, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st := f2.Status()
	if st.Bootstraps != 0 {
		t.Fatalf("local reopen bootstrapped %d times, want 0", st.Bootstraps)
	}
	if st.AppliedBytes != waitLocal.AppliedBytes {
		t.Fatalf("local reopen at %d bytes, want the %d it had", st.AppliedBytes, waitLocal.AppliedBytes)
	}

	sink := &memSink{}
	stop := startRun(f2, sink)
	defer stop()
	waitConverged(t, f2, l)
	assertSameGraph(t, f2, l.g)
	stop()
	assertByteMirror(t, dir, l.dir)
}

// TestFollowerGenerationSwitch: the leader compacts mid-tail, voiding
// every offset; the follower must re-bootstrap onto the new generation
// and converge, and the sink must see a Reset.
func TestFollowerGenerationSwitch(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 10, 0)

	f, err := Open(context.Background(), fastCfg(t.TempDir(), NewLeader(l.eng)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sink := &memSink{}
	stop := startRun(f, sink)
	defer stop()
	waitConverged(t, f, l)

	if err := l.eng.Compact(l.g); err != nil {
		t.Fatal(err)
	}
	l.add(t, 5, 200)
	waitConverged(t, f, l)
	assertSameGraph(t, f, l.g)

	st := f.Status()
	if st.Bootstraps < 2 {
		t.Fatalf("Bootstraps = %d after a generation switch, want >= 2", st.Bootstraps)
	}
	resets, _, _ := sink.snapshot()
	if resets == 0 {
		t.Fatal("sink never saw the post-switch Reset")
	}
}

// TestFollowerStaleMetaRebootstraps: a follower that was down across a
// leader generation switch reopens its (now stale) mirror locally, and
// the tail loop's first contact re-bootstraps it.
func TestFollowerStaleMetaRebootstraps(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 6, 0)

	dir := t.TempDir()
	cfg := fastCfg(dir, NewLeader(l.eng))
	f, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation switch while the follower is down.
	if err := l.eng.Compact(l.g); err != nil {
		t.Fatal(err)
	}
	l.add(t, 4, 100)

	f2, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	sink := &memSink{}
	stop := startRun(f2, sink)
	defer stop()
	waitConverged(t, f2, l)
	assertSameGraph(t, f2, l.g)
	if f2.Status().Bootstraps == 0 {
		t.Fatal("stale-generation mirror was never re-bootstrapped")
	}
}

// TestFollowerProvisionalMetaRedone: a crash between the provisional
// marker and the final one leaves generation 0 behind; reopening must
// redo the bootstrap rather than trust whatever files survived.
func TestFollowerProvisionalMetaRedone(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 6, 0)

	dir := t.TempDir()
	cfg := fastCfg(dir, NewLeader(l.eng))
	f, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: provisional marker, half-gone files.
	if err := os.WriteFile(filepath.Join(dir, MetaFile), []byte(`{"generation":"0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, persist.WALFile), 7); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Status().Bootstraps != 1 {
		t.Fatalf("Bootstraps = %d reopening a provisional mirror, want 1", f2.Status().Bootstraps)
	}
	assertSameGraph(t, f2, l.g)
	assertByteMirror(t, dir, l.dir)
}

// TestLeaderTailValidation: offsets beyond the durable size and foreign
// generations answer ErrWrongGeneration; a satisfied long-poll returns
// promptly with the new bytes.
func TestLeaderTailValidation(t *testing.T) {
	l := newTestLeader(t)
	l.add(t, 3, 0)
	src := NewLeader(l.eng)
	ctx := context.Background()
	ts := l.eng.TailState()

	if _, err := src.Tail(ctx, ts.Gen+1, 0, 1<<20, 0); err == nil {
		t.Fatal("foreign generation served")
	}
	if _, err := src.Tail(ctx, ts.Gen, ts.WALSize+1, 1<<20, 0); err == nil {
		t.Fatal("offset beyond the durable log served")
	}

	// A long-poll at the tip is satisfied by a concurrent append.
	done := make(chan Chunk, 1)
	go func() {
		c, err := src.Tail(ctx, ts.Gen, ts.WALSize, 1<<20, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- c
	}()
	time.Sleep(20 * time.Millisecond)
	l.add(t, 1, 99)
	select {
	case c := <-done:
		if len(c.Data) == 0 {
			t.Fatal("satisfied long-poll returned a heartbeat")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke for the append")
	}

	// An expired long-poll is a heartbeat, not an error.
	c, err := src.Tail(ctx, l.eng.TailState().Gen, l.eng.TailState().WALSize, 1<<20, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Data) != 0 {
		t.Fatalf("idle long-poll returned %d bytes", len(c.Data))
	}
}
