package repl

import "semwebdb/internal/obs"

// Replication metrics, labeled by database name — the first families
// with the per-database label dimension the ROADMAP observability item
// asks for. The lag gauges are what a fleet alerts on: bytes/records
// of leader log the replica has not yet applied, refreshed on every
// chunk (including heartbeats, so an idle replica converges to zero
// rather than freezing at its last batch).
var (
	lagBytesVec = obs.Default.GaugeVec("semwebd_repl_lag_bytes",
		"Replication lag in WAL bytes behind the leader's durable log.", "db")
	lagRecordsVec = obs.Default.GaugeVec("semwebd_repl_lag_records",
		"Replication lag in WAL records behind the leader's durable log.", "db")
	appliedBytesVec = obs.Default.GaugeVec("semwebd_repl_applied_bytes",
		"Replica applied offset: durable bytes of the leader's WAL mirrored and applied locally.", "db")
	batchesAppliedVec = obs.Default.CounterVec("semwebd_repl_batches_applied_total",
		"Replication batches (non-empty tail chunks) applied.", "db")
	recordsAppliedVec = obs.Default.CounterVec("semwebd_repl_records_applied_total",
		"WAL records applied from the replication stream.", "db")
	bootstrapsVec = obs.Default.CounterVec("semwebd_repl_bootstraps_total",
		"Full snapshot bootstraps (initial sync and generation switches).", "db")
	reconnectsVec = obs.Default.CounterVec("semwebd_repl_reconnects_total",
		"Reconnects to the leader after transport errors.", "db")
)

// gauges holds a follower's pre-resolved metric children.
type gauges struct {
	lagBytes, lagRecords, appliedBytes *obs.Gauge
	batches, records                   *obs.Counter
	bootstraps, reconnects             *obs.Counter
}

func newGauges(db string) gauges {
	return gauges{
		lagBytes:     lagBytesVec.With(db),
		lagRecords:   lagRecordsVec.With(db),
		appliedBytes: appliedBytesVec.With(db),
		batches:      batchesAppliedVec.With(db),
		records:      recordsAppliedVec.With(db),
		bootstraps:   bootstrapsVec.With(db),
		reconnects:   reconnectsVec.With(db),
	}
}
