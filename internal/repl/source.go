package repl

import (
	"context"
	"io"
	"time"

	"semwebdb/internal/persist"
)

// DefaultMaxChunk is the default byte budget for one tail chunk.
const DefaultMaxChunk = 1 << 20

// Leader serves a persist.Engine's durable log as a replication
// Source — the in-process half behind the HTTP repl endpoints, and
// what chains replicas: a follower's own engine is a byte-exact mirror
// of its leader's log, so it can lead downstream followers unchanged.
type Leader struct {
	eng *persist.Engine
}

// NewLeader wraps an engine.
func NewLeader(e *persist.Engine) *Leader { return &Leader{eng: e} }

// State implements Source.
func (l *Leader) State(ctx context.Context) (State, error) {
	ts := l.eng.TailState()
	return State{
		Generation:    ts.Gen,
		WALSize:       ts.WALSize,
		WALRecords:    ts.WALRecords,
		SnapshotBytes: ts.SnapshotBytes,
	}, nil
}

// Snapshot implements Source.
func (l *Leader) Snapshot(ctx context.Context, gen uint64) (io.ReadCloser, int64, error) {
	return l.eng.OpenSnapshot(gen)
}

// Tail implements Source: it reads [from, from+max) of the named
// generation, long-polling up to wait when the log holds nothing past
// from. The expiry of wait yields an empty heartbeat chunk, not an
// error; cancellation of ctx is an error.
func (l *Leader) Tail(ctx context.Context, gen uint64, from int64, max int, wait time.Duration) (Chunk, error) {
	if max <= 0 {
		max = DefaultMaxChunk
	}
	if wait > 0 {
		wctx, cancel := context.WithTimeout(ctx, wait)
		_, err := l.eng.WaitTail(wctx, gen, from)
		cancel()
		if err != nil && ctx.Err() != nil {
			return Chunk{}, ctx.Err()
		}
		// A wait expiry falls through: ReadWALAt reports the (possibly
		// unchanged) state, and an empty chunk is the heartbeat. Other
		// WaitTail errors (engine closed) surface from ReadWALAt too.
	}
	b, st, err := l.eng.ReadWALAt(gen, from, max)
	if err != nil {
		return Chunk{}, err
	}
	return Chunk{
		Generation: st.Gen,
		From:       from,
		WALSize:    st.WALSize,
		WALRecords: st.WALRecords,
		Data:       b,
	}, nil
}
