package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// frame builds one wire frame around payload: the u32 length + u32
// CRC32-C prefix the WAL writer produces. Test-local on purpose, so the
// decoder is checked against the format, not against itself.
func frame(payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(b[8:], payload)
	return b
}

// testStream returns a stream of framed payloads plus the payloads.
func testStream() ([]byte, [][]byte) {
	payloads := [][]byte{
		{0x01},
		{0x02, 0x03, 0x04},
		bytes.Repeat([]byte{0xAA}, 100),
		{0xFF},
		bytes.Repeat([]byte{0x5C}, 7),
	}
	var stream []byte
	for _, p := range payloads {
		stream = append(stream, frame(p)...)
	}
	return stream, payloads
}

// drain pulls every decoded record out of d, returning payloads and the
// total framed bytes they accounted for.
func drain(d *Decoder) (got [][]byte, framed int) {
	for {
		p, n, ok := d.Next()
		if !ok {
			return got, framed
		}
		got = append(got, p)
		framed += n
	}
}

// TestDecoderSplitMatrix feeds the same stream split at every possible
// boundary into two parts, and also one byte at a time: every split
// must decode the identical record sequence and account for every
// stream byte.
func TestDecoderSplitMatrix(t *testing.T) {
	stream, payloads := testStream()
	check := func(t *testing.T, feeds [][]byte) {
		t.Helper()
		d := NewDecoder()
		consumed := 0
		for _, f := range feeds {
			n, err := d.Feed(f)
			if err != nil {
				t.Fatalf("Feed: %v", err)
			}
			consumed += n
		}
		got, framed := drain(d)
		if len(got) != len(payloads) {
			t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("record %d: got %x want %x", i, got[i], payloads[i])
			}
		}
		if consumed != len(stream) || framed != len(stream) {
			t.Fatalf("consumed %d, framed %d, want %d", consumed, framed, len(stream))
		}
		if d.Buffered() != 0 {
			t.Fatalf("%d bytes left buffered after a complete stream", d.Buffered())
		}
	}
	for cut := 0; cut <= len(stream); cut++ {
		check(t, [][]byte{stream[:cut], stream[cut:]})
	}
	var bytewise [][]byte
	for i := range stream {
		bytewise = append(bytewise, stream[i:i+1])
	}
	check(t, bytewise)
}

// TestDecoderPartialFrameHeld checks that an incomplete frame consumes
// nothing and yields nothing until its remaining bytes arrive.
func TestDecoderPartialFrameHeld(t *testing.T) {
	payload := bytes.Repeat([]byte{0x42}, 32)
	fr := frame(payload)
	d := NewDecoder()
	n, err := d.Feed(fr[:len(fr)-1])
	if err != nil || n != 0 {
		t.Fatalf("partial feed: consumed %d, err %v", n, err)
	}
	if _, _, ok := d.Next(); ok {
		t.Fatal("Next returned a record from a partial frame")
	}
	if d.Buffered() != len(fr)-1 {
		t.Fatalf("Buffered %d, want %d", d.Buffered(), len(fr)-1)
	}
	n, err = d.Feed(fr[len(fr)-1:])
	if err != nil || n != len(fr) {
		t.Fatalf("completing feed: consumed %d, err %v; want %d", n, err, len(fr))
	}
	got, _, ok := d.Next()
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("completed record: ok=%v got %x", ok, got)
	}
}

// TestDecoderRejectsCorruption exercises the failure arms: zero-length
// frames, absurd lengths, flipped payload bytes and flipped checksums
// must all fail with ErrFrameCorrupt; records already decoded before
// the damage stay available.
func TestDecoderRejectsCorruption(t *testing.T) {
	good := frame([]byte{0x01, 0x02})
	cases := map[string]func() []byte{
		"zero length": func() []byte {
			b := make([]byte, 8)
			return b
		},
		"absurd length": func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint32(b[0:4], maxFramePayload+1)
			return b
		},
		"flipped payload byte": func() []byte {
			b := bytes.Clone(good)
			b[8] ^= 0x80
			return b
		},
		"flipped checksum byte": func() []byte {
			b := bytes.Clone(good)
			b[4] ^= 0x01
			return b
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			d := NewDecoder()
			// A healthy frame first: corruption later in the stream must
			// not retract it.
			if _, err := d.Feed(frame([]byte{0x09})); err != nil {
				t.Fatal(err)
			}
			_, err := d.Feed(build())
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("err = %v, want ErrFrameCorrupt", err)
			}
			got, _ := drain(d)
			if len(got) != 1 || !bytes.Equal(got[0], []byte{0x09}) {
				t.Fatalf("pre-damage record lost: %x", got)
			}
		})
	}
}

// TestDecoderReorderedFramesDetected: swapping two frames of a WAL
// stream keeps each frame self-consistent, so the decoder (whose job is
// transport integrity, not ordering) accepts them — the applier layer
// is what rejects out-of-order semantics. What the decoder must
// guarantee is byte-exact framing: the reordered records come out
// exactly as framed, in stream order.
func TestDecoderReorderedFramesDetected(t *testing.T) {
	a, b := frame([]byte{0x01, 0x0A}), frame([]byte{0x02, 0x0B, 0x0C})
	d := NewDecoder()
	if _, err := d.Feed(append(bytes.Clone(b), a...)); err != nil {
		t.Fatal(err)
	}
	got, _ := drain(d)
	if len(got) != 2 || !bytes.Equal(got[0], []byte{0x02, 0x0B, 0x0C}) || !bytes.Equal(got[1], []byte{0x01, 0x0A}) {
		t.Fatalf("reordered stream decoded wrong: %x", got)
	}
}
