// Package repl implements WAL-shipping replication: a leader serves
// its durable log — the snapshot it rides beside plus a long-polled
// tail of appended record frames — and a follower mirrors that log
// byte for byte into its own database directory, applying records
// through the same idempotent replay path crash recovery uses.
//
// The unit of agreement is (generation, byte offset) into the leader's
// WAL. Within a generation the log is append-only, so a follower's
// durable mirror size doubles as its replication offset; a generation
// switch (compaction checkpoint, epoch Swap, leader restart) voids all
// offsets, and the follower re-bootstraps from the current snapshot.
// Because record frames carry their own CRC32-C and replay re-interns
// define records idempotently, arbitrary crash points on either side
// reduce to cases the storage layer already handles: a torn local tail
// is truncated on reopen and re-fetched, and a re-applied suffix is
// absorbed by set semantics.
package repl

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Chunk wire layout (version 1):
//
//	magic "SWDB-RPL" | uint16 version | uint16 flags |
//	uint64 generation | uint64 from | uint64 walSize |
//	uint64 walRecords | uint32 payloadLen | payload
//
// The payload is a verbatim byte range [from, from+payloadLen) of the
// leader's WAL file for the named generation — framed records exactly
// as written, CRCs carried through; at from=0 it begins with the WAL
// file header. walSize/walRecords are the leader's durable totals at
// response time, so every chunk doubles as a lag report. A chunk may
// end mid-record (the leader slices by bytes, not frames); the decoder
// buffers the partial frame until the next chunk completes it. An
// empty payload is a heartbeat: the long-poll window expired with
// nothing new.
const (
	chunkMagic   = "SWDB-RPL"
	wireVersion  = 1
	chunkHdrSize = 8 + 2 + 2 + 8 + 8 + 8 + 8 + 4

	// maxChunkPayload bounds what a decoder will buffer for one chunk;
	// leaders slice well below it (see serve's maxTailBytes).
	maxChunkPayload = 64 << 20
)

// Chunk is one replication batch: a byte range of the leader's WAL
// plus the durable state it was consistent with.
type Chunk struct {
	Generation uint64
	From       int64
	WALSize    int64
	WALRecords int
	Data       []byte
}

// State is a leader's replication state as served by the repl/state
// endpoint; the JSON field names match semweb.ReplState.
type State struct {
	Replica       bool   `json:"replica"`
	Generation    uint64 `json:"generation"`
	WALSize       int64  `json:"wal_size"`
	WALRecords    int    `json:"wal_records"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
}

// Source is where a follower replicates from: the leader's replication
// state, its current snapshot, and its WAL tail. Implementations are
// an HTTP client (Dial) in production and in-process adapters in
// tests.
type Source interface {
	// State reports the current replication state.
	State(ctx context.Context) (State, error)
	// Snapshot opens the snapshot of the given generation. A nil
	// ReadCloser with nil error means the generation has no snapshot
	// (its full state is the WAL alone). persist.ErrWrongGeneration
	// reports a generation switch.
	Snapshot(ctx context.Context, gen uint64) (io.ReadCloser, int64, error)
	// Tail returns WAL bytes of the given generation starting at byte
	// offset from, up to max bytes per chunk. When the log holds
	// nothing past from, the call long-polls up to wait before
	// returning an empty heartbeat chunk. persist.ErrWrongGeneration
	// reports a generation switch (including from beyond the durable
	// size).
	Tail(ctx context.Context, gen uint64, from int64, max int, wait time.Duration) (Chunk, error)
}

// EncodeChunkHeader appends the wire header for c to b (c.Data is not
// appended; the caller streams it separately).
func EncodeChunkHeader(b []byte, c Chunk) []byte {
	b = append(b, chunkMagic...)
	b = binary.LittleEndian.AppendUint16(b, wireVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint64(b, c.Generation)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.From))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.WALSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.WALRecords))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Data)))
	return b
}

// WriteChunk writes the framed chunk (header + payload) to w.
func WriteChunk(w io.Writer, c Chunk) error {
	hdr := EncodeChunkHeader(make([]byte, 0, chunkHdrSize), c)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(c.Data) == 0 {
		return nil
	}
	_, err := w.Write(c.Data)
	return err
}

// ReadChunk reads one framed chunk from r. Header fields are validated
// for shape (magic, version, sane lengths) so a confused or hostile
// peer cannot make the reader allocate more than the bytes actually
// sent claim; payload integrity is the frame decoder's job.
func ReadChunk(r io.Reader) (Chunk, error) {
	var c Chunk
	var hdr [chunkHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return c, fmt.Errorf("repl: short chunk header: %w", err)
	}
	if string(hdr[:8]) != chunkMagic {
		return c, fmt.Errorf("repl: bad chunk magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != wireVersion {
		return c, fmt.Errorf("repl: unsupported wire version %d", v)
	}
	c.Generation = binary.LittleEndian.Uint64(hdr[12:20])
	c.From = int64(binary.LittleEndian.Uint64(hdr[20:28]))
	c.WALSize = int64(binary.LittleEndian.Uint64(hdr[28:36]))
	c.WALRecords = int(int64(binary.LittleEndian.Uint64(hdr[36:44])))
	n := binary.LittleEndian.Uint32(hdr[44:48])
	if c.From < 0 || c.WALSize < 0 || c.WALRecords < 0 {
		return c, fmt.Errorf("repl: negative chunk coordinates")
	}
	if n > maxChunkPayload {
		return c, fmt.Errorf("repl: chunk payload of %d bytes exceeds limit", n)
	}
	if n > 0 {
		// Copy through a growing buffer so the allocation tracks the
		// bytes actually present, not the length a truncated or hostile
		// stream claims (the readRecord idiom).
		var pb bytes.Buffer
		if _, err := io.CopyN(&pb, r, int64(n)); err != nil {
			return c, fmt.Errorf("repl: short chunk payload: %w", err)
		}
		c.Data = pb.Bytes()
	}
	return c, nil
}
