package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"semwebdb/internal/persist"
)

// httpSource speaks to a leader semwebd's /v1/{db}/repl/* endpoints.
type httpSource struct {
	base string // e.g. "http://host:port"
	db   string
	c    *http.Client
}

// Dial returns a Source backed by the replication endpoints of the
// database db on the semwebd at base (scheme://host:port; a bare
// host:port gets http://). client may be nil for a default client;
// whatever is used must not set a global timeout, or it will cut
// long-polled tails short — per-request deadlines come from contexts.
func Dial(base, db string, client *http.Client) Source {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if client == nil {
		client = &http.Client{}
	}
	return &httpSource{base: strings.TrimRight(base, "/"), db: db, c: client}
}

func (s *httpSource) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := s.base + "/v1/" + url.PathEscape(s.db) + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.c.Do(req)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
		return resp, nil
	case http.StatusConflict:
		resp.Body.Close()
		return nil, persist.ErrWrongGeneration
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("repl: leader %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
}

// State implements Source.
func (s *httpSource) State(ctx context.Context) (State, error) {
	var st State
	resp, err := s.get(ctx, "/repl/state", nil)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return st, fmt.Errorf("repl: decoding leader state: %w", err)
	}
	return st, nil
}

// Snapshot implements Source.
func (s *httpSource) Snapshot(ctx context.Context, gen uint64) (io.ReadCloser, int64, error) {
	q := url.Values{"gen": {strconv.FormatUint(gen, 10)}}
	resp, err := s.get(ctx, "/repl/snapshot", q)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode == http.StatusNoContent {
		resp.Body.Close()
		return nil, 0, nil
	}
	return resp.Body, resp.ContentLength, nil
}

// Tail implements Source.
func (s *httpSource) Tail(ctx context.Context, gen uint64, from int64, max int, wait time.Duration) (Chunk, error) {
	q := url.Values{
		"gen":  {strconv.FormatUint(gen, 10)},
		"from": {strconv.FormatInt(from, 10)},
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
		// Give the response a hard deadline past the server's poll
		// window so a wedged connection cannot hang the follower.
		wctx, cancel := context.WithTimeout(ctx, wait+30*time.Second)
		defer cancel()
		ctx = wctx
	}
	resp, err := s.get(ctx, "/repl/wal", q)
	if err != nil {
		return Chunk{}, err
	}
	defer resp.Body.Close()
	return ReadChunk(resp.Body)
}
