package repl

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// TestChunkRoundTrip writes chunks through the wire framing and reads
// them back, including the empty-payload heartbeat.
func TestChunkRoundTrip(t *testing.T) {
	chunks := []Chunk{
		{Generation: 0xDEADBEEFCAFE, From: 20, WALSize: 1234, WALRecords: 17, Data: []byte("framed records go here")},
		{Generation: 1, From: 0, WALSize: 20, WALRecords: 0, Data: nil}, // heartbeat
		{Generation: ^uint64(0), From: 1 << 40, WALSize: 1 << 41, WALRecords: 1 << 20, Data: bytes.Repeat([]byte{0x7F}, 4096)},
	}
	for i, c := range chunks {
		var buf bytes.Buffer
		if err := WriteChunk(&buf, c); err != nil {
			t.Fatalf("chunk %d: write: %v", i, err)
		}
		got, err := ReadChunk(&buf)
		if err != nil {
			t.Fatalf("chunk %d: read: %v", i, err)
		}
		if got.Generation != c.Generation || got.From != c.From || got.WALSize != c.WALSize || got.WALRecords != c.WALRecords {
			t.Fatalf("chunk %d: header mismatch: got %+v want %+v", i, got, c)
		}
		if !bytes.Equal(got.Data, c.Data) {
			t.Fatalf("chunk %d: payload mismatch: %d vs %d bytes", i, len(got.Data), len(c.Data))
		}
		if buf.Len() != 0 {
			t.Fatalf("chunk %d: %d trailing bytes after read", i, buf.Len())
		}
	}
}

// TestReadChunkRejects drives every validation arm of ReadChunk with a
// hand-damaged header.
func TestReadChunkRejects(t *testing.T) {
	var ok bytes.Buffer
	if err := WriteChunk(&ok, Chunk{Generation: 7, From: 20, WALSize: 52, WALRecords: 2, Data: []byte("abcd")}); err != nil {
		t.Fatal(err)
	}
	valid := ok.Bytes()

	damage := map[string]func() []byte{
		"empty stream":     func() []byte { return nil },
		"truncated header": func() []byte { return valid[:chunkHdrSize-1] },
		"bad magic": func() []byte {
			b := bytes.Clone(valid)
			b[0] = 'X'
			return b
		},
		"future version": func() []byte {
			b := bytes.Clone(valid)
			binary.LittleEndian.PutUint16(b[8:10], wireVersion+1)
			return b
		},
		"negative from": func() []byte {
			b := bytes.Clone(valid)
			binary.LittleEndian.PutUint64(b[20:28], ^uint64(0))
			return b
		},
		"negative wal size": func() []byte {
			b := bytes.Clone(valid)
			binary.LittleEndian.PutUint64(b[28:36], ^uint64(3))
			return b
		},
		"payload over cap": func() []byte {
			b := bytes.Clone(valid)
			binary.LittleEndian.PutUint32(b[44:48], maxChunkPayload+1)
			return b
		},
		"truncated payload": func() []byte { return valid[:len(valid)-2] },
	}
	for name, build := range damage {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadChunk(bytes.NewReader(build())); err == nil {
				t.Fatal("damaged chunk read without error")
			}
		})
	}
}

// TestReadChunkBoundedAllocation: a header claiming a huge payload on a
// stream that does not carry it must fail from the missing bytes, not
// allocate the claim. We can't measure the allocation directly here,
// but we can pin the failure mode: an unexpected-EOF error, promptly.
func TestReadChunkBoundedAllocation(t *testing.T) {
	hdr := EncodeChunkHeader(nil, Chunk{Generation: 1, From: 0, WALSize: 99, Data: nil})
	// Claim just under the cap with only 3 real bytes behind it.
	binary.LittleEndian.PutUint32(hdr[44:48], maxChunkPayload)
	_, err := ReadChunk(io.MultiReader(bytes.NewReader(hdr), strings.NewReader("abc")))
	if err == nil {
		t.Fatal("short payload read without error")
	}
}
