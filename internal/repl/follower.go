package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/persist"
)

// MetaFile marks a database directory as a replication mirror and
// records which leader generation its bytes belong to. Its presence is
// also the ownership check: a follower refuses to bootstrap (wipe)
// into a directory that holds a database but no meta file, so pointing
// -follow at a leader's own dbdir cannot destroy it.
const MetaFile = "repl.json"

// replMeta is the MetaFile payload. The generation is a full-range
// uint64, which JSON numbers cannot carry exactly, so it travels as a
// decimal string. Generation zero is the provisional marker written
// before a bootstrap wipes the directory: a crash mid-bootstrap leaves
// it behind, and reopening treats it as "mine, but unusable —redo".
type replMeta struct {
	Generation string `json:"generation"`
}

// Config configures a Follower.
type Config struct {
	// Dir is the local mirror directory (created if missing). It must
	// be dedicated to this follower.
	Dir string
	// Source is the leader.
	Source Source
	// Name labels this follower's metrics (the db label; "default" when
	// empty).
	Name string
	// NoSync disables fsync on the local mirror.
	NoSync bool
	// MaxChunk is the per-request tail byte budget (DefaultMaxChunk
	// when 0).
	MaxChunk int
	// Wait is the long-poll window per tail request (10s when 0).
	Wait time.Duration
	// Backoff is the delay before retrying after a transport error
	// (500ms when 0).
	Backoff time.Duration
}

// Status is a point-in-time view of a follower's progress.
type Status struct {
	// Generation is the leader WAL generation the mirror tracks.
	Generation uint64
	// AppliedBytes/AppliedRecords are the durable local mirror totals —
	// byte-for-byte prefixes of the leader's log, so AppliedBytes is
	// also the replication offset.
	AppliedBytes   int64
	AppliedRecords int
	// LeaderWALSize/LeaderWALRecords are the leader's durable totals as
	// of the last tail response (or bootstrap).
	LeaderWALSize    int64
	LeaderWALRecords int
	// LagBytes/LagRecords are the leader totals minus the applied
	// totals at that same observation.
	LagBytes   int64
	LagRecords int
	// Bootstraps counts full snapshot syncs (initial plus generation
	// switches); Reconnects counts transport-error retries.
	Bootstraps uint64
	Reconnects uint64
}

// Sink receives the follower's replicated state. Publish is called
// once per applied batch, after the batch is durable in the local
// mirror, with the new graph (a fresh value; the previous one is never
// mutated) and the triples this batch actually added. Reset replaces
// everything after a re-bootstrap: prior dictionaries and graphs are
// obsolete.
type Sink interface {
	Reset(d *dict.Dict, g *graph.Graph)
	Publish(g *graph.Graph, fresh []dict.Triple3)
}

// Follower mirrors a leader's durable log into a local database
// directory and applies it to an in-memory graph as it arrives. Open
// establishes a servable state (bootstrapping from the leader only
// when the local mirror is missing or unusable); Run tails the leader
// until the context ends, feeding a Sink. Methods other than Run and
// Close are safe to call concurrently with Run.
type Follower struct {
	cfg Config
	mg  gauges

	mu sync.Mutex
	// eng through gen are published under mu for concurrent readers
	// (Current, Engine, Status); the Run/bootstrap goroutine is their
	// sole writer and reads them without the lock.
	eng     *persist.Engine
	d       *dict.Dict
	cur     *graph.Graph
	applier *persist.Applier
	gen     uint64 // leader generation mirrored
	stage   []byte // guarded by mu; fetched beyond durable: a partial record frame
	status  Status // guarded by mu
}

// Open prepares a follower over dir. When dir already holds a mirror
// of the leader's current or a previous generation, it is recovered
// locally (torn tails truncated by ordinary WAL recovery) without
// contacting the leader — a replica restarts into service even while
// its leader is down, serving its last applied state until Run
// reconnects. Otherwise the leader is contacted for a full bootstrap:
// snapshot, then the WAL prefix, then the meta marker, in an order
// that makes every crash point recoverable.
func Open(ctx context.Context, cfg Config) (*Follower, error) {
	if cfg.Dir == "" || cfg.Source == nil {
		return nil, fmt.Errorf("repl: Config.Dir and Config.Source are required")
	}
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = DefaultMaxChunk
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 10 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	f := &Follower{cfg: cfg, mg: newGauges(cfg.Name)}

	gen, ok, err := f.readMeta()
	if err != nil {
		return nil, err
	}
	if ok && gen != 0 {
		if err := f.openLocal(gen); err == nil {
			return f, nil
		}
		// The local mirror did not recover (damage past what WAL
		// recovery absorbs). It is only a cache of the leader's log:
		// fall through to a fresh bootstrap.
	}
	if !ok {
		// No meta marker: only ever bootstrap into a directory that
		// holds no database, so a leader's dbdir cannot be wiped by a
		// misdirected -follow.
		for _, name := range []string{persist.SnapshotFile, persist.WALFile} {
			if _, err := os.Stat(filepath.Join(cfg.Dir, name)); err == nil {
				return nil, fmt.Errorf("repl: %s holds a database but no %s marker; refusing to overwrite it with a replica bootstrap", cfg.Dir, MetaFile)
			}
		}
	}
	if err := f.bootstrap(ctx); err != nil {
		return nil, err
	}
	return f, nil
}

// readMeta returns the recorded generation and whether a meta file
// exists.
func (f *Follower) readMeta() (uint64, bool, error) {
	b, err := os.ReadFile(filepath.Join(f.cfg.Dir, MetaFile))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	var m replMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return 0, true, nil // ours but unreadable: treat as provisional
	}
	gen, err := strconv.ParseUint(m.Generation, 10, 64)
	if err != nil {
		return 0, true, nil
	}
	return gen, true, nil
}

func (f *Follower) writeMeta(gen uint64) error {
	b, err := json.Marshal(replMeta{Generation: strconv.FormatUint(gen, 10)})
	if err != nil {
		return err
	}
	path := filepath.Join(f.cfg.Dir, MetaFile)
	tmp := path + ".tmp"
	if err := writeFileSynced(tmp, b, !f.cfg.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if !f.cfg.NoSync {
		return syncDirBestEffort(f.cfg.Dir)
	}
	return nil
}

// openLocal recovers the existing mirror without contacting the
// leader.
func (f *Follower) openLocal(gen uint64) error {
	eng, d, g, err := persist.Open(f.cfg.Dir, persist.Options{
		// Never compact a mirror: its WAL must stay a byte prefix of
		// the leader's.
		CompactThreshold: -1,
		NoSync:           f.cfg.NoSync,
	})
	if err != nil {
		return err
	}
	f.install(eng, d, g, gen)
	return nil
}

// install publishes a freshly opened mirror into the follower.
func (f *Follower) install(eng *persist.Engine, d *dict.Dict, g *graph.Graph, gen uint64) {
	ts := eng.TailState()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.eng = eng
	f.d = d
	f.cur = g
	f.applier = persist.NewApplier(d, ts.Defined)
	f.gen = gen
	f.stage = nil
	f.status.Generation = gen
	f.status.AppliedBytes = ts.WALSize
	f.status.AppliedRecords = ts.WALRecords
	// The mirror is a prefix of this generation's leader log, so its
	// totals are the best-known leader state until the first tail
	// chunk refreshes them; zero lag, not a stale pre-install reading.
	f.status.LeaderWALSize = ts.WALSize
	f.status.LeaderWALRecords = ts.WALRecords
	f.status.LagBytes = 0
	f.status.LagRecords = 0
	f.mg.appliedBytes.Set(ts.WALSize)
	f.mg.lagBytes.Set(0)
	f.mg.lagRecords.Set(0)
}

// bootstrap wipes the mirror and rebuilds it from the leader's current
// generation. The meta marker is written provisionally (generation 0)
// before the wipe and finally (the real generation) only after the
// snapshot and WAL prefix are durable, so any crash point leaves
// either a usable previous state or an unmistakably incomplete one.
// A generation switch racing the bootstrap restarts it.
func (f *Follower) bootstrap(ctx context.Context) error {
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.bootstrapOnce(ctx)
		if err == nil {
			f.mg.bootstraps.Inc()
			f.mu.Lock()
			f.status.Bootstraps++
			f.mu.Unlock()
			return nil
		}
		if !errors.Is(err, persist.ErrWrongGeneration) {
			return err
		}
		// The leader compacted or swapped mid-bootstrap; start over on
		// its new generation.
	}
}

func (f *Follower) bootstrapOnce(ctx context.Context) error {
	if f.eng != nil {
		f.eng.Close()
		f.mu.Lock()
		f.eng = nil
		f.mu.Unlock()
	}
	if err := f.writeMeta(0); err != nil {
		return err
	}
	for _, name := range []string{persist.SnapshotFile, persist.WALFile, persist.WALFile + ".torn", persist.SnapshotFile + ".tmp"} {
		if err := os.Remove(filepath.Join(f.cfg.Dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}

	st, err := f.cfg.Source.State(ctx)
	if err != nil {
		return err
	}
	gen := st.Generation

	// Snapshot first (the big transfer), via tmp+rename like the
	// leader's own checkpoint.
	rc, _, err := f.cfg.Source.Snapshot(ctx, gen)
	if err != nil {
		return err
	}
	if rc != nil {
		snapPath := filepath.Join(f.cfg.Dir, persist.SnapshotFile)
		tmp := snapPath + ".tmp"
		err := copyFileSynced(tmp, rc, !f.cfg.NoSync)
		rc.Close()
		if err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, snapPath); err != nil {
			os.Remove(tmp)
			return err
		}
	}

	// Then the WAL prefix, verbatim from byte 0 (including the file
	// header), so the mirror's offsets are the leader's offsets.
	wf, err := os.OpenFile(filepath.Join(f.cfg.Dir, persist.WALFile), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var off int64
	for {
		chunk, err := f.cfg.Source.Tail(ctx, gen, off, f.cfg.MaxChunk, 0)
		if err != nil {
			wf.Close()
			return err
		}
		if len(chunk.Data) > 0 {
			if _, err := wf.Write(chunk.Data); err != nil {
				wf.Close()
				return err
			}
			off += int64(len(chunk.Data))
		}
		if off >= chunk.WALSize {
			break
		}
	}
	if !f.cfg.NoSync {
		if err := wf.Sync(); err != nil {
			wf.Close()
			return err
		}
	}
	if err := wf.Close(); err != nil {
		return err
	}
	if !f.cfg.NoSync {
		if err := syncDirBestEffort(f.cfg.Dir); err != nil {
			return err
		}
	}

	// Only now does the meta marker claim the generation: everything it
	// promises is durable.
	if err := f.writeMeta(gen); err != nil {
		return err
	}
	return f.openLocal(gen)
}

// Run tails the leader until ctx ends, applying batches through sink.
// Transport errors retry with backoff; generation switches re-bootstrap
// (the sink gets a Reset); the only non-ctx error returns are local
// ones a retry cannot fix (disk failures, a wiped directory that can
// no longer be written).
func (f *Follower) Run(ctx context.Context, sink Sink) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		from := f.fetchedOffset()
		chunk, err := f.cfg.Source.Tail(ctx, f.gen, from, f.cfg.MaxChunk, f.cfg.Wait)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, persist.ErrWrongGeneration):
			if err := f.rebootstrap(ctx, sink); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if !f.noteRetry(ctx, err) {
					return err
				}
			}
		case err != nil:
			if !f.noteRetry(ctx, err) {
				return err
			}
		default:
			if chunk.Generation != f.gen || chunk.From != from {
				// A response for coordinates we did not ask for cannot
				// be applied at this offset; treat it like damage in
				// transit and re-request.
				if !f.noteRetry(ctx, fmt.Errorf("repl: chunk for gen %d offset %d, asked for gen %d offset %d", chunk.Generation, chunk.From, f.gen, from)) {
					return ctx.Err()
				}
				continue
			}
			if err := f.applyChunk(chunk, sink); err != nil {
				if errors.Is(err, ErrFrameCorrupt) {
					// Damaged in transit: drop the staged bytes and
					// re-read the (immutable within the generation)
					// range from the last durable offset.
					f.mu.Lock()
					f.stage = nil
					f.mu.Unlock()
					if !f.noteRetry(ctx, err) {
						return err
					}
					continue
				}
				// Anything else — a record that does not apply to this
				// state, a local append failure — means the mirror can
				// no longer be trusted to extend; rebuild it.
				if rerr := f.rebootstrap(ctx, sink); rerr != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					if !f.noteRetry(ctx, rerr) {
						return rerr
					}
				}
			}
		}
	}
}

// fetchedOffset is the leader-log offset to request next: durable
// mirror bytes plus any staged partial frame.
func (f *Follower) fetchedOffset() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status.AppliedBytes + int64(len(f.stage))
}

// noteRetry counts a transport retry and sleeps the backoff; false
// means ctx ended first.
func (f *Follower) noteRetry(ctx context.Context, cause error) bool {
	f.mg.reconnects.Inc()
	f.mu.Lock()
	f.status.Reconnects++
	f.mu.Unlock()
	select {
	case <-ctx.Done():
		return false
	case <-time.After(f.cfg.Backoff):
		return true
	}
}

// rebootstrap rebuilds the mirror on the leader's current generation
// and resets the sink to the fresh state.
func (f *Follower) rebootstrap(ctx context.Context, sink Sink) error {
	if err := f.bootstrap(ctx); err != nil {
		return err
	}
	f.mu.Lock()
	d, g := f.d, f.cur
	f.mu.Unlock()
	sink.Reset(d, g)
	return nil
}

// applyChunk stages the chunk's bytes, applies every frame they
// complete, appends those frames verbatim to the local WAL (durability
// before visibility, the leader's own ordering), and publishes the new
// graph to the sink.
func (f *Follower) applyChunk(chunk Chunk, sink Sink) error {
	f.mu.Lock()
	stage := append(f.stage, chunk.Data...)
	f.mu.Unlock()

	dec := NewDecoder()
	consumed, err := dec.Feed(stage)
	if err != nil {
		return err
	}

	var (
		next    *graph.Graph
		fresh   []dict.Triple3
		records int
	)
	if consumed > 0 {
		defines0 := f.applier.Defines()
		next = f.cur.Clone()
		for {
			payload, _, ok := dec.Next()
			if !ok {
				break
			}
			rec, err := f.applier.Apply(next, payload)
			if err != nil {
				return fmt.Errorf("repl: applying streamed record: %w", err)
			}
			if rec.IsTriple && rec.New {
				fresh = append(fresh, rec.Triple)
			}
			records++
		}
		defines := f.applier.Defines() - defines0
		if err := f.eng.AppendRaw(stage[:consumed], records, defines); err != nil {
			return fmt.Errorf("repl: mirroring batch: %w", err)
		}
	}

	rest := make([]byte, len(stage)-consumed)
	copy(rest, stage[consumed:])

	ts := f.eng.TailState()
	lagBytes := chunk.WALSize - ts.WALSize
	lagRecords := chunk.WALRecords - ts.WALRecords
	if lagBytes < 0 {
		lagBytes = 0
	}
	if lagRecords < 0 {
		lagRecords = 0
	}

	f.mu.Lock()
	f.stage = rest
	if next != nil {
		f.cur = next
	}
	f.status.AppliedBytes = ts.WALSize
	f.status.AppliedRecords = ts.WALRecords
	f.status.LeaderWALSize = chunk.WALSize
	f.status.LeaderWALRecords = chunk.WALRecords
	f.status.LagBytes = lagBytes
	f.status.LagRecords = lagRecords
	f.mu.Unlock()

	f.mg.appliedBytes.Set(ts.WALSize)
	f.mg.lagBytes.Set(lagBytes)
	f.mg.lagRecords.Set(int64(lagRecords))
	if records > 0 {
		f.mg.batches.Inc()
		f.mg.records.Add(uint64(records))
		sink.Publish(next, fresh)
	}
	return nil
}

// Current returns the dictionary and graph of the follower's latest
// applied state.
func (f *Follower) Current() (*dict.Dict, *graph.Graph) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.d, f.cur
}

// Engine exposes the mirror's storage engine — its tail API is what
// lets a replica lead further replicas, and its Stats feed the serving
// layer.
func (f *Follower) Engine() *persist.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng
}

// Status returns a copy of the follower's progress counters.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

// Close closes the local mirror. Call after Run has returned.
func (f *Follower) Close() error {
	f.mu.Lock()
	eng := f.eng
	f.mu.Unlock()
	if eng == nil {
		return nil
	}
	return eng.Close()
}

// writeFileSynced writes b to path and optionally fsyncs it.
func writeFileSynced(path string, b []byte, sync bool) error {
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fh.Write(b); err != nil {
		fh.Close()
		return err
	}
	if sync {
		if err := fh.Sync(); err != nil {
			fh.Close()
			return err
		}
	}
	return fh.Close()
}

// copyFileSynced streams r into path and optionally fsyncs it.
func copyFileSynced(path string, r io.Reader, sync bool) error {
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(fh, r); err != nil {
		fh.Close()
		return err
	}
	if sync {
		if err := fh.Sync(); err != nil {
			fh.Close()
			return err
		}
	}
	return fh.Close()
}

// syncDirBestEffort fsyncs a directory so completed renames survive a
// crash.
func syncDirBestEffort(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}
