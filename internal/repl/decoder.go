package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// maxFramePayload bounds a single record frame's claimed payload. Real
// records are a term or three varints; anything near this is garbage,
// and the bound keeps a corrupt or hostile length prefix from pinning
// the buffered partial frame (and the decoder's memory) at gigabytes.
const maxFramePayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameCorrupt reports a frame the decoder cannot accept: a
// checksum mismatch, a zero or absurd length. Unlike local WAL replay
// — where an unreadable record is the expected crash-torn tail — a
// corrupt frame inside a replication stream means the transport or the
// leader handed over damaged bytes; the follower must not apply or
// mirror them, and recovers by re-reading the leader's (immutable
// within a generation) log from its last durable offset.
var ErrFrameCorrupt = errors.New("repl: corrupt record frame")

// Decoder incrementally splits a replication stream back into WAL
// record payloads. Feed it the chunk payloads in log order; it hands
// back every complete, CRC-verified record and buffers a trailing
// partial frame until later bytes complete it. The zero value is not
// ready; use NewDecoder.
type Decoder struct {
	buf []byte // undecoded tail: zero or more partial frame bytes
	// payloads and frames of the records decoded so far, drained by
	// Next.
	out   [][]byte
	sizes []int
}

// NewDecoder returns an empty Decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Feed appends stream bytes and decodes every complete frame they
// finish. It returns the number of stream bytes consumed into complete
// frames so far this call (0 when b only extends a partial frame). On
// ErrFrameCorrupt the decoder's state is undefined; the caller
// discards it and re-reads from a durable offset.
func (d *Decoder) Feed(b []byte) (int, error) {
	d.buf = append(d.buf, b...)
	done := 0
	for {
		if len(d.buf) < 8 {
			return done, nil
		}
		n := binary.LittleEndian.Uint32(d.buf[:4])
		if n == 0 || n > maxFramePayload {
			return done, fmt.Errorf("%w: frame length %d", ErrFrameCorrupt, n)
		}
		frame := 8 + int(n)
		if len(d.buf) < frame {
			return done, nil
		}
		payload := d.buf[8:frame]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(d.buf[4:8]) {
			return done, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
		}
		// The payload slice aliases d.buf, which the next Feed appends
		// to; copy it out so handed-back records stay stable.
		p := make([]byte, n)
		copy(p, payload)
		d.out = append(d.out, p)
		d.sizes = append(d.sizes, frame)
		d.buf = d.buf[frame:]
		done += frame
	}
}

// Next returns the next decoded record payload and its framed size in
// stream bytes, or ok=false when all decoded records have been
// drained.
func (d *Decoder) Next() (payload []byte, frame int, ok bool) {
	if len(d.out) == 0 {
		return nil, 0, false
	}
	payload, frame = d.out[0], d.sizes[0]
	d.out, d.sizes = d.out[1:], d.sizes[1:]
	return payload, frame, true
}

// Buffered returns the number of bytes held for a partial frame.
func (d *Decoder) Buffered() int { return len(d.buf) }
