package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces the error-taxonomy rule from the serve/repl
// layers: sentinel errors (package-level "var ErrX = errors.New(…)"
// values such as ErrClosed, ErrCorrupt, ErrReplica, ErrCancelled,
// ErrWrongGeneration) flow through the system wrapped — %w at every
// fmt.Errorf — and are therefore only testable with errors.Is. Three
// shapes defeat that and are reported:
//
//   - comparing a sentinel with == or != (including switch cases on
//     an error value): breaks as soon as any layer wraps;
//   - wrapping a sentinel with a verb other than %w: strips the
//     identity errors.Is needs;
//   - string-matching an opaque error (strings.Contains/HasPrefix/
//     HasSuffix on err.Error(), or comparing err.Error() with ==):
//     couples callers to message text. Inspecting the rendered
//     message of a concrete error type (e.g. a *ParseError in its own
//     formatting tests) is fine and not flagged.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc: "require sentinel errors to be wrapped via %w and tested via errors.Is " +
		"— never == / != / switch, never string matching",
	Run: runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
				checkStringMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelObj resolves x to a package-level error variable named
// ErrXxx, or nil.
func sentinelObj(info *types.Info, x ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) < 4 {
		return nil
	}
	if c := v.Name()[3]; c < 'A' || c > 'Z' {
		// ErrX with lower-case continuation ("Errors") is not the
		// sentinel naming convention.
		if v.Name()[3] < '0' || v.Name()[3] > '9' {
			return nil
		}
	}
	if !types.Implements(v.Type(), errorIface) && !isErrorInterface(v.Type()) {
		return nil
	}
	return v
}

func checkComparison(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if v := sentinelObj(pass.Info, side); v != nil {
			pass.Reportf(be.OpPos,
				"sentinel %s compared with %s: use errors.Is(err, %s) so wrapped errors keep matching",
				v.Name(), be.Op, v.Name())
			return
		}
	}
	checkErrorStringCompare(pass, be)
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || !isErrorInterface(tv.Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, x := range cc.List {
			if v := sentinelObj(pass.Info, x); v != nil {
				pass.Reportf(x.Pos(),
					"switch case compares sentinel %s with ==: use if/else with errors.Is(err, %s)",
					v.Name(), v.Name())
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel under a
// verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, exact := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		v := sentinelObj(pass.Info, arg)
		if v == nil {
			continue
		}
		if exact && i < len(verbs) && verbs[i] == 'w' {
			continue
		}
		if !exact && strings.Contains(constant.StringVal(tv.Value), "%w") {
			continue // indexed/exotic format: be lenient if %w appears
		}
		verb := "a non-%w verb"
		if exact && i < len(verbs) {
			verb = "%" + string(verbs[i])
		}
		pass.Reportf(arg.Pos(),
			"sentinel %s wrapped with %s: use %%w so errors.Is(err, %s) sees through the wrap",
			v.Name(), verb, v.Name())
	}
}

// formatVerbs extracts the verb letter consumed by each successive
// argument of a Printf-style format. exact is false when the format
// uses explicit argument indexes ("%[1]d"), in which case the mapping
// is unreliable.
func formatVerbs(format string) (verbs []byte, exact bool) {
	exact = true
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			exact = false
			continue
		}
		// flags, width, precision — each '*' consumes one argument.
		for i < len(format) && strings.IndexByte("+-# 0123456789.*", format[i]) >= 0 {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, exact
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix over
// the rendered message of an opaque error.
func checkStringMatch(pass *Pass, call *ast.CallExpr) {
	for _, fn := range []string{"Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index"} {
		if isPkgFunc(pass.Info, call, "strings", fn) {
			for _, arg := range call.Args {
				if errCallOnOpaque(pass, arg) {
					pass.Reportf(call.Pos(),
						"strings.%s over err.Error(): match errors with errors.Is / errors.As, not by message text",
						fn)
					return
				}
			}
		}
	}
}

// checkErrorStringCompare flags err.Error() == "…".
func checkErrorStringCompare(pass *Pass, be *ast.BinaryExpr) {
	if errCallOnOpaque(pass, be.X) || errCallOnOpaque(pass, be.Y) {
		pass.Reportf(be.OpPos,
			"comparing err.Error() text: match errors with errors.Is / errors.As, not by message text")
	}
}

// errCallOnOpaque reports whether x is a call err.Error() where err's
// static type is the error interface (not a concrete implementation,
// whose own tests may legitimately inspect its rendered message).
func errCallOnOpaque(pass *Pass, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	return ok && isErrorInterface(tv.Type)
}
