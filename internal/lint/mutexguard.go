package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard enforces the "// guarded by <mu>" convention: a struct
// field carrying that annotation may only be accessed through the
// method receiver while the named sibling mutex is held.
//
// The check is flow-insensitive on purpose — it is a lint, not a
// proof. An access r.f (f annotated "guarded by mu") inside a method
// of the declaring struct is accepted when any of these hold:
//
//   - the method body acquires the guard on the same receiver
//     (r.mu.Lock / RLock / TryLock / TryRLock appears anywhere in the
//     method, including inside function literals);
//   - the method's name ends in "Locked" — the repo's convention for
//     helpers whose callers hold the lock (checkpointLocked,
//     tailStateLocked, …);
//   - the method's doc comment documents the contract: a sentence
//     containing the guard's name together with hold/holds/holding/
//     held/locked (e.g. "callers must hold mu").
//
// Accesses whose base is not the method receiver (constructors
// building a value that has not escaped yet, free functions the
// caller serializes) are outside the contract. The annotation itself
// is validated: naming a sibling that does not exist or is not a
// sync.Mutex / sync.RWMutex is reported.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc: "check that fields annotated \"// guarded by <mu>\" are only accessed " +
		"with that mutex held or from methods documented as caller-locked",
	Run: runMutexGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by (\S+)`)

var callerLockedTriggers = []string{"hold", "holds", "holding", "held", "locked"}

// guardedField records one annotated field.
type guardedField struct {
	guard string // sibling mutex field name
}

func runMutexGuard(pass *Pass) error {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			checkMethod(pass, fd, guards)
		}
	}
	return nil
}

// collectGuardedFields finds every "// guarded by <mu>" annotation,
// validates it, and returns the annotated field objects.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	guards := make(map[*types.Var]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				if !validGuard(pass, st, guard) {
					pass.Reportf(field.Pos(),
						"\"guarded by %s\" names no sibling sync.Mutex or sync.RWMutex field", guard)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardedField{guard: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the guard name from a field's doc or line
// comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return strings.TrimRight(m[1], ".,;:")
		}
	}
	return ""
}

// validGuard reports whether guard names a field of st whose type is
// sync.Mutex or sync.RWMutex (possibly behind a pointer).
func validGuard(pass *Pass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			if v, ok := pass.Info.Defs[name].(*types.Var); ok && isMutex(v.Type()) {
				return true
			}
		}
		// Embedded sync.Mutex promoted under the name "Mutex".
		if len(field.Names) == 0 {
			if tv, ok := pass.Info.Types[field.Type]; ok && isMutex(tv.Type) {
				if n := namedFrom(tv.Type); n != nil && n.Obj().Name() == guard {
					return true
				}
			}
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	return typeIsFrom(t, "sync", "Mutex") || typeIsFrom(t, "sync", "RWMutex")
}

// checkMethod reports unblessed accesses to guarded fields through
// the receiver of fd.
func checkMethod(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardedField) {
	recv := receiverIdent(fd)
	if recv == nil {
		return
	}
	blessed := blessedGuards(pass, fd, recv)
	callerLocked := strings.HasSuffix(fd.Name.Name, "Locked")
	doc := ""
	if fd.Doc != nil {
		doc = fd.Doc.Text()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		gf, ok := guards[obj]
		if !ok {
			return true
		}
		base := baseIdent(sel.X)
		if base == nil || pass.Info.Uses[base] != pass.Info.Defs[recv] {
			return true
		}
		if blessed[gf.guard] || callerLocked {
			return true
		}
		if doc != "" && wordInSentenceWith(doc, gf.guard, callerLockedTriggers) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s is guarded by %s, but %s neither acquires it nor is documented as caller-locked (acquire %s.%s, suffix the method name with Locked, or say \"caller must hold %s\" in its doc)",
			sel.Sel.Name, gf.guard, fd.Name.Name, recv.Name, gf.guard, gf.guard)
		return true
	})
}

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return names[0]
}

// blessedGuards returns the guard names the method acquires on its
// own receiver: r.mu.Lock(), r.mu.RLock(), r.mu.TryLock(),
// r.mu.TryRLock() anywhere in the body.
func blessedGuards(pass *Pass, fd *ast.FuncDecl, recv *ast.Ident) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		mutexSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !isMutex(pass.Info.Types[sel.X].Type) {
			return true
		}
		base := baseIdent(mutexSel.X)
		if base == nil || pass.Info.Uses[base] != pass.Info.Defs[recv] {
			return true
		}
		out[mutexSel.Sel.Name] = true
		return true
	})
	return out
}
