package lint_test

import (
	"testing"

	"semwebdb/internal/lint"
	"semwebdb/internal/lint/linttest"
)

func TestMutexGuard(t *testing.T) {
	linttest.Run(t, lint.MutexGuard, "mutexguard/a")
}

func TestScratchSafe(t *testing.T) {
	// The second package sits outside the hot set: the analyzer must
	// gate itself off and report nothing there.
	linttest.Run(t, lint.ScratchSafe,
		"scratchsafe/internal/match", "scratchsafe/internal/persist")
}

func TestObsFlush(t *testing.T) {
	linttest.Run(t, lint.ObsFlush, "obsflush/internal/closure")
}

func TestFsyncRename(t *testing.T) {
	linttest.Run(t, lint.FsyncRename, "fsyncrename/internal/persist")
}

func TestSentErr(t *testing.T) {
	linttest.Run(t, lint.SentErr, "senterr/a", "senterr/b")
}

func TestIgnoreComments(t *testing.T) {
	// Malformed //lint:ignore comments (missing reason) are reported
	// by the framework itself, under any analyzer.
	linttest.Run(t, lint.SentErr, "lintignore/a")
}
