// Package dict is a stub of semwebdb/internal/dict for the
// scratchsafe golden tests: same type and method names, no behavior.
package dict

type ID uint32

type Term string

type Kind uint8

type Dict struct{}

func (d *Dict) Terms() []Term     { return nil }
func (d *Dict) Kinds() []Kind     { return nil }
func (d *Dict) TermOf(id ID) Term { return "" }
func (d *Dict) KindOf(id ID) Kind { return 0 }
func (d *Dict) Intern(t Term) ID  { return 0 }
func (d *Dict) Scratch() *Dict    { return d }
