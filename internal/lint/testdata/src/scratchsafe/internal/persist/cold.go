// Package persist is NOT one of scratchsafe's hot packages: the
// analyzer must not fire here even on a textbook flattening (the
// snapshot writer legitimately walks the whole dictionary).
package persist

import "scratchsafe/dict"

func dump(d *dict.Dict) []dict.Term {
	return d.Terms() // fine: cold path, analyzer gated off this package
}
