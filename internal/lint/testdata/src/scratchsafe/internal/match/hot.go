// Package match is a hot package (suffix internal/match): Dict
// flattening is forbidden here.
package match

import "scratchsafe/dict"

// Triple is a local type with its own Terms method — the per-triple
// accessor the hot paths do use. It must not be confused with
// Dict.Terms (false-positive guard).
type Triple [3]dict.ID

func (t Triple) Terms() [3]dict.ID { return t }

func flatten(d *dict.Dict) int {
	n := len(d.Terms()) // want `Dict\.Terms\(\) flattens the dictionary`
	n += len(d.Kinds()) // want `Dict\.Kinds\(\) flattens the dictionary`
	return n
}

func perID(d *dict.Dict, t Triple) dict.Term {
	for _, id := range t.Terms() { // fine: Triple.Terms, not Dict.Terms
		_ = d.KindOf(id)
	}
	return d.TermOf(t[0])
}

func viaScratch(d *dict.Dict) []dict.Term {
	s := d.Scratch()
	//lint:ignore scratchsafe cold diagnostic path, documented
	return s.Terms()
}
