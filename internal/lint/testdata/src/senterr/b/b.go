// Package b exercises senterr across a package boundary: imported
// sentinels resolve through selector expressions.
package b

import (
	"errors"
	"fmt"

	"senterr/a"
)

func check(err error) bool {
	if err == a.ErrClosed { // want `sentinel ErrClosed compared with ==`
		return true
	}
	return errors.Is(err, a.ErrCorrupt) // fine
}

func wrap(err error) error {
	if errors.Is(err, a.ErrCorrupt) {
		return fmt.Errorf("apply: %s", a.ErrCorrupt) // want `sentinel ErrCorrupt wrapped with %s`
	}
	return fmt.Errorf("apply: %w", a.ErrClosed)
}
