// Package a exercises senterr: sentinel comparisons, switch cases,
// non-%w wraps, string matching on opaque errors, and the
// false-positive guards (nil checks, non-sentinel names, concrete
// error types inspecting their own rendered message).
package a

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

var (
	ErrClosed  = errors.New("a: closed")
	ErrCorrupt = errors.New("a: corrupt")

	// Errata is not a sentinel name (no capital after Err).
	Errata = errors.New("a: errata")
)

func compare(err error) bool {
	if err == ErrClosed { // want `sentinel ErrClosed compared with ==`
		return true
	}
	if ErrCorrupt != err { // want `sentinel ErrCorrupt compared with !=`
		return false
	}
	return errors.Is(err, ErrClosed) // fine
}

func viaSwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrClosed: // want `switch case compares sentinel ErrClosed`
		return "closed"
	default:
		return "other"
	}
}

func wrap(err error) error {
	if err == nil { // fine: nil check
		return nil
	}
	if err == io.EOF { // fine: EOF is not an Err* sentinel
		return nil
	}
	if err == Errata { // fine: not the sentinel naming convention
		return nil
	}
	bad := fmt.Errorf("load %q: %v", "x", ErrClosed) // want `sentinel ErrClosed wrapped with %v`
	good := fmt.Errorf("load %q: %w", "x", ErrClosed)
	plain := fmt.Errorf("plain %v", err) // fine: not a sentinel reference
	return errors.Join(bad, good, plain)
}

func match(err error) bool {
	if strings.Contains(err.Error(), "closed") { // want `strings\.Contains over err\.Error\(\)`
		return true
	}
	return err.Error() == "a: closed" // want `comparing err\.Error\(\) text`
}

// ParseError is a concrete error type; its own tests may inspect the
// rendered message (false-positive guard).
type ParseError struct{ Line int }

func (e *ParseError) Error() string { return fmt.Sprintf("line %d", e.Line) }

func concrete(pe *ParseError) bool {
	return strings.Contains(pe.Error(), "line") // fine: concrete type, formatting test
}

func suppressed(err error) bool {
	//lint:ignore senterr pre-wrap fast path, identity established by construction
	return err == ErrClosed
}
