// Package a exercises the framework's //lint:ignore handling: a
// reason is mandatory.
package a

import "errors"

var ErrGone = errors.New("a: gone")

func f(err error) bool {
	ok := err == nil /* want `malformed //lint:ignore comment` */ //lint:ignore senterr
	return ok
}

func g(err error) bool {
	//lint:ignore senterr,mutexguard multi-analyzer ignores apply to each name
	return err == ErrGone
}
