// Package a exercises mutexguard: positive hits, every blessing
// (acquired lock, *Locked suffix, caller-locked doc), the ignore
// comment, and the false-positive guards (constructors, non-receiver
// access, unannotated fields).
package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
	ok int            // unannotated: never checked

	// guarded by wrong
	bad int // want `"guarded by wrong" names no sibling sync\.Mutex`
}

// Get acquires the guard: blessed.
func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Bad reads and writes guarded fields without the lock.
func (s *S) Bad() int {
	s.m["x"] = 1 // want `m is guarded by mu`
	return s.n   // want `n is guarded by mu`
}

// getLocked follows the *Locked naming convention: blessed.
func (s *S) getLocked() int {
	return s.n
}

// bump increments the counter. The caller must hold mu.
func (s *S) bump() {
	s.n++
}

// Suppressed demonstrates //lint:ignore.
func (s *S) Suppressed() int {
	//lint:ignore mutexguard single-goroutine setup path
	return s.n
}

// Unannotated fields are outside the contract.
func (s *S) Free() int { return s.ok }

// NewS builds an S that has not escaped: accesses are not through a
// method receiver and are out of scope.
func NewS() *S {
	s := &S{}
	s.n = 1
	s.m = map[string]int{}
	return s
}

// touch is a free function; the value's owner serializes access.
func touch(s *S) { s.n = 2 }

// R exercises the RWMutex read path.
type R struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

// View holds the read lock: blessed.
func (r *R) View() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// Peek takes no lock at all.
func (r *R) Peek() int {
	return r.v // want `v is guarded by mu`
}

// Spawn launches a goroutine: the flow-insensitive blessing covers
// function literals too (the method does acquire the lock).
func (r *R) Spawn() {
	go func() {
		r.mu.Lock()
		r.v++
		r.mu.Unlock()
	}()
}
