// Package obs is a stub of semwebdb/internal/obs for the obsflush
// golden tests: same instrument type and method names, no behavior.
package obs

type Counter struct{}

func (c *Counter) Inc()          {}
func (c *Counter) Add(n uint64)  {}
func (c *Counter) Value() uint64 { return 0 }

type Gauge struct{}

func (g *Gauge) Set(n int64) {}
func (g *Gauge) Add(n int64) {}

type Histogram struct{}

func (h *Histogram) Observe(ns int64)      {}
func (h *Histogram) ObserveSince(ns int64) {}

type CounterVec struct{}

func (v CounterVec) With(values ...string) *Counter { return nil }

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }

var Default = &Registry{}
