// Package closure is a hot package for obsflush: obs operations may
// not appear inside for bodies.
package closure

import (
	"sync"

	"obsflush/obs"
)

var (
	firings = obs.Default.Counter("firings", "rule firings")
	vec     = obs.CounterVec{}
)

// tallyThenFlush is the PR 8 discipline: locals in the loop, one
// flush after it.
func tallyThenFlush(work []int) {
	var fired uint64
	for range work {
		fired++
	}
	firings.Add(fired) // fine: outside the loop
}

func perIteration(work []int) {
	for range work {
		firings.Inc() // want `obs\.Counter\.Inc inside a for body`
	}
	for i := 0; i < len(work); i++ {
		vec.With("label").Add(1) // want `obs\.CounterVec\.With inside a for body` `obs\.Counter\.Add inside a for body`
	}
}

func nested(work [][]int) {
	for _, row := range work {
		for range row {
			firings.Inc() // want `obs\.Counter\.Inc inside a for body`
		}
	}
}

// localCounter is a same-named type outside package obs: its methods
// are free to run per iteration (false-positive guard).
type localCounter struct{ n uint64 }

func (c *localCounter) Inc() { c.n++ }

func locals(work []int, wg *sync.WaitGroup) {
	var c localCounter
	for range work {
		c.Inc()   // fine: not an obs type
		wg.Add(1) // fine: sync.WaitGroup, not obs
	}
	wg.Add(-len(work))
}

func suppressed(work []int) {
	for range work {
		//lint:ignore obsflush error path, once per saturation in practice
		firings.Inc()
	}
}
