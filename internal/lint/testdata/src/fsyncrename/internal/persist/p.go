// Package persist exercises fsyncrename: the full protocol, each
// missing half, helper-based syncs, deferred directory syncs, the
// non-tmp false-positive guard, and suppression.
package persist

import "os"

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func writeFileSynced(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// install follows the full protocol: sync, rename, directory fsync.
func install(f *os.File, tmp, dst, dir string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(dir)
}

// helperSynced relies on a *Synced helper for the content sync.
func helperSynced(tmp, dst, dir string, b []byte) error {
	if err := writeFileSynced(tmp, b); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(dir)
}

// deferredDir uses a deferred directory sync: still "after".
func deferredDir(f *os.File, tmp, dst, dir string) error {
	defer syncDir(dir)
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// noContentSync renames a tmp file whose bytes were never synced.
func noContentSync(tmp, dst, dir string) error {
	if err := os.Rename(tmp, dst); err != nil { // want `without a preceding sync of the source`
		return err
	}
	return syncDir(dir)
}

// noDirSync leaves the rename itself volatile.
func noDirSync(f *os.File, tmp, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want `without a following directory fsync`
}

// neither misses both halves of the protocol.
func neither(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `without a preceding sync of the source` `without a following directory fsync`
}

// nonTmp renames between durable names: not the staging pattern, not
// checked (false-positive guard).
func nonTmp(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath)
}

// suppressed documents a protocol split across functions.
func suppressed(tmp, dst string) error {
	//lint:ignore fsyncrename caller synced the tmp file and fsyncs the directory
	return os.Rename(tmp, dst)
}
