package lint

import (
	"go/ast"
	"go/token"
)

// ObsFlush enforces the PR 8 hot-loop metrics discipline in
// internal/closure, internal/dict and internal/match: the innermost
// saturation/intern/join loops tally into plain local fields and
// flush to the shared internal/obs instruments once per saturation
// (or once per call). An obs operation — Counter.Inc/Add,
// Gauge.Set/Add, Histogram.Observe/ObserveSince, or a Vec.With label
// lookup — inside a for body is one atomic RMW (or a map lookup plus
// label formatting) per iteration on the paths the bench gate
// protects.
var ObsFlush = &Analyzer{
	Name: "obsflush",
	Doc: "forbid obs counter/gauge/histogram operations and vec label lookups " +
		"inside for bodies in internal/closure, internal/dict, internal/match; " +
		"tally locally and flush once per saturation",
	AppliesTo: SuffixMatcher(
		"internal/closure", "internal/dict", "internal/match",
		"internal/closure_test", "internal/dict_test", "internal/match_test",
	),
	Run: runObsFlush,
}

// obsTypes are the instrument and vec types of internal/obs whose
// methods are per-event costs.
var obsTypes = []string{
	"Counter", "Gauge", "Histogram",
	"CounterVec", "GaugeVec", "HistogramVec",
	"Registry", "Family",
}

func runObsFlush(pass *Pass) error {
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || reported[sel.Sel.Pos()] {
					return true
				}
				tv, ok := pass.Info.Types[sel.X]
				if !ok {
					return true
				}
				for _, tn := range obsTypes {
					if typeIsFrom(tv.Type, "obs", tn) {
						reported[sel.Sel.Pos()] = true
						pass.Reportf(sel.Sel.Pos(),
							"obs.%s.%s inside a for body: tally into a local and flush once per saturation (PR 8 discipline)",
							tn, sel.Sel.Name)
						break
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}
