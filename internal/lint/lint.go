// Package lint is semwebdb's project-invariant analyzer suite: a set
// of static analyses that mechanically enforce the disciplines the
// engine's correctness and performance rest on — disciplines no
// compiler checks and that were each established by a past PR:
//
//   - mutexguard: fields annotated "// guarded by <mu>" are only
//     accessed with that mutex held (or from methods documented as
//     caller-locked), the convention used across internal/persist,
//     internal/repl, semweb and semweb/serve.
//   - scratchsafe: no Dict.Terms()/Kinds() flattening in the hot
//     packages (internal/match, internal/closure, internal/query,
//     internal/graph) — per-ID TermOf/KindOf stay scratch-safe (PR 5).
//   - obsflush: no obs counter/gauge/histogram operations, vec
//     lookups or label formatting inside for bodies in
//     internal/closure, internal/dict, internal/match — hot loops
//     tally locally and flush once per saturation (PR 8).
//   - fsyncrename: in internal/persist and internal/repl, renaming a
//     tmp path into place is preceded in-function by a sync of the
//     source and followed by a directory fsync (PR 3).
//   - senterr: sentinel errors (ErrClosed, ErrCorrupt, ErrReplica, …)
//     are wrapped only via %w and tested only via errors.Is — never
//     == / != / switch, never string matching (PR 6/9).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, and an analysistest-style golden
// runner in linttest) so the analyzers port mechanically if that
// module is ever added to the build; it is implemented on the
// standard library alone — go/parser + go/types over export data
// from `go list -export` — because the shipped library and binaries
// stay dependency-free and this container has no module proxy.
//
// Diagnostics are suppressed, one site at a time and with a recorded
// reason, by a comment on the flagged line or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A malformed ignore comment (unknown analyzer set is fine; a missing
// reason is not) is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name, a doc string, an
// optional package filter, and the function that runs it on one
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description printed by
	// `semweblint -help`.
	Doc string

	// AppliesTo, when non-nil, restricts the analyzer to packages
	// whose import path it accepts. The path passed in is the logical
	// package path (test variants are resolved to the package under
	// test; external test packages keep their _test suffix).
	AppliesTo func(pkgPath string) bool

	// Run performs the analysis, reporting findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass is the single application of one analyzer to one package.
type Pass struct {
	Analyzer *Analyzer

	// PkgPath is the logical import path (see Analyzer.AppliesTo).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuffixMatcher returns an AppliesTo filter accepting packages whose
// import path equals one of the suffixes or ends in "/"+suffix. The
// repo's own packages match their full path ("semwebdb/internal/dict"
// matches suffix "internal/dict"); the testdata trees under
// linttest mirror the layout ("fsyncrename/internal/persist").
func SuffixMatcher(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// Run applies every applicable analyzer to pkg and returns the
// surviving diagnostics: findings suppressed by a well-formed
// //lint:ignore comment are dropped, malformed ignore comments are
// added. The result is sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			PkgPath:  pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	diags = applyIgnores(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

var ignoreRe = regexp.MustCompile(`^lint:ignore\s+(\S+)(\s+(.*))?$`)

// ignoreKey identifies one suppressible site: an analyzer name (or
// "*") effective at a file line.
type ignoreKey struct {
	file string
	line int
	name string
}

// applyIgnores drops diagnostics covered by a //lint:ignore comment
// on the same line or the line immediately above, and reports ignore
// comments that lack the mandatory reason.
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	ignores := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[3]) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore comment: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					ignores[ignoreKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "lint" && ignoredAt(ignores, d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func ignoredAt(ignores map[ignoreKey]bool, d Diagnostic) bool {
	for _, name := range []string{d.Analyzer, "*"} {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, name}] ||
			ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, name}] {
			return true
		}
	}
	return false
}

// Analyzers is the full project suite in stable order.
var Analyzers = []*Analyzer{
	MutexGuard,
	ScratchSafe,
	ObsFlush,
	FsyncRename,
	SentErr,
}
