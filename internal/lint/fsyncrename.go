package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// FsyncRename enforces the PR 3 crash-safety protocol in
// internal/persist and internal/repl: installing a tmp file with
// os.Rename is only durable if the source file's contents were
// fsynced first (otherwise the rename can land pointing at garbage)
// and the directory entry is fsynced after (otherwise the rename
// itself can vanish on crash). Within the function performing such a
// rename the analyzer requires, in statement order:
//
//   - before the rename: a (*os.File).Sync call, or a call to one of
//     the repo's write-and-sync helpers (a function whose name
//     contains "Synced": writeFileSynced, copyFileSynced,
//     writeSnapshotSynced, …);
//   - after the rename (deferred calls count as "after"): a call to a
//     directory-fsync helper (name containing "syncDir"/"SyncDir") or
//     another (*os.File).Sync.
//
// Only renames whose source operand mentions "tmp" are checked — that
// is the repo's naming convention for not-yet-durable staging files.
// A protocol split across functions (the caller synced the tmp file)
// is out of the analyzer's view: annotate the rename site with
// //lint:ignore fsyncrename <who synced it>.
var FsyncRename = &Analyzer{
	Name: "fsyncrename",
	Doc: "require the fsync-before-rename + directory-fsync protocol around " +
		"os.Rename of tmp paths in internal/persist and internal/repl",
	AppliesTo: SuffixMatcher(
		"internal/persist", "internal/repl",
		"internal/persist_test", "internal/repl_test",
	),
	Run: runFsyncRename,
}

func runFsyncRename(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRenames(pass, fd)
		}
	}
	return nil
}

// syncSites records where syncing calls occur within one function
// body. Deferred calls are ordered at the function's end.
type syncSites struct {
	fileSync []token.Pos // content syncs: File.Sync, *Synced helpers
	dirSync  []token.Pos // directory syncs: syncDir-ish helpers, File.Sync
	deferred struct {
		fileSync bool
		dirSync  bool
	}
}

func checkRenames(pass *Pass, fd *ast.FuncDecl) {
	var renames []*ast.CallExpr
	var sites syncSites

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.CallExpr:
				classifyCall(pass, m, inDefer, &sites, &renames)
			}
			return true
		})
	}
	walk(fd.Body, false)

	for _, call := range renames {
		src := call.Args[0]
		srcText := exprText(pass.Fset, src)
		if !strings.Contains(strings.ToLower(srcText), "tmp") {
			continue
		}
		pos := call.Pos()
		if !sites.syncedBefore(pos) {
			pass.Reportf(pos,
				"os.Rename(%s, …) without a preceding sync of the source in this function: fsync the tmp file (File.Sync or a *Synced helper) before renaming it into place (PR 3 protocol)",
				srcText)
		}
		if !sites.dirSyncedAfter(pos) {
			pass.Reportf(pos,
				"os.Rename(%s, …) without a following directory fsync in this function: call syncDir on the containing directory so the rename itself is durable (PR 3 protocol)",
				srcText)
		}
	}
}

func classifyCall(pass *Pass, call *ast.CallExpr, inDefer bool, sites *syncSites, renames *[]*ast.CallExpr) {
	if isPkgFunc(pass.Info, call, "os", "Rename") && len(call.Args) == 2 {
		*renames = append(*renames, call)
		return
	}
	name := calleeName(call)
	switch {
	case name == "Sync" && isOSFileMethod(pass, call):
		if inDefer {
			sites.deferred.fileSync = true
			sites.deferred.dirSync = true
		} else {
			sites.fileSync = append(sites.fileSync, call.Pos())
			sites.dirSync = append(sites.dirSync, call.Pos())
		}
	case strings.Contains(strings.ToLower(name), "syncdir") ||
		strings.Contains(strings.ToLower(name), "dirsync"):
		if inDefer {
			sites.deferred.dirSync = true
		} else {
			sites.dirSync = append(sites.dirSync, call.Pos())
		}
	case strings.Contains(name, "Synced") || strings.Contains(name, "synced"):
		if !inDefer {
			sites.fileSync = append(sites.fileSync, call.Pos())
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func isOSFileMethod(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	return ok && typeIsFrom(tv.Type, "os", "File")
}

func (s *syncSites) syncedBefore(pos token.Pos) bool {
	for _, p := range s.fileSync {
		if p < pos {
			return true
		}
	}
	return false
}

func (s *syncSites) dirSyncedAfter(pos token.Pos) bool {
	if s.deferred.dirSync {
		return true
	}
	for _, p := range s.dirSync {
		if p > pos {
			return true
		}
	}
	return false
}
