package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the logical import path: for a test variant
	// ("p [p.test]") the package under test ("p"); for an external
	// test package its _test path. Analyzer filters match on it.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir,
// usually a module root) with `go list -test -export -deps` and
// type-checks each from source, resolving imports through the build
// cache's export data — the same information `go vet` hands its
// analyzers, obtained without any dependency beyond the go tool
// itself.
//
// Test files are included: each package with tests is analyzed as its
// test variant (package files + in-package test files) plus, when
// present, the external _test package. The plain variant of a tested
// package is skipped so files are analyzed exactly once.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// A package with an in-package test variant is superseded by it.
	superseded := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && !p.DepOnly && !strings.HasSuffix(p.ImportPath, ".test") &&
			trimVariant(p.ImportPath) == p.ForTest {
			superseded[p.ForTest] = true
		}
	}

	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, p := range pkgs {
		switch {
		case p.DepOnly || p.Standard:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"): // synthesized test main
			continue
		case p.ForTest == "" && superseded[p.ImportPath]:
			continue
		case len(p.CgoFiles) > 0:
			return nil, fmt.Errorf("lint: %s uses cgo (unsupported)", p.ImportPath)
		case p.Error != nil:
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-test", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,ForTest,Name,GoFiles,CgoFiles,Imports,ImportMap,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// trimVariant maps "p [p.test]" to "p".
func trimVariant(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func typeCheck(fset *token.FileSet, p *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Imports resolve through this package's ImportMap (vendoring and
	// test variants) to an export-data file from the build cache.
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (importer of %s)", path, p.ImportPath)
		}
		return os.Open(e)
	}
	inner := importer.ForCompiler(fset, "gc", lookup)
	imp := mappedImporter{m: p.ImportMap, inner: inner}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(trimVariant(p.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
	}
	path := p.ImportPath
	if p.ForTest != "" {
		if name := trimVariant(path); strings.HasSuffix(name, "_test") {
			path = name // external test package
		} else {
			path = p.ForTest // in-package test variant
		}
	}
	return &Package{
		Path:  path,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// mappedImporter applies a package's ImportMap before delegating to
// the export-data importer.
type mappedImporter struct {
	m     map[string]string
	inner types.Importer
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if r, ok := mi.m[path]; ok {
		path = r
	}
	return mi.inner.Import(path)
}
