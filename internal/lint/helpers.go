package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// namedFrom reports the named type behind t (unwrapping pointers and
// aliases), or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIsFrom reports whether t (unwrapping pointers) is the named
// type typeName declared in a package whose base name is pkgBase.
// Matching on the package base name rather than the full import path
// keeps analyzers applicable to both the real packages and the stub
// packages under linttest testdata.
func typeIsFrom(t types.Type, pkgBase, typeName string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != typeName {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgBase || strings.HasSuffix(p, "/"+pkgBase) ||
		n.Obj().Pkg().Name() == pkgBase
}

// pkgBaseOf returns the base name of the package an object is
// declared in ("" for builtins).
func pkgBaseOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name()
}

// calleeObj resolves the object a call expression invokes (function,
// method, or nil for builtins, conversions and indirect calls).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (exact import path).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// baseIdent unwraps x to its leftmost identifier: for a.b.c it
// returns a; for (*p).f it returns p; nil when the base is not a
// plain identifier.
func baseIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		default:
			return nil
		}
	}
}

// exprText renders an expression as source text (for diagnostics and
// textual heuristics).
func exprText(fset *token.FileSet, x ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, x); err != nil {
		return ""
	}
	return buf.String()
}

// isErrorInterface reports whether t is an interface type satisfying
// error (the opaque view of an error, as opposed to a concrete
// implementation whose rendered message may legitimately be
// inspected by its own tests).
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Interface)
	return ok && types.Implements(t, errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// wordInSentenceWith reports whether any sentence (or line) of doc
// contains word together with one of the trigger words. Used for the
// caller-locked doc convention: "... caller must hold mu ...".
func wordInSentenceWith(doc, word string, triggers []string) bool {
	for _, chunk := range splitSentences(doc) {
		words := fieldsWords(chunk)
		if !words[word] {
			continue
		}
		for _, t := range triggers {
			if words[t] {
				return true
			}
		}
	}
	return false
}

func splitSentences(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return r == '.' || r == ';' || r == '\n'
	})
}

func fieldsWords(s string) map[string]bool {
	out := make(map[string]bool)
	for _, w := range strings.FieldsFunc(s, func(r rune) bool {
		return !('a' <= r && r <= 'z' || 'A' <= r && r <= 'Z' ||
			'0' <= r && r <= '9' || r == '_')
	}) {
		out[strings.ToLower(w)] = true
	}
	return out
}
