// Package linttest is an analysistest-style golden-file runner for
// the internal/lint analyzers, built (like the framework itself) on
// the standard library alone.
//
// A test calls Run with an analyzer and one or more package paths
// under testdata/src. Each package's files carry expectations as
// comments on the offending lines:
//
//	d.Terms() // want `Dict\.Terms\(\) flattens`
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic — including the implicit "no
// diagnostics" assertion for files with no want comments, which is
// how suppressed-negative and false-positive-guard cases are
// expressed. Import paths inside testdata resolve against the
// testdata/src tree first (stub packages: a "dict" with Terms/Kinds,
// an "obs" with Counter/Vec, …) and against the standard library
// otherwise.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"semwebdb/internal/lint"
)

// Run applies a to each package under testdata/src and compares
// diagnostics against the // want expectations in its files.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(root)
	for _, path := range pkgs {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := lint.Run(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, diags)
	}
}

// want is one expectation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`^want\s+(.*)$`)

func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				text = strings.TrimSuffix(text, "*/")
				m := wantRe.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitPatterns(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitPatterns parses a sequence of quoted or backquoted regexps.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		raw := s[:end+2]
		if unq, err := strconv.Unquote(raw); err == nil {
			out = append(out, unq)
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// loader type-checks packages rooted at testdata/src.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*lint.Package
	std  *stdImporter
}

func newLoader(root string) *loader {
	return &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*lint.Package),
		std:  sharedStd(root),
	}
}

func (ld *loader) load(path string) (*lint.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	ld.pkgs[path] = nil // cycle marker
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		if fi, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(p))); err == nil && fi.IsDir() {
			pkg, err := ld.load(p)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return ld.std.Import(p)
	})}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &lint.Package{
		Path:  path,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	ld.pkgs[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdImporter resolves standard-library imports through build-cache
// export data, shared process-wide (the export map is built once from
// the union of out-of-tree imports appearing under testdata/src).
type stdImporter struct {
	mu      sync.Mutex
	exports map[string]string
	inner   types.Importer
	err     error
}

var (
	stdOnce   sync.Once
	stdShared *stdImporter
)

func sharedStd(root string) *stdImporter {
	stdOnce.Do(func() {
		stdShared = buildStd(root)
	})
	return stdShared
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	return s.inner.Import(path)
}

func buildStd(root string) *stdImporter {
	s := &stdImporter{exports: make(map[string]string)}
	paths, err := outOfTreeImports(root)
	if err != nil {
		s.err = err
		return s
	}
	if len(paths) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export", "--"}, paths...)
		cmd := exec.Command("go", args...)
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				err = fmt.Errorf("go list: %v\n%s", err, ee.Stderr)
			}
			s.err = err
			return s
		}
		type pkg struct{ ImportPath, Export string }
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p pkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				s.err = err
				return s
			}
			if p.Export != "" {
				s.exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	s.inner = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := s.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
	return s
}

// outOfTreeImports scans every .go file under root for import paths
// with no corresponding in-tree directory.
func outOfTreeImports(root string) ([]string, error) {
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "unsafe" {
				continue
			}
			if fi, err := os.Stat(filepath.Join(root, filepath.FromSlash(p))); err == nil && fi.IsDir() {
				continue
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	return out, nil
}
