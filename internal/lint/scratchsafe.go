package lint

import (
	"go/ast"
)

// ScratchSafe enforces the PR 5 leak rule on the hot packages: read
// paths intern only into copy-on-write scratch overlays, and the
// overlay contract is per-ID lookups (Dict.TermOf / Dict.KindOf).
// Calling Dict.Terms() or Dict.Kinds() flattens the base segments
// plus the overlay into a fresh slice — an O(dictionary) allocation
// that silently re-introduces the leak-shaped cost the scratch design
// removed. Cold paths (persist snapshots, store dumps, tests) may
// flatten; the packages on the query hot path may not.
var ScratchSafe = &Analyzer{
	Name: "scratchsafe",
	Doc: "forbid Dict.Terms()/Dict.Kinds() flattening in the hot packages " +
		"(internal/match, internal/closure, internal/query, internal/graph); " +
		"use per-ID TermOf/KindOf instead",
	AppliesTo: SuffixMatcher(
		"internal/match", "internal/closure", "internal/query", "internal/graph",
		"internal/match_test", "internal/closure_test", "internal/query_test", "internal/graph_test",
	),
	Run: runScratchSafe,
}

func runScratchSafe(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Terms" && name != "Kinds" {
				return true
			}
			tv, ok := pass.Info.Types[sel.X]
			if !ok || !typeIsFrom(tv.Type, "dict", "Dict") {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"Dict.%s() flattens the dictionary (O(terms) allocation, scratch-overlay copy) on a hot path: use per-ID %s instead",
				name, map[string]string{"Terms": "TermOf", "Kinds": "KindOf"}[name])
			return true
		})
	}
	return nil
}
