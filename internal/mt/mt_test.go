package mt

import (
	"math/rand"
	"testing"

	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	names := []term.Term{iri("a"), iri("b"), iri("c"), blk("x"), blk("y")}
	preds := []term.Term{iri("p"), iri("q"), rdfs.SubPropertyOf, rdfs.SubClassOf, rdfs.Type, rdfs.Domain, rdfs.Range}
	g := graph.New()
	for k := 0; k < n; k++ {
		g.Add(graph.T(
			names[rng.Intn(len(names))],
			preds[rng.Intn(len(preds))],
			names[rng.Intn(len(names))],
		))
	}
	return g
}

func TestCanonicalModelIsRDFSInterpretation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 40; round++ {
		g := randomGraph(rng, 7)
		i := CanonicalModel(g)
		if err := i.CheckRDFSConditions(); err != nil {
			t.Fatalf("round %d: canonical model violates RDFS conditions: %v\nG:\n%v", round, err, g)
		}
	}
}

func TestCanonicalModelSatisfiesItsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 30; round++ {
		g := randomGraph(rng, 6)
		i := CanonicalModel(g)
		if !i.SatisfiesSimple(g) {
			t.Fatalf("round %d: canonical model does not satisfy its own graph\nG:\n%v", round, g)
		}
		if !i.Models(g) {
			t.Fatalf("round %d: canonical model is not a model of its graph", round)
		}
	}
}

func TestCanonicalEntailsAgreesWithMapCharacterization(t *testing.T) {
	// Theorem 2.6 + Theorem 2.8 cross-validation: semantic entailment via
	// the canonical model must agree with the syntactic map-based check.
	rng := rand.New(rand.NewSource(37))
	agreeEntailed, agreeRefuted := 0, 0
	for round := 0; round < 60; round++ {
		g1 := randomGraph(rng, 6)
		g2 := randomGraph(rng, 2)
		syntactic := entail.Entails(g1, g2)
		semantic := CanonicalEntails(g1, g2)
		if syntactic != semantic {
			t.Fatalf("round %d: map-based (%v) and canonical-model (%v) entailment disagree\nG1:\n%v\nG2:\n%v",
				round, syntactic, semantic, g1, g2)
		}
		if syntactic {
			agreeEntailed++
		} else {
			agreeRefuted++
		}
	}
	if agreeEntailed == 0 || agreeRefuted == 0 {
		t.Fatalf("degenerate test: %d entailed, %d refuted", agreeEntailed, agreeRefuted)
	}
}

func TestSoundnessAgainstForeignModels(t *testing.T) {
	// Soundness probe: whenever I ⊨ G1 for an arbitrary valid
	// interpretation I (canonical model of some unrelated K) and G1 ⊨ G2,
	// then I ⊨ G2.
	rng := rand.New(rand.NewSource(43))
	checked := 0
	for round := 0; round < 50; round++ {
		k := randomGraph(rng, 8)
		g1 := randomGraph(rng, 4)
		g2 := randomGraph(rng, 2)
		if !entail.Entails(g1, g2) {
			continue
		}
		i := CanonicalModel(k)
		if i.SatisfiesSimple(g1) && !i.SatisfiesSimple(g2) {
			t.Fatalf("round %d: soundness violated: I ⊨ G1, G1 ⊨ G2, I ⊭ G2\nK:\n%v\nG1:\n%v\nG2:\n%v",
				round, k, g1, g2)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no entailed pairs generated")
	}
}

func TestSimpleInterpretationBlankAssignment(t *testing.T) {
	// I with a p-edge between r1 and r2; the graph (X,p,Y) must be
	// satisfied (A(X)=r1, A(Y)=r2), while (X,p,X) must not.
	i := NewInterpretation()
	r1, r2, p := Resource("r1"), Resource("r2"), Resource("p")
	i.Res[r1], i.Res[r2] = true, true
	i.Prop[p] = true
	i.PExt[p] = map[Pair]bool{{r1, r2}: true}
	i.Int[iri("p")] = p

	edge := graph.New(graph.T(blk("X"), iri("p"), blk("Y")))
	if !i.SatisfiesSimple(edge) {
		t.Fatal("edge not satisfied")
	}
	loop := graph.New(graph.T(blk("X"), iri("p"), blk("X")))
	if i.SatisfiesSimple(loop) {
		t.Fatal("loop satisfied without a loop in PExt")
	}
}

func TestUnknownPredicateFails(t *testing.T) {
	i := NewInterpretation()
	g := graph.New(graph.T(iri("a"), iri("unknown"), iri("b")))
	if i.SatisfiesSimple(g) {
		t.Fatal("triple with non-property predicate satisfied")
	}
}

func TestCheckRDFSConditionsDetectsViolations(t *testing.T) {
	// Start from a valid canonical model, then break it in specific ways.
	g := graph.New(
		graph.T(iri("A"), rdfs.SubClassOf, iri("B")),
		graph.T(iri("x"), rdfs.Type, iri("A")),
		graph.T(iri("p"), rdfs.Domain, iri("A")),
		graph.T(iri("u"), iri("p"), iri("v")),
	)
	fresh := func() *Interpretation { return CanonicalModel(g) }

	if err := fresh().CheckRDFSConditions(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	// Break sp reflexivity.
	i := fresh()
	delete(i.PExt[Resource(rdfs.SubPropertyOf.Value)], Pair{Resource("p"), Resource("p")})
	if err := i.CheckRDFSConditions(); err == nil {
		t.Error("broken sp reflexivity not detected")
	}

	// Break typing iff: add a PExt(type) pair without CExt membership.
	i = fresh()
	tyres := Resource(rdfs.Type.Value)
	i.PExt[tyres][Pair{Resource("zz"), Resource("B")}] = true
	if err := i.CheckRDFSConditions(); err == nil {
		t.Error("typing iff violation not detected")
	}

	// Break the dom condition: register a dom pair whose property has an
	// extension pair with subject outside the class.
	i = fresh()
	dmres := Resource(rdfs.Domain.Value)
	i.PExt[dmres][Pair{Resource("q"), Resource("A")}] = true
	i.Prop[Resource("q")] = true
	i.PExt[Resource("q")] = map[Pair]bool{{Resource("nobody"), Resource("nothing")}: true}
	i.PExt[Resource(rdfs.SubPropertyOf.Value)][Pair{Resource("q"), Resource("q")}] = true
	if err := i.CheckRDFSConditions(); err == nil {
		t.Error("dom condition violation not detected")
	}
}

func TestCanonicalModelSubclassSemantics(t *testing.T) {
	g := graph.New(
		graph.T(iri("A"), rdfs.SubClassOf, iri("B")),
		graph.T(iri("x"), rdfs.Type, iri("A")),
	)
	i := CanonicalModel(g)
	// CExt(A) ⊆ CExt(B) with x in both.
	if !i.CExt[Resource("A")][Resource("x")] {
		t.Fatal("x ∉ CExt(A)")
	}
	if !i.CExt[Resource("B")][Resource("x")] {
		t.Fatal("x ∉ CExt(B): subclass semantics broken")
	}
}

func TestCanonicalModelBlankPropertyNote24(t *testing.T) {
	// The Note 2.4 situation: a blank used as a property via sp.
	g := graph.New(
		graph.T(iri("a"), rdfs.SubPropertyOf, blk("X")),
		graph.T(blk("X"), rdfs.Domain, iri("C")),
		graph.T(iri("u"), iri("a"), iri("v")),
	)
	i := CanonicalModel(g)
	if err := i.CheckRDFSConditions(); err != nil {
		t.Fatalf("canonical model invalid: %v", err)
	}
	// The blank property's extension must include (u,v) by sp-closure.
	if !i.PExt[Resource("_:X")][Pair{Resource("u"), Resource("v")}] {
		t.Fatal("blank property extension missing inherited pair")
	}
	// And u must be typed C (rule (6) semantics).
	if !i.CExt[Resource("C")][Resource("u")] {
		t.Fatal("u ∉ CExt(C)")
	}
}

func TestModelsRequiresBothConditions(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	i := CanonicalModel(g)
	if !i.Models(g) {
		t.Fatal("canonical model must model its graph")
	}
	// An interpretation failing the structural conditions must not model
	// anything.
	j := NewInterpretation()
	j.Prop[Resource("p")] = true
	j.Int[iri("p")] = Resource("p")
	j.PExt[Resource("p")] = map[Pair]bool{}
	if j.Models(g) {
		t.Fatal("structurally invalid interpretation accepted as model")
	}
}

func TestNote23SelfReferentialTriple(t *testing.T) {
	// Note 2.3: (a, type, type) is a legal RDF triple even though it has
	// no standard first-order reading. The canonical model must handle
	// the double role of type as both predicate and object.
	g := graph.New(graph.T(iri("a"), rdfs.Type, rdfs.Type))
	i := CanonicalModel(g)
	if err := i.CheckRDFSConditions(); err != nil {
		t.Fatalf("canonical model of (a,type,type) invalid: %v", err)
	}
	if !i.SatisfiesSimple(g) {
		t.Fatal("canonical model does not satisfy (a,type,type)")
	}
	// type must simultaneously be a property (it is used as predicate)
	// and a class (it appears as a type object).
	tyRes := Resource(rdfs.Type.Value)
	if !i.Prop[tyRes] {
		t.Fatal("type not in Prop")
	}
	if !i.Class[tyRes] {
		t.Fatal("type not in Class despite (a,type,type)")
	}
	if !i.CExt[tyRes][Resource("a")] {
		t.Fatal("a not in CExt(type)")
	}
}

func TestVocabularyAsDataCanonical(t *testing.T) {
	// (q, sp, dom): reserved word in object position. The closure and
	// the canonical model must still satisfy all conditions.
	g := graph.New(
		graph.T(iri("q"), rdfs.SubPropertyOf, rdfs.Domain),
		graph.T(iri("p"), iri("q"), iri("C")),
		graph.T(iri("p"), iri("r"), iri("x")),
	)
	i := CanonicalModel(g)
	if err := i.CheckRDFSConditions(); err != nil {
		t.Fatalf("canonical model invalid: %v", err)
	}
	if !i.SatisfiesSimple(g) {
		t.Fatal("canonical model does not satisfy its graph")
	}
	// Rule (3) lifts (p,q,C) to (p,dom,C); then the dom condition forces
	// p's subjects into CExt(C) — here p is used... check entailment of
	// the derived typing semantically and syntactically.
	h := graph.New(graph.T(iri("p"), rdfs.Domain, iri("C")))
	if !entail.Entails(g, h) {
		t.Fatal("derived dom triple not entailed")
	}
	if !CanonicalEntails(g, h) {
		t.Fatal("canonical model refutes the derived dom triple")
	}
}
