// Package mt implements the model theory of Section 2.3.1 of the paper:
// RDF interpretations I = (Res, Prop, Class, PExt, CExt, Int), the
// satisfaction conditions (simple interpretation, properties and classes,
// subproperty, subclass, typing), and the canonical (Herbrand-style)
// model of a graph built from its closure.
//
// The canonical model is universal for the fragment: it satisfies exactly
// the graphs entailed by G (this is the semantic content of Theorem 2.8),
// which gives the test suite a third, independent decision procedure for
// entailment to cross-validate the deductive system (Theorem 2.6) and the
// map-based characterization.
package mt

import (
	"fmt"
	"sort"

	"semwebdb/internal/closure"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// Resource identifies an element of the domain Res (or a property name).
type Resource string

// Pair is an element of Res × Res.
type Pair struct{ A, B Resource }

// Interpretation is an RDF interpretation
// I = (Res, Prop, Class, PExt, CExt, Int) per Section 2.3.1.
type Interpretation struct {
	// Res is the domain (universe) of the interpretation.
	Res map[Resource]bool
	// Prop is the set of property names (not necessarily disjoint from
	// Res).
	Prop map[Resource]bool
	// Class ⊆ Res identifies the resources denoting classes.
	Class map[Resource]bool
	// PExt assigns an extension to each property name.
	PExt map[Resource]map[Pair]bool
	// CExt assigns a set of resources to each class.
	CExt map[Resource]map[Resource]bool
	// Int maps URIs to Res ∪ Prop. URIs absent from the map are
	// interpreted as Sink.
	Int map[term.Term]Resource
	// Sink is the default image of unmapped URIs; it carries no
	// extensions and no memberships.
	Sink Resource
}

// NewInterpretation returns an empty interpretation with a sink resource.
func NewInterpretation() *Interpretation {
	i := &Interpretation{
		Res:   map[Resource]bool{},
		Prop:  map[Resource]bool{},
		Class: map[Resource]bool{},
		PExt:  map[Resource]map[Pair]bool{},
		CExt:  map[Resource]map[Resource]bool{},
		Int:   map[term.Term]Resource{},
		Sink:  Resource("⊥"),
	}
	i.Res[i.Sink] = true
	return i
}

// IntOf returns Int(u) with the sink default.
func (i *Interpretation) IntOf(u term.Term) Resource {
	if r, ok := i.Int[u]; ok {
		return r
	}
	return i.Sink
}

// pext returns PExt(p), nil-safe.
func (i *Interpretation) pext(p Resource) map[Pair]bool {
	return i.PExt[p]
}

// cext returns CExt(c), nil-safe.
func (i *Interpretation) cext(c Resource) map[Resource]bool {
	return i.CExt[c]
}

// vocabRes resolves the interpretation of a reserved word.
func (i *Interpretation) vocabRes(v term.Term) Resource { return i.IntOf(v) }

// CheckRDFSConditions verifies every structural condition the definition
// of "model" places on the interpretation itself (independent of any
// particular graph): the properties-and-classes, subproperty, subclass
// and typing conditions of Section 2.3.1. It returns nil when all hold.
func (i *Interpretation) CheckRDFSConditions() error {
	sp := i.vocabRes(rdfs.SubPropertyOf)
	sc := i.vocabRes(rdfs.SubClassOf)
	ty := i.vocabRes(rdfs.Type)
	dm := i.vocabRes(rdfs.Domain)
	rg := i.vocabRes(rdfs.Range)

	// Properties and classes.
	for _, v := range []Resource{sp, sc, ty, dm, rg} {
		if !i.Prop[v] {
			return fmt.Errorf("mt: Int of a reserved word (%s) is not in Prop", v)
		}
	}
	for p := range map[Resource]bool{dm: true, rg: true} {
		for pr := range i.pext(p) {
			if !i.Prop[pr.A] {
				return fmt.Errorf("mt: dom/range subject %s not in Prop", pr.A)
			}
			if !i.Class[pr.B] {
				return fmt.Errorf("mt: dom/range object %s not in Class", pr.B)
			}
		}
	}

	// Subproperty: PExt(sp) transitive and reflexive over Prop.
	spExt := i.pext(sp)
	for x := range i.Prop {
		if !spExt[Pair{x, x}] {
			return fmt.Errorf("mt: PExt(sp) not reflexive at %s", x)
		}
	}
	if err := transitive(spExt, "sp"); err != nil {
		return err
	}
	for pr := range spExt {
		if !i.Prop[pr.A] || !i.Prop[pr.B] {
			return fmt.Errorf("mt: sp pair (%s,%s) outside Prop", pr.A, pr.B)
		}
		for xy := range i.pext(pr.A) {
			if !i.pext(pr.B)[xy] {
				return fmt.Errorf("mt: PExt(%s) ⊄ PExt(%s) despite (%s,%s) ∈ PExt(sp)", pr.A, pr.B, pr.A, pr.B)
			}
		}
	}

	// Subclass: PExt(sc) transitive and reflexive over Class.
	scExt := i.pext(sc)
	for x := range i.Class {
		if !scExt[Pair{x, x}] {
			return fmt.Errorf("mt: PExt(sc) not reflexive at %s", x)
		}
	}
	if err := transitive(scExt, "sc"); err != nil {
		return err
	}
	for pr := range scExt {
		if !i.Class[pr.A] || !i.Class[pr.B] {
			return fmt.Errorf("mt: sc pair (%s,%s) outside Class", pr.A, pr.B)
		}
		for x := range i.cext(pr.A) {
			if !i.cext(pr.B)[x] {
				return fmt.Errorf("mt: CExt(%s) ⊄ CExt(%s)", pr.A, pr.B)
			}
		}
	}

	// Typing.
	tyExt := i.pext(ty)
	for pr := range tyExt {
		if !i.Class[pr.B] || !i.cext(pr.B)[pr.A] {
			return fmt.Errorf("mt: (x,y) ∈ PExt(type) but x ∉ CExt(y) for (%s,%s)", pr.A, pr.B)
		}
	}
	for c, ext := range i.CExt {
		if !i.Class[c] {
			return fmt.Errorf("mt: CExt defined on non-class %s", c)
		}
		for x := range ext {
			if !tyExt[Pair{x, c}] {
				return fmt.Errorf("mt: x ∈ CExt(y) but (x,y) ∉ PExt(type) for (%s,%s)", x, c)
			}
		}
	}
	for pr := range i.pext(dm) {
		for uv := range i.pext(pr.A) {
			if !i.cext(pr.B)[uv.A] {
				return fmt.Errorf("mt: dom condition violated at %s: %s ∉ CExt(%s)", pr.A, uv.A, pr.B)
			}
		}
	}
	for pr := range i.pext(rg) {
		for uv := range i.pext(pr.A) {
			if !i.cext(pr.B)[uv.B] {
				return fmt.Errorf("mt: range condition violated at %s: %s ∉ CExt(%s)", pr.A, uv.B, pr.B)
			}
		}
	}
	return nil
}

func transitive(ext map[Pair]bool, name string) error {
	for p1 := range ext {
		for p2 := range ext {
			if p1.B == p2.A && !ext[Pair{p1.A, p2.B}] {
				return fmt.Errorf("mt: PExt(%s) not transitive at (%s,%s,%s)", name, p1.A, p1.B, p2.B)
			}
		}
	}
	return nil
}

// SatisfiesSimple reports whether I satisfies the simple-interpretation
// condition for g: there is a function A : B → Res such that for every
// triple (s,p,o) of g, Int(p) ∈ Prop and (IntA(s), IntA(o)) ∈
// PExt(Int(p)). The search over A is by backtracking.
func (i *Interpretation) SatisfiesSimple(g *graph.Graph) bool {
	triples := g.Triples()
	// Fast precheck: all predicates must denote properties.
	for _, t := range triples {
		if !i.Prop[i.IntOf(t.P)] {
			return false
		}
	}
	blanks := g.BlankNodeList()
	domain := i.resList()
	assign := make(map[term.Term]Resource, len(blanks))

	valOf := func(x term.Term) (Resource, bool) {
		if x.IsBlank() {
			r, ok := assign[x]
			return r, ok
		}
		return i.IntOf(x), true
	}
	consistent := func() bool {
		for _, t := range triples {
			s, okS := valOf(t.S)
			o, okO := valOf(t.O)
			if !okS || !okO {
				continue // not yet fully assigned
			}
			if !i.pext(i.IntOf(t.P))[Pair{s, o}] {
				return false
			}
		}
		return true
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(blanks) {
			return consistent()
		}
		for _, r := range domain {
			assign[blanks[k]] = r
			if consistent() && rec(k+1) {
				return true
			}
			delete(assign, blanks[k])
		}
		return false
	}
	return rec(0)
}

func (i *Interpretation) resList() []Resource {
	out := make([]Resource, 0, len(i.Res))
	for r := range i.Res {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Models reports I ⊨ g: the interpretation meets every RDFS condition and
// satisfies the simple-interpretation condition for g.
func (i *Interpretation) Models(g *graph.Graph) bool {
	if err := i.CheckRDFSConditions(); err != nil {
		return false
	}
	return i.SatisfiesSimple(g)
}

// resOf names the resource representing a term of the closure in the
// canonical model: URIs and blanks denote themselves.
func resOf(x term.Term) Resource {
	switch {
	case x.IsBlank():
		return Resource("_:" + x.Value)
	default:
		return Resource(x.Value)
	}
}

// CanonicalModel builds the canonical model of g from its closure C:
//
//	Res    = universe(C) ∪ rdfsV,
//	Prop   = {t : (t,sp,t) ∈ C},
//	Class  = {t : (t,sc,t) ∈ C},
//	PExt(p) = ⋃ { direct(s) : s = p or (s,sp,p) ∈ C },   and
//	CExt(c) = {x : (x,c) ∈ PExt(type)},
//
// where direct(s) = {(u,v) : (u,s,v) ∈ C}. Closing PExt upward along sp
// is what lets blank "properties" (which can never appear in predicate
// position of a triple) still carry the extensions of their
// subproperties, resolving the Note 2.4 subtlety.
func CanonicalModel(g *graph.Graph) *Interpretation {
	c := closure.RDFSCl(g)
	i := NewInterpretation()

	// Domain and Int.
	for x := range c.Universe() {
		r := resOf(x)
		i.Res[r] = true
		if x.IsIRI() || x.IsLiteral() {
			i.Int[x] = r
		}
	}
	for _, v := range rdfs.Vocabulary() {
		i.Res[resOf(v)] = true
		i.Int[v] = resOf(v)
	}

	// Prop and Class from the reflexive loops of the closure.
	c.Each(func(t graph.Triple) bool {
		if t.P == rdfs.SubPropertyOf && t.S == t.O {
			i.Prop[resOf(t.S)] = true
		}
		if t.P == rdfs.SubClassOf && t.S == t.O {
			i.Class[resOf(t.S)] = true
		}
		return true
	})

	// direct extensions.
	direct := map[Resource]map[Pair]bool{}
	c.Each(func(t graph.Triple) bool {
		p := resOf(t.P)
		if direct[p] == nil {
			direct[p] = map[Pair]bool{}
		}
		direct[p][Pair{resOf(t.S), resOf(t.O)}] = true
		return true
	})

	// PExt: union of direct extensions over sp-descendants.
	// spBelow[p] = {s : (s,sp,p) ∈ C} ∪ {p}.
	spBelow := map[Resource]map[Resource]bool{}
	addBelow := func(p, s Resource) {
		if spBelow[p] == nil {
			spBelow[p] = map[Resource]bool{}
		}
		spBelow[p][s] = true
	}
	for p := range i.Prop {
		addBelow(p, p)
	}
	c.Each(func(t graph.Triple) bool {
		if t.P == rdfs.SubPropertyOf {
			addBelow(resOf(t.O), resOf(t.S))
		}
		return true
	})
	for p := range i.Prop {
		ext := map[Pair]bool{}
		for s := range spBelow[p] {
			for pr := range direct[s] {
				ext[pr] = true
			}
		}
		i.PExt[p] = ext
	}

	// CExt from PExt(type).
	tyExt := i.PExt[resOf(rdfs.Type)]
	for c0 := range i.Class {
		i.CExt[c0] = map[Resource]bool{}
	}
	for pr := range tyExt {
		if i.Class[pr.B] {
			i.CExt[pr.B][pr.A] = true
		}
	}
	return i
}

// CanonicalEntails decides G1 ⊨ G2 semantically: the canonical model of
// G1 is universal for the fragment, so G1 ⊨ G2 iff canonical(G1) ⊨ G2.
// This is an independent code path from the map-based characterization
// and from proof search; the test suite checks all three agree.
func CanonicalEntails(g1, g2 *graph.Graph) bool {
	return CanonicalModel(g1).Models(g2)
}
