package dict

import (
	"fmt"
	"sync"
	"testing"

	"semwebdb/internal/term"
)

func TestInternRoundTrip(t *testing.T) {
	d := New()
	a := term.NewIRI("urn:a")
	b := term.NewBlank("b")
	l := term.NewLangLiteral("x", "en")

	ida := d.Intern(a)
	idb := d.Intern(b)
	idl := d.Intern(l)
	if ida == Wildcard || idb == Wildcard || idl == Wildcard {
		t.Fatal("allocated the wildcard ID")
	}
	if d.Intern(a) != ida {
		t.Fatal("re-interning changed the ID")
	}
	if got := d.TermOf(ida); got != a {
		t.Fatalf("TermOf = %v, want %v", got, a)
	}
	if d.KindOf(idb) != term.KindBlank || d.KindOf(idl) != term.KindLiteral {
		t.Fatal("KindOf wrong")
	}
	if id, ok := d.Lookup(b); !ok || id != idb {
		t.Fatal("Lookup failed")
	}
	if _, ok := d.Lookup(term.NewIRI("urn:missing")); ok {
		t.Fatal("Lookup invented an ID")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestSnapshotsAreStable(t *testing.T) {
	d := New()
	d.Intern(term.NewIRI("urn:1"))
	terms := d.Terms()
	kinds := d.Kinds()
	for i := 0; i < 100; i++ {
		d.Intern(term.NewIRI(fmt.Sprintf("urn:extra:%d", i)))
	}
	if len(terms) != 1 || len(kinds) != 1 {
		t.Fatal("snapshot length changed after later interning")
	}
	if terms[0] != term.NewIRI("urn:1") {
		t.Fatal("snapshot content changed")
	}
}

func TestConcurrentIntern(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	const goroutines, n = 8, 500
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, n)
			for i := 0; i < n; i++ {
				ids[g][i] = d.Intern(term.NewIRI(fmt.Sprintf("urn:t:%d", i)))
				_ = d.KindOf(ids[g][i])
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < n; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutines disagree on ID of term %d", i)
			}
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	tr := Triple3{1, 2, 3}
	for _, o := range []Order{SPO, POS, OSP} {
		if got := Unpermute(Permute(tr, o), o); got != tr {
			t.Fatalf("order %v: round trip = %v", o, got)
		}
	}
}

func TestChooseOrder(t *testing.T) {
	cases := []struct {
		s, p, o bool
		want    Order
		prefix  int
	}{
		{false, false, false, SPO, 0},
		{true, false, false, SPO, 1},
		{false, true, false, POS, 1},
		{false, false, true, OSP, 1},
		{true, true, false, SPO, 2},
		{false, true, true, POS, 2},
		{true, false, true, OSP, 2},
		{true, true, true, SPO, 3},
	}
	for _, c := range cases {
		o, n := ChooseOrder(c.s, c.p, c.o)
		if o != c.want || n != c.prefix {
			t.Fatalf("ChooseOrder(%v,%v,%v) = %v,%d want %v,%d",
				c.s, c.p, c.o, o, n, c.want, c.prefix)
		}
	}
}

func TestSearchRange(t *testing.T) {
	idx := []Triple3{
		{1, 1, 1}, {1, 1, 3}, {1, 2, 1}, {2, 1, 1}, {2, 1, 2}, {3, 9, 9},
	}
	SortIndex(idx)
	lo, hi := SearchRange(idx, Triple3{1, 1, 0}, 2)
	if hi-lo != 2 {
		t.Fatalf("prefix-2 range size = %d, want 2", hi-lo)
	}
	lo, hi = SearchRange(idx, Triple3{2, 0, 0}, 1)
	if hi-lo != 2 {
		t.Fatalf("prefix-1 range size = %d, want 2", hi-lo)
	}
	lo, hi = SearchRange(idx, Triple3{9, 0, 0}, 1)
	if hi-lo != 0 {
		t.Fatalf("missing key range size = %d, want 0", hi-lo)
	}
	lo, hi = SearchRange(idx, Triple3{}, 0)
	if lo != 0 || hi != len(idx) {
		t.Fatal("prefix-0 should select everything")
	}
}
