package dict

import (
	"fmt"
	"sync"
	"testing"

	"semwebdb/internal/term"
)

func TestScratchReadsFallThrough(t *testing.T) {
	base := New()
	var ids []ID
	for i := 0; i < 100; i++ {
		ids = append(ids, base.Intern(term.NewIRI(fmt.Sprintf("urn:x:%d", i))))
	}
	s := base.Scratch()
	if s.Len() != base.Len() {
		t.Fatalf("scratch Len = %d, want %d", s.Len(), base.Len())
	}
	for i, id := range ids {
		want := term.NewIRI(fmt.Sprintf("urn:x:%d", i))
		if got := s.TermOf(id); got != want {
			t.Fatalf("TermOf(%d) = %v, want %v", id, got, want)
		}
		if got := s.KindOf(id); got != term.KindIRI {
			t.Fatalf("KindOf(%d) = %v, want iri", id, got)
		}
		if got, ok := s.Lookup(want); !ok || got != id {
			t.Fatalf("Lookup(%v) = %d,%v, want %d,true", want, got, ok, id)
		}
		// Interning a base term through the scratch returns the base ID.
		if got := s.Intern(want); got != id {
			t.Fatalf("Intern(%v) = %d, want base ID %d", want, got, id)
		}
	}
	if base.Len() != 100 {
		t.Fatalf("base grew to %d during scratch reads", base.Len())
	}
}

func TestScratchInternsStayInOverlay(t *testing.T) {
	base := New()
	a := base.Intern(term.NewIRI("urn:a"))
	s := base.Scratch()
	fresh := s.Intern(term.NewBlank("sk1"))
	if fresh != ID(base.Len()+1) {
		t.Fatalf("overlay ID = %d, want %d", fresh, base.Len()+1)
	}
	if got := s.TermOf(fresh); got != term.NewBlank("sk1") {
		t.Fatalf("TermOf(overlay) = %v", got)
	}
	if got := s.KindOf(fresh); got != term.KindBlank {
		t.Fatalf("KindOf(overlay) = %v", got)
	}
	if base.Len() != 1 {
		t.Fatalf("base grew to %d: overlay intern leaked", base.Len())
	}
	if _, ok := base.Lookup(term.NewBlank("sk1")); ok {
		t.Fatal("overlay term visible in base")
	}
	if s.Len() != 2 {
		t.Fatalf("scratch Len = %d, want 2", s.Len())
	}
	// Re-interning dedups within the overlay; base terms keep base IDs.
	if got := s.Intern(term.NewBlank("sk1")); got != fresh {
		t.Fatalf("re-intern = %d, want %d", got, fresh)
	}
	if got := s.Intern(term.NewIRI("urn:a")); got != a {
		t.Fatalf("base term through scratch = %d, want %d", got, a)
	}
}

// TestScratchPostFreezeBaseInterns: terms interned into the base after
// the overlay froze must be invisible through the overlay — their base
// IDs live in the overlay's private range and would alias it.
func TestScratchPostFreezeBaseInterns(t *testing.T) {
	base := New()
	base.Intern(term.NewIRI("urn:a"))
	s := base.Scratch()
	late := base.Intern(term.NewIRI("urn:late")) // base ID 2, after freeze
	ov := s.Intern(term.NewBlank("b"))           // overlay ID 2
	if ov != late {
		t.Fatalf("test setup: want aliasing IDs, got overlay %d base %d", ov, late)
	}
	if got := s.TermOf(2); got != term.NewBlank("b") {
		t.Fatalf("scratch TermOf(2) = %v, want the overlay term", got)
	}
	if id, ok := s.Lookup(term.NewIRI("urn:late")); ok {
		t.Fatalf("post-freeze base term visible through scratch as %d", id)
	}
	// Interning the late term through the scratch re-interns privately.
	re := s.Intern(term.NewIRI("urn:late"))
	if re != 3 {
		t.Fatalf("late term re-interned as %d, want 3", re)
	}
	if got := s.TermOf(re); got != term.NewIRI("urn:late") {
		t.Fatalf("TermOf(%d) = %v", re, got)
	}
}

func TestScratchNesting(t *testing.T) {
	root := New()
	a := root.Intern(term.NewIRI("urn:a"))
	s1 := root.Scratch()
	b := s1.Intern(term.NewIRI("urn:b"))
	s2 := s1.Scratch()
	c := s2.Intern(term.NewIRI("urn:c"))
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("IDs = %d,%d,%d, want 1,2,3", a, b, c)
	}
	for id, want := range map[ID]term.Term{
		a: term.NewIRI("urn:a"),
		b: term.NewIRI("urn:b"),
		c: term.NewIRI("urn:c"),
	} {
		if got := s2.TermOf(id); got != want {
			t.Fatalf("s2.TermOf(%d) = %v, want %v", id, got, want)
		}
		if got, ok := s2.Lookup(want); !ok || got != id {
			t.Fatalf("s2.Lookup(%v) = %d,%v", want, got, ok)
		}
	}
	if got := s2.Intern(term.NewIRI("urn:b")); got != b {
		t.Fatalf("mid-layer term through s2 = %d, want %d", got, b)
	}
	if root.Len() != 1 || s1.Len() != 2 || s2.Len() != 3 {
		t.Fatalf("Lens = %d,%d,%d, want 1,2,3", root.Len(), s1.Len(), s2.Len())
	}
	if s2.Base() != s1 || s1.Base() != root || root.Base() != nil {
		t.Fatal("Base chain wrong")
	}
}

// TestScratchTermsKinds: the materialized views cover base + overlay in
// ID order and track later overlay interns.
func TestScratchTermsKinds(t *testing.T) {
	base := New()
	base.Intern(term.NewIRI("urn:a"))
	base.Intern(term.NewBlank("x"))
	s := base.Scratch()
	s.Intern(term.NewLiteral("lit"))
	terms := s.Terms()
	kinds := s.Kinds()
	if len(terms) != 3 || len(kinds) != 3 {
		t.Fatalf("lens = %d,%d, want 3,3", len(terms), len(kinds))
	}
	for id := ID(1); id <= 3; id++ {
		if terms[id-1] != s.TermOf(id) {
			t.Fatalf("Terms()[%d] = %v, want %v", id-1, terms[id-1], s.TermOf(id))
		}
		if kinds[id-1] != s.KindOf(id) {
			t.Fatalf("Kinds()[%d] = %v, want %v", id-1, kinds[id-1], s.KindOf(id))
		}
	}
	// The cache must refresh after further interns.
	s.Intern(term.NewVar("V"))
	if got := s.Terms(); len(got) != 4 || got[3] != term.NewVar("V") {
		t.Fatalf("Terms() after intern = %v", got)
	}
	if base.Len() != 2 {
		t.Fatalf("base grew to %d", base.Len())
	}
}

// TestScratchConcurrent hammers one overlay from several goroutines
// while the base also interns; run under -race.
func TestScratchConcurrent(t *testing.T) {
	base := New()
	for i := 0; i < 50; i++ {
		base.Intern(term.NewIRI(fmt.Sprintf("urn:base:%d", i)))
	}
	s := base.Scratch()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				shared := s.Intern(term.NewBlank(fmt.Sprintf("shared%d", i%20)))
				if got := s.TermOf(shared); got != term.NewBlank(fmt.Sprintf("shared%d", i%20)) {
					panic("overlay readback mismatch")
				}
				if id := s.Intern(term.NewIRI(fmt.Sprintf("urn:base:%d", i%50))); int(id) > 50 {
					panic("base term re-interned into overlay")
				}
				_ = s.KindOf(ID(i%50 + 1))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			base.Intern(term.NewIRI(fmt.Sprintf("urn:late:%d", i)))
		}
	}()
	wg.Wait()
	if n := s.Len(); n != 50+20 {
		t.Fatalf("scratch Len = %d, want 70", n)
	}
}

// TestScratchInternMany covers the batch-intern path over an overlay.
func TestScratchInternMany(t *testing.T) {
	base := New()
	a := base.Intern(term.NewIRI("urn:a"))
	s := base.Scratch()
	ids := s.InternMany([]term.Term{
		term.NewIRI("urn:a"),   // base hit
		term.NewIRI("urn:new"), // overlay
		term.NewIRI("urn:a"),   // base hit again
		term.NewIRI("urn:new"), // overlay dedup
	})
	want := []ID{a, 2, a, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("InternMany[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
	if base.Len() != 1 {
		t.Fatalf("base grew to %d", base.Len())
	}
}
