// Package dict implements the dictionary-encoding substrate shared by
// the graph, store and match layers: RDF terms are interned to dense
// integer IDs, triples become fixed-size ID triples (Triple3), and the
// three sorted permutations SPO/POS/OSP turn every triple pattern with a
// bound position into a binary-search range scan.
//
// A Dict is safe for concurrent use: interning serializes behind a
// mutex, while the ID→term and ID→kind read paths are lock-free
// (an atomically published append-only view). IDs are dense and start
// at 1; ID 0 is the Wildcard, marking an unbound pattern position.
package dict

import (
	"sort"
	"sync"
	"sync/atomic"

	"semwebdb/internal/term"
)

// ID is a dictionary-encoded term identifier. The zero ID is reserved
// as the pattern wildcard and never names a term.
type ID uint32

// Wildcard marks an unbound position in a triple pattern.
const Wildcard ID = 0

// Triple3 is a dictionary-encoded triple (subject, predicate, object).
type Triple3 [3]ID

// Less orders Triple3 values lexicographically by position.
func (t Triple3) Less(u Triple3) bool {
	if t[0] != u[0] {
		return t[0] < u[0]
	}
	if t[1] != u[1] {
		return t[1] < u[1]
	}
	return t[2] < u[2]
}

// Order names one of the maintained index permutations.
type Order int

const (
	// SPO orders triples by subject, predicate, object.
	SPO Order = iota
	// POS orders triples by predicate, object, subject.
	POS
	// OSP orders triples by object, subject, predicate.
	OSP
)

// Permute maps a triple into the key layout of the given order.
func Permute(t Triple3, o Order) Triple3 {
	switch o {
	case POS:
		return Triple3{t[1], t[2], t[0]}
	case OSP:
		return Triple3{t[2], t[0], t[1]}
	default:
		return t
	}
}

// Unpermute inverts Permute.
func Unpermute(k Triple3, o Order) Triple3 {
	switch o {
	case POS:
		return Triple3{k[2], k[0], k[1]}
	case OSP:
		return Triple3{k[1], k[2], k[0]}
	default:
		return k
	}
}

// ChooseOrder selects the permutation whose leading key positions cover
// the most bound pattern positions, returning it together with the
// length of the fully-bound key prefix. With all three permutations
// maintained, every bound subset of {S,P,O} except the empty one is a
// full prefix of some order, so range scans never post-filter.
func ChooseOrder(sb, pb, ob bool) (Order, int) {
	prefix := func(a, b, c bool) int {
		switch {
		case a && b && c:
			return 3
		case a && b:
			return 2
		case a:
			return 1
		default:
			return 0
		}
	}
	best, bestLen := SPO, prefix(sb, pb, ob)
	if n := prefix(pb, ob, sb); n > bestLen {
		best, bestLen = POS, n
	}
	if n := prefix(ob, sb, pb); n > bestLen {
		best, bestLen = OSP, n
	}
	return best, bestLen
}

// SortIndex sorts a permuted key slice in place.
func SortIndex(idx []Triple3) {
	sort.Slice(idx, func(i, j int) bool { return idx[i].Less(idx[j]) })
}

// MergeSortedKeys merges sorted, pairwise-disjoint key runs into one
// sorted slice. It is the reduce step used to assemble a permutation
// from per-shard sorted runs without re-sorting the concatenation: the
// parallel closure engine sorts each shard's keys independently and
// merges the runs here in O(k·n) for k runs. A single non-empty run is
// returned as-is (callers hand over ownership of the runs).
func MergeSortedKeys(runs [][]Triple3) []Triple3 {
	live := make([][]Triple3, 0, len(runs))
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			total += len(r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]Triple3, 0, total)
	for len(live) > 1 {
		best := 0
		for i := 1; i < len(live); i++ {
			if live[i][0].Less(live[best][0]) {
				best = i
			}
		}
		out = append(out, live[best][0])
		if live[best] = live[best][1:]; len(live[best]) == 0 {
			live[best] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return append(out, live[0]...)
}

// SearchRange returns the half-open interval [lo, hi) of entries of the
// sorted key slice idx whose first `prefix` positions equal those of
// key. A prefix of 0 selects the whole slice.
func SearchRange(idx []Triple3, key Triple3, prefix int) (lo, hi int) {
	if prefix <= 0 {
		return 0, len(idx)
	}
	lo = sort.Search(len(idx), func(i int) bool {
		return !prefixLess(idx[i], key, prefix)
	})
	hi = lo + sort.Search(len(idx)-lo, func(i int) bool {
		return prefixGreater(idx[lo+i], key, prefix)
	})
	return lo, hi
}

func prefixLess(a, key Triple3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != key[i] {
			return a[i] < key[i]
		}
	}
	return false
}

func prefixGreater(a, key Triple3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != key[i] {
			return a[i] > key[i]
		}
	}
	return false
}

// view is the atomically published read state: parallel append-only
// slices indexed by ID-1. Published elements are never rewritten, so a
// loaded view stays valid while writers append behind it.
type view struct {
	terms []term.Term
	kinds []term.Kind
}

// Dict interns terms to dense IDs and resolves them back. The zero
// value is not ready to use; construct with New.
type Dict struct {
	mu  sync.RWMutex // guards ids and writer-side appends
	ids map[term.Term]ID
	v   atomic.Pointer[view]
}

// New returns an empty dictionary.
func New() *Dict {
	d := &Dict{ids: make(map[term.Term]ID)}
	d.v.Store(&view{})
	return d
}

// Intern returns the ID of t, allocating one if needed.
func (d *Dict) Intern(t term.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	old := d.v.Load()
	nv := &view{
		terms: append(old.terms, t),
		kinds: append(old.kinds, t.Kind()),
	}
	id = ID(len(nv.terms))
	d.ids[t] = id
	d.v.Store(nv)
	return id
}

// InternMany interns every term of ts and returns their IDs in order.
// It takes the writer lock once for the whole batch, so concurrent
// engines interning fixed vocabularies (the closure engine interns
// rdfsV at setup) do not interleave their allocations with other
// writers mid-batch.
func (d *Dict) InternMany(ts []term.Term) []ID {
	out := make([]ID, len(ts))
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.v.Load()
	terms, kinds := old.terms, old.kinds
	dirty := false
	for i, t := range ts {
		if id, ok := d.ids[t]; ok {
			out[i] = id
			continue
		}
		terms = append(terms, t)
		kinds = append(kinds, t.Kind())
		id := ID(len(terms))
		d.ids[t] = id
		out[i] = id
		dirty = true
	}
	if dirty {
		d.v.Store(&view{terms: terms, kinds: kinds})
	}
	return out
}

// Lookup returns the ID of t if it has been interned.
func (d *Dict) Lookup(t term.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// TermOf returns the term for an ID. It panics on the Wildcard or an
// unallocated ID.
func (d *Dict) TermOf(id ID) term.Term { return d.v.Load().terms[id-1] }

// KindOf returns the syntactic category of the term named by id.
func (d *Dict) KindOf(id ID) term.Kind { return d.v.Load().kinds[id-1] }

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.v.Load().terms) }

// Terms returns a stable snapshot of the interned terms, indexed by
// ID-1. The slice is shared and must not be modified; terms interned
// after the call are not visible through it.
func (d *Dict) Terms() []term.Term { return d.v.Load().terms }

// Kinds returns a stable snapshot of the term kinds, indexed by ID-1,
// under the same contract as Terms.
func (d *Dict) Kinds() []term.Kind { return d.v.Load().kinds }
