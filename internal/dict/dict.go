// Package dict implements the dictionary-encoding substrate shared by
// the graph, store and match layers: RDF terms are interned to dense
// integer IDs, triples become fixed-size ID triples (Triple3), and the
// three sorted permutations SPO/POS/OSP turn every triple pattern with a
// bound position into a binary-search range scan.
//
// A Dict is safe for concurrent use: interning serializes behind a
// mutex, while the ID→term and ID→kind read paths are lock-free
// (an atomically published append-only view). IDs are dense and start
// at 1; ID 0 is the Wildcard, marking an unbound pattern position.
package dict

import (
	"sort"
	"sync"
	"sync/atomic"

	"semwebdb/internal/term"
)

// ID is a dictionary-encoded term identifier. The zero ID is reserved
// as the pattern wildcard and never names a term.
type ID uint32

// Wildcard marks an unbound position in a triple pattern.
const Wildcard ID = 0

// Triple3 is a dictionary-encoded triple (subject, predicate, object).
type Triple3 [3]ID

// Less orders Triple3 values lexicographically by position.
func (t Triple3) Less(u Triple3) bool {
	if t[0] != u[0] {
		return t[0] < u[0]
	}
	if t[1] != u[1] {
		return t[1] < u[1]
	}
	return t[2] < u[2]
}

// Order names one of the maintained index permutations.
type Order int

const (
	// SPO orders triples by subject, predicate, object.
	SPO Order = iota
	// POS orders triples by predicate, object, subject.
	POS
	// OSP orders triples by object, subject, predicate.
	OSP
)

// Permute maps a triple into the key layout of the given order.
func Permute(t Triple3, o Order) Triple3 {
	switch o {
	case POS:
		return Triple3{t[1], t[2], t[0]}
	case OSP:
		return Triple3{t[2], t[0], t[1]}
	default:
		return t
	}
}

// Unpermute inverts Permute.
func Unpermute(k Triple3, o Order) Triple3 {
	switch o {
	case POS:
		return Triple3{k[2], k[0], k[1]}
	case OSP:
		return Triple3{k[1], k[2], k[0]}
	default:
		return k
	}
}

// ChooseOrder selects the permutation whose leading key positions cover
// the most bound pattern positions, returning it together with the
// length of the fully-bound key prefix. With all three permutations
// maintained, every bound subset of {S,P,O} except the empty one is a
// full prefix of some order, so range scans never post-filter.
func ChooseOrder(sb, pb, ob bool) (Order, int) {
	prefix := func(a, b, c bool) int {
		switch {
		case a && b && c:
			return 3
		case a && b:
			return 2
		case a:
			return 1
		default:
			return 0
		}
	}
	best, bestLen := SPO, prefix(sb, pb, ob)
	if n := prefix(pb, ob, sb); n > bestLen {
		best, bestLen = POS, n
	}
	if n := prefix(ob, sb, pb); n > bestLen {
		best, bestLen = OSP, n
	}
	return best, bestLen
}

// SortIndex sorts a permuted key slice in place.
func SortIndex(idx []Triple3) {
	sort.Slice(idx, func(i, j int) bool { return idx[i].Less(idx[j]) })
}

// MergeSortedKeys merges sorted, pairwise-disjoint key runs into one
// sorted slice. It is the reduce step used to assemble a permutation
// from per-shard sorted runs without re-sorting the concatenation: the
// parallel closure engine sorts each shard's keys independently and
// merges the runs here in O(k·n) for k runs. A single non-empty run is
// returned as-is (callers hand over ownership of the runs).
func MergeSortedKeys(runs [][]Triple3) []Triple3 {
	live := make([][]Triple3, 0, len(runs))
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			total += len(r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]Triple3, 0, total)
	for len(live) > 1 {
		best := 0
		for i := 1; i < len(live); i++ {
			if live[i][0].Less(live[best][0]) {
				best = i
			}
		}
		out = append(out, live[best][0])
		if live[best] = live[best][1:]; len(live[best]) == 0 {
			live[best] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return append(out, live[0]...)
}

// SearchRange returns the half-open interval [lo, hi) of entries of the
// sorted key slice idx whose first `prefix` positions equal those of
// key. A prefix of 0 selects the whole slice.
func SearchRange(idx []Triple3, key Triple3, prefix int) (lo, hi int) {
	if prefix <= 0 {
		return 0, len(idx)
	}
	lo = sort.Search(len(idx), func(i int) bool {
		return !prefixLess(idx[i], key, prefix)
	})
	hi = lo + sort.Search(len(idx)-lo, func(i int) bool {
		return prefixGreater(idx[lo+i], key, prefix)
	})
	return lo, hi
}

func prefixLess(a, key Triple3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != key[i] {
			return a[i] < key[i]
		}
	}
	return false
}

func prefixGreater(a, key Triple3, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != key[i] {
			return a[i] > key[i]
		}
	}
	return false
}

// view is the atomically published read state: parallel append-only
// slices indexed by ID-1 (minus the scratch offset for overlays).
// Published elements are never rewritten, so a loaded view stays valid
// while writers append behind it.
type view struct {
	terms []term.Term
	kinds []term.Kind
}

// segment is one frozen layer of base-dictionary state visible through
// a scratch overlay: the terms with IDs in (lo, hi], sharing the base's
// published backing arrays (published elements are immutable, so the
// shared prefix never changes under the overlay).
type segment struct {
	lo, hi int
	terms  []term.Term
	kinds  []term.Kind
}

// Dict interns terms to dense IDs and resolves them back. The zero
// value is not ready to use; construct with New.
//
// A Dict is either a root dictionary (New) owning the whole ID space,
// or a scratch overlay (Scratch) that reads through a base dictionary
// and appends only to a private extension of its ID space. All methods
// behave identically on both; see Scratch for the overlay contract.
type Dict struct {
	mu  sync.RWMutex // guards ids and writer-side appends
	ids map[term.Term]ID
	v   atomic.Pointer[view]

	// Scratch-overlay state; zero for root dictionaries. off is the
	// number of base IDs frozen into the overlay's view of the ID space,
	// segs are the frozen base layers in ascending ID order (contiguous:
	// segs[0].lo == 0, segs[k].lo == segs[k-1].hi, segs[last].hi == off),
	// and base is the dictionary term→ID lookups fall through to.
	off  int
	segs []segment
	base *Dict
	comb atomic.Pointer[view] // cached Terms/Kinds materialization
}

// New returns an empty dictionary.
func New() *Dict {
	d := &Dict{ids: make(map[term.Term]ID)}
	d.v.Store(&view{})
	return d
}

// Scratch returns a copy-on-write overlay over d: a dictionary that
// resolves every ID and term d holds at the time of the call exactly as
// d does — ID→term reads stay lock-free and fall straight through to
// the frozen base layers — while new interns land only in the overlay's
// private ID range (base len + 1 and up) and die with it. The base is
// never mutated through the overlay, which is what lets query
// evaluation intern pattern variables and per-matching Skolem blanks
// without growing the database dictionary.
//
// Terms interned into d after the overlay was created are not visible
// through it (their IDs would collide with the overlay's); such terms
// re-intern into the overlay with fresh private IDs. Overlays nest:
// Scratch on a scratch freezes the whole chain. An overlay is safe for
// concurrent use under the same contract as a root dictionary.
func (d *Dict) Scratch() *Dict {
	bv := d.v.Load()
	s := &Dict{
		ids:  make(map[term.Term]ID),
		off:  d.off + len(bv.terms),
		base: d,
	}
	s.segs = make([]segment, 0, len(d.segs)+1)
	s.segs = append(s.segs, d.segs...)
	s.segs = append(s.segs, segment{lo: d.off, hi: d.off + len(bv.terms), terms: bv.terms, kinds: bv.kinds})
	s.v.Store(&view{})
	scratchOverlays.Inc()
	return s
}

// Base returns the dictionary this overlay reads through, or nil for a
// root dictionary.
func (d *Dict) Base() *Dict { return d.base }

// lookupBounded resolves t against d and its base chain, accepting only
// IDs at or below max — IDs interned after an overlay froze this layer
// are invisible to that overlay and must be rejected, or the overlay's
// private range would alias them.
func (d *Dict) lookupBounded(t term.Term, max int) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		if int(id) <= max {
			return id, true
		}
		return 0, false
	}
	if d.base != nil {
		m := d.off
		if max < m {
			m = max
		}
		return d.base.lookupBounded(t, m)
	}
	return 0, false
}

// Intern returns the ID of t, allocating one if needed.
func (d *Dict) Intern(t term.Term) ID {
	if d.base != nil {
		if id, ok := d.base.lookupBounded(t, d.off); ok {
			return id
		}
	}
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	old := d.v.Load()
	nv := &view{
		terms: append(old.terms, t),
		kinds: append(old.kinds, t.Kind()),
	}
	id = ID(d.off + len(nv.terms))
	d.ids[t] = id
	d.v.Store(nv)
	d.noteInterned(1)
	return id
}

// InternMany interns every term of ts and returns their IDs in order.
// It takes the writer lock once for the whole batch, so concurrent
// engines interning fixed vocabularies (the closure engine interns
// rdfsV at setup) do not interleave their allocations with other
// writers mid-batch.
func (d *Dict) InternMany(ts []term.Term) []ID {
	out := make([]ID, len(ts))
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.v.Load()
	terms, kinds := old.terms, old.kinds
	fresh := uint64(0)
	dirty := false
	for i, t := range ts {
		if d.base != nil {
			if id, ok := d.base.lookupBounded(t, d.off); ok {
				out[i] = id
				continue
			}
		}
		if id, ok := d.ids[t]; ok {
			out[i] = id
			continue
		}
		terms = append(terms, t)
		kinds = append(kinds, t.Kind())
		id := ID(d.off + len(terms))
		d.ids[t] = id
		out[i] = id
		fresh++
		dirty = true
	}
	if dirty {
		d.v.Store(&view{terms: terms, kinds: kinds})
		d.noteInterned(fresh)
	}
	return out
}

// Lookup returns the ID of t if it has been interned (in this
// dictionary or, for a scratch overlay, in a visible base layer).
func (d *Dict) Lookup(t term.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id, true
	}
	if d.base != nil {
		return d.base.lookupBounded(t, d.off)
	}
	return 0, false
}

// baseTerm resolves an ID frozen below the overlay: the segments are
// contiguous and at most a few deep, so this is a couple of integer
// compares, no lock and no pointer chase through the base.
func (d *Dict) baseTerm(i int) term.Term {
	for k := len(d.segs) - 1; ; k-- {
		if s := &d.segs[k]; i > s.lo {
			return s.terms[i-s.lo-1]
		}
	}
}

func (d *Dict) baseKind(i int) term.Kind {
	for k := len(d.segs) - 1; ; k-- {
		if s := &d.segs[k]; i > s.lo {
			return s.kinds[i-s.lo-1]
		}
	}
}

// TermOf returns the term for an ID. It panics on the Wildcard or an
// unallocated ID.
func (d *Dict) TermOf(id ID) term.Term {
	if i := int(id); i <= d.off {
		return d.baseTerm(i)
	}
	return d.v.Load().terms[int(id)-d.off-1]
}

// KindOf returns the syntactic category of the term named by id.
func (d *Dict) KindOf(id ID) term.Kind {
	if i := int(id); i <= d.off {
		return d.baseKind(i)
	}
	return d.v.Load().kinds[int(id)-d.off-1]
}

// Len returns the number of interned terms (including, for a scratch
// overlay, the frozen base prefix it reads through).
func (d *Dict) Len() int { return d.off + len(d.v.Load().terms) }

// combined materializes (and caches) the flattened base+overlay view of
// a scratch dictionary. The copy is O(Len) and invalidated by overlay
// interns; engine hot paths use TermOf/KindOf instead and never pay it.
func (d *Dict) combined() *view {
	ov := d.v.Load()
	n := d.off + len(ov.terms)
	if c := d.comb.Load(); c != nil && len(c.terms) == n {
		return c
	}
	terms := make([]term.Term, 0, n)
	kinds := make([]term.Kind, 0, n)
	for _, s := range d.segs {
		terms = append(terms, s.terms...)
		kinds = append(kinds, s.kinds...)
	}
	terms = append(terms, ov.terms...)
	kinds = append(kinds, ov.kinds...)
	c := &view{terms: terms, kinds: kinds}
	d.comb.Store(c)
	return c
}

// Terms returns a stable snapshot of the interned terms, indexed by
// ID-1. The slice is shared and must not be modified; terms interned
// after the call are not visible through it. On a scratch overlay this
// materializes (and caches) a flattened copy — cold-path callers only;
// hot loops resolve individual IDs with TermOf.
func (d *Dict) Terms() []term.Term {
	if d.base == nil {
		return d.v.Load().terms
	}
	return d.combined().terms
}

// Kinds returns a stable snapshot of the term kinds, indexed by ID-1,
// under the same contract (and scratch-overlay cost) as Terms.
func (d *Dict) Kinds() []term.Kind {
	if d.base == nil {
		return d.v.Load().kinds
	}
	return d.combined().kinds
}
