package dict

import "semwebdb/internal/obs"

// Dictionary metric families (process-global; see internal/obs). The
// intern counters tick only on the slow path that actually appends a
// term — the lock-free lookup hit pays nothing — and the overlay
// counter measures scratch-space churn: one tick per Scratch call,
// i.e. roughly one per read operation on a live database.
var (
	internsVec = obs.Default.CounterVec("semweb_dict_interns_total",
		"Terms interned, by dictionary layer (base = the shared database dictionary, scratch = per-evaluation overlays).",
		"layer")
	internsBase    = internsVec.With("base")
	internsScratch = internsVec.With("scratch")

	scratchOverlays = obs.Default.Counter("semweb_dict_scratch_overlays_total",
		"Scratch overlays created (one per read operation on a live database, plus nested premise/evaluation layers).")
)

// noteInterned records n freshly appended terms against the layer of d.
func (d *Dict) noteInterned(n uint64) {
	if d.base != nil {
		internsScratch.Add(n)
	} else {
		internsBase.Add(n)
	}
}
