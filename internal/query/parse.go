package query

import (
	"fmt"
	"strings"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// ParseQuery parses the textual tableau format used by cmd/rdfquery:
//
//	# comment lines start with '#'
//	HEAD:
//	?X <urn:ex:creates> ?Y .
//	BODY:
//	?X <urn:ex:paints> ?Y .
//	PREMISE:
//	<urn:ex:son> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <urn:ex:relative> .
//	CONSTRAINTS: ?X
//
// Sections PREMISE and CONSTRAINTS are optional. Triple lines use
// N-Triples-style terms plus ?variables; the trailing '.' is optional.
func ParseQuery(src string) (*Query, error) {
	var head, body []graph.Triple
	premise := graph.New()
	var constraints []term.Term

	section := ""
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case upper == "HEAD:":
			section = "head"
			continue
		case upper == "BODY:":
			section = "body"
			continue
		case upper == "PREMISE:":
			section = "premise"
			continue
		case strings.HasPrefix(upper, "CONSTRAINTS:"):
			rest := strings.TrimSpace(line[len("CONSTRAINTS:"):])
			for _, f := range strings.Fields(rest) {
				if !strings.HasPrefix(f, "?") || len(f) == 1 {
					return nil, &ParseError{Line: lineNo + 1, Msg: fmt.Sprintf("constraint %q is not a variable", f)}
				}
				constraints = append(constraints, term.NewVar(f[1:]))
			}
			continue
		}
		if section == "" {
			return nil, &ParseError{Line: lineNo + 1, Msg: "content before any section header"}
		}
		t, err := parseTripleLine(line, lineNo+1)
		if err != nil {
			return nil, err
		}
		switch section {
		case "head":
			head = append(head, t)
		case "body":
			body = append(body, t)
		case "premise":
			if t.HasVar() {
				return nil, &ParseError{Line: lineNo + 1, Msg: "premise triples must not contain variables"}
			}
			if !premise.Add(t) {
				if !t.WellFormed() {
					return nil, &ParseError{Line: lineNo + 1, Msg: "ill-formed premise triple"}
				}
			}
		}
	}
	if len(head) == 0 || len(body) == 0 {
		return nil, &ParseError{Msg: "HEAD and BODY sections are required and must be non-empty"}
	}
	q := New(head, body).WithPremise(premise).WithConstraints(constraints...)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseTripleLine parses "term term term [.]" with variables allowed.
func parseTripleLine(line string, lineNo int) (graph.Triple, error) {
	p := &termScanner{src: line, line: lineNo}
	s, err := p.next()
	if err != nil {
		return graph.Triple{}, err
	}
	pr, err := p.next()
	if err != nil {
		return graph.Triple{}, err
	}
	o, err := p.next()
	if err != nil {
		return graph.Triple{}, err
	}
	p.skipWS()
	if !p.eof() && p.peek() == '.' {
		p.pos++
		p.skipWS()
	}
	if !p.eof() {
		return graph.Triple{}, &ParseError{Line: lineNo, Msg: fmt.Sprintf("trailing content %q", p.src[p.pos:])}
	}
	return graph.Triple{S: s, P: pr, O: o}, nil
}

type termScanner struct {
	src  string
	pos  int
	line int
}

func (p *termScanner) eof() bool  { return p.pos >= len(p.src) }
func (p *termScanner) peek() byte { return p.src[p.pos] }

func (p *termScanner) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *termScanner) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *termScanner) next() (term.Term, error) {
	p.skipWS()
	if p.eof() {
		return term.Term{}, p.errf("expected a term")
	}
	switch p.peek() {
	case '?':
		p.pos++
		start := p.pos
		for !p.eof() && isVarChar(p.peek()) {
			p.pos++
		}
		if p.pos == start {
			return term.Term{}, p.errf("empty variable name")
		}
		return term.NewVar(p.src[start:p.pos]), nil
	case '<':
		p.pos++
		start := p.pos
		for !p.eof() && p.peek() != '>' {
			p.pos++
		}
		if p.eof() {
			return term.Term{}, p.errf("unterminated IRI")
		}
		iri := p.src[start:p.pos]
		p.pos++
		if iri == "" {
			return term.Term{}, p.errf("empty IRI")
		}
		return term.NewIRI(iri), nil
	case '_':
		if !strings.HasPrefix(p.src[p.pos:], "_:") {
			return term.Term{}, p.errf("expected '_:'")
		}
		p.pos += 2
		start := p.pos
		for !p.eof() && isVarChar(p.peek()) {
			p.pos++
		}
		if p.pos == start {
			return term.Term{}, p.errf("empty blank label")
		}
		return term.NewBlank(p.src[start:p.pos]), nil
	case '"':
		p.pos++
		var b strings.Builder
		for {
			if p.eof() {
				return term.Term{}, p.errf("unterminated literal")
			}
			c := p.peek()
			if c == '"' {
				p.pos++
				break
			}
			if c == '\\' && p.pos+1 < len(p.src) {
				switch p.src[p.pos+1] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return term.Term{}, p.errf("unsupported escape")
				}
				p.pos += 2
				continue
			}
			b.WriteByte(c)
			p.pos++
		}
		return term.NewLiteral(b.String()), nil
	default:
		return term.Term{}, p.errf("unexpected character %q", p.peek())
	}
}

func isVarChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-'
}
