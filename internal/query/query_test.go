package query

import (
	"strings"
	"testing"

	"semwebdb/internal/core"
	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }
func v(s string) term.Term   { return term.NewVar(s) }

func eval(t *testing.T, q *Query, d *graph.Graph, opts Options) *Answer {
	t.Helper()
	a, err := Evaluate(q, d, opts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return a
}

func TestBasicSelection(t *testing.T) {
	d := graph.New(
		graph.T(iri("tom"), iri("son"), iri("mary")),
		graph.T(iri("ann"), iri("son"), iri("mary")),
		graph.T(iri("bob"), iri("son"), iri("jane")),
	)
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("childOf"), O: iri("mary")}},
		[]graph.Triple{{S: v("X"), P: iri("son"), O: iri("mary")}},
	)
	a := eval(t, q, d, Options{})
	if len(a.Singles) != 2 {
		t.Fatalf("singles = %d, want 2", len(a.Singles))
	}
	if !a.Graph.Has(graph.T(iri("tom"), iri("childOf"), iri("mary"))) ||
		!a.Graph.Has(graph.T(iri("ann"), iri("childOf"), iri("mary"))) {
		t.Fatalf("answer graph wrong:\n%v", a.Graph)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []*Query{
		// Head variable not in body.
		New(
			[]graph.Triple{{S: v("Y"), P: iri("p"), O: iri("a")}},
			[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("a")}},
		),
		// Blank in body.
		New(
			[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("a")}},
			[]graph.Triple{{S: v("X"), P: iri("p"), O: blk("n")}},
		),
		// Constraint variable not in head.
		New(
			[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("a")}},
			[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
		).WithConstraints(v("Y")),
		// Premise with a variable.
		func() *Query {
			q := New(
				[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("a")}},
				[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("a")}},
			)
			p := graph.New()
			// sneak a variable triple in via the raw set: Add rejects it,
			// so build the premise through a crafted triple list instead.
			_ = p
			q.Premise = p
			return q // this one is actually valid; replaced below
		}(),
	}
	for i, q := range cases[:3] {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid query accepted: %v", i, q)
		}
	}
}

func TestRDFSInferenceInAnswers(t *testing.T) {
	// Fig. 1 flavor: querying types uses the closure/normal form.
	d := graph.New(
		graph.T(iri("paints"), rdfs.SubPropertyOf, iri("creates")),
		graph.T(iri("creates"), rdfs.Domain, iri("Artist")),
		graph.T(iri("picasso"), iri("paints"), iri("guernica")),
	)
	q := New(
		[]graph.Triple{{S: v("A"), P: iri("is"), O: iri("Artist")}},
		[]graph.Triple{{S: v("A"), P: rdfs.Type, O: iri("Artist")}},
	)
	a := eval(t, q, d, Options{})
	if !a.Graph.Has(graph.T(iri("picasso"), iri("is"), iri("Artist"))) {
		t.Fatalf("inferred type not matched:\n%v", a.Graph)
	}
}

func TestConstraintsFilterBlanks(t *testing.T) {
	// The extra (x,q,d) edge keeps the blank triple non-redundant, so it
	// survives the normal-form step of Definition 4.3.
	d := graph.New(
		graph.T(iri("a"), iri("p"), blk("x")),
		graph.T(blk("x"), iri("q"), iri("d")),
		graph.T(iri("a"), iri("p"), iri("b")),
	)
	base := func() *Query {
		return New(
			[]graph.Triple{{S: v("Y"), P: iri("seen"), O: iri("yes")}},
			[]graph.Triple{{S: iri("a"), P: iri("p"), O: v("Y")}},
		)
	}
	unconstrained := eval(t, base(), d, Options{})
	if len(unconstrained.Singles) != 2 {
		t.Fatalf("unconstrained singles = %d, want 2", len(unconstrained.Singles))
	}
	constrained := eval(t, base().WithConstraints(v("Y")), d, Options{})
	if len(constrained.Singles) != 1 {
		t.Fatalf("constrained singles = %d, want 1", len(constrained.Singles))
	}
	if !constrained.Graph.Has(graph.T(iri("b"), iri("seen"), iri("yes"))) {
		t.Fatal("wrong single survived the constraint")
	}
}

func TestIdentityQueryNote47(t *testing.T) {
	// D = {(X,b,c), (X,b,d)}: ans∪ ≡ D but ans+ ≢ D.
	d := graph.New(
		graph.T(blk("X"), iri("b"), iri("c")),
		graph.T(blk("X"), iri("b"), iri("d")),
	)
	q := Identity()

	union := eval(t, q, d, Options{Semantics: UnionSemantics})
	if !entail.Equivalent(union.Graph, d) {
		t.Fatalf("ans∪ of identity not equivalent to D:\n%v", union.Graph)
	}

	merge := eval(t, q, d, Options{Semantics: MergeSemantics})
	// Definition 4.3 matches against nf(D), which also contains the
	// reserved-vocabulary reflexivity triples; Note 4.7's claim concerns
	// the data part: the shared blank is split in two.
	dataPart := graph.New()
	merge.Graph.Each(func(tr graph.Triple) bool {
		if !rdfs.IsVocabulary(tr.P) {
			dataPart.Add(tr)
		}
		return true
	})
	if dataPart.Len() != 2 {
		t.Fatalf("ans+ data part size = %d, want 2:\n%v", dataPart.Len(), dataPart)
	}
	if len(dataPart.BlankNodes()) != 2 {
		t.Fatalf("ans+ must split the blank: %v", dataPart.BlankNodeList())
	}
	// ans+ is entailed by D but does not entail it back (no map D → ans+).
	if !entail.Entails(d, merge.Graph) {
		t.Fatal("D must entail ans+")
	}
	if entail.Entails(merge.Graph, d) {
		t.Fatal("ans+ must not entail D (Note 4.7)")
	}
}

func TestBridgeBlankUnionSemantics(t *testing.T) {
	// The motivating example for union semantics: a blank with several
	// properties is reassembled by (?X, feature, ?Y) ← (?X,?Y,?Z).
	d := graph.New(
		graph.T(blk("N"), iri("p1"), iri("z1")),
		graph.T(blk("N"), iri("p2"), iri("z2")),
	)
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("feature"), O: v("Y")}},
		[]graph.Triple{{S: v("X"), P: v("Y"), O: v("Z")}},
	)
	union := eval(t, q, d, Options{Semantics: UnionSemantics})
	// Both features attach to the SAME blank.
	if len(union.Graph.BlankNodes()) != 1 {
		t.Fatalf("union semantics must keep the bridge blank: %v", union.Graph)
	}
	merge := eval(t, q, d, Options{Semantics: MergeSemantics})
	if len(merge.Graph.BlankNodes()) != 2 {
		t.Fatalf("merge semantics must split the blank: %v", merge.Graph)
	}
}

func TestPremisesSection42(t *testing.T) {
	// Query: relatives of Peter, with premise (son, sp, relative).
	d := graph.New(
		graph.T(iri("john"), iri("son"), iri("peter")),
		graph.T(iri("mary"), iri("daughter"), iri("peter")),
	)
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("relative"), O: iri("peter")}},
		[]graph.Triple{{S: v("X"), P: iri("relative"), O: iri("peter")}},
	).WithPremise(graph.New(
		graph.T(iri("son"), rdfs.SubPropertyOf, iri("relative")),
	))
	a := eval(t, q, d, Options{})
	if !a.Graph.Has(graph.T(iri("john"), iri("relative"), iri("peter"))) {
		t.Fatalf("premise-driven inference missing:\n%v", a.Graph)
	}
	if a.Graph.Has(graph.T(iri("mary"), iri("relative"), iri("peter"))) {
		t.Fatal("daughter must not be inferred as relative")
	}
	// Without the premise: no answers.
	q2 := New(q.Head, q.Body)
	a2 := eval(t, q2, d, Options{})
	if a2.Graph.Len() != 0 {
		t.Fatalf("no-premise evaluation should be empty:\n%v", a2.Graph)
	}
}

func TestPremiseBlanksKeptApart(t *testing.T) {
	// D and P both use blank _:x; merge semantics of D + P must not
	// conflate them.
	d := graph.New(graph.T(blk("x"), iri("p"), iri("a")))
	q := New(
		[]graph.Triple{{S: v("S"), P: iri("p2"), O: v("O")}},
		[]graph.Triple{{S: v("S"), P: iri("p"), O: v("O")}},
	).WithPremise(graph.New(graph.T(blk("x"), iri("p"), iri("b"))))
	a := eval(t, q, d, Options{})
	// Two matchings with different subjects (the two distinct blanks).
	if len(a.Singles) != 2 {
		t.Fatalf("singles = %d, want 2:\n%v", len(a.Singles), a.Graph)
	}
	if len(a.Graph.BlankNodes()) != 2 {
		t.Fatalf("premise blank conflated with database blank: %v", a.Graph.BlankNodeList())
	}
}

func TestHeadBlankSkolemization(t *testing.T) {
	d := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("c"), iri("p"), iri("d")),
	)
	q := New(
		[]graph.Triple{
			{S: v("X"), P: iri("linked"), O: blk("N")},
			{S: blk("N"), P: iri("to"), O: v("Y")},
		},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
	)
	a := eval(t, q, d, Options{})
	if len(a.Singles) != 2 {
		t.Fatalf("singles = %d, want 2", len(a.Singles))
	}
	// Each single answer must use ONE skolem blank shared by its two
	// triples, and different bindings must get different skolem blanks.
	blanks := a.Graph.BlankNodes()
	if len(blanks) != 2 {
		t.Fatalf("skolem blanks = %d, want 2 (one per binding)", len(blanks))
	}
	for _, s := range a.Singles {
		if len(s.BlankNodes()) != 1 {
			t.Fatalf("single answer must share one skolem blank:\n%v", s)
		}
	}
}

func TestSkolemDeterministicAcrossDatabases(t *testing.T) {
	// Proposition 4.5 hypothesis: same Skolem function across databases.
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("has"), O: blk("N")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
	)
	d1 := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	d2 := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("z"), iri("q"), iri("w")),
	)
	a1 := eval(t, q, d1, Options{})
	a2 := eval(t, q, d2, Options{})
	if !a1.Graph.Equal(a2.Graph) {
		t.Fatalf("same binding must yield identical skolem blanks:\n%v\nvs\n%v", a1.Graph, a2.Graph)
	}
}

func TestIllFormedSingleAnswersDropped(t *testing.T) {
	// ?P in predicate position of the head; a matching binding ?P to a
	// literal-valued... here: binding ?P to a blank via the body makes
	// v(H) ill-formed, so that single answer is dropped (Definition 4.3).
	d := graph.New(
		graph.T(iri("a"), iri("p"), blk("x")),
		graph.T(iri("a"), iri("p"), iri("q")),
		graph.T(iri("s"), iri("q"), iri("o")),
	)
	q := New(
		[]graph.Triple{{S: iri("s"), P: v("Y"), O: iri("marked")}},
		[]graph.Triple{{S: iri("a"), P: iri("p"), O: v("Y")}},
	)
	a := eval(t, q, d, Options{})
	// Binding Y=_:x is dropped (blank predicate); Y=q survives.
	if len(a.Singles) != 1 {
		t.Fatalf("singles = %d, want 1:\n%v", len(a.Singles), a.Graph)
	}
	if !a.Graph.Has(graph.T(iri("s"), iri("q"), iri("marked"))) {
		t.Fatal("well-formed single missing")
	}
}

func TestProposition45Monotonicity(t *testing.T) {
	// If D' ⊨ D then ans(q,D') ⊨ ans(q,D), for both semantics.
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("r"), O: v("Y")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
	)
	d := graph.New(graph.T(iri("a"), iri("p"), blk("u")))
	dPrime := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("a"), iri("p"), blk("w")),
		graph.T(iri("c"), iri("p"), iri("d")),
	)
	if !entail.Entails(dPrime, d) {
		t.Fatal("setup: D' ⊨ D expected")
	}
	for _, sem := range []Semantics{UnionSemantics, MergeSemantics} {
		aD := eval(t, q, d, Options{Semantics: sem})
		aDp := eval(t, q, dPrime, Options{Semantics: sem})
		if !entail.Entails(aDp.Graph, aD.Graph) {
			t.Fatalf("semantics %v: ans(q,D') ⊭ ans(q,D):\n%v\nvs\n%v", sem, aDp.Graph, aD.Graph)
		}
	}
}

func TestProposition45UnionEntailsMerge(t *testing.T) {
	d := graph.New(
		graph.T(blk("N"), iri("p"), iri("z1")),
		graph.T(blk("N"), iri("p"), iri("z2")),
	)
	q := Identity()
	u := eval(t, q, d, Options{Semantics: UnionSemantics})
	m := eval(t, q, d, Options{Semantics: MergeSemantics})
	if !entail.Entails(u.Graph, m.Graph) {
		t.Fatal("ans∪ must entail ans+ (Proposition 4.5(2))")
	}
}

func TestTheorem46InvarianceUnderEquivalence(t *testing.T) {
	// D ≡ D' implies ans(q,D) ≅ ans(q,D').
	d := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(blk("X"), iri("p"), iri("b")), // redundant
	)
	dPrime := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	if !entail.Equivalent(d, dPrime) {
		t.Fatal("setup: D ≡ D' expected")
	}
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("r"), O: v("Y")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
	)
	a1 := eval(t, q, d, Options{})
	a2 := eval(t, q, dPrime, Options{})
	if !hom.Isomorphic(a1.Graph, a2.Graph) {
		t.Fatalf("Theorem 4.6 violated:\n%v\nvs\n%v", a1.Graph, a2.Graph)
	}
	// With SkipNormalForm the guarantee may be lost, but answers must
	// still be equivalent graphs.
	a3 := eval(t, q, d, Options{SkipNormalForm: true})
	a4 := eval(t, q, dPrime, Options{SkipNormalForm: true})
	if !entail.Equivalent(a3.Graph, a4.Graph) {
		t.Fatal("skip-nf answers not even equivalent")
	}
}

func TestRedundancyEliminationTheorem62(t *testing.T) {
	// Section 6.2 example: lean G2, query (?Z,p,?U) ← (?Z,p,?U), answer
	// is G1-like and not lean.
	d := graph.New(
		graph.T(iri("a"), iri("p"), blk("X")),
		graph.T(iri("a"), iri("p"), blk("Y")),
		graph.T(blk("X"), iri("q"), blk("Y")),
		graph.T(blk("Y"), iri("r"), iri("b")),
	)
	q := New(
		[]graph.Triple{{S: v("Z"), P: iri("p"), O: v("U")}},
		[]graph.Triple{{S: v("Z"), P: iri("p"), O: v("U")}},
	)
	a := eval(t, q, d, Options{Semantics: UnionSemantics})
	if IsLeanAnswer(a) {
		t.Fatalf("the projected answer must not be lean:\n%v", a.Graph)
	}
	lean := EliminateRedundancy(a)
	if lean.Len() != 1 {
		t.Fatalf("lean answer size = %d, want 1:\n%v", lean.Len(), lean)
	}
	if !entail.Equivalent(lean, a.Graph) {
		t.Fatal("redundancy elimination changed the meaning")
	}
}

func TestMergeSemanticsLeanCheckTheorem63(t *testing.T) {
	// The (X,q,c) edge keeps the blank in nf(D); the projection then
	// creates the redundancy in the answer.
	d := graph.New(
		graph.T(iri("a"), iri("p"), blk("X")),
		graph.T(blk("X"), iri("q"), iri("c")),
		graph.T(iri("a"), iri("p"), iri("b")),
	)
	q := New(
		[]graph.Triple{{S: iri("a"), P: iri("p"), O: v("U")}},
		[]graph.Triple{{S: iri("a"), P: iri("p"), O: v("U")}},
	)
	m := eval(t, q, d, Options{Semantics: MergeSemantics})
	// Singles: {(a,p,_:X!m0)}, {(a,p,b)}: blank single maps onto ground
	// single → not lean.
	if IsLeanAnswer(m) {
		t.Fatalf("merge answer should not be lean:\n%v", m.Graph)
	}
	// The polynomial Theorem 6.3 procedure must agree with the general
	// coNP lean check on the same graph.
	if IsLeanAnswer(m) != core.IsLean(m.Graph) {
		t.Fatal("Theorem 6.3 procedure disagrees with the general lean check")
	}

	// A genuinely lean merge answer.
	d2 := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("c"), iri("p"), iri("d")),
	)
	m2 := eval(t, q, d2, Options{Semantics: MergeSemantics})
	if !IsLeanAnswer(m2) {
		t.Fatal("ground merge answer must be lean")
	}
	if IsLeanAnswer(m2) != core.IsLean(m2.Graph) {
		t.Fatal("Theorem 6.3 procedure disagrees on the lean case")
	}
}

func TestEvaluateMaxMatchings(t *testing.T) {
	d := graph.New()
	for i := 0; i < 10; i++ {
		d.Add(graph.T(iri(string(rune('a'+i))), iri("p"), iri("b")))
	}
	q := New(
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
	)
	a := eval(t, q, d, Options{MaxMatchings: 3})
	if a.Matchings != 3 {
		t.Fatalf("matchings = %d, want 3", a.Matchings)
	}
}

func TestQueryString(t *testing.T) {
	q := New(
		[]graph.Triple{{S: v("A"), P: iri("creates"), O: v("Y")}},
		[]graph.Triple{{S: v("A"), P: iri("paints"), O: v("Y")}},
	).WithConstraints(v("A")).WithPremise(graph.New(graph.T(iri("a"), iri("b"), iri("c"))))
	s := q.String()
	for _, want := range []string{"?A", "←", "premise", "constraints"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSingleAnswerDedupCollapsesMultisetHeads(t *testing.T) {
	// Two head patterns can instantiate to the same triple under one
	// matching and to distinct triples under another; single answers
	// are graphs (sets), so v(H) = {A,A,B} and v(H) = {A,B,B} are the
	// same single answer and must be deduplicated.
	d := graph.New(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("c"), iri("p"), iri("d")),
	)
	q := New(
		[]graph.Triple{
			{S: v("X1"), P: iri("p"), O: v("Y1")},
			{S: v("X2"), P: iri("p"), O: v("Y2")},
		},
		[]graph.Triple{
			{S: v("X1"), P: iri("p"), O: v("Y1")},
			{S: v("X2"), P: iri("p"), O: v("Y2")},
		},
	)
	a := eval(t, q, d, Options{})
	if a.Matchings != 4 {
		t.Fatalf("matchings = %d, want 4", a.Matchings)
	}
	// Distinct single answers: {A,A}={A}, {A,B}, {B,A}={A,B}, {B,B}={B}
	// -> {A}, {B}, {A,B}.
	if len(a.Singles) != 3 {
		for _, s := range a.Singles {
			t.Logf("single:\n%s", s)
		}
		t.Fatalf("singles = %d, want 3", len(a.Singles))
	}
	for i, s := range a.Singles {
		for j := i + 1; j < len(a.Singles); j++ {
			if s.Equal(a.Singles[j]) {
				t.Fatalf("singles %d and %d are equal graphs (dedup failed)", i, j)
			}
		}
	}
}
