package query

import (
	"context"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/match"
	"semwebdb/internal/term"
)

// Single is one streamed single answer v(H): the instantiated head
// graph, the body-variable binding of the (first) matching that
// produced it, and that matching's 1-based ordinal. Singles arrive in
// solver enumeration order — not the deterministic canonical order of
// Answer.Singles, which requires materializing the full answer first.
type Single struct {
	// Graph is v(H), on the evaluation's scratch dictionary overlay;
	// the overlay lives as long as the graph, so the caller may decode
	// and serialize it after the stream has moved on.
	Graph *graph.Graph
	// Binding maps each body variable to its matched term for the
	// matching that first produced this single answer. It is a fresh
	// map per single; the caller owns it.
	Binding map[term.Term]term.Term
	// Matching is the 1-based ordinal of that matching in enumeration
	// order (equal single answers from later matchings are deduplicated
	// away, so ordinals are increasing but not contiguous).
	Matching int
}

// StreamStats summarizes a finished (or aborted) stream.
type StreamStats struct {
	// Matchings counts the matchings of B considered, exactly as
	// Answer.Matchings does; it never exceeds Options.MaxMatchings when
	// that cap is set.
	Matchings int
	// Singles counts the deduplicated single answers handed to yield.
	Singles int
	// Truncated reports that the enumeration was cut off by
	// Options.MaxMatchings (same contract as Answer.Truncated). A
	// stream stopped by its yield callback is not truncated.
	Truncated bool
}

// StreamPreparedIndexCtx evaluates a premise-free query against a
// prepared match index, handing each deduplicated single answer to
// yield as soon as the solver finds it, instead of materializing the
// full answer. Memory stays bounded by the largest single answer plus
// the dedup fingerprint set — not by the number of matchings — so the
// first single arrives after the first successful matching, no matter
// how many follow. yield returning false stops the enumeration early
// (no error, Truncated unset).
//
// Cancellation: the solver polls ctx, so a context cancelled mid-stream
// aborts the enumeration promptly and the error is returned here.
//
// Like EvaluatePreparedIndexCtx, it never interns into the prepared
// graph's dictionary: all evaluation minting lands in a scratch overlay
// that the emitted Graphs keep alive.
func StreamPreparedIndexCtx(ctx context.Context, q *Query, ix *match.Index, opts Options, yield func(Single) bool) (StreamStats, error) {
	if err := q.Validate(); err != nil {
		return StreamStats{}, err
	}
	if err := ctx.Err(); err != nil {
		// A dead context must fail even when the match would be trivial.
		return StreamStats{}, err
	}
	d := ix.Dict().Scratch()
	bodyVars := varsIn(q.Body)
	bodyVarIDs := make([]dict.ID, len(bodyVars))
	for i, v := range bodyVars {
		bodyVarIDs[i] = d.Intern(v)
	}
	return streamIndexed(ctx, q, ix, opts, d, func(single *graph.Graph, b match.Binding, matching int) bool {
		s := Single{Graph: single, Matching: matching}
		if len(bodyVars) > 0 {
			s.Binding = make(map[term.Term]term.Term, len(bodyVars))
			for i, v := range bodyVars {
				if id, ok := b[bodyVarIDs[i]]; ok {
					s.Binding[v] = d.TermOf(id)
				}
			}
		}
		return yield(s)
	})
}

// StreamCtx is the streaming analogue of EvaluateCtx: it computes the
// matching universe nf(D + P) — or cl(D + P) under SkipNormalForm —
// and then streams single answers through yield. The universe
// preparation itself is not streamed (it is a fixpoint computation,
// O(|cl(D+P)|) regardless), but everything after it is: no per-answer
// state accumulates beyond the dedup fingerprints.
func StreamCtx(ctx context.Context, q *Query, d *graph.Graph, opts Options, yield func(Single) bool) (StreamStats, error) {
	if err := q.Validate(); err != nil {
		return StreamStats{}, err
	}
	data := d.WithDict(d.Dict().Scratch())
	if q.Premise != nil && q.Premise.Len() > 0 {
		p := q.Premise.WithDict(q.Premise.Dict().Scratch())
		data = graph.Merge(data, p)
	}
	data, err := PrepareWorkers(ctx, data, opts.SkipNormalForm, opts.Parallelism)
	if err != nil {
		return StreamStats{}, err
	}
	return StreamPreparedIndexCtx(ctx, q, match.NewIndex(data), opts, yield)
}

// streamIndexed is the dictionary-encoded matching loop shared by the
// materializing (evaluateIndexed) and streaming (Stream*) paths: the
// body is solved over ID range scans and each matching instantiates
// the head by ID substitution; deduplicated single answers are handed
// to emit one at a time, in solver enumeration order. The caller
// supplies the scratch overlay d (over ix.Dict()) that owns all
// evaluation minting. emit returning false stops the enumeration
// early; that is not a truncation.
func streamIndexed(ctx context.Context, q *Query, ix *match.Index, opts Options, d *dict.Dict, emit func(single *graph.Graph, b match.Binding, matching int) bool) (StreamStats, error) {
	inst := newHeadInstantiator(q, d)

	constrained := make(map[dict.ID]bool, len(q.Constraints))
	for v := range q.Constraints {
		constrained[d.Intern(v)] = true
	}

	var st StreamStats
	seen := map[string]bool{}

	solverOpts := match.Options{
		Ctx:  ctx,
		Dict: d,
		Admissible: func(unknown, value dict.ID) bool {
			if constrained[unknown] && d.KindOf(value) == term.KindBlank {
				return false
			}
			return true
		},
	}
	solver := match.NewSolver(ix, solverOpts)
	solver.Solve(q.Body, func(b match.Binding) bool {
		if opts.MaxMatchings > 0 && st.Matchings >= opts.MaxMatchings {
			// A further matching exists beyond the cap: record the
			// truncation and stop without considering it, so Matchings
			// stays within the cap and a body with exactly MaxMatchings
			// matchings is not reported as truncated.
			st.Truncated = true
			return false
		}
		st.Matchings++
		encs, key, ok := inst.instantiate(b)
		if !ok {
			return true // v(H) not a well-formed RDF graph: skipped
		}
		if seen[key] {
			return true
		}
		seen[key] = true
		single := graph.NewWithDict(d)
		for _, enc := range encs {
			single.AddID(enc)
		}
		st.Singles++
		return emit(single, b, st.Matchings)
	})
	if err := solver.Err(); err != nil {
		return st, err
	}
	return st, nil
}
