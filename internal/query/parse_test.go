package query

import (
	"strings"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func TestParseQueryFull(t *testing.T) {
	q, err := ParseQuery(`
# find relatives
HEAD:
?X <urn:ex:relative> <urn:ex:peter> .
BODY:
?X <urn:ex:relative> <urn:ex:peter>
PREMISE:
<urn:ex:son> <urn:sp> <urn:ex:relative> .
_:b <urn:ex:son> <urn:ex:peter> .
CONSTRAINTS: ?X
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 || len(q.Body) != 1 {
		t.Fatalf("head/body sizes: %d/%d", len(q.Head), len(q.Body))
	}
	if q.Head[0].S != term.NewVar("X") {
		t.Fatalf("head subject = %v", q.Head[0].S)
	}
	if q.Premise.Len() != 2 {
		t.Fatalf("premise size = %d", q.Premise.Len())
	}
	if !q.Constraints[term.NewVar("X")] {
		t.Fatal("constraint lost")
	}
}

func TestParseQueryLiteralsAndBlanks(t *testing.T) {
	q, err := ParseQuery(`
HEAD:
_:n <urn:p> ?X .
BODY:
?X <urn:q> "hello \"world\"\n" .
`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Head[0].S != term.NewBlank("n") {
		t.Fatalf("head blank = %v", q.Head[0].S)
	}
	if q.Body[0].O != term.NewLiteral("hello \"world\"\n") {
		t.Fatalf("literal = %v", q.Body[0].O)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		``,                                 // empty
		`HEAD:` + "\n" + `?X <urn:p> ?Y .`, // no body
		`BODY:` + "\n" + `?X <urn:p> ?Y .`, // no head
		`?X <urn:p> ?Y .`,                  // content before sections
		"HEAD:\n?Z <urn:p> ?Y .\nBODY:\n?X <urn:p> ?Y .",                                 // head var not in body
		"HEAD:\n?X <urn:p> ?Y .\nBODY:\n?X <urn:p> ?Y ?Z .",                              // trailing content
		"HEAD:\n?X <urn:p> ?Y .\nBODY:\n?X <urn:p> ?Y .\nPREMISE:\n?W <urn:p> <urn:o> .", // var in premise
		"HEAD:\n?X <urn:p> ?Y .\nBODY:\n?X <urn:p> ?Y .\nCONSTRAINTS: X",                 // constraint not a var
		"HEAD:\n?X <urn:p ?Y .\nBODY:\n?X <urn:p> ?Y .",                                  // unterminated IRI
		"HEAD:\n?X <urn:p> \"oops .\nBODY:\n?X <urn:p> ?Y .",                             // unterminated literal
	}
	for i, src := range cases {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("case %d: malformed query accepted:\n%s", i, src)
		}
	}
}

func TestParseQueryRoundTripEvaluation(t *testing.T) {
	q, err := ParseQuery(`
HEAD:
?X <urn:sel> <urn:yes> .
BODY:
?X <urn:p> <urn:b> .
`)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.New(
		graph.T(term.NewIRI("urn:a"), term.NewIRI("urn:p"), term.NewIRI("urn:b")),
		graph.T(term.NewIRI("urn:c"), term.NewIRI("urn:q"), term.NewIRI("urn:b")),
	)
	a, err := Evaluate(q, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Len() != 1 || !strings.Contains(a.Graph.String(), "urn:a") {
		t.Fatalf("answer = %v", a.Graph)
	}
}
