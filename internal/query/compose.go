package query

import (
	"fmt"

	"semwebdb/internal/graph"
)

// Pipeline evaluates a sequence of queries compositionally (the
// desideratum of Section 4.1: answers are RDF graphs, so they can be
// queried again). The first query runs against the database; each
// subsequent query runs against the previous answer graph. All stages
// share the options.
//
// Under union semantics the identity query is a unit for composition up
// to equivalence (Note 4.7); under merge semantics it is not — which is
// exactly the paper's argument for union semantics.
func Pipeline(d *graph.Graph, opts Options, qs ...*Query) (*Answer, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("query: empty pipeline")
	}
	cur := d
	var ans *Answer
	for i, q := range qs {
		var err error
		ans, err = Evaluate(q, cur, opts)
		if err != nil {
			return nil, fmt.Errorf("query: pipeline stage %d: %w", i+1, err)
		}
		cur = ans.Graph
	}
	return ans, nil
}
