package query

import (
	"context"
	"fmt"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/match"
	"semwebdb/internal/term"
)

// chainData builds n ground triples <urn:s:i> <urn:p> <urn:o:i>.
func chainData(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.Add(graph.T(
			term.NewIRI(fmt.Sprintf("urn:s:%d", i)),
			term.NewIRI("urn:p"),
			term.NewIRI(fmt.Sprintf("urn:o:%d", i)),
		))
	}
	return g
}

func streamQuery() *Query {
	x, y := term.NewVar("X"), term.NewVar("Y")
	return New(
		[]graph.Triple{{S: x, P: term.NewIRI("urn:q"), O: y}},
		[]graph.Triple{{S: x, P: term.NewIRI("urn:p"), O: y}},
	)
}

// TestStreamMatchesEvaluate cross-checks the streaming path against the
// materializing one: same single answers (as a set), same matching
// count, same truncation flag.
func TestStreamMatchesEvaluate(t *testing.T) {
	ctx := context.Background()
	data := chainData(17)
	prepared, err := Prepare(ctx, data, false)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(prepared)
	q := streamQuery()

	for _, limit := range []int{0, 5, 17, 30} {
		opts := Options{MaxMatchings: limit}
		ans, err := EvaluatePreparedIndexCtx(ctx, q, ix, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		st, err := StreamPreparedIndexCtx(ctx, q, ix, opts, func(s Single) bool {
			got[s.Graph.String()] = true
			if s.Matching < 1 {
				t.Errorf("limit %d: matching ordinal %d < 1", limit, s.Matching)
			}
			if len(s.Binding) != 2 {
				t.Errorf("limit %d: binding has %d vars, want 2", limit, len(s.Binding))
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Matchings != ans.Matchings || st.Truncated != ans.Truncated {
			t.Errorf("limit %d: stream stats (%d, %v) != answer (%d, %v)",
				limit, st.Matchings, st.Truncated, ans.Matchings, ans.Truncated)
		}
		if st.Singles != len(ans.Singles) || len(got) != len(ans.Singles) {
			t.Errorf("limit %d: stream singles %d (distinct %d), answer %d",
				limit, st.Singles, len(got), len(ans.Singles))
		}
		for _, s := range ans.Singles {
			if !got[s.String()] {
				t.Errorf("limit %d: single %q missing from stream", limit, s.String())
			}
		}
	}
}

// TestStreamYieldStop verifies that a yield returning false stops the
// enumeration without error and without reporting truncation.
func TestStreamYieldStop(t *testing.T) {
	ctx := context.Background()
	prepared, err := Prepare(ctx, chainData(50), false)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(prepared)
	n := 0
	st, err := StreamPreparedIndexCtx(ctx, streamQuery(), ix, Options{}, func(Single) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("yield called %d times, want 3", n)
	}
	if st.Truncated {
		t.Fatal("caller stop must not report Truncated")
	}
	if st.Matchings >= 50 {
		t.Fatalf("solver enumerated %d matchings after stop", st.Matchings)
	}
}

// TestStreamCancellation verifies that cancelling the context mid-stream
// aborts the solver: the error surfaces and the enumeration stops well
// short of the full matching space.
func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prepared, err := Prepare(context.Background(), chainData(4000), false)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(prepared)
	st, err := StreamPreparedIndexCtx(ctx, streamQuery(), ix, Options{}, func(s Single) bool {
		if s.Matching == 2 {
			cancel()
		}
		return true
	})
	if err == nil {
		t.Fatal("cancelled stream returned no error")
	}
	if st.Matchings >= 4000 {
		t.Fatalf("solver ran to completion (%d matchings) despite cancellation", st.Matchings)
	}
}

// TestStreamDeadContext verifies the fast-fail on an already-dead
// context, mirroring EvaluatePreparedIndexCtx.
func TestStreamDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prepared, err := Prepare(context.Background(), chainData(3), false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = StreamPreparedIndexCtx(ctx, streamQuery(), match.NewIndex(prepared), Options{}, func(Single) bool {
		t.Fatal("yield called under a dead context")
		return false
	})
	if err == nil {
		t.Fatal("want context error")
	}
}

// TestStreamCtxPremise routes a premised query through StreamCtx and
// checks the premise-derived matchings arrive.
func TestStreamCtxPremise(t *testing.T) {
	ctx := context.Background()
	data := chainData(2)
	premise := graph.New(graph.T(
		term.NewIRI("urn:s:99"), term.NewIRI("urn:p"), term.NewIRI("urn:o:99")))
	q := streamQuery().WithPremise(premise)

	got := map[string]bool{}
	st, err := StreamCtx(ctx, q, data, Options{}, func(s Single) bool {
		got[s.Binding[term.NewVar("X")].String()] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matchings != 3 {
		t.Fatalf("matchings = %d, want 3 (2 data + 1 premise)", st.Matchings)
	}
	if !got["<urn:s:99>"] {
		t.Fatalf("premise-derived binding missing; got %v", got)
	}
}

// TestStreamDedup verifies that equal single answers from distinct
// matchings are deduplicated in the stream, exactly as in Answer.Singles.
func TestStreamDedup(t *testing.T) {
	ctx := context.Background()
	// Two triples with the same subject: projecting the head onto ?X
	// alone makes both matchings instantiate the same single answer.
	g := graph.New(
		graph.T(term.NewIRI("urn:a"), term.NewIRI("urn:p"), term.NewIRI("urn:o:1")),
		graph.T(term.NewIRI("urn:a"), term.NewIRI("urn:p"), term.NewIRI("urn:o:2")),
	)
	x, y := term.NewVar("X"), term.NewVar("Y")
	q := New(
		[]graph.Triple{{S: x, P: term.NewIRI("urn:q"), O: term.NewIRI("urn:yes")}},
		[]graph.Triple{{S: x, P: term.NewIRI("urn:p"), O: y}},
	)
	prepared, err := Prepare(ctx, g, false)
	if err != nil {
		t.Fatal(err)
	}
	singles := 0
	st, err := StreamPreparedIndexCtx(ctx, q, match.NewIndex(prepared), Options{}, func(Single) bool {
		singles++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matchings != 2 || singles != 1 || st.Singles != 1 {
		t.Fatalf("matchings=%d singles=%d st.Singles=%d, want 2/1/1", st.Matchings, singles, st.Singles)
	}
}
