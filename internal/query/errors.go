package query

import "fmt"

// ParseError reports a syntax error in the textual tableau-query format
// with its source position. Col is 0 when the error concerns a whole
// line, and Line is 0 when it concerns the document as a whole (e.g. a
// missing section).
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	switch {
	case e.Line == 0:
		return "query: " + e.Msg
	case e.Col == 0:
		return fmt.Sprintf("query: line %d: %s", e.Line, e.Msg)
	default:
		return fmt.Sprintf("query: line %d col %d: %s", e.Line, e.Col, e.Msg)
	}
}

// ValidationError reports a violation of the well-formedness conditions
// of Definition 4.1 / Note 4.2.
type ValidationError struct {
	Msg string
}

func (e *ValidationError) Error() string { return "query: " + e.Msg }

func validationErrorf(format string, args ...any) error {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}
