package query

import (
	"testing"

	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func TestPipelineComposition(t *testing.T) {
	// Stage 1 computes grandparent candidates; stage 2 filters by a
	// second pattern over the *answer* graph — compositionality.
	d := graph.New(
		graph.T(iri("a"), iri("parent"), iri("b")),
		graph.T(iri("b"), iri("parent"), iri("c")),
		graph.T(iri("c"), iri("parent"), iri("d")),
	)
	X, Y, Z := v("X"), v("Y"), v("Z")
	q1 := New(
		[]graph.Triple{{S: X, P: iri("grand"), O: Z}},
		[]graph.Triple{{S: X, P: iri("parent"), O: Y}, {S: Y, P: iri("parent"), O: Z}},
	)
	q2 := New(
		[]graph.Triple{{S: X, P: iri("greatgrand"), O: Z}},
		[]graph.Triple{{S: X, P: iri("grand"), O: Y}, {S: Y, P: iri("grand"), O: Z}},
	)
	// a grand c, b grand d; then a greatgrand ... needs grand-of-grand:
	// a→c and c→? : c grand nothing... b grand d: a grand c + c grand ?:
	// none. So stage-2 over two-hop pairs yields nothing; verify that,
	// then a single-stage sanity run.
	ans, err := Pipeline(d, Options{}, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Graph.Len() != 0 {
		t.Fatalf("unexpected great-grandparents: %v", ans.Graph)
	}
	// A 4-chain database yields exactly one great-grandpair.
	d.Add(graph.T(iri("d"), iri("parent"), iri("e")))
	ans, err = Pipeline(d, Options{}, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Graph.Has(graph.T(iri("a"), iri("greatgrand"), iri("e"))) {
		t.Fatalf("pipeline answer wrong: %v", ans.Graph)
	}
}

func TestPipelineIdentityUnit(t *testing.T) {
	d := graph.New(
		graph.T(term.NewBlank("X"), iri("b"), iri("c")),
		graph.T(term.NewBlank("X"), iri("b"), iri("d")),
	)
	q := New(
		[]graph.Triple{{S: v("S"), P: iri("sel"), O: v("O")}},
		[]graph.Triple{{S: v("S"), P: iri("b"), O: v("O")}},
	)
	// identity ∘ q ≡ q under union semantics.
	direct, err := Pipeline(d, Options{}, q)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Pipeline(d, Options{}, Identity(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !entail.Equivalent(direct.Graph, composed.Graph) {
		t.Fatalf("identity is not a unit under union semantics:\n%v\nvs\n%v",
			direct.Graph, composed.Graph)
	}
	// Under merge semantics the identity stage splits the bridge blank,
	// so a query joining both b-edges on the same subject finds nothing
	// afterwards — the documented non-unit behaviour.
	joinQ := New(
		[]graph.Triple{{S: v("S"), P: iri("both"), O: iri("yes")}},
		[]graph.Triple{
			{S: v("S"), P: iri("b"), O: iri("c")},
			{S: v("S"), P: iri("b"), O: iri("d")},
		},
	)
	directMerge, err := Pipeline(d, Options{Semantics: MergeSemantics}, joinQ)
	if err != nil {
		t.Fatal(err)
	}
	if directMerge.Graph.Len() == 0 {
		t.Fatal("direct join must find the bridge blank")
	}
	composedMerge, err := Pipeline(d, Options{Semantics: MergeSemantics}, Identity(), joinQ)
	if err != nil {
		t.Fatal(err)
	}
	if composedMerge.Graph.Len() != 0 {
		t.Fatalf("merge-semantics identity unexpectedly preserved the bridge: %v", composedMerge.Graph)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Pipeline(graph.New(), Options{}); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	bad := New(
		[]graph.Triple{{S: v("Y"), P: iri("p"), O: iri("a")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("a")}},
	)
	if _, err := Pipeline(graph.New(), Options{}, bad); err == nil {
		t.Fatal("invalid stage accepted")
	}
}
