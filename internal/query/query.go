// Package query implements the RDF query language of Section 4 of the
// paper: tableau queries (H, B) extended with premises P and constraints
// C (Definition 4.1), matchings against the normal form of the database
// (Definition 4.3, Note 4.4), Skolem functions for blank nodes in query
// heads, and both answer semantics — union ans∪ and merge ans+ — together
// with the redundancy-elimination procedures of Section 6.2.
package query

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"semwebdb/internal/closure"
	"semwebdb/internal/core"
	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/match"
	"semwebdb/internal/term"
)

// Query is a tableau (H, B) plus a premise graph P and a constraint set C
// (Definition 4.1). H and B are graphs with some positions replaced by
// variables; B has no blank nodes; every variable of H occurs in B; C is
// a set of variables of H whose bindings must be non-blank (the paper's
// IS NOT NULL analogue).
type Query struct {
	Head        []graph.Triple
	Body        []graph.Triple
	Premise     *graph.Graph
	Constraints map[term.Term]bool
}

// New builds a query with empty premise and constraints.
func New(head, body []graph.Triple) *Query {
	return &Query{
		Head:        head,
		Body:        body,
		Premise:     graph.New(),
		Constraints: map[term.Term]bool{},
	}
}

// WithPremise sets the premise graph and returns the query.
func (q *Query) WithPremise(p *graph.Graph) *Query {
	q.Premise = p
	return q
}

// WithConstraints adds constrained variables and returns the query.
func (q *Query) WithConstraints(vars ...term.Term) *Query {
	for _, v := range vars {
		q.Constraints[v] = true
	}
	return q
}

// Identity returns the identity query (Note 4.7):
// (?X,?Y,?Z) ← (?X,?Y,?Z). Under union semantics it returns a graph
// equivalent to the database.
func Identity() *Query {
	x, y, z := term.NewVar("X"), term.NewVar("Y"), term.NewVar("Z")
	pat := []graph.Triple{{S: x, P: y, O: z}}
	return New(pat, pat)
}

// varsIn collects the distinct variables of a pattern list, sorted.
func varsIn(ts []graph.Triple) []term.Term {
	set := map[term.Term]struct{}{}
	for _, t := range ts {
		for _, x := range t.Terms() {
			if x.IsVar() {
				set[x] = struct{}{}
			}
		}
	}
	out := make([]term.Term, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// headBlanks collects the blank nodes of the head, sorted.
func (q *Query) headBlanks() []term.Term {
	set := map[term.Term]struct{}{}
	for _, t := range q.Head {
		for _, x := range t.Terms() {
			if x.IsBlank() {
				set[x] = struct{}{}
			}
		}
	}
	out := make([]term.Term, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Validate checks the well-formedness conditions of Definition 4.1 and
// Note 4.2: body without blanks, head variables covered by the body,
// premise without variables, constraints over head variables.
func (q *Query) Validate() error {
	bodyVars := map[term.Term]bool{}
	for _, v := range varsIn(q.Body) {
		bodyVars[v] = true
	}
	for _, t := range q.Body {
		for _, x := range t.Terms() {
			if x.IsBlank() {
				return validationErrorf("blank node %s in body (use a variable)", x)
			}
		}
	}
	headVars := map[term.Term]bool{}
	for _, v := range varsIn(q.Head) {
		headVars[v] = true
		if !bodyVars[v] {
			return validationErrorf("head variable %s does not occur in body", v)
		}
	}
	if q.Premise != nil {
		ill := false
		q.Premise.Each(func(t graph.Triple) bool {
			if t.HasVar() {
				ill = true
				return false
			}
			return true
		})
		if ill {
			return validationErrorf("premise must not contain variables")
		}
	}
	for v := range q.Constraints {
		if !v.IsVar() {
			return validationErrorf("constraint on non-variable %s", v)
		}
		if !headVars[v] {
			return validationErrorf("constraint variable %s does not occur in head", v)
		}
	}
	return nil
}

// String renders the query in the paper's tableau notation H ← B.
func (q *Query) String() string {
	var b strings.Builder
	part := func(ts []graph.Triple) string {
		ss := make([]string, len(ts))
		for i, t := range ts {
			ss[i] = "(" + t.S.String() + ", " + t.P.String() + ", " + t.O.String() + ")"
		}
		return strings.Join(ss, ", ")
	}
	b.WriteString(part(q.Head))
	b.WriteString(" ← ")
	b.WriteString(part(q.Body))
	if q.Premise != nil && q.Premise.Len() > 0 {
		fmt.Fprintf(&b, " with premise {%d triples}", q.Premise.Len())
	}
	if len(q.Constraints) > 0 {
		vars := make([]string, 0, len(q.Constraints))
		for v := range q.Constraints {
			vars = append(vars, v.String())
		}
		sort.Strings(vars)
		fmt.Fprintf(&b, " constraints {%s}", strings.Join(vars, ", "))
	}
	return b.String()
}

// Semantics selects how single answers are combined (Section 4.1).
type Semantics int

const (
	// UnionSemantics is ans∪: the set union of the single answers; blank
	// nodes of the database keep their identity across single answers.
	UnionSemantics Semantics = iota
	// MergeSemantics is ans+: single answers are merged with their blank
	// nodes renamed apart.
	MergeSemantics
)

// Options configures evaluation.
type Options struct {
	// Semantics selects ans∪ (default) or ans+.
	Semantics Semantics
	// SkipNormalForm matches against cl(D+P) instead of nf(D+P). This is
	// the ablation knob: skipping the core step is cheaper but gives up
	// the invariance-under-equivalence guarantee of Theorem 4.6 (extra
	// redundant single answers can appear).
	SkipNormalForm bool
	// MaxMatchings caps the number of matchings considered (0 = all).
	MaxMatchings int
	// Parallelism is the worker count for the closure saturation that
	// prepares the matching universe (cl(D+P) directly, or inside
	// nf(D+P)). Values ≤ 1 run the sequential engine; the answer is
	// identical for every value (see closure.RDFSClWorkers).
	Parallelism int
}

// Answer is the result of evaluating a query.
type Answer struct {
	// Singles is the pre-answer preans(q, D): the set of single answers
	// v(H), deduplicated as graphs.
	Singles []*graph.Graph
	// Graph is ans∪(q,D) or ans+(q,D) depending on the semantics.
	Graph *graph.Graph
	// Matchings counts the matchings of B considered (before constraint
	// filtering collapse to equal single answers). It never exceeds
	// Options.MaxMatchings when that cap is set.
	Matchings int
	// Truncated reports that the matching enumeration was cut off by
	// Options.MaxMatchings: at least one further matching existed and
	// was discarded, so the answer may be incomplete. An answer whose
	// body has exactly MaxMatchings matchings is complete and reports
	// false.
	Truncated bool
	// Semantics records how Graph was assembled.
	Semantics Semantics
}

// Evaluate computes the answer of q over the database d (Definition 4.3).
// The matching universe is nf(D + P), per Note 4.4, where + is merge.
func Evaluate(q *Query, d *graph.Graph, opts Options) (*Answer, error) {
	return EvaluateCtx(context.Background(), q, d, opts)
}

// EvaluateCtx is Evaluate under a context: the closure saturation, the
// normal-form retraction searches, and the body-matching backtracking
// loop all poll ctx and abort with its error when it is cancelled or its
// deadline passes.
//
// Evaluation never mutates the dictionaries of d or of the premise: the
// merged universe, its saturation (skolem constants, RDFS vocabulary),
// renamed premise blanks and everything evaluateIndexed interns all
// land in scratch overlays (dict.Scratch) that die with the answer.
func EvaluateCtx(ctx context.Context, q *Query, d *graph.Graph, opts Options) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	data := d.WithDict(d.Dict().Scratch())
	if q.Premise != nil && q.Premise.Len() > 0 {
		// The merge renames colliding premise blanks; routing the premise
		// through its own overlay keeps those renames (and nothing else)
		// out of the caller-owned premise dictionary too.
		p := q.Premise.WithDict(q.Premise.Dict().Scratch())
		data = graph.Merge(data, p)
	}
	var err error
	if opts.SkipNormalForm {
		data, err = closure.ClWorkers(ctx, data, opts.Parallelism)
	} else {
		data, err = core.NormalFormWorkers(ctx, data, opts.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	return evaluateAgainst(ctx, q, data, opts)
}

// Prepare computes the matching universe for premise-free queries over
// d: cl(D) when skipNormalForm is set, nf(D) otherwise. Callers
// evaluating many queries against an unchanging database compute this
// once and pass it to EvaluatePreparedCtx.
func Prepare(ctx context.Context, d *graph.Graph, skipNormalForm bool) (*graph.Graph, error) {
	return PrepareWorkers(ctx, d, skipNormalForm, 1)
}

// PrepareWorkers is Prepare with an explicit parallelism degree for
// the closure saturation (see closure.RDFSClWorkers); the prepared
// universe is identical for every worker count.
func PrepareWorkers(ctx context.Context, d *graph.Graph, skipNormalForm bool, workers int) (*graph.Graph, error) {
	if skipNormalForm {
		return closure.ClWorkers(ctx, d, workers)
	}
	return core.NormalFormWorkers(ctx, d, workers)
}

// EvaluatePreparedCtx evaluates a premise-free query against a data
// graph already normalized by Prepare, skipping the per-call closure
// and core computation. The premise of q, if any, is ignored — callers
// are responsible for routing premised queries through EvaluateCtx.
func EvaluatePreparedCtx(ctx context.Context, q *Query, prepared *graph.Graph, opts Options) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// A dead context must fail even when the prepared graph came
		// from a cache and the match would be trivial.
		return nil, err
	}
	return evaluateAgainst(ctx, q, prepared, opts)
}

// EvaluatePreparedIndexCtx is EvaluatePreparedCtx against a reusable
// match.Index over the prepared graph, so callers (semweb.DB) can cache
// the matcher's view alongside the prepared normal form. It never
// interns into the prepared graph's dictionary: every term evaluation
// mints (pattern terms, variables, Skolem blanks) lives in a scratch
// overlay owned by the returned Answer, so concurrent evaluations over
// one cached index are safe and the shared dictionary stays fixed.
func EvaluatePreparedIndexCtx(ctx context.Context, q *Query, ix *match.Index, opts Options) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// A dead context must fail even when the prepared graph came
		// from a cache and the match would be trivial.
		return nil, err
	}
	return evaluateIndexed(ctx, q, ix, opts)
}

// evaluateAgainst runs the matching and answer assembly against an
// already-normalized data graph.
func evaluateAgainst(ctx context.Context, q *Query, data *graph.Graph, opts Options) (*Answer, error) {
	return evaluateIndexed(ctx, q, match.NewIndex(data), opts)
}

// evaluateIndexed runs the dictionary-encoded matching loop (see
// streamIndexed, which it shares with the streaming API): the body is
// solved over ID range scans, and each matching instantiates the head by
// ID substitution — single answers share one dictionary with the data,
// so deduplication and answer assembly compare integers. Strings appear
// only in the Skolem signature (head blanks, a term-identity function by
// Proposition 4.5) and in the final deterministic ordering.
//
// Everything evaluation interns — body pattern terms, variables,
// constraint IDs, the per-matching Skolem blanks — lands in a scratch
// overlay (dict.Scratch) over the data dictionary, created here and
// owned by the returned Answer. The data dictionary itself is never
// mutated, so a long-lived database can serve any number of
// (blank-headed, constrained, premised) queries without growing its
// dictionary or its snapshots.
func evaluateIndexed(ctx context.Context, q *Query, ix *match.Index, opts Options) (*Answer, error) {
	d := ix.Dict().Scratch()
	ans := &Answer{Semantics: opts.Semantics}
	st, err := streamIndexed(ctx, q, ix, opts, d, func(single *graph.Graph, _ match.Binding, _ int) bool {
		ans.Singles = append(ans.Singles, single)
		return true
	})
	if err != nil {
		return nil, err
	}
	ans.Matchings = st.Matchings
	ans.Truncated = st.Truncated

	// Deterministic order for reproducible merges: sort by the canonical
	// serialization, computed once per single answer.
	type keyed struct {
		g *graph.Graph
		k string
	}
	ordered := make([]keyed, len(ans.Singles))
	for i, s := range ans.Singles {
		ordered[i] = keyed{g: s, k: s.String()}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].k < ordered[j].k })
	for i, s := range ordered {
		ans.Singles[i] = s.g
	}

	switch opts.Semantics {
	case MergeSemantics:
		ans.Graph = graph.NewWithDict(d)
		for i, s := range ans.Singles {
			ans.Graph.AddAll(graph.RenameBlanksApart(s, fmt.Sprintf("!m%d", i)))
		}
	default:
		ans.Graph = graph.NewWithDict(d)
		for _, s := range ans.Singles {
			ans.Graph.AddAll(s)
		}
	}
	return ans, nil
}

// headInstantiator computes single answers v(H) on interned IDs: head
// variables are replaced by their bindings and each head blank N by the
// Skolem value f_N(v(X1), …, v(Xk)) over the body variables (Section
// 4.1). The head template is encoded once per evaluation, into the
// evaluation's scratch dictionary — head pattern terms, variables and
// the Skolem blanks minted per matching all stay out of the shared
// data dictionary.
type headInstantiator struct {
	d          *dict.Dict // the evaluation's scratch overlay
	head       []dict.Triple3
	bodyVars   []term.Term
	bodyVarIDs []dict.ID
	headBlanks []term.Term
	blankIDs   []dict.ID
	scratch    []dict.Triple3 // per-matching instantiation buffer
}

func newHeadInstantiator(q *Query, d *dict.Dict) *headInstantiator {
	h := &headInstantiator{
		d:          d,
		bodyVars:   varsIn(q.Body),
		headBlanks: q.headBlanks(),
	}
	h.head = make([]dict.Triple3, len(q.Head))
	for i, t := range q.Head {
		h.head[i] = dict.Triple3{d.Intern(t.S), d.Intern(t.P), d.Intern(t.O)}
	}
	h.bodyVarIDs = make([]dict.ID, len(h.bodyVars))
	for i, v := range h.bodyVars {
		h.bodyVarIDs[i] = d.Intern(v)
	}
	h.blankIDs = make([]dict.ID, len(h.headBlanks))
	for i, n := range h.headBlanks {
		h.blankIDs[i] = d.Intern(n)
	}
	return h
}

// instantiate computes the encoded triples of v(H) for one matching,
// into a scratch buffer valid until the next call. The returned key is a
// cheap content fingerprint (sorted encoded triples) used for single-
// answer deduplication; ok is false when v(H) is not a well-formed RDF
// graph.
func (h *headInstantiator) instantiate(b match.Binding) ([]dict.Triple3, string, bool) {
	var skolem map[dict.ID]dict.ID
	if len(h.blankIDs) > 0 {
		var sig strings.Builder
		for _, vid := range h.bodyVarIDs {
			sig.WriteString(h.d.TermOf(b[vid]).String())
			sig.WriteByte('|')
		}
		skolem = make(map[dict.ID]dict.ID, len(h.blankIDs))
		for i, nid := range h.blankIDs {
			skolem[nid] = h.d.Intern(skolemBlank(h.headBlanks[i], sig.String()))
		}
	}
	sub := func(id dict.ID) dict.ID {
		switch h.d.KindOf(id) {
		case term.KindVar:
			return b[id]
		case term.KindBlank:
			if s, ok := skolem[id]; ok {
				return s
			}
			return id
		default:
			return id
		}
	}
	if cap(h.scratch) < len(h.head) {
		h.scratch = make([]dict.Triple3, len(h.head))
	}
	encs := h.scratch[:0]
	for _, t := range h.head {
		enc := dict.Triple3{sub(t[0]), sub(t[1]), sub(t[2])}
		if !graph.WellFormedID(h.d, enc) {
			return nil, "", false
		}
		encs = append(encs, enc)
	}
	// Insertion sort: heads are tiny and sort.Slice costs reflection.
	for i := 1; i < len(encs); i++ {
		for j := i; j > 0 && encs[j].Less(encs[j-1]); j-- {
			encs[j], encs[j-1] = encs[j-1], encs[j]
		}
	}
	// Compact duplicates: v(H) is a set, and two head patterns can
	// instantiate to the same triple; the dedup key must fingerprint
	// the set, not the multiset.
	if len(encs) > 1 {
		w := 1
		for i := 1; i < len(encs); i++ {
			if encs[i] != encs[w-1] {
				encs[w] = encs[i]
				w++
			}
		}
		encs = encs[:w]
	}
	var key strings.Builder
	key.Grow(12 * len(encs))
	for _, enc := range encs {
		for _, id := range enc {
			key.WriteByte(byte(id))
			key.WriteByte(byte(id >> 8))
			key.WriteByte(byte(id >> 16))
			key.WriteByte(byte(id >> 24))
		}
	}
	return encs, key.String(), true
}

// skolemBlank is the deterministic Skolem function f_N: the same blank
// and the same argument tuple always yield the same fresh blank node, as
// required by Proposition 4.5 ("the same Skolem function is used when
// querying any database").
func skolemBlank(n term.Term, signature string) term.Term {
	h := fnv.New64a()
	h.Write([]byte(n.Value))
	h.Write([]byte{0})
	h.Write([]byte(signature))
	return term.NewBlank(fmt.Sprintf("sk_%s_%016x", n.Value, h.Sum64()))
}

// IsLeanAnswer reports whether the assembled answer graph is lean. Under
// union semantics this is the coNP-complete check of Theorem 6.2; under
// merge semantics the polynomial single-map procedure of Theorem 6.3 is
// used.
func IsLeanAnswer(a *Answer) bool {
	if a.Semantics == MergeSemantics {
		return mergeAnswerLean(a)
	}
	return core.IsLean(a.Graph)
}

// mergeAnswerLean implements Theorem 6.3: under merge semantics single
// answers share no blanks, so every self-map of the answer is a union of
// single maps, and the answer is non-lean iff some single answer Gj has a
// non-ground triple t and a map Gj → A∖{t}. This runs in time polynomial
// in the number of single answers for a fixed query.
func mergeAnswerLean(a *Answer) bool {
	// Recreate the renamed singles as they appear inside a.Graph.
	renamed := make([]*graph.Graph, len(a.Singles))
	for i, s := range a.Singles {
		renamed[i] = graph.RenameBlanksApart(s, fmt.Sprintf("!m%d", i))
	}
	finder := newFinderCache(a.Graph)
	for _, gj := range renamed {
		for _, t := range gj.NonGroundTriples() {
			if finder.mapsIntoWithout(gj, t) {
				return false
			}
		}
	}
	return true
}

// finderCache performs repeated map searches into A∖{t} without
// rebuilding the full index each time (the target differs by one triple).
type finderCache struct {
	a *graph.Graph
}

func newFinderCache(a *graph.Graph) *finderCache { return &finderCache{a: a} }

func (f *finderCache) mapsIntoWithout(src *graph.Graph, t graph.Triple) bool {
	target := f.a.Without(t)
	blanks := func(x term.Term) bool { return x.IsBlank() }
	found := false
	match.Solve(src.Triples(), target, match.Options{IsUnknown: blanks}, func(match.Binding) bool {
		found = true
		return false
	})
	return found
}

// EliminateRedundancy returns an equivalent lean version of the answer
// graph (its core). Per Theorem 6.2 this is inherently expensive in the
// worst case under union semantics.
func EliminateRedundancy(a *Answer) *graph.Graph {
	c, _ := core.Core(a.Graph)
	return c
}
