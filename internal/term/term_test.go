package term

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		t        Term
		kind     Kind
		ground   bool
		blank    bool
		variable bool
	}{
		{NewIRI("http://ex.org/a"), KindIRI, true, false, false},
		{NewBlank("b0"), KindBlank, false, true, false},
		{NewVar("X"), KindVar, false, false, true},
		{NewLiteral("hello"), KindLiteral, true, false, false},
		{NewLangLiteral("hola", "es"), KindLiteral, true, false, false},
		{NewTypedLiteral("1", "http://www.w3.org/2001/XMLSchema#integer"), KindLiteral, true, false, false},
	}
	for _, c := range cases {
		if c.t.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.t, c.t.Kind(), c.kind)
		}
		if c.t.IsGround() != c.ground {
			t.Errorf("%v: IsGround = %v, want %v", c.t, c.t.IsGround(), c.ground)
		}
		if c.t.IsBlank() != c.blank {
			t.Errorf("%v: IsBlank = %v, want %v", c.t, c.t.IsBlank(), c.blank)
		}
		if c.t.IsVar() != c.variable {
			t.Errorf("%v: IsVar = %v, want %v", c.t, c.t.IsVar(), c.variable)
		}
	}
}

func TestTermComparability(t *testing.T) {
	// Terms must be usable as map keys with value semantics.
	m := map[Term]int{}
	m[NewIRI("a")] = 1
	m[NewIRI("a")] = 2
	m[NewBlank("a")] = 3
	m[NewLiteral("a")] = 4
	m[NewVar("a")] = 5
	if len(m) != 4 {
		t.Fatalf("expected 4 distinct keys, got %d", len(m))
	}
	if m[NewIRI("a")] != 2 {
		t.Fatalf("IRI overwrite failed")
	}
}

func TestLiteralDistinctions(t *testing.T) {
	plain := NewLiteral("x")
	lang := NewLangLiteral("x", "en")
	typed := NewTypedLiteral("x", "http://www.w3.org/2001/XMLSchema#string")
	if plain == lang || plain == typed || lang == typed {
		t.Fatalf("literals with different metadata must differ")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewBlank("x"), "_:x"},
		{NewVar("X"), "?X"},
		{NewLiteral("hi"), `"hi"`},
		{NewLiteral("a\"b"), `"a\"b"`},
		{NewLiteral("a\nb"), `"a\nb"`},
		{NewLiteral(`a\b`), `"a\\b"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("1", "http://www.w3.org/2001/XMLSchema#int"), `"1"^^<http://www.w3.org/2001/XMLSchema#int>`},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ts := []Term{
		NewVar("z"), NewIRI("b"), NewBlank("a"), NewLiteral("m"),
		NewIRI("a"), NewBlank("b"), NewVar("a"),
		NewLangLiteral("m", "en"), NewTypedLiteral("m", "dt"),
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatalf("order not total at %d: %v < %v", i, ts[i], ts[i-1])
		}
	}
	// IRIs sort before blanks before literals before vars.
	if !ts[0].IsIRI() || !ts[len(ts)-1].IsVar() {
		t.Fatalf("kind ordering violated: %v", ts)
	}
}

func TestCompareProperties(t *testing.T) {
	gen := func(vals []string, i, j int) (Term, Term) {
		kinds := []func(string) Term{NewIRI, NewBlank, NewLiteral, NewVar}
		return kinds[i%4](vals[0]), kinds[j%4](vals[1%len(vals)])
	}
	f := func(a, b string, i, j uint8) bool {
		if a == "" || b == "" {
			return true
		}
		x, y := gen([]string{a, b}, int(i), int(j))
		// Antisymmetry and consistency with equality.
		if x == y {
			return x.Compare(y) == 0
		}
		return x.Compare(y) == -y.Compare(x) && x.Compare(y) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := []Term{
		NewIRI("a"), NewBlank("b"), NewVar("v"), NewLiteral(""),
		NewLangLiteral("x", "en"), NewTypedLiteral("x", "dt"),
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", g, err)
		}
	}
	bad := []Term{
		{},                                     // invalid kind
		{Knd: KindIRI},                         // empty IRI
		{Knd: KindBlank},                       // empty label
		{Knd: KindVar},                         // empty name
		{Knd: KindIRI, Value: "a", Lang: "en"}, // metadata on IRI
		{Knd: KindLiteral, Value: "x", Lang: "en", Datatype: "dt"}, // both
		{Knd: KindBlank, Value: "b", Datatype: "dt"},               // metadata on blank
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%#v) = nil, want error", b)
		}
	}
}

func TestPositionalCapabilities(t *testing.T) {
	iri := NewIRI("a")
	blank := NewBlank("b")
	lit := NewLiteral("l")
	v := NewVar("v")

	if !iri.CanSubject() || !iri.CanPredicate() || !iri.CanObject() {
		t.Error("IRI must be allowed in all positions")
	}
	if !blank.CanSubject() || blank.CanPredicate() || !blank.CanObject() {
		t.Error("blank: subject/object only")
	}
	if lit.CanSubject() || lit.CanPredicate() || !lit.CanObject() {
		t.Error("literal: object only")
	}
	if v.CanSubject() || v.CanPredicate() || v.CanObject() {
		t.Error("variables are not data terms")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindIRI: "iri", KindBlank: "blank", KindLiteral: "literal",
		KindVar: "var", KindInvalid: "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
