// Package term defines the RDF terms of the abstract model of
// "Foundations of Semantic Web databases" (Gutierrez, Hurtado, Mendelzon,
// Pérez): IRIs (the set U of the paper), blank nodes (the set B), and — as
// pragmatic extensions used by the substrates — plain/typed literals and
// query variables.
//
// Terms are small comparable values, so they can be used directly as map
// keys; all higher layers (graphs, stores, matchers) rely on that.
//
// The paper's abstract model deliberately disregards literals (footnote 1);
// in this implementation literals exist so the parsers and the store can
// process real RDF, and the theory layers treat them exactly like ground
// IRIs, which is the extension the paper states is immediate for plain
// literals.
package term

import (
	"fmt"
	"strings"
)

// Kind discriminates the syntactic category of a Term.
type Kind uint8

const (
	// KindInvalid is the zero Kind; the zero Term is not a valid term.
	KindInvalid Kind = iota
	// KindIRI is an RDF URI reference, an element of the set U.
	KindIRI
	// KindBlank is a blank node, an element of the set B.
	KindBlank
	// KindLiteral is a plain or typed literal (extension; ground term).
	KindLiteral
	// KindVar is a query variable, an element of the set V of Section 4.
	KindVar
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	case KindVar:
		return "var"
	default:
		return "invalid"
	}
}

// Term is an RDF term. It is a comparable value type: two Terms are the
// same term exactly when all their fields are equal.
type Term struct {
	// Knd is the syntactic category of the term.
	Knd Kind
	// Value holds the IRI string, the blank node label, the literal
	// lexical form, or the variable name (without the leading '?').
	Value string
	// Datatype is the datatype IRI of a typed literal ("" otherwise).
	Datatype string
	// Lang is the language tag of a language-tagged literal ("" otherwise).
	Lang string
}

// NewIRI returns the IRI term for the given URI reference.
func NewIRI(iri string) Term { return Term{Knd: KindIRI, Value: iri} }

// NewBlank returns the blank node with the given label.
func NewBlank(label string) Term { return Term{Knd: KindBlank, Value: label} }

// NewVar returns the query variable with the given name. The name must not
// include the leading '?' used in concrete syntax.
func NewVar(name string) Term { return Term{Knd: KindVar, Value: name} }

// NewLiteral returns a plain literal with the given lexical form.
func NewLiteral(lex string) Term { return Term{Knd: KindLiteral, Value: lex} }

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Knd: KindLiteral, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a typed literal with the given datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Knd: KindLiteral, Value: lex, Datatype: datatype}
}

// Kind returns the syntactic category of the term.
func (t Term) Kind() Kind { return t.Knd }

// IsIRI reports whether the term is an IRI (element of U).
func (t Term) IsIRI() bool { return t.Knd == KindIRI }

// IsBlank reports whether the term is a blank node (element of B).
func (t Term) IsBlank() bool { return t.Knd == KindBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Knd == KindLiteral }

// IsVar reports whether the term is a query variable.
func (t Term) IsVar() bool { return t.Knd == KindVar }

// IsGround reports whether the term is ground, i.e. neither a blank node
// nor a variable. IRIs and literals are ground.
func (t Term) IsGround() bool { return t.Knd == KindIRI || t.Knd == KindLiteral }

// IsZero reports whether the term is the zero value (no valid kind).
func (t Term) IsZero() bool { return t.Knd == KindInvalid }

// Compare totally orders terms: first by kind (IRI < blank < literal <
// var), then lexicographically by value, datatype and language tag. The
// order is used for canonical serializations and deterministic iteration.
func (t Term) Compare(u Term) int {
	if t.Knd != u.Knd {
		if t.Knd < u.Knd {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

// Less reports whether t sorts strictly before u under Compare.
func (t Term) Less(u Term) bool { return t.Compare(u) < 0 }

// String renders the term in N-Triples-like concrete syntax: IRIs in
// angle brackets, blank nodes as _:label, literals quoted, variables with
// a leading '?'.
func (t Term) String() string {
	switch t.Knd {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindVar:
		return "?" + t.Value
	case KindLiteral:
		s := quoteLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return "<invalid>"
	}
}

// quoteLiteral renders a literal lexical form with N-Triples escapes.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Validate reports an error if the term is not well formed: empty values,
// or literal metadata on non-literals.
func (t Term) Validate() error {
	switch t.Knd {
	case KindIRI, KindBlank, KindVar:
		if t.Value == "" {
			return fmt.Errorf("term: empty %s value", t.Knd)
		}
		if t.Datatype != "" || t.Lang != "" {
			return fmt.Errorf("term: %s %q carries literal metadata", t.Knd, t.Value)
		}
		return nil
	case KindLiteral:
		if t.Datatype != "" && t.Lang != "" {
			return fmt.Errorf("term: literal %q has both datatype and language", t.Value)
		}
		return nil
	default:
		return fmt.Errorf("term: invalid kind %d", t.Knd)
	}
}

// CanSubject reports whether the term may occupy the subject position of a
// well-formed RDF triple: subjects are drawn from U ∪ B.
func (t Term) CanSubject() bool { return t.Knd == KindIRI || t.Knd == KindBlank }

// CanPredicate reports whether the term may occupy the predicate position:
// predicates are drawn from U only.
func (t Term) CanPredicate() bool { return t.Knd == KindIRI }

// CanObject reports whether the term may occupy the object position:
// objects are drawn from U ∪ B (plus literals in the extended model).
func (t Term) CanObject() bool {
	return t.Knd == KindIRI || t.Knd == KindBlank || t.Knd == KindLiteral
}
