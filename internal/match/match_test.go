package match

import (
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }
func v(s string) term.Term   { return term.NewVar(s) }

func data(ts ...graph.Triple) *graph.Graph { return graph.New(ts...) }

// allSolutions decodes every solution binding back to terms.
func allSolutions(patterns []graph.Triple, g *graph.Graph, opts Options) []map[term.Term]term.Term {
	var out []map[term.Term]term.Term
	Solve(patterns, g, opts, func(b Binding) bool {
		out = append(out, b.Terms(g.Dict()))
		return true
	})
	return out
}

func TestSingleMatch(t *testing.T) {
	g := data(graph.T(iri("a"), iri("p"), iri("b")))
	sols := allSolutions([]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}}, g, Options{})
	if len(sols) != 1 {
		t.Fatalf("solutions = %d, want 1", len(sols))
	}
	if sols[0][v("X")] != iri("a") || sols[0][v("Y")] != iri("b") {
		t.Fatalf("binding = %v", sols[0])
	}
}

func TestJoinOnSharedVariable(t *testing.T) {
	g := data(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("b"), iri("p"), iri("c")),
		graph.T(iri("c"), iri("p"), iri("d")),
	)
	pats := []graph.Triple{
		{S: v("X"), P: iri("p"), O: v("Y")},
		{S: v("Y"), P: iri("p"), O: v("Z")},
	}
	sols := allSolutions(pats, g, Options{})
	if len(sols) != 2 { // a-b-c and b-c-d
		t.Fatalf("solutions = %d, want 2", len(sols))
	}
}

func TestRepeatedVariableInOnePattern(t *testing.T) {
	g := data(
		graph.T(iri("a"), iri("p"), iri("a")),
		graph.T(iri("a"), iri("p"), iri("b")),
	)
	sols := allSolutions([]graph.Triple{{S: v("X"), P: iri("p"), O: v("X")}}, g, Options{})
	if len(sols) != 1 || sols[0][v("X")] != iri("a") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestVariablePredicate(t *testing.T) {
	g := data(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("a"), iri("q"), iri("b")),
	)
	sols := allSolutions([]graph.Triple{{S: iri("a"), P: v("P"), O: iri("b")}}, g, Options{})
	if len(sols) != 2 {
		t.Fatalf("solutions = %d, want 2", len(sols))
	}
}

func TestNoSolution(t *testing.T) {
	g := data(graph.T(iri("a"), iri("p"), iri("b")))
	sols := allSolutions([]graph.Triple{{S: v("X"), P: iri("q"), O: v("Y")}}, g, Options{})
	if len(sols) != 0 {
		t.Fatalf("solutions = %d, want 0", len(sols))
	}
}

func TestEmptyPatternListYieldsEmptyBinding(t *testing.T) {
	g := data(graph.T(iri("a"), iri("p"), iri("b")))
	sols := allSolutions(nil, g, Options{})
	if len(sols) != 1 || len(sols[0]) != 0 {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestInjectiveOption(t *testing.T) {
	g := data(
		graph.T(iri("a"), iri("p"), iri("a")),
		graph.T(iri("a"), iri("p"), iri("b")),
	)
	pats := []graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}}
	plain := allSolutions(pats, g, Options{})
	inj := allSolutions(pats, g, Options{Injective: true})
	if len(plain) != 2 {
		t.Fatalf("plain solutions = %d, want 2", len(plain))
	}
	if len(inj) != 1 { // X=a,Y=a violates injectivity
		t.Fatalf("injective solutions = %d, want 1", len(inj))
	}
}

func TestAdmissibleFilter(t *testing.T) {
	g := data(
		graph.T(iri("a"), iri("p"), blk("x")),
		graph.T(iri("a"), iri("p"), iri("b")),
	)
	d := g.Dict()
	opts := Options{
		Admissible: func(_, value dict.ID) bool { return d.KindOf(value) != term.KindBlank },
	}
	sols := allSolutions([]graph.Triple{{S: iri("a"), P: iri("p"), O: v("Y")}}, g, opts)
	if len(sols) != 1 || sols[0][v("Y")] != iri("b") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestBlankAsUnknown(t *testing.T) {
	// Homomorphism mode: blanks of the pattern are the unknowns.
	g := data(graph.T(iri("a"), iri("p"), iri("b")))
	opts := Options{IsUnknown: func(x term.Term) bool { return x.IsBlank() || x.IsVar() }}
	sols := allSolutions([]graph.Triple{{S: blk("n"), P: iri("p"), O: iri("b")}}, g, opts)
	if len(sols) != 1 || sols[0][blk("n")] != iri("a") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	// A dense graph with an unsatisfiable last pattern forces exploration.
	g := graph.New()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			g.Add(graph.T(iri("n"+string(rune('a'+i))), iri("p"), iri("n"+string(rune('a'+j)))))
		}
	}
	pats := []graph.Triple{
		{S: v("X"), P: iri("p"), O: v("Y")},
		{S: v("Y"), P: iri("p"), O: v("Z")},
		{S: v("Z"), P: iri("q"), O: v("W")}, // no q-triples: unsatisfiable
	}
	// NoReorder prevents the selectivity heuristic from spotting the
	// empty candidate set of the last pattern upfront.
	s := NewSolver(NewIndex(g), Options{MaxSteps: 5, NoReorder: true})
	_, found, complete := s.First(pats)
	if found {
		t.Fatal("found a solution to an unsatisfiable problem")
	}
	if complete {
		t.Fatal("search must report incompleteness when budget exhausted")
	}
	// With an ample budget the search is complete.
	s2 := NewSolver(NewIndex(g), Options{MaxSteps: 1000000, NoReorder: true})
	_, found2, complete2 := s2.First(pats)
	if found2 || !complete2 {
		t.Fatalf("found2=%v complete2=%v", found2, complete2)
	}
	// The heuristic search detects unsatisfiability without any budget.
	s3 := NewSolver(NewIndex(g), Options{MaxSteps: 5})
	_, found3, complete3 := s3.First(pats)
	if found3 || !complete3 {
		t.Fatalf("found3=%v complete3=%v", found3, complete3)
	}
}

func TestIndexModesAgree(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.Add(graph.T(iri("s"+string(rune('0'+i%4))), iri("p"+string(rune('0'+i%2))), iri("o"+string(rune('0'+i%3)))))
	}
	pats := []graph.Triple{
		{S: v("X"), P: iri("p0"), O: v("Y")},
		{S: v("X"), P: v("P"), O: iri("o1")},
	}
	count := func(mode IndexMode) int {
		s := NewSolver(NewIndexMode(g, mode), Options{})
		n := 0
		s.Solve(pats, func(Binding) bool { n++; return true })
		return n
	}
	full, pred, scan := count(FullIndexes), count(PredicateOnly), count(ScanOnly)
	if full != pred || pred != scan {
		t.Fatalf("index modes disagree: full=%d predicate=%d scan=%d", full, pred, scan)
	}
}

func TestNoReorderStillCorrect(t *testing.T) {
	g := data(
		graph.T(iri("a"), iri("p"), iri("b")),
		graph.T(iri("b"), iri("q"), iri("c")),
	)
	pats := []graph.Triple{
		{S: v("X"), P: iri("p"), O: v("Y")},
		{S: v("Y"), P: iri("q"), O: v("Z")},
	}
	a := allSolutions(pats, g, Options{})
	b := allSolutions(pats, g, Options{NoReorder: true})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("reorder changes result: %d vs %d", len(a), len(b))
	}
}

func TestUnknowns(t *testing.T) {
	pats := []graph.Triple{
		{S: v("X"), P: iri("p"), O: v("Y")},
		{S: v("Y"), P: iri("p"), O: blk("n")},
	}
	vs := Unknowns(pats, nil)
	if len(vs) != 2 {
		t.Fatalf("default unknowns = %v, want vars only", vs)
	}
	all := Unknowns(pats, func(x term.Term) bool { return x.IsVar() || x.IsBlank() })
	if len(all) != 3 {
		t.Fatalf("unknowns = %v, want 3", all)
	}
}

func TestSolutionCountCartesian(t *testing.T) {
	// Two independent patterns over disjoint predicates: the solution
	// count is the product.
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.Add(graph.T(iri("a"+string(rune('0'+i))), iri("p"), iri("b")))
		g.Add(graph.T(iri("c"+string(rune('0'+i))), iri("q"), iri("d")))
	}
	pats := []graph.Triple{
		{S: v("X"), P: iri("p"), O: iri("b")},
		{S: v("Y"), P: iri("q"), O: iri("d")},
	}
	sols := allSolutions(pats, g, Options{})
	if len(sols) != 9 {
		t.Fatalf("solutions = %d, want 9", len(sols))
	}
}

func TestBindingClone(t *testing.T) {
	b := Binding{1: 2}
	c := b.Clone()
	c[1] = 3
	if b[1] != 2 {
		t.Fatal("clone aliases original")
	}
}

func TestBindingTerms(t *testing.T) {
	d := dict.New()
	x, a := d.Intern(v("X")), d.Intern(iri("a"))
	m := Binding{x: a}.Terms(d)
	if m[v("X")] != iri("a") {
		t.Fatalf("Terms = %v", m)
	}
}

func TestIndexAccessors(t *testing.T) {
	g := data(graph.T(iri("a"), iri("p"), blk("x")))
	ix := NewIndex(g)
	if ix.Graph() != g {
		t.Fatal("Graph accessor")
	}
	if len(ix.Terms()) != 3 {
		t.Fatalf("Terms = %v", ix.Terms())
	}
}
