// Package match implements the backtracking pattern-matching engine shared
// by homomorphism (map) search, query evaluation and containment testing.
//
// A problem instance is a set of triple patterns — triples in which some
// positions hold "unknowns" — and a data graph. A solution is a binding of
// every unknown to a term of the data graph such that every instantiated
// pattern is a triple of the data graph. This is exactly:
//
//   - map search μ : G' → G when the unknowns are the blank nodes of G'
//     (Section 2.4 of the paper: entailment characterization), and
//   - matching v(B) ⊆ nf(D) when the unknowns are the query variables of a
//     tableau body B (Definition 4.3).
//
// The engine picks the next pattern by estimated selectivity
// (most-constrained-first) using per-position indexes; ablation A3 in
// DESIGN.md measures the effect of that heuristic.
package match

import (
	"context"
	"sort"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// Binding assigns data-graph terms to unknowns.
type Binding map[term.Term]term.Term

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Options configures a Solve call.
type Options struct {
	// IsUnknown tells which pattern terms are unknowns to be bound. The
	// default treats query variables as unknowns; homomorphism search
	// passes a predicate that also treats blank nodes as unknowns.
	IsUnknown func(term.Term) bool

	// Injective requires pairwise-distinct values for distinct unknowns
	// (used for isomorphism search).
	Injective bool

	// Admissible, when non-nil, filters candidate values per unknown
	// (e.g. "must not be a blank node" for constrained query variables,
	// or "must be a blank node" for isomorphism search).
	Admissible func(unknown, value term.Term) bool

	// NoReorder disables the most-constrained-first heuristic and
	// processes patterns in the order given (ablation A3).
	NoReorder bool

	// MaxSteps bounds the number of search steps (candidate extensions
	// attempted). Zero means unlimited. When the budget is exhausted,
	// Solve returns complete = false.
	MaxSteps int

	// Ctx, when non-nil, is polled periodically inside the search loop.
	// When it is cancelled the search aborts with complete = false and
	// Solver.Err reports the cause, making long homomorphism searches
	// interruptible.
	Ctx context.Context
}

func defaultIsUnknown(t term.Term) bool { return t.IsVar() }

// Index is a per-graph set of lookup structures for pattern candidates.
// Build one Index per data graph and reuse it across Solve calls.
type Index struct {
	g   *graph.Graph
	all []graph.Triple

	byS  map[term.Term][]graph.Triple
	byP  map[term.Term][]graph.Triple
	byO  map[term.Term][]graph.Triple
	bySP map[pair][]graph.Triple
	byPO map[pair][]graph.Triple
	bySO map[pair][]graph.Triple

	// mode selects which indexes are consulted (ablation A1).
	mode IndexMode
}

type pair struct{ a, b term.Term }

// IndexMode selects the index configuration (ablation A1).
type IndexMode int

const (
	// FullIndexes consults all single- and double-position indexes.
	FullIndexes IndexMode = iota
	// PredicateOnly consults only the by-predicate index; all other
	// filtering is done by scanning (a common "thin RDF library" design).
	PredicateOnly
	// ScanOnly performs full scans for every pattern (baseline).
	ScanOnly
)

// NewIndex builds a full index over g.
func NewIndex(g *graph.Graph) *Index { return NewIndexMode(g, FullIndexes) }

// NewIndexMode builds an index over g with the given configuration.
func NewIndexMode(g *graph.Graph, mode IndexMode) *Index {
	ix := &Index{
		g:    g,
		all:  g.Triples(),
		mode: mode,
	}
	if mode == ScanOnly {
		return ix
	}
	ix.byP = make(map[term.Term][]graph.Triple)
	if mode == FullIndexes {
		ix.byS = make(map[term.Term][]graph.Triple)
		ix.byO = make(map[term.Term][]graph.Triple)
		ix.bySP = make(map[pair][]graph.Triple)
		ix.byPO = make(map[pair][]graph.Triple)
		ix.bySO = make(map[pair][]graph.Triple)
	}
	for _, t := range ix.all {
		ix.byP[t.P] = append(ix.byP[t.P], t)
		if mode == FullIndexes {
			ix.byS[t.S] = append(ix.byS[t.S], t)
			ix.byO[t.O] = append(ix.byO[t.O], t)
			ix.bySP[pair{t.S, t.P}] = append(ix.bySP[pair{t.S, t.P}], t)
			ix.byPO[pair{t.P, t.O}] = append(ix.byPO[pair{t.P, t.O}], t)
			ix.bySO[pair{t.S, t.O}] = append(ix.bySO[pair{t.S, t.O}], t)
		}
	}
	return ix
}

// Graph returns the indexed data graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Terms returns the universe of the indexed graph in canonical order.
func (ix *Index) Terms() []term.Term { return ix.g.UniverseList() }

// candidates returns the triples of the data graph compatible with the
// pattern after substituting bound unknowns. Ground positions narrow the
// index lookup; remaining filtering happens in unify.
func (ix *Index) candidates(p graph.Triple, b Binding, isUnknown func(term.Term) bool) []graph.Triple {
	s, sKnown := resolve(p.S, b, isUnknown)
	pr, pKnown := resolve(p.P, b, isUnknown)
	o, oKnown := resolve(p.O, b, isUnknown)

	switch ix.mode {
	case ScanOnly:
		return ix.all
	case PredicateOnly:
		if pKnown {
			return ix.byP[pr]
		}
		return ix.all
	}

	switch {
	case sKnown && pKnown && oKnown:
		t := graph.Triple{S: s, P: pr, O: o}
		if ix.g.Has(t) {
			return []graph.Triple{t}
		}
		return nil
	case sKnown && pKnown:
		return ix.bySP[pair{s, pr}]
	case pKnown && oKnown:
		return ix.byPO[pair{pr, o}]
	case sKnown && oKnown:
		return ix.bySO[pair{s, o}]
	case sKnown:
		return ix.byS[s]
	case pKnown:
		return ix.byP[pr]
	case oKnown:
		return ix.byO[o]
	default:
		return ix.all
	}
}

// resolve returns the concrete value of a pattern position, if known.
func resolve(x term.Term, b Binding, isUnknown func(term.Term) bool) (term.Term, bool) {
	if !isUnknown(x) {
		return x, true
	}
	if v, ok := b[x]; ok {
		return v, true
	}
	return term.Term{}, false
}

// Solver runs pattern matching against a fixed Index.
type Solver struct {
	ix    *Index
	opts  Options
	steps int

	poll int             // iteration counter for context polling
	done <-chan struct{} // cached opts.Ctx.Done()
	err  error           // context error observed during the search

	used map[term.Term]int // value -> refcount, for Injective
}

// ctxPollMask controls how often the context is polled: every
// (ctxPollMask+1)-th candidate extension. Polling a channel is cheap but
// not free, so the hot loop only looks at it periodically.
const ctxPollMask = 0xff

// NewSolver creates a solver over the given index with the given options.
func NewSolver(ix *Index, opts Options) *Solver {
	if opts.IsUnknown == nil {
		opts.IsUnknown = defaultIsUnknown
	}
	s := &Solver{ix: ix, opts: opts}
	if opts.Ctx != nil {
		s.done = opts.Ctx.Done()
	}
	if opts.Injective {
		s.used = make(map[term.Term]int)
	}
	return s
}

// Err returns the context error that aborted the last Solve call, or nil
// if the search was not cancelled.
func (s *Solver) Err() error { return s.err }

// interrupted polls the context (on the first candidate and every
// ctxPollMask+1 calls thereafter, so even tiny searches observe a
// cancelled context) and records its error when cancelled.
func (s *Solver) interrupted() bool {
	if s.done == nil {
		return false
	}
	poll := s.poll&ctxPollMask == 0
	s.poll++
	if !poll {
		return false
	}
	select {
	case <-s.done:
		s.err = s.opts.Ctx.Err()
		return true
	default:
		return false
	}
}

// Solve enumerates bindings that satisfy all patterns, invoking yield for
// each. If yield returns false the search stops (reported as complete).
// The returned flag is false only if the MaxSteps budget was exhausted
// before the search space was covered.
func (s *Solver) Solve(patterns []graph.Triple, yield func(Binding) bool) (complete bool) {
	s.steps = 0
	s.err = nil
	b := make(Binding)
	remaining := make([]graph.Triple, len(patterns))
	copy(remaining, patterns)
	stopped := false
	ok := s.solve(remaining, b, func(bind Binding) bool {
		if !yield(bind) {
			stopped = true
			return false
		}
		return true
	})
	return ok || stopped
}

// Solve is a convenience entry point building a one-shot solver.
func Solve(patterns []graph.Triple, data *graph.Graph, opts Options, yield func(Binding) bool) bool {
	return NewSolver(NewIndex(data), opts).Solve(patterns, yield)
}

// SolveCtx is Solve under a context: the search polls ctx periodically
// and returns its error if it was cancelled before the space was covered.
func SolveCtx(ctx context.Context, patterns []graph.Triple, data *graph.Graph, opts Options, yield func(Binding) bool) error {
	opts.Ctx = ctx
	s := NewSolver(NewIndex(data), opts)
	s.Solve(patterns, yield)
	return s.Err()
}

// First returns the first solution found, if any. The bool result is the
// completeness flag of the underlying search: if false and no solution was
// found, the search was inconclusive (budget exhausted).
func (s *Solver) First(patterns []graph.Triple) (Binding, bool, bool) {
	var found Binding
	complete := s.Solve(patterns, func(b Binding) bool {
		found = b.Clone()
		return false
	})
	return found, found != nil, complete
}

func (s *Solver) solve(remaining []graph.Triple, b Binding, yield func(Binding) bool) bool {
	if len(remaining) == 0 {
		return yield(b)
	}

	// Pick the next pattern: most-constrained-first unless disabled.
	pick := 0
	if !s.opts.NoReorder {
		best := -1
		for i, p := range remaining {
			n := len(s.ix.candidates(p, b, s.opts.IsUnknown))
			if best == -1 || n < best {
				best = n
				pick = i
				if n == 0 {
					break
				}
			}
		}
	}
	p := remaining[pick]
	rest := make([]graph.Triple, 0, len(remaining)-1)
	rest = append(rest, remaining[:pick]...)
	rest = append(rest, remaining[pick+1:]...)

	for _, cand := range s.ix.candidates(p, b, s.opts.IsUnknown) {
		if s.interrupted() {
			return false
		}
		if s.opts.MaxSteps > 0 {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return false
			}
		}
		newly, ok := s.unify(p, cand, b)
		if !ok {
			continue
		}
		if !s.solve(rest, b, yield) {
			s.retract(newly, b)
			return false
		}
		s.retract(newly, b)
	}
	return true
}

// unify extends b so that pattern p instantiates to triple cand. It
// returns the unknowns newly bound (for backtracking) and whether
// unification succeeded.
func (s *Solver) unify(p, cand graph.Triple, b Binding) ([]term.Term, bool) {
	var newly []term.Term
	positions := [3][2]term.Term{
		{p.S, cand.S},
		{p.P, cand.P},
		{p.O, cand.O},
	}
	for _, pos := range positions {
		pat, val := pos[0], pos[1]
		if !s.opts.IsUnknown(pat) {
			if pat != val {
				s.retract(newly, b)
				return nil, false
			}
			continue
		}
		if bound, ok := b[pat]; ok {
			if bound != val {
				s.retract(newly, b)
				return nil, false
			}
			continue
		}
		if s.opts.Admissible != nil && !s.opts.Admissible(pat, val) {
			s.retract(newly, b)
			return nil, false
		}
		if s.opts.Injective && s.used[val] > 0 {
			s.retract(newly, b)
			return nil, false
		}
		b[pat] = val
		if s.opts.Injective {
			s.used[val]++
		}
		newly = append(newly, pat)
	}
	return newly, true
}

func (s *Solver) retract(newly []term.Term, b Binding) {
	for _, u := range newly {
		if s.opts.Injective {
			v := b[u]
			s.used[v]--
			if s.used[v] == 0 {
				delete(s.used, v)
			}
		}
		delete(b, u)
	}
}

// Unknowns returns the distinct unknowns occurring in the patterns, in
// canonical order.
func Unknowns(patterns []graph.Triple, isUnknown func(term.Term) bool) []term.Term {
	if isUnknown == nil {
		isUnknown = defaultIsUnknown
	}
	set := make(map[term.Term]struct{})
	for _, p := range patterns {
		for _, x := range p.Terms() {
			if isUnknown(x) {
				set[x] = struct{}{}
			}
		}
	}
	out := make([]term.Term, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
