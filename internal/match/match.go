// Package match implements the backtracking pattern-matching engine shared
// by homomorphism (map) search, query evaluation and containment testing.
//
// A problem instance is a set of triple patterns — triples in which some
// positions hold "unknowns" — and a data graph. A solution is a binding of
// every unknown to a term of the data graph such that every instantiated
// pattern is a triple of the data graph. This is exactly:
//
//   - map search μ : G' → G when the unknowns are the blank nodes of G'
//     (Section 2.4 of the paper: entailment characterization), and
//   - matching v(B) ⊆ nf(D) when the unknowns are the query variables of a
//     tableau body B (Definition 4.3).
//
// The engine is dictionary-encoded end-to-end: patterns are interned into
// the data graph's dictionary once at setup, bindings map term IDs to term
// IDs, and candidate generation is a binary-search range scan over the
// graph's sorted SPO/POS/OSP permutations — the inner search loop never
// touches a string. The engine picks the next pattern by estimated
// selectivity (most-constrained-first) using exact range-scan counts;
// ablation A3 in DESIGN.md measures the effect of that heuristic.
package match

import (
	"context"
	"sort"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// Binding assigns data-graph term IDs to unknown term IDs. Resolve IDs
// back to terms through the dictionary of the data graph (Index.Dict).
type Binding map[dict.ID]dict.ID

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Terms decodes the binding to a term-level substitution through d.
func (b Binding) Terms(d *dict.Dict) map[term.Term]term.Term {
	out := make(map[term.Term]term.Term, len(b))
	for k, v := range b {
		out[d.TermOf(k)] = d.TermOf(v)
	}
	return out
}

// Options configures a Solve call.
type Options struct {
	// IsUnknown tells which pattern terms are unknowns to be bound. The
	// default treats query variables as unknowns; homomorphism search
	// passes a predicate that also treats blank nodes as unknowns. It is
	// evaluated once per distinct pattern term at setup, never in the
	// search loop.
	IsUnknown func(term.Term) bool

	// Injective requires pairwise-distinct values for distinct unknowns
	// (used for isomorphism search).
	Injective bool

	// Admissible, when non-nil, filters candidate values per unknown
	// (e.g. "must not be a blank node" for constrained query variables,
	// or "must be a blank node" for isomorphism search). It receives
	// dictionary IDs; resolve them through Index.Dict if needed.
	Admissible func(unknown, value dict.ID) bool

	// NoReorder disables the most-constrained-first heuristic and
	// processes patterns in the order given (ablation A3).
	NoReorder bool

	// MaxSteps bounds the number of search steps (candidate extensions
	// attempted). Zero means unlimited. When the budget is exhausted,
	// Solve returns complete = false.
	MaxSteps int

	// Ctx, when non-nil, is polled periodically inside the search loop.
	// When it is cancelled the search aborts with complete = false and
	// Solver.Err reports the cause, making long homomorphism searches
	// interruptible.
	Ctx context.Context

	// Dict, when non-nil, is the dictionary patterns are interned
	// through instead of the index graph's own. It must resolve the
	// data graph's IDs identically — a scratch overlay of the data
	// dictionary (dict.Scratch) is the intended value — so callers can
	// run searches whose pattern terms (query variables, ground terms
	// absent from the data) never grow the shared data dictionary.
	Dict *dict.Dict
}

func defaultIsUnknown(t term.Term) bool { return t.IsVar() }

// IndexMode selects the index configuration (ablation A1).
type IndexMode int

const (
	// FullIndexes scans the permutation whose prefix covers all bound
	// positions (SPO/POS/OSP range scans).
	FullIndexes IndexMode = iota
	// PredicateOnly narrows only by the predicate position (a common
	// "thin RDF library" design); subject/object filtering backtracks.
	PredicateOnly
	// ScanOnly performs full scans for every pattern (baseline).
	ScanOnly
)

// Index is the matcher's view of a data graph. The heavy lookup
// structures — the sorted ID permutations — live on the graph itself and
// are built lazily and cached there, so constructing an Index is cheap
// and repeated Solve calls share the same scans.
type Index struct {
	g    *graph.Graph
	mode IndexMode
}

// NewIndex builds a full-index view over g.
func NewIndex(g *graph.Graph) *Index { return NewIndexMode(g, FullIndexes) }

// NewIndexMode builds a view over g with the given configuration.
func NewIndexMode(g *graph.Graph, mode IndexMode) *Index {
	return &Index{g: g, mode: mode}
}

// Graph returns the indexed data graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// ExtendedByIDs returns an Index over ix's graph extended by the given
// (well-formed, encoded) triples, preserving the index mode. The
// underlying graph is not mutated and its built permutations are
// extended by merging the sorted delta run, not re-sorted (see
// graph.Graph.ExtendedByIDs) — the index-layer step of incremental
// closure maintenance.
func (ix *Index) ExtendedByIDs(added []dict.Triple3) *Index {
	return &Index{g: ix.g.ExtendedByIDs(added), mode: ix.mode}
}

// Dict returns the dictionary bindings resolve through.
func (ix *Index) Dict() *dict.Dict { return ix.g.Dict() }

// Terms returns the universe of the indexed graph in canonical order.
func (ix *Index) Terms() []term.Term { return ix.g.UniverseList() }

// scanKey narrows a pattern key according to the index mode: modes that
// ignore a position turn it into a wildcard (the search loop re-checks
// every position during unification, so over-approximation is sound).
func (ix *Index) scanKey(key dict.Triple3) dict.Triple3 {
	switch ix.mode {
	case ScanOnly:
		return dict.Triple3{}
	case PredicateOnly:
		return dict.Triple3{dict.Wildcard, key[1], dict.Wildcard}
	default:
		return key
	}
}

// candidates streams the data triples compatible with the pattern key
// under the index mode.
func (ix *Index) candidates(key dict.Triple3, fn func(dict.Triple3) bool) {
	k := ix.scanKey(key)
	ix.g.MatchID(k[0], k[1], k[2], fn)
}

// count returns the number of candidate triples for the pattern key.
func (ix *Index) count(key dict.Triple3) int {
	k := ix.scanKey(key)
	return ix.g.CountID(k[0], k[1], k[2])
}

// Solver runs pattern matching against a fixed Index.
type Solver struct {
	ix    *Index
	opts  Options
	steps int

	poll int             // iteration counter for context polling
	done <-chan struct{} // cached opts.Ctx.Done()
	err  error           // context error observed during the search

	unknown map[dict.ID]bool // pattern terms that are unknowns (per Solve)
	used    map[dict.ID]int  // value -> refcount, for Injective
}

// ctxPollMask controls how often the context is polled: every
// (ctxPollMask+1)-th candidate extension. Polling a channel is cheap but
// not free, so the hot loop only looks at it periodically.
const ctxPollMask = 0xff

// NewSolver creates a solver over the given index with the given options.
func NewSolver(ix *Index, opts Options) *Solver {
	if opts.IsUnknown == nil {
		opts.IsUnknown = defaultIsUnknown
	}
	s := &Solver{ix: ix, opts: opts}
	if opts.Ctx != nil {
		s.done = opts.Ctx.Done()
	}
	if opts.Injective {
		s.used = make(map[dict.ID]int)
	}
	return s
}

// Err returns the context error that aborted the last Solve call, or nil
// if the search was not cancelled.
func (s *Solver) Err() error { return s.err }

// interrupted polls the context (on the first candidate and every
// ctxPollMask+1 calls thereafter, so even tiny searches observe a
// cancelled context) and records its error when cancelled.
func (s *Solver) interrupted() bool {
	if s.done == nil {
		return false
	}
	poll := s.poll&ctxPollMask == 0
	s.poll++
	if !poll {
		return false
	}
	select {
	case <-s.done:
		s.err = s.opts.Ctx.Err()
		return true
	default:
		return false
	}
}

// encode interns the patterns into the solver's dictionary (Options.Dict
// if set, otherwise the data dictionary) and records which pattern IDs
// are unknowns. Ground pattern terms absent from the data receive fresh
// IDs that match no triple, which is the correct failure.
func (s *Solver) encode(patterns []graph.Triple) []dict.Triple3 {
	d := s.opts.Dict
	if d == nil {
		d = s.ix.Dict()
	}
	s.unknown = make(map[dict.ID]bool)
	out := make([]dict.Triple3, len(patterns))
	for i, p := range patterns {
		for j, x := range p.Terms() {
			id := d.Intern(x)
			out[i][j] = id
			if _, seen := s.unknown[id]; !seen {
				s.unknown[id] = s.opts.IsUnknown(x)
			}
		}
	}
	return out
}

// resolveKey substitutes bound unknowns into the pattern, leaving
// Wildcard at unbound positions.
func (s *Solver) resolveKey(p dict.Triple3, b Binding) dict.Triple3 {
	var key dict.Triple3
	for i, id := range p {
		if !s.unknown[id] {
			key[i] = id
		} else if v, ok := b[id]; ok {
			key[i] = v
		} else {
			key[i] = dict.Wildcard
		}
	}
	return key
}

// Solve enumerates bindings that satisfy all patterns, invoking yield for
// each. If yield returns false the search stops (reported as complete).
// The returned flag is false only if the MaxSteps budget was exhausted
// before the search space was covered.
func (s *Solver) Solve(patterns []graph.Triple, yield func(Binding) bool) (complete bool) {
	s.steps = 0
	s.err = nil
	encoded := s.encode(patterns)
	b := make(Binding)
	stopped := false
	ok := s.solve(encoded, b, func(bind Binding) bool {
		if !yield(bind) {
			stopped = true
			return false
		}
		return true
	})
	return ok || stopped
}

// Solve is a convenience entry point building a one-shot solver.
func Solve(patterns []graph.Triple, data *graph.Graph, opts Options, yield func(Binding) bool) bool {
	return NewSolver(NewIndex(data), opts).Solve(patterns, yield)
}

// SolveCtx is Solve under a context: the search polls ctx periodically
// and returns its error if it was cancelled before the space was covered.
func SolveCtx(ctx context.Context, patterns []graph.Triple, data *graph.Graph, opts Options, yield func(Binding) bool) error {
	opts.Ctx = ctx
	s := NewSolver(NewIndex(data), opts)
	s.Solve(patterns, yield)
	return s.Err()
}

// First returns the first solution found, if any. The bool result is the
// completeness flag of the underlying search: if false and no solution was
// found, the search was inconclusive (budget exhausted).
func (s *Solver) First(patterns []graph.Triple) (Binding, bool, bool) {
	var found Binding
	complete := s.Solve(patterns, func(b Binding) bool {
		found = b.Clone()
		return false
	})
	return found, found != nil, complete
}

func (s *Solver) solve(remaining []dict.Triple3, b Binding, yield func(Binding) bool) bool {
	if len(remaining) == 0 {
		return yield(b)
	}

	// Pick the next pattern: most-constrained-first unless disabled. The
	// selectivity estimate is an exact range-scan count (two binary
	// searches per pattern), not a materialized candidate list.
	pick := 0
	if !s.opts.NoReorder {
		best := -1
		for i, p := range remaining {
			n := s.ix.count(s.resolveKey(p, b))
			if best == -1 || n < best {
				best = n
				pick = i
				if n == 0 {
					break
				}
			}
		}
	}
	p := remaining[pick]
	rest := make([]dict.Triple3, 0, len(remaining)-1)
	rest = append(rest, remaining[:pick]...)
	rest = append(rest, remaining[pick+1:]...)

	ok := true
	s.ix.candidates(s.resolveKey(p, b), func(cand dict.Triple3) bool {
		if s.interrupted() {
			ok = false
			return false
		}
		if s.opts.MaxSteps > 0 {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				ok = false
				return false
			}
		}
		newly, unified := s.unify(p, cand, b)
		if !unified {
			return true
		}
		if !s.solve(rest, b, yield) {
			s.retract(newly, b)
			ok = false
			return false
		}
		s.retract(newly, b)
		return true
	})
	return ok
}

// unify extends b so that pattern p instantiates to triple cand. It
// returns the unknowns newly bound (for backtracking) and whether
// unification succeeded. All comparisons are integer ID comparisons.
func (s *Solver) unify(p, cand dict.Triple3, b Binding) ([3]dict.ID, bool) {
	var newly [3]dict.ID // 0 (Wildcard) slots are unused
	for i := 0; i < 3; i++ {
		pat, val := p[i], cand[i]
		if !s.unknown[pat] {
			if pat != val {
				s.retract(newly, b)
				return newly, false
			}
			continue
		}
		if bound, ok := b[pat]; ok {
			if bound != val {
				s.retract(newly, b)
				return newly, false
			}
			continue
		}
		if s.opts.Admissible != nil && !s.opts.Admissible(pat, val) {
			s.retract(newly, b)
			return newly, false
		}
		if s.opts.Injective && s.used[val] > 0 {
			s.retract(newly, b)
			return newly, false
		}
		b[pat] = val
		if s.opts.Injective {
			s.used[val]++
		}
		newly[i] = pat
	}
	return newly, true
}

func (s *Solver) retract(newly [3]dict.ID, b Binding) {
	for _, u := range newly {
		if u == dict.Wildcard {
			continue
		}
		if s.opts.Injective {
			v := b[u]
			s.used[v]--
			if s.used[v] == 0 {
				delete(s.used, v)
			}
		}
		delete(b, u)
	}
}

// Unknowns returns the distinct unknowns occurring in the patterns, in
// canonical order.
func Unknowns(patterns []graph.Triple, isUnknown func(term.Term) bool) []term.Term {
	if isUnknown == nil {
		isUnknown = defaultIsUnknown
	}
	set := make(map[term.Term]struct{})
	for _, p := range patterns {
		for _, x := range p.Terms() {
			if isUnknown(x) {
				set[x] = struct{}{}
			}
		}
	}
	out := make([]term.Term, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
