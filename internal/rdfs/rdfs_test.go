package rdfs

import (
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

func TestVocabulary(t *testing.T) {
	v := Vocabulary()
	if len(v) != 5 {
		t.Fatalf("rdfsV has %d elements, want 5", len(v))
	}
	for _, x := range v {
		if !IsVocabulary(x) {
			t.Errorf("%v not recognized as vocabulary", x)
		}
	}
	if IsVocabulary(iri("http://ex.org/p")) {
		t.Error("ordinary IRI recognized as vocabulary")
	}
	if IsVocabulary(blk("x")) {
		t.Error("blank recognized as vocabulary")
	}
}

func TestIsSimple(t *testing.T) {
	simple := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	if !IsSimple(simple) {
		t.Error("vocabulary-free graph must be simple")
	}
	withSC := graph.New(graph.T(iri("a"), SubClassOf, iri("b")))
	if IsSimple(withSC) {
		t.Error("graph with sc must not be simple")
	}
	// Vocabulary in subject position also breaks simplicity.
	withVocabSubj := graph.New(graph.T(Type, iri("p"), iri("b")))
	if IsSimple(withVocabSubj) {
		t.Error("graph mentioning type in subject must not be simple")
	}
}

func TestMentionsVocabularyOutsidePredicate(t *testing.T) {
	ok := graph.New(
		graph.T(iri("a"), SubClassOf, iri("b")),
		graph.T(iri("x"), Type, iri("a")),
	)
	if MentionsVocabularyOutsidePredicate(ok) {
		t.Error("vocabulary in predicate position only must be fine")
	}
	bad := graph.New(graph.T(iri("q"), SubPropertyOf, Domain))
	if !MentionsVocabularyOutsidePredicate(bad) {
		t.Error("dom in object position not detected")
	}
}

func mustValidate(t *testing.T, in Instantiation) {
	t.Helper()
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate(%v) = %v", in, err)
	}
}

func TestRuleInstantiationsTransitivity(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), SubPropertyOf, iri("b")),
		graph.T(iri("b"), SubPropertyOf, iri("c")),
	)
	insts := Instantiations(g, RuleSubPropTrans)
	found := false
	for _, in := range insts {
		mustValidate(t, in)
		if in.Conclusions[0] == graph.T(iri("a"), SubPropertyOf, iri("c")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("transitivity conclusion missing in %v", insts)
	}
}

func TestRuleInheritance(t *testing.T) {
	g := graph.New(
		graph.T(iri("p"), SubPropertyOf, iri("q")),
		graph.T(iri("x"), iri("p"), iri("y")),
	)
	insts := Instantiations(g, RuleSubPropInherit)
	found := false
	for _, in := range insts {
		mustValidate(t, in)
		if in.Conclusions[0] == graph.T(iri("x"), iri("q"), iri("y")) {
			found = true
		}
	}
	if !found {
		t.Fatal("inheritance conclusion missing")
	}
}

func TestRuleInheritanceSkipsBlankSuperproperty(t *testing.T) {
	// (p, sp, _:B), (x, p, y) must NOT instantiate rule (3): the
	// conclusion would have a blank predicate.
	g := graph.New(
		graph.T(iri("p"), SubPropertyOf, blk("B")),
		graph.T(iri("x"), iri("p"), iri("y")),
	)
	if insts := Instantiations(g, RuleSubPropInherit); len(insts) != 0 {
		t.Fatalf("ill-formed instantiations produced: %v", insts)
	}
}

func TestRuleDomainTyping(t *testing.T) {
	g := graph.New(
		graph.T(iri("p"), Domain, iri("C")),
		graph.T(iri("q"), SubPropertyOf, iri("p")),
		graph.T(iri("x"), iri("q"), iri("y")),
	)
	insts := Instantiations(g, RuleDomainTyping)
	found := false
	for _, in := range insts {
		mustValidate(t, in)
		if in.Conclusions[0] == graph.T(iri("x"), Type, iri("C")) {
			found = true
		}
	}
	if !found {
		t.Fatal("domain typing conclusion missing")
	}
}

func TestRuleRangeTyping(t *testing.T) {
	g := graph.New(
		graph.T(iri("p"), Range, iri("C")),
		graph.T(iri("q"), SubPropertyOf, iri("p")),
		graph.T(iri("x"), iri("q"), iri("y")),
	)
	insts := Instantiations(g, RuleRangeTyping)
	found := false
	for _, in := range insts {
		mustValidate(t, in)
		if in.Conclusions[0] == graph.T(iri("y"), Type, iri("C")) {
			found = true
		}
	}
	if !found {
		t.Fatal("range typing conclusion missing")
	}
}

func TestReflexivityRules(t *testing.T) {
	g := graph.New(
		graph.T(iri("x"), iri("p"), iri("y")),
		graph.T(iri("a"), SubPropertyOf, iri("b")),
		graph.T(iri("c"), SubClassOf, iri("d")),
		graph.T(iri("q"), Domain, iri("C")),
		graph.T(iri("z"), Type, iri("D")),
	)
	has := func(rule RuleID, want graph.Triple) bool {
		for _, in := range Instantiations(g, rule) {
			mustValidate(t, in)
			for _, c := range in.Conclusions {
				if c == want {
					return true
				}
			}
		}
		return false
	}
	checks := []struct {
		rule RuleID
		want graph.Triple
	}{
		{RuleSubPropReflPred, graph.T(iri("p"), SubPropertyOf, iri("p"))},
		{RuleSubPropReflVocab, graph.T(Type, SubPropertyOf, Type)},
		{RuleSubPropReflDomRange, graph.T(iri("q"), SubPropertyOf, iri("q"))},
		{RuleSubPropReflEdge, graph.T(iri("a"), SubPropertyOf, iri("a"))},
		{RuleSubPropReflEdge, graph.T(iri("b"), SubPropertyOf, iri("b"))},
		{RuleSubClassReflObj, graph.T(iri("C"), SubClassOf, iri("C"))},
		{RuleSubClassReflObj, graph.T(iri("D"), SubClassOf, iri("D"))},
		{RuleSubClassReflEdge, graph.T(iri("c"), SubClassOf, iri("c"))},
		{RuleSubClassReflEdge, graph.T(iri("d"), SubClassOf, iri("d"))},
	}
	for _, c := range checks {
		if !has(c.rule, c.want) {
			t.Errorf("%v: missing conclusion %v", c.rule, c.want)
		}
	}
}

func TestValidateRejectsWrongShapes(t *testing.T) {
	bad := []Instantiation{
		{ // wrong predicate in transitivity
			Rule: RuleSubPropTrans,
			Antecedents: []graph.Triple{
				graph.T(iri("a"), SubClassOf, iri("b")),
				graph.T(iri("b"), SubClassOf, iri("c")),
			},
			Conclusions: []graph.Triple{graph.T(iri("a"), SubClassOf, iri("c"))},
		},
		{ // broken chain
			Rule: RuleSubPropTrans,
			Antecedents: []graph.Triple{
				graph.T(iri("a"), SubPropertyOf, iri("b")),
				graph.T(iri("z"), SubPropertyOf, iri("c")),
			},
			Conclusions: []graph.Triple{graph.T(iri("a"), SubPropertyOf, iri("c"))},
		},
		{ // rule 9 with non-vocabulary
			Rule:        RuleSubPropReflVocab,
			Conclusions: []graph.Triple{graph.T(iri("p"), SubPropertyOf, iri("p"))},
		},
		{ // wrong arity
			Rule:        RuleSubClassReflEdge,
			Antecedents: []graph.Triple{graph.T(iri("a"), SubClassOf, iri("b"))},
			Conclusions: []graph.Triple{graph.T(iri("a"), SubClassOf, iri("a"))},
		},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid instantiation accepted: %v", i, in)
		}
	}
}

func TestAllInstantiationsCoverRules(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), SubPropertyOf, iri("b")),
		graph.T(iri("b"), SubPropertyOf, iri("c")),
		graph.T(iri("x"), iri("a"), iri("y")),
		graph.T(iri("A"), SubClassOf, iri("B")),
		graph.T(iri("B"), SubClassOf, iri("C")),
		graph.T(iri("u"), Type, iri("A")),
		// dom/range sit on the *super*property b so that the (C,sp,A)
		// antecedent of rules (6)/(7) is satisfiable from base triples.
		graph.T(iri("b"), Domain, iri("A")),
		graph.T(iri("b"), Range, iri("B")),
	)
	seen := map[RuleID]bool{}
	for _, in := range AllInstantiations(g) {
		mustValidate(t, in)
		seen[in.Rule] = true
	}
	for _, r := range DeductiveRules() {
		if !seen[r] {
			t.Errorf("rule %v produced no instantiation on a graph exercising it", r)
		}
	}
}

func TestProofVerifyAndProve(t *testing.T) {
	// G: schema with sp/sc/dom; H a consequence with a blank.
	g := graph.New(
		graph.T(iri("son"), SubPropertyOf, iri("child")),
		graph.T(iri("child"), SubPropertyOf, iri("descendant")),
		graph.T(iri("tom"), iri("son"), iri("mary")),
	)
	h := graph.New(
		graph.T(iri("tom"), iri("descendant"), iri("mary")),
		graph.T(blk("Someone"), iri("child"), iri("mary")),
	)
	proof, ok := Prove(g, h)
	if !ok {
		t.Fatal("expected a proof")
	}
	if err := proof.Verify(g, h); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
	if proof.Len() == 0 {
		t.Fatal("empty proof")
	}
}

func TestProveFailsOnNonConsequence(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	h := graph.New(graph.T(iri("a"), iri("q"), iri("b")))
	if _, ok := Prove(g, h); ok {
		t.Fatal("proved a non-consequence")
	}
}

func TestVerifyRejectsBrokenProofs(t *testing.T) {
	g := graph.New(graph.T(iri("a"), SubPropertyOf, iri("b")))
	h := graph.New(
		graph.T(iri("a"), SubPropertyOf, iri("b")),
		graph.T(iri("a"), SubPropertyOf, iri("c")),
	)
	// A proof applying transitivity with a missing antecedent.
	p := &Proof{Steps: []Step{{
		Rule: RuleSubPropTrans,
		Inst: Instantiation{
			Rule: RuleSubPropTrans,
			Antecedents: []graph.Triple{
				graph.T(iri("a"), SubPropertyOf, iri("b")),
				graph.T(iri("b"), SubPropertyOf, iri("c")), // not in G
			},
			Conclusions: []graph.Triple{graph.T(iri("a"), SubPropertyOf, iri("c"))},
		},
	}}}
	if err := p.Verify(g, h); err == nil {
		t.Fatal("broken proof verified")
	}
	// A proof whose final graph is not H.
	empty := &Proof{}
	if err := empty.Verify(g, h); err == nil {
		t.Fatal("empty proof cannot derive a larger H")
	}
}

func TestVerifyExistentialStep(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	h := graph.New(graph.T(blk("X"), iri("p"), iri("b")))
	p := &Proof{Steps: []Step{{
		Rule:   RuleExistential,
		Result: h,
		Mu:     graph.Map{blk("X"): iri("a")},
	}}}
	if err := p.Verify(g, h); err != nil {
		t.Fatalf("existential step rejected: %v", err)
	}
	// Wrong map: image not a subgraph.
	bad := &Proof{Steps: []Step{{
		Rule:   RuleExistential,
		Result: h,
		Mu:     graph.Map{blk("X"): iri("z")},
	}}}
	if err := bad.Verify(g, h); err == nil {
		t.Fatal("bad existential step accepted")
	}
}

func TestProveExample31FromPaper(t *testing.T) {
	// Fig. 1 flavored: dom/range typing through subproperty.
	g := graph.New(
		graph.T(iri("paints"), SubPropertyOf, iri("creates")),
		graph.T(iri("creates"), Domain, iri("Artist")),
		graph.T(iri("creates"), Range, iri("Artifact")),
		graph.T(iri("Picasso"), iri("paints"), iri("Guernica")),
	)
	h := graph.New(
		graph.T(iri("Picasso"), Type, iri("Artist")),
		graph.T(iri("Guernica"), Type, iri("Artifact")),
		graph.T(iri("Picasso"), iri("creates"), iri("Guernica")),
	)
	proof, ok := Prove(g, h)
	if !ok {
		t.Fatal("expected a proof")
	}
	if err := proof.Verify(g, h); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRuleStringNames(t *testing.T) {
	for r := RuleID(1); r <= 13; r++ {
		if r.String() == "" {
			t.Errorf("rule %d has no name", r)
		}
	}
}
