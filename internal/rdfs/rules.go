package rdfs

import (
	"fmt"

	"semwebdb/internal/graph"
)

// RuleID identifies a rule of the deductive system (Section 2.3.2). The
// numbering follows the paper exactly.
type RuleID int

const (
	// RuleExistential is GROUP A, rule (1): from G derive any G' with a
	// map μ : G' → G.
	RuleExistential RuleID = 1
	// RuleSubPropTrans is rule (2): (A,sp,B),(B,sp,C) ⊢ (A,sp,C).
	RuleSubPropTrans RuleID = 2
	// RuleSubPropInherit is rule (3): (A,sp,B),(X,A,Y) ⊢ (X,B,Y).
	RuleSubPropInherit RuleID = 3
	// RuleSubClassTrans is rule (4): (A,sc,B),(B,sc,C) ⊢ (A,sc,C).
	RuleSubClassTrans RuleID = 4
	// RuleTypeLift is rule (5): (A,sc,B),(X,type,A) ⊢ (X,type,B).
	RuleTypeLift RuleID = 5
	// RuleDomainTyping is rule (6): (A,dom,B),(C,sp,A),(X,C,Y) ⊢ (X,type,B).
	RuleDomainTyping RuleID = 6
	// RuleRangeTyping is rule (7): (A,range,B),(C,sp,A),(X,C,Y) ⊢ (Y,type,B).
	RuleRangeTyping RuleID = 7
	// RuleSubPropReflPred is rule (8): (X,A,Y) ⊢ (A,sp,A).
	RuleSubPropReflPred RuleID = 8
	// RuleSubPropReflVocab is rule (9): ⊢ (p,sp,p) for p ∈ rdfsV.
	RuleSubPropReflVocab RuleID = 9
	// RuleSubPropReflDomRange is rule (10): (A,p,X) ⊢ (A,sp,A), p ∈ {dom,range}.
	RuleSubPropReflDomRange RuleID = 10
	// RuleSubPropReflEdge is rule (11): (A,sp,B) ⊢ (A,sp,A), (B,sp,B).
	RuleSubPropReflEdge RuleID = 11
	// RuleSubClassReflObj is rule (12): (X,p,A) ⊢ (A,sc,A), p ∈ {dom,range,type}.
	RuleSubClassReflObj RuleID = 12
	// RuleSubClassReflEdge is rule (13): (A,sc,B) ⊢ (A,sc,A), (B,sc,B).
	RuleSubClassReflEdge RuleID = 13
)

// String names the rule with its paper group.
func (r RuleID) String() string {
	switch r {
	case RuleExistential:
		return "rule(1)/existential"
	case RuleSubPropTrans:
		return "rule(2)/sp-transitivity"
	case RuleSubPropInherit:
		return "rule(3)/sp-inheritance"
	case RuleSubClassTrans:
		return "rule(4)/sc-transitivity"
	case RuleTypeLift:
		return "rule(5)/type-lifting"
	case RuleDomainTyping:
		return "rule(6)/domain-typing"
	case RuleRangeTyping:
		return "rule(7)/range-typing"
	case RuleSubPropReflPred:
		return "rule(8)/sp-reflexivity-predicate"
	case RuleSubPropReflVocab:
		return "rule(9)/sp-reflexivity-vocabulary"
	case RuleSubPropReflDomRange:
		return "rule(10)/sp-reflexivity-domrange"
	case RuleSubPropReflEdge:
		return "rule(11)/sp-reflexivity-edge"
	case RuleSubClassReflObj:
		return "rule(12)/sc-reflexivity-object"
	case RuleSubClassReflEdge:
		return "rule(13)/sc-reflexivity-edge"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// DeductiveRules lists the rules with triple-pattern shape, i.e. rules
// (2)–(13); rule (1) is the existential (map) rule and is handled apart.
func DeductiveRules() []RuleID {
	return []RuleID{
		RuleSubPropTrans, RuleSubPropInherit, RuleSubClassTrans,
		RuleTypeLift, RuleDomainTyping, RuleRangeTyping,
		RuleSubPropReflPred, RuleSubPropReflVocab, RuleSubPropReflDomRange,
		RuleSubPropReflEdge, RuleSubClassReflObj, RuleSubClassReflEdge,
	}
}

// Instantiation is an instantiation R/R' of a rule (2)–(13): a uniform
// replacement of the rule's variables by elements of UB such that all
// obtained triples are well-formed RDF triples (Section 2.3.2).
type Instantiation struct {
	Rule        RuleID
	Antecedents []graph.Triple // R: must be present in the current graph
	Conclusions []graph.Triple // R': added by the step
}

// String renders the instantiation as "R ⊢ R'".
func (in Instantiation) String() string {
	s := in.Rule.String() + ":"
	for _, a := range in.Antecedents {
		s += " [" + a.String() + "]"
	}
	s += " ⊢"
	for _, c := range in.Conclusions {
		s += " [" + c.String() + "]"
	}
	return s
}

// Validate checks that the instantiation has the shape demanded by its
// rule and that all its triples are well-formed.
func (in Instantiation) Validate() error {
	for _, t := range append(append([]graph.Triple{}, in.Antecedents...), in.Conclusions...) {
		if !t.WellFormed() {
			return fmt.Errorf("rdfs: ill-formed triple %s in instantiation of %s", t, in.Rule)
		}
	}
	bad := func(format string, args ...any) error {
		return fmt.Errorf("rdfs: invalid instantiation of %s: %s", in.Rule, fmt.Sprintf(format, args...))
	}
	need := func(nAnt, nCon int) error {
		if len(in.Antecedents) != nAnt || len(in.Conclusions) != nCon {
			return bad("want %d antecedents and %d conclusions, got %d/%d",
				nAnt, nCon, len(in.Antecedents), len(in.Conclusions))
		}
		return nil
	}
	switch in.Rule {
	case RuleSubPropTrans:
		if err := need(2, 1); err != nil {
			return err
		}
		a0, a1, c := in.Antecedents[0], in.Antecedents[1], in.Conclusions[0]
		if a0.P != SubPropertyOf || a1.P != SubPropertyOf || c.P != SubPropertyOf {
			return bad("predicates must be sp")
		}
		if a0.O != a1.S || c.S != a0.S || c.O != a1.O {
			return bad("transitivity chain mismatch")
		}
	case RuleSubPropInherit:
		if err := need(2, 1); err != nil {
			return err
		}
		sp, body, c := in.Antecedents[0], in.Antecedents[1], in.Conclusions[0]
		if sp.P != SubPropertyOf {
			return bad("first antecedent must be an sp triple")
		}
		if body.P != sp.S {
			return bad("second antecedent's predicate must be the subproperty")
		}
		if c.S != body.S || c.P != sp.O || c.O != body.O {
			return bad("conclusion must lift the predicate to the superproperty")
		}
	case RuleSubClassTrans:
		if err := need(2, 1); err != nil {
			return err
		}
		a0, a1, c := in.Antecedents[0], in.Antecedents[1], in.Conclusions[0]
		if a0.P != SubClassOf || a1.P != SubClassOf || c.P != SubClassOf {
			return bad("predicates must be sc")
		}
		if a0.O != a1.S || c.S != a0.S || c.O != a1.O {
			return bad("transitivity chain mismatch")
		}
	case RuleTypeLift:
		if err := need(2, 1); err != nil {
			return err
		}
		sc, ty, c := in.Antecedents[0], in.Antecedents[1], in.Conclusions[0]
		if sc.P != SubClassOf || ty.P != Type || c.P != Type {
			return bad("want sc and type antecedents, type conclusion")
		}
		if ty.O != sc.S || c.S != ty.S || c.O != sc.O {
			return bad("type lifting mismatch")
		}
	case RuleDomainTyping:
		if err := need(3, 1); err != nil {
			return err
		}
		dm, sp, body, c := in.Antecedents[0], in.Antecedents[1], in.Antecedents[2], in.Conclusions[0]
		if dm.P != Domain || sp.P != SubPropertyOf || c.P != Type {
			return bad("want dom, sp antecedents and type conclusion")
		}
		if sp.O != dm.S || body.P != sp.S {
			return bad("sp chain mismatch: need (A,dom,B),(C,sp,A),(X,C,Y)")
		}
		if c.S != body.S || c.O != dm.O {
			return bad("conclusion must be (X,type,B)")
		}
	case RuleRangeTyping:
		if err := need(3, 1); err != nil {
			return err
		}
		rg, sp, body, c := in.Antecedents[0], in.Antecedents[1], in.Antecedents[2], in.Conclusions[0]
		if rg.P != Range || sp.P != SubPropertyOf || c.P != Type {
			return bad("want range, sp antecedents and type conclusion")
		}
		if sp.O != rg.S || body.P != sp.S {
			return bad("sp chain mismatch: need (A,range,B),(C,sp,A),(X,C,Y)")
		}
		if c.S != body.O || c.O != rg.O {
			return bad("conclusion must be (Y,type,B)")
		}
	case RuleSubPropReflPred:
		if err := need(1, 1); err != nil {
			return err
		}
		a, c := in.Antecedents[0], in.Conclusions[0]
		if c.P != SubPropertyOf || c.S != a.P || c.O != a.P {
			return bad("conclusion must be (A,sp,A) for the antecedent's predicate")
		}
	case RuleSubPropReflVocab:
		if err := need(0, 1); err != nil {
			return err
		}
		c := in.Conclusions[0]
		if c.P != SubPropertyOf || c.S != c.O || !IsVocabulary(c.S) {
			return bad("conclusion must be (p,sp,p) with p ∈ rdfsV")
		}
	case RuleSubPropReflDomRange:
		if err := need(1, 1); err != nil {
			return err
		}
		a, c := in.Antecedents[0], in.Conclusions[0]
		if a.P != Domain && a.P != Range {
			return bad("antecedent must be a dom or range triple")
		}
		if c.P != SubPropertyOf || c.S != a.S || c.O != a.S {
			return bad("conclusion must be (A,sp,A) for the antecedent's subject")
		}
	case RuleSubPropReflEdge:
		if err := need(1, 2); err != nil {
			return err
		}
		a := in.Antecedents[0]
		if a.P != SubPropertyOf {
			return bad("antecedent must be an sp triple")
		}
		c0, c1 := in.Conclusions[0], in.Conclusions[1]
		if c0.P != SubPropertyOf || c0.S != a.S || c0.O != a.S ||
			c1.P != SubPropertyOf || c1.S != a.O || c1.O != a.O {
			return bad("conclusions must be (A,sp,A) and (B,sp,B)")
		}
	case RuleSubClassReflObj:
		if err := need(1, 1); err != nil {
			return err
		}
		a, c := in.Antecedents[0], in.Conclusions[0]
		if a.P != Domain && a.P != Range && a.P != Type {
			return bad("antecedent must be a dom, range or type triple")
		}
		if c.P != SubClassOf || c.S != a.O || c.O != a.O {
			return bad("conclusion must be (A,sc,A) for the antecedent's object")
		}
	case RuleSubClassReflEdge:
		if err := need(1, 2); err != nil {
			return err
		}
		a := in.Antecedents[0]
		if a.P != SubClassOf {
			return bad("antecedent must be an sc triple")
		}
		c0, c1 := in.Conclusions[0], in.Conclusions[1]
		if c0.P != SubClassOf || c0.S != a.S || c0.O != a.S ||
			c1.P != SubClassOf || c1.S != a.O || c1.O != a.O {
			return bad("conclusions must be (A,sc,A) and (B,sc,B)")
		}
	default:
		return fmt.Errorf("rdfs: rule %s has no triple-pattern shape", in.Rule)
	}
	return nil
}

// Instantiations enumerates all instantiations of the given rule whose
// antecedents are triples of g and whose conclusions are well-formed.
// Ill-formed instantiations (e.g. a blank superproperty flowing into a
// predicate position under rule (3)) are skipped, implementing the
// side-condition of Section 2.3.2 directly.
func Instantiations(g *graph.Graph, rule RuleID) []Instantiation {
	var out []Instantiation
	emit := func(ants []graph.Triple, cons ...graph.Triple) {
		for _, c := range cons {
			if !c.WellFormed() {
				return
			}
		}
		out = append(out, Instantiation{Rule: rule, Antecedents: ants, Conclusions: cons})
	}
	switch rule {
	case RuleSubPropTrans:
		sps := g.WithPredicate(SubPropertyOf)
		for _, t1 := range sps {
			for _, t2 := range sps {
				if t1.O == t2.S {
					emit([]graph.Triple{t1, t2}, graph.T(t1.S, SubPropertyOf, t2.O))
				}
			}
		}
	case RuleSubPropInherit:
		sps := g.WithPredicate(SubPropertyOf)
		for _, sp := range sps {
			if !sp.O.CanPredicate() {
				continue
			}
			for _, body := range g.WithPredicate(sp.S) {
				emit([]graph.Triple{sp, body}, graph.T(body.S, sp.O, body.O))
			}
		}
	case RuleSubClassTrans:
		scs := g.WithPredicate(SubClassOf)
		for _, t1 := range scs {
			for _, t2 := range scs {
				if t1.O == t2.S {
					emit([]graph.Triple{t1, t2}, graph.T(t1.S, SubClassOf, t2.O))
				}
			}
		}
	case RuleTypeLift:
		scs := g.WithPredicate(SubClassOf)
		tys := g.WithPredicate(Type)
		for _, sc := range scs {
			for _, ty := range tys {
				if ty.O == sc.S {
					emit([]graph.Triple{sc, ty}, graph.T(ty.S, Type, sc.O))
				}
			}
		}
	case RuleDomainTyping:
		doms := g.WithPredicate(Domain)
		sps := g.WithPredicate(SubPropertyOf)
		for _, dm := range doms {
			for _, sp := range sps {
				if sp.O != dm.S || !sp.S.CanPredicate() {
					continue
				}
				for _, body := range g.WithPredicate(sp.S) {
					emit([]graph.Triple{dm, sp, body}, graph.T(body.S, Type, dm.O))
				}
			}
		}
	case RuleRangeTyping:
		rgs := g.WithPredicate(Range)
		sps := g.WithPredicate(SubPropertyOf)
		for _, rg := range rgs {
			for _, sp := range sps {
				if sp.O != rg.S || !sp.S.CanPredicate() {
					continue
				}
				for _, body := range g.WithPredicate(sp.S) {
					emit([]graph.Triple{rg, sp, body}, graph.T(body.O, Type, rg.O))
				}
			}
		}
	case RuleSubPropReflPred:
		for _, t := range g.Triples() {
			emit([]graph.Triple{t}, graph.T(t.P, SubPropertyOf, t.P))
		}
	case RuleSubPropReflVocab:
		for _, p := range Vocabulary() {
			emit(nil, graph.T(p, SubPropertyOf, p))
		}
	case RuleSubPropReflDomRange:
		for _, t := range append(g.WithPredicate(Domain), g.WithPredicate(Range)...) {
			emit([]graph.Triple{t}, graph.T(t.S, SubPropertyOf, t.S))
		}
	case RuleSubPropReflEdge:
		for _, t := range g.WithPredicate(SubPropertyOf) {
			emit([]graph.Triple{t},
				graph.T(t.S, SubPropertyOf, t.S),
				graph.T(t.O, SubPropertyOf, t.O))
		}
	case RuleSubClassReflObj:
		for _, t := range append(append(g.WithPredicate(Domain), g.WithPredicate(Range)...), g.WithPredicate(Type)...) {
			emit([]graph.Triple{t}, graph.T(t.O, SubClassOf, t.O))
		}
	case RuleSubClassReflEdge:
		for _, t := range g.WithPredicate(SubClassOf) {
			emit([]graph.Triple{t},
				graph.T(t.S, SubClassOf, t.S),
				graph.T(t.O, SubClassOf, t.O))
		}
	}
	return out
}

// AllInstantiations enumerates the instantiations of every rule (2)–(13)
// applicable to g.
func AllInstantiations(g *graph.Graph) []Instantiation {
	var out []Instantiation
	for _, r := range DeductiveRules() {
		out = append(out, Instantiations(g, r)...)
	}
	return out
}
