package rdfs

import (
	"fmt"

	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
)

// Step is one step of a proof in the sense of Definition 2.5: either an
// application of the existential rule (1) — replacing the current graph
// P_{j-1} by a graph P_j that maps into it — or the addition of the
// conclusions of an instantiation of one of the rules (2)–(13).
type Step struct {
	Rule RuleID

	// Inst is set for rules (2)–(13).
	Inst Instantiation

	// Result and Mu are set for rule (1): Result is P_j and Mu is the
	// map μ : P_j → P_{j-1} required by the rule.
	Result *graph.Graph
	Mu     graph.Map
}

// Proof is a derivation G ⊢ H: a sequence of graphs P_1 = G, …, P_k = H
// connected by Steps (Definition 2.5).
type Proof struct {
	Steps []Step
}

// Len returns the number of steps.
func (p *Proof) Len() int { return len(p.Steps) }

// Verify checks the proof against Definition 2.5: starting from g, each
// step must be a valid rule application, and the final graph must equal
// h (as a set of triples). It returns the verified final graph on
// success.
func (p *Proof) Verify(g, h *graph.Graph) error {
	cur := g.Clone()
	for i, st := range p.Steps {
		switch {
		case st.Rule == RuleExistential:
			if st.Result == nil {
				return fmt.Errorf("rdfs: step %d: existential step missing result graph", i+1)
			}
			if err := st.Mu.Validate(); err != nil {
				return fmt.Errorf("rdfs: step %d: %v", i+1, err)
			}
			if !st.Mu.Apply(st.Result).SubgraphOf(cur) {
				return fmt.Errorf("rdfs: step %d: μ(P_%d) ⊄ P_%d", i+1, i+2, i+1)
			}
			cur = st.Result.Clone()
		default:
			if err := st.Inst.Validate(); err != nil {
				return fmt.Errorf("rdfs: step %d: %v", i+1, err)
			}
			if st.Inst.Rule != st.Rule {
				return fmt.Errorf("rdfs: step %d: rule mismatch %s vs %s", i+1, st.Rule, st.Inst.Rule)
			}
			for _, a := range st.Inst.Antecedents {
				if !cur.Has(a) {
					return fmt.Errorf("rdfs: step %d: antecedent %s not in current graph", i+1, a)
				}
			}
			for _, c := range st.Inst.Conclusions {
				cur.Add(c)
			}
		}
	}
	if !cur.Equal(h) {
		return fmt.Errorf("rdfs: proof derives a graph with %d triples, want H with %d", cur.Len(), h.Len())
	}
	return nil
}

// derivation holds the forward-chaining state used to build proofs: for
// every derived triple, the instantiation that first produced it.
type derivation struct {
	closure *graph.Graph
	origin  map[graph.Triple]Instantiation // only for derived (non-input) triples
	order   []graph.Triple                 // derivation order of derived triples
}

// forwardChain saturates g under rules (2)–(13), recording provenance.
func forwardChain(g *graph.Graph) *derivation {
	d := &derivation{
		closure: g.Clone(),
		origin:  make(map[graph.Triple]Instantiation),
	}
	for {
		added := false
		for _, inst := range AllInstantiations(d.closure) {
			for _, c := range inst.Conclusions {
				if d.closure.Has(c) {
					continue
				}
				// All conclusions of a multi-conclusion rule share one
				// instantiation; record it for each new triple.
				d.closure.MustAdd(c)
				d.origin[c] = inst
				d.order = append(d.order, c)
				added = true
			}
		}
		if !added {
			return d
		}
	}
}

// Prove searches for a proof of h from g. It implements the completeness
// direction of Theorem 2.6 constructively: saturate g under rules
// (2)–(13) (this is RDFS-cl(g)), search a map μ : h → RDFS-cl(g), and if
// found emit the rule steps needed to derive the triples in the image of
// μ, followed by a single existential step. The proof is trimmed to the
// steps actually needed (backward reachability over provenance).
func Prove(g, h *graph.Graph) (*Proof, bool) {
	d := forwardChain(g)
	mu, ok := findMapInto(h, d.closure)
	if !ok {
		return nil, false
	}

	// Needed derived triples: those in μ(h) that are not in g, plus the
	// provenance closure of their antecedents.
	needed := make(map[graph.Triple]bool)
	var require func(t graph.Triple)
	require = func(t graph.Triple) {
		if g.Has(t) || needed[t] {
			return
		}
		inst, isDerived := d.origin[t]
		if !isDerived {
			return
		}
		needed[t] = true
		for _, a := range inst.Antecedents {
			require(a)
		}
	}
	mu.Apply(h).Each(func(t graph.Triple) bool {
		require(t)
		return true
	})

	proof := &Proof{}
	emitted := make(map[graph.Triple]bool)
	for _, t := range d.order { // derivation order respects dependencies
		if !needed[t] || emitted[t] {
			continue
		}
		inst := d.origin[t]
		proof.Steps = append(proof.Steps, Step{Rule: inst.Rule, Inst: inst})
		for _, c := range inst.Conclusions {
			emitted[c] = true
		}
	}
	proof.Steps = append(proof.Steps, Step{
		Rule:   RuleExistential,
		Result: h.Clone(),
		Mu:     mu,
	})
	return proof, true
}

// findMapInto searches a map μ : src → dst via the shared engine.
func findMapInto(src, dst *graph.Graph) (graph.Map, bool) {
	return hom.FindMap(src, dst)
}
