// Package rdfs implements the RDFS fragment of the paper: the reserved
// vocabulary rdfsV = {sp, sc, type, dom, range} (Section 2.2) and the
// deductive system of Section 2.3.2 — rules (1) through (13) — together
// with proof objects and a proof checker implementing Definition 2.5.
package rdfs

import (
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// Namespace IRIs of the W3C vocabularies; the abstract model only needs
// five distinguished URIs, and we use their real identities so that the
// parsers and CLIs interoperate with actual RDF data.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
)

// The rdfs-vocabulary rdfsV (Section 2.2, group (a)).
var (
	// SubPropertyOf is rdfs:subPropertyOf, written sp in the paper.
	SubPropertyOf = term.NewIRI(RDFSNS + "subPropertyOf")
	// SubClassOf is rdfs:subClassOf, written sc in the paper.
	SubClassOf = term.NewIRI(RDFSNS + "subClassOf")
	// Type is rdf:type, written type in the paper.
	Type = term.NewIRI(RDFNS + "type")
	// Domain is rdfs:domain, written dom in the paper.
	Domain = term.NewIRI(RDFSNS + "domain")
	// Range is rdfs:range, written range in the paper.
	Range = term.NewIRI(RDFSNS + "range")
)

// Vocabulary returns rdfsV as a slice in the paper's order
// {sp, sc, type, dom, range}.
func Vocabulary() []term.Term {
	return []term.Term{SubPropertyOf, SubClassOf, Type, Domain, Range}
}

// vocabSet is the rdfsV membership set.
var vocabSet = map[term.Term]struct{}{
	SubPropertyOf: {},
	SubClassOf:    {},
	Type:          {},
	Domain:        {},
	Range:         {},
}

// IsVocabulary reports whether x ∈ rdfsV.
func IsVocabulary(x term.Term) bool {
	_, ok := vocabSet[x]
	return ok
}

// IsSimple reports whether G is a simple RDF graph (Definition 2.2):
// rdfsV ∩ voc(G) = ∅.
func IsSimple(g *graph.Graph) bool {
	simple := true
	g.Each(func(t graph.Triple) bool {
		for _, x := range t.Terms() {
			if IsVocabulary(x) {
				simple = false
				return false
			}
		}
		return true
	})
	return simple
}

// MentionsVocabularyOutsidePredicate reports whether any element of rdfsV
// occurs in a subject or object position of G. Graphs without such
// occurrences form the well-behaved class used by Theorem 3.16 and by the
// fast closure-membership procedure.
func MentionsVocabularyOutsidePredicate(g *graph.Graph) bool {
	found := false
	g.Each(func(t graph.Triple) bool {
		if IsVocabulary(t.S) || IsVocabulary(t.O) {
			found = true
			return false
		}
		return true
	})
	return found
}
