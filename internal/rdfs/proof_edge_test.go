package rdfs

import (
	"testing"

	"semwebdb/internal/graph"
)

func TestVerifyRejectsRuleMismatch(t *testing.T) {
	g := graph.New(graph.T(iri("a"), SubPropertyOf, iri("b")))
	h := graph.New(
		graph.T(iri("a"), SubPropertyOf, iri("b")),
		graph.T(iri("a"), SubPropertyOf, iri("a")),
		graph.T(iri("b"), SubPropertyOf, iri("b")),
	)
	// Step whose Rule field disagrees with the instantiation's rule.
	p := &Proof{Steps: []Step{{
		Rule: RuleSubClassTrans,
		Inst: Instantiation{
			Rule:        RuleSubPropReflEdge,
			Antecedents: []graph.Triple{graph.T(iri("a"), SubPropertyOf, iri("b"))},
			Conclusions: []graph.Triple{
				graph.T(iri("a"), SubPropertyOf, iri("a")),
				graph.T(iri("b"), SubPropertyOf, iri("b")),
			},
		},
	}}}
	if err := p.Verify(g, h); err == nil {
		t.Fatal("rule mismatch accepted")
	}
}

func TestVerifyRejectsMissingResultGraph(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	p := &Proof{Steps: []Step{{Rule: RuleExistential}}}
	if err := p.Verify(g, g); err == nil {
		t.Fatal("existential step without result accepted")
	}
}

func TestVerifyRejectsInvalidMap(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	p := &Proof{Steps: []Step{{
		Rule:   RuleExistential,
		Result: g,
		Mu:     graph.Map{iri("a"): iri("b")}, // URI key: invalid map
	}}}
	if err := p.Verify(g, g); err == nil {
		t.Fatal("invalid map accepted")
	}
}

func TestProveSelfIsTrivial(t *testing.T) {
	g := graph.New(
		graph.T(iri("a"), SubClassOf, iri("b")),
		graph.T(iri("x"), Type, iri("a")),
	)
	proof, ok := Prove(g, g)
	if !ok {
		t.Fatal("G ⊢ G must hold")
	}
	if err := proof.Verify(g, g); err != nil {
		t.Fatal(err)
	}
	// The trimmed proof needs no rule steps — only the final existential.
	if proof.Len() != 1 {
		t.Fatalf("self-proof has %d steps, want 1", proof.Len())
	}
}

func TestProveTrimsIrrelevantDerivations(t *testing.T) {
	// A graph with a large derivable closure, but a target needing only
	// one rule application: the proof must stay small.
	g := graph.New(
		graph.T(iri("c1"), SubClassOf, iri("c2")),
		graph.T(iri("c2"), SubClassOf, iri("c3")),
		graph.T(iri("c3"), SubClassOf, iri("c4")),
		graph.T(iri("c4"), SubClassOf, iri("c5")),
		graph.T(iri("p"), SubPropertyOf, iri("q")),
		graph.T(iri("x"), iri("p"), iri("y")),
	)
	h := graph.New(graph.T(iri("x"), iri("q"), iri("y")))
	proof, ok := Prove(g, h)
	if !ok {
		t.Fatal("expected proof")
	}
	if err := proof.Verify(g, h); err != nil {
		t.Fatal(err)
	}
	// One rule (3) application plus the existential step; the sc-chain
	// derivations must have been trimmed away.
	if proof.Len() > 3 {
		t.Fatalf("proof has %d steps; trimming failed", proof.Len())
	}
}

func TestDeepProofChain(t *testing.T) {
	// Transitivity chains require nested antecedent provenance.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.Add(graph.T(iri(string(rune('a'+i))), SubClassOf, iri(string(rune('a'+i+1)))))
	}
	h := graph.New(graph.T(iri("a"), SubClassOf, iri("g")))
	proof, ok := Prove(g, h)
	if !ok {
		t.Fatal("expected proof of the full chain")
	}
	if err := proof.Verify(g, h); err != nil {
		t.Fatal(err)
	}
	// Needs at least 5 transitivity steps.
	if proof.Len() < 5 {
		t.Fatalf("suspiciously short proof: %d steps", proof.Len())
	}
}

func TestInstantiationStringRendering(t *testing.T) {
	in := Instantiation{
		Rule:        RuleSubPropTrans,
		Antecedents: []graph.Triple{graph.T(iri("a"), SubPropertyOf, iri("b")), graph.T(iri("b"), SubPropertyOf, iri("c"))},
		Conclusions: []graph.Triple{graph.T(iri("a"), SubPropertyOf, iri("c"))},
	}
	s := in.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("string rendering too short: %q", s)
	}
}
