// Package reduction implements transitive reduction of directed acyclic
// graphs (Aho, Garey, Ullman 1972), used by the unique-minimal-
// representation algorithm of Theorem 3.16 to minimize the sc and sp
// subgraphs of an RDF graph. The transitive reduction of a DAG is unique;
// Example 3.14 of the paper shows that uniqueness fails on cyclic graphs,
// which is exactly why Theorem 3.16 assumes acyclicity.
package reduction

import (
	"sort"

	"semwebdb/internal/term"
)

// Digraph is a directed graph over terms.
type Digraph struct {
	adj map[term.Term]map[term.Term]struct{}
}

// NewDigraph returns an empty digraph.
func NewDigraph() *Digraph {
	return &Digraph{adj: make(map[term.Term]map[term.Term]struct{})}
}

// AddEdge inserts the edge a → b.
func (d *Digraph) AddEdge(a, b term.Term) {
	s, ok := d.adj[a]
	if !ok {
		s = make(map[term.Term]struct{})
		d.adj[a] = s
	}
	s[b] = struct{}{}
	if _, ok := d.adj[b]; !ok {
		d.adj[b] = make(map[term.Term]struct{})
	}
}

// HasEdge reports whether a → b is present.
func (d *Digraph) HasEdge(a, b term.Term) bool {
	_, ok := d.adj[a][b]
	return ok
}

// Nodes returns the vertices in canonical order.
func (d *Digraph) Nodes() []term.Term {
	out := make([]term.Term, 0, len(d.adj))
	for n := range d.adj {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Edges returns all edges in canonical order.
func (d *Digraph) Edges() [][2]term.Term {
	var out [][2]term.Term
	for a, succ := range d.adj {
		for b := range succ {
			out = append(out, [2]term.Term{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i][0].Compare(out[j][0]); c != 0 {
			return c < 0
		}
		return out[i][1].Less(out[j][1])
	})
	return out
}

// Succ returns the successors of a in canonical order.
func (d *Digraph) Succ(a term.Term) []term.Term {
	out := make([]term.Term, 0, len(d.adj[a]))
	for b := range d.adj[a] {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Reaches reports a path of length ≥ 1 from a to b.
func (d *Digraph) Reaches(a, b term.Term) bool {
	seen := make(map[term.Term]struct{})
	stack := d.Succ(a)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		stack = append(stack, d.Succ(n)...)
	}
	return false
}

// IsAcyclic reports whether the digraph has no directed cycle. Self-loops
// count as cycles; callers that tolerate reflexive edges (the paper's
// reflexivity triples are handled separately) should strip them first.
func (d *Digraph) IsAcyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[term.Term]int, len(d.adj))
	var visit func(n term.Term) bool
	visit = func(n term.Term) bool {
		color[n] = gray
		for m := range d.adj[n] {
			switch color[m] {
			case gray:
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for n := range d.adj {
		if color[n] == white {
			if !visit(n) {
				return false
			}
		}
	}
	return true
}

// WithoutSelfLoops returns a copy with reflexive edges removed.
func (d *Digraph) WithoutSelfLoops() *Digraph {
	out := NewDigraph()
	for a, succ := range d.adj {
		if _, ok := out.adj[a]; !ok {
			out.adj[a] = make(map[term.Term]struct{})
		}
		for b := range succ {
			if a != b {
				out.AddEdge(a, b)
			}
		}
	}
	return out
}

// TransitiveReduction returns the unique transitive reduction of an
// acyclic digraph: the minimal subset of edges with the same reachability
// relation. An edge a → b is redundant exactly when b is reachable from a
// through a path of length ≥ 2. The receiver must be acyclic (self-loops
// excluded); the result is undefined otherwise.
func (d *Digraph) TransitiveReduction() *Digraph {
	out := NewDigraph()
	for _, e := range d.Edges() {
		a, b := e[0], e[1]
		if a == b {
			continue
		}
		if !d.reachesAvoiding(a, b) {
			out.AddEdge(a, b)
		}
	}
	return out
}

// reachesAvoiding reports whether b is reachable from a by a path of
// length ≥ 2 (i.e. not using the direct edge a → b as the first step).
func (d *Digraph) reachesAvoiding(a, b term.Term) bool {
	seen := make(map[term.Term]struct{})
	var stack []term.Term
	for c := range d.adj[a] {
		if c != b {
			stack = append(stack, c)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		for c := range d.adj[n] {
			stack = append(stack, c)
		}
	}
	return false
}

// TransitiveClosure returns the digraph with an edge a → b whenever b is
// reachable from a by a path of length ≥ 1.
func (d *Digraph) TransitiveClosure() *Digraph {
	out := NewDigraph()
	for n := range d.adj {
		if _, ok := out.adj[n]; !ok {
			out.adj[n] = make(map[term.Term]struct{})
		}
		seen := make(map[term.Term]struct{})
		stack := d.Succ(n)
		for len(stack) > 0 {
			m := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := seen[m]; ok {
				continue
			}
			seen[m] = struct{}{}
			out.AddEdge(n, m)
			stack = append(stack, d.Succ(m)...)
		}
	}
	return out
}

// EdgeCount returns the number of edges.
func (d *Digraph) EdgeCount() int {
	n := 0
	for _, succ := range d.adj {
		n += len(succ)
	}
	return n
}
