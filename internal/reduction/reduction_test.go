package reduction

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/term"
)

func n(s string) term.Term { return term.NewIRI(s) }

func TestAddHasEdge(t *testing.T) {
	d := NewDigraph()
	d.AddEdge(n("a"), n("b"))
	if !d.HasEdge(n("a"), n("b")) || d.HasEdge(n("b"), n("a")) {
		t.Fatal("edge membership")
	}
	if len(d.Nodes()) != 2 {
		t.Fatalf("nodes = %v", d.Nodes())
	}
	if d.EdgeCount() != 1 {
		t.Fatal("edge count")
	}
}

func TestReaches(t *testing.T) {
	d := NewDigraph()
	d.AddEdge(n("a"), n("b"))
	d.AddEdge(n("b"), n("c"))
	if !d.Reaches(n("a"), n("c")) {
		t.Fatal("transitive reachability")
	}
	if d.Reaches(n("c"), n("a")) {
		t.Fatal("reverse reachability")
	}
	// Length ≥ 1: a node does not reach itself without a cycle.
	if d.Reaches(n("a"), n("a")) {
		t.Fatal("self reachability without cycle")
	}
	d.AddEdge(n("c"), n("a"))
	if !d.Reaches(n("a"), n("a")) {
		t.Fatal("cycle closes self-reachability")
	}
}

func TestIsAcyclic(t *testing.T) {
	d := NewDigraph()
	d.AddEdge(n("a"), n("b"))
	d.AddEdge(n("b"), n("c"))
	if !d.IsAcyclic() {
		t.Fatal("chain reported cyclic")
	}
	d.AddEdge(n("c"), n("a"))
	if d.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
	// Self loop is a cycle; WithoutSelfLoops clears it.
	e := NewDigraph()
	e.AddEdge(n("x"), n("x"))
	if e.IsAcyclic() {
		t.Fatal("self loop not a cycle")
	}
	if !e.WithoutSelfLoops().IsAcyclic() {
		t.Fatal("WithoutSelfLoops failed")
	}
}

func TestTransitiveReductionChain(t *testing.T) {
	// Chain plus all shortcut edges reduces back to the chain.
	d := NewDigraph()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d.AddEdge(n(fmt.Sprintf("v%d", i)), n(fmt.Sprintf("v%d", j)))
		}
	}
	r := d.TransitiveReduction()
	if r.EdgeCount() != 4 {
		t.Fatalf("reduction of total order on 5 has %d edges, want 4", r.EdgeCount())
	}
	for i := 0; i < 4; i++ {
		if !r.HasEdge(n(fmt.Sprintf("v%d", i)), n(fmt.Sprintf("v%d", i+1))) {
			t.Fatalf("chain edge %d missing", i)
		}
	}
}

func TestTransitiveReductionDiamond(t *testing.T) {
	// a→b, a→c, b→d, c→d, a→d: the long edge a→d is redundant.
	d := NewDigraph()
	d.AddEdge(n("a"), n("b"))
	d.AddEdge(n("a"), n("c"))
	d.AddEdge(n("b"), n("d"))
	d.AddEdge(n("c"), n("d"))
	d.AddEdge(n("a"), n("d"))
	r := d.TransitiveReduction()
	if r.HasEdge(n("a"), n("d")) {
		t.Fatal("redundant diamond edge kept")
	}
	if r.EdgeCount() != 4 {
		t.Fatalf("edges = %d, want 4", r.EdgeCount())
	}
}

func TestReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 25; round++ {
		// Random DAG: edges only from lower to higher index.
		d := NewDigraph()
		const N = 8
		for i := 0; i < N; i++ {
			for j := i + 1; j < N; j++ {
				if rng.Intn(3) == 0 {
					d.AddEdge(n(fmt.Sprintf("v%02d", i)), n(fmt.Sprintf("v%02d", j)))
				}
			}
		}
		r := d.TransitiveReduction()
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				a, b := n(fmt.Sprintf("v%02d", i)), n(fmt.Sprintf("v%02d", j))
				if d.Reaches(a, b) != r.Reaches(a, b) {
					t.Fatalf("round %d: reachability changed at (%d,%d)", round, i, j)
				}
			}
		}
		// Minimality: removing any kept edge must break reachability.
		for _, e := range r.Edges() {
			r2 := NewDigraph()
			for _, f := range r.Edges() {
				if f != e {
					r2.AddEdge(f[0], f[1])
				}
			}
			if r2.Reaches(e[0], e[1]) {
				t.Fatalf("round %d: kept edge %v is redundant", round, e)
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	d := NewDigraph()
	d.AddEdge(n("a"), n("b"))
	d.AddEdge(n("b"), n("c"))
	c := d.TransitiveClosure()
	if !c.HasEdge(n("a"), n("c")) {
		t.Fatal("closure missing transitive edge")
	}
	if c.EdgeCount() != 3 {
		t.Fatalf("closure edges = %d, want 3", c.EdgeCount())
	}
	// Closure then reduction returns the chain.
	if got := c.TransitiveReduction().EdgeCount(); got != 2 {
		t.Fatalf("reduce(closure) edges = %d, want 2", got)
	}
}

func TestSuccSorted(t *testing.T) {
	d := NewDigraph()
	d.AddEdge(n("a"), n("c"))
	d.AddEdge(n("a"), n("b"))
	succ := d.Succ(n("a"))
	if len(succ) != 2 || succ[0] != n("b") {
		t.Fatalf("succ = %v", succ)
	}
}
