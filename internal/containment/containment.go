// Package containment implements the query-containment theory of Section
// 5 of the paper: the standard containment ⊆p and the entailment-based
// containment ⊆m (Definition 5.1), their substitution characterizations
// (Theorem 5.5), the extension to constraints (Theorem 5.7), and
// containment of queries with premises via Theorem 5.8 and the Ω_q
// premise-elimination rewrite (Propositions 5.9 and 5.11).
//
// Variables are "frozen" to reserved IRIs — the paper's fresh constants —
// so that bodies and heads become RDF graphs and all the graph machinery
// (normal forms, maps, isomorphism, entailment) applies directly.
package containment

import (
	"fmt"
	"sort"
	"strings"

	"semwebdb/internal/core"
	"semwebdb/internal/dict"
	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/match"
	"semwebdb/internal/query"
	"semwebdb/internal/term"
)

// VarPrefix is the reserved IRI prefix for frozen variables.
const VarPrefix = "urn:semwebdb:var:"

// freezeTerm maps a variable to its frozen constant, fixing other terms.
func freezeTerm(x term.Term) term.Term {
	if x.IsVar() {
		return term.NewIRI(VarPrefix + x.Value)
	}
	return x
}

// isFrozenVar reports whether the term is a frozen variable.
func isFrozenVar(x term.Term) bool {
	return x.IsIRI() && strings.HasPrefix(x.Value, VarPrefix)
}

// freeze converts a pattern list into an RDF graph with variables frozen.
func freeze(ts []graph.Triple) *graph.Graph {
	g := graph.New()
	for _, t := range ts {
		g.Add(graph.T(freezeTerm(t.S), freezeTerm(t.P), freezeTerm(t.O)))
	}
	return g
}

// Decision reports a containment decision together with its witnesses.
type Decision struct {
	Holds bool
	// Substitutions are the witnessing θ (one for ⊆p; the full matching
	// family for ⊆m).
	Substitutions []map[term.Term]term.Term
}

// Standard decides q ⊆p q' (Definition 5.1(1)) via the characterizations
// of Theorems 5.5(1), 5.7(1) and 5.8(1), using the Ω_q rewrite when q has
// a premise.
func Standard(q, qp *query.Query) (Decision, error) {
	return decide(q, qp, true)
}

// Entailment decides q ⊆m q' (Definition 5.1(2)) via Theorems 5.5(2),
// 5.7(2) and 5.8(2), using the Ω_q rewrite when q has a premise.
func Entailment(q, qp *query.Query) (Decision, error) {
	return decide(q, qp, false)
}

func decide(q, qp *query.Query, standard bool) (Decision, error) {
	if err := q.Validate(); err != nil {
		return Decision{}, fmt.Errorf("containment: left query: %w", err)
	}
	if err := qp.Validate(); err != nil {
		return Decision{}, fmt.Errorf("containment: right query: %w", err)
	}
	if q.Premise != nil && q.Premise.Len() > 0 {
		// Proposition 5.9/5.11: expand the left premise away and require
		// containment of every expanded query.
		if len(q.Constraints) > 0 {
			return Decision{}, fmt.Errorf("containment: premise expansion with constraints is not supported (the paper omits constraints in Section 5.4)")
		}
		for _, qm := range PremiseExpansion(q) {
			d, err := decide(qm, qp, standard)
			if err != nil {
				return Decision{}, err
			}
			if !d.Holds {
				return Decision{Holds: false}, nil
			}
		}
		return Decision{Holds: true}, nil
	}
	return decideNoLeftPremise(q, qp, standard)
}

// decideNoLeftPremise implements Theorems 5.5/5.7/5.8 for a left query
// without premise. The matching target is nf(B) when q' has no premise
// (Theorem 5.5), or P' + B in the simple-query regime of Theorem 5.8.
func decideNoLeftPremise(q, qp *query.Query, standard bool) (Decision, error) {
	frozenB := freeze(q.Body)
	frozenH := freeze(q.Head)

	var target *graph.Graph
	hasRightPremise := qp.Premise != nil && qp.Premise.Len() > 0
	if hasRightPremise {
		// Theorem 5.8 (simple queries): θ(B') ⊆ P' + B.
		target = graph.Merge(frozenB, qp.Premise)
	} else {
		// Theorem 5.5: θ(B') ⊆ nf(B).
		target = core.NormalForm(frozenB)
	}

	// Enumerate substitutions θ : vars(B') → terms(target) with
	// θ(B') ⊆ target, filtering by the constraint condition (c) of
	// Theorem 5.7 as refined below.
	leftConstraints := map[term.Term]bool{}
	for v := range q.Constraints {
		leftConstraints[freezeTerm(v)] = true
	}
	td := target.Dict()
	admissible := func(unknown, value dict.ID) bool {
		if !qp.Constraints[td.TermOf(unknown)] {
			return true
		}
		// θ(x') for x' ∈ C' must be guaranteed non-blank in every
		// answer: a ground constant, or a variable of q that is itself
		// constrained. (The paper states θ(C') ⊆ C; constants are
		// non-blank by definition, which this refinement makes explicit.)
		vt := td.TermOf(value)
		if vt.IsBlank() {
			return false
		}
		if isFrozenVar(vt) {
			return leftConstraints[vt]
		}
		return true
	}

	// Bindings are decoded to term-level substitutions once per matching;
	// containment instances are tiny, so the decode is not a hot path.
	var thetas []map[term.Term]term.Term
	match.Solve(qp.Body, target, match.Options{Admissible: admissible}, func(b match.Binding) bool {
		thetas = append(thetas, b.Terms(td))
		return true
	})

	if standard {
		for _, th := range thetas {
			inst := applyTheta(qp.Head, th, "")
			if inst == nil {
				continue
			}
			if hom.Isomorphic(inst, frozenH) {
				return Decision{Holds: true, Substitutions: []map[term.Term]term.Term{th}}, nil
			}
		}
		return Decision{Holds: false}, nil
	}

	// Entailment-based: U = ⋃_j θ_j(H') with the blanks of H' renamed
	// apart per substitution (distinct bindings yield distinct Skolem
	// values in real answers), then U ⊨ H.
	u := graph.New()
	var subs []map[term.Term]term.Term
	for j, th := range thetas {
		inst := applyTheta(qp.Head, th, fmt.Sprintf("!t%d", j))
		if inst == nil {
			continue
		}
		u.AddAll(inst)
		subs = append(subs, th)
	}
	if entail.Entails(u, frozenH) {
		return Decision{Holds: true, Substitutions: subs}, nil
	}
	return Decision{Holds: false}, nil
}

// applyTheta instantiates a head pattern under θ, freezing untouched
// variables and renaming head blanks with the given suffix. It returns
// nil when the result is not a well-formed graph.
func applyTheta(head []graph.Triple, th map[term.Term]term.Term, blankSuffix string) *graph.Graph {
	subst := func(x term.Term) term.Term {
		if x.IsVar() {
			if v, ok := th[x]; ok {
				return v
			}
			return freezeTerm(x)
		}
		if x.IsBlank() && blankSuffix != "" {
			return term.NewBlank(x.Value + blankSuffix)
		}
		return x
	}
	out := graph.New()
	for _, t := range head {
		inst := graph.T(subst(t.S), subst(t.P), subst(t.O))
		if !inst.WellFormed() {
			return nil
		}
		out.MustAdd(inst)
	}
	return out
}

// PremiseExpansion computes Ω_q (Proposition 5.9): the set of premise-
// free queries q_μ = (μ(H), μ(B∖R), ∅) over all R ⊆ B and maps μ : R → P
// such that μ(B∖R) has no blanks. The union of the answers of Ω_q equals
// the answer of q on every database. Duplicate queries (up to renaming
// nothing — textual identity of the canonical form) are removed.
func PremiseExpansion(q *query.Query) []*query.Query {
	n := len(q.Body)
	var out []*query.Query
	seen := map[string]bool{}

	for mask := 0; mask < 1<<n; mask++ {
		var r, rest []graph.Triple
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				r = append(r, q.Body[i])
			} else {
				rest = append(rest, q.Body[i])
			}
		}
		// Enumerate maps μ : R → P (variables of R bound to premise
		// terms).
		if len(r) == 0 {
			add(&out, seen, query.New(q.Head, q.Body).WithPremise(graph.New()))
			continue
		}
		pd := q.Premise.Dict()
		match.Solve(r, q.Premise, match.Options{}, func(b match.Binding) bool {
			// μ(B∖R) must have no blanks: variables shared with R that
			// got bound to premise blanks must not survive into B∖R.
			sub := b.Terms(pd)
			restInst := substitutePatterns(rest, sub)
			for _, t := range restInst {
				for _, x := range t.Terms() {
					if x.IsBlank() {
						return true // skip this μ
					}
				}
			}
			headInst := substitutePatterns(q.Head, sub)
			add(&out, seen, query.New(headInst, restInst).WithPremise(graph.New()))
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func add(out *[]*query.Query, seen map[string]bool, q *query.Query) {
	if err := q.Validate(); err != nil {
		return // e.g. a head variable lost its body occurrence: not a query
	}
	key := q.String()
	if !seen[key] {
		seen[key] = true
		*out = append(*out, q)
	}
}

// substitutePatterns applies a substitution to a pattern list, leaving
// unbound variables in place.
func substitutePatterns(ts []graph.Triple, b map[term.Term]term.Term) []graph.Triple {
	subst := func(x term.Term) term.Term {
		if x.IsVar() {
			if v, ok := b[x]; ok {
				return v
			}
		}
		return x
	}
	out := make([]graph.Triple, len(ts))
	for i, t := range ts {
		out[i] = graph.T(subst(t.S), subst(t.P), subst(t.O))
	}
	return out
}

// Equivalent reports mutual containment under the given notion.
func Equivalent(q, qp *query.Query, standard bool) (bool, error) {
	d1, err := decide(q, qp, standard)
	if err != nil {
		return false, err
	}
	if !d1.Holds {
		return false, nil
	}
	d2, err := decide(qp, q, standard)
	if err != nil {
		return false, err
	}
	return d2.Holds, nil
}
