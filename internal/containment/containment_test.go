package containment

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/query"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }
func v(s string) term.Term   { return term.NewVar(s) }

func std(t *testing.T, q, qp *query.Query) bool {
	t.Helper()
	d, err := Standard(q, qp)
	if err != nil {
		t.Fatalf("Standard: %v", err)
	}
	return d.Holds
}

func ent(t *testing.T, q, qp *query.Query) bool {
	t.Helper()
	d, err := Entailment(q, qp)
	if err != nil {
		t.Fatalf("Entailment: %v", err)
	}
	return d.Holds
}

func TestIdenticalQueriesContained(t *testing.T) {
	q := query.New(
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
	)
	q2 := query.New(
		[]graph.Triple{{S: v("A"), P: iri("p"), O: v("B")}},
		[]graph.Triple{{S: v("A"), P: iri("p"), O: v("B")}},
	)
	if !std(t, q, q2) || !std(t, q2, q) {
		t.Fatal("renamed copies must be mutually ⊆p-contained")
	}
	if !ent(t, q, q2) || !ent(t, q2, q) {
		t.Fatal("renamed copies must be mutually ⊆m-contained")
	}
}

func TestMoreRestrictiveBodyContained(t *testing.T) {
	// q selects p-edges into b; q' selects all p-edges. q ⊆ q'.
	q := query.New(
		[]graph.Triple{{S: v("X"), P: iri("sel"), O: iri("b")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
	)
	qp := query.New(
		[]graph.Triple{{S: v("X"), P: iri("sel"), O: v("Y")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
	)
	if !std(t, q, qp) {
		t.Fatal("q ⊆p q' expected")
	}
	if std(t, qp, q) {
		t.Fatal("q' ⊆p q must fail")
	}
	if !ent(t, q, qp) {
		t.Fatal("q ⊆m q' expected")
	}
	if ent(t, qp, q) {
		t.Fatal("q' ⊆m q must fail")
	}
}

func TestProposition52StandardImpliesEntailment(t *testing.T) {
	// Randomized: whenever ⊆p holds, ⊆m must hold.
	rng := rand.New(rand.NewSource(19))
	preds := []term.Term{iri("p"), iri("q")}
	consts := []term.Term{iri("a"), iri("b")}
	vars := []term.Term{v("X"), v("Y"), v("Z")}
	pick := func(opts []term.Term) term.Term { return opts[rng.Intn(len(opts))] }
	randPattern := func(n int) []graph.Triple {
		out := make([]graph.Triple, 0, n)
		for i := 0; i < n; i++ {
			s := pick(append(vars, consts...))
			o := pick(append(vars, consts...))
			out = append(out, graph.Triple{S: s, P: pick(preds), O: o})
		}
		return out
	}
	checked := 0
	for round := 0; round < 80; round++ {
		b1 := randPattern(1 + rng.Intn(2))
		b2 := randPattern(1 + rng.Intn(2))
		q1 := query.New(b1, b1)
		q2 := query.New(b2, b2)
		if err := q1.Validate(); err != nil {
			continue
		}
		if err := q2.Validate(); err != nil {
			continue
		}
		if std(t, q1, q2) {
			checked++
			if !ent(t, q1, q2) {
				t.Fatalf("round %d: ⊆p holds but ⊆m fails (Proposition 5.2 violated)\nq: %v\nq': %v", round, q1, q2)
			}
		}
	}
	if checked == 0 {
		t.Skip("no ⊆p pairs generated")
	}
}

func TestExample53FirstPair(t *testing.T) {
	// B: X sc Y, Y sc Z. B': same plus X sc Z. Heads = bodies.
	// Mutual ⊆m, but no ⊆p in either direction.
	b := []graph.Triple{
		{S: v("X"), P: rdfs.SubClassOf, O: v("Y")},
		{S: v("Y"), P: rdfs.SubClassOf, O: v("Z")},
	}
	bp := []graph.Triple{
		{S: v("X"), P: rdfs.SubClassOf, O: v("Y")},
		{S: v("Y"), P: rdfs.SubClassOf, O: v("Z")},
		{S: v("X"), P: rdfs.SubClassOf, O: v("Z")},
	}
	q := query.New(b, b)
	qp := query.New(bp, bp)
	if !ent(t, q, qp) {
		t.Error("q ⊆m q' expected")
	}
	if !ent(t, qp, q) {
		t.Error("q' ⊆m q expected")
	}
	if std(t, q, qp) {
		t.Error("q ⊆p q' must fail (head sizes differ)")
	}
	if std(t, qp, q) {
		t.Error("q' ⊆p q must fail")
	}
}

func TestExample53SecondPair(t *testing.T) {
	// B = B'; H = {(c,q,?X)}, H' = {(Y,q,?X)} with blank Y.
	// q' ⊆m q but q' ⊄p q.
	body := []graph.Triple{{S: iri("c"), P: iri("q"), O: v("X")}}
	q := query.New([]graph.Triple{{S: iri("c"), P: iri("q"), O: v("X")}}, body)
	qp := query.New([]graph.Triple{{S: blk("Y"), P: iri("q"), O: v("X")}}, body)
	if !ent(t, qp, q) {
		t.Error("q' ⊆m q expected")
	}
	if std(t, qp, q) {
		t.Error("q' ⊆p q must fail")
	}
	// The other direction ⊆m also holds?? No: ans(q',D) = {(Y,q,x)}
	// does not entail ans(q,D) = {(c,q,x)} (blank cannot produce the
	// constant c).
	if ent(t, q, qp) {
		t.Error("q ⊆m q' must fail")
	}
}

func TestExample53ThirdPair(t *testing.T) {
	// No rdfs vocabulary, no blanks. B = B' covering all variables;
	// H = {(?X,q,?Y),(?Z,p,?Y)}, H' = {(?Z,p,?Y)}. q' ⊆m q, q' ⊄p q.
	body := []graph.Triple{
		{S: v("X"), P: iri("q"), O: v("Y")},
		{S: v("Z"), P: iri("p"), O: v("Y")},
	}
	q := query.New([]graph.Triple{
		{S: v("X"), P: iri("q"), O: v("Y")},
		{S: v("Z"), P: iri("p"), O: v("Y")},
	}, body)
	qp := query.New([]graph.Triple{{S: v("Z"), P: iri("p"), O: v("Y")}}, body)
	if !ent(t, qp, q) {
		t.Error("q' ⊆m q expected")
	}
	if std(t, qp, q) {
		t.Error("q' ⊆p q must fail (single answers have different shapes)")
	}
}

func TestConstraintConditionTheorem57(t *testing.T) {
	// q' requires ?X' non-blank; q does not constrain ?X. Binding
	// θ(?X') = ?X (unconstrained var) violates condition (c): q ⊄ q'.
	body := []graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}}
	q := query.New(body, body)
	qp := query.New(
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
	).WithConstraints(v("X"))
	if std(t, q, qp) {
		t.Error("unconstrained query contained in constrained one")
	}
	// Reverse: q' ⊆ q holds (dropping a constraint only widens answers).
	if !std(t, qp, q) {
		t.Error("constrained query must be contained in unconstrained one")
	}
	// Same constraints on both sides: containment holds.
	qc := query.New(body, body).WithConstraints(v("X"))
	if !std(t, qc, qp) {
		t.Error("equally-constrained queries must be contained")
	}
	// θ(x') = ground constant satisfies the constraint automatically.
	qg := query.New(
		[]graph.Triple{{S: iri("a"), P: iri("p"), O: iri("b")}},
		[]graph.Triple{{S: iri("a"), P: iri("p"), O: iri("b")}},
	)
	qpg := query.New(
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
		[]graph.Triple{{S: v("X"), P: iri("p"), O: iri("b")}},
	).WithConstraints(v("X"))
	if !ent(t, qg, qpg) {
		t.Error("constant binding must satisfy the right-hand constraint")
	}
}

func TestEntailmentContainmentNeedsRenamedHeadBlanks(t *testing.T) {
	// H' has a blank N linked to ?X. Two θ's bind ?X to different
	// constants. If the blanks were shared across θ's, the union would
	// wrongly entail a head demanding ONE blank with both links.
	q := query.New(
		[]graph.Triple{
			{S: blk("M"), P: iri("q"), O: iri("a")},
			{S: blk("M"), P: iri("q"), O: iri("b")},
		},
		[]graph.Triple{
			{S: iri("a"), P: iri("p"), O: iri("a")},
			{S: iri("a"), P: iri("p"), O: iri("b")},
		},
	)
	qp := query.New(
		[]graph.Triple{{S: blk("N"), P: iri("q"), O: v("X")}},
		[]graph.Triple{{S: iri("a"), P: iri("p"), O: v("X")}},
	)
	// ans(q') = {(N1,q,a),(N2,q,b)} with distinct skolem blanks; it does
	// NOT entail {(M,q,a),(M,q,b)} with shared M. So q ⊄m q'.
	if ent(t, q, qp) {
		t.Fatal("shared-blank head wrongly entailed: per-θ renaming is broken")
	}
}

func TestPremiseExpansionExample510(t *testing.T) {
	// q: (?X,p,?Y) ← (?X,q,?Y),(?Y,t,s) with P = {(a,t,s),(b,t,s)}.
	// Ω_q = three queries: bindings ?Y=a, ?Y=b, and the premise-free q.
	q := query.New(
		[]graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}},
		[]graph.Triple{
			{S: v("X"), P: iri("q"), O: v("Y")},
			{S: v("Y"), P: iri("t"), O: iri("s")},
		},
	).WithPremise(graph.New(
		graph.T(iri("a"), iri("t"), iri("s")),
		graph.T(iri("b"), iri("t"), iri("s")),
	))
	omega := PremiseExpansion(q)
	if len(omega) != 3 {
		for _, o := range omega {
			t.Logf("  %v", o)
		}
		t.Fatalf("Ω_q has %d queries, want 3", len(omega))
	}
	// Answers agree on every database (Proposition 5.9).
	dbs := []*graph.Graph{
		graph.New(graph.T(iri("u"), iri("q"), iri("a"))),
		graph.New(
			graph.T(iri("u"), iri("q"), iri("a")),
			graph.T(iri("u"), iri("q"), iri("c")),
			graph.T(iri("c"), iri("t"), iri("s")),
		),
		graph.New(graph.T(iri("u"), iri("q"), iri("z"))),
	}
	for i, d := range dbs {
		direct, err := query.Evaluate(q, d, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		union := graph.New()
		for _, qm := range omega {
			a, err := query.Evaluate(qm, d, query.Options{})
			if err != nil {
				t.Fatal(err)
			}
			union.AddAll(a.Graph)
		}
		if !direct.Graph.Equal(union) {
			t.Fatalf("db %d: Ω_q answers differ from premise evaluation:\n%v\nvs\n%v",
				i, direct.Graph, union)
		}
	}
}

func TestPremiseContainmentTheorem58(t *testing.T) {
	// q asks for relatives with premise (son sp relative) — as a SIMPLE
	// query (uninterpreted vocabulary, plain predicate "below").
	// q': same body relying on an explicit (son,below,relative) premise
	// triple.
	body := []graph.Triple{
		{S: v("X"), P: iri("son"), O: iri("peter")},
		{S: iri("son"), P: iri("below"), O: iri("relative")},
	}
	q := query.New([]graph.Triple{{S: v("X"), P: iri("rel"), O: iri("peter")}}, body).
		WithPremise(graph.New(graph.T(iri("son"), iri("below"), iri("relative"))))
	qp := query.New([]graph.Triple{{S: v("X"), P: iri("rel"), O: iri("peter")}}, body).
		WithPremise(graph.New(graph.T(iri("son"), iri("below"), iri("relative"))))
	if !std(t, q, qp) || !ent(t, q, qp) {
		t.Fatal("identical premise queries must be contained")
	}
	// Without its premise, the left query answers MORE databases'
	// worth... actually: the premise-free version requires the below-
	// triple in the data, so it is contained in the premised one.
	qNoP := query.New(q.Head, body)
	if !std(t, qNoP, qp) {
		t.Fatal("premise-free variant must be ⊆p the premised query")
	}
	// The premised query is NOT contained in the premise-free one: on a
	// database without the below-triple it still answers.
	if std(t, q, qNoP) {
		t.Fatal("premised query wrongly contained in premise-free one")
	}
	if ent(t, q, qNoP) {
		t.Fatal("premised query wrongly ⊆m-contained in premise-free one")
	}
}

func TestContainmentSoundAgainstEvaluation(t *testing.T) {
	// Soundness on random databases: if q ⊆p q' then every single answer
	// of q has an isomorphic single answer of q'; if q ⊆m q' then
	// ans(q',D) ⊨ ans(q,D).
	rng := rand.New(rand.NewSource(77))
	preds := []term.Term{iri("p"), iri("q")}
	consts := []term.Term{iri("a"), iri("b")}
	vars := []term.Term{v("X"), v("Y")}
	pick := func(opts []term.Term) term.Term { return opts[rng.Intn(len(opts))] }
	randPattern := func(n int) []graph.Triple {
		out := make([]graph.Triple, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, graph.Triple{
				S: pick(append(vars, consts...)),
				P: pick(preds),
				O: pick(append(vars, consts...)),
			})
		}
		return out
	}
	for round := 0; round < 40; round++ {
		b1 := randPattern(1 + rng.Intn(2))
		b2 := randPattern(1 + rng.Intn(2))
		q1 := query.New(b1, b1)
		q2 := query.New(b2, b2)
		if q1.Validate() != nil || q2.Validate() != nil {
			continue
		}
		holdsP := std(t, q1, q2)
		holdsM := ent(t, q1, q2)
		// Random database probe.
		d := graph.New()
		for k := 0; k < 5; k++ {
			d.Add(graph.T(pick(consts), pick(preds), pick(append(consts, blk(fmt.Sprintf("w%d", k))))))
		}
		a1, err := query.Evaluate(q1, d, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := query.Evaluate(q2, d, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if holdsP {
			for _, s := range a1.Singles {
				found := false
				for _, s2 := range a2.Singles {
					if hom.Isomorphic(s, s2) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("round %d: ⊆p claimed but single answer %v of q has no isomorphic counterpart\nq: %v\nq': %v\nD:\n%v",
						round, s, q1, q2, d)
				}
			}
		}
		if holdsM {
			if !entail.Entails(a2.Graph, a1.Graph) {
				t.Fatalf("round %d: ⊆m claimed but ans(q',D) ⊭ ans(q,D)\nq: %v\nq': %v\nD:\n%v",
					round, q1, q2, d)
			}
		}
	}
}

func TestEquivalentHelper(t *testing.T) {
	b := []graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}}
	q1 := query.New(b, b)
	q2 := query.New(
		[]graph.Triple{{S: v("A"), P: iri("p"), O: v("B")}},
		[]graph.Triple{{S: v("A"), P: iri("p"), O: v("B")}},
	)
	eq, err := Equivalent(q1, q2, true)
	if err != nil || !eq {
		t.Fatalf("Equivalent = %v, %v", eq, err)
	}
	q3 := query.New(
		[]graph.Triple{{S: v("A"), P: iri("q"), O: v("B")}},
		[]graph.Triple{{S: v("A"), P: iri("q"), O: v("B")}},
	)
	eq, err = Equivalent(q1, q3, true)
	if err != nil || eq {
		t.Fatalf("different queries equivalent: %v, %v", eq, err)
	}
}

func TestPremiseWithConstraintsRejected(t *testing.T) {
	b := []graph.Triple{{S: v("X"), P: iri("p"), O: v("Y")}}
	q := query.New(b, b).
		WithPremise(graph.New(graph.T(iri("a"), iri("p"), iri("b")))).
		WithConstraints(v("X"))
	if _, err := Standard(q, query.New(b, b)); err == nil {
		t.Fatal("premise+constraints must be rejected with a clear error")
	}
}

func TestStandardContainmentComplete(t *testing.T) {
	// Completeness probe (the "only if" of Theorem 5.5(1)): when the
	// decider says q ⊄p q', the frozen body of q — the canonical
	// database of the proof — must witness it: some single answer of q
	// over it has no isomorphic counterpart among q''s answers.
	rng := rand.New(rand.NewSource(91))
	preds := []term.Term{iri("p"), iri("q")}
	consts := []term.Term{iri("a"), iri("b")}
	vars := []term.Term{v("X"), v("Y")}
	pick := func(opts []term.Term) term.Term { return opts[rng.Intn(len(opts))] }
	randPattern := func(n int) []graph.Triple {
		out := make([]graph.Triple, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, graph.Triple{
				S: pick(append(vars, consts...)),
				P: pick(preds),
				O: pick(append(vars, consts...)),
			})
		}
		return out
	}
	freezeT := func(x term.Term) term.Term {
		if x.IsVar() {
			return iri("frozen:" + x.Value)
		}
		return x
	}
	checked := 0
	for round := 0; round < 60 && checked < 15; round++ {
		b1 := randPattern(1 + rng.Intn(2))
		b2 := randPattern(1 + rng.Intn(2))
		q1 := query.New(b1, b1)
		q2 := query.New(b2, b2)
		if q1.Validate() != nil || q2.Validate() != nil {
			continue
		}
		d1, err := Standard(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		if d1.Holds {
			continue
		}
		checked++
		// Canonical database: freeze q1's body.
		db := graph.New()
		for _, tr := range b1 {
			db.Add(graph.T(freezeT(tr.S), freezeT(tr.P), freezeT(tr.O)))
		}
		a1, err := query.Evaluate(q1, db, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := query.Evaluate(q2, db, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		witness := false
		for _, s := range a1.Singles {
			found := false
			for _, s2 := range a2.Singles {
				if hom.Isomorphic(s, s2) {
					found = true
					break
				}
			}
			if !found {
				witness = true
				break
			}
		}
		if !witness {
			t.Fatalf("round %d: decider says q ⊄p q' but the canonical database shows containment\nq: %v\nq': %v",
				round, q1, q2)
		}
	}
	if checked == 0 {
		t.Skip("no non-contained pairs generated")
	}
}
