package gen

import (
	"testing"

	"semwebdb/internal/closure"
	"semwebdb/internal/core"
	"semwebdb/internal/entail"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/rdfs"
)

func TestEncShapes(t *testing.T) {
	c4 := Cycle(4)
	if len(c4.Edges) != 8 { // two arcs per undirected edge
		t.Fatalf("C4 edges = %d, want 8", len(c4.Edges))
	}
	g := Enc(c4, "v")
	if g.Len() != 8 || len(g.BlankNodes()) != 4 {
		t.Fatalf("enc(C4): %d triples, %d blanks", g.Len(), len(g.BlankNodes()))
	}
	k3 := EncGround(Clique(3), "k")
	if k3.Len() != 6 || !k3.IsGround() {
		t.Fatalf("enc(K3) ground: %d triples", k3.Len())
	}
	p := Path(5)
	if len(p.Edges) != 4 {
		t.Fatalf("path edges = %d", len(p.Edges))
	}
}

func TestThreeColorabilityInstances(t *testing.T) {
	// Even cycles are 2-colorable hence 3-colorable; odd cycles ≥ 3 are
	// 3-colorable; the 5-cycle is not 2-colorable.
	for _, n := range []int{3, 4, 5, 6} {
		src, dst := ThreeColorabilityInstance(Cycle(n))
		if !entail.SimpleEntails(dst, src) {
			t.Errorf("K3 must entail enc(C%d)", n)
		}
	}
	// K4 is not 3-colorable.
	src, dst := ThreeColorabilityInstance(Clique(4))
	if entail.SimpleEntails(dst, src) {
		t.Error("K3 must not entail enc(K4)")
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(10, 20, 7)
	b := RandomGraph(10, 20, 7)
	if len(a.Edges) != 20 || len(b.Edges) != 20 {
		t.Fatal("edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := RandomGraph(10, 20, 8)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestScChainClosureQuadratic(t *testing.T) {
	n := 20
	g := ScChain(n + 1) // n sc edges
	cl := closure.RDFSCl(g)
	// n(n+1)/2 transitive pairs + n+1 loops + constants.
	scCount := 0
	cl.Each(func(tr graph.Triple) bool {
		if tr.P == rdfs.SubClassOf {
			scCount++
		}
		return true
	})
	want := n*(n+1)/2 + (n + 1)
	if scCount != want {
		t.Fatalf("sc triples in closure = %d, want %d", scCount, want)
	}
}

func TestSpChainInheritance(t *testing.T) {
	g := SpChain(5)
	cl := closure.RDFSCl(g)
	// The data triple is inherited by all 5 properties.
	inherited := 0
	cl.Each(func(tr graph.Triple) bool {
		if !rdfs.IsVocabulary(tr.P) {
			inherited++
		}
		return true
	})
	if inherited != 5 {
		t.Fatalf("inherited copies = %d, want 5", inherited)
	}
}

func TestRedundantGraphCore(t *testing.T) {
	g := RedundantGraph(6, 10, 3)
	c, _ := core.Core(g)
	if c.Len() != 6 {
		t.Fatalf("core size = %d, want the 6-triple kernel:\n%v", c.Len(), c)
	}
	if !c.IsGround() {
		t.Fatal("core must be the ground kernel")
	}
	if !entail.Equivalent(g, c) {
		t.Fatal("redundant graph not equivalent to its kernel")
	}
}

func TestArtSchemaWellFormed(t *testing.T) {
	g := ArtSchema(7, 4, 20, 5)
	if g.Len() == 0 {
		t.Fatal("empty schema")
	}
	if err := core.CheckRestrictedClass(g); err != nil {
		t.Fatalf("art schema outside the restricted class: %v", err)
	}
	// Deterministic.
	if !g.Equal(ArtSchema(7, 4, 20, 5)) {
		t.Fatal("non-deterministic schema")
	}
}

func TestEquivalentRewrite(t *testing.T) {
	g := ArtSchema(5, 3, 8, 11)
	for seed := int64(0); seed < 5; seed++ {
		rw := EquivalentRewrite(g, seed)
		if !entail.Equivalent(g, rw) {
			t.Fatalf("seed %d: rewrite not equivalent", seed)
		}
		// Theorem 3.19: equal normal forms.
		if !hom.Isomorphic(core.NormalForm(g), core.NormalForm(rw)) {
			t.Fatalf("seed %d: normal forms differ", seed)
		}
	}
}

func TestBlankBodies(t *testing.T) {
	if BlankChainBody(4).Len() != 4 {
		t.Fatal("chain body size")
	}
	cyc := BlankCycleBody(4)
	if cyc.Len() != 4 {
		t.Fatal("cycle body size")
	}
	if len(cyc.BlankNodes()) != 4 {
		t.Fatal("cycle blanks")
	}
}

func TestRandom3SATShape(t *testing.T) {
	cls := Random3SAT(5, 12, 3)
	if len(cls) != 12 {
		t.Fatalf("clauses = %d", len(cls))
	}
	for _, cl := range cls {
		for _, lit := range cl {
			if lit == 0 || lit > 5 || lit < -5 {
				t.Fatalf("bad literal %d", lit)
			}
		}
	}
}
