// Package gen provides the deterministic workload generators used by the
// experiment harness and the benchmarks: encodings enc(H) of standard
// graphs (Section 2.4), the hardness-construction instances behind
// Theorems 2.9, 3.12 and 6.1, RDFS schema/data generators in the style of
// the paper's Fig. 1, redundancy-injected graphs for core/normal-form
// experiments, and equivalence-preserving rewrites for syntax-
// independence experiments.
//
// Every generator takes an explicit seed (or is fully deterministic), so
// the experiments in DESIGN.md reproduce bit-for-bit.
package gen

import (
	"fmt"
	"math/rand"

	"semwebdb/internal/closure"
	"semwebdb/internal/graph"
	"semwebdb/internal/rdfs"
	"semwebdb/internal/term"
)

// EdgePredicate is the distinguished URI e of the enc(·) encoding.
var EdgePredicate = term.NewIRI("urn:semwebdb:enc:e")

// iriN mints node URIs.
func iriN(prefix string, i int) term.Term {
	return term.NewIRI(fmt.Sprintf("urn:semwebdb:%s:%d", prefix, i))
}

// blankN mints blank nodes.
func blankN(prefix string, i int) term.Term {
	return term.NewBlank(fmt.Sprintf("%s%d", prefix, i))
}

// StdGraph is a standard directed graph on {0, …, N-1}.
type StdGraph struct {
	N     int
	Edges [][2]int
}

// Enc returns enc(H): each node v becomes the blank X_v, each edge (u,v)
// the triple (X_u, e, X_v) (Section 2.4).
func Enc(h StdGraph, label string) *graph.Graph {
	g := graph.New()
	for _, e := range h.Edges {
		g.Add(graph.T(blankN(label, e[0]), EdgePredicate, blankN(label, e[1])))
	}
	return g
}

// EncGround is enc(H) with URI nodes instead of blanks (a rigid target).
func EncGround(h StdGraph, label string) *graph.Graph {
	g := graph.New()
	for _, e := range h.Edges {
		g.Add(graph.T(iriN(label, e[0]), EdgePredicate, iriN(label, e[1])))
	}
	return g
}

// Cycle returns the symmetric (undirected-as-two-arcs) cycle C_n.
func Cycle(n int) StdGraph {
	h := StdGraph{N: n}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		h.Edges = append(h.Edges, [2]int{i, j}, [2]int{j, i})
	}
	return h
}

// Clique returns K_n (all ordered pairs, no loops).
func Clique(n int) StdGraph {
	h := StdGraph{N: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				h.Edges = append(h.Edges, [2]int{i, j})
			}
		}
	}
	return h
}

// Path returns the directed path 0 → 1 → … → n-1.
func Path(n int) StdGraph {
	h := StdGraph{N: n}
	for i := 0; i+1 < n; i++ {
		h.Edges = append(h.Edges, [2]int{i, i + 1})
	}
	return h
}

// RandomGraph returns a random digraph with n nodes and m distinct edges.
func RandomGraph(n, m int, seed int64) StdGraph {
	rng := rand.New(rand.NewSource(seed))
	h := StdGraph{N: n}
	used := map[[2]int]struct{}{}
	for len(h.Edges) < m {
		e := [2]int{rng.Intn(n), rng.Intn(n)}
		if e[0] == e[1] {
			continue
		}
		if _, ok := used[e]; ok {
			continue
		}
		used[e] = struct{}{}
		h.Edges = append(h.Edges, e)
	}
	return h
}

// ThreeColorabilityInstance returns (enc(H) with blanks, enc(K3) ground):
// K3 ⊨ enc(H) iff H is 3-colorable — the NP-hardness workload of
// Theorem 2.9.
func ThreeColorabilityInstance(h StdGraph) (src, dst *graph.Graph) {
	return Enc(h, "v"), EncGround(Clique(3), "k")
}

// ScChain returns the subclass chain c_1 sc c_2 sc … sc c_n (n-1 triples)
// whose closure is Θ(n²) — the Theorem 3.6(3) workload.
func ScChain(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i < n; i++ {
		g.Add(graph.T(iriN("c", i), rdfs.SubClassOf, iriN("c", i+1)))
	}
	return g
}

// SpChain returns the subproperty chain p_1 sp … sp p_n plus one data
// triple using p_1, so that rule (3) materializes n inherited copies.
func SpChain(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i < n; i++ {
		g.Add(graph.T(iriN("p", i), rdfs.SubPropertyOf, iriN("p", i+1)))
	}
	g.Add(graph.T(iriN("x", 0), iriN("p", 1), iriN("y", 0)))
	return g
}

// RedundantGraph returns a lean ground kernel of nk triples plus nr
// redundant blank-node instances of kernel triples: its core is exactly
// the kernel. The Theorem 3.12 / core-computation workload.
func RedundantGraph(nk, nr int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	type sp struct{ s, p, o term.Term }
	kernel := make([]sp, 0, nk)
	for i := 0; i < nk; i++ {
		t := sp{iriN("s", i), iriN("p", i%3), iriN("o", i)}
		kernel = append(kernel, t)
		g.Add(graph.T(t.s, t.p, t.o))
	}
	for i := 0; i < nr; i++ {
		k := kernel[rng.Intn(len(kernel))]
		switch rng.Intn(3) {
		case 0: // blank subject
			g.Add(graph.T(blankN("r", i), k.p, k.o))
		case 1: // blank object
			g.Add(graph.T(k.s, k.p, blankN("r", i)))
		default: // both blank
			g.Add(graph.T(blankN("r", i), k.p, blankN("rr", i)))
		}
	}
	return g
}

// ArtSchema returns a Fig. 1-style RDFS schema plus nInd individuals,
// generated deterministically: classes in a subclass tree, properties in
// a subproperty chain with domains and ranges, and typed individuals
// linked by leaf properties.
func ArtSchema(nClasses, nProps, nInd int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	class := func(i int) term.Term { return iriN("Class", i) }
	prop := func(i int) term.Term { return iriN("prop", i) }
	// Class tree: class i sc class (i-1)/2.
	for i := 1; i < nClasses; i++ {
		g.Add(graph.T(class(i), rdfs.SubClassOf, class((i-1)/2)))
	}
	// Property chain with dom/range on the top property.
	for i := 1; i < nProps; i++ {
		g.Add(graph.T(prop(i), rdfs.SubPropertyOf, prop(i-1)))
	}
	if nClasses > 0 && nProps > 0 {
		g.Add(graph.T(prop(0), rdfs.Domain, class(0)))
		g.Add(graph.T(prop(0), rdfs.Range, class(0)))
	}
	// Individuals typed at random leaf-ish classes, linked by random
	// properties.
	ind := func(i int) term.Term { return iriN("ind", i) }
	for i := 0; i < nInd; i++ {
		g.Add(graph.T(ind(i), rdfs.Type, class(rng.Intn(max(1, nClasses)))))
		if i > 0 {
			g.Add(graph.T(ind(i), prop(rng.Intn(max(1, nProps))), ind(rng.Intn(i))))
		}
	}
	return g
}

// EquivalentRewrite produces a graph equivalent to g by (1) renaming all
// blanks, (2) adding derivable triples sampled from the closure, and
// (3) adding fresh blank instances of existing triples. Used by the
// syntax-independence experiment (Theorem 3.19): nf(g) ≅ nf(rewrite(g)).
func EquivalentRewrite(g *graph.Graph, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	// (1) rename blanks.
	ren := make(graph.Map)
	for i, b := range g.BlankNodeList() {
		ren[b] = blankN(fmt.Sprintf("rw%d_", seed%97), i)
	}
	out := ren.Apply(g)

	// (2) add a sample of derivable triples.
	cl := closure.Cl(out)
	derivable := cl.Minus(out).Triples()
	rng.Shuffle(len(derivable), func(i, j int) {
		derivable[i], derivable[j] = derivable[j], derivable[i]
	})
	for i := 0; i < len(derivable) && i < 1+len(derivable)/2; i++ {
		out.Add(derivable[i])
	}

	// (3) add fresh blank instances of existing triples: each new triple
	// maps into the original, so equivalence is preserved.
	ts := out.Triples()
	for i := 0; i < 1+rng.Intn(3); i++ {
		t := ts[rng.Intn(len(ts))]
		fresh := blankN(fmt.Sprintf("inst%d_", seed%89), i)
		if !t.O.IsLiteral() && rng.Intn(2) == 0 {
			out.Add(graph.T(t.S, t.P, fresh))
			continue
		}
		out.Add(graph.T(fresh, t.P, t.O))
	}
	return out
}

// Random3SAT returns a random 3-CNF instance with n variables and m
// clauses.
func Random3SAT(n, m int, seed int64) (clauses [][3]int) {
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < m; k++ {
		var cl [3]int
		for i := 0; i < 3; i++ {
			cl[i] = 1 + rng.Intn(n)
			if rng.Intn(2) == 0 {
				cl[i] = -cl[i]
			}
		}
		clauses = append(clauses, cl)
	}
	return clauses
}

// BlankChainBody returns a simple graph whose blanks form a path (no
// blank cycles — the acyclic CQ workload): X_0 e X_1 e … e X_n.
func BlankChainBody(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.Add(graph.T(blankN("q", i), EdgePredicate, blankN("q", i+1)))
	}
	return g
}

// BlankCycleBody returns a blank cycle of length n (the cyclic CQ
// workload).
func BlankCycleBody(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.Add(graph.T(blankN("q", i), EdgePredicate, blankN("q", (i+1)%n)))
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
