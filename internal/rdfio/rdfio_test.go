package rdfio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNTriples(t *testing.T) {
	path := writeTemp(t, "g.nt", "<urn:a> <urn:p> <urn:b> .\n")
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestLoadTurtle(t *testing.T) {
	path := writeTemp(t, "g.ttl", "@prefix ex: <urn:> .\nex:a ex:p ex:b .\n")
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(graph.T(term.NewIRI("urn:a"), term.NewIRI("urn:p"), term.NewIRI("urn:b"))) {
		t.Fatalf("turtle triple missing: %v", g)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.nt")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeTemp(t, "bad.nt", "garbage here\n")
	if _, err := Load(bad); err == nil {
		t.Fatal("bad N-Triples accepted")
	}
	badTTL := writeTemp(t, "bad.ttl", "ex:a ex:p ex:b .\n") // undeclared prefix
	if _, err := Load(badTTL); err == nil {
		t.Fatal("bad Turtle accepted")
	}
}

func TestDump(t *testing.T) {
	g := graph.New(graph.T(term.NewIRI("urn:a"), term.NewIRI("urn:p"), term.NewIRI("urn:b")))
	var sb strings.Builder
	if err := Dump(&sb, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<urn:a> <urn:p> <urn:b> .") {
		t.Fatalf("dump = %q", sb.String())
	}
}
