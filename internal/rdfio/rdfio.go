// Package rdfio provides the file-loading helpers shared by the command
// line tools: format detection by extension (.nt → N-Triples, .ttl →
// Turtle), with "-" for standard input (N-Triples).
package rdfio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"semwebdb/internal/graph"
	"semwebdb/internal/ntriples"
	"semwebdb/internal/turtle"
)

// Load reads an RDF file. The syntax is chosen by extension: ".ttl" and
// ".turtle" parse as Turtle, everything else as N-Triples. The path "-"
// reads N-Triples from stdin.
func Load(path string) (*graph.Graph, error) {
	if path == "-" {
		g, err := ntriples.Parse(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("stdin: %w", err)
		}
		return g, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ttl", ".turtle":
		g, err := turtle.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return g, nil
	default:
		g, err := ntriples.ParseString(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return g, nil
	}
}

// Dump writes the graph as canonical N-Triples.
func Dump(w io.Writer, g *graph.Graph) error {
	return ntriples.Serialize(w, g)
}
