package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	h := r.Histogram("test_latency_seconds", "latency", nil)
	h.Observe(2 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(time.Hour) // beyond the last bound: +Inf bucket
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if want := time.Hour + 32*time.Millisecond; h.Sum() != want {
		t.Fatalf("hist sum = %s, want %s", h.Sum(), want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h_seconds", "h", []float64{0.001, 0.01})
	h.Observe(time.Millisecond)      // exactly the first bound: le="0.001"
	h.Observe(5 * time.Millisecond)  // second bucket
	h.Observe(50 * time.Millisecond) // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket[0] = %d, want 1 (le is inclusive)", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("bucket[1] = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Fatalf("bucket[+Inf] = %d, want 1", got)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_by_path_total", "by path", "path")
	v.With("full").Add(2)
	v.With("delta").Inc()
	if v.With("full").Value() != 2 || v.With("delta").Value() != 1 {
		t.Fatal("labeled children not independent")
	}
	// Same labels resolve to the same child.
	if v.With("full") != v.With("full") {
		t.Fatal("With not idempotent")
	}
	// Idempotent re-registration returns the same family.
	v2 := r.CounterVec("test_by_path_total", "by path", "path")
	if v2.With("full").Value() != 2 {
		t.Fatal("re-registration lost state")
	}
}

func TestWritePrometheusIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a").Add(3)
	r.Gauge("test_b", `help with "quotes" and \backslash`).Set(-2)
	hv := r.HistogramVec("test_c_seconds", "c", nil, "path", "mode")
	hv.With("full", "eval").Observe(3 * time.Millisecond)
	hv.With("delta", "stream").Observe(100 * time.Millisecond)
	r.GaugeFunc("test_d", "callback", func() float64 { return 1.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE test_a_total counter",
		"test_a_total 3",
		"test_b -2",
		`test_c_seconds_bucket{path="delta",mode="stream",le="+Inf"} 1`,
		`test_c_seconds_count{path="full",mode="eval"} 1`,
		"test_d 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGoRuntimeIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGoRuntime(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("invalid runtime exposition: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"go_goroutines", "go_gc_cycles_total", "process_start_time_seconds"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad sample":      "foo{ 3\n",
		"bad value":       "foo bar\n",
		"dup type":        "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"type after":      "foo 1\n# TYPE foo counter\n",
		"non-cum buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"no inf bucket":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
		"empty":           "",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted invalid exposition %q", name, in)
		}
	}
	if err := ValidateExposition([]byte("# random comment\nup 1\n")); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSpan("solve", time.Now(), 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "parse" || spans[1].Name != "solve" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Duration < time.Millisecond {
		t.Fatalf("parse span too short: %s", spans[0].Duration)
	}
	if s := tr.String(); !strings.Contains(s, "parse=") || !strings.Contains(s, "solve=5ms") {
		t.Fatalf("trace string = %q", s)
	}

	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	// Nil traces are inert on every method.
	var nilT *Trace
	nilT.StartSpan("x")()
	nilT.AddSpan("y", time.Now(), 0)
	if nilT.Spans() != nil || nilT.String() != "" {
		t.Fatal("nil trace not inert")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on empty ctx")
	}
}

// TestConcurrentUpdatesAndScrape is the package's race-detector
// workout: writers on every metric kind race a scraper.
func TestConcurrentUpdatesAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c")
	g := r.Gauge("test_conc_gauge", "g")
	hv := r.HistogramVec("test_conc_seconds", "h", nil, "path")
	var wg sync.WaitGroup
	const perWorker = 2000
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{"a", "b", "c"}
			for n := 0; n < perWorker; n++ {
				c.Inc()
				g.Add(1)
				hv.With(paths[n%3]).Observe(time.Duration(n) * time.Microsecond)
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
	}
	wg.Wait()
	if c.Value() != 4*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), 4*perWorker)
	}
}
