package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file is a small, strict-enough checker for the Prometheus text
// exposition format (version 0.0.4): the metrics-smoke CI leg scrapes
// semwebd's /metrics and runs the payload through ValidateExposition,
// so a formatting regression in the hand-rolled writer fails loudly
// instead of being noticed by the first real scraper.

var (
	expMetricName = `[a-zA-Z_:][a-zA-Z0-9_:]*`
	expSampleRe   = regexp.MustCompile(
		`^(` + expMetricName + `)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\S+)( [0-9-]+)?$`)
	expTypeRe = regexp.MustCompile(`^# TYPE (` + expMetricName + `) (counter|gauge|histogram|summary|untyped)$`)
	expHelpRe = regexp.MustCompile(`^# HELP (` + expMetricName + `) (.*)$`)
)

// ValidateExposition checks that data parses as Prometheus text
// exposition format: every non-comment line is a well-formed sample
// with a parseable value, TYPE/HELP lines are well-formed and precede
// their family's samples, no family's TYPE is declared twice, and
// histogram families have consistent _bucket/_sum/_count series
// (cumulative non-decreasing buckets, an +Inf bucket equal to _count).
// It returns nil for valid input and a line-numbered error otherwise.
func ValidateExposition(data []byte) error {
	typeOf := map[string]string{}
	samplesSeen := map[string]bool{}
	type histState struct {
		lastCum   uint64
		infCount  uint64
		haveInf   bool
		count     uint64
		haveCount bool
	}
	hists := map[string]*histState{} // base name + label set (minus le)

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case strings.HasPrefix(line, "# TYPE "):
				m := expTypeRe.FindStringSubmatch(line)
				if m == nil {
					return fmt.Errorf("line %d: malformed TYPE line: %q", ln, line)
				}
				name := m[1]
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
				}
				if samplesSeen[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", ln, name)
				}
				typeOf[name] = m[2]
			case strings.HasPrefix(line, "# HELP "):
				if !expHelpRe.MatchString(line) {
					return fmt.Errorf("line %d: malformed HELP line: %q", ln, line)
				}
			default:
				// Plain comment: ignored by the format.
			}
			continue
		}
		m := expSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", ln, line)
		}
		name, labels, value := m[1], m[2], m[7]
		v, err := parseExpositionValue(value)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", ln, value, err)
		}
		base := histBaseName(name)
		samplesSeen[base] = true
		samplesSeen[name] = true

		if t, ok := typeOf[base]; ok && t == "histogram" {
			key, le, isBucket := base+"\x00"+stripLE(labels), leOf(labels), strings.HasSuffix(name, "_bucket")
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			switch {
			case isBucket && le == "":
				return fmt.Errorf("line %d: histogram bucket without le label: %q", ln, line)
			case isBucket:
				cum := uint64(v)
				if cum < h.lastCum {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative", ln, base)
				}
				h.lastCum = cum
				if le == "+Inf" {
					h.infCount, h.haveInf = cum, true
				}
			case strings.HasSuffix(name, "_count"):
				h.count, h.haveCount = uint64(v), true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if ln == 0 {
		return fmt.Errorf("empty exposition")
	}
	for key, h := range hists {
		base := key[:strings.IndexByte(key, 0)]
		if !h.haveInf {
			return fmt.Errorf("histogram %s: no +Inf bucket", base)
		}
		if h.haveCount && h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", base, h.infCount, h.count)
		}
	}
	return nil
}

func parseExpositionValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// histBaseName strips the histogram series suffixes.
func histBaseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// stripLE removes the le pair from a label block so bucket series of
// one histogram child share a key.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := splitLabelPairs(inner)
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, "le=") {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// leOf extracts the unquoted le label value, or "".
func leOf(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, p := range splitLabelPairs(inner) {
		if strings.HasPrefix(p, "le=") {
			v := strings.TrimPrefix(p, "le=")
			if u, err := strconv.Unquote(v); err == nil {
				return u
			}
			return v
		}
	}
	return ""
}

// splitLabelPairs splits k="v" pairs on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
