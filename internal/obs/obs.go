// Package obs is the engine-wide observability substrate: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms organized into labeled families), a
// Prometheus text-exposition writer, Go runtime families backed by
// runtime/metrics, and a lightweight per-query trace that records
// phase spans (parse → prepare → solve → stream).
//
// The package is deliberately tiny and allocation-free on the hot
// paths: updating a counter or observing a histogram is a handful of
// atomic operations, and label resolution (Family.With) is expected to
// happen once at instrumentation-site setup, not per event. All engine
// layers register into the process-global Default registry; semwebd
// exposes it on GET /metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the exposition type of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// LatencyBuckets is the default histogram bucket layout for latencies,
// in seconds: 100µs to 10s in a coarse log scale. Fixed buckets keep
// Observe a constant-time loop over a small array with no allocation.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Observations are
// durations; the exposition renders bucket bounds and the sum in
// seconds, following the Prometheus histogram convention (cumulative
// buckets, _sum, _count).
type Histogram struct {
	bounds []float64       // ascending upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Family is one named metric family: a help string, a kind, a fixed
// label-name set, and one child metric per distinct label-value tuple.
// Children are created on first With and live forever (the usual
// Prometheus model; label values must be low-cardinality).
type Family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	fn       func() float64 // callback gauge; exclusive with children
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

const labelSep = "\x1f"

// child returns (creating if needed) the metric for the label values.
func (f *Family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %s has labels %v, got %d values", f.name, f.labels, len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	switch f.kind {
	case KindCounter:
		m = &Counter{}
	case KindGauge:
		m = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		m = h
	}
	f.children[key] = m
	return m
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values (one per label
// name, in registration order). Resolve once at setup, not per event.
func (v CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Families are registered once (idempotently:
// re-registering the same name with the same kind returns the existing
// family) and emitted in name order.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*Family)} }

// Default is the process-global registry every engine layer registers
// into; semwebd's GET /metrics exposes it.
var Default = NewRegistry()

var nameOK = func(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family registers (or fetches) a family. Kind or label mismatches on
// an existing name are programmer errors and panic.
func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *Family {
	if !nameOK(name) {
		panic("obs: invalid metric name " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic("obs: conflicting re-registration of " + name)
		}
		return f
	}
	f := &Family{
		name: name, help: help, kind: kind,
		labels: labels, buckets: buckets,
		children: make(map[string]any),
	}
	r.fams[name] = f
	return f
}

// Counter registers an unlabeled counter family and returns its metric.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, KindCounter, nil, labels)}
}

// Gauge registers an unlabeled gauge family and returns its metric.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, KindGauge, nil, labels)}
}

// GaugeFunc registers a callback gauge: fn is invoked at scrape time.
// It must be safe for concurrent use and cheap.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram registers an unlabeled histogram family with the given
// bucket upper bounds (nil selects LatencyBuckets) and returns its
// metric.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return r.family(name, help, KindHistogram, buckets, nil).child(nil).(*Histogram)
}

// HistogramVec registers a labeled histogram family (nil buckets
// selects LatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return HistogramVec{r.family(name, help, KindHistogram, buckets, labels)}
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families in name order, children
// in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*Family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *Family) write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.RLock()
	fn := f.fn
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()

	if fn != nil {
		fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(fn()))
	}
	for i, k := range keys {
		var pairs []string
		if len(f.labels) > 0 {
			values := strings.Split(k, labelSep)
			pairs = make([]string, len(f.labels))
			for j, l := range f.labels {
				pairs[j] = fmt.Sprintf("%s=%q", l, values[j])
			}
		}
		switch m := children[i].(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelBlock(pairs), m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelBlock(pairs), m.Value())
		case *Histogram:
			// The totals are derived from the bucket reads themselves, not
			// from the count field: a concurrent Observe lands in its bucket
			// before it bumps the count, so mixing the two sources could
			// render an +Inf line below an earlier cumulative bucket.
			cum := uint64(0)
			for j, bound := range m.bounds {
				cum += m.counts[j].Load()
				le := fmt.Sprintf("le=%q", formatFloat(bound))
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelBlock(append(append([]string(nil), pairs...), le)), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelBlock(append(append([]string(nil), pairs...), `le="+Inf"`)), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelBlock(pairs), formatFloat(m.Sum().Seconds()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelBlock(pairs), cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func labelBlock(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
