package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"strings"
	"time"
)

// Go process families, backed by runtime/metrics and sampled at scrape
// time. The set is fixed and conservative — metrics the runtime has
// served stably — and an entry the running runtime does not know is
// skipped rather than rendered as garbage.
var runtimeFamilies = []struct {
	sample string // runtime/metrics name
	name   string // exposition name
	kind   Kind
	help   string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", KindGauge,
		"Number of live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_memory_heap_objects_bytes", KindGauge,
		"Bytes occupied by live heap objects plus dead objects not yet swept."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", KindGauge,
		"All memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", KindCounter,
		"Completed GC cycles."},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes_total", KindCounter,
		"Cumulative bytes allocated on the heap."},
	{"/gc/heap/frees:bytes", "go_gc_heap_frees_bytes_total", KindCounter,
		"Cumulative bytes freed from the heap."},
}

var processStart = time.Now()

// WriteGoRuntime writes the Go process families (go_*) plus
// process_start_time_seconds in the text exposition format. It samples
// runtime/metrics on every call; the cost is a few microseconds.
func WriteGoRuntime(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeFamilies))
	for i, f := range runtimeFamilies {
		samples[i].Name = f.sample
	}
	metrics.Read(samples)

	var b strings.Builder
	for i, f := range runtimeFamilies {
		var v float64
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v = float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			v = samples[i].Value.Float64()
		default:
			continue // metric unknown to this runtime
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind, f.name, formatFloat(v))
	}
	fmt.Fprintf(&b, "# HELP go_gomaxprocs Value of GOMAXPROCS.\n# TYPE go_gomaxprocs gauge\ngo_gomaxprocs %d\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "# HELP process_start_time_seconds Unix time the process started.\n# TYPE process_start_time_seconds gauge\nprocess_start_time_seconds %s\n",
		formatFloat(float64(processStart.UnixNano())/1e9))
	_, err := io.WriteString(w, b.String())
	return err
}
