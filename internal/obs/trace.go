package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is a lightweight per-query trace: a start time plus the phase
// spans recorded against it (parse → prepare/closure → solve → stream
// on the query path). A Trace is carried through the evaluation via
// the context (WithTrace / TraceFrom); layers that see no trace pay a
// single nil check. All methods are safe on a nil receiver — they do
// nothing — so instrumentation sites never branch.
//
// A Trace is safe for concurrent use: the producer goroutine of a
// streaming evaluation and the HTTP handler consuming it may both
// record spans.
type Trace struct {
	t0 time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one recorded phase: its name, its start offset from the
// trace's creation, and its duration.
type Span struct {
	Name     string
	Offset   time.Duration
	Duration time.Duration
}

// NewTrace starts a trace now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Start returns the trace's creation time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

var noopEnd = func() {}

// StartSpan begins a phase span and returns the function that ends it.
// Typical use:
//
//	defer obs.TraceFrom(ctx).StartSpan("prepare")()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Offset: start.Sub(t.t0), Duration: end.Sub(start)})
		t.mu.Unlock()
	}
}

// AddSpan records an externally measured phase.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Offset: start.Sub(t.t0), Duration: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// String renders the spans as "name=duration" pairs in start order —
// the form the slow-query log dumps.
func (t *Trace) String() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	parts := make([]string, len(spans))
	for i, s := range spans {
		parts[i] = fmt.Sprintf("%s=%s", s.Name, s.Duration.Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil. The nil result
// is usable: every Trace method no-ops on nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
