package canon

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/gen"
	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/term"
)

func iri(s string) term.Term { return term.NewIRI(s) }
func blk(s string) term.Term { return term.NewBlank(s) }

func TestGroundGraphUnchanged(t *testing.T) {
	g := graph.New(graph.T(iri("a"), iri("p"), iri("b")))
	if !Canonicalize(g).Equal(g) {
		t.Fatal("ground graph changed by canonicalization")
	}
}

func TestCanonicalizeIsIsomorphicCopy(t *testing.T) {
	g := gen.Enc(gen.Cycle(5), "v")
	c := Canonicalize(g)
	if !hom.Isomorphic(g, c) {
		t.Fatal("canonical form not isomorphic to input")
	}
	// All blanks renamed to the canonical alphabet.
	for b := range c.BlankNodes() {
		if b.Value[0] != 'c' {
			t.Fatalf("non-canonical blank label %v", b)
		}
	}
}

func TestIsomorphicGraphsSameString(t *testing.T) {
	// Renamings of structured graphs canonicalize identically.
	families := []func(label string) *graph.Graph{
		func(l string) *graph.Graph { return gen.Enc(gen.Cycle(6), l) },
		func(l string) *graph.Graph { return gen.Enc(gen.Clique(4), l) },
		func(l string) *graph.Graph { return gen.Enc(gen.Path(5), l) },
		func(l string) *graph.Graph {
			return graph.New(
				graph.T(blk(l+"1"), iri("p"), blk(l+"2")),
				graph.T(blk(l+"2"), iri("q"), iri("g")),
				graph.T(blk(l+"3"), iri("p"), blk(l+"2")),
			)
		},
	}
	for i, mk := range families {
		a, b := mk("x"), mk("completely-different")
		if String(a) != String(b) {
			t.Errorf("family %d: isomorphic graphs canonicalize differently:\n%s\nvs\n%s",
				i, String(a), String(b))
		}
	}
}

func TestNonIsomorphicGraphsDifferentString(t *testing.T) {
	pairs := [][2]*graph.Graph{
		{gen.Enc(gen.Cycle(5), "a"), gen.Enc(gen.Cycle(6), "b")},
		{gen.Enc(gen.Path(4), "a"), gen.Enc(gen.Path(5), "b")},
		{
			graph.New(graph.T(blk("x"), iri("p"), blk("x"))),
			graph.New(graph.T(blk("x"), iri("p"), blk("y"))),
		},
	}
	for i, p := range pairs {
		if String(p[0]) == String(p[1]) {
			t.Errorf("pair %d: non-isomorphic graphs share a canonical string", i)
		}
	}
}

func TestCanonicalStringMatchesIsomorphismDecider(t *testing.T) {
	// Random cross-validation: String equality ⇔ hom.Isomorphic.
	rng := rand.New(rand.NewSource(71))
	mk := func() *graph.Graph {
		g := graph.New()
		n := 3 + rng.Intn(3)
		for k := 0; k < n; k++ {
			s := blk(fmt.Sprintf("b%d", rng.Intn(4)))
			var o term.Term
			if rng.Intn(3) == 0 {
				o = iri("g")
			} else {
				o = blk(fmt.Sprintf("b%d", rng.Intn(4)))
			}
			g.Add(graph.T(s, iri(fmt.Sprintf("p%d", rng.Intn(2))), o))
		}
		return g
	}
	for round := 0; round < 60; round++ {
		g1, g2 := mk(), mk()
		same := String(g1) == String(g2)
		iso := hom.Isomorphic(g1, g2)
		if same != iso {
			t.Fatalf("round %d: canonical-string equality (%v) vs isomorphism (%v)\nG1:\n%v\nG2:\n%v",
				round, same, iso, g1, g2)
		}
	}
}

func TestHighlySymmetricGraphs(t *testing.T) {
	// Cliques and symmetric cycles exercise the individualize-and-refine
	// branching (color refinement alone cannot split them).
	for _, n := range []int{3, 4, 5} {
		a := gen.Enc(gen.Clique(n), "x")
		b := gen.Enc(gen.Clique(n), "y")
		if String(a) != String(b) {
			t.Errorf("K%d: renamed cliques canonicalize differently", n)
		}
	}
	// Two disjoint 3-cycles vs one 6-cycle: same degree sequence,
	// non-isomorphic.
	two3 := graph.Union(gen.Enc(gen.Cycle(3), "a"), gen.Enc(gen.Cycle(3), "b"))
	one6 := gen.Enc(gen.Cycle(6), "c")
	if String(two3) == String(one6) {
		t.Error("2×C3 and C6 share a canonical string")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	g := gen.Enc(gen.Cycle(7), "v")
	c1 := Canonicalize(g)
	c2 := Canonicalize(c1)
	if !c1.Equal(c2) {
		t.Fatal("canonicalization not idempotent")
	}
}

func TestMixedGroundAndBlank(t *testing.T) {
	// Ground anchors must break symmetry deterministically.
	g1 := graph.New(
		graph.T(blk("x"), iri("p"), iri("a")),
		graph.T(blk("y"), iri("p"), iri("b")),
	)
	g2 := graph.New(
		graph.T(blk("u"), iri("p"), iri("b")),
		graph.T(blk("w"), iri("p"), iri("a")),
	)
	if String(g1) != String(g2) {
		t.Fatal("anchored renaming not canonical")
	}
}
