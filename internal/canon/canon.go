// Package canon computes canonical forms of RDF graphs: a deterministic
// renaming of blank nodes such that two graphs receive identical
// canonical forms exactly when they are isomorphic (blank-renaming
// equivalent, Section 2.1 of the paper).
//
// Combined with the normal form of Section 3.3, this turns equivalence
// of RDF graphs into string equality: G ≡ H iff the canonical
// serializations of nf(G) and nf(H) coincide (Theorem 3.19) — a total
// certificate usable as a database fingerprint.
//
// The algorithm is iterated color refinement (1-WL) over blank nodes,
// with individualize-and-refine branching on ties; it is exact (not a
// heuristic), with exponential worst-case time on highly symmetric
// graphs, which Theorem 3.12's hardness results make unavoidable.
package canon

import (
	"fmt"
	"sort"
	"strings"

	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// Canonicalize returns an isomorphic copy of g whose blank nodes carry
// canonical labels c0, c1, …: isomorphic inputs yield Equal outputs.
func Canonicalize(g *graph.Graph) *graph.Graph {
	m := CanonicalMap(g)
	return m.Apply(g)
}

// String returns the canonical serialization of g: isomorphic graphs map
// to identical strings, non-isomorphic ones to different strings.
func String(g *graph.Graph) string {
	return Canonicalize(g).String()
}

// CanonicalMap computes the canonical blank renaming of g.
func CanonicalMap(g *graph.Graph) graph.Map {
	blanks := g.BlankNodeList()
	if len(blanks) == 0 {
		return graph.Map{}
	}
	st := newState(g, blanks)
	order := st.search(initialColors(st))
	m := make(graph.Map, len(order))
	for i, b := range order {
		m[b] = term.NewBlank(fmt.Sprintf("c%d", i))
	}
	return m
}

// state holds the immutable per-graph structures of the search.
type state struct {
	g      *graph.Graph
	blanks []term.Term
	index  map[term.Term]int // blank -> position in blanks
	// occurrences of each blank: (triple, position) descriptors.
	occ map[term.Term][]occurrence
}

type occurrence struct {
	t   graph.Triple
	pos int // 0 = subject, 2 = object
}

func newState(g *graph.Graph, blanks []term.Term) *state {
	st := &state{
		g:      g,
		blanks: blanks,
		index:  make(map[term.Term]int, len(blanks)),
		occ:    make(map[term.Term][]occurrence, len(blanks)),
	}
	for i, b := range blanks {
		st.index[b] = i
	}
	for _, t := range g.Triples() {
		if t.S.IsBlank() {
			st.occ[t.S] = append(st.occ[t.S], occurrence{t, 0})
		}
		if t.O.IsBlank() {
			st.occ[t.O] = append(st.occ[t.O], occurrence{t, 2})
		}
	}
	return st
}

// coloring assigns each blank (by index) a rank; equal ranks mean
// "indistinguishable so far".
type coloring []int

// initialColors starts with all blanks in one class.
func initialColors(st *state) coloring {
	return make(coloring, len(st.blanks))
}

// refine iterates signature-based splitting until the partition is
// stable. Signatures include, per occurrence, the predicate, the
// position, and the other endpoint (its ground identity, or its current
// rank when blank), so the refinement respects exactly the structure a
// blank-renaming isomorphism must preserve.
func (st *state) refine(c coloring) coloring {
	cur := append(coloring(nil), c...)
	for {
		sigs := make([]string, len(st.blanks))
		for i, b := range st.blanks {
			var parts []string
			for _, o := range st.occ[b] {
				other := o.t.O
				if o.pos == 2 {
					other = o.t.S
				}
				otherDesc := other.String()
				if other.IsBlank() {
					otherDesc = fmt.Sprintf("~%d", cur[st.index[other]])
				}
				parts = append(parts, fmt.Sprintf("%d|%s|%s", o.pos, o.t.P.String(), otherDesc))
			}
			sort.Strings(parts)
			sigs[i] = fmt.Sprintf("%d(%s)", cur[i], strings.Join(parts, ";"))
		}
		// Rank-compress the signatures deterministically.
		uniq := append([]string(nil), sigs...)
		sort.Strings(uniq)
		uniq = dedupe(uniq)
		rank := make(map[string]int, len(uniq))
		for r, s := range uniq {
			rank[s] = r
		}
		next := make(coloring, len(st.blanks))
		for i, s := range sigs {
			next[i] = rank[s]
		}
		if equalColoring(cur, next) {
			return next
		}
		cur = next
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func equalColoring(a, b coloring) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// discrete reports whether every class is a singleton.
func discrete(c coloring) bool {
	seen := make(map[int]bool, len(c))
	for _, r := range c {
		if seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

// orderOf converts a discrete coloring to the blank ordering it induces.
func (st *state) orderOf(c coloring) []term.Term {
	type pair struct {
		rank int
		b    term.Term
	}
	ps := make([]pair, len(st.blanks))
	for i, b := range st.blanks {
		ps[i] = pair{c[i], b}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].rank < ps[j].rank })
	out := make([]term.Term, len(ps))
	for i, p := range ps {
		out[i] = p.b
	}
	return out
}

// serializationFor renders the canonical string induced by an ordering.
func (st *state) serializationFor(order []term.Term) string {
	m := make(graph.Map, len(order))
	for i, b := range order {
		m[b] = term.NewBlank(fmt.Sprintf("c%d", i))
	}
	return m.Apply(st.g).String()
}

// search runs individualize-and-refine: refine; if discrete, done;
// otherwise pick the first non-singleton class and branch on each of its
// members, keeping the branch with the lexicographically smallest
// canonical serialization. Exact by exhaustiveness.
func (st *state) search(c coloring) []term.Term {
	c = st.refine(c)
	if discrete(c) {
		return st.orderOf(c)
	}
	// Locate the smallest-rank class with ≥ 2 members.
	classOf := map[int][]int{}
	for i, r := range c {
		classOf[r] = append(classOf[r], i)
	}
	ranks := make([]int, 0, len(classOf))
	for r, members := range classOf {
		if len(members) > 1 {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	target := classOf[ranks[0]]

	bestStr := ""
	var bestOrder []term.Term
	for _, idx := range target {
		branch := append(coloring(nil), c...)
		// Individualize: give idx a rank below its whole class, keeping
		// all ranks distinct from others by rescaling.
		for j := range branch {
			branch[j] *= 2
		}
		branch[idx]--
		order := st.search(branch)
		s := st.serializationFor(order)
		if bestOrder == nil || s < bestStr {
			bestStr = s
			bestOrder = order
		}
	}
	return bestOrder
}
