package graph_test

// Cross-package property tests for graph algebra: these live in an
// external test package so they can use homomorphism-based notions
// (isomorphism) without an import cycle.

import (
	"fmt"
	"math/rand"
	"testing"

	"semwebdb/internal/graph"
	"semwebdb/internal/hom"
	"semwebdb/internal/term"
)

func randGraph(rng *rand.Rand, label string, n int) *graph.Graph {
	g := graph.New()
	for k := 0; k < n; k++ {
		var s, o term.Term
		if rng.Intn(2) == 0 {
			s = term.NewBlank(fmt.Sprintf("%sb%d", label, rng.Intn(3)))
		} else {
			s = term.NewIRI(fmt.Sprintf("urn:n:%d", rng.Intn(4)))
		}
		if rng.Intn(2) == 0 {
			o = term.NewBlank(fmt.Sprintf("%sb%d", label, rng.Intn(3)))
		} else {
			o = term.NewIRI(fmt.Sprintf("urn:n:%d", rng.Intn(4)))
		}
		g.Add(graph.T(s, term.NewIRI(fmt.Sprintf("urn:p:%d", rng.Intn(2))), o))
	}
	return g
}

func TestMergeCommutativeUpToIso(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 30; round++ {
		g1 := randGraph(rng, "x", 4)
		g2 := randGraph(rng, "x", 4) // same label pool: collisions likely
		m12 := graph.Merge(g1, g2)
		m21 := graph.Merge(g2, g1)
		if !hom.Isomorphic(m12, m21) {
			t.Fatalf("round %d: merge not commutative up to iso:\n%v\nvs\n%v", round, m12, m21)
		}
	}
}

func TestMergeAssociativeUpToIso(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 20; round++ {
		g1 := randGraph(rng, "x", 3)
		g2 := randGraph(rng, "x", 3)
		g3 := randGraph(rng, "x", 3)
		a := graph.Merge(graph.Merge(g1, g2), g3)
		b := graph.Merge(g1, graph.Merge(g2, g3))
		if !hom.Isomorphic(a, b) {
			t.Fatalf("round %d: merge not associative up to iso", round)
		}
	}
}

func TestMergePreservesTripleCountUpToCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 30; round++ {
		g1 := randGraph(rng, "x", 4)
		g2 := randGraph(rng, "x", 4)
		m := graph.Merge(g1, g2)
		// Merge never identifies blanks, so the only collapse possible
		// is between equal ground triples.
		ground := g1.GroundPart().Minus(g2.GroundPart())
		minSize := g2.Len() + ground.Len()
		if m.Len() < minSize {
			t.Fatalf("round %d: merge lost triples: %d < %d", round, m.Len(), minSize)
		}
	}
}

func TestUnionIdempotentAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 30; round++ {
		g1 := randGraph(rng, "x", 5)
		g2 := randGraph(rng, "y", 5)
		if !graph.Union(g1, g1).Equal(g1) {
			t.Fatal("union not idempotent")
		}
		u := graph.Union(g1, g2)
		if !g1.SubgraphOf(u) || !g2.SubgraphOf(u) {
			t.Fatal("union not monotone")
		}
	}
}

func TestIsomorphismEquivalenceRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for round := 0; round < 15; round++ {
		g := randGraph(rng, "x", 5)
		// Reflexive.
		if !hom.Isomorphic(g, g) {
			t.Fatal("iso not reflexive")
		}
		// Symmetric: rename blanks.
		ren := make(graph.Map)
		for i, b := range g.BlankNodeList() {
			ren[b] = term.NewBlank(fmt.Sprintf("fresh%d", i))
		}
		h := ren.Apply(g)
		if !hom.Isomorphic(g, h) || !hom.Isomorphic(h, g) {
			t.Fatal("iso not symmetric under renaming")
		}
		// Transitive through a second renaming.
		ren2 := make(graph.Map)
		for i, b := range h.BlankNodeList() {
			ren2[b] = term.NewBlank(fmt.Sprintf("again%d", i))
		}
		k := ren2.Apply(h)
		if !hom.Isomorphic(g, k) {
			t.Fatal("iso not transitive")
		}
	}
}

func TestSkolemizationIsInstanceInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for round := 0; round < 30; round++ {
		g := randGraph(rng, "x", 5)
		sk := graph.Skolemize(g)
		// G* is an instance of G: the skolemizing map witnesses it.
		mu := make(graph.Map)
		for b := range g.BlankNodes() {
			mu[b] = term.NewIRI(graph.SkolemPrefix + b.Value)
		}
		if !mu.Apply(g).Equal(sk) {
			t.Fatal("skolemization is not the instance under the skolem map")
		}
		// And there is a map G → G* but (for graphs with blanks whose
		// image is fresh) none back unless G had no blanks.
		if _, ok := hom.FindMap(g, sk); !ok {
			t.Fatal("no map G → G*")
		}
	}
}

func TestMapApplicationMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for round := 0; round < 30; round++ {
		g1 := randGraph(rng, "x", 4)
		g2 := randGraph(rng, "x", 6)
		if !g1.SubgraphOf(g2) {
			g2 = graph.Union(g1, g2)
		}
		mu := graph.Map{}
		for b := range g2.BlankNodes() {
			if rng.Intn(2) == 0 {
				mu[b] = term.NewIRI("urn:n:0")
			}
		}
		if !mu.Apply(g1).SubgraphOf(mu.Apply(g2)) {
			t.Fatal("map application not monotone w.r.t. ⊆")
		}
	}
}
