package graph

import (
	"fmt"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/term"
)

// churnedGraph builds a graph whose dictionary holds garbage: live
// triples interleaved with interned-but-unused terms, so the live IDs
// are non-contiguous.
func churnedGraph(n int) (*Graph, int) {
	g := New()
	d := g.Dict()
	garbage := 0
	for i := 0; i < n; i++ {
		d.Intern(term.NewIRI(fmt.Sprintf("urn:dead:%d", i)))
		garbage++
		g.MustAdd(T(
			term.NewIRI(fmt.Sprintf("urn:s:%d", i)),
			term.NewIRI(fmt.Sprintf("urn:p:%d", i%7)),
			term.NewIRI(fmt.Sprintf("urn:o:%d", i%13))))
		d.Intern(term.NewBlank(fmt.Sprintf("dead%d", i)))
		garbage++
	}
	return g, garbage
}

func TestCompactedDropsGarbageAndPreservesSet(t *testing.T) {
	g, garbage := churnedGraph(200)
	before := g.String()
	oldLen := g.Dict().Len()

	ng, dropped := Compacted(g)
	if dropped != garbage {
		t.Fatalf("dropped %d terms, want %d", dropped, garbage)
	}
	nd := ng.Dict()
	if nd.Len() != oldLen-garbage {
		t.Fatalf("new dict has %d terms, want %d", nd.Len(), oldLen-garbage)
	}
	if nd.Len() != ng.UniverseSize() {
		t.Fatalf("new dict not dense: %d terms, %d live", nd.Len(), ng.UniverseSize())
	}
	if ng.Len() != g.Len() {
		t.Fatalf("triple count changed: %d -> %d", g.Len(), ng.Len())
	}
	if after := ng.String(); after != before {
		t.Fatalf("serialization changed by compaction:\n%s\nvs\n%s", before, after)
	}
	// The source graph is untouched and still valid on its old dict.
	if g.Dict().Len() != oldLen {
		t.Fatalf("source dict mutated: %d -> %d", oldLen, g.Dict().Len())
	}
	if g.String() != before {
		t.Fatal("source graph mutated")
	}
}

// TestCompactedPermutations: the rewritten permutations must stay
// sorted (the remap is monotone) and agree with the triple set, so
// range scans keep working without a rebuild.
func TestCompactedPermutations(t *testing.T) {
	g, _ := churnedGraph(150)
	ng, _ := Compacted(g)
	for _, o := range []dict.Order{dict.SPO, dict.POS, dict.OSP} {
		keys := ng.Index(o)
		if len(keys) != ng.Len() {
			t.Fatalf("order %d: %d keys, want %d", o, len(keys), ng.Len())
		}
		for i := 1; i < len(keys); i++ {
			if !keys[i-1].Less(keys[i]) {
				t.Fatalf("order %d not sorted at %d", o, i)
			}
		}
		for _, k := range keys {
			if !ng.HasID(dict.Unpermute(k, o)) {
				t.Fatalf("order %d key %v not in set", o, k)
			}
		}
	}
	// A representative range scan through the rebuilt indexes.
	pid, ok := ng.Dict().Lookup(term.NewIRI("urn:p:0"))
	if !ok {
		t.Fatal("live predicate missing from compacted dict")
	}
	n := ng.CountID(dict.Wildcard, pid, dict.Wildcard)
	m := 0
	ng.MatchID(dict.Wildcard, pid, dict.Wildcard, func(enc dict.Triple3) bool {
		if ng.Dict().TermOf(enc[1]) != term.NewIRI("urn:p:0") {
			t.Fatalf("scan returned wrong predicate %v", ng.Dict().TermOf(enc[1]))
		}
		m++
		return true
	})
	if n != m || n == 0 {
		t.Fatalf("CountID = %d, scan = %d", n, m)
	}
}

func TestCompactedNoGarbageIsIdentityShaped(t *testing.T) {
	g := New(
		T(term.NewIRI("urn:s"), term.NewIRI("urn:p"), term.NewIRI("urn:o")),
		T(term.NewIRI("urn:s"), term.NewIRI("urn:p"), term.NewBlank("b")))
	ng, dropped := Compacted(g)
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if !ng.Equal(g) {
		t.Fatal("compacted graph differs")
	}
}

func TestCompactedEmpty(t *testing.T) {
	g := New()
	g.Dict().Intern(term.NewIRI("urn:dead"))
	ng, dropped := Compacted(g)
	if dropped != 1 || ng.Len() != 0 || ng.Dict().Len() != 0 {
		t.Fatalf("empty compaction: dropped=%d len=%d dict=%d", dropped, ng.Len(), ng.Dict().Len())
	}
}
