// Package graph implements RDF graphs as defined in Section 2.1 of
// "Foundations of Semantic Web databases": sets of RDF triples over
// U ∪ B, together with the operations the paper builds its theory on —
// maps (blank-node homomorphisms), instances, union, merge, and the
// skolemization operators (·)* and (·)⋆ of Section 3.1.
//
// Representation. A Graph is dictionary-encoded: every term is interned
// to a dense dict.ID and the triple set is a set of dict.Triple3
// values, with the three sorted permutations SPO/POS/OSP materialized
// lazily for pattern range scans (MatchID/CountID). Strings are only
// touched at the term-level API boundary — parsers, serializers and the
// public facade — while the engine layers (match, hom, closure, core,
// query) operate on IDs end-to-end. Graphs derived from one another
// (clones, unions, closures, instances under a map) share one
// dictionary, so their set operations compare integers, never strings.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"semwebdb/internal/dict"
	"semwebdb/internal/term"
)

// Triple is an RDF triple (s, p, o) ∈ (U ∪ B) × U × (U ∪ B ∪ L).
// It is a comparable value type.
type Triple struct {
	S, P, O term.Term
}

// T is shorthand for constructing a triple.
func T(s, p, o term.Term) Triple { return Triple{S: s, P: p, O: o} }

// WellFormed reports whether the triple respects the RDF positional
// restrictions: subject in U ∪ B, predicate in U, object in U ∪ B ∪ L.
// Triples containing variables are not well formed data triples.
func (t Triple) WellFormed() bool {
	return t.S.CanSubject() && t.P.CanPredicate() && t.O.CanObject()
}

// IsGround reports whether the triple mentions no blank nodes.
func (t Triple) IsGround() bool {
	return !t.S.IsBlank() && !t.P.IsBlank() && !t.O.IsBlank()
}

// HasVar reports whether any position holds a query variable.
func (t Triple) HasVar() bool {
	return t.S.IsVar() || t.P.IsVar() || t.O.IsVar()
}

// Compare totally orders triples lexicographically by subject, predicate,
// object (using term.Compare).
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// String renders the triple in N-Triples style (without the trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Terms returns the three positions in order.
func (t Triple) Terms() [3]term.Term { return [3]term.Term{t.S, t.P, t.O} }

// WellFormedID reports whether the ID triple respects the RDF positional
// restrictions, resolving kinds through d. Kinds are resolved one ID at
// a time so the check is cheap on scratch-overlay dictionaries too (no
// flattened Kinds slice is materialized).
func WellFormedID(d *dict.Dict, t dict.Triple3) bool {
	s, p, o := d.KindOf(t[0]), d.KindOf(t[1]), d.KindOf(t[2])
	return (s == term.KindIRI || s == term.KindBlank) &&
		p == term.KindIRI &&
		(o == term.KindIRI || o == term.KindBlank || o == term.KindLiteral)
}

// idxState is one lazily built sorted permutation; immutable once built.
type idxState struct {
	version uint64
	keys    []dict.Triple3
}

// Graph is an RDF graph: a finite set of RDF triples. The zero value is
// not ready to use; construct graphs with New or NewWithDict.
//
// A Graph is not safe for concurrent mutation, but an immutable graph
// (no Add/Remove after publication) is safe for concurrent readers,
// including the lazy index builds triggered by MatchID/CountID. Each
// permutation has its own build lock, so concurrent first scans of
// different orders build their indexes in parallel.
type Graph struct {
	d   *dict.Dict
	set map[dict.Triple3]struct{}

	version uint64        // bumped on every mutation
	imu     [3]sync.Mutex // per-order build locks
	idx     [3]atomic.Pointer[idxState]
}

// New returns an empty graph with a private dictionary, optionally
// populated with the given triples.
func New(ts ...Triple) *Graph {
	return NewWithDict(dict.New(), ts...)
}

// NewWithDict returns an empty graph interning into the given shared
// dictionary, optionally populated with the given triples.
func NewWithDict(d *dict.Dict, ts ...Triple) *Graph {
	g := &Graph{d: d, set: make(map[dict.Triple3]struct{}, len(ts))}
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

// NewWithDictCap returns an empty graph over a shared dictionary with
// room preallocated for n triples — the bulk-ingest constructor used
// by the snapshot loader.
func NewWithDictCap(d *dict.Dict, n int) *Graph {
	return &Graph{d: d, set: make(map[dict.Triple3]struct{}, n)}
}

// FromTriples builds a graph from a slice of triples.
func FromTriples(ts []Triple) *Graph { return New(ts...) }

// Dict returns the dictionary the graph interns into. Graphs derived
// from this one (clones, unions, instances, closures) share it.
func (g *Graph) Dict() *dict.Dict { return g.d }

// Intern interns a term into the graph's dictionary and returns its ID.
func (g *Graph) Intern(t term.Term) dict.ID { return g.d.Intern(t) }

// InternTriple interns all three positions of a triple.
func (g *Graph) InternTriple(t Triple) dict.Triple3 {
	return dict.Triple3{g.d.Intern(t.S), g.d.Intern(t.P), g.d.Intern(t.O)}
}

// lookupTriple encodes a triple without interning; ok is false when some
// position has never been interned (the triple is then certainly absent).
func (g *Graph) lookupTriple(t Triple) (dict.Triple3, bool) {
	s, ok := g.d.Lookup(t.S)
	if !ok {
		return dict.Triple3{}, false
	}
	p, ok := g.d.Lookup(t.P)
	if !ok {
		return dict.Triple3{}, false
	}
	o, ok := g.d.Lookup(t.O)
	if !ok {
		return dict.Triple3{}, false
	}
	return dict.Triple3{s, p, o}, true
}

// decode resolves an ID triple back to terms.
func (g *Graph) decode(t dict.Triple3) Triple {
	return Triple{S: g.d.TermOf(t[0]), P: g.d.TermOf(t[1]), O: g.d.TermOf(t[2])}
}

// A graph normally keeps its triple set as a hash map. ExtendedByIDs
// returns a *frozen* graph instead: set is nil and the sorted SPO
// permutation is the authoritative triple set, so extending a large
// closure by a small delta never pays an O(|G|) map copy. The
// read-only operations concurrent evaluation touches — HasID, Len,
// EachID, MatchID, CountID, Index — understand both representations
// without mutating anything; every other operation materializes the
// map first (O(|G|) once, idempotent), which is safe because those
// paths already require exclusive ownership.

// frozenKeys returns the authoritative SPO run of a frozen graph.
func (g *Graph) frozenKeys() []dict.Triple3 {
	st := g.idx[dict.SPO].Load()
	if st == nil {
		return nil
	}
	return st.keys
}

// materialize builds the hash-map representation of a frozen graph in
// place. It is not safe under concurrent access to g — callers are
// mutators (which require exclusive ownership anyway) and whole-graph
// transforms; the concurrent-read paths never materialize.
func (g *Graph) materialize() {
	if g.set != nil {
		return
	}
	keys := g.frozenKeys()
	set := make(map[dict.Triple3]struct{}, len(keys))
	for _, t := range keys {
		set[t] = struct{}{}
	}
	g.set = set
}

// hasEnc reports membership of an encoded triple in either
// representation: a map probe, or a binary search on the SPO run.
func (g *Graph) hasEnc(t dict.Triple3) bool {
	if g.set != nil {
		_, ok := g.set[t]
		return ok
	}
	lo, hi := dict.SearchRange(g.frozenKeys(), t, 3)
	return lo < hi
}

// insert adds a raw encoded triple, bypassing well-formedness checks
// (Map.Apply relies on this: instances are kept exactly as produced).
func (g *Graph) insert(t dict.Triple3) bool {
	g.materialize()
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	g.version++
	return true
}

// Add inserts a triple. It returns true if the triple was not yet present.
// Ill-formed triples (wrong positional kinds, variables) are rejected with
// a false return and not inserted.
func (g *Graph) Add(t Triple) bool {
	if !t.WellFormed() {
		return false
	}
	return g.insert(g.InternTriple(t))
}

// AddID inserts an already-encoded triple, validating the positional
// kinds through the dictionary. It returns true if the triple is
// well-formed and was not yet present. The presence probe runs before
// the kind check, keeping re-derivation-heavy callers (saturation) on
// the cheap path.
func (g *Graph) AddID(t dict.Triple3) bool {
	if g.hasEnc(t) {
		return false
	}
	if !WellFormedID(g.d, t) {
		return false
	}
	g.materialize()
	g.set[t] = struct{}{}
	g.version++
	return true
}

// MustAdd inserts a triple and panics if it is ill-formed. It is intended
// for tests and literal program construction.
func (g *Graph) MustAdd(t Triple) {
	if !t.WellFormed() {
		panic(fmt.Sprintf("graph: ill-formed triple %s", t))
	}
	g.insert(g.InternTriple(t))
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	enc, ok := g.lookupTriple(t)
	if !ok {
		return false
	}
	if !g.hasEnc(enc) {
		return false
	}
	g.materialize()
	delete(g.set, enc)
	g.version++
	return true
}

// Has reports membership of a triple.
func (g *Graph) Has(t Triple) bool {
	enc, ok := g.lookupTriple(t)
	if !ok {
		return false
	}
	return g.hasEnc(enc)
}

// HasID reports membership of an encoded triple.
func (g *Graph) HasID(t dict.Triple3) bool {
	return g.hasEnc(t)
}

// Len returns the number of triples, written |G| in the paper.
func (g *Graph) Len() int {
	if g.set == nil {
		return len(g.frozenKeys())
	}
	return len(g.set)
}

// IsEmpty reports whether the graph has no triples.
func (g *Graph) IsEmpty() bool { return g.Len() == 0 }

// Triples returns the triples in canonical (sorted) order. The sort
// runs over the 12-byte encoded triples — equal IDs short-circuit the
// string comparison — and decoding happens once, in final order.
func (g *Graph) Triples() []Triple {
	d := g.d
	encs := make([]dict.Triple3, 0, g.Len())
	g.EachID(func(enc dict.Triple3) bool {
		encs = append(encs, enc)
		return true
	})
	sort.Slice(encs, func(i, j int) bool {
		a, b := encs[i], encs[j]
		for k := 0; k < 3; k++ {
			if a[k] == b[k] {
				continue
			}
			if c := d.TermOf(a[k]).Compare(d.TermOf(b[k])); c != 0 {
				return c < 0
			}
		}
		return false
	})
	ts := make([]Triple, len(encs))
	for i, enc := range encs {
		ts[i] = Triple{S: d.TermOf(enc[0]), P: d.TermOf(enc[1]), O: d.TermOf(enc[2])}
	}
	return ts
}

// Each calls fn for every triple in unspecified order; if fn returns
// false, iteration stops early.
func (g *Graph) Each(fn func(Triple) bool) {
	d := g.d
	g.EachID(func(enc dict.Triple3) bool {
		return fn(Triple{S: d.TermOf(enc[0]), P: d.TermOf(enc[1]), O: d.TermOf(enc[2])})
	})
}

// EachID calls fn for every encoded triple in unspecified order; if fn
// returns false, iteration stops early.
func (g *Graph) EachID(fn func(dict.Triple3) bool) {
	if g.set == nil {
		for _, enc := range g.frozenKeys() {
			if !fn(enc) {
				return
			}
		}
		return
	}
	for enc := range g.set {
		if !fn(enc) {
			return
		}
	}
}

// index returns the sorted permutation for the given order, building it
// on first use and after mutations. Built indexes are immutable and
// published atomically; the per-order lock only serializes builders of
// the same order, so readers warming different permutations at the same
// time proceed in parallel.
func (g *Graph) index(o dict.Order) []dict.Triple3 {
	if st := g.idx[o].Load(); st != nil && st.version == g.version {
		return st.keys
	}
	g.imu[o].Lock()
	defer g.imu[o].Unlock()
	if st := g.idx[o].Load(); st != nil && st.version == g.version {
		return st.keys
	}
	keys := make([]dict.Triple3, 0, g.Len())
	g.EachID(func(enc dict.Triple3) bool {
		keys = append(keys, dict.Permute(enc, o))
		return true
	})
	dict.SortIndex(keys)
	g.idx[o].Store(&idxState{version: g.version, keys: keys})
	return keys
}

// Index returns the sorted permutation of the current triple set for
// the given order, building it on first use. The returned slice is the
// graph's cached index: it is immutable and must not be modified. A
// snapshot serializer uses this to persist the permutations exactly as
// the scans consume them.
func (g *Graph) Index(o dict.Order) []dict.Triple3 { return g.index(o) }

// InstallIndex installs keys as the sorted permutation for the given
// order, replacing any cached index. The caller asserts that keys is
// precisely Permute(set, o) in sorted order for the graph's current
// triple set — a snapshot loader uses this so that reopened databases
// scan without re-sorting. Installing an index that violates the
// contract corrupts MatchID/CountID results.
func (g *Graph) InstallIndex(o dict.Order, keys []dict.Triple3) {
	g.idx[o].Store(&idxState{version: g.version, keys: keys})
}

// NewFromIndexes constructs a graph over d directly from prebuilt
// sorted permutations: spo, pos and osp must be the SPO/POS/OSP
// permutations (in the sense of dict.Permute) of one and the same
// well-formed triple set, each in sorted order. Since Permute(t, SPO)
// is the identity, spo doubles as the triple set itself. The caller
// hands over ownership of all three slices; violating the contract
// corrupts MatchID/CountID results, exactly as with InstallIndex.
//
// The parallel closure engine uses this to publish its result without
// a global re-sort: per-shard runs are sorted and merged while the
// shards are still partitioned, and the set map is the only structure
// built here.
func NewFromIndexes(d *dict.Dict, spo, pos, osp []dict.Triple3) *Graph {
	g := &Graph{d: d, set: make(map[dict.Triple3]struct{}, len(spo))}
	for _, enc := range spo {
		g.set[enc] = struct{}{}
	}
	g.InstallIndex(dict.SPO, spo)
	g.InstallIndex(dict.POS, pos)
	g.InstallIndex(dict.OSP, osp)
	return g
}

// MatchID streams every stored triple matching the pattern (Wildcard =
// any position) to fn; iteration stops early when fn returns false. The
// scan uses the permutation whose key prefix covers the bound positions,
// so it is a binary-search range scan with no post-filtering.
func (g *Graph) MatchID(sp, pp, op dict.ID, fn func(dict.Triple3) bool) {
	if sp != dict.Wildcard && pp != dict.Wildcard && op != dict.Wildcard {
		enc := dict.Triple3{sp, pp, op}
		if g.HasID(enc) {
			fn(enc)
		}
		return
	}
	o, prefix := dict.ChooseOrder(sp != dict.Wildcard, pp != dict.Wildcard, op != dict.Wildcard)
	idx := g.index(o)
	key := dict.Permute(dict.Triple3{sp, pp, op}, o)
	lo, hi := dict.SearchRange(idx, key, prefix)
	for i := lo; i < hi; i++ {
		if !fn(dict.Unpermute(idx[i], o)) {
			return
		}
	}
}

// CountID returns the number of triples matching the pattern. With all
// three permutations maintained this is exact and costs two binary
// searches.
func (g *Graph) CountID(sp, pp, op dict.ID) int {
	if sp != dict.Wildcard && pp != dict.Wildcard && op != dict.Wildcard {
		if g.HasID(dict.Triple3{sp, pp, op}) {
			return 1
		}
		return 0
	}
	o, prefix := dict.ChooseOrder(sp != dict.Wildcard, pp != dict.Wildcard, op != dict.Wildcard)
	if prefix == 0 {
		return g.Len()
	}
	idx := g.index(o)
	key := dict.Permute(dict.Triple3{sp, pp, op}, o)
	lo, hi := dict.SearchRange(idx, key, prefix)
	return hi - lo
}

// Clone returns an independent copy of the graph sharing its dictionary.
// Already-built permutation indexes are carried over (they are immutable)
// and invalidated on the clone's first mutation.
func (g *Graph) Clone() *Graph {
	h := &Graph{d: g.d, set: make(map[dict.Triple3]struct{}, g.Len())}
	g.EachID(func(enc dict.Triple3) bool {
		h.set[enc] = struct{}{}
		return true
	})
	h.version = g.version
	for o := range g.idx {
		h.idx[o].Store(g.idx[o].Load())
	}
	return h
}

// ExtendedByIDs returns a new graph holding g's triples plus added,
// sharing g's dictionary; g itself is unchanged, so published
// snapshots stay immutable under concurrent readers. The added triples
// must be well-formed encoded triples (the closure delta engines
// return exactly such runs); ones already present in g are skipped.
//
// The result is a *frozen* graph (see materialize): its sorted SPO
// permutation is the authoritative triple set and membership is a
// binary search, so the cost is O(|g| + |added|) slice merges per
// order with a handful of allocations — no O(|g|) hash-map copy.
// Other permutations built and current on g are merged the same way;
// ones not built stay lazy.
func (g *Graph) ExtendedByIDs(added []dict.Triple3) *Graph {
	fresh := make([]dict.Triple3, 0, len(added))
	seen := make(map[dict.Triple3]struct{}, len(added))
	for _, t := range added {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if g.hasEnc(t) {
			continue
		}
		fresh = append(fresh, t)
	}
	h := &Graph{d: g.d}
	for o := range g.idx {
		ord := dict.Order(o)
		var base []dict.Triple3
		if ord == dict.SPO {
			// The SPO run is the frozen representation's triple set, so
			// it is always merged — building it once on a map-backed
			// base amortizes across every later extension.
			base = g.index(dict.SPO)
		} else {
			st := g.idx[o].Load()
			if st == nil || st.version != g.version {
				continue // stays lazy on h, derived from the SPO run on demand
			}
			base = st.keys
		}
		run := make([]dict.Triple3, len(fresh))
		for i, t := range fresh {
			run[i] = dict.Permute(t, ord)
		}
		dict.SortIndex(run)
		h.InstallIndex(ord, dict.MergeSortedKeys([][]dict.Triple3{base, run}))
	}
	return h
}

// WithDict returns a read-only view of g that resolves and interns
// through nd instead of g's own dictionary. nd must resolve every ID of
// g's dictionary to the same term — in practice nd is a scratch overlay
// of g.Dict() (see dict.Scratch) — so the view shares g's triple set
// and cached permutations unchanged. Derivations from the view
// (closures, merges, answers) then intern new terms into the overlay
// rather than the shared base dictionary.
//
// The view aliases g's triple set: neither the view nor g may be
// mutated afterwards. Clone the view first if a mutable graph is
// needed.
func (g *Graph) WithDict(nd *dict.Dict) *Graph {
	h := &Graph{d: nd, set: g.set}
	h.version = g.version
	for o := range g.idx {
		h.idx[o].Store(g.idx[o].Load())
	}
	return h
}

// Equal reports set equality of the two graphs (not isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	return g.containedIn(h)
}

// SubgraphOf reports whether every triple of g is in h (g ⊆ h).
func (g *Graph) SubgraphOf(h *Graph) bool {
	if g.Len() > h.Len() {
		return false
	}
	return g.containedIn(h)
}

// containedIn reports whether every triple of g is in h, re-resolving
// terms when the graphs do not share a dictionary.
func (g *Graph) containedIn(h *Graph) bool {
	sameDict := g.d == h.d
	contained := true
	g.EachID(func(enc dict.Triple3) bool {
		henc := enc
		if !sameDict {
			var ok bool
			henc, ok = h.lookupTriple(g.decode(enc))
			if !ok {
				contained = false
				return false
			}
		}
		if !h.hasEnc(henc) {
			contained = false
			return false
		}
		return true
	})
	return contained
}

// ProperSubgraphOf reports g ⊊ h.
func (g *Graph) ProperSubgraphOf(h *Graph) bool {
	return g.Len() < h.Len() && g.SubgraphOf(h)
}

// AddAll inserts every triple of h into g and returns g. When the two
// graphs share a dictionary this copies IDs; otherwise each triple is
// re-interned once.
func (g *Graph) AddAll(h *Graph) *Graph {
	if g.d == h.d {
		h.EachID(func(enc dict.Triple3) bool {
			g.insert(enc)
			return true
		})
		return g
	}
	h.EachID(func(enc dict.Triple3) bool {
		g.insert(dict.Triple3{
			g.d.Intern(h.d.TermOf(enc[0])),
			g.d.Intern(h.d.TermOf(enc[1])),
			g.d.Intern(h.d.TermOf(enc[2])),
		})
		return true
	})
	return g
}

// Minus returns g ∖ h as a new graph (sharing g's dictionary).
func (g *Graph) Minus(h *Graph) *Graph {
	out := NewWithDict(g.d)
	sameDict := g.d == h.d
	g.EachID(func(enc dict.Triple3) bool {
		if sameDict {
			if h.hasEnc(enc) {
				return true
			}
		} else if h.Has(g.decode(enc)) {
			return true
		}
		out.set[enc] = struct{}{}
		return true
	})
	return out
}

// Without returns a copy of g with the single triple t removed.
func (g *Graph) Without(t Triple) *Graph {
	out := g.Clone()
	out.Remove(t)
	return out
}

// Union returns G1 ∪ G2: the set-theoretical union of the triple sets.
// Blank nodes with equal labels are identified (that is the point of
// union as opposed to merge).
func Union(g1, g2 *Graph) *Graph {
	out := g1.Clone()
	out.AddAll(g2)
	return out
}

// Merge returns G1 + G2: the union of G1 with an isomorphic copy of G2
// whose blank nodes are disjoint from those of G1 (Section 2.1). The
// result is unique up to isomorphism; this implementation renames only
// the colliding blanks of G2, deterministically.
func Merge(g1, g2 *Graph) *Graph {
	used := g1.BlankNodes()
	ren := make(Map)
	for _, b := range g2.BlankNodeList() {
		if _, clash := used[b]; !clash {
			continue
		}
		fresh := freshBlank(b.Value, used, g2)
		ren[b] = fresh
		used[fresh] = struct{}{}
	}
	out := g1.Clone()
	out.AddAll(ren.Apply(g2))
	return out
}

// freshBlank derives a blank node label not used in either graph.
func freshBlank(base string, used map[term.Term]struct{}, other *Graph) term.Term {
	for i := 1; ; i++ {
		cand := term.NewBlank(fmt.Sprintf("%s~%d", base, i))
		if _, ok := used[cand]; ok {
			continue
		}
		if _, ok := other.BlankNodes()[cand]; ok {
			continue
		}
		return cand
	}
}

// universeIDs returns the set of IDs occurring in the triples of G.
func (g *Graph) universeIDs() map[dict.ID]struct{} {
	u := make(map[dict.ID]struct{})
	g.EachID(func(enc dict.Triple3) bool {
		u[enc[0]] = struct{}{}
		u[enc[1]] = struct{}{}
		u[enc[2]] = struct{}{}
		return true
	})
	return u
}

// Universe returns universe(G): the set of elements of U ∪ B (and
// literals, in the extended model) occurring in the triples of G.
func (g *Graph) Universe() map[term.Term]struct{} {
	u := make(map[term.Term]struct{})
	for id := range g.universeIDs() {
		u[g.d.TermOf(id)] = struct{}{}
	}
	return u
}

// UniverseSize returns |universe(G)| without decoding any term — the
// live-term count the database compares against its dictionary length
// when deciding whether compaction would pay off.
func (g *Graph) UniverseSize() int { return len(g.universeIDs()) }

// UniverseList returns universe(G) in canonical order.
func (g *Graph) UniverseList() []term.Term {
	u := g.Universe()
	out := make([]term.Term, 0, len(u))
	for t := range u {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Vocabulary returns voc(G) = universe(G) ∩ U.
func (g *Graph) Vocabulary() map[term.Term]struct{} {
	v := make(map[term.Term]struct{})
	for id := range g.universeIDs() {
		if g.d.KindOf(id) == term.KindIRI {
			v[g.d.TermOf(id)] = struct{}{}
		}
	}
	return v
}

// BlankIDs returns the set of blank-node IDs occurring in G.
func (g *Graph) BlankIDs() map[dict.ID]struct{} {
	d := g.d
	b := make(map[dict.ID]struct{})
	g.EachID(func(enc dict.Triple3) bool {
		if d.KindOf(enc[0]) == term.KindBlank {
			b[enc[0]] = struct{}{}
		}
		if d.KindOf(enc[2]) == term.KindBlank {
			b[enc[2]] = struct{}{}
		}
		// A blank predicate cannot occur in a well-formed triple, but
		// Map.Apply keeps instances exactly as produced, so check anyway.
		if d.KindOf(enc[1]) == term.KindBlank {
			b[enc[1]] = struct{}{}
		}
		return true
	})
	return b
}

// BlankNodes returns the set of blank nodes occurring in G.
func (g *Graph) BlankNodes() map[term.Term]struct{} {
	b := make(map[term.Term]struct{})
	for id := range g.BlankIDs() {
		b[g.d.TermOf(id)] = struct{}{}
	}
	return b
}

// BlankNodeList returns the blank nodes of G in canonical order.
func (g *Graph) BlankNodeList() []term.Term {
	b := g.BlankNodes()
	out := make([]term.Term, 0, len(b))
	for t := range b {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// IsGround reports whether G has no blank nodes.
func (g *Graph) IsGround() bool {
	d := g.d
	ground := true
	g.EachID(func(enc dict.Triple3) bool {
		if d.KindOf(enc[0]) == term.KindBlank ||
			d.KindOf(enc[1]) == term.KindBlank ||
			d.KindOf(enc[2]) == term.KindBlank {
			ground = false
			return false
		}
		return true
	})
	return ground
}

// Predicates returns the set of predicates used in G.
func (g *Graph) Predicates() map[term.Term]struct{} {
	p := make(map[term.Term]struct{})
	seen := make(map[dict.ID]struct{})
	g.EachID(func(enc dict.Triple3) bool {
		if _, ok := seen[enc[1]]; !ok {
			seen[enc[1]] = struct{}{}
			p[g.d.TermOf(enc[1])] = struct{}{}
		}
		return true
	})
	return p
}

// WithPredicate returns the triples of G whose predicate is p, in
// canonical order. The lookup is a POS range scan.
func (g *Graph) WithPredicate(p term.Term) []Triple {
	pid, ok := g.d.Lookup(p)
	if !ok {
		return nil
	}
	var out []Triple
	g.MatchID(dict.Wildcard, pid, dict.Wildcard, func(enc dict.Triple3) bool {
		out = append(out, g.decode(enc))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the graph as sorted N-Triples-style lines.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.Triples() {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	return b.String()
}

// Map is a map μ : UB → UB preserving URIs (μ(u) = u for u ∈ U), Section
// 2.1. It is represented sparsely: only blank nodes with a non-identity
// image appear as keys. Keys must be blank nodes.
type Map map[term.Term]term.Term

// Of returns μ(x): the image of x, which is x itself unless x is a blank
// node explicitly mapped.
func (m Map) Of(x term.Term) term.Term {
	if y, ok := m[x]; ok {
		return y
	}
	return x
}

// ApplyTriple returns (μ(s), μ(p), μ(o)).
func (m Map) ApplyTriple(t Triple) Triple {
	return Triple{S: m.Of(t.S), P: m.Of(t.P), O: m.Of(t.O)}
}

// Apply returns μ(G) = {(μ(s), μ(p), μ(o)) : (s,p,o) ∈ G}. Triples that
// become ill-formed under μ (a blank mapped into predicate position can
// not occur, since predicates are URIs and maps preserve URIs) are kept
// as produced; Apply never invents or drops triples beyond set collapse.
// The result shares g's dictionary and the substitution runs on IDs.
func (m Map) Apply(g *Graph) *Graph {
	out := NewWithDict(g.d)
	if len(m) == 0 {
		g.EachID(func(enc dict.Triple3) bool {
			out.set[enc] = struct{}{}
			return true
		})
		return out
	}
	idm := make(map[dict.ID]dict.ID, len(m))
	for k, v := range m {
		if kid, ok := g.d.Lookup(k); ok {
			idm[kid] = g.d.Intern(v)
		}
	}
	sub := func(id dict.ID) dict.ID {
		if y, ok := idm[id]; ok {
			return y
		}
		return id
	}
	g.EachID(func(enc dict.Triple3) bool {
		out.set[dict.Triple3{sub(enc[0]), sub(enc[1]), sub(enc[2])}] = struct{}{}
		return true
	})
	return out
}

// Compose returns the map x ↦ n(m(x)).
func (m Map) Compose(n Map) Map {
	out := make(Map, len(m)+len(n))
	for k, v := range m {
		out[k] = n.Of(v)
	}
	for k, v := range n {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// IsIdentityOn reports whether μ is the identity on all blanks of g.
func (m Map) IsIdentityOn(g *Graph) bool {
	for b := range g.BlankNodes() {
		if m.Of(b) != b {
			return false
		}
	}
	return true
}

// Validate reports an error if any key is not a blank node or any value
// is a variable.
func (m Map) Validate() error {
	for k, v := range m {
		if !k.IsBlank() {
			return fmt.Errorf("graph: map key %s is not a blank node", k)
		}
		if v.IsVar() {
			return fmt.Errorf("graph: map value %s is a variable", v)
		}
	}
	return nil
}

// IsInstanceOf reports whether h = μ(g) for the given μ, i.e. whether h
// is the instance of g induced by μ.
func IsInstanceOf(h, g *Graph, m Map) bool {
	return m.Apply(g).Equal(h)
}

// SkolemPrefix is the reserved IRI prefix used by Skolemize; it encodes
// the paper's "brand new constant c_X" for each blank X (Section 3.1).
const SkolemPrefix = "urn:semwebdb:skolem:"

// Skolemize returns G*: the graph obtained by replacing each blank node X
// of G by the fresh constant c_X (Definition preceding Lemma 3.4). The
// result shares G's dictionary.
func Skolemize(g *Graph) *Graph {
	idm := make(map[dict.ID]dict.ID)
	for id := range g.BlankIDs() {
		idm[id] = g.d.Intern(term.NewIRI(SkolemPrefix + g.d.TermOf(id).Value))
	}
	sub := func(id dict.ID) dict.ID {
		if y, ok := idm[id]; ok {
			return y
		}
		return id
	}
	out := NewWithDict(g.d)
	g.EachID(func(enc dict.Triple3) bool {
		out.set[dict.Triple3{sub(enc[0]), enc[1], sub(enc[2])}] = struct{}{}
		return true
	})
	return out
}

// Unskolemize returns H⋆: the graph obtained by replacing each skolem
// constant c_X back by the blank X and deleting triples that end up with
// a blank in predicate position (which are not well-formed RDF triples).
func Unskolemize(h *Graph) *Graph {
	memo := make(map[dict.ID]dict.ID)
	isSkolem := make(map[dict.ID]bool)
	sub := func(id dict.ID) (dict.ID, bool) {
		if y, ok := memo[id]; ok {
			return y, isSkolem[id]
		}
		y := id
		skolem := false
		if h.d.KindOf(id) == term.KindIRI {
			if v := h.d.TermOf(id).Value; strings.HasPrefix(v, SkolemPrefix) {
				y = h.d.Intern(term.NewBlank(strings.TrimPrefix(v, SkolemPrefix)))
				skolem = true
			}
		}
		memo[id] = y
		isSkolem[id] = skolem
		return y, skolem
	}
	out := NewWithDict(h.d)
	h.EachID(func(enc dict.Triple3) bool {
		s, _ := sub(enc[0])
		p, pSkolem := sub(enc[1])
		o, _ := sub(enc[2])
		if pSkolem {
			return true // blank in predicate position: dropped, per Section 3.1
		}
		out.set[dict.Triple3{s, p, o}] = struct{}{}
		return true
	})
	return out
}

// IsSkolemConstant reports whether the term is a skolem constant c_X.
func IsSkolemConstant(x term.Term) bool {
	return x.IsIRI() && strings.HasPrefix(x.Value, SkolemPrefix)
}

// RenameBlanksApart returns a copy of g whose blank nodes are renamed with
// the given suffix so that they are disjoint from any "natural" blanks.
// It is used to implement merge semantics of answers and Ω_q rewriting.
func RenameBlanksApart(g *Graph, suffix string) *Graph {
	ren := make(Map)
	for b := range g.BlankNodes() {
		ren[b] = term.NewBlank(b.Value + suffix)
	}
	return ren.Apply(g)
}

// GroundPart returns the subgraph of ground triples of g.
func (g *Graph) GroundPart() *Graph {
	d := g.d
	out := NewWithDict(g.d)
	g.EachID(func(enc dict.Triple3) bool {
		if d.KindOf(enc[0]) == term.KindBlank ||
			d.KindOf(enc[1]) == term.KindBlank ||
			d.KindOf(enc[2]) == term.KindBlank {
			return true
		}
		out.set[enc] = struct{}{}
		return true
	})
	return out
}

// NonGroundTriples returns the triples mentioning at least one blank, in
// canonical order.
func (g *Graph) NonGroundTriples() []Triple {
	d := g.d
	var out []Triple
	g.EachID(func(enc dict.Triple3) bool {
		if d.KindOf(enc[0]) == term.KindBlank ||
			d.KindOf(enc[1]) == term.KindBlank ||
			d.KindOf(enc[2]) == term.KindBlank {
			out = append(out, g.decode(enc))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
