// Package graph implements RDF graphs as defined in Section 2.1 of
// "Foundations of Semantic Web databases": sets of RDF triples over
// U ∪ B, together with the operations the paper builds its theory on —
// maps (blank-node homomorphisms), instances, union, merge, and the
// skolemization operators (·)* and (·)⋆ of Section 3.1.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"semwebdb/internal/term"
)

// Triple is an RDF triple (s, p, o) ∈ (U ∪ B) × U × (U ∪ B ∪ L).
// It is a comparable value type.
type Triple struct {
	S, P, O term.Term
}

// T is shorthand for constructing a triple.
func T(s, p, o term.Term) Triple { return Triple{S: s, P: p, O: o} }

// WellFormed reports whether the triple respects the RDF positional
// restrictions: subject in U ∪ B, predicate in U, object in U ∪ B ∪ L.
// Triples containing variables are not well formed data triples.
func (t Triple) WellFormed() bool {
	return t.S.CanSubject() && t.P.CanPredicate() && t.O.CanObject()
}

// IsGround reports whether the triple mentions no blank nodes.
func (t Triple) IsGround() bool {
	return !t.S.IsBlank() && !t.P.IsBlank() && !t.O.IsBlank()
}

// HasVar reports whether any position holds a query variable.
func (t Triple) HasVar() bool {
	return t.S.IsVar() || t.P.IsVar() || t.O.IsVar()
}

// Compare totally orders triples lexicographically by subject, predicate,
// object (using term.Compare).
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// String renders the triple in N-Triples style (without the trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Terms returns the three positions in order.
func (t Triple) Terms() [3]term.Term { return [3]term.Term{t.S, t.P, t.O} }

// Graph is an RDF graph: a finite set of RDF triples. The zero value is
// not ready to use; construct graphs with New.
type Graph struct {
	set map[Triple]struct{}
}

// New returns an empty graph, optionally populated with the given triples.
func New(ts ...Triple) *Graph {
	g := &Graph{set: make(map[Triple]struct{}, len(ts))}
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

// FromTriples builds a graph from a slice of triples.
func FromTriples(ts []Triple) *Graph { return New(ts...) }

// Add inserts a triple. It returns true if the triple was not yet present.
// Ill-formed triples (wrong positional kinds, variables) are rejected with
// a false return and not inserted.
func (g *Graph) Add(t Triple) bool {
	if !t.WellFormed() {
		return false
	}
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	return true
}

// MustAdd inserts a triple and panics if it is ill-formed. It is intended
// for tests and literal program construction.
func (g *Graph) MustAdd(t Triple) {
	if !t.WellFormed() {
		panic(fmt.Sprintf("graph: ill-formed triple %s", t))
	}
	g.set[t] = struct{}{}
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.set[t]; ok {
		delete(g.set, t)
		return true
	}
	return false
}

// Has reports membership of a triple.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns the number of triples, written |G| in the paper.
func (g *Graph) Len() int { return len(g.set) }

// IsEmpty reports whether the graph has no triples.
func (g *Graph) IsEmpty() bool { return len(g.set) == 0 }

// Triples returns the triples in canonical (sorted) order.
func (g *Graph) Triples() []Triple {
	ts := make([]Triple, 0, len(g.set))
	for t := range g.set {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return ts
}

// Each calls fn for every triple in unspecified order; if fn returns
// false, iteration stops early.
func (g *Graph) Each(fn func(Triple) bool) {
	for t := range g.set {
		if !fn(t) {
			return
		}
	}
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	h := &Graph{set: make(map[Triple]struct{}, len(g.set))}
	for t := range g.set {
		h.set[t] = struct{}{}
	}
	return h
}

// Equal reports set equality of the two graphs (not isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	for t := range g.set {
		if !h.Has(t) {
			return false
		}
	}
	return true
}

// SubgraphOf reports whether every triple of g is in h (g ⊆ h).
func (g *Graph) SubgraphOf(h *Graph) bool {
	if g.Len() > h.Len() {
		return false
	}
	for t := range g.set {
		if !h.Has(t) {
			return false
		}
	}
	return true
}

// ProperSubgraphOf reports g ⊊ h.
func (g *Graph) ProperSubgraphOf(h *Graph) bool {
	return g.Len() < h.Len() && g.SubgraphOf(h)
}

// AddAll inserts every triple of h into g and returns g.
func (g *Graph) AddAll(h *Graph) *Graph {
	for t := range h.set {
		g.set[t] = struct{}{}
	}
	return g
}

// Minus returns g ∖ h as a new graph.
func (g *Graph) Minus(h *Graph) *Graph {
	out := New()
	for t := range g.set {
		if !h.Has(t) {
			out.set[t] = struct{}{}
		}
	}
	return out
}

// Without returns a copy of g with the single triple t removed.
func (g *Graph) Without(t Triple) *Graph {
	out := g.Clone()
	out.Remove(t)
	return out
}

// Union returns G1 ∪ G2: the set-theoretical union of the triple sets.
// Blank nodes with equal labels are identified (that is the point of
// union as opposed to merge).
func Union(g1, g2 *Graph) *Graph {
	out := g1.Clone()
	out.AddAll(g2)
	return out
}

// Merge returns G1 + G2: the union of G1 with an isomorphic copy of G2
// whose blank nodes are disjoint from those of G1 (Section 2.1). The
// result is unique up to isomorphism; this implementation renames only
// the colliding blanks of G2, deterministically.
func Merge(g1, g2 *Graph) *Graph {
	used := g1.BlankNodes()
	ren := make(Map)
	for _, b := range g2.BlankNodeList() {
		if _, clash := used[b]; !clash {
			continue
		}
		fresh := freshBlank(b.Value, used, g2)
		ren[b] = fresh
		used[fresh] = struct{}{}
	}
	out := g1.Clone()
	out.AddAll(ren.Apply(g2))
	return out
}

// freshBlank derives a blank node label not used in either graph.
func freshBlank(base string, used map[term.Term]struct{}, other *Graph) term.Term {
	for i := 1; ; i++ {
		cand := term.NewBlank(fmt.Sprintf("%s~%d", base, i))
		if _, ok := used[cand]; ok {
			continue
		}
		if _, ok := other.BlankNodes()[cand]; ok {
			continue
		}
		return cand
	}
}

// Universe returns universe(G): the set of elements of U ∪ B (and
// literals, in the extended model) occurring in the triples of G.
func (g *Graph) Universe() map[term.Term]struct{} {
	u := make(map[term.Term]struct{})
	for t := range g.set {
		u[t.S] = struct{}{}
		u[t.P] = struct{}{}
		u[t.O] = struct{}{}
	}
	return u
}

// UniverseList returns universe(G) in canonical order.
func (g *Graph) UniverseList() []term.Term {
	u := g.Universe()
	out := make([]term.Term, 0, len(u))
	for t := range u {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Vocabulary returns voc(G) = universe(G) ∩ U.
func (g *Graph) Vocabulary() map[term.Term]struct{} {
	v := make(map[term.Term]struct{})
	for t := range g.set {
		for _, x := range t.Terms() {
			if x.IsIRI() {
				v[x] = struct{}{}
			}
		}
	}
	return v
}

// BlankNodes returns the set of blank nodes occurring in G.
func (g *Graph) BlankNodes() map[term.Term]struct{} {
	b := make(map[term.Term]struct{})
	for t := range g.set {
		for _, x := range t.Terms() {
			if x.IsBlank() {
				b[x] = struct{}{}
			}
		}
	}
	return b
}

// BlankNodeList returns the blank nodes of G in canonical order.
func (g *Graph) BlankNodeList() []term.Term {
	b := g.BlankNodes()
	out := make([]term.Term, 0, len(b))
	for t := range b {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// IsGround reports whether G has no blank nodes.
func (g *Graph) IsGround() bool {
	for t := range g.set {
		if !t.IsGround() {
			return false
		}
	}
	return true
}

// Predicates returns the set of predicates used in G.
func (g *Graph) Predicates() map[term.Term]struct{} {
	p := make(map[term.Term]struct{})
	for t := range g.set {
		p[t.P] = struct{}{}
	}
	return p
}

// WithPredicate returns the triples of G whose predicate is p, in
// canonical order.
func (g *Graph) WithPredicate(p term.Term) []Triple {
	var out []Triple
	for t := range g.set {
		if t.P == p {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the graph as sorted N-Triples-style lines.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.Triples() {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	return b.String()
}

// Map is a map μ : UB → UB preserving URIs (μ(u) = u for u ∈ U), Section
// 2.1. It is represented sparsely: only blank nodes with a non-identity
// image appear as keys. Keys must be blank nodes.
type Map map[term.Term]term.Term

// Of returns μ(x): the image of x, which is x itself unless x is a blank
// node explicitly mapped.
func (m Map) Of(x term.Term) term.Term {
	if y, ok := m[x]; ok {
		return y
	}
	return x
}

// ApplyTriple returns (μ(s), μ(p), μ(o)).
func (m Map) ApplyTriple(t Triple) Triple {
	return Triple{S: m.Of(t.S), P: m.Of(t.P), O: m.Of(t.O)}
}

// Apply returns μ(G) = {(μ(s), μ(p), μ(o)) : (s,p,o) ∈ G}. Triples that
// become ill-formed under μ (a blank mapped into predicate position can
// not occur, since predicates are URIs and maps preserve URIs) are kept
// as produced; Apply never invents or drops triples beyond set collapse.
func (m Map) Apply(g *Graph) *Graph {
	out := New()
	for t := range g.set {
		out.set[m.ApplyTriple(t)] = struct{}{}
	}
	return out
}

// Compose returns the map x ↦ n(m(x)).
func (m Map) Compose(n Map) Map {
	out := make(Map, len(m)+len(n))
	for k, v := range m {
		out[k] = n.Of(v)
	}
	for k, v := range n {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// IsIdentityOn reports whether μ is the identity on all blanks of g.
func (m Map) IsIdentityOn(g *Graph) bool {
	for b := range g.BlankNodes() {
		if m.Of(b) != b {
			return false
		}
	}
	return true
}

// Validate reports an error if any key is not a blank node or any value
// is a variable.
func (m Map) Validate() error {
	for k, v := range m {
		if !k.IsBlank() {
			return fmt.Errorf("graph: map key %s is not a blank node", k)
		}
		if v.IsVar() {
			return fmt.Errorf("graph: map value %s is a variable", v)
		}
	}
	return nil
}

// IsInstanceOf reports whether h = μ(g) for the given μ, i.e. whether h
// is the instance of g induced by μ.
func IsInstanceOf(h, g *Graph, m Map) bool {
	return m.Apply(g).Equal(h)
}

// SkolemPrefix is the reserved IRI prefix used by Skolemize; it encodes
// the paper's "brand new constant c_X" for each blank X (Section 3.1).
const SkolemPrefix = "urn:semwebdb:skolem:"

// Skolemize returns G*: the graph obtained by replacing each blank node X
// of G by the fresh constant c_X (Definition preceding Lemma 3.4).
func Skolemize(g *Graph) *Graph {
	out := New()
	for t := range g.set {
		out.set[Triple{S: skolemTerm(t.S), P: t.P, O: skolemTerm(t.O)}] = struct{}{}
	}
	return out
}

func skolemTerm(x term.Term) term.Term {
	if x.IsBlank() {
		return term.NewIRI(SkolemPrefix + x.Value)
	}
	return x
}

// Unskolemize returns H⋆: the graph obtained by replacing each skolem
// constant c_X back by the blank X and deleting triples that end up with
// a blank in predicate position (which are not well-formed RDF triples).
func Unskolemize(h *Graph) *Graph {
	out := New()
	for t := range h.set {
		s := unskolemTerm(t.S)
		p := unskolemTerm(t.P)
		o := unskolemTerm(t.O)
		if p.IsBlank() {
			continue // ill-formed: dropped, per Section 3.1
		}
		out.set[Triple{S: s, P: p, O: o}] = struct{}{}
	}
	return out
}

func unskolemTerm(x term.Term) term.Term {
	if x.IsIRI() && strings.HasPrefix(x.Value, SkolemPrefix) {
		return term.NewBlank(strings.TrimPrefix(x.Value, SkolemPrefix))
	}
	return x
}

// IsSkolemConstant reports whether the term is a skolem constant c_X.
func IsSkolemConstant(x term.Term) bool {
	return x.IsIRI() && strings.HasPrefix(x.Value, SkolemPrefix)
}

// RenameBlanksApart returns a copy of g whose blank nodes are renamed with
// the given suffix so that they are disjoint from any "natural" blanks.
// It is used to implement merge semantics of answers and Ω_q rewriting.
func RenameBlanksApart(g *Graph, suffix string) *Graph {
	ren := make(Map)
	for b := range g.BlankNodes() {
		ren[b] = term.NewBlank(b.Value + suffix)
	}
	return ren.Apply(g)
}

// GroundPart returns the subgraph of ground triples of g.
func (g *Graph) GroundPart() *Graph {
	out := New()
	for t := range g.set {
		if t.IsGround() {
			out.set[t] = struct{}{}
		}
	}
	return out
}

// NonGroundTriples returns the triples mentioning at least one blank, in
// canonical order.
func (g *Graph) NonGroundTriples() []Triple {
	var out []Triple
	for t := range g.set {
		if !t.IsGround() {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
