package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"semwebdb/internal/term"
)

func iri(s string) term.Term   { return term.NewIRI(s) }
func blank(s string) term.Term { return term.NewBlank(s) }

func tr(s, p, o string) Triple {
	mk := func(x string) term.Term {
		if strings.HasPrefix(x, "_:") {
			return blank(x[2:])
		}
		return iri(x)
	}
	return T(mk(s), mk(p), mk(o))
}

func TestAddRemoveHas(t *testing.T) {
	g := New()
	t1 := tr("a", "p", "b")
	if !g.Add(t1) {
		t.Fatal("first Add must report insertion")
	}
	if g.Add(t1) {
		t.Fatal("duplicate Add must report false")
	}
	if !g.Has(t1) || g.Len() != 1 {
		t.Fatal("membership failed")
	}
	if !g.Remove(t1) || g.Remove(t1) {
		t.Fatal("Remove semantics")
	}
	if g.Len() != 0 {
		t.Fatal("graph not empty after remove")
	}
}

func TestAddRejectsIllFormed(t *testing.T) {
	g := New()
	// Blank predicate.
	if g.Add(T(iri("a"), blank("p"), iri("b"))) {
		t.Error("blank predicate accepted")
	}
	// Literal subject.
	if g.Add(T(term.NewLiteral("l"), iri("p"), iri("b"))) {
		t.Error("literal subject accepted")
	}
	// Variable anywhere.
	if g.Add(T(term.NewVar("x"), iri("p"), iri("b"))) {
		t.Error("variable subject accepted")
	}
	// Literal predicate.
	if g.Add(T(iri("a"), term.NewLiteral("p"), iri("b"))) {
		t.Error("literal predicate accepted")
	}
	if g.Len() != 0 {
		t.Fatal("ill-formed triples stored")
	}
	// Literal object is fine (extended model).
	if !g.Add(T(iri("a"), iri("p"), term.NewLiteral("l"))) {
		t.Error("literal object rejected")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd must panic on ill-formed triple")
		}
	}()
	New().MustAdd(T(iri("a"), blank("p"), iri("b")))
}

func TestTriplesSorted(t *testing.T) {
	g := New(tr("c", "p", "d"), tr("a", "p", "b"), tr("b", "p", "c"))
	ts := g.Triples()
	for i := 1; i < len(ts); i++ {
		if ts[i].Compare(ts[i-1]) <= 0 {
			t.Fatalf("not sorted: %v", ts)
		}
	}
}

func TestUniverseVocabularyBlanks(t *testing.T) {
	g := New(tr("a", "p", "_:x"), tr("_:x", "q", "b"))
	if len(g.Universe()) != 5 {
		t.Errorf("universe size = %d, want 5", len(g.Universe()))
	}
	if len(g.Vocabulary()) != 4 {
		t.Errorf("vocabulary size = %d, want 4 (a p q b)", len(g.Vocabulary()))
	}
	if len(g.BlankNodes()) != 1 {
		t.Errorf("blank nodes = %d, want 1", len(g.BlankNodes()))
	}
	if g.IsGround() {
		t.Error("graph with blanks reported ground")
	}
	if !New(tr("a", "p", "b")).IsGround() {
		t.Error("ground graph not reported ground")
	}
}

func TestSetOperations(t *testing.T) {
	g1 := New(tr("a", "p", "b"), tr("b", "p", "c"))
	g2 := New(tr("b", "p", "c"), tr("c", "p", "d"))
	u := Union(g1, g2)
	if u.Len() != 3 {
		t.Fatalf("union size = %d, want 3", u.Len())
	}
	if !g1.SubgraphOf(u) || !g2.SubgraphOf(u) {
		t.Fatal("operands not subgraphs of union")
	}
	if !g1.ProperSubgraphOf(u) {
		t.Fatal("proper subgraph check failed")
	}
	if g1.ProperSubgraphOf(g1) {
		t.Fatal("graph proper subgraph of itself")
	}
	m := g1.Minus(g2)
	if m.Len() != 1 || !m.Has(tr("a", "p", "b")) {
		t.Fatalf("minus = %v", m)
	}
	w := g1.Without(tr("a", "p", "b"))
	if w.Len() != 1 || g1.Len() != 2 {
		t.Fatal("Without must not mutate the receiver")
	}
}

func TestUnionIdentifiesBlanks(t *testing.T) {
	g1 := New(tr("a", "p", "_:x"))
	g2 := New(tr("_:x", "q", "b"))
	u := Union(g1, g2)
	if len(u.BlankNodes()) != 1 {
		t.Fatalf("union must identify equal blank labels, got %d blanks", len(u.BlankNodes()))
	}
}

func TestMergeKeepsBlanksApart(t *testing.T) {
	g1 := New(tr("a", "p", "_:x"))
	g2 := New(tr("_:x", "q", "b"))
	m := Merge(g1, g2)
	if m.Len() != 2 {
		t.Fatalf("merge size = %d, want 2", m.Len())
	}
	if len(m.BlankNodes()) != 2 {
		t.Fatalf("merge must rename colliding blanks apart, got %d blanks", len(m.BlankNodes()))
	}
	// Non-colliding blanks stay.
	g3 := New(tr("_:y", "q", "b"))
	m2 := Merge(g1, g3)
	if _, ok := m2.BlankNodes()[blank("y")]; !ok {
		t.Fatal("non-colliding blank renamed unnecessarily")
	}
}

func TestMapApply(t *testing.T) {
	g := New(tr("a", "p", "_:x"), tr("_:x", "p", "_:y"))
	mu := Map{blank("x"): iri("a")}
	h := mu.Apply(g)
	if !h.Has(tr("a", "p", "a")) || !h.Has(tr("a", "p", "_:y")) {
		t.Fatalf("apply wrong: %v", h)
	}
	// URIs are preserved by maps regardless of entries.
	if mu.Of(iri("z")) != iri("z") {
		t.Fatal("map must preserve URIs")
	}
}

func TestMapCollapse(t *testing.T) {
	g := New(tr("a", "p", "_:x"), tr("a", "p", "_:y"))
	mu := Map{blank("x"): blank("y")}
	h := mu.Apply(g)
	if h.Len() != 1 {
		t.Fatalf("collapsed graph size = %d, want 1", h.Len())
	}
}

func TestMapCompose(t *testing.T) {
	m1 := Map{blank("x"): blank("y")}
	m2 := Map{blank("y"): iri("a")}
	c := m1.Compose(m2)
	if c.Of(blank("x")) != iri("a") {
		t.Fatalf("compose: x ↦ %v, want a", c.Of(blank("x")))
	}
	if c.Of(blank("y")) != iri("a") {
		t.Fatalf("compose: y ↦ %v, want a", c.Of(blank("y")))
	}
}

func TestMapValidate(t *testing.T) {
	if err := (Map{blank("x"): iri("a")}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Map{iri("a"): iri("b")}).Validate(); err == nil {
		t.Fatal("IRI key accepted")
	}
	if err := (Map{blank("x"): term.NewVar("v")}).Validate(); err == nil {
		t.Fatal("variable value accepted")
	}
}

func TestSkolemizeRoundTrip(t *testing.T) {
	g := New(tr("a", "p", "_:x"), tr("_:x", "q", "_:y"), tr("a", "p", "b"))
	sk := Skolemize(g)
	if !sk.IsGround() {
		t.Fatal("skolemization must produce a ground graph")
	}
	back := Unskolemize(sk)
	if !back.Equal(g) {
		t.Fatalf("unskolemize(skolemize(G)) != G:\n%v\nvs\n%v", back, g)
	}
}

func TestSkolemizePreservesSize(t *testing.T) {
	f := func(n uint8) bool {
		g := New()
		for i := 0; i < int(n%20); i++ {
			g.Add(T(blank("b"+string(rune('a'+i%5))), iri("p"), iri("o"+string(rune('a'+i%7)))))
		}
		return Skolemize(g).Len() == g.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnskolemizeDropsBlankPredicates(t *testing.T) {
	// A triple whose predicate is a skolem constant becomes ill-formed on
	// unskolemization and must be dropped (Section 3.1).
	h := New(T(iri("a"), iri(SkolemPrefix+"x"), iri("b")), tr("a", "p", "b"))
	back := Unskolemize(h)
	if back.Len() != 1 || !back.Has(tr("a", "p", "b")) {
		t.Fatalf("unskolemize = %v", back)
	}
}

func TestIsInstanceOf(t *testing.T) {
	g := New(tr("a", "p", "_:x"))
	mu := Map{blank("x"): iri("b")}
	if !IsInstanceOf(New(tr("a", "p", "b")), g, mu) {
		t.Fatal("instance check failed")
	}
	if IsInstanceOf(New(tr("a", "p", "c")), g, mu) {
		t.Fatal("wrong instance accepted")
	}
}

func TestRenameBlanksApart(t *testing.T) {
	g := New(tr("_:x", "p", "_:y"))
	r := RenameBlanksApart(g, "!1")
	if r.Len() != 1 {
		t.Fatal("rename changed size")
	}
	for b := range r.BlankNodes() {
		if !strings.HasSuffix(b.Value, "!1") {
			t.Fatalf("blank %v not renamed", b)
		}
	}
}

func TestGroundPartAndNonGround(t *testing.T) {
	g := New(tr("a", "p", "b"), tr("a", "p", "_:x"))
	if g.GroundPart().Len() != 1 {
		t.Fatal("ground part wrong")
	}
	ng := g.NonGroundTriples()
	if len(ng) != 1 || ng[0] != tr("a", "p", "_:x") {
		t.Fatal("non-ground triples wrong")
	}
}

func TestStringCanonical(t *testing.T) {
	g := New(tr("b", "p", "c"), tr("a", "p", "b"))
	s := g.String()
	if !strings.HasPrefix(s, "<a>") {
		t.Fatalf("canonical string should start with <a>: %q", s)
	}
	if !strings.Contains(s, " .\n") {
		t.Fatalf("missing statement terminators: %q", s)
	}
}

func TestWithPredicate(t *testing.T) {
	g := New(tr("a", "p", "b"), tr("c", "p", "d"), tr("a", "q", "b"))
	ps := g.WithPredicate(iri("p"))
	if len(ps) != 2 {
		t.Fatalf("WithPredicate: %d, want 2", len(ps))
	}
	if len(g.Predicates()) != 2 {
		t.Fatalf("Predicates: %d, want 2", len(g.Predicates()))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(tr("a", "p", "b"))
	h := g.Clone()
	h.Add(tr("c", "p", "d"))
	if g.Len() != 1 || h.Len() != 2 {
		t.Fatal("clone not independent")
	}
}

func TestEachEarlyStop(t *testing.T) {
	g := New(tr("a", "p", "b"), tr("c", "p", "d"), tr("e", "p", "f"))
	n := 0
	g.Each(func(Triple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop failed: visited %d", n)
	}
}

func TestMergeIsUnionForGroundGraphs(t *testing.T) {
	f := func(seed uint8) bool {
		g1 := New(tr("a", "p", "b"))
		g2 := New(tr("c", "q", "d"))
		if seed%2 == 0 {
			g2.Add(tr("a", "p", "b"))
		}
		return Merge(g1, g2).Equal(Union(g1, g2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
