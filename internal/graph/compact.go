package graph

import "semwebdb/internal/dict"

// Compacted rebuilds g over a fresh dictionary holding exactly the
// terms occurring in g's triples — the epoch-compaction step that
// reclaims dictionary entries left behind by earlier snapshots,
// rejected batches and mutated copies. It returns the rebuilt graph
// and the number of dictionary entries dropped.
//
// The new IDs are assigned in ascending old-ID order, so the remapping
// is monotone: a key slice sorted under the old IDs is still sorted
// under the new ones. That lets the three cached permutations be
// rewritten entry-by-entry through the old→new table — no re-sort, the
// whole rebuild is O(|dict| + |G|) — and handed to NewFromIndexes.
//
// The result is equal to g as a set of term triples (same Fingerprint,
// same serialization); only the integer encoding changes. g itself is
// not modified and stays valid on its old dictionary.
func Compacted(g *Graph) (*Graph, int) {
	d := g.Dict()
	oldLen := d.Len()
	live := make([]bool, oldLen+1)
	g.EachID(func(enc dict.Triple3) bool {
		live[enc[0]] = true
		live[enc[1]] = true
		live[enc[2]] = true
		return true
	})
	remap := make([]dict.ID, oldLen+1)
	nd := dict.New()
	kept := 0
	for id := 1; id <= oldLen; id++ {
		if live[id] {
			remap[id] = nd.Intern(d.TermOf(dict.ID(id)))
			kept++
		}
	}
	remapKeys := func(keys []dict.Triple3) []dict.Triple3 {
		out := make([]dict.Triple3, len(keys))
		for i, k := range keys {
			out[i] = dict.Triple3{remap[k[0]], remap[k[1]], remap[k[2]]}
		}
		return out
	}
	ng := NewFromIndexes(nd,
		remapKeys(g.Index(dict.SPO)),
		remapKeys(g.Index(dict.POS)),
		remapKeys(g.Index(dict.OSP)))
	return ng, oldLen - kept
}
