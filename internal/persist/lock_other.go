//go:build !unix

package persist

import "os"

// lockFileExcl is a no-op where flock is unavailable: writer exclusion
// is only enforced on unix platforms.
func lockFileExcl(*os.File) error { return nil }
