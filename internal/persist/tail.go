package persist

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"semwebdb/internal/dict"
)

// ErrWrongGeneration reports that a requested WAL generation no longer
// (or never did) match the engine's current one — the log the caller
// was tailing has been truncated by a compaction, an epoch Swap, or an
// engine restart, and its byte offsets are meaningless against the new
// log. A replication follower recovers by re-bootstrapping from the
// current snapshot.
var ErrWrongGeneration = errors.New("persist: wrong WAL generation")

// WALHeaderSize is the size of the WAL file header in bytes. The first
// record frame starts at this offset; a generation's durable size is
// never smaller.
const WALHeaderSize = walHeaderSize

// TailState is a consistent point-in-time view of the engine's durable
// log, the unit of agreement between a replication leader and its
// followers.
type TailState struct {
	// Gen identifies the current WAL generation: a random token minted
	// when the log is (re)initialized and replaced on every truncation
	// (compaction checkpoint, epoch Swap, restart). Byte offsets are
	// only comparable between equal generations.
	Gen uint64
	// WALSize is the valid durable size of the log in bytes, including
	// the WALHeaderSize-byte header. Within a generation it only grows,
	// and always ends at a record boundary.
	WALSize int64
	// WALRecords is the number of valid records in the log.
	WALRecords int
	// Defined is the durable term-ID watermark: snapshot base plus the
	// define records in the log. A follower resuming at WALSize feeds
	// it to NewApplier so stream ordinals resolve correctly.
	Defined dict.ID
	// SnapshotBytes is the size of the current snapshot file (0 when
	// none has been written yet).
	SnapshotBytes int64
}

// newGeneration mints a random non-zero generation token. Randomness
// (rather than a counter) makes tokens unique across restarts without
// any durable state: a follower that reconnects after the leader
// restarted sees a token mismatch and re-bootstraps, which is the
// conservative, always-correct answer.
func newGeneration() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("persist: reading random generation: %v", err))
		}
		if g := binary.LittleEndian.Uint64(b[:]); g != 0 {
			return g // zero is reserved as "no generation"
		}
	}
}

// notifyTailLocked wakes every WaitTail blocked on the previous state.
// Called under e.mu after any change a tailer can observe (append,
// reset, close).
func (e *Engine) notifyTailLocked() {
	if e.tailCh != nil {
		close(e.tailCh)
	}
	e.tailCh = make(chan struct{})
}

// TailState returns the current tail state. Safe to call concurrently
// with mutations.
func (e *Engine) TailState() TailState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tailStateLocked()
}

func (e *Engine) tailStateLocked() TailState {
	return TailState{
		Gen:           e.gen,
		WALSize:       e.wal.Size(),
		WALRecords:    e.wal.Records(),
		Defined:       e.wal.defined,
		SnapshotBytes: e.snapBytes,
	}
}

// WaitTail blocks until the durable log differs from the caller's view
// — the generation is not gen, or the valid size exceeds from — or the
// context ends, and returns the state either way (with ctx.Err() when
// the context ended first). A long-polling leader endpoint maps a
// deadline expiry to an empty heartbeat chunk.
func (e *Engine) WaitTail(ctx context.Context, gen uint64, from int64) (TailState, error) {
	for {
		e.mu.Lock()
		st := e.tailStateLocked()
		if e.closed {
			e.mu.Unlock()
			return st, fmt.Errorf("persist: engine is closed")
		}
		if st.Gen != gen || st.WALSize > from {
			e.mu.Unlock()
			return st, nil
		}
		ch := e.tailCh
		e.mu.Unlock()
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ch:
		}
	}
}

// ReadWALAt reads up to max bytes of the durable log starting at byte
// offset from (0 includes the header), verifying the caller's
// generation first. It returns the bytes together with the state the
// read was consistent with. A from beyond the durable size also
// reports ErrWrongGeneration: within one generation the log only
// grows, so a follower claiming more bytes than the leader holds is
// tracking a different log and must re-bootstrap.
func (e *Engine) ReadWALAt(gen uint64, from int64, max int) ([]byte, TailState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.tailStateLocked()
	if e.closed {
		return nil, st, fmt.Errorf("persist: engine is closed")
	}
	if gen != e.gen {
		return nil, st, ErrWrongGeneration
	}
	if from < 0 || from > st.WALSize {
		return nil, st, fmt.Errorf("%w: offset %d outside durable log of %d bytes", ErrWrongGeneration, from, st.WALSize)
	}
	n := st.WALSize - from
	if int64(max) < n {
		n = int64(max)
	}
	if n <= 0 {
		return nil, st, nil
	}
	b := make([]byte, n)
	if err := e.wal.ReadValidAt(b, from); err != nil {
		return nil, st, err
	}
	return b, st, nil
}

// OpenSnapshot opens the current snapshot file for reading, verifying
// the caller's generation so the snapshot returned is the one the
// generation's WAL rides beside. A nil ReadCloser (with nil error)
// means no snapshot exists yet — the generation's full state is the
// WAL alone. The returned fd survives concurrent compactions (a rename
// replaces the directory entry, not the open file), so the caller may
// stream it without holding any lock.
func (e *Engine) OpenSnapshot(gen uint64) (io.ReadCloser, int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, 0, fmt.Errorf("persist: engine is closed")
	}
	if gen != e.gen {
		return nil, 0, ErrWrongGeneration
	}
	f, err := os.Open(filepath.Join(e.dir, SnapshotFile))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// AppendRaw appends pre-framed, pre-verified WAL record bytes verbatim
// — the follower half of replication: the bytes are the leader's log
// suffix, already CRC-checked and applied record by record, and the
// counts keep the accounting exact (see WAL.AppendRaw).
func (e *Engine) AppendRaw(b []byte, records, defines int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("persist: engine is closed")
	}
	if err := e.wal.AppendRaw(b, records, defines); err != nil {
		return err
	}
	e.notifyTailLocked()
	return nil
}
