package persist

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// churnedState opens a fresh engine in dir, logs n triples through it
// while deliberately bloating the dictionary with dead terms, and
// returns the engine with its live state.
func churnedState(t *testing.T, dir string, n int) (*Engine, *dict.Dict, *graph.Graph) {
	t.Helper()
	e, d, g, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	for i := 0; i < n; i++ {
		d.Intern(term.NewIRI(fmt.Sprintf("urn:dead:%d", i)))
		enc := addTriple(d, g, term.NewIRI(fmt.Sprintf("urn:s:%d", i)), p, term.NewLiteral(fmt.Sprintf("v%d", i)))
		if err := e.Append(d, []dict.Triple3{enc}); err != nil {
			t.Fatal(err)
		}
	}
	return e, d, g
}

// reopenGraph recovers the directory and returns the decoded graph.
func reopenGraph(t *testing.T, dir string) (*graph.Graph, *dict.Dict) {
	t.Helper()
	e, d, g, err := Open(dir, Options{NoSync: true, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return g, d
}

// TestSwapRewritesStateAndSurvivesReopen: the happy path — Swap with a
// non-empty WAL checkpoints, installs the compacted snapshot, and a
// reopen recovers the same triples over the dense dictionary; appends
// after the swap land in the new generation and replay cleanly.
func TestSwapRewritesStateAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	e, d, g := churnedState(t, dir, 50)
	want := g.String()
	oldLen := d.Len()

	ng, dropped := graph.Compacted(g)
	if dropped == 0 {
		t.Fatal("setup produced no garbage")
	}
	if err := e.Swap(g, ng); err != nil {
		t.Fatal(err)
	}
	nd := ng.Dict()

	// Appends against the new dictionary go into the new generation.
	enc := addTriple(nd, ng, term.NewIRI("urn:s:new"), term.NewIRI("urn:p"), term.NewLiteral("after-swap"))
	if err := e.Append(nd, []dict.Triple3{enc}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	got, gotDict := reopenGraph(t, dir)
	if gotDict.Len() >= oldLen {
		t.Fatalf("reopened dictionary has %d terms, want < %d", gotDict.Len(), oldLen)
	}
	ng.Each(func(tr graph.Triple) bool {
		if !got.Has(tr) {
			t.Fatalf("missing triple after reopen: %v", tr)
		}
		return true
	})
	if got.Len() != ng.Len() {
		t.Fatalf("reopened %d triples, want %d", got.Len(), ng.Len())
	}
	_ = want
}

// TestSwapCrashWindowBeforeRename reconstructs the on-disk state of a
// crash between the WAL reset and the snapshot rename: the old
// (uncompacted, fully-checkpointed) snapshot beside an empty WAL whose
// base is the smaller compacted term count. Recovery must accept the
// pair and reproduce the full pre-swap state.
func TestSwapCrashWindowBeforeRename(t *testing.T) {
	dir := t.TempDir()
	e, d, g := churnedState(t, dir, 30)
	want := g.String()
	// Checkpoint so the snapshot alone covers the state (step 1 of Swap).
	if err := e.Compact(g); err != nil {
		t.Fatal(err)
	}
	ng, _ := graph.Compacted(g)
	newBase := dict.ID(ng.Dict().Len())
	if int(newBase) >= d.Len() {
		t.Fatal("setup produced no garbage")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: reset the WAL to the new (smaller)
	// base while the old snapshot is still in place, and leave a stale
	// tmp snapshot lying around (step 2 wrote it; the rename never ran).
	walPath := filepath.Join(dir, WALFile)
	{
		wd := dict.New()
		wg := graph.NewWithDict(wd)
		// Decode the current snapshot so OpenWAL replays against real state.
		f, err := os.Open(filepath.Join(dir, SnapshotFile))
		if err != nil {
			t.Fatal(err)
		}
		wd, wg, err = ReadSnapshot(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(walPath, wd, wg, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Reset(newBase); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("torn tmp snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, gotDict := reopenGraph(t, dir)
	if got.String() != want {
		t.Fatalf("crash window lost state:\ngot:\n%s\nwant:\n%s", got.String(), want)
	}
	if gotDict.Len() != d.Len() {
		t.Fatalf("reopened dictionary has %d terms, want the uncompacted %d", gotDict.Len(), d.Len())
	}
}

// TestSwapEmptyWAL: swapping when the log is already empty skips the
// extra checkpoint and still round-trips.
func TestSwapEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	e, d, g := churnedState(t, dir, 20)
	if err := e.Compact(g); err != nil { // empties the WAL
		t.Fatal(err)
	}
	st := e.Stats()
	if st.WALRecords != 0 {
		t.Fatalf("WAL not empty after checkpoint: %d records", st.WALRecords)
	}
	before := st.SnapshotBytes
	ng, _ := graph.Compacted(g)
	if err := e.Swap(g, ng); err != nil {
		t.Fatal(err)
	}
	if after := e.Stats().SnapshotBytes; after >= before {
		t.Fatalf("compacted snapshot is %d bytes, want < %d", after, before)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got, gotDict := reopenGraph(t, dir)
	if got.Len() != g.Len() {
		t.Fatalf("reopened %d triples, want %d", got.Len(), g.Len())
	}
	if gotDict.Len() != ng.Dict().Len() {
		t.Fatalf("reopened dict %d terms, want dense %d", gotDict.Len(), ng.Dict().Len())
	}
	_ = d
}
