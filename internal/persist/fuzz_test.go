package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder.
// Invariants: never panic, never allocate unboundedly, and every
// successfully decoded snapshot re-encodes to a snapshot that decodes
// back to the identical state (the format is canonical for a given
// dictionary + graph).
func FuzzDecodeSnapshot(f *testing.F) {
	seeds := [][]byte{{}, []byte(snapMagic), bytes.Repeat([]byte{0xff}, 64)}
	for _, g := range []*graph.Graph{graph.New(), seedGraph(3), seedGraph(40)} {
		var b bytes.Buffer
		if _, _, err := WriteSnapshot(&b, g); err != nil {
			f.Fatal(err)
		}
		valid := b.Bytes()
		seeds = append(seeds, bytes.Clone(valid))
		if len(valid) > snapHeaderSize {
			seeds = append(seeds, valid[:len(valid)/2]) // torn
			mut := bytes.Clone(valid)
			mut[snapHeaderSize+3] ^= 0x40 // flipped section byte
			seeds = append(seeds, mut)
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b bytes.Buffer
		if _, _, err := WriteSnapshot(&b, g); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		d2, g2, err := ReadSnapshot(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("round trip re-decode failed: %v", err)
		}
		if d2.Len() != d.Len() || g2.Len() != g.Len() {
			t.Fatalf("round trip changed sizes: %d/%d terms, %d/%d triples",
				d.Len(), d2.Len(), g.Len(), g2.Len())
		}
		g.EachID(func(enc dict.Triple3) bool {
			if !g2.HasID(enc) {
				t.Fatalf("round trip lost triple %v", enc)
			}
			return true
		})
	})
}

// FuzzReplayWAL feeds arbitrary bytes to the WAL replayer. Invariants:
// never panic, the reported valid prefix never exceeds the input, and
// replay of a valid prefix is always re-openable (the truncate-and-go
// path of OpenWAL).
func FuzzReplayWAL(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(bytes.Repeat([]byte{0x00}, walHeaderSize))

	// A real WAL built through the writer, plus torn and bit-flipped
	// variants.
	dir := f.TempDir()
	path := filepath.Join(dir, WALFile)
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, false)
	if err != nil {
		f.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	for i := 0; i < 6; i++ {
		enc := dict.Triple3{
			d.Intern(term.NewBlank(string(rune('a' + i)))),
			d.Intern(p),
			d.Intern(term.NewTypedLiteral("1", "urn:int")),
		}
		g.AddID(enc)
		if err := w.Append(d, []dict.Triple3{enc}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(valid))
	f.Add(valid[:len(valid)-3])
	mut := bytes.Clone(valid)
	mut[walHeaderSize+9] ^= 0x01
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		d := dict.New()
		g := graph.NewWithDict(d)
		res, err := ReplayWAL(bytes.NewReader(data), d, g)
		if res.Valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input %d", res.Valid, len(data))
		}
		if err != nil {
			return
		}
		if res.Applied+res.Defines > res.Records {
			t.Fatalf("applied %d + defined %d out of %d records", res.Applied, res.Defines, res.Records)
		}
		if g.Len() > res.Applied {
			t.Fatalf("graph grew to %d from %d applied records", g.Len(), res.Applied)
		}
	})
}

func seedGraph(n int) *graph.Graph {
	g := graph.New()
	p := term.NewIRI("urn:p")
	for i := 0; i < n; i++ {
		s := term.NewIRI("urn:s:" + string(rune('a'+i%26)))
		switch i % 3 {
		case 0:
			g.MustAdd(graph.T(s, p, term.NewLiteral("v")))
		case 1:
			g.MustAdd(graph.T(term.NewBlank("b"+string(rune('a'+i%26))), p, s))
		default:
			g.MustAdd(graph.T(s, p, term.NewLangLiteral("x", "en")))
		}
	}
	return g
}
