package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// addTriple interns a term triple and adds it to the graph, returning
// the encoding — the same dance the database layer performs before
// calling Append.
func addTriple(d *dict.Dict, g *graph.Graph, s, p, o term.Term) dict.Triple3 {
	enc := dict.Triple3{d.Intern(s), d.Intern(p), d.Intern(o)}
	g.AddID(enc)
	return enc
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, true)
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	var batch []dict.Triple3
	for i := 0; i < 10; i++ {
		batch = append(batch, addTriple(d, g, term.NewIRI(iri(t, "s", i)), p, term.NewLangLiteral("v", "en")))
		if i%3 == 2 { // uneven batches exercise the group-commit path
			if err := w.Append(d, batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := w.Append(d, batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen against a fresh dictionary: replay must rebuild the exact
	// state, IDs included.
	d2 := dict.New()
	g2 := graph.NewWithDict(d2)
	w2, err := OpenWAL(path, d2, g2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if g2.Len() != g.Len() {
		t.Fatalf("replayed %d triples, want %d", g2.Len(), g.Len())
	}
	if d2.Len() != d.Len() {
		t.Fatalf("replayed %d terms, want %d", d2.Len(), d.Len())
	}
	g.EachID(func(enc dict.Triple3) bool {
		if !g2.HasID(enc) {
			t.Fatalf("triple %v lost in replay", enc)
		}
		return true
	})

	// The reopened WAL appends after the replayed prefix.
	extra := addTriple(d2, g2, term.NewIRI("urn:extra"), p, term.NewIRI("urn:o"))
	if err := w2.Append(d2, []dict.Triple3{extra}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	d3 := dict.New()
	g3 := graph.NewWithDict(d3)
	w3, err := OpenWAL(path, d3, g3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if g3.Len() != g2.Len() {
		t.Fatalf("after reopen-append cycle: %d triples, want %d", g3.Len(), g2.Len())
	}
}

func iri(t *testing.T, p string, i int) string {
	t.Helper()
	return "urn:" + p + ":" + string(rune('a'+i%26))
}

func TestWALShortFileReinitialized(t *testing.T) {
	// A file torn inside the header (crash during creation) is
	// reinitialized as an empty log.
	path := filepath.Join(t.TempDir(), WALFile)
	if err := os.WriteFile(path, []byte(walMagic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, true)
	if err != nil {
		t.Fatalf("torn header not tolerated: %v", err)
	}
	defer w.Close()
	if w.Records() != 0 || g.Len() != 0 {
		t.Fatalf("reinitialized WAL reports %d records, %d triples", w.Records(), g.Len())
	}
}

func TestWALRejectsForeignHeader(t *testing.T) {
	// A full-size header with the wrong magic is not this format: hard
	// error, never silent reinitialization.
	path := filepath.Join(t.TempDir(), WALFile)
	junk := make([]byte, walHeaderSize+10)
	copy(junk, "NOT-A-WAL-AT-ALL")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	d := dict.New()
	if _, err := OpenWAL(path, d, graph.NewWithDict(d), true); err == nil {
		t.Fatal("foreign file accepted as WAL")
	}
}

func TestWALZeroFilledTailRecovered(t *testing.T) {
	// A crash can leave a zero-filled hole at the end of the file
	// (preallocated blocks never written). Zeros are not an intact
	// record — recovery must keep the valid prefix, not fail corrupt.
	path := filepath.Join(t.TempDir(), WALFile)
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, false)
	if err != nil {
		t.Fatal(err)
	}
	enc := addTriple(d, g, term.NewIRI("urn:s"), term.NewIRI("urn:p"), term.NewIRI("urn:o"))
	if err := w.Append(d, []dict.Triple3{enc}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := dict.New()
	g2 := graph.NewWithDict(d2)
	w2, err := OpenWAL(path, d2, g2, false)
	if err != nil {
		t.Fatalf("zero-filled tail not tolerated: %v", err)
	}
	defer w2.Close()
	if g2.Len() != 1 {
		t.Fatalf("recovered %d triples, want 1", g2.Len())
	}
	// The discarded bytes were preserved, not destroyed.
	torn, err := os.ReadFile(path + ".torn")
	if err != nil {
		t.Fatalf("discarded tail not preserved: %v", err)
	}
	if len(torn) != 64 {
		t.Fatalf("preserved tail is %d bytes, want 64", len(torn))
	}
}

func TestWALSingleWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	d2 := dict.New()
	if _, err := OpenWAL(path, d2, graph.NewWithDict(d2), false); err == nil {
		t.Fatal("second writer acquired the same WAL")
	}
}

func TestCompactWithConcurrentInterning(t *testing.T) {
	// The shared dictionary grows lock-free under concurrent queries
	// even while a checkpoint runs. The WAL generation base must be the
	// term count the snapshot persisted, not the dictionary length at
	// truncation time — otherwise the next open fails its base check
	// forever.
	dir := t.TempDir()
	e, d, g, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	var fresh []dict.Triple3
	for i := 0; i < 10; i++ {
		fresh = append(fresh, addTriple(d, g, term.NewIRI(iri(t, "s", i)), p, term.NewLiteral("v")))
	}
	if err := e.Append(d, fresh); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-done:
			default:
				d.Intern(term.NewIRI(fmt.Sprintf("urn:transient:%d", i)))
				continue
			}
			return
		}
	}()
	for i := 0; i < 25; i++ {
		if err := e.Compact(g); err != nil {
			t.Fatal(err)
		}
	}
	done <- struct{}{}
	<-done
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, _, g2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after concurrent-intern compaction: %v", err)
	}
	defer e2.Close()
	if g2.Len() != g.Len() {
		t.Fatalf("recovered %d triples, want %d", g2.Len(), g.Len())
	}
}

func TestWALFailedStateRefusesWrites(t *testing.T) {
	// After a reset whose file operations fail, the in-memory
	// accounting no longer matches the disk: the log must refuse
	// further writes instead of acknowledging batches a replay could
	// never read.
	path := filepath.Join(t.TempDir(), WALFile)
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, false)
	if err != nil {
		t.Fatal(err)
	}
	enc := addTriple(d, g, term.NewIRI("urn:s"), term.NewIRI("urn:p"), term.NewIRI("urn:o"))
	if err := w.Append(d, []dict.Triple3{enc}); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // induce failure of the next file operation
	if err := w.Reset(dict.ID(d.Len())); err == nil {
		t.Fatal("reset on a closed file succeeded")
	}
	if err := w.Append(d, []dict.Triple3{enc}); err == nil {
		t.Fatal("append acknowledged on a failed WAL")
	}
	if err := w.Reset(dict.ID(d.Len())); err == nil {
		t.Fatal("reset accepted on a failed WAL")
	}
}

func TestAppendAfterCompactionCrashRecovery(t *testing.T) {
	// The nastiest corner of the crash window: a stale WAL (compaction
	// crashed before truncating it) replays against a newer snapshot
	// whose dictionary extends past the WAL's ordinal space. Appends
	// after that recovery must re-inline define records for the
	// snapshot-only IDs, or the *next* replay cannot resolve them and
	// the database is permanently unopenable.
	dir := t.TempDir()
	e, d, g, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	first := addTriple(d, g, term.NewIRI("urn:s"), p, term.NewIRI("urn:o"))
	if err := e.Append(d, []dict.Triple3{first}); err != nil {
		t.Fatal(err)
	}
	// A term beyond the WAL's defines (interned by a query, say) that
	// the compacted snapshot will persist.
	extra := d.Intern(term.NewIRI("urn:extra"))

	walPath := filepath.Join(dir, WALFile)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(g); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash: the WAL truncation never hit the disk.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recover, then append a triple referencing the snapshot-only term.
	e2, d2, g2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	extraID, ok := d2.Lookup(term.NewIRI("urn:extra"))
	if !ok || extraID != extra {
		t.Fatalf("snapshot-only term lost or renumbered: %v %v", extraID, ok)
	}
	enc := dict.Triple3{extraID, d2.Intern(p), d2.Intern(term.NewLiteral("v"))}
	g2.AddID(enc)
	if err := e2.Append(d2, []dict.Triple3{enc}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// The database must still open — this replay resolves the appended
	// triple's IDs through the re-inlined defines.
	e3, _, g3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash-window append: %v", err)
	}
	defer e3.Close()
	if g3.Len() != 2 || !g3.HasID(first) || !g3.HasID(enc) {
		t.Fatalf("recovered %d triples, want both originals", g3.Len())
	}
}

func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	e, d, g, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	var fresh []dict.Triple3
	for i := 0; i < 8; i++ {
		fresh = append(fresh, addTriple(d, g, term.NewIRI(iri(t, "r", i)), p, term.NewLiteral("v")))
	}
	if err := e.Append(d, fresh); err != nil {
		t.Fatal(err)
	}
	// While the writer still holds the flock, a read-only open works —
	// and leaves the directory byte-identical, even with a torn tail.
	walPath := filepath.Join(dir, WALFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0x00}); err != nil { // torn frame header
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	d2, g2, st, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || d2.Len() != d.Len() {
		t.Fatalf("read-only recovered %d triples / %d terms, want %d / %d",
			g2.Len(), d2.Len(), g.Len(), d.Len())
	}
	if st.WALRecords == 0 {
		t.Fatalf("read-only stats: %+v", st)
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEqual(before, after) {
		t.Fatal("read-only open modified the WAL")
	}
	if _, err := os.Stat(walPath + ".torn"); !os.IsNotExist(err) {
		t.Fatal("read-only open wrote a .torn file")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Nonexistent and database-free directories are refused, and no
	// files get conjured into them.
	if _, _, _, err := OpenReadOnly(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("read-only open of nonexistent directory succeeded")
	}
	empty := t.TempDir()
	if _, _, _, err := OpenReadOnly(empty); err == nil {
		t.Fatal("read-only open of empty directory succeeded")
	}
	entries, err := os.ReadDir(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatal("read-only open created files")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEngineOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	e, d, g, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	var fresh []dict.Triple3
	for i := 0; i < 25; i++ {
		fresh = append(fresh, addTriple(d, g, term.NewIRI(iri(t, "s", i)), p, term.NewIRI(iri(t, "o", i*5))))
	}
	if err := e.Append(d, fresh); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SnapshotBytes != 0 || st.WALRecords == 0 || st.WALBytes <= 0 {
		t.Fatalf("stats before compaction: %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything comes back from the WAL alone.
	e2, d2, g2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || d2.Len() != d.Len() {
		t.Fatalf("reopen: %d triples / %d terms, want %d / %d", g2.Len(), d2.Len(), g.Len(), d.Len())
	}

	// Compact, reopen: everything comes back from the snapshot alone.
	if err := e2.Compact(g2); err != nil {
		t.Fatal(err)
	}
	st = e2.Stats()
	if st.SnapshotBytes <= 0 || st.WALBytes != 0 || st.WALRecords != 0 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _, g3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if g3.Len() != g.Len() {
		t.Fatalf("post-compaction reopen: %d triples, want %d", g3.Len(), g.Len())
	}
	g.EachID(func(enc dict.Triple3) bool {
		if !g3.HasID(enc) {
			t.Fatalf("triple %v lost across compaction", enc)
		}
		return true
	})
}

func TestEngineCompactionThresholdOnOpen(t *testing.T) {
	dir := t.TempDir()
	e, d, g, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := []dict.Triple3{addTriple(d, g, term.NewIRI("urn:s"), term.NewIRI("urn:p"), term.NewIRI("urn:o"))}
	if err := e.Append(d, fresh); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Any non-empty WAL exceeds a 1-byte threshold: open compacts.
	e2, _, g2, err := Open(dir, Options{CompactThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	st := e2.Stats()
	if st.SnapshotBytes <= 0 {
		t.Fatal("open did not compact past the threshold")
	}
	if st.WALBytes != 0 || st.WALRecords != 0 {
		t.Fatalf("WAL not truncated by compaction: %+v", st)
	}
	if g2.Len() != 1 {
		t.Fatalf("compacted state has %d triples, want 1", g2.Len())
	}
}

func TestEngineCrashBetweenCompactAndTruncate(t *testing.T) {
	// Simulate the one crash window compaction leaves open: the new
	// snapshot is renamed into place but the WAL was not yet truncated.
	// Replaying the stale WAL over the new snapshot must be a no-op
	// (defines re-intern to their existing IDs, adds are duplicates).
	dir := t.TempDir()
	e, d, g, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	var fresh []dict.Triple3
	for i := 0; i < 12; i++ {
		fresh = append(fresh, addTriple(d, g, term.NewIRI(iri(t, "c", i)), p, term.NewLiteral("v")))
	}
	if err := e.Append(d, fresh); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, WALFile)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(g); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Put the pre-compaction WAL back, as if the truncation never hit
	// the disk.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, d2, g2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("idempotent replay failed: %v", err)
	}
	defer e2.Close()
	if g2.Len() != g.Len() || d2.Len() != d.Len() {
		t.Fatalf("recovered %d triples / %d terms, want %d / %d", g2.Len(), d2.Len(), g.Len(), d.Len())
	}
	g.EachID(func(enc dict.Triple3) bool {
		if !g2.HasID(enc) {
			t.Fatalf("triple %v lost", enc)
		}
		return true
	})
}
