package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
)

// WAL file layout (version 1):
//
//	header   magic "SWDB-WAL" | uint16 version | uint16 flags |
//	         uint64 baseTerms (LE)
//	record*  uint32 payload length | uint32 CRC32-C | payload
//
// A record payload is a kind byte followed by its body: defineTerm
// carries an inline term record and implicitly assigns the next
// dictionary ID; addTriple carries three uvarint term IDs. baseTerms is
// the dictionary size when this WAL generation started: IDs at or below
// it resolve against the snapshot, IDs above it against the defineTerm
// records in order. Replay maps define records through the live
// dictionary rather than trusting their positions, which makes replay
// idempotent: if a crash lands between snapshot compaction and WAL
// truncation, the stale records re-intern to their existing IDs and
// re-add triples the snapshot already holds — set semantics absorb
// them.
//
// Appends are framed per record but flushed and fsynced per batch
// (one Append call = one fsync), so group commit costs one disk sync
// regardless of batch size. An unreadable record — short frame, short
// payload, checksum mismatch, or a zero-length frame as left by a
// zero-filled crash hole — marks the end of the valid prefix: replay
// keeps every intact record before it, and the writer saves the
// discarded bytes to a sidecar ".torn" file before truncating them
// away. Without fsync-boundary markers a mid-file flip is
// indistinguishable from a crash tail, so the prefix rule plus the
// preserved tail is the whole recovery contract.

// WAL is an open write-ahead log positioned for appending. It is not
// safe for concurrent use; the owning database serializes access.
type WAL struct {
	f       *os.File
	bw      *bufio.Writer
	size    int64 // valid on-disk bytes, including the header
	records int
	defined dict.ID // highest term ID already durable (snapshot or define record)
	sync    bool
	// failed is the sticky error of a reset or rollback whose file
	// operations did not complete: the on-disk log no longer matches
	// the in-memory accounting, so acknowledging further appends would
	// report durability for records a replay cannot read. Every write
	// entry point refuses until the log is reopened.
	failed error
}

// ReplayStats summarizes a WAL replay.
type ReplayStats struct {
	// Records is the number of valid records of any kind.
	Records int
	// Applied is the number of add-triple records applied (including
	// duplicates re-absorbed by set semantics).
	Applied int
	// Defines is the number of define-term records; the WAL's ordinal
	// ID space covers exactly (Base, Base+Defines].
	Defines int
	// Base is the header's baseTerms: the dictionary size when this WAL
	// generation started.
	Base dict.ID
	// Valid is the byte offset of the end of the valid record prefix.
	Valid int64
}

// Applier applies WAL record payloads, one at a time, to a dictionary
// and graph. It factors the application half of ReplayWAL out so that
// a replication follower can feed records as they arrive off the wire
// through the exact same idempotent path a crash-recovery replay uses.
//
// base is the durable ID watermark the record stream starts above:
// triple records referencing IDs at or below it resolve directly
// against the dictionary, IDs above it must be introduced by earlier
// define-term records in the same stream. For a full-log replay that
// is the WAL header's baseTerms; for a follower resuming mid-log it is
// base + the defines already applied (Engine.TailState().Defined).
// Define records are re-interned through the live dictionary rather
// than trusted positionally, so re-applying an already-applied suffix
// is harmless.
type Applier struct {
	d       *dict.Dict
	base    uint64
	defines int
	records int
	// remap resolves define-record IDs (walID = base + ordinal) to the
	// IDs the live dictionary actually assigned.
	remap map[dict.ID]dict.ID
}

// NewApplier returns an Applier for records whose ordinal ID space
// starts just above base.
func NewApplier(d *dict.Dict, base dict.ID) *Applier {
	return &Applier{d: d, base: uint64(base), remap: make(map[dict.ID]dict.ID)}
}

// AppliedRecord describes the effect of one applied record.
type AppliedRecord struct {
	// IsTriple is true for an add-triple record, false for define-term.
	IsTriple bool
	// Triple is the triple in live-dictionary IDs (add-triple only).
	Triple dict.Triple3
	// New is true when the graph did not already hold the triple.
	New bool
}

// Defines returns the number of define-term records applied so far.
func (a *Applier) Defines() int { return a.defines }

// Apply applies one intact record payload (CRC already verified by the
// framing layer) to g. Errors mean the record is semantically invalid
// for the state it was applied to — for a follower, the only safe
// recovery is a fresh bootstrap.
func (a *Applier) Apply(g *graph.Graph, payload []byte) (AppliedRecord, error) {
	var rec AppliedRecord
	c := &cursor{p: payload}
	kind, err := c.byte1()
	if err != nil {
		return rec, err
	}
	switch kind {
	case recDefineTerm:
		t, err := decodeTerm(c)
		if err != nil {
			return rec, fmt.Errorf("record %d: %w", a.records+1, err)
		}
		a.defines++
		a.remap[dict.ID(a.base+uint64(a.defines))] = a.d.Intern(t)
	case recAddTriple:
		var t dict.Triple3
		for i := 0; i < 3; i++ {
			raw, err := c.uvarint()
			if err != nil {
				return rec, fmt.Errorf("record %d: %w", a.records+1, err)
			}
			id := dict.ID(raw)
			if uint64(id) != raw || id == dict.Wildcard {
				return rec, corruptf("record %d: invalid term ID %d", a.records+1, raw)
			}
			if raw > a.base {
				real, ok := a.remap[id]
				if !ok {
					return rec, corruptf("record %d: triple references undefined term ID %d", a.records+1, raw)
				}
				id = real
			}
			t[i] = id
		}
		rec.IsTriple = true
		rec.Triple = t
		if !g.HasID(t) {
			if !g.AddID(t) {
				return rec, corruptf("record %d: ill-formed triple %v", a.records+1, t)
			}
			rec.New = true
		}
	default:
		return rec, corruptf("record %d: unknown kind %d", a.records+1, kind)
	}
	if !c.done() {
		return rec, corruptf("record %d: %d trailing bytes", a.records+1, c.remaining())
	}
	a.records++
	return rec, nil
}

// ReplayWAL reads a WAL stream, applying its records to the
// dictionary and graph (normally the state just decoded from the
// snapshot the WAL rides beside). A torn tail is not an error — the
// stats describe the valid prefix; a header mismatch or a semantically
// invalid record inside an intact frame is.
func ReplayWAL(r io.Reader, d *dict.Dict, g *graph.Graph) (ReplayStats, error) {
	var res ReplayStats
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return res, corruptf("short WAL header: %v", err)
	}
	if string(hdr[:8]) != walMagic {
		return res, corruptf("bad WAL magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != formatVersion {
		return res, corruptf("unsupported WAL version %d", v)
	}
	base := binary.LittleEndian.Uint64(hdr[12:20])
	if base > uint64(d.Len()) {
		return res, corruptf("WAL base %d exceeds dictionary size %d", base, d.Len())
	}
	res.Base = dict.ID(base)
	res.Valid = walHeaderSize

	a := NewApplier(d, res.Base)
	br := bufio.NewReader(r)
	for {
		payload, frame, ok := readRecord(br)
		if !ok {
			return res, nil // torn or clean end
		}
		rec, err := a.Apply(g, payload)
		if err != nil {
			return res, err
		}
		if rec.IsTriple {
			res.Applied++
		} else {
			res.Defines++
		}
		res.Records++
		res.Valid += frame
	}
}

// saveTornTail copies the to-be-discarded byte range [valid, size) of
// the log into path+".torn" (overwriting any previous one), best
// effort: recovery proceeds even if the copy fails, but when it
// succeeds an operator can inspect exactly what a crash (or mid-file
// damage) cost.
func saveTornTail(f *os.File, path string, valid, size int64) {
	tail := make([]byte, size-valid)
	if _, err := f.ReadAt(tail, valid); err != nil {
		return
	}
	os.WriteFile(path+".torn", tail, 0o644)
}

// readRecord reads one framed record. ok is false at a clean end of
// stream or on any torn/corrupt frame — the caller treats both as the
// end of the valid prefix.
func readRecord(br *bufio.Reader) (payload []byte, frame int64, ok bool) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	// No record has an empty payload (there is always a kind byte), so
	// a zero length is not a record — typically a zero-filled hole left
	// by a crash mid-write. (Conveniently, CRC32-C of nothing is 0, so
	// an all-zero frame would otherwise pass the checksum.) Absurd
	// lengths are garbage for the same reason.
	if n == 0 || n > 1<<30 {
		return nil, 0, false
	}
	// Copy through a growing buffer so the allocation tracks the bytes
	// actually present, not the length a torn or hostile frame claims.
	var pb bytes.Buffer
	if _, err := io.CopyN(&pb, br, int64(n)); err != nil {
		return nil, 0, false
	}
	p := pb.Bytes()
	if checksum(p) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, 0, false
	}
	return p, int64(8 + n), true
}

// OpenWAL opens (creating if needed) the WAL at path, replays its
// valid prefix into d and g, truncates any torn tail, and leaves the
// log positioned for appending. A file shorter than the header — a
// writer torn while creating it — is reinitialized empty; a present
// header that does not parse is an error (it is not this format, or a
// version this decoder does not speak). syncEnabled selects whether
// Append fsyncs each batch.
func OpenWAL(path string, d *dict.Dict, g *graph.Graph, syncEnabled bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// One writer per database: the flock lives on the WAL fd and dies
	// with the process, so a crash never leaves the directory locked.
	if err := lockFileExcl(f); err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{f: f, sync: syncEnabled}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < walHeaderSize {
		if err := w.reset(dict.ID(d.Len())); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		res, err := ReplayWAL(f, d, g)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if res.Valid < st.Size() {
			// Preserve the discarded tail beside the log before cutting
			// it off: recovery must never silently destroy bytes. (A
			// frame that fails its checksum mid-file is indistinguishable
			// from a torn tail without fsync-boundary markers; the saved
			// tail keeps the evidence either way.)
			saveTornTail(f, path, res.Valid, st.Size())
			if err := f.Truncate(res.Valid); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(res.Valid, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		w.size = res.Valid
		w.records = res.Records
		// The durable ID prefix is exactly what the WAL's ordinal space
		// covers: base + its define records — NOT the dictionary length,
		// which can be larger when a stale WAL (compaction crashed
		// before truncating it) replays against a newer snapshot. IDs
		// beyond it must be re-defined by future appends so that replay
		// ordinals resolve; re-interning makes that idempotent.
		w.defined = res.Base + dict.ID(res.Defines)
	}
	w.bw = bufio.NewWriter(f)
	return w, nil
}

// Append logs one batch of triples, inlining define-term records for
// any term IDs not yet durable, then flushes and (when enabled) fsyncs
// once for the whole batch. On error the in-memory state is unchanged
// and the file is truncated back to the last durable batch, so a
// failed append never leaves a half-written batch ahead of the live
// offset.
func (w *WAL) Append(d *dict.Dict, triples []dict.Triple3) error {
	if w.failed != nil {
		return fmt.Errorf("persist: WAL is failed: %w", w.failed)
	}
	startSize, startRecords, startDefined := w.size, w.records, w.defined
	terms := d.Terms()
	var e buf
	for _, t := range triples {
		maxID := t[0]
		if t[1] > maxID {
			maxID = t[1]
		}
		if t[2] > maxID {
			maxID = t[2]
		}
		if int(maxID) > len(terms) {
			return fmt.Errorf("persist: triple %v references unknown term ID %d", t, maxID)
		}
		for id := w.defined + 1; id <= maxID; id++ {
			e = buf{b: e.b[:0]}
			e.byte1(recDefineTerm)
			encodeTerm(&e, terms[id-1])
			if err := w.writeRecord(e.bytes()); err != nil {
				return w.rollback(startSize, startRecords, startDefined, err)
			}
			w.defined = id
		}
		e = buf{b: e.b[:0]}
		e.byte1(recAddTriple)
		e.uvarint(uint64(t[0]))
		e.uvarint(uint64(t[1]))
		e.uvarint(uint64(t[2]))
		if err := w.writeRecord(e.bytes()); err != nil {
			return w.rollback(startSize, startRecords, startDefined, err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		return w.rollback(startSize, startRecords, startDefined, err)
	}
	if w.sync {
		t0 := time.Now()
		if err := w.f.Sync(); err != nil {
			return w.rollback(startSize, startRecords, startDefined, err)
		}
		walFsyncSeconds.ObserveSince(t0)
	}
	walAppends.Inc()
	walAppendBytes.Add(uint64(w.size - startSize))
	return nil
}

// AppendRaw appends pre-framed record bytes verbatim — a replication
// follower mirroring a leader's log. The caller has already verified
// every frame's CRC and applied its records, and passes the record and
// define counts the bytes carry so the accounting (and the durable ID
// watermark replay ordinals resolve against) stays exact. The batch is
// flushed and fsynced like an ordinary Append, and rolled back like
// one on failure.
func (w *WAL) AppendRaw(b []byte, records, defines int) error {
	if w.failed != nil {
		return fmt.Errorf("persist: WAL is failed: %w", w.failed)
	}
	startSize, startRecords, startDefined := w.size, w.records, w.defined
	if _, err := w.bw.Write(b); err != nil {
		return w.rollback(startSize, startRecords, startDefined, err)
	}
	w.size += int64(len(b))
	w.records += records
	w.defined += dict.ID(defines)
	if err := w.bw.Flush(); err != nil {
		return w.rollback(startSize, startRecords, startDefined, err)
	}
	if w.sync {
		t0 := time.Now()
		if err := w.f.Sync(); err != nil {
			return w.rollback(startSize, startRecords, startDefined, err)
		}
		walFsyncSeconds.ObserveSince(t0)
	}
	walAppends.Inc()
	walAppendBytes.Add(uint64(len(b)))
	return nil
}

// ReadValidAt fills p from the valid byte range of the log starting at
// off (positional read; the append position is untouched). The caller
// must keep [off, off+len(p)) within the valid size, and must hold the
// owning database's serialization so no append or reset is in flight.
func (w *WAL) ReadValidAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > w.size {
		return fmt.Errorf("persist: WAL read [%d,%d) outside valid size %d", off, off+int64(len(p)), w.size)
	}
	_, err := w.f.ReadAt(p, off)
	return err
}

func (w *WAL) writeRecord(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], checksum(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.size += int64(8 + len(payload))
	w.records++
	return nil
}

// rollback restores the pre-batch state after a failed append. If the
// file cannot be restored too, the log is marked failed: the in-memory
// accounting no longer describes the bytes on disk, and a later
// "successful" batch after a garbage gap would be unreadable at
// replay despite its fsync.
func (w *WAL) rollback(size int64, records int, defined dict.ID, cause error) error {
	w.bw.Reset(w.f)
	if err := w.f.Truncate(size); err != nil {
		w.failed = err
	} else if _, err := w.f.Seek(size, io.SeekStart); err != nil {
		w.failed = err
	}
	w.size, w.records, w.defined = size, records, defined
	return cause
}

// Reset empties the log and starts a new generation whose base is the
// current dictionary size — called right after the snapshot beside it
// has been compacted to cover everything the log held.
func (w *WAL) Reset(base dict.ID) error {
	if w.failed != nil {
		return fmt.Errorf("persist: WAL is failed: %w", w.failed)
	}
	return w.reset(base)
}

// reset rewrites the log as an empty generation. A failure part-way
// (truncated but headerless, say) marks the log failed — appends must
// not land in a file a replay cannot even parse the header of.
func (w *WAL) reset(base dict.ID) error {
	fail := func(err error) error {
		w.failed = err
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fail(err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fail(err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersion)
	binary.LittleEndian.PutUint16(hdr[10:12], 0)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(base))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fail(err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fail(err)
		}
	}
	w.size = walHeaderSize
	w.records = 0
	w.defined = base
	if w.bw != nil {
		w.bw.Reset(w.f)
	}
	return nil
}

// Size returns the valid on-disk size in bytes, including the header.
func (w *WAL) Size() int64 { return w.size }

// Records returns the number of valid records (replayed plus appended).
func (w *WAL) Records() int { return w.records }

// Sync flushes buffered records and forces them to stable storage,
// regardless of the per-batch sync policy.
func (w *WAL) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes, syncs and closes the log file.
func (w *WAL) Close() error {
	flushErr := w.bw.Flush()
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
