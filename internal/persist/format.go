// Package persist implements the durable storage engine behind
// semweb.OpenAt: a versioned binary snapshot format for the
// dictionary-encoded store plus a sidecar write-ahead log (WAL).
//
// A snapshot file carries a magic/version header followed by framed
// sections — the term dictionary in ID order (so decoding is a straight
// re-intern producing the same dense IDs), the SPO-sorted base triple
// set (which doubles as the SPO permutation, Permute(t, SPO) = t), and
// the POS and OSP permutations. Every section is framed with its byte
// length and a CRC32 of its payload, so a decoder can validate each
// section independently and skip sections it does not need (including
// sections introduced by future versions).
//
// The WAL appends framed add-triple records; terms not covered by the
// snapshot are inlined as define-term records immediately before first
// use. Records are covered by per-record CRCs, appends are fsynced per
// batch rather than per record, and replay tolerates a torn final
// record: the longest valid prefix wins, exactly as a crashed writer
// left it.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"semwebdb/internal/term"
)

// Format versioning. A decoder accepts exactly the versions it knows;
// adding new optional snapshot sections or WAL record kinds does not
// require a version bump (unknown sections are skipped, unknown record
// kinds are a hard error because the WAL is a semantic log), while any
// change to the header layout or the meaning of existing sections does.
const (
	snapMagic = "SWDB-SNP" // snapshot files
	walMagic  = "SWDB-WAL" // write-ahead log files

	formatVersion = 1

	// snapHeaderSize is magic(8) + version(2) + flags(2).
	snapHeaderSize = 12
	// walHeaderSize is magic(8) + version(2) + flags(2) + baseTerms(8).
	walHeaderSize = 20
)

// Snapshot section identifiers.
const (
	secDict byte = 1 // term records in ID order
	secSPO  byte = 2 // SPO-sorted base triple set (= SPO permutation)
	secPOS  byte = 3 // POS permutation, sorted
	secOSP  byte = 4 // OSP permutation, sorted
)

// WAL record kinds.
const (
	recDefineTerm byte = 1 // inline term payload; implicitly assigns the next ID
	recAddTriple  byte = 2 // three uvarint term IDs
)

// ErrCorrupt is wrapped by every decoding failure caused by malformed
// or damaged on-disk state (as opposed to I/O errors from the
// filesystem). Match with errors.Is.
var ErrCorrupt = errors.New("persist: corrupt file")

// corruptf builds an ErrCorrupt-wrapping error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func checksum(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// buf is a little append-only encoding buffer.
type buf struct{ b []byte }

func (e *buf) bytes() []byte { return e.b }

func (e *buf) byte1(v byte) { e.b = append(e.b, v) }

func (e *buf) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *buf) varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

func (e *buf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// encodeTerm appends a term record: kind byte, value, and for literals
// the datatype and language tag.
func encodeTerm(e *buf, t term.Term) {
	e.byte1(byte(t.Knd))
	e.str(t.Value)
	if t.Knd == term.KindLiteral {
		e.str(t.Datatype)
		e.str(t.Lang)
	}
}

// cursor is the matching decode side, reading from an in-memory
// payload. Every read is bounds-checked against the payload, so a
// hostile length can never trigger an allocation larger than the input
// that claimed it.
type cursor struct {
	p   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.p) - c.off }

func (c *cursor) done() bool { return c.off == len(c.p) }

func (c *cursor) byte1() (byte, error) {
	if c.off >= len(c.p) {
		return 0, corruptf("unexpected end of payload")
	}
	b := c.p[c.off]
	c.off++
	return b, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		return 0, corruptf("bad uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.p[c.off:])
	if n <= 0 {
		return 0, corruptf("bad varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(c.remaining()) {
		return "", corruptf("string length %d exceeds remaining payload %d", n, c.remaining())
	}
	s := string(c.p[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// decodeTerm reads one term record and validates it structurally.
func decodeTerm(c *cursor) (term.Term, error) {
	k, err := c.byte1()
	if err != nil {
		return term.Term{}, err
	}
	t := term.Term{Knd: term.Kind(k)}
	switch t.Knd {
	case term.KindIRI, term.KindBlank, term.KindVar, term.KindLiteral:
	default:
		return term.Term{}, corruptf("invalid term kind %d", k)
	}
	if t.Value, err = c.str(); err != nil {
		return term.Term{}, err
	}
	if t.Knd == term.KindLiteral {
		if t.Datatype, err = c.str(); err != nil {
			return term.Term{}, err
		}
		if t.Lang, err = c.str(); err != nil {
			return term.Term{}, err
		}
	}
	if err := t.Validate(); err != nil {
		return term.Term{}, corruptf("invalid term record: %v", err)
	}
	return t, nil
}

// zigzag delta helpers for sorted ID-triple columns: consecutive keys in
// a sorted permutation share long prefixes, so per-column deltas are
// tiny and the varint encoding shrinks each 12-byte key to a few bytes.

func deltaEncodeKey(e *buf, prev, cur [3]uint32) {
	for i := 0; i < 3; i++ {
		e.varint(int64(cur[i]) - int64(prev[i]))
	}
}

func deltaDecodeKey(c *cursor, prev [3]uint32) ([3]uint32, error) {
	var cur [3]uint32
	for i := 0; i < 3; i++ {
		d, err := c.varint()
		if err != nil {
			return cur, err
		}
		v := int64(prev[i]) + d
		if v < 0 || v > math.MaxUint32 {
			return cur, corruptf("triple component out of range: %d", v)
		}
		cur[i] = uint32(v)
	}
	return cur, nil
}
