package persist

import (
	"bytes"
	"fmt"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// testGraph builds a graph exercising every term shape the format
// carries: IRIs, blanks, plain / language-tagged / typed literals.
func testGraph() *graph.Graph {
	g := graph.New()
	p, q := term.NewIRI("urn:p"), term.NewIRI("urn:q")
	g.MustAdd(graph.T(term.NewIRI("urn:a"), p, term.NewIRI("urn:b")))
	g.MustAdd(graph.T(term.NewBlank("x"), p, term.NewBlank("y")))
	g.MustAdd(graph.T(term.NewIRI("urn:a"), q, term.NewLiteral("plain \"quoted\"\nline")))
	g.MustAdd(graph.T(term.NewIRI("urn:b"), q, term.NewLangLiteral("hello", "en-US")))
	g.MustAdd(graph.T(term.NewBlank("x"), q, term.NewTypedLiteral("5", "urn:xsd:int")))
	for i := 0; i < 40; i++ {
		g.MustAdd(graph.T(
			term.NewIRI(fmt.Sprintf("urn:n:%d", i%7)),
			p,
			term.NewIRI(fmt.Sprintf("urn:n:%d", (i*3)%11))))
	}
	return g
}

// sameTriples reports that the two graphs hold identical encoded
// triple sets — stronger than isomorphism: the dictionary IDs must
// have survived byte-for-byte.
func sameTriples(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("triple count = %d, want %d", got.Len(), want.Len())
	}
	want.EachID(func(enc dict.Triple3) bool {
		if !got.HasID(enc) {
			t.Fatalf("decoded graph is missing encoded triple %v", enc)
		}
		return true
	})
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := testGraph()
	// Intern a few transient terms (query patterns, variables) that are
	// in the dictionary but in no triple: the snapshot must keep them so
	// IDs stay dense and stable across reopen.
	g.Dict().Intern(term.NewVar("X"))
	g.Dict().Intern(term.NewIRI("urn:pattern-only"))

	var b bytes.Buffer
	n, persisted, err := WriteSnapshot(&b, g)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(b.Len()) {
		t.Fatalf("WriteSnapshot reported %d bytes, wrote %d", n, b.Len())
	}
	if persisted != g.Dict().Len() {
		t.Fatalf("WriteSnapshot persisted %d terms, dictionary has %d", persisted, g.Dict().Len())
	}

	d2, g2, err := ReadSnapshot(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameTriples(t, g2, g)

	// Dictionary: same terms, same order, same IDs.
	want, got := g.Dict().Terms(), d2.Terms()
	if len(got) != len(want) {
		t.Fatalf("dict size = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dict ID %d = %v, want %v", i+1, got[i], want[i])
		}
	}

	// Permutations: installed and identical to the originals, usable
	// directly by the range scans.
	for _, o := range []dict.Order{dict.SPO, dict.POS, dict.OSP} {
		wantIdx, gotIdx := g.Index(o), g2.Index(o)
		if len(gotIdx) != len(wantIdx) {
			t.Fatalf("order %d: %d keys, want %d", o, len(gotIdx), len(wantIdx))
		}
		for i := range wantIdx {
			if gotIdx[i] != wantIdx[i] {
				t.Fatalf("order %d key %d = %v, want %v", o, i, gotIdx[i], wantIdx[i])
			}
		}
	}

	// The decoded graph answers pattern scans correctly.
	pid, ok := d2.Lookup(term.NewIRI("urn:p"))
	if !ok {
		t.Fatal("urn:p lost")
	}
	if n1, n2 := g.CountID(dict.Wildcard, pid, dict.Wildcard), g2.CountID(dict.Wildcard, pid, dict.Wildcard); n1 != n2 {
		t.Fatalf("POS scan count = %d, want %d", n2, n1)
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	var b bytes.Buffer
	if _, _, err := WriteSnapshot(&b, graph.New()); err != nil {
		t.Fatal(err)
	}
	d2, g2, err := ReadSnapshot(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 0 || g2.Len() != 0 {
		t.Fatalf("empty snapshot decoded to %d terms, %d triples", d2.Len(), g2.Len())
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	var b bytes.Buffer
	if _, _, err := WriteSnapshot(&b, testGraph()); err != nil {
		t.Fatal(err)
	}
	valid := b.Bytes()

	// Any truncation must error (a snapshot is complete or worthless —
	// unlike the WAL there is no valid prefix semantics).
	for _, cut := range []int{0, 3, snapHeaderSize - 1, snapHeaderSize, snapHeaderSize + 5, len(valid) / 2, len(valid) - 1} {
		if _, _, err := ReadSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}

	// Bad magic and bad version.
	for _, mut := range []struct {
		name string
		off  int
	}{{"magic", 0}, {"version", 8}} {
		c := bytes.Clone(valid)
		c[mut.off] ^= 0xff
		if _, _, err := ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Fatalf("corrupt %s decoded successfully", mut.name)
		}
	}

	// Flipping any payload byte must be caught by a section CRC (or a
	// framing error downstream of it).
	for off := snapHeaderSize; off < len(valid); off += 7 {
		c := bytes.Clone(valid)
		c[off] ^= 0x20
		if _, _, err := ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Fatalf("byte flip at offset %d decoded successfully", off)
		}
	}
}

func TestSnapshotSkipsUnknownSections(t *testing.T) {
	g := testGraph()
	var b bytes.Buffer
	if _, _, err := WriteSnapshot(&b, g); err != nil {
		t.Fatal(err)
	}
	// Splice an unknown (future) section between the header and the
	// first real section: decoders must skip it.
	var spliced bytes.Buffer
	spliced.Write(b.Bytes()[:snapHeaderSize])
	if err := writeSection(&spliced, 0x7f, []byte("future payload")); err != nil {
		t.Fatal(err)
	}
	spliced.Write(b.Bytes()[snapHeaderSize:])

	_, g2, err := ReadSnapshot(bytes.NewReader(spliced.Bytes()))
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	sameTriples(t, g2, g)
}
