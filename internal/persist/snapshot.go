package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
)

// Snapshot file layout (version 1):
//
//	header   magic "SWDB-SNP" | uint16 version | uint16 flags (LE)
//	section* id byte | uint64 payload length | payload | uint32 CRC32-C
//
// Sections appear in the order DICT, SPO, POS, OSP; decoders skip
// sections with unknown ids (forward compatibility: new auxiliary
// sections do not bump the version), and the framing lets a partial
// reader seek past any section it does not need. The DICT payload is
// the full term dictionary in ID order, so re-interning at decode time
// reproduces the exact dense IDs the triple sections reference. The
// SPO payload is the sorted base triple set — Permute(t, SPO) = t, so
// it doubles as the SPO permutation — and POS/OSP are the other two
// sorted permutations, stored so a reopened database range-scans
// without re-sorting. All triple payloads are per-column zigzag-delta
// varints over the sorted order.

// WriteSnapshot serializes the graph and its full dictionary. The
// triple sections are taken from the graph's cached sorted permutations
// (building them if needed). It returns the number of bytes written and
// the number of terms actually persisted — which can be fewer than the
// dictionary holds by the time it returns: the shared dictionary grows
// lock-free under concurrent queries, so callers deriving durable state
// (the WAL generation base) must use the returned count, never a later
// Dict().Len().
func WriteSnapshot(w io.Writer, g *graph.Graph) (int64, int, error) {
	cw := &countingWriter{w: w}
	var hdr [snapHeaderSize]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersion)
	binary.LittleEndian.PutUint16(hdr[10:12], 0)
	terms := g.Dict().Terms()
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, len(terms), err
	}

	var e buf
	e.uvarint(uint64(len(terms)))
	for _, t := range terms {
		encodeTerm(&e, t)
	}
	if err := writeSection(cw, secDict, e.bytes()); err != nil {
		return cw.n, len(terms), err
	}

	for _, s := range []struct {
		id byte
		o  dict.Order
	}{{secSPO, dict.SPO}, {secPOS, dict.POS}, {secOSP, dict.OSP}} {
		keys := g.Index(s.o)
		e = buf{b: e.b[:0]}
		e.uvarint(uint64(len(keys)))
		prev := [3]uint32{}
		for _, k := range keys {
			cur := [3]uint32{uint32(k[0]), uint32(k[1]), uint32(k[2])}
			deltaEncodeKey(&e, prev, cur)
			prev = cur
		}
		if err := writeSection(cw, s.id, e.bytes()); err != nil {
			return cw.n, len(terms), err
		}
	}
	return cw.n, len(terms), nil
}

func writeSection(w io.Writer, id byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = id
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], checksum(payload))
	_, err := w.Write(crc[:])
	return err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadSnapshot decodes a snapshot into a fresh dictionary and graph.
// The dictionary holds exactly the persisted terms with their original
// dense IDs, and the graph comes back with all three sorted
// permutations installed, ready for range scans without re-sorting.
// Damaged input fails with an error wrapping ErrCorrupt; ReadSnapshot
// never allocates more than a small multiple of the actual input size,
// whatever lengths the file claims.
func ReadSnapshot(r io.Reader) (*dict.Dict, *graph.Graph, error) {
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, corruptf("short header: %v", err)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, nil, corruptf("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != formatVersion {
		return nil, nil, corruptf("unsupported snapshot version %d", v)
	}

	d := dict.New()
	var (
		g       *graph.Graph // built once the base set's size is known
		seen    [5]bool      // indexed by section id
		triples []dict.Triple3
		indexes [3][]dict.Triple3
	)
	for {
		id, payload, err := readSection(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		switch id {
		case secDict, secSPO, secPOS, secOSP:
			if seen[id] {
				return nil, nil, corruptf("duplicate section %d", id)
			}
			// The triple sections validate against the dictionary, and
			// the permutations against the base set, so the canonical
			// order is enforced rather than re-buffered.
			if id != secDict && !seen[secDict] {
				return nil, nil, corruptf("section %d before dictionary", id)
			}
			if (id == secPOS || id == secOSP) && !seen[secSPO] {
				return nil, nil, corruptf("permutation section %d before triple set", id)
			}
			seen[id] = true
		default:
			continue // unknown section: skip (forward compatibility)
		}
		c := &cursor{p: payload}
		switch id {
		case secDict:
			if err := decodeDictSection(c, d); err != nil {
				return nil, nil, err
			}
		case secSPO:
			if triples, err = decodeKeys(c, d.Len()); err != nil {
				return nil, nil, err
			}
			g = graph.NewWithDictCap(d, len(triples))
			for _, t := range triples {
				if !g.AddID(t) {
					return nil, nil, corruptf("ill-formed triple %v in base set", t)
				}
			}
		case secPOS, secOSP:
			o := dict.POS
			if id == secOSP {
				o = dict.OSP
			}
			keys, err := decodeKeys(c, d.Len())
			if err != nil {
				return nil, nil, err
			}
			if len(keys) != len(triples) {
				return nil, nil, corruptf("permutation %d has %d keys, want %d", id, len(keys), len(triples))
			}
			for _, k := range keys {
				if !g.HasID(dict.Unpermute(k, o)) {
					return nil, nil, corruptf("permutation %d key %v not in base set", id, k)
				}
			}
			indexes[o] = keys
		}
		if !c.done() {
			return nil, nil, corruptf("section %d has %d trailing bytes", id, c.remaining())
		}
	}
	for _, id := range []byte{secDict, secSPO, secPOS, secOSP} {
		if !seen[id] {
			return nil, nil, corruptf("missing section %d", id)
		}
	}
	g.InstallIndex(dict.SPO, triples)
	g.InstallIndex(dict.POS, indexes[dict.POS])
	g.InstallIndex(dict.OSP, indexes[dict.OSP])
	return d, g, nil
}

// readSection reads one framed section, verifying its CRC. It returns
// io.EOF exactly at a clean end of the stream.
func readSection(r io.Reader) (byte, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, corruptf("short section header: %v", err)
	}
	n := binary.LittleEndian.Uint64(hdr[1:])
	if n > uint64(1)<<56 {
		return 0, nil, corruptf("section %d claims %d bytes", hdr[0], n)
	}
	// Copy through a growing buffer: the allocation tracks the bytes
	// actually present, not the claimed length.
	var pb bytes.Buffer
	if _, err := io.CopyN(&pb, r, int64(n)); err != nil {
		return 0, nil, corruptf("section %d truncated: %v", hdr[0], err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, nil, corruptf("section %d missing checksum: %v", hdr[0], err)
	}
	payload := pb.Bytes()
	if got, want := checksum(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, nil, corruptf("section %d checksum mismatch (got %08x, want %08x)", hdr[0], got, want)
	}
	return hdr[0], payload, nil
}

func decodeDictSection(c *cursor, d *dict.Dict) error {
	count, err := c.uvarint()
	if err != nil {
		return err
	}
	// Every term record is at least 2 bytes (kind + empty value).
	if count > uint64(c.remaining()/2+1) {
		return corruptf("dictionary claims %d terms in %d bytes", count, c.remaining())
	}
	for i := uint64(0); i < count; i++ {
		t, err := decodeTerm(c)
		if err != nil {
			return fmt.Errorf("term %d: %w", i+1, err)
		}
		if id := d.Intern(t); id != dict.ID(i+1) {
			return corruptf("duplicate term record %s (ID %d at position %d)", t, id, i+1)
		}
	}
	return nil
}

// decodeKeys reads a delta-encoded sorted key list, enforcing strict
// ascending order (which also rules out duplicates) and that every ID
// is a valid dictionary ID.
func decodeKeys(c *cursor, dictLen int) ([]dict.Triple3, error) {
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// Every key record is at least 3 bytes (three varints).
	if count > uint64(c.remaining()/3+1) {
		return nil, corruptf("key list claims %d entries in %d bytes", count, c.remaining())
	}
	keys := make([]dict.Triple3, 0, count)
	prev := [3]uint32{}
	for i := uint64(0); i < count; i++ {
		cur, err := deltaDecodeKey(c, prev)
		if err != nil {
			return nil, err
		}
		k := dict.Triple3{dict.ID(cur[0]), dict.ID(cur[1]), dict.ID(cur[2])}
		if i > 0 {
			p := dict.Triple3{dict.ID(prev[0]), dict.ID(prev[1]), dict.ID(prev[2])}
			if !p.Less(k) {
				return nil, corruptf("key list not strictly sorted at entry %d", i)
			}
		}
		for _, id := range k {
			if id == dict.Wildcard || int(id) > dictLen {
				return nil, corruptf("key %v references unknown term ID %d", k, id)
			}
		}
		keys = append(keys, k)
		prev = cur
	}
	return keys, nil
}
