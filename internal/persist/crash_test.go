package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
	"semwebdb/internal/term"
)

// parseFrames is an independent, test-local decoder of the WAL frame
// layout: it returns, for every record, the byte offset at which the
// record ends and the triple it adds (zero for define records). Keeping
// this separate from ReplayWAL means the torn-tail matrix does not test
// the replay code against itself.
func parseFrames(t *testing.T, data []byte) (ends []int64, triples []dict.Triple3, terms []term.Term) {
	t.Helper()
	if len(data) < walHeaderSize {
		t.Fatalf("WAL shorter than its header: %d bytes", len(data))
	}
	off := int64(walHeaderSize)
	for off < int64(len(data)) {
		if off+8 > int64(len(data)) {
			t.Fatalf("trailing garbage after last frame at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+8 : off+8+int64(n)]
		if crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)) != crc {
			t.Fatalf("frame at offset %d fails its checksum", off)
		}
		off += 8 + int64(n)
		switch payload[0] {
		case recDefineTerm:
			c := &cursor{p: payload[1:]}
			tm, err := decodeTerm(c)
			if err != nil {
				t.Fatalf("define record at %d: %v", off, err)
			}
			terms = append(terms, tm)
			triples = append(triples, dict.Triple3{})
		case recAddTriple:
			c := &cursor{p: payload[1:]}
			var tr dict.Triple3
			for i := 0; i < 3; i++ {
				v, err := c.uvarint()
				if err != nil {
					t.Fatalf("add record at %d: %v", off, err)
				}
				tr[i] = dict.ID(v)
			}
			triples = append(triples, tr)
			terms = append(terms, term.Term{})
		default:
			t.Fatalf("unknown record kind %d", payload[0])
		}
		ends = append(ends, off)
	}
	return ends, triples, terms
}

// TestWALTornTailMatrix truncates a WAL at every byte boundary and
// asserts that open succeeds with exactly the triples of the
// fully-framed record prefix — no more, no fewer — and that the
// truncated log accepts further appends.
func TestWALTornTailMatrix(t *testing.T) {
	base := t.TempDir()
	path := filepath.Join(base, WALFile)
	d := dict.New()
	g := graph.NewWithDict(d)
	w, err := OpenWAL(path, d, g, false)
	if err != nil {
		t.Fatal(err)
	}
	p := term.NewIRI("urn:p")
	for i := 0; i < 9; i++ {
		enc := addTriple(d, g, term.NewIRI(fmt.Sprintf("urn:s:%d", i)), p,
			term.NewLangLiteral(fmt.Sprintf("value-%d", i), "en"))
		if err := w.Append(d, []dict.Triple3{enc}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends, triples, _ := parseFrames(t, full)

	// wantTriples(L) = the add-triple records of frames fully contained
	// in the first L bytes, resolved against the define order.
	wantAdds := func(limit int64) int {
		n := 0
		for i, end := range ends {
			if end > limit {
				break
			}
			if triples[i] != (dict.Triple3{}) {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		tdir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			t.Fatal(err)
		}
		tpath := filepath.Join(tdir, WALFile)
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d2 := dict.New()
		g2 := graph.NewWithDict(d2)
		w2, err := OpenWAL(tpath, d2, g2, false)
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		want := 0
		if cut >= walHeaderSize {
			want = wantAdds(cut)
		}
		if g2.Len() != want {
			t.Fatalf("cut %d: recovered %d triples, want %d", cut, g2.Len(), want)
		}
		// The recovered prefix must be the *original* triples, in the
		// original encoding.
		g2.EachID(func(enc dict.Triple3) bool {
			if !g.HasID(enc) {
				t.Fatalf("cut %d: recovered alien triple %v", cut, enc)
			}
			return true
		})
		// Torn tails are writable again after truncation.
		extra := addTriple(d2, g2, term.NewIRI("urn:post-crash"), p, term.NewIRI("urn:o"))
		if err := w2.Append(d2, []dict.Triple3{extra}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		d3 := dict.New()
		g3 := graph.NewWithDict(d3)
		w3, err := OpenWAL(tpath, d3, g3, false)
		if err != nil {
			t.Fatalf("cut %d: reopen after append: %v", cut, err)
		}
		if g3.Len() != want+1 {
			t.Fatalf("cut %d: after post-crash append: %d triples, want %d", cut, g3.Len(), want+1)
		}
		w3.Close()
		os.RemoveAll(tdir)
	}
}
