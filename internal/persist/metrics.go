package persist

import "semwebdb/internal/obs"

// Durable-storage metric families (process-global; see internal/obs).
// The fsync histogram is the one the replication PRs will watch: group
// commit pays exactly one fsync per Append batch, so its latency bounds
// write throughput.
var (
	walAppends = obs.Default.Counter("semweb_wal_appends_total",
		"WAL append batches logged (one group commit, hence at most one fsync, each).")
	walAppendBytes = obs.Default.Counter("semweb_wal_append_bytes_total",
		"Bytes appended to the WAL, framing included.")
	walFsyncSeconds = obs.Default.Histogram("semweb_wal_fsync_seconds",
		"Latency of the per-batch WAL fsync (absent when fsync is disabled).", nil)

	snapshotWrites = obs.Default.Counter("semweb_snapshot_writes_total",
		"Snapshot files written (checkpoints, threshold compactions and swaps).")
	snapshotWriteSeconds = obs.Default.Histogram("semweb_snapshot_write_seconds",
		"Time to write, flush and sync one snapshot tmp file.", nil)
	snapshotOpenSeconds = obs.Default.Histogram("semweb_snapshot_open_seconds",
		"Time to decode a snapshot file on open (dictionary re-intern + permutation install).", nil)
	snapshotSwaps = obs.Default.Counter("semweb_snapshot_swaps_total",
		"Epoch-compaction swaps: durable dictionary rebuilds (Engine.Swap).")
)
