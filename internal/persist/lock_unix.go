//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// lockFileExcl takes a non-blocking exclusive flock on the open file —
// the WAL, whose lifetime matches the writer's. The lock is released
// automatically when the file is closed (or the process dies), so a
// crashed writer never leaves the database locked.
func lockFileExcl(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == syscall.EWOULDBLOCK {
		return fmt.Errorf("persist: %s is locked by another process", f.Name())
	}
	return err
}
