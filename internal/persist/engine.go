package persist

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"semwebdb/internal/dict"
	"semwebdb/internal/graph"
)

// File names inside a database directory.
const (
	// SnapshotFile is the current binary snapshot.
	SnapshotFile = "snapshot.swdb"
	// WALFile is the sidecar write-ahead log.
	WALFile = "wal.swdb"
	// snapshotTmp is the in-progress snapshot; renamed over SnapshotFile
	// once fully written and synced, so a crash mid-write never damages
	// the current snapshot.
	snapshotTmp = "snapshot.swdb.tmp"
)

// Options configures an Engine.
type Options struct {
	// CompactThreshold is the WAL payload size (bytes past the header)
	// above which Open compacts: it writes a fresh snapshot covering the
	// replayed state and truncates the log. Zero means DefaultCompactThreshold;
	// negative disables compaction on open.
	CompactThreshold int64
	// NoSync disables fsync on WAL batches and snapshot writes. Crash
	// durability is lost; intended for benchmarks and bulk imports that
	// checkpoint explicitly.
	NoSync bool
}

// DefaultCompactThreshold is the default WAL size that triggers
// compaction on open.
const DefaultCompactThreshold = 64 << 20

// Engine manages the on-disk state of one database directory: the
// snapshot file, the WAL, and the compaction that folds the latter
// into the former. The owning database serializes mutations (Append,
// Compact, Close); the stats accessors are safe to call concurrently
// with them.
type Engine struct {
	dir  string
	opts Options

	mu        sync.Mutex // guards the fields below against Stats readers
	wal       *WAL       // guarded by mu
	snapBytes int64      // guarded by mu
	closed    bool       // guarded by mu
	// gen is the current WAL generation token (see TailState.Gen);
	// tailCh is closed and replaced whenever the tail state changes, to
	// wake WaitTail callers.
	gen    uint64        // guarded by mu
	tailCh chan struct{} // guarded by mu
}

// Open opens (creating if needed) the database directory and returns
// the engine together with the recovered dictionary and graph: the
// snapshot decoded (permutations installed, IDs dense and stable) and
// the WAL's valid prefix replayed on top. When the surviving WAL
// exceeds the compaction threshold, the state is folded into a fresh
// snapshot and the log truncated before returning.
func Open(dir string, opts Options) (*Engine, *dict.Dict, *graph.Graph, error) {
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	e := &Engine{dir: dir, opts: opts, gen: newGeneration(), tailCh: make(chan struct{})}

	var (
		d   *dict.Dict
		g   *graph.Graph
		err error
	)
	snapPath := filepath.Join(dir, SnapshotFile)
	if f, ferr := os.Open(snapPath); ferr == nil {
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return nil, nil, nil, serr
		}
		t0 := time.Now()
		d, g, err = ReadSnapshot(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", snapPath, err)
		}
		snapshotOpenSeconds.ObserveSince(t0)
		e.snapBytes = st.Size()
	} else if os.IsNotExist(ferr) {
		d = dict.New()
		g = graph.NewWithDict(d)
	} else {
		return nil, nil, nil, ferr
	}

	wal, err := OpenWAL(filepath.Join(dir, WALFile), d, g, !opts.NoSync)
	if err != nil {
		return nil, nil, nil, err
	}
	e.wal = wal

	if opts.CompactThreshold > 0 && wal.Size()-walHeaderSize > opts.CompactThreshold {
		if err := e.Compact(g); err != nil {
			wal.Close()
			return nil, nil, nil, err
		}
	}
	return e, d, g, nil
}

// OpenReadOnly recovers the state of a database directory without
// touching it: the snapshot is decoded, the WAL's valid prefix is
// replayed in memory, and nothing is created, locked, truncated or
// compacted — safe to run against a directory another process is
// actively writing, and on read-only media. It fails if the directory
// does not exist or holds no database.
//
// Because the snapshot and WAL are read without coordination, a
// compaction racing between the two reads can pair an old snapshot
// with a new WAL generation; that transient mismatch looks like
// corruption, so ErrCorrupt results are retried with fresh reads a few
// times before being believed.
func OpenReadOnly(dir string) (*dict.Dict, *graph.Graph, Stats, error) {
	var (
		d   *dict.Dict
		g   *graph.Graph
		st  Stats
		err error
	)
	for attempt := 0; ; attempt++ {
		d, g, st, err = openReadOnlyOnce(dir)
		if err == nil || !errors.Is(err, ErrCorrupt) || attempt == 3 {
			return d, g, st, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func openReadOnlyOnce(dir string) (*dict.Dict, *graph.Graph, Stats, error) {
	var stats Stats
	if fi, err := os.Stat(dir); err != nil {
		return nil, nil, stats, err
	} else if !fi.IsDir() {
		return nil, nil, stats, fmt.Errorf("persist: %s is not a directory", dir)
	}

	d := dict.New()
	var g *graph.Graph
	snapPath := filepath.Join(dir, SnapshotFile)
	haveSnap := false
	if f, err := os.Open(snapPath); err == nil {
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return nil, nil, stats, serr
		}
		d, g, err = ReadSnapshot(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			return nil, nil, stats, fmt.Errorf("%s: %w", snapPath, err)
		}
		stats.SnapshotBytes = st.Size()
		haveSnap = true
	} else if !os.IsNotExist(err) {
		return nil, nil, stats, err
	}
	if g == nil {
		g = graph.NewWithDict(d)
	}

	walPath := filepath.Join(dir, WALFile)
	if f, err := os.Open(walPath); err == nil {
		defer f.Close()
		st, serr := f.Stat()
		if serr != nil {
			return nil, nil, stats, serr
		}
		if st.Size() >= walHeaderSize {
			res, err := ReplayWAL(f, d, g)
			if err != nil {
				return nil, nil, stats, fmt.Errorf("%s: %w", walPath, err)
			}
			stats.WALBytes = res.Valid - walHeaderSize
			stats.WALRecords = res.Records
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, stats, err
	} else if !haveSnap {
		return nil, nil, stats, fmt.Errorf("persist: %s holds no database (no %s or %s)", dir, SnapshotFile, WALFile)
	}
	return d, g, stats, nil
}

// Append logs a batch of freshly added triples. The caller passes the
// dictionary the IDs live in; terms not yet durable are inlined ahead
// of the triples referencing them.
func (e *Engine) Append(d *dict.Dict, triples []dict.Triple3) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("persist: engine is closed")
	}
	if err := e.wal.Append(d, triples); err != nil {
		return err
	}
	e.notifyTailLocked()
	return nil
}

// Compact checkpoints the given state: it writes a fresh snapshot
// beside the current one, atomically renames it into place, and
// truncates the WAL into a new generation. A crash before the rename
// leaves the old snapshot + full WAL; a crash after it leaves the new
// snapshot + a stale WAL whose replay is idempotent — either way,
// reopening recovers exactly the state passed here or a superset from
// later appends.
func (e *Engine) Compact(g *graph.Graph) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("persist: engine is closed")
	}
	return e.checkpointLocked(g)
}

func (e *Engine) checkpointLocked(g *graph.Graph) error {
	n, persistedTerms, err := e.writeSnapshotTmp(g)
	if err != nil {
		return err
	}
	if err := e.renameSnapshotLocked(n); err != nil {
		return err
	}
	// The new WAL generation's base is the term count the snapshot
	// actually persisted — NOT the dictionary's current length, which a
	// concurrent query may have grown past the persisted prefix since
	// the write (the shared dictionary interns lock-free outside any
	// database lock). A base beyond the persisted terms would make
	// every future open fail its base-vs-dictionary check.
	if err := e.wal.Reset(dict.ID(persistedTerms)); err != nil {
		return err
	}
	// The log was truncated: offsets from the old generation are void.
	e.gen = newGeneration()
	e.notifyTailLocked()
	return nil
}

// writeSnapshotTmp writes and syncs the snapshot of g to the tmp file
// without renaming it into place.
func (e *Engine) writeSnapshotTmp(g *graph.Graph) (int64, int, error) {
	tmp := filepath.Join(e.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	n, persistedTerms, err := writeSnapshotSynced(f, g, !e.opts.NoSync)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	snapshotWrites.Inc()
	snapshotWriteSeconds.ObserveSince(t0)
	return n, persistedTerms, nil
}

// renameSnapshotLocked atomically installs the previously written tmp
// snapshot of size n as the current one. Callers hold e.mu and have
// already written and synced the tmp file via writeSnapshotTmp.
func (e *Engine) renameSnapshotLocked(n int64) error {
	tmp := filepath.Join(e.dir, snapshotTmp)
	//lint:ignore fsyncrename the tmp file is written and synced by writeSnapshotTmp in every caller before this rename
	if err := os.Rename(tmp, filepath.Join(e.dir, SnapshotFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if !e.opts.NoSync {
		if err := syncDir(e.dir); err != nil {
			return err
		}
	}
	e.snapBytes = n
	return nil
}

// Swap replaces the durable state with a rewritten representation of
// the same triple set under a new dictionary — the epoch-compaction
// checkpoint: rewritten is cur rebuilt over a dense dictionary
// (graph.Compacted), so their IDs disagree and their term sets may
// differ.
//
// A WAL record references IDs of the dictionary its snapshot was
// written with; once the rewritten snapshot is in place, records from
// the old generation would replay into wrong triples. The sequence
// therefore keeps the log empty across the snapshot switch:
//
//  1. If the WAL holds records, checkpoint cur first (ordinary
//     Compact): the old-dictionary snapshot then covers everything and
//     the log is empty.
//  2. Write and sync the rewritten snapshot to the tmp file.
//  3. Reset the WAL to an empty generation based at the rewritten
//     dictionary's size — before the rename, so the on-disk pair is
//     never (rewritten snapshot, old-generation log).
//  4. Atomically rename the rewritten snapshot into place.
//
// A crash between any two steps recovers consistently: before 3 the
// old snapshot + empty log reproduce the full state; between 3 and 4
// the old snapshot decodes a dictionary at least as large as the new
// base, and the empty log adds nothing; after 4 the rewritten snapshot
// and its matching generation are exactly the compacted state.
func (e *Engine) Swap(cur, rewritten *graph.Graph) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("persist: engine is closed")
	}
	if e.wal.Records() > 0 {
		if err := e.checkpointLocked(cur); err != nil {
			return err
		}
	}
	n, persistedTerms, err := e.writeSnapshotTmp(rewritten)
	if err != nil {
		return err
	}
	if err := e.wal.Reset(dict.ID(persistedTerms)); err != nil {
		os.Remove(filepath.Join(e.dir, snapshotTmp))
		return err
	}
	e.gen = newGeneration()
	e.notifyTailLocked()
	if err := e.renameSnapshotLocked(n); err != nil {
		return err
	}
	snapshotSwaps.Inc()
	return nil
}

func writeSnapshotSynced(f *os.File, g *graph.Graph, sync bool) (int64, int, error) {
	bw := bufio.NewWriterSize(f, 1<<20)
	n, persistedTerms, err := WriteSnapshot(bw, g)
	if err != nil {
		return n, persistedTerms, err
	}
	if err := bw.Flush(); err != nil {
		return n, persistedTerms, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			return n, persistedTerms, err
		}
	}
	return n, persistedTerms, nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// Stats reports the on-disk footprint.
type Stats struct {
	// SnapshotBytes is the size of the current snapshot file (0 when no
	// snapshot has been written yet).
	SnapshotBytes int64
	// WALBytes is the size of the WAL's valid record payloads past its
	// header.
	WALBytes int64
	// WALRecords is the number of valid WAL records.
	WALRecords int
}

// Stats returns the current on-disk footprint. Safe to call
// concurrently with mutations.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{SnapshotBytes: e.snapBytes}
	if e.wal != nil {
		s.WALBytes = e.wal.Size() - walHeaderSize
		s.WALRecords = e.wal.Records()
	}
	return s
}

// Dir returns the database directory.
func (e *Engine) Dir() string { return e.dir }

// Close flushes and closes the WAL. The engine rejects further
// mutations; Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.notifyTailLocked() // wake tailers so they observe the close
	return e.wal.Close()
}
