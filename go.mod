module semwebdb

go 1.24.0
