package semweb

import (
	"context"
	"errors"
	"fmt"

	"semwebdb/internal/ntriples"
	"semwebdb/internal/persist"
	"semwebdb/internal/query"
	"semwebdb/internal/turtle"
)

// Sentinel errors of the public API. Match them with errors.Is.
var (
	// ErrMalformedQuery wraps every query well-formedness violation
	// (Definition 4.1 / Note 4.2): blank nodes in the body, head
	// variables missing from the body, variables in the premise, or
	// constraints over non-head variables.
	ErrMalformedQuery = errors.New("semweb: malformed query")

	// ErrCancelled wraps every error caused by context cancellation or
	// deadline expiry during evaluation. The original context error
	// remains reachable through errors.Is as well.
	ErrCancelled = errors.New("semweb: evaluation cancelled")

	// ErrIllFormedTriple is returned by DB.Add for triples violating the
	// RDF positional restrictions (subject in U∪B, predicate in U,
	// object in U∪B∪L) or containing query variables.
	ErrIllFormedTriple = errors.New("semweb: ill-formed triple")

	// ErrNotPersistent is returned by DB.Snapshot on a database opened
	// in memory (Open rather than OpenAt): there is no directory to
	// checkpoint into.
	ErrNotPersistent = errors.New("semweb: database is not persistent")

	// ErrClosed is returned by mutations after DB.Close. Reads keep
	// working against the last published snapshot.
	ErrClosed = errors.New("semweb: database is closed")

	// ErrCorrupt wraps every OpenAt failure caused by damaged on-disk
	// state (as opposed to filesystem errors): a snapshot failing its
	// checksums, an unsupported format version, a write-ahead log whose
	// intact records contradict the snapshot. A torn final WAL record is
	// not corruption — crash recovery discards it silently.
	ErrCorrupt = persist.ErrCorrupt

	// ErrReplica is returned by mutations (Add, Snapshot, Compact and
	// friends) on a read replica (FollowAt): replicas apply the
	// leader's log and nothing else. Write to the leader instead.
	ErrReplica = errors.New("semweb: database is a read replica")

	// ErrWrongGeneration is returned by the replication tail methods
	// (ReplSnapshot, ReplTail) when the requested WAL generation is not
	// the current one: the log was truncated by a checkpoint, an epoch
	// compaction or a restart, and the follower must re-bootstrap from
	// the current snapshot.
	ErrWrongGeneration = persist.ErrWrongGeneration
)

// ParseError reports a syntax error from one of the parsers (N-Triples,
// Turtle, or the textual query format) with its source position.
type ParseError struct {
	// Format identifies the parser: "ntriples", "turtle" or "query".
	Format string
	// Path is the source file, when the input came from a file.
	Path string
	// Line and Col locate the error (1-based; 0 when unknown).
	Line, Col int
	// Msg describes the error.
	Msg string
}

// Error renders the position-annotated message, e.g.
// "data.nt: ntriples: line 3 col 7: unterminated IRI".
func (e *ParseError) Error() string {
	pos := ""
	if e.Path != "" {
		pos = e.Path + ": "
	}
	switch {
	case e.Line == 0:
		return fmt.Sprintf("%s%s: %s", pos, e.Format, e.Msg)
	case e.Col == 0:
		return fmt.Sprintf("%s%s: line %d: %s", pos, e.Format, e.Line, e.Msg)
	default:
		return fmt.Sprintf("%s%s: line %d col %d: %s", pos, e.Format, e.Line, e.Col, e.Msg)
	}
}

// convertParseError rewrites internal parser errors into *ParseError,
// leaving other errors (e.g. os.PathError) untouched.
func convertParseError(path string, err error) error {
	if err == nil {
		return nil
	}
	var nt *ntriples.ParseError
	if errors.As(err, &nt) {
		return &ParseError{Format: "ntriples", Path: path, Line: nt.Line, Col: nt.Col, Msg: nt.Msg}
	}
	var tt *turtle.ParseError
	if errors.As(err, &tt) {
		return &ParseError{Format: "turtle", Path: path, Line: tt.Line, Col: tt.Col, Msg: tt.Msg}
	}
	var qe *query.ParseError
	if errors.As(err, &qe) {
		return &ParseError{Format: "query", Path: path, Line: qe.Line, Col: qe.Col, Msg: qe.Msg}
	}
	return err
}

// malformedQueryError ties a concrete validation failure to the
// ErrMalformedQuery sentinel.
type malformedQueryError struct{ cause error }

func (e *malformedQueryError) Error() string {
	return "semweb: malformed query: " + e.cause.Error()
}

func (e *malformedQueryError) Unwrap() []error {
	return []error{ErrMalformedQuery, e.cause}
}

// cancelledError ties a concrete context error to the ErrCancelled
// sentinel while keeping errors.Is(err, context.Canceled) (or
// DeadlineExceeded) true.
type cancelledError struct{ cause error }

func (e *cancelledError) Error() string {
	return "semweb: evaluation cancelled: " + e.cause.Error()
}

func (e *cancelledError) Unwrap() []error {
	return []error{ErrCancelled, e.cause}
}

// wrapEngineError classifies an error coming out of the engine: context
// errors become ErrCancelled wrappers, validation errors become
// ErrMalformedQuery wrappers, everything else passes through.
func wrapEngineError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &cancelledError{cause: err}
	}
	var ve *query.ValidationError
	if errors.As(err, &ve) {
		return &malformedQueryError{cause: err}
	}
	return err
}
