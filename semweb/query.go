package semweb

import (
	"sort"

	"semwebdb/internal/graph"
	"semwebdb/internal/query"
)

// Semantics selects how the single answers of a query are combined
// (Section 4.1 of the paper).
type Semantics = query.Semantics

// The two answer semantics of Section 4.1; select one with Query.Under
// or Open(WithDefaultSemantics(...)).
const (
	// Union is ans∪: the set union of the single answers; blank nodes
	// of the database keep their identity across single answers.
	Union = query.UnionSemantics
	// Merge is ans+: single answers are merged with their blank nodes
	// renamed apart, so no spurious joins arise between them.
	Merge = query.MergeSemantics
)

// Query is a tableau query (H, B) with an optional premise graph P, a
// constraint set C (Definition 4.1), and evaluation options. Build one
// fluently:
//
//	q := semweb.NewQuery().
//		Head(semweb.T(x, child, mary)).
//		Body(semweb.T(x, son, mary)).
//		WithPremise(schema).
//		WithConstraints(x).
//		Under(semweb.Merge)
//
// The zero-value options inherit the DB defaults at Eval time. Queries
// are cheap values; reusing one across Eval calls is safe as long as it
// is not mutated concurrently. Compilation (Eval, Validate) snapshots
// the builder's pattern slices, so appending more patterns to a builder
// — including to a copy sharing a backing array with this one — never
// alters a query that has already been compiled or is being evaluated.
type Query struct {
	head        []Triple
	body        []Triple
	premise     *Graph
	constraints []Term

	semantics    Semantics
	semanticsSet bool
	skipNF       bool
	maxMatchings int
}

// NewQuery returns an empty query builder.
func NewQuery() *Query { return &Query{} }

// Head appends triple patterns to the query head H — the template the
// answer graph is built from. Variables must also occur in the body;
// blank nodes in the head are skolemized per matching (Section 4.1).
func (q *Query) Head(patterns ...Triple) *Query {
	q.head = append(q.head, patterns...)
	return q
}

// Body appends triple patterns to the query body B — the pattern
// matched against nf(D + P). Bodies must not contain blank nodes (use
// variables).
func (q *Query) Body(patterns ...Triple) *Query {
	q.body = append(q.body, patterns...)
	return q
}

// WithPremise sets the premise graph P: hypothetical knowledge joined
// (merged) with the database for this query only (Definition 4.1,
// Section 4.2). Premises must be variable-free.
func (q *Query) WithPremise(p *Graph) *Query {
	q.premise = p
	return q
}

// WithPremiseTriples is WithPremise over a triple list.
func (q *Query) WithPremiseTriples(ts ...Triple) *Query {
	return q.WithPremise(NewGraph(ts...))
}

// WithConstraints marks head variables whose bindings must not be
// blank nodes — the paper's analogue of IS NOT NULL (Definition 4.1).
func (q *Query) WithConstraints(vars ...Term) *Query {
	q.constraints = append(q.constraints, vars...)
	return q
}

// Under selects the answer semantics (Union or Merge), overriding the
// DB default for this query.
func (q *Query) Under(s Semantics) *Query {
	q.semantics = s
	q.semanticsSet = true
	return q
}

// WithoutNormalForm matches this query against cl(D+P) instead of
// nf(D+P), overriding the DB setting (see WithoutNormalForm on Open).
func (q *Query) WithoutNormalForm() *Query {
	q.skipNF = true
	return q
}

// LimitMatchings caps the number of body matchings considered
// (0 = unlimited). An answer cut off by the cap reports
// Answer.Truncated() == true, distinguishing it from one whose body
// simply had no further matchings.
func (q *Query) LimitMatchings(n int) *Query {
	q.maxMatchings = n
	return q
}

// HeadPatterns returns a copy of the head patterns.
func (q *Query) HeadPatterns() []Triple { return append([]Triple(nil), q.head...) }

// BodyPatterns returns a copy of the body patterns.
func (q *Query) BodyPatterns() []Triple { return append([]Triple(nil), q.body...) }

// Premise returns a copy of the premise graph, or nil when the query
// has none.
func (q *Query) Premise() *Graph {
	if q.premise == nil {
		return nil
	}
	return q.premise.Clone()
}

// Constraints returns a copy of the constrained variables.
func (q *Query) Constraints() []Term { return append([]Term(nil), q.constraints...) }

// String renders the query in the paper's tableau notation H ← B.
func (q *Query) String() string {
	iq := query.New(q.head, q.body)
	if q.premise != nil {
		iq.WithPremise(q.premise)
	}
	iq.WithConstraints(q.constraints...)
	return iq.String()
}

// Validate checks the well-formedness conditions of Definition 4.1 /
// Note 4.2, returning an error wrapping ErrMalformedQuery on violation.
func (q *Query) Validate() error {
	_, err := q.compile()
	return err
}

// compile materializes the internal query and validates it. The head
// and body slices are copied: Head/Body grow the builder's slices with
// append, so handing them to the internal query by reference would let
// a later append — through this builder or a value copy sharing its
// backing array — overwrite patterns a compiled (possibly in-flight)
// query still reads. Constraints are copied into a map by
// WithConstraints; the premise graph is shared by reference and must
// not be mutated while the query is in use.
func (q *Query) compile() (*query.Query, error) {
	iq := query.New(
		append([]Triple(nil), q.head...),
		append([]Triple(nil), q.body...))
	if q.premise != nil {
		iq.WithPremise(q.premise)
	}
	iq.WithConstraints(q.constraints...)
	if err := iq.Validate(); err != nil {
		return nil, &malformedQueryError{cause: err}
	}
	return iq, nil
}

// fromInternal rebuilds a builder from an internal query.
func fromInternal(iq *query.Query) *Query {
	q := &Query{
		head: append([]Triple(nil), iq.Head...),
		body: append([]Triple(nil), iq.Body...),
	}
	if iq.Premise != nil && iq.Premise.Len() > 0 {
		q.premise = iq.Premise
	}
	for v := range iq.Constraints {
		q.constraints = append(q.constraints, v)
	}
	sort.Slice(q.constraints, func(i, j int) bool { return q.constraints[i].Less(q.constraints[j]) })
	return q
}

// Identity returns the identity query (?X,?Y,?Z) ← (?X,?Y,?Z)
// (Note 4.7): under union semantics it returns a graph equivalent to
// the database.
func Identity() *Query { return fromInternal(query.Identity()) }

// ParseQuery parses the textual tableau format:
//
//	# comment lines start with '#'
//	HEAD:
//	?X <urn:ex:creates> ?Y .
//	BODY:
//	?X <urn:ex:paints> ?Y .
//	PREMISE:
//	<urn:ex:son> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <urn:ex:relative> .
//	CONSTRAINTS: ?X
//
// PREMISE and CONSTRAINTS are optional. Triple lines use
// N-Triples-style terms plus ?variables; the trailing '.' is optional.
// Syntax errors are reported as *ParseError with line/column info;
// well-formedness violations wrap ErrMalformedQuery.
func ParseQuery(src string) (*Query, error) {
	iq, err := query.ParseQuery(src)
	if err != nil {
		if converted := convertParseError("", err); converted != err {
			return nil, converted
		}
		return nil, wrapEngineError(err)
	}
	return fromInternal(iq), nil
}

// Answer is the result of evaluating a query: the assembled answer
// graph together with the single answers it was built from.
type Answer struct {
	inner *query.Answer
}

// Graph returns ans∪(q,D) or ans+(q,D), depending on the semantics the
// query was evaluated under.
func (a *Answer) Graph() *Graph { return a.inner.Graph }

// Singles returns the deduplicated single answers v(H) (the pre-answer
// of Definition 4.3), in deterministic order.
func (a *Answer) Singles() []*Graph {
	return append([]*graph.Graph(nil), a.inner.Singles...)
}

// Matchings counts the matchings of the body against the normalized
// database (before deduplication of equal single answers). It never
// exceeds a LimitMatchings cap.
func (a *Answer) Matchings() int { return a.inner.Matchings }

// Truncated reports whether the matching enumeration was cut off by
// LimitMatchings: true means at least one further matching existed and
// was discarded, so the answer may be incomplete. A query whose body
// has exactly as many matchings as the cap is complete and reports
// false; without a cap Truncated is always false.
func (a *Answer) Truncated() bool { return a.inner.Truncated }

// Semantics reports how Graph was assembled.
func (a *Answer) Semantics() Semantics { return a.inner.Semantics }

// Len returns the number of triples in the answer graph.
func (a *Answer) Len() int { return a.inner.Graph.Len() }

// Lean reports whether the answer graph is lean, i.e. free of
// redundant single answers. Under Union semantics this is the
// coNP-complete check of Theorem 6.2; under Merge semantics the
// polynomial procedure of Theorem 6.3 is used.
func (a *Answer) Lean() bool { return query.IsLeanAnswer(a.inner) }

// Reduce returns an equivalent lean version of the answer graph (its
// core) — the redundancy elimination of Section 6.2.
func (a *Answer) Reduce() *Graph { return query.EliminateRedundancy(a.inner) }

// NTriples returns the canonical N-Triples serialization of the answer
// graph, which round-trips through ParseNTriples.
func (a *Answer) NTriples() string { return NTriples(a.inner.Graph) }
