package semweb

// The replication crash/failover matrix. A deterministic in-process
// leader+follower pair — the follower wired through followSource with
// test-speed polling, the leader served through the same
// ReplState/ReplSnapshot/ReplTail methods semwebd exposes — is killed
// and restarted at chosen batch and byte boundaries, and convergence is
// proven the strong way: Fingerprint equality (the paper's
// normal-form-based graph identity) plus byte equality of the
// follower's mirrored WAL against the leader's, which rules out
// duplicate application as well as loss.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"semwebdb/internal/obs"
	"semwebdb/internal/persist"
	"semwebdb/internal/repl"
)

// dbSource adapts a leader *DB into a repl.Source, the in-process
// equivalent of the HTTP client semwebd followers dial.
type dbSource struct{ db *DB }

func (s dbSource) State(ctx context.Context) (repl.State, error) {
	st, err := s.db.ReplState()
	if err != nil {
		return repl.State{}, err
	}
	return repl.State{
		Replica:       st.Replica,
		Generation:    st.Generation,
		WALSize:       st.WALSize,
		WALRecords:    st.WALRecords,
		SnapshotBytes: st.SnapshotBytes,
	}, nil
}

func (s dbSource) Snapshot(ctx context.Context, gen uint64) (io.ReadCloser, int64, error) {
	return s.db.ReplSnapshot(gen)
}

func (s dbSource) Tail(ctx context.Context, gen uint64, from int64, max int, wait time.Duration) (repl.Chunk, error) {
	c, err := s.db.ReplTail(ctx, gen, from, max, wait)
	if err != nil {
		return repl.Chunk{}, err
	}
	return repl.Chunk(c), nil
}

// fastTune shortens the follower's poll and backoff windows to test
// speed.
func fastTune(cfg *repl.Config) {
	cfg.Wait = 50 * time.Millisecond
	cfg.Backoff = 5 * time.Millisecond
}

// follow opens dir as a replica of leader with test-speed polling.
func follow(t *testing.T, dir string, leader *DB) *DB {
	t.Helper()
	db, err := followSource(dir, "default", dbSource{leader}, fastTune, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// loadBatch writes n triples to the leader in one Add (= one WAL
// append = one replication batch).
func loadBatch(t *testing.T, db *DB, n, base int) {
	t.Helper()
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = T(IRI(fmt.Sprintf("urn:s:%d", base+i)), IRI("urn:p"), Literal(fmt.Sprintf("v%d", base+i)))
	}
	if err := db.Add(ts...); err != nil {
		t.Fatal(err)
	}
}

// waitReplica polls the replica's ReplState until it has applied the
// leader's entire durable log (same generation, equal offsets).
func waitReplica(t *testing.T, replica, leader *DB) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ls, err := leader.ReplState()
		if err != nil {
			t.Fatal(err)
		}
		rs, err := replica.ReplState()
		if err != nil {
			t.Fatal(err)
		}
		if rs.LeaderGeneration == ls.Generation && rs.AppliedBytes == ls.WALSize && rs.AppliedRecords == ls.WALRecords {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: replica %+v, leader %+v", rs, ls)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertConverged proves replica == leader two independent ways:
// Fingerprint equality of the served graphs, and byte equality of the
// mirrored WAL (which duplicate application would grow).
func assertConverged(t *testing.T, replica, leader *DB, replicaDir, leaderDir string) {
	t.Helper()
	ctx := context.Background()
	lf, err := leader.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := replica.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lf != rf {
		t.Fatalf("fingerprints diverge:\n  leader  %s (%d triples)\n  replica %s (%d triples)", lf, leader.Len(), rf, replica.Len())
	}
	lb, err := os.ReadFile(filepath.Join(leaderDir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(filepath.Join(replicaDir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) != len(rb) {
		t.Fatalf("mirror is %d bytes, leader log %d: lost or duplicated records", len(rb), len(lb))
	}
	for i := range lb {
		if lb[i] != rb[i] {
			t.Fatalf("mirror diverges from leader log at byte %d", i)
		}
	}
}

// recordEnds parses a WAL file independently of the engine and returns
// the byte offset at which each record frame ends — the crash matrix's
// truncation points.
func recordEnds(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < persist.WALHeaderSize {
		t.Fatalf("WAL shorter than its header: %d bytes", len(data))
	}
	table := crc32.MakeTable(crc32.Castagnoli)
	var ends []int64
	off := int64(persist.WALHeaderSize)
	for off < int64(len(data)) {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		payload := data[off+8 : off+8+int64(n)]
		if crc32.Checksum(payload, table) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			t.Fatalf("frame at offset %d fails its checksum", off)
		}
		off += 8 + int64(n)
		ends = append(ends, off)
	}
	return ends
}

// TestReplBasicConvergence: batches loaded on the leader stream to the
// follower; queries answer on the follower; every mutation on the
// follower is refused with ErrReplica; Stats reports the replica role
// and the delta counters show replicated batches rode the incremental
// prepared path.
func TestReplBasicConvergence(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	leader, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	loadBatch(t, leader, 20, 0)

	replica := follow(t, replicaDir, leader)
	defer replica.Close()
	waitReplica(t, replica, leader)

	// Prepare a query on the replica, then keep loading: the follower
	// publishes batches through noteInsertLocked, so the prepared plan
	// must be maintained on the delta path, exactly like leader writes.
	ctx := context.Background()
	q := mustParseQuery(t, "HEAD:\n?X <urn:q> ?Y .\nBODY:\n?X <urn:p> ?Y .\n")
	if _, err := replica.Eval(ctx, q); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		loadBatch(t, leader, 10, 100+100*b)
	}
	waitReplica(t, replica, leader)
	assertConverged(t, replica, leader, replicaDir, leaderDir)

	ans, err := replica.Eval(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ans.Singles()); got != 50 {
		t.Fatalf("replica query answered %d rows, want 50", got)
	}

	st := replica.Stats()
	if !st.Replica || !st.Persistent {
		t.Fatalf("replica Stats misreports its role: %+v", st)
	}
	if st.ReplLagBytes != 0 || st.ReplAppliedBytes == 0 {
		t.Fatalf("replica Stats lag/offset wrong at quiescence: %+v", st)
	}
	if st.PreparedDelta == 0 {
		t.Fatalf("replicated batches never rode the delta path: %+v", st)
	}

	// Every mutation path refuses.
	if err := replica.Add(T(IRI("urn:x"), IRI("urn:p"), Literal("v"))); !errors.Is(err, ErrReplica) {
		t.Fatalf("Add on a replica: %v, want ErrReplica", err)
	}
	if err := replica.Snapshot(); !errors.Is(err, ErrReplica) {
		t.Fatalf("Snapshot on a replica: %v, want ErrReplica", err)
	}
	if err := replica.Compact(); !errors.Is(err, ErrReplica) {
		t.Fatalf("Compact on a replica: %v, want ErrReplica", err)
	}
}

// TestReplCrashRestartMatrix is the tentpole: the follower is killed at
// every record boundary of its mirrored log — and at ragged offsets
// inside frames, and in mid-bootstrap states — then restarted against
// the live leader, and must converge to Fingerprint equality with no
// duplicate application every single time.
func TestReplCrashRestartMatrix(t *testing.T) {
	leaderDir := t.TempDir()
	leader, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	// Several small batches so the matrix crosses batch boundaries too.
	for b := 0; b < 4; b++ {
		loadBatch(t, leader, 5, 100*b)
	}

	// One synced mirror, used as the template every matrix entry
	// mutates a fresh copy of.
	templateDir := t.TempDir()
	replica := follow(t, templateDir, leader)
	waitReplica(t, replica, leader)
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	ends := recordEnds(t, filepath.Join(templateDir, persist.WALFile))
	if len(ends) < 20 {
		t.Fatalf("matrix too small: %d records", len(ends))
	}

	// Crash points: the mirror truncated at every record boundary
	// (including just the header: offset WALHeaderSize), and ragged
	// mid-frame offsets that model a torn local write.
	points := []int64{persist.WALHeaderSize}
	points = append(points, ends...)
	for _, e := range ends[:len(ends)-1] {
		points = append(points, e+3) // mid-frame: torn tail
	}

	copyDir := func(t *testing.T, dst string) {
		t.Helper()
		entries, err := os.ReadDir(templateDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(templateDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, cut := range points {
		t.Run(fmt.Sprintf("truncate@%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, dir)
			if err := os.Truncate(filepath.Join(dir, persist.WALFile), cut); err != nil {
				t.Fatal(err)
			}
			r := follow(t, dir, leader)
			defer r.Close()
			waitReplica(t, r, leader)
			assertConverged(t, r, leader, dir, leaderDir)
		})
	}

	// Mid-bootstrap crash states: the provisional marker with the data
	// files in every partial combination a crash can leave.
	midBootstrap := map[string]func(t *testing.T, dir string){
		"provisional meta, files intact": func(t *testing.T, dir string) {},
		"provisional meta, no wal": func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, persist.WALFile)); err != nil {
				t.Fatal(err)
			}
		},
		"provisional meta, empty dir": func(t *testing.T, dir string) {
			for _, name := range []string{persist.WALFile, persist.SnapshotFile} {
				if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
					t.Fatal(err)
				}
			}
		},
		"provisional meta, truncated wal": func(t *testing.T, dir string) {
			if err := os.Truncate(filepath.Join(dir, persist.WALFile), 11); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range midBootstrap {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, dir)
			if err := os.WriteFile(filepath.Join(dir, repl.MetaFile), []byte(`{"generation":"0"}`), 0o644); err != nil {
				t.Fatal(err)
			}
			damage(t, dir)
			r := follow(t, dir, leader)
			defer r.Close()
			waitReplica(t, r, leader)
			assertConverged(t, r, leader, dir, leaderDir)
		})
	}
}

// TestReplGenerationSwitch: the leader compacts (and later snapshots)
// while the follower tails; each switch voids the follower's offsets
// and must end in a re-bootstrap that converges.
func TestReplGenerationSwitch(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	leader, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	loadBatch(t, leader, 15, 0)

	replica := follow(t, replicaDir, leader)
	defer replica.Close()
	waitReplica(t, replica, leader)

	if err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	loadBatch(t, leader, 10, 100)
	waitReplica(t, replica, leader)
	assertConverged(t, replica, leader, replicaDir, leaderDir)

	st, err := replica.ReplState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bootstraps < 2 {
		t.Fatalf("Bootstraps = %d after a compaction switch, want >= 2", st.Bootstraps)
	}

	// A second switch via Snapshot (checkpoint): same contract.
	if err := leader.Snapshot(); err != nil {
		t.Fatal(err)
	}
	loadBatch(t, leader, 5, 500)
	waitReplica(t, replica, leader)
	assertConverged(t, replica, leader, replicaDir, leaderDir)
}

// TestReplStaleOffsetRebootstraps: a follower that was down across the
// leader's generation switch reconnects with a pre-switch offset; the
// leader must refuse to serve it a mismatched-generation tail, and the
// follower must re-bootstrap rather than apply one.
func TestReplStaleOffsetRebootstraps(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	leader, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	loadBatch(t, leader, 12, 0)

	replica := follow(t, replicaDir, leader)
	waitReplica(t, replica, leader)
	preSwitch, err := replica.ReplState()
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// Switch generations while it is down; the old offset now points
	// into a log that no longer exists.
	if err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	loadBatch(t, leader, 8, 200)

	// The leader refuses the stale coordinates outright.
	if _, err := leader.ReplTail(context.Background(), preSwitch.Generation, preSwitch.AppliedBytes, 1<<20, 0); !errors.Is(err, ErrWrongGeneration) {
		t.Fatalf("stale tail request: %v, want ErrWrongGeneration", err)
	}

	r2 := follow(t, replicaDir, leader)
	defer r2.Close()
	waitReplica(t, r2, leader)
	assertConverged(t, r2, leader, replicaDir, leaderDir)
	st, err := r2.ReplState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bootstraps == 0 {
		t.Fatal("stale follower reconnected without re-bootstrapping")
	}
}

// TestReplLeaderRestart: a leader restart mints a new generation even
// though the log bytes may be identical; the connected follower takes
// the conservative re-bootstrap and converges.
func TestReplLeaderRestart(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	leader, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	loadBatch(t, leader, 10, 0)

	replica := follow(t, replicaDir, leader)
	defer replica.Close()
	waitReplica(t, replica, leader)
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	leader2, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader2.Close()
	loadBatch(t, leader2, 6, 100)

	r2 := follow(t, replicaDir, leader2)
	defer r2.Close()
	waitReplica(t, r2, leader2)
	assertConverged(t, r2, leader2, replicaDir, leaderDir)
}

// TestReplMetricsAgreeWithStats: at quiescence the semwebd_repl_*
// gauges and the Stats/ReplState fields tell the same story, like the
// query metrics/Stats agreement the metrics tests pin.
func TestReplMetricsAgreeWithStats(t *testing.T) {
	leaderDir, replicaDir := t.TempDir(), t.TempDir()
	leader, err := OpenAt(leaderDir, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	loadBatch(t, leader, 10, 0)

	// A unique metrics label: the gauges are process-global, so this
	// test must not share children with other replicas in the package.
	name := fmt.Sprintf("metrics-agree-%d", time.Now().UnixNano())
	replica, err := followSource(replicaDir, name, dbSource{leader}, fastTune, WithoutFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	waitReplica(t, replica, leader)

	st := replica.Stats()
	rs, err := replica.ReplState()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplLagBytes != rs.LagBytes || st.ReplAppliedBytes != rs.AppliedBytes || st.ReplLagRecords != rs.LagRecords || st.ReplAppliedRecords != rs.AppliedRecords {
		t.Fatalf("Stats %+v disagrees with ReplState %+v", st, rs)
	}
	// Re-registering a family returns the existing one, so these resolve
	// the very gauge children the follower updates.
	lag := obs.Default.GaugeVec("semwebd_repl_lag_bytes", "", "db").With(name)
	lagRecs := obs.Default.GaugeVec("semwebd_repl_lag_records", "", "db").With(name)
	applied := obs.Default.GaugeVec("semwebd_repl_applied_bytes", "", "db").With(name)
	if got := lag.Value(); got != st.ReplLagBytes {
		t.Fatalf("semwebd_repl_lag_bytes = %d, Stats.ReplLagBytes = %d", got, st.ReplLagBytes)
	}
	if got := lagRecs.Value(); int(got) != st.ReplLagRecords {
		t.Fatalf("semwebd_repl_lag_records = %d, Stats.ReplLagRecords = %d", got, st.ReplLagRecords)
	}
	if got := applied.Value(); got != st.ReplAppliedBytes {
		t.Fatalf("semwebd_repl_applied_bytes = %d, Stats.ReplAppliedBytes = %d", got, st.ReplAppliedBytes)
	}
}
