package semweb_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"semwebdb/internal/gen"
	"semwebdb/semweb"
)

const figure1 = `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix art: <urn:art:> .
art:sculptor rdfs:subClassOf art:artist .
art:painter  rdfs:subClassOf art:artist .
art:sculpts  rdfs:subPropertyOf art:creates .
art:paints   rdfs:subPropertyOf art:creates .
art:creates  rdfs:domain art:artist ;
             rdfs:range  art:artifact .
art:picasso  art:paints  art:guernica .
art:rodin    art:sculpts art:thethinker .
art:picasso  a art:painter .
`

func openFigure1(t *testing.T) *semweb.DB {
	t.Helper()
	db, err := semweb.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTurtle(strings.NewReader(figure1)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestOpenLoadEvalUnion is the golden end-to-end path: Open → Load →
// Eval under union semantics, with RDFS inference in the body.
func TestOpenLoadEvalUnion(t *testing.T) {
	db := openFigure1(t)
	if db.Len() != 9 {
		t.Fatalf("loaded %d triples, want 9", db.Len())
	}

	X := semweb.Var("X")
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:art:isArtist"), semweb.IRI("urn:art:yes"))).
		Body(semweb.T(X, semweb.Type, semweb.IRI("urn:art:artist"))).
		Under(semweb.Union)

	ans, err := db.Eval(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	golden := "<urn:art:picasso> <urn:art:isArtist> <urn:art:yes> .\n" +
		"<urn:art:rodin> <urn:art:isArtist> <urn:art:yes> .\n"
	if got := ans.NTriples(); got != golden {
		t.Fatalf("answer mismatch:\n got %q\nwant %q", got, golden)
	}
	if ans.Semantics() != semweb.Union {
		t.Fatalf("semantics = %v, want Union", ans.Semantics())
	}
	if !ans.Lean() {
		t.Fatal("expected a lean answer")
	}
}

// TestUnionVsMerge checks the defining difference of ans∪ and ans+:
// database blanks keep their identity across single answers under
// union, and are renamed apart under merge.
func TestUnionVsMerge(t *testing.T) {
	data, err := semweb.ParseNTriples(
		"<urn:ex:a> <urn:ex:p> _:b .\n" +
			"<urn:ex:c> <urn:ex:p> _:b .\n")
	if err != nil {
		t.Fatal(err)
	}
	db, err := semweb.Open(semweb.WithGraph(data))
	if err != nil {
		t.Fatal(err)
	}

	X, Y := semweb.Var("X"), semweb.Var("Y")
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:ex:q"), Y)).
		Body(semweb.T(X, semweb.IRI("urn:ex:p"), Y))

	union, err := db.Eval(context.Background(), q.Under(semweb.Union))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := db.Eval(context.Background(), q.Under(semweb.Merge))
	if err != nil {
		t.Fatal(err)
	}
	if len(union.Singles()) != 2 || len(merged.Singles()) != 2 {
		t.Fatalf("singles: union %d merge %d, want 2 and 2",
			len(union.Singles()), len(merged.Singles()))
	}
	if n := len(union.Graph().BlankNodes()); n != 1 {
		t.Fatalf("union answer has %d blanks, want 1 (shared identity)", n)
	}
	if n := len(merged.Graph().BlankNodes()); n != 2 {
		t.Fatalf("merge answer has %d blanks, want 2 (renamed apart)", n)
	}
}

// TestPremise reproduces the paper's Section 4.2 example: a premise
// supplies schema knowledge for one query only.
func TestPremise(t *testing.T) {
	db, err := semweb.Open()
	if err != nil {
		t.Fatal(err)
	}
	ex := func(s string) semweb.Term { return semweb.IRI("urn:ex:" + s) }
	if err := db.Add(
		semweb.T(ex("john"), ex("son"), ex("peter")),
		semweb.T(ex("ana"), ex("daughter"), ex("peter")),
	); err != nil {
		t.Fatal(err)
	}

	X := semweb.Var("X")
	q := semweb.NewQuery().
		Head(semweb.T(X, ex("relative"), ex("peter"))).
		Body(semweb.T(X, ex("relative"), ex("peter"))).
		WithPremiseTriples(semweb.T(ex("son"), semweb.SubPropertyOf, ex("relative")))

	ans, err := db.Eval(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := "<urn:ex:john> <urn:ex:relative> <urn:ex:peter> .\n"
	if got := ans.NTriples(); got != want {
		t.Fatalf("premise answer:\n got %q\nwant %q", got, want)
	}

	// Without the premise the query is empty: the premise did not leak
	// into the database.
	bare, err := db.Eval(context.Background(), semweb.NewQuery().
		Head(q.HeadPatterns()...).Body(q.BodyPatterns()...))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Len() != 0 {
		t.Fatalf("premise leaked into the database: %s", bare.NTriples())
	}
}

// TestConstraints checks the IS-NOT-NULL analogue: constrained
// variables refuse blank bindings.
func TestConstraints(t *testing.T) {
	data, err := semweb.ParseNTriples(
		"<urn:ex:a> <urn:ex:p> <urn:ex:named> .\n" +
			"<urn:ex:a> <urn:ex:p> _:anon .\n")
	if err != nil {
		t.Fatal(err)
	}
	db, err := semweb.Open(semweb.WithGraph(data))
	if err != nil {
		t.Fatal(err)
	}
	Y := semweb.Var("Y")
	base := func() *semweb.Query {
		return semweb.NewQuery().
			Head(semweb.T(semweb.IRI("urn:ex:a"), semweb.IRI("urn:ex:q"), Y)).
			Body(semweb.T(semweb.IRI("urn:ex:a"), semweb.IRI("urn:ex:p"), Y))
	}

	free, err := db.Eval(context.Background(), base())
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := db.Eval(context.Background(), base().WithConstraints(Y))
	if err != nil {
		t.Fatal(err)
	}
	// The unconstrained answer keeps the blank binding... (the blank is
	// not redundant here only if it differs from the named one; in nf it
	// folds, so accept ≥1) — the constrained one must be exactly the
	// named triple.
	if free.Len() < 1 {
		t.Fatalf("unconstrained answer empty")
	}
	want := "<urn:ex:a> <urn:ex:q> <urn:ex:named> .\n"
	if got := constrained.NTriples(); got != want {
		t.Fatalf("constrained answer:\n got %q\nwant %q", got, want)
	}
}

// TestMalformedQuery checks the typed error contract of Eval and
// ParseQuery.
func TestMalformedQuery(t *testing.T) {
	db, err := semweb.Open()
	if err != nil {
		t.Fatal(err)
	}
	X, Y := semweb.Var("X"), semweb.Var("Y")

	// Head variable missing from the body.
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:ex:p"), Y)).
		Body(semweb.T(X, semweb.IRI("urn:ex:p"), X))
	if _, err := db.Eval(context.Background(), q); !errors.Is(err, semweb.ErrMalformedQuery) {
		t.Fatalf("head-var error = %v, want ErrMalformedQuery", err)
	}

	// Nil query.
	if _, err := db.Eval(context.Background(), nil); !errors.Is(err, semweb.ErrMalformedQuery) {
		t.Fatalf("nil query error = %v, want ErrMalformedQuery", err)
	}

	// Textual parse errors carry line information.
	_, err = semweb.ParseQuery("HEAD:\n?X <urn:ex:p> ?X .\nBODY:\n?X <unterminated ?X .\n")
	var pe *semweb.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("parse error = %v (%T), want *ParseError", err, err)
	}
	if pe.Line != 4 || pe.Format != "query" {
		t.Fatalf("parse error position = %+v, want line 4 of a query", pe)
	}

	// Well-formed syntax but ill-formed query: wraps ErrMalformedQuery.
	_, err = semweb.ParseQuery("HEAD:\n?X <urn:ex:p> ?Y .\nBODY:\n?X <urn:ex:p> ?X .\n")
	if !errors.Is(err, semweb.ErrMalformedQuery) {
		t.Fatalf("validation error = %v, want ErrMalformedQuery", err)
	}
}

// TestAddIllFormed checks DB.Add's rejection of non-RDF triples.
func TestAddIllFormed(t *testing.T) {
	db, err := semweb.Open()
	if err != nil {
		t.Fatal(err)
	}
	bad := semweb.T(semweb.Literal("lex"), semweb.IRI("urn:ex:p"), semweb.IRI("urn:ex:o"))
	if err := db.Add(bad); !errors.Is(err, semweb.ErrIllFormedTriple) {
		t.Fatalf("Add(literal subject) = %v, want ErrIllFormedTriple", err)
	}
	if db.Len() != 0 {
		t.Fatal("rejected triple was inserted")
	}
}

// TestEntailmentAndFingerprint checks the graph-level semantic
// operations through the facade: D ⊨ H, proof checking, and the
// equivalence fingerprint.
func TestEntailmentAndFingerprint(t *testing.T) {
	ctx := context.Background()
	db := openFigure1(t)

	h := semweb.NewGraph(
		semweb.T(semweb.IRI("urn:art:picasso"), semweb.Type, semweb.IRI("urn:art:artist")),
		semweb.T(semweb.IRI("urn:art:picasso"), semweb.IRI("urn:art:creates"), semweb.IRI("urn:art:guernica")),
	)
	ok, err := db.Entails(ctx, h)
	if err != nil || !ok {
		t.Fatalf("Entails = %v, %v; want true", ok, err)
	}
	if !db.Infers(semweb.T(semweb.IRI("urn:art:rodin"), semweb.Type, semweb.IRI("urn:art:artist"))) {
		t.Fatal("Infers missed a closure member")
	}
	proof, ok := db.Prove(h)
	if !ok {
		t.Fatal("no proof found")
	}
	if err := proof.Verify(db.Graph(), h); err != nil {
		t.Fatalf("proof fails verification: %v", err)
	}

	// The fingerprint is invariant under adding entailed triples.
	fp1, err := db.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := db.Closure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := semweb.Open(semweb.WithGraph(cl))
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := db2.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("fingerprint not invariant under closure")
	}
}

// hardQuery builds an unsatisfiable clique-homomorphism workload
// (K_n pattern over variables against an encoded K_{n-1}) whose
// exhaustive search runs for many seconds when not cancelled.
func hardQuery(n int) (*semweb.DB, *semweb.Query, error) {
	src := gen.Enc(gen.Clique(n), "v")
	dst := gen.EncGround(gen.Clique(n-1), "k")
	vars := map[semweb.Term]semweb.Term{}
	toVar := func(x semweb.Term) semweb.Term {
		if !x.IsBlank() {
			return x
		}
		v, ok := vars[x]
		if !ok {
			v = semweb.Var(fmt.Sprintf("v%s", x.Value))
			vars[x] = v
		}
		return v
	}
	var body []semweb.Triple
	for _, tr := range src.Triples() {
		body = append(body, semweb.T(toVar(tr.S), tr.P, toVar(tr.O)))
	}
	db, err := semweb.Open(semweb.WithGraph(dst))
	if err != nil {
		return nil, nil, err
	}
	return db, semweb.NewQuery().Head(body[0]).Body(body...), nil
}

// TestEvalCancellation is the acceptance check for context threading: a
// cancellation mid-evaluation on a generated workload must surface
// ErrCancelled promptly, long before the uncancelled search would
// finish.
func TestEvalCancellation(t *testing.T) {
	db, q, err := hardQuery(9) // ≈17s uncancelled on a dev laptop
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = db.Eval(ctx, q)
	elapsed := time.Since(start)

	if !errors.Is(err, semweb.ErrCancelled) {
		t.Fatalf("Eval after cancel = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause %v does not unwrap to context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt (<2s)", elapsed)
	}
}

// TestEvalDeadline checks that deadline expiry surfaces the same way.
func TestEvalDeadline(t *testing.T) {
	db, q, err := hardQuery(9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.Eval(ctx, q)
	if !errors.Is(err, semweb.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Eval after deadline = %v, want ErrCancelled wrapping DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline abort took %v, want prompt (<2s)", elapsed)
	}
}

// TestCancelledBeforeEval: an already-cancelled context aborts without
// doing any work.
func TestCancelledBeforeEval(t *testing.T) {
	db := openFigure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := semweb.Identity()
	if _, err := db.Eval(ctx, q); !errors.Is(err, semweb.ErrCancelled) {
		t.Fatalf("Eval with dead ctx = %v, want ErrCancelled", err)
	}
	// The same holds when the normal form is already cached: warm the
	// cache with a live context, then re-evaluate with the dead one.
	if _, err := db.Eval(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Eval(ctx, q); !errors.Is(err, semweb.ErrCancelled) {
		t.Fatalf("Eval with dead ctx on warm cache = %v, want ErrCancelled", err)
	}
	// The graph-level operations honor ctx too.
	if _, err := db.Closure(ctx); !errors.Is(err, semweb.ErrCancelled) {
		t.Fatalf("Closure with dead ctx = %v, want ErrCancelled", err)
	}
	if _, err := db.NormalForm(ctx); !errors.Is(err, semweb.ErrCancelled) {
		t.Fatalf("NormalForm with dead ctx = %v, want ErrCancelled", err)
	}
}

// TestAnswerRoundTrip: Answer.NTriples round-trips through the parser
// into an isomorphic graph.
func TestAnswerRoundTrip(t *testing.T) {
	db := openFigure1(t)
	A, Y := semweb.Var("A"), semweb.Var("Y")
	q := semweb.NewQuery().
		Head(
			semweb.T(semweb.Blank("E"), semweb.IRI("urn:art:by"), A),
			semweb.T(semweb.Blank("E"), semweb.IRI("urn:art:produced"), Y),
		).
		Body(semweb.T(A, semweb.IRI("urn:art:creates"), Y))
	ans, err := db.Eval(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	back, err := semweb.ParseNTriples(ans.NTriples())
	if err != nil {
		t.Fatal(err)
	}
	if !semweb.Isomorphic(ans.Graph(), back) {
		t.Fatal("round-tripped answer is not isomorphic to the original")
	}
}

// TestContainmentFacade spot-checks the containment surface.
func TestContainmentFacade(t *testing.T) {
	X, Y := semweb.Var("X"), semweb.Var("Y")
	p, q := semweb.IRI("urn:ex:p"), semweb.IRI("urn:ex:q")
	small := semweb.NewQuery().
		Head(semweb.T(X, q, semweb.IRI("urn:ex:b"))).
		Body(semweb.T(X, p, semweb.IRI("urn:ex:b")))
	big := semweb.NewQuery().
		Head(semweb.T(X, q, Y)).
		Body(semweb.T(X, p, Y))
	d, err := semweb.Contained(small, big)
	if err != nil || !d.Holds {
		t.Fatalf("small ⊆p big = %+v, %v; want holds", d, err)
	}
	d, err = semweb.Contained(big, small)
	if err != nil || d.Holds {
		t.Fatalf("big ⊆p small = %+v, %v; want not holds", d, err)
	}
}

// TestPreparedCacheInvalidation checks that the per-snapshot
// normal-form cache never serves stale answers: a mutation between
// evaluations must be visible to the next Eval.
func TestPreparedCacheInvalidation(t *testing.T) {
	db := openFigure1(t)
	X := semweb.Var("X")
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:art:isArtist"), semweb.IRI("urn:art:yes"))).
		Body(semweb.T(X, semweb.Type, semweb.IRI("urn:art:artist")))

	first, err := db.Eval(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := db.Eval(context.Background(), q) // served from the cached nf(D)
	if err != nil {
		t.Fatal(err)
	}
	if first.NTriples() != again.NTriples() {
		t.Fatal("repeated evaluation differs")
	}

	if err := db.Add(semweb.T(semweb.IRI("urn:art:miro"), semweb.Type, semweb.IRI("urn:art:painter"))); err != nil {
		t.Fatal(err)
	}
	after, err := db.Eval(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != first.Len()+1 {
		t.Fatalf("after mutation: %d answer triples, want %d (stale cache?)", after.Len(), first.Len()+1)
	}
	if !after.Graph().Has(semweb.T(semweb.IRI("urn:art:miro"), semweb.IRI("urn:art:isArtist"), semweb.IRI("urn:art:yes"))) {
		t.Fatal("new fact missing from post-mutation answer")
	}
}

// TestConcurrentUse exercises the snapshot discipline: concurrent
// loads and evals must not race (run with -race).
func TestConcurrentUse(t *testing.T) {
	db := openFigure1(t)
	X := semweb.Var("X")
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:art:isArtist"), semweb.IRI("urn:art:yes"))).
		Body(semweb.T(X, semweb.Type, semweb.IRI("urn:art:artist")))

	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := db.Eval(context.Background(), q)
			done <- err
		}()
		go func(i int) {
			done <- db.Add(semweb.T(
				semweb.IRI(fmt.Sprintf("urn:art:new%d", i)),
				semweb.Type, semweb.IRI("urn:art:painter")))
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 9+4 {
		t.Fatalf("after concurrent adds: %d triples, want 13", db.Len())
	}
}

func TestStatsExtended(t *testing.T) {
	db := openFigure1(t)
	st := db.Stats()
	if st.Triples != 9 {
		t.Fatalf("Triples = %d, want 9", st.Triples)
	}
	if st.Terms <= 0 || st.DictTerms < st.Terms {
		t.Fatalf("Terms = %d, DictTerms = %d: dictionary must cover the universe", st.Terms, st.DictTerms)
	}
	for i, n := range st.IndexSizes {
		if n != st.Triples {
			t.Fatalf("IndexSizes[%d] = %d, want %d (one entry per triple)", i, n, st.Triples)
		}
	}
	// Queries may grow the dictionary (patterns, skolem blanks) but
	// never the data statistics.
	X := semweb.Var("X")
	q := semweb.NewQuery().
		Head(semweb.T(X, semweb.IRI("urn:art:isArtist"), semweb.IRI("urn:art:yes"))).
		Body(semweb.T(X, semweb.Type, semweb.IRI("urn:art:artist")))
	if _, err := db.Eval(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st2 := db.Stats()
	if st2.Triples != st.Triples || st2.Terms != st.Terms {
		t.Fatalf("query evaluation changed data stats: %+v -> %+v", st, st2)
	}
	if st2.DictTerms < st.DictTerms {
		t.Fatalf("dictionary shrank: %d -> %d", st.DictTerms, st2.DictTerms)
	}
}
